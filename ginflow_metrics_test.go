package ginflow

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"ginflow/internal/obs"
)

// TestMetricsEndpointLiveChaosRun is the observability acceptance run:
// a manager serving /metrics while enacting a chaos-seeded workload
// with a journal, a TCP listener and an in-process worker joined over
// it — so the scrape covers every instrumented boundary at once. The
// body must be a valid Prometheus exposition naming the broker,
// journal, transport, retry, chaos and session families.
func TestMetricsEndpointLiveChaosRun(t *testing.T) {
	mgr, err := New(
		WithExecutor(ExecutorSSH),
		WithBroker(BrokerActiveMQ),
		WithCluster(ClusterConfig{Nodes: 8, Scale: 50 * time.Microsecond}),
		WithTimeout(time.Minute),
		WithListener("127.0.0.1:0"),
		WithMetrics("127.0.0.1:0"),
		WithJournal(t.TempDir()),
		WithChaos(ChaosConfig{
			Seed:          11,
			MessageDropP:  0.05,
			MessageDupP:   0.05,
			MessageDelayP: 0.05,
			InvokeErrorP:  0.05,
			DeployErrorP:  0.05,
			JournalErrorP: 0.02,
			SocketDropP:   0.02,
		}),
		WithRetry(RetryConfig{MaxAttempts: 10, BackoffBase: 0.25}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	if mgr.MetricsAddr() == "" {
		t.Fatal("MetricsAddr empty despite WithMetrics")
	}

	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "split", "work", "merge")
	w, err := JoinCluster(mgr.ListenerAddr(), services)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	deadline := time.Now().Add(10 * time.Second)
	for mgr.ConnectedNodes() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("worker never joined")
		}
		time.Sleep(10 * time.Millisecond)
	}

	def := Diamond(DefaultDiamondSpec(3, 3, false))
	h, err := mgr.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Statuses["MERGE"] != StatusCompleted {
		t.Fatalf("merge = %v", rep.Statuses["MERGE"])
	}

	resp, err := http.Get("http://" + mgr.MetricsAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("/metrics body invalid: %v\n%s", err, body)
	}

	// Every instrumented boundary must surface, and the load-bearing
	// counters must have actually counted this run.
	text := string(body)
	for _, family := range []string{
		"ginflow_mq_published_total",
		"ginflow_mq_deliveries_total",
		"ginflow_mq_batch_size",
		"ginflow_journal_appends_total",
		"ginflow_journal_fsyncs_total",
		"ginflow_transport_frames_sent_total",
		"ginflow_transport_frames_received_total",
		"ginflow_retry_attempts_total",
		"ginflow_chaos_draws_total",
		"ginflow_sessions_started_total",
		"ginflow_sessions_completed_total",
		"ginflow_events_total",
		"ginflow_agents_deployed_total",
		"ginflow_service_invoke_model_seconds",
		"ginflow_session_wall_seconds",
		"ginflow_hocl_reduce_calls_total",
	} {
		if !strings.Contains(text, "# TYPE "+family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	reg := DefaultMetrics()
	for name, labels := range map[string][]obs.Label{
		"ginflow_mq_published_total":          nil,
		"ginflow_journal_appends_total":       nil,
		"ginflow_transport_frames_sent_total": nil,
		"ginflow_chaos_draws_total":           {obs.L("boundary", "message")},
		"ginflow_agents_deployed_total":       nil,
	} {
		if got := reg.Counter(name, "", labels...).Value(); got == 0 {
			t.Errorf("%s = 0 after a chaos-seeded remote run", name)
		}
	}

	// The JSON mount serves the same registry in snapshot form.
	resp, err = http.Get("http://" + mgr.MetricsAddr() + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap []obs.FamilySnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics.json not parseable: %v", err)
	}
	if len(snap) == 0 {
		t.Error("/metrics.json empty")
	}
}

// TestTraceCapPublicAPI: WithTraceCap bounds the retained timeline of a
// traced session to the newest events, reported via Report.Events.
func TestTraceCapPublicAPI(t *testing.T) {
	mgr, err := New(
		WithCluster(ClusterConfig{Nodes: 4, Scale: 50 * time.Microsecond}),
		WithTimeout(30*time.Second),
		WithTrace(),
		WithTraceCap(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	def := Diamond(DefaultDiamondSpec(2, 2, false))
	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "split", "work", "merge")
	h, err := mgr.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 5 {
		t.Errorf("capped timeline length = %d, want 5", len(rep.Events))
	}
	// The newest events survive: a 2x2 diamond's last event is the exit
	// task completing.
	last := rep.Events[len(rep.Events)-1]
	if last.Kind != EventTaskCompleted {
		t.Errorf("last retained event = %v, want task-completed", last.Kind)
	}
}

// TestWriteChromeTracePublicAPI: the exported trace converter renders a
// session timeline into loadable trace_event JSON.
func TestWriteChromeTracePublicAPI(t *testing.T) {
	mgr, err := New(
		WithCluster(ClusterConfig{Nodes: 4, Scale: 50 * time.Microsecond}),
		WithTimeout(30*time.Second),
		WithTrace(),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	def := Diamond(DefaultDiamondSpec(2, 2, false))
	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "split", "work", "merge")
	h, err := mgr.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteChromeTrace(&buf, rep.Events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &out); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v", err)
	}
	var slices int
	for _, e := range out.TraceEvents {
		if e.Ph == "X" {
			slices++
		}
	}
	if want := 2*2 + 2; slices != want {
		t.Errorf("trace slices = %d, want %d (one per service invocation)", slices, want)
	}
}
