package ginflow_test

// TestPublicGodocComplete is the exported-comment lint for the public
// ginflow package and the documented support packages (a
// revive/golint-style check, kept in-tree so CI needs no external
// tool): every exported identifier — types, funcs, methods on exported
// types, and package-level consts/vars — must carry a doc comment, so
// `go doc` reads as reference documentation.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func TestPublicGodocComplete(t *testing.T) {
	// dir -> package name. internal/obs joins the public façade: it is
	// the metrics vocabulary embedders meet through MetricsRegistry.
	for dir, name := range map[string]string{
		".":            "ginflow",
		"internal/obs": "obs",
	} {
		lintPackageDocs(t, dir, name)
	}
}

// lintPackageDocs runs the exported-comment lint over one directory.
func lintPackageDocs(t *testing.T, dir, pkgName string) {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs[pkgName]
	if !ok {
		t.Fatalf("package %s not found in %s (got %v)", pkgName, dir, pkgs)
	}

	var missing []string
	report := func(pos token.Pos, kind, name string) {
		missing = append(missing, fmt.Sprintf("%s: %s %s", fset.Position(pos), kind, name))
	}

	for _, file := range pkg.Files {
		if strings.HasSuffix(fset.Position(file.Package).Filename, "_test.go") {
			continue
		}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedRecv(d) {
					continue
				}
				if d.Doc == nil {
					report(d.Pos(), "func", d.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(d, report)
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("exported identifiers without doc comments (godoc lint, %s):\n  %s",
			pkgName, strings.Join(missing, "\n  "))
	}
}

// exportedRecv reports whether a method's receiver type is exported
// (functions have no receiver and count as exported scope).
func exportedRecv(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch v := typ.(type) {
		case *ast.StarExpr:
			typ = v.X
		case *ast.IndexExpr:
			typ = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl enforces comments on exported type/const/var
// declarations: either the declaration block carries a doc comment or
// each exported spec does (both are idiomatic godoc).
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}
