// Package ginflow is a decentralised, adaptive workflow execution
// manager: a Go reproduction of "GinFlow: A Decentralised Adaptive
// Workflow Execution Manager" (Rojas Balderrama, Simonin, Tedeschi,
// IEEE IPDPS 2016).
//
// A workflow is a DAG of tasks bound to services. GinFlow translates it
// into an HOCL (Higher-Order Chemical Language) program — a multiset of
// molecules rewritten by reaction rules — and executes it either on a
// single interpreter (centralized) or, its reason for existing, on a set
// of cooperating service agents, each holding a local copy of its task's
// sub-solution and reacting to molecules received from its peers over a
// message broker. Workflows can carry adaptation specifications:
// alternative sub-workflows wired in on-the-fly when a service fails,
// without stopping and restarting the execution (§III of the paper).
// Agents themselves are recoverable: with the log-backed broker, a
// crashed agent's replacement rebuilds its state by replaying its inbox
// (§IV-B).
//
// # Quick start
//
// The primary API is the long-lived Manager: build it once, then submit
// any number of concurrent workflow sessions against its shared
// platform. Each submission returns a Handle for waiting, live status,
// cancellation and event streaming:
//
//	mgr, err := ginflow.New(
//		ginflow.WithExecutor(ginflow.ExecutorSSH),
//		ginflow.WithBroker(ginflow.BrokerActiveMQ),
//	)
//	defer mgr.Close()
//
//	def := ginflow.Diamond(ginflow.DefaultDiamondSpec(3, 3, false))
//	services := ginflow.NewServiceRegistry()
//	services.RegisterNoop(1.0, "split", "work", "merge")
//
//	handle, err := mgr.Submit(context.Background(), def, services)
//	report, err := handle.Wait(context.Background())
//
// Concurrent sessions multiplex over one cluster and broker; each runs
// in its own topic namespace, so their molecules never mix. For the
// paper's one-shot shape, Run remains: it builds a throwaway manager,
// submits and waits.
//
// The package is a façade over the implementation packages under
// internal/; every type needed by a client is re-exported here.
package ginflow

import (
	"context"
	"io"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/obs"
	"ginflow/internal/templates"
	"ginflow/internal/trace"
	"ginflow/internal/transport"
	"ginflow/internal/workflow"
)

// Workflow modelling.
type (
	// Workflow is a DAG of tasks plus optional adaptations (§III-B/C).
	Workflow = workflow.Definition
	// Task is one node of the DAG.
	Task = workflow.Task
	// ReplacementTask is a node of an adaptation's alternative
	// sub-workflow.
	ReplacementTask = workflow.ReplacementTask
	// Adaptation declares that a faulty sub-workflow is replaced
	// on-the-fly by an alternative one.
	Adaptation = workflow.Adaptation
	// DiamondSpec parameterises the paper's diamond benchmark workload.
	DiamondSpec = workflow.DiamondSpec
)

// Execution.
type (
	// Config selects executor, broker, platform size and fault injection.
	Config = core.Config
	// Report summarises a run: times (model seconds), failures,
	// recoveries, adaptations, results.
	Report = core.Report
	// ClusterConfig sizes the simulated platform.
	ClusterConfig = cluster.Config
	// ServiceRegistry maps service names to implementations.
	ServiceRegistry = agent.Registry
	// Service is one invocable service: modelled duration + computation.
	Service = agent.Service
	// TaskStatus is the observable state of a task (idle, ready,
	// completed, failed).
	TaskStatus = hoclflow.Status
	// ExecutorKind selects an executor (§IV-C).
	ExecutorKind = executor.Kind
	// BrokerKind selects a messaging middleware (§IV-A).
	BrokerKind = mq.Kind
	// ChaosConfig parameterises the deterministic chaos harness: seeded
	// fault injection at the message, invocation, deployment and journal
	// boundaries. One seed replays one fault schedule exactly.
	ChaosConfig = failure.ChaosConfig
	// RetryConfig bounds the retry-with-backoff loops run under chaos.
	RetryConfig = failure.RetryConfig
	// MetricsRegistry is a zero-dependency metrics registry (counters,
	// gauges, histograms) with Prometheus text exposition; the engine's
	// instruments resolve on one (WithMetricsRegistry, or the shared
	// DefaultMetrics registry).
	MetricsRegistry = obs.Registry
)

// Executor kinds (§IV-C; EC2 is the cloud executor the paper sketches
// as an extension).
const (
	ExecutorSSH         = executor.KindSSH
	ExecutorMesos       = executor.KindMesos
	ExecutorEC2         = executor.KindEC2
	ExecutorCentralized = executor.KindCentralized
)

// Broker kinds (§IV-A).
const (
	BrokerActiveMQ = mq.KindQueue
	BrokerKafka    = mq.KindLog
)

// Task status values.
const (
	StatusIdle      = hoclflow.StatusIdle
	StatusReady     = hoclflow.StatusReady
	StatusCompleted = hoclflow.StatusCompleted
	StatusFailed    = hoclflow.StatusFailed
)

// Event streaming. Handle.Events delivers the enactment timeline live —
// task lifecycle, service invocations, result transfers, adaptation
// triggers, crashes and recoveries — replacing the collect-then-read
// Report.Events slice as the observation path for running workflows.
type (
	// Event is one enactment-timeline entry (model-time stamped).
	Event = trace.Event
	// EventKind classifies an event.
	EventKind = trace.Kind
	// SessionEvent is an enactment event stamped with the session that
	// emitted it — the element of the Manager-level merged bus
	// (Manager.Events).
	SessionEvent = core.SessionEvent
)

// Event kinds, in rough lifecycle order.
const (
	EventAgentStarted     = trace.AgentStarted
	EventServiceInvoked   = trace.ServiceInvoked
	EventServiceCompleted = trace.ServiceCompleted
	EventServiceErrored   = trace.ServiceErrored
	EventResultSent       = trace.ResultSent
	EventAdaptTriggered   = trace.AdaptTriggered
	EventAgentCrashed     = trace.AgentCrashed
	EventAgentRecovered   = trace.AgentRecovered
	EventTaskCompleted    = trace.TaskCompleted
	EventSessionRecovered = trace.SessionRecovered
	// EventServiceFaulted marks a transient injected invocation fault;
	// the agent retries with backoff.
	EventServiceFaulted = trace.ServiceFaulted
	// EventMessageDeduped marks a duplicated delivery suppressed by the
	// inbox sequence protocol.
	EventMessageDeduped = trace.MessageDeduped
	// EventAgentEscalated marks an agent abandoned after its retry
	// budget ran out; the session fails with the cause chain.
	EventAgentEscalated = trace.AgentEscalated
	// EventEventsDropped summarises events lost on the lossy live
	// stream, recorded once per session.
	EventEventsDropped = trace.EventsDropped
)

// Sentinel errors of the Manager API, matchable with errors.Is.
var (
	// ErrStalled reports a session that did not complete inside its
	// timeout: some exit task never reached StatusCompleted.
	ErrStalled = core.ErrStalled
	// ErrCancelled reports a session stopped by Handle.Cancel or by
	// cancellation of the submitting context.
	ErrCancelled = core.ErrCancelled
	// ErrUnknownService reports a submission referencing a service
	// missing from the registry; Submit fails fast, before deployment.
	ErrUnknownService = core.ErrUnknownService
	// ErrManagerClosed reports a submission to a closed Manager.
	ErrManagerClosed = core.ErrManagerClosed
	// ErrNoBroker reports a distributed per-session executor override on
	// a Manager built without a broker (a centralized Manager).
	ErrNoBroker = core.ErrNoBroker
	// ErrNoJournal reports a Recover call on a Manager built without
	// WithJournal.
	ErrNoJournal = core.ErrNoJournal
	// ErrRetriesExhausted reports a retry budget spent on injected
	// transient faults: a failed session's error chain matches it when
	// chaos escalation (rather than a stall) ended the run.
	ErrRetriesExhausted = failure.ErrRetriesExhausted
	// ErrVirtualListen reports WithListener combined with
	// WithVirtualTime: out-of-process workers live on wall-clock time
	// and cannot take part in the discrete-event schedule.
	ErrVirtualListen = core.ErrVirtualListen
)

// Option configures a Manager. Options cover the same ground as the
// Config struct consumed by Run; the Manager constructor takes options
// so configuration can grow without breaking callers.
type Option func(*Config)

// WithExecutor selects the executor (default ExecutorSSH).
func WithExecutor(k ExecutorKind) Option { return func(c *Config) { c.Executor = k } }

// WithBroker selects the messaging middleware (default BrokerActiveMQ).
func WithBroker(k BrokerKind) Option { return func(c *Config) { c.Broker = k } }

// WithBrokerShards partitions the shared broker into n independent
// shards. Each session's topic namespace pins to one shard, so
// concurrent sessions spread over the shard set instead of queueing
// behind one modelled middleware occupancy; a single session's timing is
// unchanged at any shard count. 0 (the default) takes the broker's
// default shard count; 1 reproduces an unsharded broker.
func WithBrokerShards(n int) Option { return func(c *Config) { c.BrokerShards = n } }

// WithCluster sizes the simulated platform.
func WithCluster(cc ClusterConfig) Option { return func(c *Config) { c.Cluster = cc } }

// WithVirtualTime runs the simulated platform on a discrete-event
// clock: modelled sleeps and delivery latencies cost no real time —
// whenever every goroutine of the schedule is blocked, the clock jumps
// straight to the earliest pending deadline. Runs are deterministic in
// their seed down to the reported model-time numbers (two same-seed
// runs report bit-identical timings), which makes 100x100-scale meshes
// and thousand-session fans cost only CPU and makes timing assertions
// exact. Virtual time is incompatible with WithListener: out-of-process
// workers live on wall-clock time, so New fails with ErrVirtualListen
// when both are set.
func WithVirtualTime() Option { return func(c *Config) { c.Cluster.Virtual = true } }

// WithFailureInjection sets the default fault-injection parameters
// (§V-D): each service invocation crashes its agent with probability p
// after t model seconds. Overridable per submission.
func WithFailureInjection(p, t float64) Option {
	return func(c *Config) { c.FailureP = p; c.FailureT = t }
}

// WithRestartDelay sets the modelled cost (model seconds) of respawning
// a crashed agent.
func WithRestartDelay(seconds float64) Option {
	return func(c *Config) { c.RestartDelay = seconds }
}

// WithMaxRecoveries bounds total agent respawns per session.
func WithMaxRecoveries(n int) Option { return func(c *Config) { c.MaxRecoveries = n } }

// WithTimeout sets the default per-session real-time timeout.
func WithTimeout(d time.Duration) Option { return func(c *Config) { c.Timeout = d } }

// WithTrace retains each session's full event timeline in Report.Events
// by default (live streaming via Handle.Events needs no option).
func WithTrace() Option { return func(c *Config) { c.CollectTrace = true } }

// WithChaos enables the deterministic chaos harness: every boundary the
// config selects — message delivery (drop, duplicate, delay, reorder),
// service invocation (transient error, timeout, slow-down), agent
// deployment and journal I/O (write error, torn write, slow fsync) — is
// perturbed by a seeded schedule. The same seed over the same workload
// replays the same faults, so a failing run is reproducible from its
// seed alone. Pair with WithRetry to tune how hard the engine fights
// back before escalating.
func WithChaos(cc ChaosConfig) Option { return func(c *Config) { c.Chaos = cc } }

// WithRetry bounds the retry-with-backoff loops run under WithChaos
// (invocation retries, deployment retries, journal write retries). The
// zero value takes the defaults (5 attempts, 0.5 model-second base,
// doubling).
func WithRetry(rc RetryConfig) Option { return func(c *Config) { c.Retry = rc } }

// WithListener starts a network transport listener on addr ("host:port";
// ":0" picks a free port, resolved by Manager.ListenerAddr). Worker
// processes — the ginflow-node binary, or any program calling
// JoinCluster — connect to it over TCP, and sessions submitted while
// workers are joined run their service agents out-of-process: the
// workers' agents publish and subscribe through the Manager's broker
// over the wire, so the engine's semantics (ordering barriers, inbox
// replay recovery, adaptation) are unchanged. Requires a distributed
// executor (ErrNoBroker otherwise).
func WithListener(addr string) Option { return func(c *Config) { c.Listen = addr } }

// WithMetrics serves the Manager's observability endpoints on addr
// ("host:port"; ":0" picks a free port, resolved by Manager.MetricsAddr):
// Prometheus text exposition at /metrics, a JSON snapshot at
// /metrics.json and the standard net/http/pprof profiles under
// /debug/pprof/. The endpoint covers every instrumented boundary —
// broker publishes and deliveries, journal appends and fsyncs,
// transport frames and reconnects, retry attempts, chaos fault draws
// and session lifecycle timings on both the wall clock and the model
// clock.
func WithMetrics(addr string) Option { return func(c *Config) { c.MetricsAddr = addr } }

// WithMetricsRegistry resolves the Manager's instruments on a private
// registry instead of the process-wide DefaultMetrics one. Two
// same-seed virtual-time runs over fresh private registries produce
// bit-identical model-time metric snapshots, so a run's metrics can be
// asserted on, diffed, or compared across refactorings.
func WithMetricsRegistry(reg *MetricsRegistry) Option {
	return func(c *Config) { c.Metrics = reg }
}

// WithTraceCap bounds each session's retained event timeline to the
// newest n events: the recorder becomes a ring buffer and the oldest
// events are dropped (and counted) once n is exceeded. The default (0)
// retains the full timeline, which for long chaos soaks grows without
// bound.
func WithTraceCap(n int) Option { return func(c *Config) { c.TraceCap = n } }

// WithJournal makes every distributed session durable: the submitted
// workflow, periodic space snapshots and the status-push stream are
// journaled under dir (one write-ahead segment log per session), and a
// Manager process crash no longer loses in-flight sessions — a fresh
// Manager over the same directory resumes them with Recover. Completed
// work is never re-executed on resume: tasks whose results were
// journaled restart as already-done.
func WithJournal(dir string) Option { return func(c *Config) { c.Journal.Dir = dir } }

// SubmitOption tunes one submission.
type SubmitOption = core.SubmitOption

// SubmitTimeout bounds one session in real time, overriding the
// manager's default.
func SubmitTimeout(d time.Duration) SubmitOption { return core.SubmitTimeout(d) }

// SubmitTrace retains this session's event timeline in Report.Events.
func SubmitTrace() SubmitOption { return core.SubmitTrace() }

// SubmitFailureInjection overrides the manager's fault-injection
// parameters for one session.
func SubmitFailureInjection(p, t float64) SubmitOption {
	return core.SubmitFailureInjection(p, t)
}

// WithSessionExecutor overrides the Manager's executor for one session:
// a centralized single-interpreter debug run inside a distributed
// Manager, or a different distributed backend (e.g. one Mesos session
// on an SSH manager). A distributed kind requires the Manager to have a
// broker (ErrNoBroker otherwise).
func WithSessionExecutor(k ExecutorKind) SubmitOption { return core.SubmitExecutor(k) }

// Manager is the long-lived workflow engine: one shared simulated
// cluster, broker and executor serving any number of concurrent workflow
// sessions, each in its own topic namespace. Create with New, submit
// with Submit, shut down with Close.
type Manager struct {
	inner *core.Manager
}

// New builds a Manager; its cluster, broker and executor live until
// Close. Zero-option managers run SSH + ActiveMQ on the default
// 25-node platform.
func New(opts ...Option) (*Manager, error) {
	var cfg Config
	for _, opt := range opts {
		opt(&cfg)
	}
	inner, err := core.NewManager(cfg)
	if err != nil {
		return nil, err
	}
	return &Manager{inner: inner}, nil
}

// Submit starts a workflow session and returns its handle immediately;
// deployment and enactment proceed in the background. The submitting
// context bounds the session: cancelling it cancels the run. Service
// bindings are validated up front (ErrUnknownService).
func (m *Manager) Submit(ctx context.Context, def *Workflow, services *ServiceRegistry, opts ...SubmitOption) (*Handle, error) {
	s, err := m.inner.Submit(ctx, def, services, opts...)
	if err != nil {
		return nil, err
	}
	return &Handle{s: s}, nil
}

// Active returns the number of sessions currently running.
func (m *Manager) Active() int { return m.inner.Active() }

// Events returns a live merged stream of every session's enactment
// events, each stamped with its session ID — the observation point for
// dashboard-style consumers watching the whole Manager rather than one
// Handle. Recovery announces each resumed session here with an
// EventSessionRecovered. Delivery is lossy under backpressure and the
// channel closes when the Manager closes.
func (m *Manager) Events() <-chan SessionEvent { return m.inner.Events() }

// EventsDropped reports how many merged-bus events were lost to slow
// consumers of Manager.Events.
func (m *Manager) EventsDropped() int64 { return m.inner.EventsDropped() }

// ListenerAddr returns the bound address of the WithListener transport
// listener — the dial target for JoinCluster and ginflow-node, with a
// ":0" listen address resolved to the picked port. Empty without
// WithListener.
func (m *Manager) ListenerAddr() string { return m.inner.ListenerAddr() }

// Metrics returns the registry the Manager's instruments resolve on:
// the WithMetricsRegistry one, or the process-wide DefaultMetrics
// registry.
func (m *Manager) Metrics() *MetricsRegistry { return m.inner.Metrics() }

// MetricsAddr returns the bound address of the WithMetrics endpoint,
// with a ":0" address resolved to the picked port. Empty without
// WithMetrics.
func (m *Manager) MetricsAddr() string { return m.inner.MetricsAddr() }

// ConnectedNodes reports how many worker processes have joined the
// WithListener transport listener. Worker identities persist across
// connection drops, so a briefly-partitioned worker still counts.
func (m *Manager) ConnectedNodes() int { return m.inner.ConnectedNodes() }

// Recover scans the journal directory (WithJournal) for sessions a
// previous Manager process left unfinished — a crash, or a graceful
// Close mid-run — rebuilds each one from its snapshot + delta log and
// resumes it, returning the live handles. Tasks whose results were
// journaled are not re-executed. Service implementations cannot be
// persisted, so the registry is supplied again; opts apply on top of
// each session's journaled submission config. Sessions whose journal
// cannot be rebuilt are skipped and reported in the returned error
// alongside the successfully recovered handles.
func (m *Manager) Recover(ctx context.Context, services *ServiceRegistry, opts ...SubmitOption) ([]*Handle, error) {
	sessions, err := m.inner.Recover(ctx, services, opts...)
	handles := make([]*Handle, len(sessions))
	for i, s := range sessions {
		handles[i] = &Handle{s: s}
	}
	return handles, err
}

// Close cancels every active session, waits for them to release their
// resources and shuts the shared broker down. With WithJournal, the
// journals of in-flight sessions are left on disk resumable — Close is
// the process stopping, not the workflows being cancelled; an explicit
// Handle.Cancel is terminal and reclaims the session's journal.
func (m *Manager) Close() error { return m.inner.Close() }

// Handle observes and controls one submitted workflow session.
type Handle struct {
	s *core.Session
}

// ID returns the session's manager-unique identifier.
func (h *Handle) ID() int64 { return h.s.ID() }

// Wait blocks until the session completes (or ctx ends) and returns the
// run report. A report is returned even when the run failed, so callers
// can inspect partial progress; the error matches ErrStalled /
// ErrCancelled via errors.Is where applicable.
func (h *Handle) Wait(ctx context.Context) (*Report, error) { return h.s.Wait(ctx) }

// Done returns a channel closed when the session has finished.
func (h *Handle) Done() <-chan struct{} { return h.s.Done() }

// Cancel stops the session; Wait returns an error matching ErrCancelled
// (wrapping cause when non-nil). Cancelling a finished session is a
// no-op.
func (h *Handle) Cancel(cause error) { h.s.Cancel(cause) }

// Status reports the live per-task statuses (StatusIdle for tasks that
// have not reported yet); after completion it reflects the final report.
func (h *Handle) Status() map[string]TaskStatus { return h.s.Status() }

// Events returns a live, typed stream of the session's enactment
// events. Delivery is non-blocking — a subscriber that stops draining
// loses events rather than stalling agents — and the channel closes when
// the session finishes.
func (h *Handle) Events() <-chan Event { return h.s.Events() }

// EventsDropped reports how many live events were lost because an
// Events subscriber stopped draining — the observable cost of the lossy
// delivery contract (also surfaced in Report.EventsDropped).
func (h *Handle) EventsDropped() int64 { return h.s.EventsDropped() }

// Worker is a joined worker process's handle: it hosts service agents
// for sessions the Manager assigns to it, out-of-process, until Close.
// The ginflow-node binary is a thin wrapper around JoinCluster; embed a
// Worker directly to ship custom service implementations with the
// process that registers them.
type Worker struct {
	n *transport.Node
}

// JoinCluster connects this process to a Manager's WithListener address
// as a worker node. The registry supplies the service implementations
// this worker can host — implementations cannot travel over the wire,
// so every worker registers what its assigned tasks will need (a task
// bound to a service missing here fails the session at assignment
// time). The worker then serves assignments until Close: agents are
// rebuilt locally from the workflow definition, supervised with crash
// restarts and inbox replay, and their traffic bridges to the Manager's
// broker over a reliable, reconnecting link.
func JoinCluster(addr string, services *ServiceRegistry) (*Worker, error) {
	n, err := transport.Join(addr, transport.NodeConfig{Services: services})
	if err != nil {
		return nil, err
	}
	return &Worker{n: n}, nil
}

// NodeID returns the worker's server-assigned identity (stable across
// reconnects).
func (w *Worker) NodeID() uint64 { return w.n.NodeID() }

// Close stops every session the worker hosts and disconnects it.
func (w *Worker) Close() error { return w.n.Close() }

// Run executes a workflow with the given services under the given
// configuration and returns the run report: the single-shot
// compatibility path, equivalent to New + Submit + Wait on a throwaway
// Manager.
func Run(ctx context.Context, def *Workflow, services *ServiceRegistry, cfg Config) (*Report, error) {
	return core.Run(ctx, def, services, cfg)
}

// NewServiceRegistry returns an empty service registry.
func NewServiceRegistry() *ServiceRegistry { return agent.NewRegistry() }

// DefaultMetrics returns the process-wide metrics registry, the one
// Managers built without WithMetricsRegistry resolve their instruments
// on. Package-level instrumentation (transport frames, HOCL reductions,
// trace-ring drops) always lands here.
func DefaultMetrics() *MetricsRegistry { return obs.Default() }

// NewMetricsRegistry returns an empty private metrics registry for
// WithMetricsRegistry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WriteChromeTrace renders an event timeline (Report.Events, collected
// with WithTrace or SubmitTrace) as Chrome trace_event JSON: load the
// file in chrome://tracing or https://ui.perfetto.dev to see each
// task's lifecycle as a labelled track, with service invocations as
// duration slices and the remaining events as instants. Timestamps are
// model seconds mapped to trace microseconds.
func WriteChromeTrace(w io.Writer, events []Event) error {
	return trace.WriteChromeTrace(w, events)
}

// FromJSON decodes and validates a workflow from its JSON form (§IV-D).
func FromJSON(data []byte) (*Workflow, error) { return workflow.FromJSON(data) }

// ParseClusterFile decodes a platform description — the machine list the
// SSH executor deploys onto (§IV-C).
func ParseClusterFile(data []byte) (ClusterConfig, error) {
	return cluster.ParseConfigFile(data)
}

// Diamond builds the paper's Fig. 11 benchmark workload: SPLIT -> h×v
// mesh -> MERGE, simple- or fully-connected.
func Diamond(spec DiamondSpec) *Workflow { return workflow.Diamond(spec) }

// DefaultDiamondSpec returns the benchmark diamond spec.
func DefaultDiamondSpec(h, v int, fully bool) DiamondSpec {
	return workflow.DefaultDiamondSpec(h, v, fully)
}

// WithBodyReplacement extends a diamond with the §V-B adaptation: the
// whole mesh body is replaced on failure by a fresh mesh.
func WithBodyReplacement(d *Workflow, spec DiamondSpec, replacementFully bool, replacementService string) *Workflow {
	return workflow.WithBodyReplacement(d, spec, replacementFully, replacementService)
}

// Sequence builds a linear workflow of n tasks.
func Sequence(n int, service, input string) *Workflow {
	return workflow.Sequence(n, service, input)
}

// Montage builds the 118-task Montage-like workflow of the paper's
// resilience evaluation (§V-D), and RegisterMontageServices registers
// its simulated kernels.
func Montage() *Workflow { return montage.Workflow() }

// RegisterMontageServices registers the Montage kernels on a registry.
func RegisterMontageServices(reg *ServiceRegistry) { montage.RegisterServices(reg) }

// Template building (Tigres-style combinators; the paper's §VII notes
// GinFlow's integration into the Tigres workflow environment).
type (
	// TemplateBuilder composes workflows from sequence / split /
	// parallel / merge templates.
	TemplateBuilder = templates.Builder
	// Stage is the set of open task IDs a template connects from.
	Stage = templates.Stage
)

// NewTemplate starts a template-based workflow builder.
func NewTemplate(name string) *TemplateBuilder { return templates.New(name) }

// JoinStages merges stages so the next template connects from all of
// them.
func JoinStages(stages ...Stage) Stage { return templates.Join(stages...) }

// EvalHOCL parses and reduces a standalone HOCL program, returning the
// final (inert) solution rendered in HOCL syntax. It gives CLI users and
// examples direct access to the chemical engine underneath GinFlow.
func EvalHOCL(src string) (string, error) {
	e := hocl.NewEngine()
	sol, err := e.Run(src)
	if err != nil {
		return "", err
	}
	return hocl.Pretty(sol), nil
}
