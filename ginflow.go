// Package ginflow is a decentralised, adaptive workflow execution
// manager: a Go reproduction of "GinFlow: A Decentralised Adaptive
// Workflow Execution Manager" (Rojas Balderrama, Simonin, Tedeschi,
// IEEE IPDPS 2016).
//
// A workflow is a DAG of tasks bound to services. GinFlow translates it
// into an HOCL (Higher-Order Chemical Language) program — a multiset of
// molecules rewritten by reaction rules — and executes it either on a
// single interpreter (centralized) or, its reason for existing, on a set
// of cooperating service agents, each holding a local copy of its task's
// sub-solution and reacting to molecules received from its peers over a
// message broker. Workflows can carry adaptation specifications:
// alternative sub-workflows wired in on-the-fly when a service fails,
// without stopping and restarting the execution (§III of the paper).
// Agents themselves are recoverable: with the log-backed broker, a
// crashed agent's replacement rebuilds its state by replaying its inbox
// (§IV-B).
//
// # Quick start
//
//	def := ginflow.Diamond(ginflow.DefaultDiamondSpec(3, 3, false))
//	services := ginflow.NewServiceRegistry()
//	services.RegisterNoop(1.0, "split", "work", "merge")
//	report, err := ginflow.Run(context.Background(), def, services, ginflow.Config{
//		Executor: ginflow.ExecutorSSH,
//		Broker:   ginflow.BrokerActiveMQ,
//	})
//
// The package is a façade over the implementation packages under
// internal/; every type needed by a client is re-exported here.
package ginflow

import (
	"context"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/templates"
	"ginflow/internal/workflow"
)

// Workflow modelling.
type (
	// Workflow is a DAG of tasks plus optional adaptations (§III-B/C).
	Workflow = workflow.Definition
	// Task is one node of the DAG.
	Task = workflow.Task
	// ReplacementTask is a node of an adaptation's alternative
	// sub-workflow.
	ReplacementTask = workflow.ReplacementTask
	// Adaptation declares that a faulty sub-workflow is replaced
	// on-the-fly by an alternative one.
	Adaptation = workflow.Adaptation
	// DiamondSpec parameterises the paper's diamond benchmark workload.
	DiamondSpec = workflow.DiamondSpec
)

// Execution.
type (
	// Config selects executor, broker, platform size and fault injection.
	Config = core.Config
	// Report summarises a run: times (model seconds), failures,
	// recoveries, adaptations, results.
	Report = core.Report
	// ClusterConfig sizes the simulated platform.
	ClusterConfig = cluster.Config
	// ServiceRegistry maps service names to implementations.
	ServiceRegistry = agent.Registry
	// Service is one invocable service: modelled duration + computation.
	Service = agent.Service
	// TaskStatus is the observable state of a task (idle, ready,
	// completed, failed).
	TaskStatus = hoclflow.Status
	// ExecutorKind selects an executor (§IV-C).
	ExecutorKind = executor.Kind
	// BrokerKind selects a messaging middleware (§IV-A).
	BrokerKind = mq.Kind
)

// Executor kinds (§IV-C; EC2 is the cloud executor the paper sketches
// as an extension).
const (
	ExecutorSSH         = executor.KindSSH
	ExecutorMesos       = executor.KindMesos
	ExecutorEC2         = executor.KindEC2
	ExecutorCentralized = executor.KindCentralized
)

// Broker kinds (§IV-A).
const (
	BrokerActiveMQ = mq.KindQueue
	BrokerKafka    = mq.KindLog
)

// Task status values.
const (
	StatusIdle      = hoclflow.StatusIdle
	StatusReady     = hoclflow.StatusReady
	StatusCompleted = hoclflow.StatusCompleted
	StatusFailed    = hoclflow.StatusFailed
)

// Run executes a workflow with the given services under the given
// configuration and returns the run report.
func Run(ctx context.Context, def *Workflow, services *ServiceRegistry, cfg Config) (*Report, error) {
	return core.Run(ctx, def, services, cfg)
}

// NewServiceRegistry returns an empty service registry.
func NewServiceRegistry() *ServiceRegistry { return agent.NewRegistry() }

// FromJSON decodes and validates a workflow from its JSON form (§IV-D).
func FromJSON(data []byte) (*Workflow, error) { return workflow.FromJSON(data) }

// ParseClusterFile decodes a platform description — the machine list the
// SSH executor deploys onto (§IV-C).
func ParseClusterFile(data []byte) (ClusterConfig, error) {
	return cluster.ParseConfigFile(data)
}

// Diamond builds the paper's Fig. 11 benchmark workload: SPLIT -> h×v
// mesh -> MERGE, simple- or fully-connected.
func Diamond(spec DiamondSpec) *Workflow { return workflow.Diamond(spec) }

// DefaultDiamondSpec returns the benchmark diamond spec.
func DefaultDiamondSpec(h, v int, fully bool) DiamondSpec {
	return workflow.DefaultDiamondSpec(h, v, fully)
}

// WithBodyReplacement extends a diamond with the §V-B adaptation: the
// whole mesh body is replaced on failure by a fresh mesh.
func WithBodyReplacement(d *Workflow, spec DiamondSpec, replacementFully bool, replacementService string) *Workflow {
	return workflow.WithBodyReplacement(d, spec, replacementFully, replacementService)
}

// Sequence builds a linear workflow of n tasks.
func Sequence(n int, service, input string) *Workflow {
	return workflow.Sequence(n, service, input)
}

// Montage builds the 118-task Montage-like workflow of the paper's
// resilience evaluation (§V-D), and RegisterMontageServices registers
// its simulated kernels.
func Montage() *Workflow { return montage.Workflow() }

// RegisterMontageServices registers the Montage kernels on a registry.
func RegisterMontageServices(reg *ServiceRegistry) { montage.RegisterServices(reg) }

// Template building (Tigres-style combinators; the paper's §VII notes
// GinFlow's integration into the Tigres workflow environment).
type (
	// TemplateBuilder composes workflows from sequence / split /
	// parallel / merge templates.
	TemplateBuilder = templates.Builder
	// Stage is the set of open task IDs a template connects from.
	Stage = templates.Stage
)

// NewTemplate starts a template-based workflow builder.
func NewTemplate(name string) *TemplateBuilder { return templates.New(name) }

// JoinStages merges stages so the next template connects from all of
// them.
func JoinStages(stages ...Stage) Stage { return templates.Join(stages...) }

// EvalHOCL parses and reduces a standalone HOCL program, returning the
// final (inert) solution rendered in HOCL syntax. It gives CLI users and
// examples direct access to the chemical engine underneath GinFlow.
func EvalHOCL(src string) (string, error) {
	e := hocl.NewEngine()
	sol, err := e.Run(src)
	if err != nil {
		return "", err
	}
	return hocl.Pretty(sol), nil
}
