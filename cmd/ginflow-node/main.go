// Command ginflow-node is a GinFlow worker process: it joins a
// manager's transport listener (ginflow -listen, or the WithListener
// API option) and hosts service agents for the sessions the manager
// assigns to it — the multi-machine deployment shape of the paper's
// engine, with the service agents running out-of-process from the
// manager and cooperating through its broker over TCP.
//
// Service implementations cannot travel over the wire, so the worker
// registers locally what its assigned tasks will need: -services lists
// simulated no-op services (of -task-duration model seconds each),
// -fail marks services that raise execution exceptions (driving
// declared adaptations), and -montage registers the built-in Montage
// kernels. A session whose tasks reference a service missing here fails
// at assignment time, before anything runs.
//
// The worker keeps serving until interrupted. A dropped connection is
// not fatal: it reconnects under the same server-assigned identity and
// the reliable link replays whatever either side missed.
//
// Examples:
//
//	ginflow-node -addr 127.0.0.1:7410 -services split,work,merge
//	ginflow-node -addr manager:7410 -montage -name rack2-7
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ginflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ginflow-node:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "", "manager transport address to join (required)")
		name         = flag.String("name", "", "worker label shown to the manager (default the hostname)")
		serviceList  = flag.String("services", "", "comma-separated simulated services this worker hosts")
		taskDuration = flag.Float64("task-duration", 1.0, "simulated service duration (model seconds)")
		fail         = flag.String("fail", "", "comma-separated services that raise execution exceptions")
		montage      = flag.Bool("montage", false, "register the built-in Montage kernels (§V-D)")
	)
	flag.Parse()
	if *addr == "" {
		return fmt.Errorf("-addr is required (the manager's -listen address)")
	}
	if *name == "" {
		if h, err := os.Hostname(); err == nil {
			*name = h
		}
	}

	services := ginflow.NewServiceRegistry()
	if *montage {
		ginflow.RegisterMontageServices(services)
	}
	failing := map[string]bool{}
	for _, s := range strings.Split(*fail, ",") {
		if s = strings.TrimSpace(s); s != "" {
			failing[s] = true
		}
	}
	registered := 0
	for _, s := range strings.Split(*serviceList+","+*fail, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if failing[s] {
			services.RegisterFailing(s, *taskDuration)
		} else {
			services.RegisterNoop(*taskDuration, s)
		}
		registered++
	}
	if registered == 0 && !*montage {
		return fmt.Errorf("no services registered (use -services, -fail or -montage)")
	}

	w, err := ginflow.JoinCluster(*addr, services)
	if err != nil {
		return err
	}
	defer w.Close()
	fmt.Printf("ginflow-node: joined %s as node %d (%s)\n", *addr, w.NodeID(), *name)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	fmt.Println("ginflow-node: shutting down")
	return nil
}
