package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ginflow"
)

func TestBuildWorkloadDiamond(t *testing.T) {
	def, services, err := buildWorkload("", "3x2", false, false, "0.5", "")
	if err != nil {
		t.Fatal(err)
	}
	if def.TaskCount() != 3*2+2 {
		t.Errorf("tasks = %d", def.TaskCount())
	}
	for _, svc := range []string{"split", "work", "merge"} {
		if _, ok := services.Lookup(svc); !ok {
			t.Errorf("service %q not registered", svc)
		}
	}
}

func TestBuildWorkloadDiamondBad(t *testing.T) {
	for _, bad := range []string{"x", "0x3", "3x0", "3by3"} {
		if _, _, err := buildWorkload("", bad, false, false, "1", ""); err == nil {
			t.Errorf("diamond %q accepted", bad)
		}
	}
}

func TestBuildWorkloadMontage(t *testing.T) {
	def, services, err := buildWorkload("", "", false, true, "1", "")
	if err != nil {
		t.Fatal(err)
	}
	if def.TaskCount() != 118 {
		t.Errorf("tasks = %d", def.TaskCount())
	}
	if len(services.Names()) != 118 {
		t.Errorf("services = %d", len(services.Names()))
	}
}

func TestBuildWorkloadJSONFileWithFailingService(t *testing.T) {
	src := `{
	  "tasks": [
	    {"id": "T1", "service": "s1", "in": ["x"], "dst": ["T2"]},
	    {"id": "T2", "service": "s2"}
	  ]
	}`
	dir := t.TempDir()
	path := filepath.Join(dir, "wf.json")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	def, services, err := buildWorkload(path, "", false, false, "0.5", "s2, ")
	if err != nil {
		t.Fatal(err)
	}
	if def.TaskCount() != 2 {
		t.Errorf("tasks = %d", def.TaskCount())
	}
	s2, ok := services.Lookup("s2")
	if !ok {
		t.Fatal("s2 missing")
	}
	if _, err := s2.Invoke(nil); err == nil {
		t.Error("s2 should be registered as failing")
	}
	s1, _ := services.Lookup("s1")
	if _, err := s1.Invoke(nil); err != nil {
		t.Error("s1 should be healthy")
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	if _, _, err := buildWorkload("", "", false, false, "1", ""); err == nil {
		t.Error("no workload selected but accepted")
	}
	if _, _, err := buildWorkload("/no/such/file.json", "", false, false, "1", ""); err == nil {
		t.Error("missing file accepted")
	}
	if _, _, err := buildWorkload("", "2x2", false, false, "abc", ""); err == nil {
		t.Error("bad duration accepted")
	}
}

// TestRunParallelSessions drives the -n mode end to end: several
// concurrent submissions of one workload through one shared Manager.
func TestRunParallelSessions(t *testing.T) {
	def, services, err := buildWorkload("", "2x2", false, false, "0.1", "")
	if err != nil {
		t.Fatal(err)
	}
	cfg := ginflow.Config{
		Executor: ginflow.ExecutorSSH,
		Broker:   ginflow.BrokerActiveMQ,
		Cluster:  ginflow.ClusterConfig{Nodes: 6, Scale: 50 * time.Microsecond},
		Timeout:  30 * time.Second,
	}
	var buf bytes.Buffer
	if err := runParallel(&buf, def, services, cfg, 3, false, ""); err != nil {
		t.Fatalf("runParallel: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, frag := range []string{"submitted 3 concurrent sessions", "session 1:", "session 3:", "aggregate:   3/3 sessions completed"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestPrintReport(t *testing.T) {
	rep := &ginflow.Report{
		Workflow: "wf", Executor: "ssh", Broker: "activemq",
		Tasks: 4, Agents: 5, Nodes: 3,
		DeployTime: 3.5, ExecTime: 12.25, Messages: 17,
		Failures: 2, Recoveries: 2,
		Adaptations: []string{"a1"},
		Results:     map[string][]string{"T4": {`"out"`}},
		Statuses:    map[string]ginflow.TaskStatus{"T4": ginflow.StatusCompleted},
	}
	var buf bytes.Buffer
	printReport(&buf, rep, true)
	out := buf.String()
	for _, frag := range []string{
		"workflow:     wf", "ssh", "activemq",
		"deploy time:  3.5", "exec time:    12.2",
		"failures:     2", "adaptations:  a1",
		`result[T4]: "out"`, "statuses:", "completed",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("report output missing %q:\n%s", frag, out)
		}
	}
	// Non-verbose output omits statuses.
	buf.Reset()
	printReport(&buf, rep, false)
	if strings.Contains(buf.String(), "statuses:") {
		t.Error("non-verbose output should omit statuses")
	}
}
