// Command ginflow runs a workflow on the GinFlow engine — the
// counterpart of the paper's command line interface (§IV-D), "which
// gives control over various execution options (executor, messaging
// framework, ...)".
//
// Workflows come from a JSON file (-file), from the built-in diamond
// generator (-diamond HxV) or from the built-in Montage workload
// (-montage). Services are simulated: JSON/diamond tasks run a no-op
// service of -task-duration model seconds; services listed in -fail
// raise an execution exception (driving any declared adaptation).
//
// With -n N (N > 1) the CLI exercises the long-lived Manager API: the
// workload is submitted N times concurrently to one shared engine —
// one cluster, one broker, N topic-namespaced sessions — and each
// session's report is printed as it completes.
//
// With -journal DIR sessions are durable: the engine write-ahead-logs
// each session under DIR, and a killed process leaves them resumable.
// -resume recovers and finishes whatever unfinished sessions DIR holds
// (the workload flags still select the simulated services; the
// workflows themselves are read back from the journal).
//
// Examples:
//
//	ginflow -diamond 10x10 -executor mesos -broker kafka -nodes 15
//	ginflow -file workflow.json -fail s2
//	ginflow -montage -p 0.5 -T 15
//	ginflow -diamond 6x6 -n 8
//	ginflow -diamond 8x8 -journal /var/lib/ginflow   # durable run
//	ginflow -diamond 8x8 -journal /var/lib/ginflow -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"ginflow"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ginflow:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		file     = flag.String("file", "", "workflow JSON file (paper §IV-D format)")
		diamond  = flag.String("diamond", "", "built-in diamond workload, e.g. 10x10")
		fully    = flag.Bool("fully", false, "fully-connect the diamond mesh")
		montageW = flag.Bool("montage", false, "built-in 118-task Montage workload (§V-D)")

		executorKind = flag.String("executor", "ssh", "executor: ssh | mesos | ec2 | centralized")
		brokerKind   = flag.String("broker", "activemq", "broker: activemq | kafka")
		nodes        = flag.Int("nodes", 25, "simulated cluster nodes")
		clusterFile  = flag.String("cluster-file", "", "platform description file (overrides -nodes)")
		scale        = flag.Duration("scale", time.Millisecond, "real time per model second")
		timeout      = flag.Duration("timeout", 2*time.Minute, "run timeout (real time)")

		taskDuration = flag.String("task-duration", "1.0", "noop service duration (model seconds)")
		fail         = flag.String("fail", "", "comma-separated services that raise execution exceptions")

		failureP = flag.Float64("p", 0, "agent crash probability per invocation (§V-D)")
		failureT = flag.Float64("T", 0, "agent crash delay, model seconds after service start")

		parallel = flag.Int("n", 1, "concurrent submissions of the workload through one shared Manager")

		journalDir = flag.String("journal", "", "journal directory: sessions become durable and crash-resumable")
		resume     = flag.Bool("resume", false, "recover and finish the unfinished sessions in -journal instead of submitting")

		listen  = flag.String("listen", "", "transport listener address (e.g. :7410): ginflow-node workers join and host the agents out-of-process")
		workers = flag.Int("workers", 1, "with -listen, wait for this many workers to join before submitting")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (Prometheus), /metrics.json and /debug/pprof/ on this address for the duration of the run (e.g. :9090)")
		traceOut    = flag.String("trace-out", "", "write the first session's enactment timeline as Chrome trace_event JSON to this file (implies trace collection; open in chrome://tracing or Perfetto)")

		verbose   = flag.Bool("v", false, "print per-task statuses")
		showTrace = flag.Bool("trace", false, "print the enactment timeline")
		dumpDOT   = flag.Bool("dot", false, "print the workflow as Graphviz DOT and exit")
		dumpHOCL  = flag.Bool("dump-hocl", false, "print the workflow's HOCL translation and exit")
	)
	flag.Parse()

	def, services, err := buildWorkload(*file, *diamond, *fully, *montageW, *taskDuration, *fail)
	if err != nil {
		return err
	}
	if *dumpDOT {
		fmt.Print(def.DOT())
		return nil
	}
	if *dumpHOCL {
		src, err := def.HOCLSource()
		if err != nil {
			return err
		}
		fmt.Println(src)
		return nil
	}

	clusterCfg := ginflow.ClusterConfig{Nodes: *nodes, Scale: *scale}
	if *clusterFile != "" {
		data, err := os.ReadFile(*clusterFile)
		if err != nil {
			return err
		}
		clusterCfg, err = ginflow.ParseClusterFile(data)
		if err != nil {
			return err
		}
		if clusterCfg.Scale == 0 {
			clusterCfg.Scale = *scale
		}
	}

	cfg := ginflow.Config{
		Executor:     ginflow.ExecutorKind(*executorKind),
		Broker:       ginflow.BrokerKind(*brokerKind),
		Cluster:      clusterCfg,
		FailureP:     *failureP,
		FailureT:     *failureT,
		Timeout:      *timeout,
		CollectTrace: *showTrace || *traceOut != "",
	}
	cfg.Journal.Dir = *journalDir
	cfg.Listen = *listen
	cfg.MetricsAddr = *metricsAddr

	if *listen != "" && !*resume {
		return runListen(os.Stdout, def, services, cfg, *workers, *parallel, *verbose, *traceOut)
	}

	if *resume {
		if *journalDir == "" {
			return fmt.Errorf("-resume requires -journal (the directory holding the unfinished sessions)")
		}
		return runResume(os.Stdout, services, cfg, *verbose)
	}

	if *parallel > 1 {
		return runParallel(os.Stdout, def, services, cfg, *parallel, *verbose, *traceOut)
	}

	report, err := ginflow.Run(context.Background(), def, services, cfg)
	if report != nil {
		printReport(os.Stdout, report, *verbose)
		if *showTrace {
			fmt.Println("timeline:")
			for _, e := range report.Events {
				fmt.Println(" ", e)
			}
		}
		if *traceOut != "" {
			if terr := writeTraceFile(*traceOut, report.Events); terr != nil && err == nil {
				err = terr
			} else if terr == nil {
				fmt.Printf("trace:        %s (%d events; open in chrome://tracing)\n", *traceOut, len(report.Events))
			}
		}
	}
	return err
}

// writeTraceFile renders an enactment timeline as Chrome trace_event
// JSON at path.
func writeTraceFile(path string, events []ginflow.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ginflow.WriteChromeTrace(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runListen builds a long-lived Manager hosting a transport listener,
// prints the dial target for ginflow-node workers, waits for the asked
// fleet size, then submits the workload: the agents run in the worker
// processes, publishing and subscribing through this manager's broker
// over TCP.
func runListen(w io.Writer, def *ginflow.Workflow, services *ginflow.ServiceRegistry, cfg ginflow.Config, workers, n int, verbose bool, traceOut string) error {
	mgr, err := ginflow.New(managerOptions(cfg)...)
	if err != nil {
		return err
	}
	defer mgr.Close()

	fmt.Fprintf(w, "listening on %s — join workers with: ginflow-node -addr %s -services ...\n",
		mgr.ListenerAddr(), mgr.ListenerAddr())
	if a := mgr.MetricsAddr(); a != "" {
		fmt.Fprintf(w, "metrics on http://%s/metrics (pprof under /debug/pprof/)\n", a)
	}
	for mgr.ConnectedNodes() < workers {
		fmt.Fprintf(w, "waiting for workers: %d/%d joined\n", mgr.ConnectedNodes(), workers)
		time.Sleep(time.Second)
	}
	fmt.Fprintf(w, "%d worker(s) joined\n", mgr.ConnectedNodes())

	var firstErr error
	for i := 0; i < n; i++ {
		h, err := mgr.Submit(context.Background(), def, services)
		if err != nil {
			return err
		}
		rep, err := h.Wait(context.Background())
		if err != nil {
			fmt.Fprintf(w, "session %d: FAILED: %v\n", h.ID(), err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fmt.Fprintf(w, "session %d: %s\n", h.ID(), rep)
		if verbose {
			printReport(w, rep, true)
		}
		if traceOut != "" && i == 0 {
			if err := writeTraceFile(traceOut, rep.Events); err == nil {
				fmt.Fprintf(w, "trace: %s (%d events)\n", traceOut, len(rep.Events))
			}
		}
	}
	return firstErr
}

// runResume recovers every unfinished session the journal directory
// holds and drives it to completion, printing each report. The workload
// flags still select the service registry — service implementations are
// Go functions and cannot be journaled; the workflows themselves come
// from the journal.
func runResume(w io.Writer, services *ginflow.ServiceRegistry, cfg ginflow.Config, verbose bool) error {
	mgr, err := ginflow.New(managerOptions(cfg)...)
	if err != nil {
		return err
	}
	defer mgr.Close()

	handles, err := mgr.Recover(context.Background(), services)
	if err != nil {
		fmt.Fprintf(w, "recover: %v\n", err)
	}
	if len(handles) == 0 {
		fmt.Fprintln(w, "no unfinished sessions in the journal")
		return err
	}
	fmt.Fprintf(w, "resuming %d session(s) from %s\n", len(handles), cfg.Journal.Dir)
	var firstErr error = err
	for _, h := range handles {
		rep, err := h.Wait(context.Background())
		if err != nil {
			fmt.Fprintf(w, "session %d: FAILED: %v\n", h.ID(), err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		fmt.Fprintf(w, "session %d: %s\n", h.ID(), rep)
		if verbose {
			printReport(w, rep, true)
		}
	}
	return firstErr
}

// managerOptions translates a flag-built Config into Manager options.
func managerOptions(cfg ginflow.Config) []ginflow.Option {
	opts := []ginflow.Option{
		ginflow.WithExecutor(cfg.Executor),
		ginflow.WithBroker(cfg.Broker),
		ginflow.WithCluster(cfg.Cluster),
		ginflow.WithFailureInjection(cfg.FailureP, cfg.FailureT),
		ginflow.WithTimeout(cfg.Timeout),
	}
	if cfg.CollectTrace {
		opts = append(opts, ginflow.WithTrace())
	}
	if cfg.Journal.Dir != "" {
		opts = append(opts, ginflow.WithJournal(cfg.Journal.Dir))
	}
	if cfg.Listen != "" {
		opts = append(opts, ginflow.WithListener(cfg.Listen))
	}
	if cfg.MetricsAddr != "" {
		opts = append(opts, ginflow.WithMetrics(cfg.MetricsAddr))
	}
	return opts
}

// runParallel drives n concurrent submissions of the same workload
// through one long-lived Manager, printing each session's report as it
// completes plus an aggregate line.
func runParallel(w io.Writer, def *ginflow.Workflow, services *ginflow.ServiceRegistry, cfg ginflow.Config, n int, verbose bool, traceOut string) error {
	opts := managerOptions(cfg)
	mgr, err := ginflow.New(opts...)
	if err != nil {
		return err
	}
	defer mgr.Close()
	if a := mgr.MetricsAddr(); a != "" {
		fmt.Fprintf(w, "metrics on http://%s/metrics (pprof under /debug/pprof/)\n", a)
	}

	started := time.Now()
	handles := make([]*ginflow.Handle, n)
	for i := range handles {
		h, err := mgr.Submit(context.Background(), def, services)
		if err != nil {
			return fmt.Errorf("submit %d/%d: %w", i+1, n, err)
		}
		handles[i] = h
	}
	fmt.Fprintf(w, "submitted %d concurrent sessions to one manager\n", n)

	var firstErr error
	var execSum float64
	completed := 0
	for i, h := range handles {
		rep, err := h.Wait(context.Background())
		if err != nil {
			fmt.Fprintf(w, "session %d: FAILED: %v\n", h.ID(), err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		execSum += rep.ExecTime
		completed++
		fmt.Fprintf(w, "session %d: %s\n", h.ID(), rep)
		if verbose && i == 0 {
			printReport(w, rep, true)
		}
		if traceOut != "" && i == 0 {
			if err := writeTraceFile(traceOut, rep.Events); err == nil {
				fmt.Fprintf(w, "trace: %s (%d events)\n", traceOut, len(rep.Events))
			}
		}
	}
	mean := 0.0
	if completed > 0 {
		mean = execSum / float64(completed)
	}
	fmt.Fprintf(w, "aggregate:   %d/%d sessions completed, mean exec %.1f model seconds, %.1fs wall real time\n",
		completed, n, mean, time.Since(started).Seconds())
	return firstErr
}

func buildWorkload(file, diamond string, fully, montageW bool, taskDuration, fail string) (*ginflow.Workflow, *ginflow.ServiceRegistry, error) {
	services := ginflow.NewServiceRegistry()
	var def *ginflow.Workflow

	switch {
	case montageW:
		def = ginflow.Montage()
		ginflow.RegisterMontageServices(services)
	case diamond != "":
		var h, v int
		if _, err := fmt.Sscanf(diamond, "%dx%d", &h, &v); err != nil || h < 1 || v < 1 {
			return nil, nil, fmt.Errorf("bad -diamond %q (want HxV, e.g. 10x10)", diamond)
		}
		def = ginflow.Diamond(ginflow.DefaultDiamondSpec(h, v, fully))
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, err
		}
		def, err = ginflow.FromJSON(data)
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("one of -file, -diamond or -montage is required")
	}

	if !montageW {
		var dur float64
		if _, err := fmt.Sscanf(taskDuration, "%f", &dur); err != nil {
			return nil, nil, fmt.Errorf("bad -task-duration %q", taskDuration)
		}
		failing := map[string]bool{}
		for _, s := range strings.Split(fail, ",") {
			if s = strings.TrimSpace(s); s != "" {
				failing[s] = true
			}
		}
		seen := map[string]bool{}
		register := func(name string) {
			if name == "" || seen[name] {
				return
			}
			seen[name] = true
			if failing[name] {
				services.RegisterFailing(name, dur)
			} else {
				services.RegisterNoop(dur, name)
			}
		}
		for _, t := range def.Tasks {
			register(t.Service)
		}
		for _, a := range def.Adaptations {
			for _, r := range a.Replacement {
				register(r.Service)
			}
		}
	}
	return def, services, nil
}

func printReport(w io.Writer, r *ginflow.Report, verbose bool) {
	fmt.Fprintf(w, "workflow:     %s\n", r.Workflow)
	fmt.Fprintf(w, "executor:     %s   broker: %s   nodes: %d\n", r.Executor, r.Broker, r.Nodes)
	fmt.Fprintf(w, "tasks:        %d   agents: %d\n", r.Tasks, r.Agents)
	fmt.Fprintf(w, "deploy time:  %.1f model seconds\n", r.DeployTime)
	fmt.Fprintf(w, "exec time:    %.1f model seconds\n", r.ExecTime)
	fmt.Fprintf(w, "messages:     %d\n", r.Messages)
	if r.Failures > 0 || r.Recoveries > 0 {
		fmt.Fprintf(w, "failures:     %d   recoveries: %d\n", r.Failures, r.Recoveries)
	}
	if len(r.Adaptations) > 0 {
		fmt.Fprintf(w, "adaptations:  %s\n", strings.Join(r.Adaptations, ", "))
	}
	exits := make([]string, 0, len(r.Results))
	for task := range r.Results {
		exits = append(exits, task)
	}
	sort.Strings(exits)
	for _, task := range exits {
		fmt.Fprintf(w, "result[%s]: %s\n", task, strings.Join(r.Results[task], ", "))
	}
	if verbose {
		tasks := make([]string, 0, len(r.Statuses))
		for t := range r.Statuses {
			tasks = append(tasks, t)
		}
		sort.Strings(tasks)
		fmt.Fprintln(w, "statuses:")
		for _, t := range tasks {
			fmt.Fprintf(w, "  %-16s %s\n", t, r.Statuses[t])
		}
	}
}
