// Command benchguard enforces checked-in benchmark ceilings in CI. It
// reads `go test -bench -benchmem` output on stdin, extracts allocs/op
// for every benchmark named in the baseline file, and exits non-zero
// when a benchmark exceeds its recorded ceiling — or never ran at all.
//
// Allocation counts (unlike ns/op on shared runners) are deterministic
// per benchmark iteration, so the guard is noise-free: a failure means a
// code change put allocations back on a hot path someone deliberately
// flattened. When running with -count > 1 the minimum across runs is
// compared, which forgives one-time warmup (cache building, pool
// growth) amortised over the first run.
//
// Usage:
//
//	go test -run xxx -bench BenchmarkReduceDiamondRules -benchmem -count 2 . \
//	  | go run ./cmd/benchguard -baseline internal/bench/baseline.json
//
// A second mode validates a scraped /metrics body instead: -exposition
// runs the promlint-style checker over a saved Prometheus text file
// (the CI smoke job scrapes a live ginflow-bench run), and -require
// fails unless every named family appears:
//
//	go run ./cmd/benchguard -exposition metrics.prom \
//	  -require ginflow_mq_published_total,ginflow_sessions_completed_total
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"

	"ginflow/internal/obs"
)

// baseline mirrors the checked-in JSON: benchmark name to ceiling.
type baseline struct {
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]benchBounds `json:"benchmarks"`
}

// benchBounds is the recorded ceiling for one benchmark.
type benchBounds struct {
	MaxAllocsPerOp int64 `json:"max_allocs_per_op"`
}

// benchLine matches one `go test -bench -benchmem` result line, e.g.
//
//	BenchmarkReduceDiamondRules-8   25946   95063 ns/op   62888 B/op   1156 allocs/op
//
// capturing the benchmark name (GOMAXPROCS suffix stripped) and the
// allocation count.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+\S+ ns/op\s+\S+ B/op\s+(\d+) allocs/op`)

func main() {
	baselinePath := flag.String("baseline", "", "path to the baseline JSON (required unless -exposition)")
	expoPath := flag.String("exposition", "", "validate this saved Prometheus /metrics body instead of gating benchmarks")
	require := flag.String("require", "", "comma-separated metric families the exposition must declare (-exposition only)")
	flag.Parse()
	if *expoPath != "" {
		checkExposition(*expoPath, *require)
		return
	}
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: parse %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}
	if len(base.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %s names no benchmarks\n", *baselinePath)
		os.Exit(2)
	}

	// best holds the minimum observed allocs/op per benchmark.
	best := map[string]int64{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line) // pass the raw output through for the CI log
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		allocs, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		if prev, seen := best[m[1]]; !seen || allocs < prev {
			best[m[1]] = allocs
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: read stdin: %v\n", err)
		os.Exit(2)
	}

	failed := false
	for name, bounds := range base.Benchmarks {
		allocs, ran := best[name]
		switch {
		case !ran:
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: no result on stdin (did the benchmark run?)\n", name)
			failed = true
		case allocs > bounds.MaxAllocsPerOp:
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s: %d allocs/op exceeds ceiling %d\n",
				name, allocs, bounds.MaxAllocsPerOp)
			failed = true
		default:
			fmt.Printf("benchguard: ok %s: %d allocs/op (ceiling %d)\n",
				name, allocs, bounds.MaxAllocsPerOp)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// checkExposition validates a scraped Prometheus text body and the
// presence of the required families, exiting non-zero on violation.
func checkExposition(path, require string) {
	body, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if err := obs.ValidateExposition(body); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL exposition %s: %v\n", path, err)
		os.Exit(1)
	}
	text := string(body)
	failed := false
	for _, family := range strings.Split(require, ",") {
		family = strings.TrimSpace(family)
		if family == "" {
			continue
		}
		if !strings.Contains(text, "# TYPE "+family+" ") {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL exposition %s: family %s missing\n", path, family)
			failed = true
			continue
		}
		fmt.Printf("benchguard: ok exposition family %s present\n", family)
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("benchguard: ok exposition %s valid\n", path)
}
