// Command hocl runs standalone HOCL programs on the chemical engine
// GinFlow is built on (paper §III-A). Programs are read from a file
// argument, from -e, from stdin, or line by line in the -i REPL:
//
//	hocl getmax.hocl
//	hocl -e 'let max = replace x, y by x if x >= y in <2, 3, 5, 8, 9, max>'
//	echo '<1, 2>' | hocl
//	hocl -i
//
// The final, inert solution is printed in (parseable) HOCL syntax.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"ginflow/internal/hocl"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hocl:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		expr  = flag.String("e", "", "program text (instead of a file)")
		repl  = flag.Bool("i", false, "interactive mode: one program per line")
		seed  = flag.Int64("seed", 0, "randomise reaction order with this seed (0: deterministic)")
		steps = flag.Int("max-steps", 0, "abort after this many rule firings (0: default bound)")
		trace = flag.Bool("trace", false, "log every rule firing to stderr")
	)
	flag.Parse()

	if *repl {
		return runREPL(*seed, *steps)
	}

	src, err := readProgram(*expr, flag.Args())
	if err != nil {
		return err
	}

	engine := hocl.NewEngine()
	engine.MaxSteps = *steps
	if *seed != 0 {
		engine.Rand = rand.New(rand.NewSource(*seed))
	}
	if *trace {
		engine.Trace = func(ev hocl.TraceEvent) {
			fmt.Fprintf(os.Stderr, "fire %s (depth %d)\n", ev.Rule.Name, ev.Depth)
		}
	}

	sol, err := engine.Run(src)
	if err != nil {
		return err
	}
	fmt.Println(hocl.Pretty(sol))
	fmt.Fprintf(os.Stderr, "(%d reactions)\n", engine.Steps())
	return nil
}

// runREPL evaluates one program per input line, keeping each evaluation
// independent (HOCL programs are self-contained multisets).
func runREPL(seed int64, steps int) error {
	fmt.Println("hocl interactive — one program per line, empty line or ctrl-d to quit")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for {
		fmt.Print("hocl> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			return nil
		}
		engine := hocl.NewEngine()
		engine.MaxSteps = steps
		if seed != 0 {
			engine.Rand = rand.New(rand.NewSource(seed))
		}
		sol, err := engine.Run(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Println(hocl.Pretty(sol))
	}
}

func readProgram(expr string, args []string) (string, error) {
	switch {
	case expr != "":
		return expr, nil
	case len(args) == 1:
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(data), nil
	case len(args) == 0:
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			return "", err
		}
		return string(data), nil
	default:
		return "", fmt.Errorf("want at most one program file, got %d arguments", len(args))
	}
}
