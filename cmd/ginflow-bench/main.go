// Command ginflow-bench regenerates the tables and figures of the
// paper's evaluation (§V):
//
//	ginflow-bench -fig 12a    coordination timespan, simple diamond (Fig. 12a)
//	ginflow-bench -fig 12b    coordination timespan, fully-connected (Fig. 12b)
//	ginflow-bench -fig 13     adaptiveness ratios (Fig. 13)
//	ginflow-bench -fig 14     executor × middleware comparison (Fig. 14)
//	ginflow-bench -fig 15     Montage shape and duration CDF (Fig. 15)
//	ginflow-bench -fig 16     resilience under failure injection (Fig. 16)
//	ginflow-bench -fig sweep  diamond scaling sweep (8x8 .. 24x24),
//	                          standalone runs vs. one shared Manager
//	                          multiplexing the whole sweep concurrently
//	ginflow-bench -fig chaos  chaos soak: seeded fault schedules
//	                          (-chaos-seeds of them) that must all
//	                          converge to the chaos-free outcome
//	ginflow-bench -fig all    everything above except chaos, in order
//
// The sweep takes extra knobs: -sizes picks the mesh sizes (e.g.
// -sizes 8,16), -shards sets the broker shard count (1 = the unsharded
// broker, for before/after comparisons), and -json writes the sweep
// results plus a final metrics snapshot as a machine-readable artifact
// (the CI smoke job uploads it).
//
// Observability: -metrics-addr serves the process metrics and pprof
// over HTTP for the lifetime of the run (scrape /metrics while a sweep
// is in flight), and -trace-out writes the Chrome trace_event timeline
// of a dedicated 16x16 diamond run on the virtual clock — load it in
// chrome://tracing or https://ui.perfetto.dev.
//
// Times are model seconds (1 model second costs -scale of real time;
// see DESIGN.md §1 for the substitution rationale). -quick shrinks the
// sweeps for a fast sanity pass. -virtual switches every run to the
// discrete-event virtual clock: model time jumps straight between
// timer deadlines, -scale is ignored, and same-seed runs report
// bit-identical timings (see DESIGN.md "Virtual time").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ginflow/internal/bench"
	"ginflow/internal/obs"
	"ginflow/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ginflow-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig      = flag.String("fig", "all", "figure to regenerate: 12a | 12b | 13 | 14 | 15 | 16 | sweep | chaos | all")
		quick    = flag.Bool("quick", false, "reduced sweeps")
		runs     = flag.Int("runs", 3, "repetitions for averaged experiments (paper: up to 10)")
		scale    = flag.Duration("scale", time.Millisecond, "real time per model second")
		seed     = flag.Int64("seed", 1, "simulation seed")
		timeout  = flag.Duration("timeout", 5*time.Minute, "per-run timeout (real time)")
		shards   = flag.Int("shards", 0, "broker shard count (0 = default, 1 = unsharded)")
		sizes    = flag.String("sizes", "", "comma-separated sweep mesh sizes, e.g. 8,16,24 (sweep only)")
		fan      = flag.Int("fan", 1, "concurrent copies of each sweep size on the shared Manager (sweep only)")
		jsonPath = flag.String("json", "", "write sweep results as JSON to this path (sweep only)")
		chaosN   = flag.Int("chaos-seeds", 10, "seeded fault schedules to soak (chaos only)")
		virtual  = flag.Bool("virtual", false, "discrete-event virtual clock: model time jumps between timer deadlines, -scale is ignored")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address for the run's lifetime (e.g. :9090)")
		traceOut    = flag.String("trace-out", "", "write the Chrome trace_event JSON of a dedicated virtual 16x16 diamond run to this path")
	)
	flag.Parse()

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, obs.Default())
		if err != nil {
			return fmt.Errorf("metrics endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Printf("metrics on http://%s/metrics (pprof under /debug/pprof/)\n\n", srv.Addr())
	}

	opts := bench.Options{
		Out:          os.Stdout,
		Quick:        *quick,
		Runs:         *runs,
		Scale:        *scale,
		Seed:         *seed,
		Timeout:      *timeout,
		BrokerShards: *shards,
		Fan:          *fan,
		Virtual:      *virtual,
	}
	sweepSizes, err := parseSizes(*sizes)
	if err != nil {
		return err
	}

	runFig := func(name string) error {
		started := time.Now()
		var err error
		switch name {
		case "12a":
			_, err = bench.Fig12(opts, false)
		case "12b":
			_, err = bench.Fig12(opts, true)
		case "13":
			_, err = bench.Fig13(opts)
		case "14":
			_, err = bench.Fig14(opts)
		case "15":
			err = bench.Fig15(opts)
		case "16":
			_, _, err = bench.Fig16(opts)
		case "sweep":
			err = runSweep(opts, sweepSizes, *jsonPath)
		case "chaos":
			err = bench.ChaosSoak(opts, *chaosN)
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		if err != nil {
			return fmt.Errorf("fig %s: %w", name, err)
		}
		fmt.Printf("(fig %s done in %.1fs real time)\n\n", name, time.Since(started).Seconds())
		return nil
	}

	if *traceOut != "" {
		if err := writeTrace(opts, *traceOut); err != nil {
			return err
		}
	}

	if *fig != "all" {
		return runFig(*fig)
	}
	for _, name := range []string{"12a", "12b", "13", "14", "15", "16", "sweep"} {
		if err := runFig(name); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace runs the dedicated traced virtual 16x16 diamond and writes
// its Chrome trace_event timeline to path.
func writeTrace(opts bench.Options, path string) error {
	rep, err := bench.TracedDiamondRun(opts, 16)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, rep.Events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote Chrome trace of a virtual 16x16 diamond (%d events) to %s\n\n", len(rep.Events), path)
	return nil
}

// runSweep runs both sweep modes and optionally writes the JSON
// artifact.
func runSweep(opts bench.Options, sizes []int, jsonPath string) error {
	standalonePoints, standaloneWall, err := bench.DiamondSweep(opts, sizes, false)
	if err != nil {
		return err
	}
	sharedPoints, sharedWall, err := bench.DiamondSweep(opts, sizes, true)
	if err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	artifact := bench.SweepArtifact{
		Results: []bench.SweepResult{
			{
				Mode: "standalone", BrokerShards: opts.BrokerShards, Runs: opts.Runs, Fan: opts.Fan,
				Points: standalonePoints, WallSeconds: standaloneWall.Seconds(),
			},
			{
				Mode: "shared-manager", BrokerShards: opts.BrokerShards, Runs: opts.Runs, Fan: opts.Fan,
				Points: sharedPoints, WallSeconds: sharedWall.Seconds(),
			},
		},
		Metrics: obs.Default().Snapshot(),
	}
	data, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// parseSizes decodes the -sizes flag ("" means the default grid).
func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -sizes entry %q (want positive integers)", p)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
