// Command ginflow-bench regenerates the tables and figures of the
// paper's evaluation (§V):
//
//	ginflow-bench -fig 12a    coordination timespan, simple diamond (Fig. 12a)
//	ginflow-bench -fig 12b    coordination timespan, fully-connected (Fig. 12b)
//	ginflow-bench -fig 13     adaptiveness ratios (Fig. 13)
//	ginflow-bench -fig 14     executor × middleware comparison (Fig. 14)
//	ginflow-bench -fig 15     Montage shape and duration CDF (Fig. 15)
//	ginflow-bench -fig 16     resilience under failure injection (Fig. 16)
//	ginflow-bench -fig sweep  diamond scaling sweep (8x8, 12x12, 16x16),
//	                          standalone runs vs. one shared Manager
//	                          multiplexing the whole sweep concurrently
//	ginflow-bench -fig all    everything, in order
//
// Times are model seconds (1 model second costs -scale of real time;
// see DESIGN.md §1 for the substitution rationale). -quick shrinks the
// sweeps for a fast sanity pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ginflow/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ginflow-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 12a | 12b | 13 | 14 | 15 | 16 | sweep | all")
		quick   = flag.Bool("quick", false, "reduced sweeps")
		runs    = flag.Int("runs", 3, "repetitions for averaged experiments (paper: up to 10)")
		scale   = flag.Duration("scale", time.Millisecond, "real time per model second")
		seed    = flag.Int64("seed", 1, "simulation seed")
		timeout = flag.Duration("timeout", 5*time.Minute, "per-run timeout (real time)")
	)
	flag.Parse()

	opts := bench.Options{
		Out:     os.Stdout,
		Quick:   *quick,
		Runs:    *runs,
		Scale:   *scale,
		Seed:    *seed,
		Timeout: *timeout,
	}

	runFig := func(name string) error {
		started := time.Now()
		var err error
		switch name {
		case "12a":
			_, err = bench.Fig12(opts, false)
		case "12b":
			_, err = bench.Fig12(opts, true)
		case "13":
			_, err = bench.Fig13(opts)
		case "14":
			_, err = bench.Fig14(opts)
		case "15":
			err = bench.Fig15(opts)
		case "16":
			_, _, err = bench.Fig16(opts)
		case "sweep":
			if _, _, err = bench.DiamondSweep(opts, nil, false); err == nil {
				_, _, err = bench.DiamondSweep(opts, nil, true)
			}
		default:
			return fmt.Errorf("unknown figure %q", name)
		}
		if err != nil {
			return fmt.Errorf("fig %s: %w", name, err)
		}
		fmt.Printf("(fig %s done in %.1fs real time)\n\n", name, time.Since(started).Seconds())
		return nil
	}

	if *fig != "all" {
		return runFig(*fig)
	}
	for _, name := range []string{"12a", "12b", "13", "14", "15", "16", "sweep"} {
		if err := runFig(name); err != nil {
			return err
		}
	}
	return nil
}
