// Manager: the long-lived engine API. Where ginflow.Run enacts one
// workflow on a throwaway platform (the paper's one-shot CLI shape),
// a Manager owns one shared cluster and broker for its lifetime and
// multiplexes concurrent workflow sessions over them, each in its own
// topic namespace. This example submits several workflows at once,
// streams live enactment events from one of them, and cancels another
// mid-run.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"ginflow"
)

func main() {
	mgr, err := ginflow.New(
		ginflow.WithExecutor(ginflow.ExecutorSSH),
		ginflow.WithBroker(ginflow.BrokerActiveMQ),
		ginflow.WithCluster(ginflow.ClusterConfig{Nodes: 8}),
		ginflow.WithTimeout(30*time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	services := ginflow.NewServiceRegistry()
	services.RegisterNoop(1.0, "split", "work", "merge", "s")

	// Submit a batch of diamonds; they run concurrently on the shared
	// platform.
	var handles []*ginflow.Handle
	for i := 0; i < 3; i++ {
		def := ginflow.Diamond(ginflow.DefaultDiamondSpec(3+i, 3, false))
		h, err := mgr.Submit(context.Background(), def, services)
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}
	fmt.Printf("submitted %d sessions, %d active\n", len(handles), mgr.Active())

	// Observe the first session live: Events streams the enactment
	// timeline (task completions, transfers, adaptations, crashes)
	// while the run is in flight.
	events := handles[0].Events()
	go func() {
		for e := range events {
			if e.Kind == ginflow.EventTaskCompleted {
				fmt.Printf("  [session %d live] %s completed at t=%.1fs\n",
					handles[0].ID(), e.Task, e.At)
			}
		}
	}()

	// A long-running session can be cancelled with a cause.
	slow, err := mgr.Submit(context.Background(), ginflow.Sequence(5, "s", "in"), services)
	if err != nil {
		log.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	slow.Cancel(errors.New("demo: operator abort"))
	if _, err := slow.Wait(context.Background()); errors.Is(err, ginflow.ErrCancelled) {
		fmt.Printf("session %d cancelled as requested\n", slow.ID())
	}

	// Collect the batch reports.
	for _, h := range handles {
		rep, err := h.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("session %d: %s\n", h.ID(), rep)
	}
}
