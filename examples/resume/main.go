// Resume: durable sessions surviving a real process kill. The example
// runs twice in the same binary:
//
//  1. The parent re-executes itself as a child process. The child
//     builds a journal-backed Manager (ginflow.WithJournal), submits a
//     diamond workflow and, once a handful of tasks have completed,
//     dies with os.Exit — no Close, no cleanup, exactly a crash.
//  2. The parent then opens a fresh Manager over the same journal
//     directory, calls Manager.Recover and finishes the session. Tasks
//     whose results were journaled before the kill are not re-invoked:
//     the recovered run executes only the remainder.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/exec"
	"time"

	"ginflow"
)

const (
	phaseEnv = "GINFLOW_RESUME_PHASE"
	dirEnv   = "GINFLOW_RESUME_DIR"
	// killAfter is the number of task completions the child survives.
	killAfter = 6
)

func services() *ginflow.ServiceRegistry {
	reg := ginflow.NewServiceRegistry()
	reg.RegisterNoop(1.0, "split", "work", "merge")
	return reg
}

func newManager(dir string) (*ginflow.Manager, error) {
	// 10 ms of real time per model second: slow enough that the kill
	// lands mid-run with plenty of workflow left, fast enough that the
	// whole demo takes a few seconds.
	return ginflow.New(
		ginflow.WithJournal(dir),
		ginflow.WithCluster(ginflow.ClusterConfig{Nodes: 8, Scale: 10 * time.Millisecond}),
		ginflow.WithTimeout(60*time.Second),
	)
}

// child runs the workload and crashes mid-flight.
func child(dir string) {
	mgr, err := newManager(dir)
	if err != nil {
		log.Fatal(err)
	}
	def := ginflow.Diamond(ginflow.DefaultDiamondSpec(5, 5, false))
	h, err := mgr.Submit(context.Background(), def, services())
	if err != nil {
		log.Fatal(err)
	}
	completed := 0
	for e := range h.Events() {
		if e.Kind == ginflow.EventTaskCompleted {
			completed++
			fmt.Printf("  [child] %s completed (%d/%d before the crash)\n", e.Task, completed, killAfter)
			if completed >= killAfter {
				// Give the in-flight status pushes a moment to reach the
				// journal, then die hard. (A kill can of course also land
				// before a push is durable — recovery then simply re-runs
				// that task; the demo is cleaner with the races drained.)
				time.Sleep(25 * time.Millisecond)
				fmt.Println("  [child] dying mid-run (os.Exit, no cleanup)")
				os.Exit(3) // the crash: journal left as-is on disk
			}
		}
	}
	log.Fatal("child finished before the planned crash; nothing to demo")
}

func main() {
	if dir := os.Getenv(dirEnv); os.Getenv(phaseEnv) == "child" {
		child(dir)
		return
	}

	dir, err := os.MkdirTemp("", "ginflow-resume-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Printf("journal directory: %s\n", dir)

	// Phase 1: run the workload in a child process and let it die.
	self, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), phaseEnv+"=child", dirEnv+"="+dir)
	cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
	fmt.Println("phase 1: child process runs the workflow and is killed mid-run")
	if err := cmd.Run(); err == nil {
		log.Fatal("child exited cleanly; expected a crash")
	}

	// Phase 2: a fresh Manager over the same directory resumes the
	// session. The service registry is supplied again — implementations
	// are code, only workflow state is journaled.
	fmt.Println("phase 2: fresh manager recovers the journaled session")
	mgr, err := newManager(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()

	events := mgr.Events()
	invoked := make(chan string, 1024)
	go func() {
		defer close(invoked)
		for e := range events {
			switch e.Kind {
			case ginflow.EventSessionRecovered:
				fmt.Printf("  [parent] session %d recovered (%s)\n", e.SessionID, e.Info)
			case ginflow.EventServiceInvoked:
				select {
				case invoked <- e.Task:
				default:
				}
			}
		}
	}()

	handles, err := mgr.Recover(context.Background(), services())
	if err != nil {
		log.Fatal(err)
	}
	if len(handles) == 0 {
		log.Fatal("no unfinished sessions found")
	}
	rep, err := handles[0].Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	mgr.Close() // closes the event stream so the drain below terminates

	reran := map[string]bool{}
	for task := range invoked {
		reran[task] = true
	}
	total := rep.Tasks
	fmt.Printf("recovered run: %s\n", rep)
	fmt.Printf("MERGE: %v, results %v\n", rep.Statuses["MERGE"], rep.Results["MERGE"])
	fmt.Printf("%d of %d tasks ran after recovery; the other %d were restored from the journal, not re-invoked.\n",
		len(reran), total, total-len(reran))
}
