// templates: compose a workflow from Tigres-style templates — sequence,
// split, parallel and merge — instead of wiring tasks by hand. The paper
// closes with GinFlow's integration into the Tigres workflow environment
// (§VII), whose user-centred API is built on exactly these four patterns
// ("split, merge, sequence and parallel have been recognised to cover
// the basic needs of many scientific computational pipelines", §V).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ginflow"
)

func main() {
	// FETCH -> 4x PROJ (split) -> {STATS, PREVIEW} after a merge, then a
	// final PUBLISH fed by both branches.
	b := ginflow.NewTemplate("survey-pipeline")
	head := b.Task("FETCH", "fetch", "survey-tile-7")
	plates := b.Split(head, "proj", 4)
	mosaic := b.Merge(plates, "combine")
	branches := b.Parallel(mosaic, "stats", "preview")
	tail := b.Merge(branches, "publish")

	def, err := b.Workflow()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d tasks, %d edges, exit %v\n",
		def.Name, def.TaskCount(), def.EdgeCount(), def.Exits())

	services := ginflow.NewServiceRegistry()
	services.RegisterNoop(1.0, "fetch", "proj", "combine", "stats", "preview", "publish")

	report, err := ginflow.Run(context.Background(), def, services, ginflow.Config{
		Executor: ginflow.ExecutorMesos,
		Broker:   ginflow.BrokerActiveMQ,
		Cluster:  ginflow.ClusterConfig{Nodes: 5},
		Timeout:  30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)
	fmt.Printf("published: %v\n", report.Results[tail[0]])
}
