// Quickstart: run the paper's Fig. 2/3 workflow — T1 fanning out to T2
// and T3, which merge into T4 — on the decentralised engine. Each task's
// agent holds its own HOCL sub-solution, reacts to incoming result
// molecules, invokes its service and ships the result directly to its
// successors over the message broker.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ginflow"
)

func main() {
	// The workflow of paper Fig. 2, declared producer-side (DST edges);
	// SRC sets are derived. The same DAG could come from JSON via
	// ginflow.FromJSON (paper §IV-D).
	def := &ginflow.Workflow{
		Name: "quickstart",
		Tasks: []ginflow.Task{
			{ID: "T1", Service: "s1", In: []string{"input"}, Dst: []string{"T2", "T3"}},
			{ID: "T2", Service: "s2", Dst: []string{"T4"}},
			{ID: "T3", Service: "s3", Dst: []string{"T4"}},
			{ID: "T4", Service: "s4"},
		},
	}

	// Services simulate work: 1 model second each (1 model second costs
	// 1 ms of real time at the default clock scale).
	services := ginflow.NewServiceRegistry()
	services.RegisterNoop(1.0, "s1", "s2", "s3", "s4")

	report, err := ginflow.Run(context.Background(), def, services, ginflow.Config{
		Executor: ginflow.ExecutorSSH,    // round-robin deployment (§IV-C)
		Broker:   ginflow.BrokerActiveMQ, // fast, volatile messaging (§IV-A)
		Cluster:  ginflow.ClusterConfig{Nodes: 4},
		Timeout:  30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("T4 produced: %v\n", report.Results["T4"])
	for _, task := range []string{"T1", "T2", "T3", "T4"} {
		fmt.Printf("  %s: %s\n", task, report.Statuses[task])
	}
}
