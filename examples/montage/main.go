// montage: the realistic workload of the paper's resilience evaluation
// (§V-D) — a 118-task Montage-like pipeline building a mosaic of the M45
// star cluster: one header task, 108 parallel projection tasks (60-290
// model seconds each) and a nine-stage aggregation chain. Runs on the
// paper's configuration for this experiment: the Mesos executor and the
// Kafka-like log broker, 25 nodes.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ginflow"
)

func main() {
	def := ginflow.Montage()
	services := ginflow.NewServiceRegistry()
	ginflow.RegisterMontageServices(services)

	fmt.Printf("running %s: %d tasks, %d edges\n", def.Name, def.TaskCount(), def.EdgeCount())
	started := time.Now()

	report, err := ginflow.Run(context.Background(), def, services, ginflow.Config{
		Executor: ginflow.ExecutorMesos,
		Broker:   ginflow.BrokerKafka,
		Cluster:  ginflow.ClusterConfig{Nodes: 25},
		Timeout:  2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("mosaic: %v\n", report.Results["MJPEG"])
	fmt.Printf("deployment: %.0f model seconds over %d offer-driven launches\n",
		report.DeployTime, report.Agents)
	fmt.Printf("execution:  %.0f model seconds (paper baseline: 484 s on Grid'5000)\n",
		report.ExecTime)
	fmt.Printf("real time:  %.2fs at 1 ms per model second\n", time.Since(started).Seconds())
}
