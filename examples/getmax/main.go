// getmax: the paper's §III-A introduction to HOCL, the chemical language
// GinFlow is programmed in. The max rule consumes two values x, y with
// x >= y and produces x; applied until inert, the multiset reduces to its
// maximum. The higher-order variant wraps the program in an outer
// solution with a one-shot clean rule that extracts the result and
// removes the catalyst — a rule consuming another rule.
package main

import (
	"fmt"
	"log"

	"ginflow"
)

func main() {
	// The plain getMax program (paper §III-A, first listing). The ASCII
	// dialect writes ⟨⟩ as <> and ω as *name.
	out, err := ginflow.EvalHOCL(`
		let max = replace x, y by x if x >= y in
		<2, 3, 5, 8, 9, max>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("getMax:")
	fmt.Println(out) // <9, max>: the catalyst rule remains

	// The higher-order variant (second listing): clean fires only once
	// the inner solution is inert, extracts the result and consumes max.
	out, err = ginflow.EvalHOCL(`
		let max = replace x, y by x if x >= y in
		let clean = replace-one <max, *w> by *w in
		<<2, 3, 5, 8, 9, max>, clean>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("getMax with clean:")
	fmt.Println(out) // <9>

	// Rules producing rules — the mechanism behind on-the-fly workflow
	// adaptation (§III-C): boot consumes the GO marker and injects the
	// sum rule, which then folds the integers. The guard keeps sum away
	// from non-numeric molecules (a failing comparison means "these
	// atoms do not react").
	out, err = ginflow.EvalHOCL(`
		let sum = replace x, y by x + y if x <= y in
		let boot = replace-one GO by sum in
		<GO, 1, 2, 3, 4, boot>`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rule injection:")
	fmt.Println(out) // <10, sum>
}
