// resilience: the paper's §IV-B/§V-D failure-recovery machinery in
// action. Agents crash with probability p a time T into their service
// invocation; the supervisor respawns each crashed agent, and the new
// incarnation rebuilds its state by replaying its inbox from the
// Kafka-like log — re-invoking its idempotent service along the way.
// Duplicate results are absorbed by the one-shot gw rules, so no cascade
// of re-executions occurs. The same run on the volatile ActiveMQ-like
// broker would stall: in-flight results die with their consumer.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ginflow"
)

func main() {
	const (
		p = 0.5 // crash probability per service invocation
		t = 15  // crash delay (model seconds into the service)
	)

	def := ginflow.Montage()
	services := ginflow.NewServiceRegistry()
	ginflow.RegisterMontageServices(services)

	fmt.Printf("injecting failures: p=%.1f, T=%.0fs (paper §V-D methodology)\n", float64(p), float64(t))
	report, err := ginflow.Run(context.Background(), def, services, ginflow.Config{
		Executor: ginflow.ExecutorMesos,
		Broker:   ginflow.BrokerKafka, // recovery needs the persisted log
		Cluster:  ginflow.ClusterConfig{Nodes: 25},
		FailureP: p,
		FailureT: t,
		Timeout:  5 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("failures observed:  %d (expected ≈ p/(1-p)·N_T)\n", report.Failures)
	fmt.Printf("agents recovered:   %d — every crash was replayed back to life\n", report.Recoveries)
	fmt.Printf("mosaic still built: %v\n", report.Results["MJPEG"])
	fmt.Printf("execution time:     %.0f model seconds (vs ≈550 failure-free)\n", report.ExecTime)
}
