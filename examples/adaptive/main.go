// adaptive: the paper's running example of on-the-fly workflow
// adaptation (Figs. 5-8). Task T2 is potentially faulty; the workflow
// declares an alternative task T2' to be wired in should T2's service
// raise an execution exception. At run time:
//
//  1. s2 fails, so ERROR appears in T2's local solution;
//  2. T2's trigger_adapt rule fires: ADAPT markers are messaged to T1
//     (source) and T4 (destination), TRIGGER to the shared space;
//  3. T1's add_dst rule appends T2' to its destinations — the retained
//     result is re-sent; T4's mv_src rule swaps T2 for T2' in its
//     expected sources and empties stale inputs;
//  4. T2' runs and T4 completes — no restart, no human intervention.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ginflow"
)

func main() {
	def := &ginflow.Workflow{
		Name: "paper-fig5",
		Tasks: []ginflow.Task{
			{ID: "T1", Service: "s1", In: []string{"input"}, Dst: []string{"T2", "T3"}},
			{ID: "T2", Service: "s2", Dst: []string{"T4"}},
			{ID: "T3", Service: "s3", Dst: []string{"T4"}},
			{ID: "T4", Service: "s4"},
		},
		Adaptations: []ginflow.Adaptation{{
			ID:     "a1",
			Faulty: []string{"T2"},
			Replacement: []ginflow.ReplacementTask{
				// T2' takes T1's (re-sent) output and feeds T4, exactly
				// like the task it replaces (paper Fig. 6, line 6.06).
				{ID: "T2'", Service: "s2-prime", Src: []string{"T1"}, Dst: []string{"T4"}},
			},
		}},
	}

	services := ginflow.NewServiceRegistry()
	services.RegisterNoop(1.0, "s1", "s3", "s4", "s2-prime")
	// s2 raises an execution exception every time — the ERROR molecule
	// that enables the adaptation rules.
	services.RegisterFailing("s2", 1.0)

	report, err := ginflow.Run(context.Background(), def, services, ginflow.Config{
		Executor: ginflow.ExecutorSSH,
		Broker:   ginflow.BrokerActiveMQ,
		Cluster:  ginflow.ClusterConfig{Nodes: 4},
		Timeout:  30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("adaptations triggered: %v\n", report.Adaptations)
	fmt.Printf("T2  (faulty):      %s\n", report.Statuses["T2"])
	fmt.Printf("T2' (replacement): %s\n", report.Statuses["T2'"])
	fmt.Printf("T4  (destination): %s, result %v\n",
		report.Statuses["T4"], report.Results["T4"])
}
