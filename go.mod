module ginflow

go 1.24
