package ginflow

import (
	"context"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestListenerWithRealWorkerBinary drives the full multi-machine shape
// through the public API alone: build the actual ginflow-node command,
// start a listening manager, let two worker processes join over TCP,
// and run the diamond benchmark hosted entirely out-of-process.
func TestListenerWithRealWorkerBinary(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "ginflow-node")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/ginflow-node").CombinedOutput(); err != nil {
		t.Fatalf("build ginflow-node: %v\n%s", err, out)
	}

	cfg := testConfig(ExecutorSSH, BrokerActiveMQ)
	m, err := New(
		WithExecutor(cfg.Executor), WithBroker(cfg.Broker),
		WithCluster(cfg.Cluster), WithTimeout(cfg.Timeout),
		WithListener("127.0.0.1:0"),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for i := 0; i < 2; i++ {
		cmd := exec.Command(bin,
			"-addr", m.ListenerAddr(),
			"-services", "split,work,merge",
			"-task-duration", "0.1",
		)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	deadline := time.Now().Add(10 * time.Second)
	for m.ConnectedNodes() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers never joined (connected %d)", m.ConnectedNodes())
		}
		time.Sleep(10 * time.Millisecond)
	}

	def := Diamond(DefaultDiamondSpec(3, 3, false))
	services := NewServiceRegistry()
	services.RegisterNoop(0.1, "split", "work", "merge")
	h, err := m.Submit(context.Background(), def, services)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Statuses["MERGE"] != StatusCompleted {
		t.Errorf("merge = %v", rep.Statuses["MERGE"])
	}
	if len(rep.Results["MERGE"]) != 1 {
		t.Errorf("results = %v", rep.Results)
	}
}
