package ginflow

// Benchmarks, one per table/figure of the paper's evaluation (§V), plus
// ablation benchmarks for the design choices called out in DESIGN.md.
// Every figure benchmark runs a representative configuration of its
// experiment per iteration and reports the modelled execution time as a
// custom metric (model_s/op); the full paper-scale sweeps live in
// cmd/ginflow-bench, whose output is recorded in EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/bench"
	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/journal"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/obs"
	"ginflow/internal/space"
	"ginflow/internal/workflow"
)

// benchScale is the default model-time scale: 1 ms of real time per
// model second keeps every modelled sleep above the host timer
// granularity, so the reported model_s metrics are honest. Iterations
// are consequently tens of milliseconds to ~1 s of real time each.
const benchScale = time.Millisecond

func benchServices() *agent.Registry {
	reg := agent.NewRegistry()
	reg.RegisterNoop(bench.MeshTaskDuration, "split", "work", "merge", "workalt")
	return reg
}

func runDiamondOnce(b *testing.B, h, v int, fully bool, cfg core.Config) *core.Report {
	b.Helper()
	def := workflow.Diamond(workflow.DefaultDiamondSpec(h, v, fully))
	rep, err := core.Run(context.Background(), def, benchServices(), cfg)
	if err != nil {
		b.Fatalf("run: %v", err)
	}
	return rep
}

func benchCluster(nodes int) cluster.Config {
	return cluster.Config{Nodes: nodes, CoresPerNode: 24, Scale: benchScale}
}

// BenchmarkFig12SimpleDiamond regenerates one cell of Fig. 12(a): a 6x6
// simple-connected diamond on SSH + ActiveMQ.
func BenchmarkFig12SimpleDiamond(b *testing.B) {
	var model float64
	for i := 0; i < b.N; i++ {
		rep := runDiamondOnce(b, 6, 6, false, core.Config{
			Executor: executor.KindSSH,
			Broker:   mq.KindQueue,
			Cluster:  benchCluster(25),
		})
		model += rep.ExecTime
	}
	b.ReportMetric(model/float64(b.N), "model_s/op")
}

// BenchmarkFig12FullDiamond regenerates one cell of Fig. 12(b): the
// fully-connected flavour of the same diamond.
func BenchmarkFig12FullDiamond(b *testing.B) {
	var model float64
	for i := 0; i < b.N; i++ {
		rep := runDiamondOnce(b, 6, 6, true, core.Config{
			Executor: executor.KindSSH,
			Broker:   mq.KindQueue,
			Cluster:  benchCluster(25),
		})
		model += rep.ExecTime
	}
	b.ReportMetric(model/float64(b.N), "model_s/op")
}

// BenchmarkFig13Adaptiveness regenerates one bar of Fig. 13: a 4x4
// diamond whose whole body is swapped on-the-fly after the last mesh
// service fails (simple-to-simple scenario); the reported metric is the
// with/without-adaptiveness ratio.
func BenchmarkFig13Adaptiveness(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		spec := workflow.DefaultDiamondSpec(4, 4, false)
		base := runDiamondOnce(b, 4, 4, false, core.Config{
			Executor: executor.KindSSH,
			Broker:   mq.KindQueue,
			Cluster:  benchCluster(25),
		})

		def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
		last, _ := def.TaskByID(workflow.LastMeshTask(spec))
		last.Service = "flaky"
		services := benchServices()
		services.RegisterFailing("flaky", bench.MeshTaskDuration)
		adaptive, err := core.Run(context.Background(), def, services, core.Config{
			Executor: executor.KindSSH,
			Broker:   mq.KindQueue,
			Cluster:  benchCluster(25),
		})
		if err != nil {
			b.Fatalf("adaptive run: %v", err)
		}
		ratio += adaptive.ExecTime / base.ExecTime
	}
	b.ReportMetric(ratio/float64(b.N), "ratio")
}

// BenchmarkFig14ExecutorMiddleware regenerates Fig. 14's bar groups: a
// 4x4 diamond under each executor × broker combination on 10 nodes,
// reporting deployment and execution model time separately.
func BenchmarkFig14ExecutorMiddleware(b *testing.B) {
	for _, ex := range []executor.Kind{executor.KindSSH, executor.KindMesos} {
		for _, br := range []mq.Kind{mq.KindQueue, mq.KindLog} {
			b.Run(fmt.Sprintf("%s/%s", ex, br), func(b *testing.B) {
				var deploy, exec float64
				for i := 0; i < b.N; i++ {
					rep := runDiamondOnce(b, 4, 4, false, core.Config{
						Executor: ex,
						Broker:   br,
						Cluster:  benchCluster(10),
					})
					deploy += rep.DeployTime
					exec += rep.ExecTime
				}
				b.ReportMetric(deploy/float64(b.N), "deploy_model_s/op")
				b.ReportMetric(exec/float64(b.N), "exec_model_s/op")
			})
		}
	}
}

// BenchmarkFig15MontageGeneration covers Fig. 15's artifacts: building,
// validating and translating the 118-task Montage workflow (the figure
// itself is static workload structure; regenerate the full panels with
// cmd/ginflow-bench -fig 15).
func BenchmarkFig15MontageGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		def := montage.Workflow()
		if err := def.Validate(); err != nil {
			b.Fatal(err)
		}
		if _, err := def.TranslateAgents(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16Resilience regenerates one bar of Fig. 16: Montage on
// Mesos + Kafka with p=0.5, T=0 failure injection, recovered by inbox
// replay.
func BenchmarkFig16Resilience(b *testing.B) {
	var model, failures float64
	for i := 0; i < b.N; i++ {
		reg := agent.NewRegistry()
		montage.RegisterServices(reg)
		rep, err := core.Run(context.Background(), montage.Workflow(), reg, core.Config{
			Executor: executor.KindMesos,
			Broker:   mq.KindLog,
			Cluster:  benchCluster(25),
			FailureP: 0.5,
			FailureT: 0,
			Timeout:  5 * time.Minute,
		})
		if err != nil {
			b.Fatalf("run: %v", err)
		}
		model += rep.ExecTime
		failures += float64(rep.Failures)
	}
	b.ReportMetric(model/float64(b.N), "model_s/op")
	b.ReportMetric(failures/float64(b.N), "failures/op")
}

// --- Ablation benchmarks ----------------------------------------------------

// BenchmarkAblationMatchCost supports the §V-A claim that "the
// complexity of the pattern matching process depends on the size of the
// solution": one getMax firing over solutions of growing size.
func BenchmarkAblationMatchCost(b *testing.B) {
	for _, size := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("atoms-%d", size), func(b *testing.B) {
			rule := hocl.MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
			atoms := make([]hocl.Atom, size+1)
			for i := 0; i < size; i++ {
				atoms[i] = hocl.Int(i)
			}
			atoms[size] = rule
			funcs := hocl.NewFuncs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol := hocl.NewSolution(atoms...)
				if m := hocl.MatchRule(rule, sol, size, funcs, nil); m == nil {
					b.Fatal("no match")
				}
			}
		})
	}
}

// BenchmarkAblationReduceGetMax measures full reductions of the paper's
// §III-A program at growing multiset sizes.
func BenchmarkAblationReduceGetMax(b *testing.B) {
	for _, size := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("atoms-%d", size), func(b *testing.B) {
			rule := hocl.MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
			atoms := make([]hocl.Atom, size+1)
			for i := 0; i < size; i++ {
				atoms[i] = hocl.Int(i * 13 % size)
			}
			atoms[size] = rule
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol := hocl.NewSolution(atoms...)
				e := hocl.NewEngine()
				if err := e.Reduce(sol); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBrokerThroughput compares the raw publish->deliver
// path of the two brokers with latency modelling disabled: the Kafka-like
// broker pays for the persisted log.
func BenchmarkAblationBrokerThroughput(b *testing.B) {
	clock := cluster.NewClock(time.Nanosecond)
	for _, kind := range []mq.Kind{mq.KindQueue, mq.KindLog} {
		b.Run(string(kind), func(b *testing.B) {
			var broker mq.Broker
			switch kind {
			case mq.KindQueue:
				qb := mq.NewQueueBroker(clock, 1e-9)
				qb.SetServiceTime(0)
				broker = qb
			default:
				lb := mq.NewLogBroker(clock, 1e-9)
				lb.SetServiceTime(0)
				broker = lb
			}
			sub, err := broker.Subscribe("t")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := broker.Publish("t", "RES:<42>"); err != nil {
					b.Fatal(err)
				}
				<-sub.C()
			}
		})
	}
}

// BenchmarkAblationPassMode compares the two gw_pass designs (§IV-A): a
// single interpreter applying the global rule versus decentralised
// agents exchanging messages. Real time is dominated by the modelled
// sleeps; the model_s metric shows the coordination difference.
func BenchmarkAblationPassMode(b *testing.B) {
	for _, mode := range []executor.Kind{executor.KindCentralized, executor.KindSSH} {
		b.Run(string(mode), func(b *testing.B) {
			var model float64
			for i := 0; i < b.N; i++ {
				rep := runDiamondOnce(b, 4, 4, false, core.Config{
					Executor: mode,
					Broker:   mq.KindQueue,
					Cluster:  benchCluster(10),
				})
				model += rep.ExecTime
			}
			b.ReportMetric(model/float64(b.N), "model_s/op")
		})
	}
}

// BenchmarkAblationWireFormat measures the HOCL text wire format: the
// cost of encoding and decoding one result-transfer molecule.
func BenchmarkAblationWireFormat(b *testing.B) {
	msg := hoclflow.PassMessage("T1", []hocl.Atom{
		hocl.Str("some-result-payload"),
		hocl.List{hocl.Int(1), hocl.Int(2), hocl.Int(3)},
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		text := msg.String()
		if _, err := hocl.ParseMolecules(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTranslate measures rule injection (§IV-D "the phase
// of rules injection takes place in a transparent way"): translating a
// 10x10 diamond to agent specs.
func BenchmarkAblationTranslate(b *testing.B) {
	def := workflow.Diamond(workflow.DefaultDiamondSpec(10, 10, false))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := def.TranslateAgents(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Hot-path benchmarks (message path and reduction engine) ---------------

// BenchmarkReduceDiamondRules measures the agent-side reduction of one
// fully-connected mesh task: the local solution carries the four gw rules,
// receives a PASS message from each of its sources, assembles parameters,
// invokes and forwards. This is the per-message CPU cost of enactment.
func BenchmarkReduceDiamondRules(b *testing.B) {
	const fan = 8
	srcs := make([]string, fan)
	dsts := make([]string, fan)
	for i := range srcs {
		srcs[i] = fmt.Sprintf("S%d", i+1)
		dsts[i] = fmt.Sprintf("D%d", i+1)
	}
	attrs := hoclflow.TaskAttrs{Name: "W1", Src: srcs, Dst: dsts, Service: "work"}
	tmpl := attrs.LocalSolution(hoclflow.GwSetup(), hoclflow.GwCall(), hoclflow.GwSend(), hoclflow.GwRecv())
	passes := make([]hocl.Atom, fan)
	for i, s := range srcs {
		passes[i] = hoclflow.PassMessage(s, []hocl.Atom{hocl.Str("out-" + s)})
	}
	engine := hocl.NewEngine()
	engine.Funcs.Register(hoclflow.FnInvoke, func([]hocl.Atom) ([]hocl.Atom, error) {
		return []hocl.Atom{hocl.Str("res")}, nil
	})
	engine.Funcs.Register(hoclflow.FnSend, func([]hocl.Atom) ([]hocl.Atom, error) { return nil, nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Snapshot + shared ingest is the agent's instantiation path: a
		// copy-on-write template copy, and wire atoms added by reference.
		sol := tmpl.SnapshotSolution()
		sol.Add(passes...)
		if err := engine.Reduce(sol); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeAtoms measures the binary atom codec on a
// representative journal record: one task status tuple (the full-
// snapshot push of a mid-workflow task) plus a STATDELTA tuple — the
// two payload shapes the durable session journal appends on its hot
// path. Guarded by cmd/benchguard (internal/bench/baseline.json):
// journaling cost per status record must stay flat.
func BenchmarkEncodeAtoms(b *testing.B) {
	status := hoclflow.TaskAttrs{
		Name: "N3_4", Src: []string{"N1_3", "N2_3", "N3_3"},
		Dst: []string{"N3_5", "N4_5"}, Service: "work",
		In: []hocl.Atom{hocl.Str("plate-003")},
	}.SubSolution()
	delta := hoclflow.StatusDelta{
		Task: "N3_4", Base: 0x1234, Next: 0x5678,
		RemovedHashes: []uint64{1, 2, 3},
		Added:         []hocl.Atom{hocl.Tuple{hocl.Ident("RES"), hocl.NewSolution(hocl.Str("out-work"))}},
		Inert:         true,
	}
	payload := []hocl.Atom{hocl.Tuple{hocl.Ident("N3_4"), status}, delta.Atom()}
	var sink []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = hocl.AppendAtoms(sink[:0], payload)
	}
	if _, err := hocl.DecodeAtoms(sink); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkJournalAppendStatus measures the full journaling hot path —
// binary encode + frame + fingerprint + file write — for one status
// record, end to end against a real file. Allocations must stay at
// zero: the writer reuses its encoding and framing buffers.
func BenchmarkJournalAppendStatus(b *testing.B) {
	j, err := journal.Open(journal.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	w, err := j.CreateSession(journal.SessionMeta{ID: 1, Workflow: []byte(`{"tasks":[]}`)})
	if err != nil {
		b.Fatal(err)
	}
	defer w.Close()
	status := hoclflow.TaskAttrs{
		Name: "N3_4", Src: []string{"N1_3", "N2_3"}, Dst: []string{"N3_5"},
		Service: "work",
	}.SubSolution()
	payload := []hocl.Atom{hocl.Tuple{hocl.Ident("N3_4"), status}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.AppendStatus(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMessageRoundTrip measures the two wire hops of decentralised
// enactment: a status push (agent -> broker -> space) and a result pass
// (agent -> broker -> peer agent ingest).
func BenchmarkMessageRoundTrip(b *testing.B) {
	clock := cluster.NewClock(time.Nanosecond)
	broker := mq.NewQueueBroker(clock, 1e-9)
	broker.SetServiceTime(0)
	sp := space.New()
	spaceSub, err := broker.Subscribe(space.DefaultTopic)
	if err != nil {
		b.Fatal(err)
	}
	inbox, err := broker.Subscribe("sa.T2")
	if err != nil {
		b.Fatal(err)
	}
	status := hoclflow.TaskAttrs{Name: "T1", Dst: []string{"T2"}, Service: "work"}.SubSolution()
	statusTuple := hocl.Tuple{hocl.Ident("T1"), status}
	pass := hoclflow.PassMessage("T1", []hocl.Atom{hocl.Str("out-T1"), hocl.List{hocl.Int(1), hocl.Int(2)}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Status push: agent snapshot -> broker -> space apply, all
		// structural — the payload is never rendered or re-parsed.
		if err := broker.PublishAtoms(space.DefaultTopic, []hocl.Atom{hocl.Snapshot(statusTuple)}); err != nil {
			b.Fatal(err)
		}
		sm := <-spaceSub.C()
		if !sp.ApplyMessage(sm) {
			b.Fatal("space rejected payload")
		}
		// Result pass: pre-built molecules -> broker -> peer ingest by
		// reference.
		if err := broker.PublishAtoms("sa.T2", []hocl.Atom{pass}); err != nil {
			b.Fatal(err)
		}
		m := <-inbox.C()
		if len(m.Atoms) != 1 || !hocl.Shareable(m.Atoms[0]) {
			b.Fatalf("bad structural ingest: %v", m.Atoms)
		}
	}
}

// BenchmarkInstrumentedMessageRoundTrip is BenchmarkMessageRoundTrip
// with the broker's metrics wired (SetMetrics before traffic, the
// production shape): per-delivery counter increments, pending-depth
// gauge moves and batch-size observations ride the same two wire hops.
// The ceiling matches the uninstrumented benchmark's — instrumentation
// must cost atomics, never allocations.
func BenchmarkInstrumentedMessageRoundTrip(b *testing.B) {
	clock := cluster.NewClock(time.Nanosecond)
	broker := mq.NewQueueBroker(clock, 1e-9)
	broker.SetServiceTime(0)
	broker.SetMetrics(obs.NewRegistry())
	sp := space.New()
	spaceSub, err := broker.Subscribe(space.DefaultTopic)
	if err != nil {
		b.Fatal(err)
	}
	inbox, err := broker.Subscribe("sa.T2")
	if err != nil {
		b.Fatal(err)
	}
	status := hoclflow.TaskAttrs{Name: "T1", Dst: []string{"T2"}, Service: "work"}.SubSolution()
	statusTuple := hocl.Tuple{hocl.Ident("T1"), status}
	pass := hoclflow.PassMessage("T1", []hocl.Atom{hocl.Str("out-T1"), hocl.List{hocl.Int(1), hocl.Int(2)}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := broker.PublishAtoms(space.DefaultTopic, []hocl.Atom{hocl.Snapshot(statusTuple)}); err != nil {
			b.Fatal(err)
		}
		sm := <-spaceSub.C()
		if !sp.ApplyMessage(sm) {
			b.Fatal("space rejected payload")
		}
		if err := broker.PublishAtoms("sa.T2", []hocl.Atom{pass}); err != nil {
			b.Fatal(err)
		}
		m := <-inbox.C()
		if len(m.Atoms) != 1 || !hocl.Shareable(m.Atoms[0]) {
			b.Fatalf("bad structural ingest: %v", m.Atoms)
		}
	}
}

// BenchmarkFig12LargeDiamond extends Fig. 12 beyond the paper's mesh
// sizes: a 12x12 diamond (146 tasks; the fully-connected flavour moves
// ~2000 messages) on SSH + ActiveMQ. Before the zero-reparse message
// path, meshes this size were dominated by render/re-parse CPU.
func BenchmarkFig12LargeDiamond(b *testing.B) {
	for _, fully := range []bool{false, true} {
		name := "simple"
		if fully {
			name = "fully-connected"
		}
		b.Run(name, func(b *testing.B) {
			var model float64
			for i := 0; i < b.N; i++ {
				rep := runDiamondOnce(b, 12, 12, fully, core.Config{
					Executor: executor.KindSSH,
					Broker:   mq.KindQueue,
					Cluster:  benchCluster(25),
				})
				model += rep.ExecTime
			}
			b.ReportMetric(model/float64(b.N), "model_s/op")
		})
	}
}
