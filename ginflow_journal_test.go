package ginflow

import (
	"context"
	"testing"
	"time"
)

// TestJournalRecoverPublicAPI exercises the durability surface end to
// end through the façade: a journal-backed Manager is shut down mid-run
// (the graceful stand-in for a crash — Close leaves journals
// resumable), a fresh Manager over the same directory recovers the
// session, the merged event bus announces it, and the run completes.
func TestJournalRecoverPublicAPI(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	// Tasks of 5 model seconds (250 µs real each at this scale) keep the
	// session safely mid-run when Close fires right after Submit.
	services := noopServices(5.0, "split", "work", "merge")
	def := Diamond(DefaultDiamondSpec(4, 4, false))

	m1, err := New(
		WithJournal(dir),
		WithCluster(ClusterConfig{Nodes: 8, Scale: 50 * time.Microsecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.Submit(ctx, def, services); err != nil {
		t.Fatal(err)
	}
	// Stop the process mid-run; the session's journal stays on disk.
	if err := m1.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := New(
		WithJournal(dir),
		WithCluster(ClusterConfig{Nodes: 8, Scale: 50 * time.Microsecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	events := m2.Events()
	handles, err := m2.Recover(ctx, services)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if len(handles) != 1 {
		t.Fatalf("recovered %d handles, want 1", len(handles))
	}
	rep, err := handles[0].Wait(ctx)
	if err != nil {
		t.Fatalf("recovered run: %v", err)
	}
	if rep.Statuses["MERGE"] != StatusCompleted {
		t.Fatalf("MERGE is %v after recovery", rep.Statuses["MERGE"])
	}
	m2.Close()

	recovered := false
	for e := range events {
		if e.Kind == EventSessionRecovered && e.SessionID == handles[0].ID() {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("no session-recovered event on Manager.Events")
	}

	// The journal is reclaimed once the session finished cleanly.
	m3, err := New(WithJournal(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer m3.Close()
	leftover, err := m3.Recover(ctx, services)
	if err != nil {
		t.Fatal(err)
	}
	if len(leftover) != 0 {
		t.Fatalf("finished session left %d resumable journals", len(leftover))
	}
}

// TestSessionExecutorOverridePublicAPI: one centralized debug session
// inside a distributed Manager (the ROADMAP mixing item).
func TestSessionExecutorOverridePublicAPI(t *testing.T) {
	m, err := New(WithCluster(ClusterConfig{Nodes: 4, Scale: 50 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := m.Submit(context.Background(),
		Diamond(DefaultDiamondSpec(2, 2, false)),
		noopServices(0.1, "split", "work", "merge"),
		WithSessionExecutor(ExecutorCentralized))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := h.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executor != string(ExecutorCentralized) {
		t.Fatalf("executor %q, want centralized", rep.Executor)
	}
}
