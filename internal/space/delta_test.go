package space

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

// applyPayload feeds an encoder-produced wire payload to the space the
// way the broker would: as one structural message.
func applyPayload(s *Space, payload []hocl.Atom) {
	if payload == nil {
		return
	}
	s.ApplyMessage(mq.Message{Atoms: payload})
}

// fullSnapshotPayload builds the classic full-snapshot payload for a
// state, bypassing delta encoding.
func fullSnapshotPayload(task string, atoms []hocl.Atom, inert bool) []hocl.Atom {
	sub := hocl.NewSolution(hocl.SnapshotAtoms(atoms)...)
	sub.SetInert(inert)
	return []hocl.Atom{hocl.Tuple{hocl.Ident(task), sub}}
}

func TestSpaceAppliesDelta(t *testing.T) {
	s := New()
	enc := &hoclflow.StatusEncoder{Task: "T1"}
	state1 := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRC, hocl.NewSolution(hocl.Ident("T0"))},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution(hocl.Ident("T4"))},
		hocl.Tuple{hoclflow.KeyIN, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("s1")},
		hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution()},
	}
	applyPayload(s, enc.Encode(state1, false))

	// Only RES changes: well under the full-snapshot threshold.
	state2 := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRC, hocl.NewSolution(hocl.Ident("T0"))},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution(hocl.Ident("T4"))},
		hocl.Tuple{hoclflow.KeyIN, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("s1")},
		hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution(hocl.Str("out"))},
	}
	payload := enc.Encode(state2, true)
	if _, ok := hoclflow.DecodeStatusDelta(payload[1]); !ok {
		t.Fatalf("expected delta payload, got %v", payload[1])
	}
	applyPayload(s, payload)

	if st := s.Status("T1"); st != hoclflow.StatusCompleted {
		t.Errorf("status after delta = %v, want completed", st)
	}
	res := s.Results("T1")
	if len(res) != 1 || !res[0].Equal(hocl.Str("out")) {
		t.Errorf("results after delta = %v", res)
	}
	applied, fallbacks := s.DeltaStats()
	if applied != 1 || fallbacks != 0 {
		t.Errorf("delta stats = %d applied, %d fallbacks", applied, fallbacks)
	}
}

// TestSpaceDeltaMismatchKeepsLastGoodState: a delta that does not anchor
// (wrong base, unknown task) is dropped and counted, never corrupting
// the recorded state.
func TestSpaceDeltaMismatchKeepsLastGoodState(t *testing.T) {
	s := New()
	state := []hocl.Atom{hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution(hocl.Str("good"))}}
	applyPayload(s, fullSnapshotPayload("T1", state, true))

	// Unknown task.
	d := hoclflow.StatusDelta{Task: "GHOST", Base: 1, Next: 2}
	applyPayload(s, []hocl.Atom{d.Atom()})
	// Wrong base fingerprint.
	d = hoclflow.StatusDelta{
		Task: "T1", Base: 0xbad, Next: 2,
		Added: []hocl.Atom{hocl.Int(1)},
	}
	applyPayload(s, []hocl.Atom{d.Atom()})
	// Removal hash the state does not hold.
	d = hoclflow.StatusDelta{
		Task: "T1", Base: hocl.Fingerprint(state...), Next: 2,
		RemovedHashes: []uint64{0xdead},
	}
	applyPayload(s, []hocl.Atom{d.Atom()})

	if applied, fallbacks := s.DeltaStats(); applied != 0 || fallbacks != 3 {
		t.Errorf("delta stats = %d applied, %d fallbacks, want 0/3", applied, fallbacks)
	}
	res := s.Results("T1")
	if len(res) != 1 || !res[0].Equal(hocl.Str("good")) {
		t.Errorf("state corrupted by refused deltas: %v", res)
	}
	// A later full snapshot resynchronises and deltas anchor again.
	enc := &hoclflow.StatusEncoder{Task: "T1"}
	wide := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("s1")},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution(hocl.Str("good"))},
	}
	applyPayload(s, enc.Encode(wide, true))
	wide2 := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("s1")},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution(hocl.Str("better"))},
	}
	applyPayload(s, enc.Encode(wide2, true))
	if applied, _ := s.DeltaStats(); applied != 1 {
		t.Error("delta after resync full snapshot did not apply")
	}
}

// TestSpaceDeltaDoesNotMutateSharedSnapshot: the full snapshot a space
// stores is shared with the publisher (and other subscribers); folding a
// delta in must patch a space-private copy, never the frozen original.
func TestSpaceDeltaDoesNotMutateSharedSnapshot(t *testing.T) {
	enc := &hoclflow.StatusEncoder{Task: "T1"}
	state1 := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRC, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("s1")},
		hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution()},
	}
	full := enc.Encode(state1, false)
	shared := full[1].(hocl.Tuple)[1].(*hocl.Solution)
	before := shared.String()

	s := New()
	applyPayload(s, full)
	state2 := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRC, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution()},
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("s1")},
		hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution(hocl.Str("out"))},
	}
	delta := enc.Encode(state2, true)
	if _, ok := hoclflow.DecodeStatusDelta(delta[1]); !ok {
		t.Fatalf("expected delta payload, got %v", delta[1])
	}
	applyPayload(s, delta)

	if got := shared.String(); got != before {
		t.Errorf("delta mutated the shared snapshot: %q -> %q", before, got)
	}
	if st := s.Status("T1"); st != hoclflow.StatusCompleted {
		t.Errorf("space state = %v, want completed", st)
	}
}

// randomStatusState generates a mesh-task-shaped stripped status: the
// SRC/DST/SRV/IN/PAR/RES tuples of a diamond/mesh task sub-solution at a
// random point of its enactment, as produced by workflow translation and
// mutated by the gw_* rules.
func randomStatusState(rng *rand.Rand, fan int) []hocl.Atom {
	srcLeft := rng.Intn(fan + 1)
	src := make([]hocl.Atom, 0, srcLeft)
	for i := 0; i < srcLeft; i++ {
		src = append(src, hocl.Ident(fmt.Sprintf("S%d", i+1)))
	}
	in := make([]hocl.Atom, 0, fan-srcLeft)
	for i := srcLeft; i < fan; i++ {
		in = append(in, hocl.Str(fmt.Sprintf("out-S%d", i+1)))
	}
	dst := make([]hocl.Atom, 0, fan)
	for i := 0; i < rng.Intn(fan+1); i++ {
		dst = append(dst, hocl.Ident(fmt.Sprintf("D%d", i+1)))
	}
	atoms := []hocl.Atom{
		hocl.Tuple{hoclflow.KeySRC, hocl.NewSolution(src...)},
		hocl.Tuple{hoclflow.KeyDST, hocl.NewSolution(dst...)},
		hocl.Tuple{hoclflow.KeySRV, hocl.Str("work")},
	}
	if rng.Intn(2) == 0 {
		atoms = append(atoms, hocl.Tuple{hoclflow.KeyIN, hocl.NewSolution(in...)})
	}
	if rng.Intn(3) == 0 {
		atoms = append(atoms, hocl.Tuple{hoclflow.KeyPAR, hocl.List(hocl.SnapshotAtoms(in))})
	}
	res := hocl.NewSolution()
	if srcLeft == 0 && rng.Intn(2) == 0 {
		res.Add(hocl.Str("out-work"))
	}
	atoms = append(atoms, hocl.Tuple{hoclflow.KeyRES, res})
	// Occasional duplicate atoms exercise multiset multiplicities.
	if rng.Intn(4) == 0 {
		atoms = append(atoms, hocl.Int(int64(rng.Intn(3))), hocl.Int(int64(rng.Intn(3))))
	}
	return atoms
}

// TestDeltaAndFullReplayConverge is the delta protocol's property test:
// across randomized diamond/mesh-shaped status histories, a space fed
// delta-encoded pushes and a space fed full snapshots of the same states
// converge to fingerprint-identical contents. Tasks stream concurrently
// (one goroutine per task, as agents push concurrently in a session), so
// the test also exercises the locking under -race.
func TestDeltaAndFullReplayConverge(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			deltaSpace, fullSpace := New(), New()
			const tasks = 6
			const steps = 40
			var wg sync.WaitGroup
			for ti := 0; ti < tasks; ti++ {
				wg.Add(1)
				go func(ti int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed*100 + int64(ti)))
					task := fmt.Sprintf("N%d", ti)
					enc := &hoclflow.StatusEncoder{Task: task}
					fan := 1 + rng.Intn(8)
					for step := 0; step < steps; step++ {
						state := randomStatusState(rng, fan)
						inert := rng.Intn(2) == 0
						applyPayload(deltaSpace, enc.Encode(state, inert))
						applyPayload(fullSpace, fullSnapshotPayload(task, state, inert))
					}
				}(ti)
			}
			wg.Wait()

			if got, want := deltaSpace.StateFingerprint(), fullSpace.StateFingerprint(); got != want {
				t.Errorf("spaces diverged: delta %#x vs full %#x\ndelta: %v\nfull:  %v",
					got, want, deltaSpace.Snapshot(), fullSpace.Snapshot())
			}
			for ti := 0; ti < tasks; ti++ {
				task := fmt.Sprintf("N%d", ti)
				if ds, fs := deltaSpace.Status(task), fullSpace.Status(task); ds != fs {
					t.Errorf("task %s status: delta %v vs full %v", task, ds, fs)
				}
			}
			if _, fallbacks := deltaSpace.DeltaStats(); fallbacks != 0 {
				t.Errorf("in-order delta stream fell back %d times", fallbacks)
			}
		})
	}
}
