package space

import (
	"testing"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

// versioned wraps a full-snapshot body in a VER header.
func versioned(task string, inc, push int64, atoms []hocl.Atom) []hocl.Atom {
	body := fullSnapshotPayload(task, atoms, false)
	return append([]hocl.Atom{hoclflow.VersionMarker(task, inc, push)}, body...)
}

func resState(v string) []hocl.Atom {
	return []hocl.Atom{hocl.Tuple{hoclflow.KeyRES, hocl.NewSolution(hocl.Str(v))}}
}

// msgWith wraps atoms as one structural broker message.
func msgWith(atoms ...hocl.Atom) mq.Message {
	return mq.Message{Atoms: atoms}
}

// TestSpaceDropsStaleVersions: a delayed or redelivered status push —
// one whose (incarnation, push) does not advance the task's recorded
// version — must not roll the recorded state back.
func TestSpaceDropsStaleVersions(t *testing.T) {
	s := New()
	applyPayload(s, versioned("T1", 0, 1, resState("v1")))
	applyPayload(s, versioned("T1", 0, 3, resState("v3")))

	// Redelivered duplicate of push 3, delayed push 2, stale incarnation.
	applyPayload(s, versioned("T1", 0, 3, resState("dup")))
	applyPayload(s, versioned("T1", 0, 2, resState("v2")))

	res := s.Results("T1")
	if len(res) != 1 || !res[0].Equal(hocl.Str("v3")) {
		t.Fatalf("stale push overwrote state: %v", res)
	}
	if got := s.StaleDrops(); got != 2 {
		t.Fatalf("StaleDrops = %d, want 2", got)
	}

	// A later incarnation outranks any push count of an earlier one.
	applyPayload(s, versioned("T1", 1, 1, resState("respawned")))
	if res := s.Results("T1"); len(res) != 1 || !res[0].Equal(hocl.Str("respawned")) {
		t.Fatalf("new incarnation's push dropped: %v", res)
	}
	applyPayload(s, versioned("T1", 0, 99, resState("zombie")))
	if res := s.Results("T1"); !res[0].Equal(hocl.Str("respawned")) {
		t.Fatalf("old incarnation's push accepted after respawn: %v", res)
	}
}

// TestSpaceResetVersionsReopensGate: recovery replays journaled history
// (advancing versions) and then resets the gate so the resumed agents'
// incarnation-0 pushes are accepted again.
func TestSpaceResetVersionsReopensGate(t *testing.T) {
	s := New()
	applyPayload(s, versioned("T1", 2, 5, resState("pre-crash")))
	applyPayload(s, versioned("T1", 0, 1, resState("ignored")))
	if !s.Results("T1")[0].Equal(hocl.Str("pre-crash")) {
		t.Fatal("gate should reject the lower incarnation before reset")
	}
	s.ResetVersions()
	applyPayload(s, versioned("T1", 0, 1, resState("resumed")))
	if !s.Results("T1")[0].Equal(hocl.Str("resumed")) {
		t.Fatal("post-reset push rejected")
	}
}

// TestSpaceDeduplicatesMarkers: a duplicated delivery of an idempotent
// marker must not grow the marker multiset (fingerprint stability under
// chaos).
func TestSpaceDeduplicatesMarkers(t *testing.T) {
	s := New()
	trigger := hocl.Tuple{hoclflow.KeyTRIGGER, hocl.Str("a1")}
	s.ApplyMessage(msgWith(trigger))
	fp := s.StateFingerprint()
	s.ApplyMessage(msgWith(trigger))
	if got := s.StateFingerprint(); got != fp {
		t.Fatalf("duplicate marker changed the fingerprint: %#x -> %#x", fp, got)
	}
	if n := len(s.Markers()); n != 1 {
		t.Fatalf("marker multiset grew to %d", n)
	}
	other := hocl.Tuple{hoclflow.KeyTRIGGER, hocl.Str("a2")}
	s.ApplyMessage(msgWith(other))
	if n := len(s.Markers()); n != 2 {
		t.Fatalf("distinct marker not recorded: %d", n)
	}
}
