package space

import (
	"testing"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

func fullPush(task string, atoms ...hocl.Atom) mq.Message {
	sub := hocl.NewSolution(atoms...)
	sub.SetInert(true)
	return mq.Message{Atoms: []hocl.Atom{hocl.Tuple{hocl.Ident(task), sub}}}
}

func badDelta(task string) mq.Message {
	d := hoclflow.StatusDelta{Task: task, Base: 0xdead, Next: 0xbeef, Inert: true}
	return mq.Message{Atoms: []hocl.Atom{d.Atom()}}
}

// TestResyncRequestedOnDeltaMismatch: a delta that fails to anchor
// triggers exactly one resync request for its task, deduplicated until
// a full snapshot heals the state, after which a new mismatch may
// request again.
func TestResyncRequestedOnDeltaMismatch(t *testing.T) {
	s := New()
	var asked []string
	s.SetResyncRequester(func(task string) { asked = append(asked, task) })

	s.ApplyMessage(fullPush("T1", hocl.Str("a")))
	if len(asked) != 0 {
		t.Fatalf("full push triggered resync: %v", asked)
	}

	s.ApplyMessage(badDelta("T1"))
	if len(asked) != 1 || asked[0] != "T1" {
		t.Fatalf("after first bad delta asked=%v, want [T1]", asked)
	}
	// Repeated mismatches do not storm the agent.
	s.ApplyMessage(badDelta("T1"))
	s.ApplyMessage(badDelta("T1"))
	if len(asked) != 1 {
		t.Fatalf("resync storm: %v", asked)
	}

	// The healing full snapshot clears the pending flag...
	s.ApplyMessage(fullPush("T1", hocl.Str("b")))
	// ...so a later divergence can ask again.
	s.ApplyMessage(badDelta("T1"))
	if len(asked) != 2 {
		t.Fatalf("post-heal mismatch not re-requested: %v", asked)
	}

	// Unknown-task deltas request a resync too (the full push will
	// introduce the task).
	s.ApplyMessage(badDelta("T9"))
	if len(asked) != 3 || asked[2] != "T9" {
		t.Fatalf("unknown-task delta: %v", asked)
	}
	if got := s.ResyncRequests(); got != 3 {
		t.Fatalf("ResyncRequests = %d, want 3", got)
	}
}

// TestRequestResyncForced: recovery forces convergence by requesting a
// full push per rebuilt task; dedup applies until healed.
func TestRequestResyncForced(t *testing.T) {
	s := New()
	var asked []string
	s.SetResyncRequester(func(task string) { asked = append(asked, task) })

	s.RequestResync("T1")
	s.RequestResync("T1")
	if len(asked) != 1 {
		t.Fatalf("forced resync not deduplicated: %v", asked)
	}
	s.ApplyMessage(fullPush("T1", hocl.Str("x")))
	s.RequestResync("T1")
	if len(asked) != 2 {
		t.Fatalf("forced resync after heal: %v", asked)
	}
}

// TestResyncWithoutRequesterIsSafe: the channel is optional.
func TestResyncWithoutRequesterIsSafe(t *testing.T) {
	s := New()
	s.ApplyMessage(badDelta("T1"))
	s.RequestResync("T1")
	if _, fallbacks := s.DeltaStats(); fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", fallbacks)
	}
	if s.ResyncRequests() != 0 {
		t.Fatal("requests counted without a requester")
	}
}
