// Package space implements GinFlow's shared space: the multiset holding
// "the description of the current status of the workflow" (paper §II,
// §IV-A). Service agents push their local solutions back to the space
// after reductions; the space routes each update "to the right
// sub-solution" and lets clients observe progress and completion.
//
// Status pushes arrive either as full snapshots (a Name:<...> tuple
// replacing the task's recorded sub-solution) or as deltas
// (hoclflow.StatusDelta: only the changed top-level atoms), which the
// space folds into its stored copy. Deltas are anchored by fingerprints;
// one that does not anchor — unknown task, base mismatch — is dropped
// and counted, and the last good state is kept (DESIGN.md "Broker
// internals").
package space

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

// DefaultTopic is the broker topic the space consumes.
const DefaultTopic = "ginflow.space"

// TopicFor returns the space topic of a namespaced session: ns is a
// per-run topic namespace such as "wf3." (empty selects DefaultTopic).
// Each session of a long-lived manager runs its own Space on its own
// topic, so concurrent runs' status molecules never cross.
func TopicFor(ns string) string {
	if ns == "" {
		return DefaultTopic
	}
	return ns + DefaultTopic
}

// taskState is one task's recorded status: the sub-solution plus the
// bookkeeping the delta protocol needs — per-atom hashes aligned with
// the solution's element order and their incremental multiset combine.
// Hashes are computed lazily on the first delta, so workflows that only
// ever push full snapshots never pay for them.
type taskState struct {
	sub *hocl.Solution
	// owned reports whether sub is a space-private shell that may be
	// mutated in place. A full snapshot arrives frozen and shared with
	// the publisher (and possibly other subscribers); the first delta
	// copies the shell before mutating.
	owned bool
	// hashed reports whether hashes/msh mirror sub's atoms.
	hashed bool
	hashes []uint64
	msh    hocl.MultisetHash
}

// ensureHashed (re)builds the per-atom hash mirror from the stored atoms.
func (st *taskState) ensureHashed() {
	if st.hashed {
		return
	}
	atoms := st.sub.Atoms()
	st.hashes = st.hashes[:0]
	st.msh = hocl.MultisetHash{}
	for _, a := range atoms {
		h := hocl.AtomHash(a)
		st.hashes = append(st.hashes, h)
		st.msh.Add(h)
	}
	st.hashed = true
}

// Space is the shared multiset. It is safe for concurrent use.
type Space struct {
	mu        sync.Mutex
	tasks     map[string]*taskState // task name -> latest sub-solution
	markers   []hocl.Atom           // TRIGGER markers and other global molecules
	changed   chan struct{}
	// cond, set by SetClock on a virtual clock, is the scheduler-aware
	// update signal: a single-run-token schedule cannot express the
	// changed-channel rendezvous, so virtual-mode waiters park on the
	// Cond and every update broadcasts it (alongside the channel, which
	// real-mode waiters keep using).
	cond *cluster.Cond
	updates   int64
	malformed int

	deltasApplied  int64
	deltaFallbacks int64

	// versions records, per task, the highest (incarnation, push) VER
	// header folded in; a payload that does not advance it is stale —
	// a delayed or redelivered push — and is dropped whole, so chaos on
	// the status topic can never roll a task's recorded state back.
	versions   map[string]taskVersion
	staleDrops int64

	// resync, when set, is invoked (outside the lock) with the name of a
	// task whose delta-encoded status push failed to anchor: the space
	// asks the agent for an immediate full push instead of staying stale
	// until the agent's next natural snapshot. resyncPending dedups the
	// requests — one per task until a full snapshot heals it.
	resync        func(task string)
	resyncPending map[string]bool
	resyncWant    []string // requests accumulated under the current fold
	resyncSent    int64

	sub *mq.Subscription

	// chaos, when set, perturbs the serve-path fold order (defer and
	// duplicate per message) — the space-client boundary of the chaos
	// harness. deferred holds the held-back messages; deferMu is separate
	// from mu because flushing folds through ApplyBatch, which takes mu.
	chaos    atomic.Pointer[failure.Schedule]
	deferMu  sync.Mutex
	deferred []mq.Message
}

// taskVersion orders one task's status pushes: incarnations dominate,
// push counters break ties within an incarnation.
type taskVersion struct {
	inc, push int64
}

// before reports whether v precedes (or equals) w lexicographically.
func (v taskVersion) before(w taskVersion) bool {
	return v.inc < w.inc || (v.inc == w.inc && v.push <= w.push)
}

// New returns an empty space.
func New() *Space {
	return &Space{
		tasks:         map[string]*taskState{},
		changed:       make(chan struct{}),
		resyncPending: map[string]bool{},
		versions:      map[string]taskVersion{},
	}
}

// ResetVersions forgets the per-task version gate. Crash recovery calls
// it after replaying journaled status history: the resumed process's
// agents restart at incarnation 0, and their fresh pushes must not be
// mistaken for stale ones.
func (s *Space) ResetVersions() {
	s.mu.Lock()
	s.versions = map[string]taskVersion{}
	s.mu.Unlock()
}

// StaleDrops reports how many versioned status payloads were dropped as
// stale (delayed or redelivered pushes overtaken by a newer one).
func (s *Space) StaleDrops() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.staleDrops
}

// SetResyncRequester installs the space-to-agent resync channel: fn is
// called with a task name whenever a delta for it could not be applied
// (unknown task or fingerprint mismatch), at most once per task until a
// full snapshot for that task arrives. fn is invoked outside the space
// lock, after the batch that tripped it has been folded. Typically fn
// publishes a hoclflow.ResyncMarker to the task's inbox topic.
func (s *Space) SetResyncRequester(fn func(task string)) {
	s.mu.Lock()
	s.resync = fn
	s.mu.Unlock()
}

// RequestResync asks the task's agent for a full status push through
// the installed resync requester (a no-op without one). Recovery uses
// it to force post-resume convergence of every rebuilt task.
func (s *Space) RequestResync(task string) {
	s.mu.Lock()
	fn := s.resync
	pending := s.resyncPending[task]
	if fn != nil && !pending {
		s.resyncPending[task] = true
		s.resyncSent++
	}
	s.mu.Unlock()
	if fn != nil && !pending {
		fn(task)
	}
}

// ResyncRequests reports how many resync requests the space has issued.
func (s *Space) ResyncRequests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resyncSent
}

// UpdateTask stores the latest sub-solution pushed by a task's agent,
// replacing any recorded state (the full-snapshot path).
func (s *Space) UpdateTask(name string, sub *hocl.Solution) {
	s.mu.Lock()
	s.updateTaskLocked(name, sub)
	s.bump()
	s.mu.Unlock()
}

func (s *Space) updateTaskLocked(name string, sub *hocl.Solution) {
	st := s.tasks[name]
	if st == nil {
		st = &taskState{}
		s.tasks[name] = st
	}
	st.sub = sub
	st.owned = false
	st.hashed = false
	// A full snapshot heals whatever staleness a refused delta left.
	delete(s.resyncPending, name)
}

// AddMarker records a global molecule (e.g. TRIGGER:"id").
func (s *Space) AddMarker(a hocl.Atom) {
	s.mu.Lock()
	s.markers = append(s.markers, a)
	s.bump()
	s.mu.Unlock()
}

// bump signals waiters; callers hold s.mu.
func (s *Space) bump() {
	s.updates++
	close(s.changed)
	s.changed = make(chan struct{})
	if s.cond != nil {
		s.cond.Broadcast()
	}
}

// SetClock tells the space which model clock its session runs on. On a
// virtual clock this installs the scheduler-aware wait path
// (WaitCompleted parks on a Cond instead of the changed channel, and
// Serve consumes through Subscription.Next); a real clock is a no-op.
// Call before Serve or WaitCompleted.
func (s *Space) SetClock(clock *cluster.Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if clock.Virtual() && s.cond == nil {
		s.cond = clock.NewCond()
	}
}

// Updates returns the number of updates applied so far.
func (s *Space) Updates() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates
}

// DeltaStats reports how many delta-encoded status pushes were folded in
// and how many were refused (unknown task, fingerprint mismatch) — the
// observability hook for the delta protocol's fallback path.
func (s *Space) DeltaStats() (applied, fallbacks int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deltasApplied, s.deltaFallbacks
}

// Names returns the task names that have reported into this space, in
// no particular order — the observable footprint of a session, used to
// assert that concurrent runs' molecules never cross.
func (s *Space) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tasks))
	for name := range s.tasks {
		out = append(out, name)
	}
	return out
}

// Status derives the recorded status of a task (StatusIdle when the task
// has never reported).
func (s *Space) Status(name string) hoclflow.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.tasks[name]
	if !ok {
		return hoclflow.StatusIdle
	}
	return hoclflow.StatusOf(st.sub)
}

// Results returns the task's recorded RES contents. The atoms are shared
// by reference (status payloads are frozen); the caller must not mutate
// them.
func (s *Space) Results(name string) []hocl.Atom {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.tasks[name]
	if !ok {
		return nil
	}
	res := hoclflow.Results(st.sub)
	if res == nil {
		return nil
	}
	return append([]hocl.Atom(nil), res...)
}

// Markers returns the recorded global molecules, shared by reference;
// the caller must not mutate them.
func (s *Space) Markers() []hocl.Atom {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]hocl.Atom(nil), s.markers...)
}

// Triggered returns the adaptation IDs whose TRIGGER markers have been
// recorded, in arrival order (duplicates collapsed).
func (s *Space) Triggered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, a := range s.markers {
		tp, ok := a.(hocl.Tuple)
		if !ok || len(tp) != 2 || !tp[0].Equal(hoclflow.KeyTRIGGER) {
			continue
		}
		id, ok := tp[1].(hocl.Str)
		if !ok || seen[string(id)] {
			continue
		}
		seen[string(id)] = true
		out = append(out, string(id))
	}
	return out
}

// Snapshot renders the space as a global multiset: task tuples plus
// markers — the distributed analogue of the centralized global solution.
// The result is a copy-on-write snapshot: the caller may mutate (even
// reduce) it freely without affecting the space.
func (s *Space) Snapshot() *hocl.Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	global := hocl.NewSolution()
	for name, st := range s.tasks {
		global.Add(hocl.Tuple{hocl.Ident(name), st.sub.SnapshotSolution()})
	}
	for _, m := range s.markers {
		global.Add(hocl.Snapshot(m))
	}
	return global
}

// StateFingerprint hashes the space's observable state — every task's
// recorded top-level multiset plus the markers — order-insensitively:
// two spaces that recorded the same states fingerprint equal regardless
// of how the updates arrived (full snapshots, deltas, or any mix), which
// is the convergence property the delta protocol is tested against.
func (s *Space) StateFingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var m hocl.MultisetHash
	for name, st := range s.tasks {
		fp := hocl.Fingerprint(st.sub.Atoms()...)
		m.Add(hocl.AtomHash(hocl.Tuple{hocl.Ident(name), hocl.Int(int64(fp))}))
	}
	for _, mk := range s.markers {
		m.Add(hocl.AtomHash(mk))
	}
	return m.Fingerprint()
}

// waitCh returns the channel closed at the next update.
func (s *Space) waitCh() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.changed
}

// WaitCompleted blocks until every named task reports StatusCompleted, or
// the context ends.
func (s *Space) WaitCompleted(ctx context.Context, names []string) error {
	s.mu.Lock()
	cond := s.cond
	s.mu.Unlock()
	if cond != nil {
		// Virtual clock: the caller is a schedule participant; park on
		// the Cond so the run token is released while waiting. The
		// single-token schedule means no update can slip in between the
		// completion check and the wait.
		for {
			if s.allCompleted(names) {
				return nil
			}
			if err := cond.Wait(ctx); err != nil {
				return err
			}
		}
	}
	for {
		if s.allCompleted(names) {
			return nil
		}
		ch := s.waitCh()
		if s.allCompleted(names) { // re-check: update may have raced waitCh
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

func (s *Space) allCompleted(names []string) bool {
	for _, n := range names {
		if s.Status(n) != hoclflow.StatusCompleted {
			return false
		}
	}
	return true
}

// Attach subscribes the space to its broker topic. Attaching before any
// agent starts guarantees no status update is published into the void.
// Attach is idempotent.
func (s *Space) Attach(broker mq.Broker, topic string) error {
	if topic == "" {
		topic = DefaultTopic
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sub != nil {
		return nil
	}
	sub, err := broker.Subscribe(topic)
	if err != nil {
		return err
	}
	s.sub = sub
	return nil
}

// Serve consumes status messages from the broker topic until the context
// ends, attaching first if Attach has not been called. Messages arrive
// in broker batches and are folded in under one lock acquisition per
// batch. Message payloads are HOCL molecule lists: task tuples
// (Name:<...>) replace the task's sub-solution, STATDELTA tuples patch
// it, anything else is recorded as a marker. Malformed payloads are
// counted and skipped — a resilient space does not die on a corrupt
// message.
func (s *Space) Serve(ctx context.Context, broker mq.Broker, topic string) error {
	return s.ServeHooked(ctx, broker, topic, nil, nil)
}

// ServeHooked consumes like Serve with two optional observation hooks
// running on the consuming goroutine, in exact fold order: before is
// invoked with each raw batch before it is folded in (the journal's
// write-ahead point), after once the fold completed (the checkpoint
// point). Hooks see batches in the order the space applies them — the
// ordering guarantee a write-ahead log needs and a second subscriber
// could not give.
//
// When a chaos schedule is installed (SetChaos), the fold order behind
// the hooks is perturbed: messages may be held back or folded twice.
// The hooks still see raw batches in arrival order, so a journal
// records truth while the chaos exercises the version gate beneath it.
func (s *Space) ServeHooked(ctx context.Context, broker mq.Broker, topic string, before func([]mq.Message), after func()) error {
	if err := s.Attach(broker, topic); err != nil {
		return err
	}
	s.mu.Lock()
	sub := s.sub
	cond := s.cond
	s.mu.Unlock()
	defer sub.Cancel()
	if cond != nil {
		return s.serveVirtual(ctx, sub, before, after)
	}
	batches := sub.Batches()
	// Under chaos, a ticker drains held-back messages so a deferral
	// during the final quiet period cannot stall convergence.
	var tick <-chan time.Time
	if sched := s.chaos.Load(); sched.Enabled() {
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-ctx.Done():
			s.FlushDeferred()
			return ctx.Err()
		case <-tick:
			s.FlushDeferred()
		case batch := <-batches:
			if before != nil {
				before(batch)
			}
			s.applyBatchChaos(batch)
			if after != nil {
				after()
			}
		}
	}
}

// serveVirtual is the consume loop on a discrete-event clock: the
// serving goroutine is a schedule participant, so it receives through
// Subscription.Next instead of the drain goroutine behind Batches.
// Chaos-deferred messages are flushed whenever the inbox runs dry —
// the virtual-time equivalent of the real-mode ticker: a held-back
// message rejoins as soon as the space would otherwise go quiet, so a
// deferral can never stall convergence.
func (s *Space) serveVirtual(ctx context.Context, sub *mq.Subscription, before func([]mq.Message), after func()) error {
	for {
		if err := ctx.Err(); err != nil {
			s.FlushDeferred()
			return err
		}
		batch := sub.TryNext()
		if batch == nil {
			s.FlushDeferred()
			var err error
			batch, err = sub.Next(ctx)
			if err != nil {
				s.FlushDeferred()
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return err
			}
		}
		if before != nil {
			before(batch)
		}
		s.applyBatchChaos(batch)
		if after != nil {
			after()
		}
	}
}

// SetChaos installs the fault schedule for the space-client boundary.
// Install before Serve; a nil schedule is ignored.
func (s *Space) SetChaos(sched *failure.Schedule) {
	if sched != nil {
		s.chaos.Store(sched)
	}
}

// applyBatchChaos folds one serve-path batch, drawing a fault per
// message when chaos is enabled: a "drop" defers the fold (a delayed
// apply — never a loss, since a lost final status would break the
// convergence guarantee the paper's model gives), a duplicate folds the
// message twice (the version gate must shrug it off). Held-back
// messages rejoin at the next fold, oldest first, so they arrive out of
// order relative to their successors. The perturbation lives only on
// the serve path: ApplyBatch itself stays pure for recovery replay.
func (s *Space) applyBatchChaos(batch []mq.Message) {
	sched := s.chaos.Load()
	if !sched.Enabled() {
		s.ApplyBatch(batch)
		return
	}
	s.deferMu.Lock()
	pending := s.deferred
	s.deferred = nil
	s.deferMu.Unlock()
	apply := make([]mq.Message, 0, len(pending)+len(batch))
	apply = append(apply, pending...)
	var held []mq.Message
	for i := range batch {
		switch sched.Draw(failure.BoundarySpace).Kind {
		case failure.FaultDrop:
			// Deep-copy before holding: the batch slice is broker-owned
			// and recycled after this call returns.
			held = append(held, copyMsg(batch[i]))
		case failure.FaultDuplicate:
			apply = append(apply, batch[i], batch[i])
		default:
			apply = append(apply, batch[i])
		}
	}
	if len(apply) > 0 {
		s.ApplyBatch(apply)
	}
	if len(held) > 0 {
		s.deferMu.Lock()
		s.deferred = append(s.deferred, held...)
		s.deferMu.Unlock()
	}
}

// FlushDeferred folds every chaos-deferred message immediately,
// returning how many decoded. The engine calls it after the chaos
// settle window, before reading results — deferred state must land
// before anyone fingerprints the space.
func (s *Space) FlushDeferred() int {
	s.deferMu.Lock()
	pending := s.deferred
	s.deferred = nil
	s.deferMu.Unlock()
	if len(pending) == 0 {
		return 0
	}
	return s.ApplyBatch(pending)
}

// copyMsg deep-copies a broker-owned message for retention beyond the
// batch hand-off (atom values are immutable; only the slice is shared).
func copyMsg(m mq.Message) mq.Message {
	if m.Atoms != nil {
		m.Atoms = append([]hocl.Atom(nil), m.Atoms...)
	}
	return m
}

// TaskStates returns a copy-on-write snapshot of every task's recorded
// sub-solution, keyed by task name — the per-task view crash recovery
// seeds replacement agents from. The caller may mutate the returned
// solutions freely.
func (s *Space) TaskStates() map[string]*hocl.Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*hocl.Solution, len(s.tasks))
	for name, st := range s.tasks {
		out[name] = st.sub.SnapshotSolution()
	}
	return out
}

// ApplyBatch folds a batch of status messages into the space under one
// lock acquisition and one waiter wakeup, returning how many decoded.
// The batch slice is not retained — safe to call with a broker-owned
// batch.
func (s *Space) ApplyBatch(msgs []mq.Message) int {
	n := 0
	s.mu.Lock()
	applied := int64(0)
	for i := range msgs {
		if s.applyMessageLocked(msgs[i], &applied) {
			n++
		}
	}
	s.finishApplyLocked(applied)
	fn, want := s.takeResyncLocked()
	s.mu.Unlock()
	fireResync(fn, want)
	return n
}

// ApplyMessage folds one status message into the space, reporting
// whether it decoded. Structural payloads are stored by reference — the
// zero-reparse path; textual payloads are parsed first.
func (s *Space) ApplyMessage(msg mq.Message) bool {
	s.mu.Lock()
	applied := int64(0)
	ok := s.applyMessageLocked(msg, &applied)
	s.finishApplyLocked(applied)
	fn, want := s.takeResyncLocked()
	s.mu.Unlock()
	fireResync(fn, want)
	return ok
}

// takeResyncLocked drains the resync requests accumulated by the fold
// just performed; the caller fires them after releasing the lock, so
// the requester callback can publish without re-entering the space.
func (s *Space) takeResyncLocked() (func(task string), []string) {
	if s.resync == nil || len(s.resyncWant) == 0 {
		return nil, nil
	}
	want := s.resyncWant
	s.resyncWant = nil
	return s.resync, want
}

func fireResync(fn func(task string), tasks []string) {
	if fn == nil {
		return
	}
	for _, t := range tasks {
		fn(t)
	}
}

// finishApplyLocked records applied updates and wakes waiters once —
// waiters re-check state anyway, so one wakeup per apply call suffices
// no matter how many updates it folded in. Refused deltas count as
// nothing.
func (s *Space) finishApplyLocked(applied int64) {
	if applied == 0 {
		return
	}
	s.updates += applied
	close(s.changed)
	s.changed = make(chan struct{})
	if s.cond != nil {
		s.cond.Broadcast()
	}
}

func (s *Space) applyMessageLocked(msg mq.Message, applied *int64) bool {
	if msg.Structural() {
		s.applyAtomsLocked(msg.Atoms, applied)
		return true
	}
	atoms, err := hocl.ParseMolecules(msg.Payload)
	if err != nil {
		s.malformed++
		return false
	}
	s.applyAtomsLocked(atoms, applied)
	return true
}

// Apply folds one textual status payload into the space, reporting
// whether it parsed.
func (s *Space) Apply(payload string) bool {
	return s.ApplyMessage(mq.Message{Payload: payload})
}

// applyAtomsLocked routes each molecule: task tuples (Name:<...>)
// replace the task's recorded sub-solution, STATDELTA tuples patch it,
// anything else is recorded as a marker. The space never mutates
// wire atoms, so sharing them with the publisher and other consumers is
// safe; only space-owned solution shells are patched in place. applied
// is incremented per folded-in update (refused deltas do not count).
func (s *Space) applyAtomsLocked(atoms []hocl.Atom, applied *int64) {
	for _, a := range atoms {
		if task, inc, push, ok := hoclflow.DecodeVersion(a); ok {
			// The VER header gates the remainder of its payload: a
			// version that does not advance the task's recorded one is a
			// delayed or redelivered push, dropped whole.
			v := taskVersion{inc: inc, push: push}
			if prev, seen := s.versions[task]; seen && v.before(prev) {
				s.staleDrops++
				return
			}
			s.versions[task] = v
			continue
		}
		if d, ok := hoclflow.DecodeStatusDelta(a); ok {
			if s.applyDeltaLocked(&d) {
				*applied++
			}
			continue
		}
		if tp, ok := a.(hocl.Tuple); ok && len(tp) == 2 {
			if name, ok := tp[0].(hocl.Ident); ok {
				if sub, ok := tp[1].(*hocl.Solution); ok {
					s.updateTaskLocked(string(name), sub)
					*applied++
					continue
				}
			}
		}
		if s.hasMarkerLocked(a) {
			// Markers are idempotent facts (TRIGGER:"id", ...): a
			// duplicated delivery must not grow the marker multiset, or
			// fingerprints would diverge across chaotic runs.
			continue
		}
		s.markers = append(s.markers, a)
		*applied++
	}
}

// hasMarkerLocked reports whether an equal marker is already recorded.
func (s *Space) hasMarkerLocked(a hocl.Atom) bool {
	for _, m := range s.markers {
		if m.Equal(a) {
			return true
		}
	}
	return false
}

// applyDeltaLocked folds one delta into the task's recorded state,
// reporting whether it applied. A delta that does not anchor — unknown
// task, base fingerprint mismatch, a removal hash the recorded state
// does not hold, or a Next fingerprint the patch would not produce — is
// dropped wholly before anything mutates, and counted; the last good
// state is kept. In-order per-topic delivery makes those cases
// unreachable in normal operation (the agent's first push of an
// incarnation is always a full snapshot), so a fallback here indicates a
// lost or reordered message, and the next full snapshot resynchronises.
func (s *Space) applyDeltaLocked(d *hoclflow.StatusDelta) bool {
	st, ok := s.tasks[d.Task]
	if !ok {
		s.deltaFallbackLocked(d.Task)
		return false
	}
	st.ensureHashed()
	if st.msh.Fingerprint() != d.Base {
		s.deltaFallbackLocked(d.Task)
		return false
	}
	// Resolve every removal hash and dry-run the whole patch on a copy
	// of the multiset combine before mutating anything: the drop is
	// genuinely atomic, including the Next verification (whose failure
	// is only reachable through an AtomHash collision inside one status
	// multiset — counted so divergence is observable).
	var removeIdx []int
	var taken []bool
	next := st.msh
	if len(d.RemovedHashes) > 0 {
		removeIdx = make([]int, 0, len(d.RemovedHashes))
		taken = make([]bool, len(st.hashes))
		for _, h := range d.RemovedHashes {
			found := -1
			for j, hh := range st.hashes {
				if !taken[j] && hh == h {
					found = j
					break
				}
			}
			if found < 0 {
				s.deltaFallbackLocked(d.Task)
				return false
			}
			taken[found] = true
			removeIdx = append(removeIdx, found)
			next.Remove(h)
		}
	}
	addedHashes := make([]uint64, len(d.Added))
	for i, a := range d.Added {
		addedHashes[i] = hocl.AtomHash(a)
		next.Add(addedHashes[i])
	}
	if next.Fingerprint() != d.Next {
		s.deltaFallbackLocked(d.Task)
		return false
	}

	if !st.owned {
		// First patch of a shared snapshot: copy the shell (atoms stay
		// shared) so in-place patches never touch the frozen original.
		st.sub = st.sub.SnapshotSolution()
		st.owned = true
	}
	if len(removeIdx) > 0 {
		st.sub.RemoveIndices(removeIdx)
		// Mirror the removal on the hash slice, preserving order the way
		// RemoveIndices does.
		kept := st.hashes[:0]
		for j, h := range st.hashes {
			if !taken[j] {
				kept = append(kept, h)
			}
		}
		st.hashes = kept
	}
	if len(d.Added) > 0 {
		st.sub.Add(d.Added...)
		st.hashes = append(st.hashes, addedHashes...)
	}
	st.msh = next
	st.sub.SetInert(d.Inert)
	s.deltasApplied++
	return true
}

// deltaFallbackLocked counts a refused delta and queues a resync
// request for the task (once per task until a full snapshot heals it).
func (s *Space) deltaFallbackLocked(task string) {
	s.deltaFallbacks++
	if s.resync == nil || s.resyncPending[task] {
		return
	}
	s.resyncPending[task] = true
	s.resyncSent++
	s.resyncWant = append(s.resyncWant, task)
}

// Malformed returns the number of undecodable payloads seen.
func (s *Space) Malformed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.malformed
}
