// Package space implements GinFlow's shared space: the multiset holding
// "the description of the current status of the workflow" (paper §II,
// §IV-A). Service agents push their local solutions back to the space
// after reductions; the space routes each update "to the right
// sub-solution" and lets clients observe progress and completion.
package space

import (
	"context"
	"sync"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

// DefaultTopic is the broker topic the space consumes.
const DefaultTopic = "ginflow.space"

// TopicFor returns the space topic of a namespaced session: ns is a
// per-run topic namespace such as "wf3." (empty selects DefaultTopic).
// Each session of a long-lived manager runs its own Space on its own
// topic, so concurrent runs' status molecules never cross.
func TopicFor(ns string) string {
	if ns == "" {
		return DefaultTopic
	}
	return ns + DefaultTopic
}

// Space is the shared multiset. It is safe for concurrent use.
type Space struct {
	mu        sync.Mutex
	tasks     map[string]*hocl.Solution // task name -> latest sub-solution
	markers   []hocl.Atom               // TRIGGER markers and other global molecules
	changed   chan struct{}
	updates   int64
	malformed int
	sub       *mq.Subscription
}

// New returns an empty space.
func New() *Space {
	return &Space{tasks: map[string]*hocl.Solution{}, changed: make(chan struct{})}
}

// UpdateTask stores the latest sub-solution pushed by a task's agent.
func (s *Space) UpdateTask(name string, sub *hocl.Solution) {
	s.mu.Lock()
	s.tasks[name] = sub
	s.bump()
	s.mu.Unlock()
}

// AddMarker records a global molecule (e.g. TRIGGER:"id").
func (s *Space) AddMarker(a hocl.Atom) {
	s.mu.Lock()
	s.markers = append(s.markers, a)
	s.bump()
	s.mu.Unlock()
}

// bump signals waiters; callers hold s.mu.
func (s *Space) bump() {
	s.updates++
	close(s.changed)
	s.changed = make(chan struct{})
}

// Updates returns the number of updates applied so far.
func (s *Space) Updates() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updates
}

// Names returns the task names that have reported into this space, in
// no particular order — the observable footprint of a session, used to
// assert that concurrent runs' molecules never cross.
func (s *Space) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.tasks))
	for name := range s.tasks {
		out = append(out, name)
	}
	return out
}

// Status derives the recorded status of a task (StatusIdle when the task
// has never reported).
func (s *Space) Status(name string) hoclflow.Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.tasks[name]
	if !ok {
		return hoclflow.StatusIdle
	}
	return hoclflow.StatusOf(sub)
}

// Results returns the task's recorded RES contents. The atoms are shared
// by reference (status payloads are frozen); the caller must not mutate
// them.
func (s *Space) Results(name string) []hocl.Atom {
	s.mu.Lock()
	defer s.mu.Unlock()
	sub, ok := s.tasks[name]
	if !ok {
		return nil
	}
	res := hoclflow.Results(sub)
	if res == nil {
		return nil
	}
	return append([]hocl.Atom(nil), res...)
}

// Markers returns the recorded global molecules, shared by reference;
// the caller must not mutate them.
func (s *Space) Markers() []hocl.Atom {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]hocl.Atom(nil), s.markers...)
}

// Triggered returns the adaptation IDs whose TRIGGER markers have been
// recorded, in arrival order (duplicates collapsed).
func (s *Space) Triggered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, a := range s.markers {
		tp, ok := a.(hocl.Tuple)
		if !ok || len(tp) != 2 || !tp[0].Equal(hoclflow.KeyTRIGGER) {
			continue
		}
		id, ok := tp[1].(hocl.Str)
		if !ok || seen[string(id)] {
			continue
		}
		seen[string(id)] = true
		out = append(out, string(id))
	}
	return out
}

// Snapshot renders the space as a global multiset: task tuples plus
// markers — the distributed analogue of the centralized global solution.
// The result is a copy-on-write snapshot: the caller may mutate (even
// reduce) it freely without affecting the space.
func (s *Space) Snapshot() *hocl.Solution {
	s.mu.Lock()
	defer s.mu.Unlock()
	global := hocl.NewSolution()
	for name, sub := range s.tasks {
		global.Add(hocl.Tuple{hocl.Ident(name), sub.SnapshotSolution()})
	}
	for _, m := range s.markers {
		global.Add(hocl.Snapshot(m))
	}
	return global
}

// waitCh returns the channel closed at the next update.
func (s *Space) waitCh() <-chan struct{} {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.changed
}

// WaitCompleted blocks until every named task reports StatusCompleted, or
// the context ends.
func (s *Space) WaitCompleted(ctx context.Context, names []string) error {
	for {
		if s.allCompleted(names) {
			return nil
		}
		ch := s.waitCh()
		if s.allCompleted(names) { // re-check: update may have raced waitCh
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

func (s *Space) allCompleted(names []string) bool {
	for _, n := range names {
		if s.Status(n) != hoclflow.StatusCompleted {
			return false
		}
	}
	return true
}

// Attach subscribes the space to its broker topic. Attaching before any
// agent starts guarantees no status update is published into the void.
// Attach is idempotent.
func (s *Space) Attach(broker mq.Broker, topic string) error {
	if topic == "" {
		topic = DefaultTopic
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sub != nil {
		return nil
	}
	sub, err := broker.Subscribe(topic)
	if err != nil {
		return err
	}
	s.sub = sub
	return nil
}

// Serve consumes status messages from the broker topic until the context
// ends, attaching first if Attach has not been called. Message payloads
// are HOCL molecule lists: task tuples (Name:<...>) update the task's
// sub-solution, anything else is recorded as a marker. Malformed
// payloads are counted and skipped — a resilient space does not die on a
// corrupt message.
func (s *Space) Serve(ctx context.Context, broker mq.Broker, topic string) error {
	if err := s.Attach(broker, topic); err != nil {
		return err
	}
	s.mu.Lock()
	sub := s.sub
	s.mu.Unlock()
	defer sub.Cancel()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case msg := <-sub.C():
			s.ApplyMessage(msg)
		}
	}
}

// ApplyMessage folds one status message into the space, reporting
// whether it decoded. Structural payloads are stored by reference — the
// zero-reparse path; textual payloads are parsed first.
func (s *Space) ApplyMessage(msg mq.Message) bool {
	if msg.Structural() {
		s.applyAtoms(msg.Atoms)
		return true
	}
	return s.Apply(msg.Payload)
}

// Apply folds one textual status payload into the space, reporting
// whether it parsed.
func (s *Space) Apply(payload string) bool {
	atoms, err := hocl.ParseMolecules(payload)
	if err != nil {
		s.mu.Lock()
		s.malformed++
		s.mu.Unlock()
		return false
	}
	s.applyAtoms(atoms)
	return true
}

// applyAtoms routes each molecule: task tuples (Name:<...>) replace the
// task's recorded sub-solution, anything else is recorded as a marker.
// The space never mutates stored atoms, so sharing them with the
// publisher and other consumers is safe.
func (s *Space) applyAtoms(atoms []hocl.Atom) {
	for _, a := range atoms {
		if tp, ok := a.(hocl.Tuple); ok && len(tp) == 2 {
			if name, ok := tp[0].(hocl.Ident); ok {
				if sub, ok := tp[1].(*hocl.Solution); ok {
					s.UpdateTask(string(name), sub)
					continue
				}
			}
		}
		s.AddMarker(a)
	}
}

// Malformed returns the number of undecodable payloads seen.
func (s *Space) Malformed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.malformed
}
