package space

import (
	"testing"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

// statusPayload builds a representative agent status push: a task tuple
// carrying SRC/DST/SRV/IN/RES plus a TRIGGER marker.
func statusPayload(t *testing.T) []hocl.Atom {
	t.Helper()
	sub := hoclflow.TaskAttrs{
		Name: "T3", Src: []string{"T1"}, Dst: []string{"T4"}, Service: "s1",
	}.SubSolution()
	if tp, idx := sub.FindTuple(hoclflow.KeyRES); idx >= 0 {
		tp[1].(*hocl.Solution).Add(hocl.Str("out-s1"), hocl.List{hocl.Int(1), hocl.Int(2)})
	}
	return []hocl.Atom{
		hoclflow.TaskTuple("T3", sub),
		hoclflow.TriggerMarker("a1"),
	}
}

// TestStructuralAndTextualPayloadsEquivalent is the round-trip
// equivalence guarantee of the zero-reparse path: folding a structural
// payload into a space produces exactly the state that rendering the same
// payload to text and re-parsing it produces.
func TestStructuralAndTextualPayloadsEquivalent(t *testing.T) {
	atoms := statusPayload(t)

	structural := New()
	if !structural.ApplyMessage(mq.Message{Atoms: atoms}) {
		t.Fatal("structural payload rejected")
	}
	textual := New()
	if !textual.ApplyMessage(mq.Message{Payload: hocl.FormatMolecules(atoms)}) {
		t.Fatal("textual payload rejected")
	}

	if s, x := structural.Status("T3"), textual.Status("T3"); s != x {
		t.Errorf("status diverged: structural=%v textual=%v", s, x)
	}
	sres, xres := structural.Results("T3"), textual.Results("T3")
	if len(sres) != len(xres) {
		t.Fatalf("result count diverged: %d vs %d", len(sres), len(xres))
	}
	for i := range sres {
		if !sres[i].Equal(xres[i]) {
			t.Errorf("result %d diverged: %v vs %v", i, sres[i], xres[i])
		}
	}
	if s, x := structural.Triggered(), textual.Triggered(); len(s) != 1 || len(x) != 1 || s[0] != x[0] {
		t.Errorf("triggers diverged: %v vs %v", s, x)
	}
	if !structural.Snapshot().Equal(textual.Snapshot()) {
		t.Errorf("global snapshots diverged:\n%v\nvs\n%v", structural.Snapshot(), textual.Snapshot())
	}
}

// TestStructuralApplyDoesNotAliasMutations pins the freeze contract from
// the consumer side: a snapshot taken from the space stays stable even if
// the snapshot's caller mutates it.
func TestSnapshotIsCopyOnWrite(t *testing.T) {
	sp := New()
	if !sp.ApplyMessage(mq.Message{Atoms: statusPayload(t)}) {
		t.Fatal("payload rejected")
	}
	before := sp.Snapshot().String()
	snap := sp.Snapshot()
	snap.Add(hocl.Ident("EXTRA"))
	for _, a := range snap.Atoms() {
		if tp, ok := a.(hocl.Tuple); ok && len(tp) == 2 {
			if sub, ok := tp[1].(*hocl.Solution); ok {
				sub.Add(hocl.Ident("DEEP"))
			}
		}
	}
	if got := sp.Snapshot().String(); got != before {
		t.Errorf("mutating a snapshot leaked into the space:\n%s\nwant\n%s", got, before)
	}
}
