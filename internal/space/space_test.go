package space

import (
	"context"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

func completedSub(t *testing.T, result string) *hocl.Solution {
	t.Helper()
	a, err := hocl.ParseGround(`<SRC:<>, DST:<>, RES:<"` + result + `">>`)
	if err != nil {
		t.Fatal(err)
	}
	return a.(*hocl.Solution)
}

func TestStatusAndResults(t *testing.T) {
	s := New()
	if got := s.Status("T1"); got != hoclflow.StatusIdle {
		t.Errorf("unknown task status = %v", got)
	}
	s.UpdateTask("T1", completedSub(t, "out"))
	if got := s.Status("T1"); got != hoclflow.StatusCompleted {
		t.Errorf("status = %v", got)
	}
	res := s.Results("T1")
	if len(res) != 1 || !res[0].Equal(hocl.Str("out")) {
		t.Errorf("results = %v", res)
	}
	if s.Results("T9") != nil {
		t.Error("unknown task has results")
	}
	if s.Updates() != 1 {
		t.Errorf("updates = %d", s.Updates())
	}
}

func TestMarkersAndTriggered(t *testing.T) {
	s := New()
	s.AddMarker(hoclflow.TriggerMarker("a1"))
	s.AddMarker(hoclflow.TriggerMarker("a1")) // duplicate collapses
	s.AddMarker(hoclflow.TriggerMarker("a2"))
	s.AddMarker(hocl.Ident("NOISE"))
	got := s.Triggered()
	if len(got) != 2 || got[0] != "a1" || got[1] != "a2" {
		t.Errorf("Triggered = %v", got)
	}
	if len(s.Markers()) != 4 {
		t.Errorf("markers = %v", s.Markers())
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	s := New()
	s.UpdateTask("T1", completedSub(t, "x"))
	snap := s.Snapshot()
	if snap.Len() != 1 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Mutating the snapshot must not affect the space.
	snap.Add(hocl.Ident("JUNK"))
	if s.Snapshot().Len() != 1 {
		t.Error("snapshot aliased space state")
	}
}

func TestApplyPayloads(t *testing.T) {
	s := New()
	if !s.Apply(`T1:<SRC:<>, RES:<"r">>, TRIGGER:"a1"`) {
		t.Fatal("valid payload rejected")
	}
	if got := s.Status("T1"); got != hoclflow.StatusCompleted {
		t.Errorf("status = %v", got)
	}
	if got := s.Triggered(); len(got) != 1 || got[0] != "a1" {
		t.Errorf("triggered = %v", got)
	}
	if s.Apply("<<<garbage") {
		t.Error("malformed payload accepted")
	}
	if s.Malformed() != 1 {
		t.Errorf("malformed count = %d", s.Malformed())
	}
}

func TestWaitCompleted(t *testing.T) {
	s := New()
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	go func() { done <- s.WaitCompleted(ctx, []string{"T1", "T2"}) }()

	s.UpdateTask("T1", completedSub(t, "a"))
	select {
	case err := <-done:
		t.Fatalf("WaitCompleted returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	s.UpdateTask("T2", completedSub(t, "b"))
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitCompleted: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitCompleted never returned")
	}
}

func TestWaitCompletedHonoursContext(t *testing.T) {
	s := New()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.WaitCompleted(ctx, []string{"NEVER"}); err == nil {
		t.Fatal("want context error")
	}
}

func TestServeConsumesBrokerTopic(t *testing.T) {
	clock := cluster.NewClock(10 * time.Microsecond)
	broker := mq.NewQueueBroker(clock, 0.001)
	s := New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go s.Serve(ctx, broker, "")

	// Give Serve a moment to subscribe before publishing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := broker.Publish(DefaultTopic, `T1:<SRC:<>, RES:<"ok">>`); err != nil {
			t.Fatal(err)
		}
		if s.Status("T1") == hoclflow.StatusCompleted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("space never consumed the update")
		}
		time.Sleep(time.Millisecond)
	}
}
