package templates

import (
	"context"
	"strings"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/workflow"
)

func TestSequenceTemplate(t *testing.T) {
	b := New("seq")
	head := b.Task("HEAD", "fetch", "url")
	tail := b.Sequence(head, "clean", "publish")
	def, err := b.Workflow()
	if err != nil {
		t.Fatal(err)
	}
	if def.TaskCount() != 3 {
		t.Errorf("tasks = %d", def.TaskCount())
	}
	if len(tail) != 1 {
		t.Errorf("tail = %v", tail)
	}
	order, _ := def.TopoOrder()
	if order[0] != "HEAD" {
		t.Errorf("order = %v", order)
	}
	if got := def.Exits(); len(got) != 1 || got[0] != tail[0] {
		t.Errorf("exits = %v, tail = %v", got, tail)
	}
}

func TestSplitMergeTemplate(t *testing.T) {
	b := New("diamond")
	head := b.Task("SPLIT", "split", "input")
	branches := b.Split(head, "work", 4)
	tail := b.Merge(branches, "merge")
	def, err := b.Workflow()
	if err != nil {
		t.Fatal(err)
	}
	if def.TaskCount() != 6 {
		t.Errorf("tasks = %d", def.TaskCount())
	}
	if len(branches) != 4 {
		t.Errorf("branches = %v", branches)
	}
	if got := def.SrcOf(tail[0]); len(got) != 4 {
		t.Errorf("merge fan-in = %v", got)
	}
	for _, id := range branches {
		if got := def.SrcOf(id); len(got) != 1 || got[0] != "SPLIT" {
			t.Errorf("branch %s sources = %v", id, got)
		}
	}
}

func TestParallelAndJoin(t *testing.T) {
	b := New("hetero")
	head := b.Task("IN", "fetch", "x")
	left := b.Parallel(head, "proj")
	right := b.Parallel(head, "stats")
	tail := b.Merge(Join(left, right), "combine")
	def, err := b.Workflow()
	if err != nil {
		t.Fatal(err)
	}
	if got := def.SrcOf(tail[0]); len(got) != 2 {
		t.Errorf("combine fan-in = %v", got)
	}
}

func TestAutoIDsAreValidAndUnique(t *testing.T) {
	b := New("ids")
	head := b.Task("H", "svc", "x")
	stage := b.Split(head, "montage/mproject-2mass", 5) // hostile service name
	b.Merge(stage, "9starts-with-digit")
	def, err := b.Workflow()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, task := range def.Tasks {
		if !hoclflow.ValidTaskName(task.ID) {
			t.Errorf("generated id %q invalid", task.ID)
		}
		if seen[task.ID] {
			t.Errorf("duplicate id %q", task.ID)
		}
		seen[task.ID] = true
	}
}

func TestBuilderErrorsPropagate(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.Task("X", "s"); b.Task("X", "s") },     // duplicate id
		func(b *Builder) { b.Split(Stage{"NOPE"}, "s", 2) },         // unknown stage
		func(b *Builder) { b.Split(b.Task("A", "s", "i"), "s", 0) }, // zero branches
		func(b *Builder) { b.Merge(nil, "s") },                      // empty merge
		func(b *Builder) { b.Parallel(b.Task("A", "s", "i")) },      // no services
		func(b *Builder) { b.Task("lower", "s") },                   // invalid explicit id
	}
	for i, mutate := range cases {
		b := New("bad")
		mutate(b)
		if _, err := b.Workflow(); err == nil {
			t.Errorf("case %d: Workflow succeeded, want error", i)
		}
	}
}

func TestErrorShortCircuitsLaterCalls(t *testing.T) {
	b := New("bad")
	b.Merge(nil, "s") // first error
	stage := b.Task("A", "s", "x")
	if stage != nil {
		t.Error("calls after an error must return nil stages")
	}
	_, err := b.Workflow()
	if err == nil || !strings.Contains(err.Error(), "merge") {
		t.Errorf("first error must win: %v", err)
	}
}

func TestSequenceOnEmptyServiceListIsIdentity(t *testing.T) {
	b := New("id")
	head := b.Task("A", "s", "x")
	same := b.Sequence(head)
	if len(same) != 1 || same[0] != "A" {
		t.Errorf("identity sequence = %v", same)
	}
}

func TestWithAdaptation(t *testing.T) {
	b := New("adaptive")
	head := b.Task("T1", "s1", "in")
	mid := b.Sequence(head, "s2")
	last := b.Sequence(mid, "s3")
	b.WithAdaptation(workflow.Adaptation{
		ID:     "alt",
		Faulty: []string{mid[0]},
		Replacement: []workflow.ReplacementTask{{
			ID: "ALT", Service: "s2alt", Src: []string{"T1"}, Dst: []string{last[0]},
		}},
	})
	def, err := b.Workflow()
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Adaptations) != 1 {
		t.Fatalf("adaptations = %d", len(def.Adaptations))
	}
}

// TestTemplatePipelineRunsEndToEnd executes a template-built pipeline on
// the decentralised engine.
func TestTemplatePipelineRunsEndToEnd(t *testing.T) {
	b := New("tigres-demo")
	head := b.Task("FETCH", "fetch", "survey")
	mids := b.Split(head, "proj", 3)
	tail := b.Merge(mids, "combine")
	tail = b.Sequence(tail, "publish")
	def, err := b.Workflow()
	if err != nil {
		t.Fatal(err)
	}

	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "fetch", "proj", "combine", "publish")
	rep, err := core.Run(context.Background(), def, services, core.Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  cluster.Config{Nodes: 3, Scale: 50 * time.Microsecond},
		Timeout:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	exit := tail[0]
	if rep.Statuses[exit] != hoclflow.StatusCompleted {
		t.Errorf("exit %s = %v", exit, rep.Statuses[exit])
	}
}
