// Package templates provides Tigres-style workflow templates for
// GinFlow. The paper closes with "GinFlow is currently being integrated
// inside the Tigres workflow execution environment" (§VII, refs [13],
// [27]), whose user-centred API builds pipelines from four templates —
// sequence, parallel, split and merge — that "cover the basic needs of
// many scientific computational pipelines" (§V). This package implements
// those combinators on top of the workflow model: compose stages
// programmatically, then materialise a validated Definition.
//
//	b := templates.New("pipeline")
//	head := b.Task("FETCH", "fetch", "url")
//	mids := b.Split(head, "proj", 4)        // fan out to 4 parallel tasks
//	tail := b.Merge(mids, "combine")        // fan in
//	tail = b.Sequence(tail, "shrink", "publish")
//	def, err := b.Workflow()
package templates

import (
	"fmt"
	"regexp"
	"strings"

	"ginflow/internal/workflow"
)

// Stage is the set of open task IDs at the tail of the graph built so
// far: the tasks the next template connects from.
type Stage []string

// Builder accumulates tasks and edges; it is not safe for concurrent
// use.
type Builder struct {
	name        string
	tasks       []*workflow.Task
	byID        map[string]*workflow.Task
	adaptations []workflow.Adaptation
	counter     int
	err         error
}

// New starts an empty workflow builder.
func New(name string) *Builder {
	return &Builder{name: name, byID: map[string]*workflow.Task{}}
}

var idCleanRE = regexp.MustCompile(`[^A-Za-z0-9_]`)

// autoID derives a fresh valid task ID from a service name.
func (b *Builder) autoID(service string) string {
	b.counter++
	base := strings.ToUpper(idCleanRE.ReplaceAllString(service, "_"))
	if base == "" || base[0] < 'A' || base[0] > 'Z' {
		base = "T" + base
	}
	return fmt.Sprintf("%s_%d", base, b.counter)
}

func (b *Builder) fail(format string, args ...any) Stage {
	if b.err == nil {
		b.err = fmt.Errorf("templates: "+format, args...)
	}
	return nil
}

// add registers a new task and returns its ID.
func (b *Builder) add(id, service string, in []string) string {
	if id == "" {
		id = b.autoID(service)
	}
	if _, dup := b.byID[id]; dup {
		b.fail("duplicate task id %q", id)
		return id
	}
	t := &workflow.Task{ID: id, Service: service, In: append([]string(nil), in...)}
	b.tasks = append(b.tasks, t)
	b.byID[id] = t
	return id
}

// connect appends an edge from every task of the stage to dst.
func (b *Builder) connect(from Stage, dst string) {
	for _, src := range from {
		t, ok := b.byID[src]
		if !ok {
			b.fail("stage references unknown task %q", src)
			return
		}
		t.Dst = append(t.Dst, dst)
	}
}

// Task adds a standalone entry task with explicit ID and initial inputs,
// returning it as a one-task stage.
func (b *Builder) Task(id, service string, in ...string) Stage {
	if b.err != nil {
		return nil
	}
	return Stage{b.add(id, service, in)}
}

// Sequence chains tasks one after another from the given stage (the
// Tigres sequence template): every listed service becomes one task, each
// fed by the previous. A multi-task stage first funnels into the first
// sequence task.
func (b *Builder) Sequence(from Stage, services ...string) Stage {
	if b.err != nil {
		return nil
	}
	if len(services) == 0 {
		return from
	}
	cur := from
	for _, svc := range services {
		id := b.add("", svc, nil)
		b.connect(cur, id)
		cur = Stage{id}
	}
	return cur
}

// Split fans out from the stage to n parallel tasks running the same
// service (the Tigres split template). Every task of the incoming stage
// feeds every branch.
func (b *Builder) Split(from Stage, service string, n int) Stage {
	if b.err != nil {
		return nil
	}
	if n < 1 {
		return b.fail("split needs at least 1 branch, got %d", n)
	}
	out := make(Stage, n)
	for i := 0; i < n; i++ {
		id := b.add("", service, nil)
		b.connect(from, id)
		out[i] = id
	}
	return out
}

// Parallel fans out from the stage to one task per listed service (the
// Tigres parallel template with heterogeneous branches).
func (b *Builder) Parallel(from Stage, services ...string) Stage {
	if b.err != nil {
		return nil
	}
	if len(services) == 0 {
		return b.fail("parallel needs at least one service")
	}
	out := make(Stage, len(services))
	for i, svc := range services {
		id := b.add("", svc, nil)
		b.connect(from, id)
		out[i] = id
	}
	return out
}

// Merge funnels every task of the stage into a single task (the Tigres
// merge template).
func (b *Builder) Merge(from Stage, service string) Stage {
	if b.err != nil {
		return nil
	}
	if len(from) == 0 {
		return b.fail("merge needs a non-empty stage")
	}
	id := b.add("", service, nil)
	b.connect(from, id)
	return Stage{id}
}

// Join merges multiple stages into one without adding a task: the next
// template connects from all of them.
func Join(stages ...Stage) Stage {
	var out Stage
	for _, s := range stages {
		out = append(out, s...)
	}
	return out
}

// WithAdaptation attaches an adaptation to the workflow under
// construction: should any task of faulty fail, replacement is wired in
// (see workflow.Adaptation for the validity rules).
func (b *Builder) WithAdaptation(a workflow.Adaptation) *Builder {
	if b.err != nil {
		return b
	}
	b.adaptations = append(b.adaptations, a)
	return b
}

// Workflow materialises and validates the definition.
func (b *Builder) Workflow() (*workflow.Definition, error) {
	if b.err != nil {
		return nil, b.err
	}
	def := &workflow.Definition{Name: b.name}
	for _, t := range b.tasks {
		def.Tasks = append(def.Tasks, *t)
	}
	def.Adaptations = append(def.Adaptations, b.adaptations...)
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return def, nil
}
