package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"ginflow/internal/hocl"
)

// SessionState is the replayable state of one journaled session, read
// back from its newest intact segment.
type SessionState struct {
	// Meta is the durable session identity from the segment's workflow
	// record.
	Meta SessionMeta
	// Done reports that the session finished (a done record is present):
	// recovery must skip it.
	Done bool
	// Payloads is the replay stream: the latest complete snapshot's
	// molecule list followed by every status payload journaled after it,
	// in fold order. Folding each element into an empty space (the same
	// apply path live status pushes take) rebuilds the session's
	// observable state.
	Payloads [][]hocl.Atom
	// Inbox is the direct-topic message history journaled for the
	// session, in publish order: recovery restores it into the log
	// broker so resumed agents replay their pre-crash inbox traffic.
	// Unlike Payloads it is NOT cut at snapshots — rotation rewrites the
	// full history into each segment head.
	Inbox []InboxRecord
	// TornBytes counts the bytes of torn tail ignored at the end of the
	// newest segment (0 when the segment ends on a frame boundary).
	TornBytes int64
	// StatusRecords counts the status payloads replayed (snapshot
	// excluded).
	StatusRecords int

	// headTorn marks a segment whose workflow record is intact but
	// whose head snapshot is torn: usable only as a restart-from-
	// scratch last resort when no intact segment exists.
	headTorn bool
}

// ReadSession reads a session's replayable state from its newest intact
// segment. A torn tail — the trailing bytes of a record interrupted by
// the crash — is detected by the frame length/fingerprint and ignored; a
// segment whose head (workflow record + first snapshot) is torn is
// skipped entirely in favour of its predecessor, which rotation keeps on
// disk until the successor's head is durable.
func (j *Journal) ReadSession(id int64) (*SessionState, error) {
	dir := j.sessionDir(id)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("journal: session %d: no segments", id)
	}
	var lastErr error
	// A segment whose workflow record survived but whose head snapshot
	// is torn (the rotation window: kill between the two head writes)
	// is only a last resort — an intact predecessor preserves the
	// progress the torn head would discard.
	var tornHead *SessionState
	for i := len(segs) - 1; i >= 0; i-- {
		st, err := readSegment(segs[i].path)
		if err != nil {
			lastErr = err
			continue
		}
		if st.Meta.ID != id {
			lastErr = fmt.Errorf("journal: session %d: segment %s records session %d",
				id, segs[i].path, st.Meta.ID)
			continue
		}
		if st.headTorn {
			if tornHead == nil {
				tornHead = st
			}
			continue
		}
		if st.TornBytes > 0 {
			j.met.tornTails.Inc()
		}
		return st, nil
	}
	if tornHead != nil {
		j.met.tornTails.Inc()
		return tornHead, nil
	}
	return nil, fmt.Errorf("journal: session %d: no intact segment: %w", id, lastErr)
}

// readSegment parses one segment file: frames are validated by length
// and fingerprint, replay is cut to the last complete snapshot, and the
// first invalid frame ends the scan (everything after it is torn tail).
func readSegment(path string) (*SessionState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	st := &SessionState{}
	sawMeta, sawSnapshot := false, false
	pos := 0
	for {
		typ, payload, next, ok := nextFrame(data, pos)
		if !ok {
			st.TornBytes = int64(len(data) - pos)
			break
		}
		pos = next
		switch typ {
		case recWorkflow:
			if err := json.Unmarshal(payload, &st.Meta); err != nil {
				return nil, fmt.Errorf("journal: %s: workflow record: %w", path, err)
			}
			sawMeta = true
		case recSnapshot:
			atoms, err := hocl.DecodeAtoms(payload)
			if err != nil {
				return nil, fmt.Errorf("journal: %s: snapshot record: %w", path, err)
			}
			// A later snapshot supersedes everything before it: replay
			// restarts here.
			st.Payloads = st.Payloads[:0]
			st.Payloads = append(st.Payloads, atoms)
			st.StatusRecords = 0
			sawSnapshot = true
		case recStatus:
			atoms, err := hocl.DecodeAtoms(payload)
			if err != nil {
				return nil, fmt.Errorf("journal: %s: status record: %w", path, err)
			}
			st.Payloads = append(st.Payloads, atoms)
			st.StatusRecords++
		case recInbox:
			rec, err := decodeInboxPayload(payload)
			if err != nil {
				return nil, fmt.Errorf("journal: %s: %w", path, err)
			}
			st.Inbox = append(st.Inbox, rec)
		case recDone:
			st.Done = true
		default:
			return nil, fmt.Errorf("journal: %s: unknown record type %d", path, typ)
		}
	}
	if !sawMeta {
		return nil, fmt.Errorf("journal: %s: torn segment head", path)
	}
	if !sawSnapshot {
		// The crash hit between the workflow record and the head
		// snapshot: the submission is durable but no state is. The
		// session is recoverable from scratch (an empty replay stream),
		// but ReadSession prefers an intact predecessor segment.
		st.Payloads = nil
		st.StatusRecords = 0
		st.Inbox = nil
		st.headTorn = true
	}
	return st, nil
}

// nextFrame validates and extracts the frame starting at pos. ok is
// false when the remaining bytes do not hold one intact frame — a torn
// tail, by construction of the append-only writer.
func nextFrame(data []byte, pos int) (typ byte, payload []byte, next int, ok bool) {
	rest := data[pos:]
	if len(rest) < frameOverhead {
		return 0, nil, 0, false
	}
	n := binary.LittleEndian.Uint32(rest)
	if n > maxRecordBytes || int(n) > len(rest)-frameOverhead {
		return 0, nil, 0, false
	}
	typ = rest[4]
	payload = rest[5 : 5+n]
	sum := binary.LittleEndian.Uint64(rest[5+n:])
	if sum != frameFingerprint(typ, payload) {
		return 0, nil, 0, false
	}
	return typ, payload, pos + frameOverhead + int(n), true
}
