// Package journal implements GinFlow's durable session store: a
// write-ahead log that lets a fresh Manager process resume the workflow
// sessions a crashed one left behind (DESIGN.md "Durability &
// recovery").
//
// Each session owns a directory of append-only segment files. A segment
// begins with the submitted workflow (its JSON form plus the submission
// metadata needed to rebuild the session) and a full space snapshot,
// followed by the session's status-push stream — the same full-snapshot
// and STATDELTA payloads agents publish on the space topic, in exactly
// the order the session's space folded them, encoded with the binary
// atom codec (hocl.EncodeAtoms). Replaying a segment into an empty
// space therefore rebuilds the crashed session's observable state
// through the very delta-fold and fingerprint-verification path live
// operation uses.
//
// Every record is framed with its length and a fingerprint of its
// contents, so a torn tail — the half-written record of a mid-write
// crash — is detected and cleanly ignored on open: recovery resumes
// from the last intact record. Periodic checkpoints (fresh snapshots)
// bound replay length; when a segment outgrows its size budget the
// writer rotates to a new segment headed by a fresh workflow record and
// snapshot, and prunes the older segments it supersedes.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/obs"
)

// Record types of the segment frame format.
const (
	// recWorkflow carries the session metadata (JSON-encoded
	// SessionMeta, including the workflow definition). It is the first
	// record of every segment.
	recWorkflow byte = 1
	// recSnapshot carries a full space snapshot as an encoded molecule
	// list (task tuples + markers): the replay starting point.
	recSnapshot byte = 2
	// recStatus carries one space-topic status payload (full snapshot
	// tuple or STATDELTA) as an encoded molecule list.
	recStatus byte = 3
	// recDone marks the session finished: Recover must not resume it.
	recDone byte = 4
	// recInbox carries one direct-topic inbox message (topic + payload
	// atoms): the replay source that survives log-broker loss across a
	// double crash (crash, recover, crash again before the agents drained
	// their logs).
	recInbox byte = 5
)

// frameOverhead is the fixed per-record framing cost: a uint32 length,
// a type byte and a uint64 content fingerprint.
const frameOverhead = 4 + 1 + 8

// maxRecordBytes bounds a single record on read: a corrupt length field
// must not drive a gigabyte allocation.
const maxRecordBytes = 1 << 28

// Config tunes a Journal. The zero value of every field takes a
// default; only Dir is required.
type Config struct {
	// Dir is the journal root directory; each session journals into a
	// subdirectory wf-<id>/ of it. Empty disables journaling.
	Dir string
	// SnapshotEvery is the checkpoint cadence: a fresh space snapshot is
	// written after this many status records (default 256). Smaller
	// values shorten replay at the cost of write volume.
	SnapshotEvery int
	// MaxSegmentBytes rotates the session to a new segment file once the
	// current one outgrows this size at a checkpoint (default 4 MiB).
	// Rotation prunes the superseded segments.
	MaxSegmentBytes int64
	// Sync fsyncs after every checkpoint and rotation. The default
	// (false) is durable against process crashes — the journal's threat
	// model — but not against host power loss.
	Sync bool

	// CrashAfterRecords is a test hook simulating a process crash at an
	// exact journal point: after this many records have been appended,
	// every later write (status, checkpoint, done record) is silently
	// dropped, leaving the on-disk state exactly as a kill at that
	// instant would. 0 disables the hook.
	CrashAfterRecords int64

	// Chaos, when non-nil, injects write faults (transient errors, torn
	// half-writes, slow fsync) drawn from the schedule's journal
	// boundaries. Torn and errored writes are retried after repairing the
	// file tail, up to Retry's budget.
	Chaos *failure.Schedule
	// Retry bounds the write retry loop under Chaos (zero value takes the
	// failure package defaults).
	Retry failure.RetryConfig

	// Metrics selects the registry journal I/O counters register in
	// (nil = obs.Default()).
	Metrics *obs.Registry
}

// jmetrics holds the journal's pre-resolved instruments; appendFrame is
// a guarded 0-alloc hot path (BenchmarkJournalAppendStatus), so every
// update is a single atomic increment on a resolved counter.
type jmetrics struct {
	appends   *obs.Counter
	fsyncs    *obs.Counter
	rotations *obs.Counter
	tornTails *obs.Counter
	retries   *obs.Counter
}

func newJMetrics(reg *obs.Registry) *jmetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &jmetrics{
		appends: reg.Counter("ginflow_journal_appends_total",
			"Framed records appended to session segments."),
		fsyncs: reg.Counter("ginflow_journal_fsyncs_total",
			"Segment fsyncs performed (Config.Sync checkpoints and rotations)."),
		rotations: reg.Counter("ginflow_journal_rotations_total",
			"Segment rotations (size-budget rollovers and recovery reseeds)."),
		tornTails: reg.Counter("ginflow_journal_torn_tails_total",
			"Torn segment tails detected and ignored during recovery reads."),
		retries: reg.Counter("ginflow_retry_attempts_total",
			"Retries after transient faults, per boundary.", obs.L("boundary", "journal-write")),
	}
}

// Enabled reports whether the config selects a journal directory.
func (c Config) Enabled() bool { return c.Dir != "" }

func (c Config) withDefaults() Config {
	if c.SnapshotEvery <= 0 {
		c.SnapshotEvery = 256
	}
	if c.MaxSegmentBytes <= 0 {
		c.MaxSegmentBytes = 4 << 20
	}
	return c
}

// SessionMeta is the durable identity of a session: everything a fresh
// Manager needs to rebuild it, minus the service implementations (Go
// functions cannot be persisted; Recover takes a registry).
type SessionMeta struct {
	// ID is the session's manager-unique identifier, also encoded in the
	// session's directory name and topic namespace.
	ID int64 `json:"id"`
	// Workflow is the submitted definition in its JSON form
	// (workflow.Definition round-trips through it).
	Workflow json.RawMessage `json:"workflow"`
	// TimeoutNS is the session's real-time timeout in nanoseconds.
	TimeoutNS int64 `json:"timeout_ns"`
	// FailureP / FailureT are the session's fault-injection parameters.
	FailureP float64 `json:"failure_p,omitempty"`
	FailureT float64 `json:"failure_t,omitempty"`
	// CollectTrace records whether the session retains its event
	// timeline in the report.
	CollectTrace bool `json:"collect_trace,omitempty"`
	// Executor is the session's executor kind override ("" = manager
	// default).
	Executor string `json:"executor,omitempty"`
}

// Journal manages the session journals under one root directory.
type Journal struct {
	cfg Config
	met *jmetrics
}

// Open prepares a journal rooted at cfg.Dir, creating the directory if
// needed.
func Open(cfg Config) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("journal: no directory configured")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Journal{cfg: cfg, met: newJMetrics(cfg.Metrics)}, nil
}

// Dir returns the journal root directory.
func (j *Journal) Dir() string { return j.cfg.Dir }

func (j *Journal) sessionDir(id int64) string {
	return filepath.Join(j.cfg.Dir, fmt.Sprintf("wf-%d", id))
}

// SessionIDs returns the IDs of all sessions present in the journal
// directory (finished or not), sorted ascending. A fresh Manager uses
// the maximum to keep new session IDs from colliding with journaled
// ones.
func (j *Journal) SessionIDs() ([]int64, error) {
	entries, err := os.ReadDir(j.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var ids []int64
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "wf-") {
			continue
		}
		id, err := strconv.ParseInt(strings.TrimPrefix(e.Name(), "wf-"), 10, 64)
		if err != nil || id <= 0 {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids, nil
}

// RemoveSession deletes a session's journal directory: the cleanup of a
// session that finished and needs no recovery.
func (j *Journal) RemoveSession(id int64) error {
	return os.RemoveAll(j.sessionDir(id))
}

// CreateSession starts journaling a fresh session: its directory is
// created and the first segment is seeded with the workflow record and
// an empty snapshot.
func (j *Journal) CreateSession(meta SessionMeta) (*SessionWriter, error) {
	dir := j.sessionDir(meta.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: session %d: %w", meta.ID, err)
	}
	w := &SessionWriter{cfg: j.cfg, dir: dir, meta: meta, met: j.met}
	if err := w.rotate(nil); err != nil {
		return nil, err
	}
	return w, nil
}

// ResumeSession reopens an unfinished session for write-through after
// recovery: the recovered state is checkpointed into a fresh segment
// (whose workflow record re-persists meta) and the superseded segments
// are pruned. snapshot must be the molecule list of the rebuilt space;
// inbox is the direct-message history read back from the old segments,
// re-journaled into the fresh head so a second crash can still replay
// it.
func (j *Journal) ResumeSession(meta SessionMeta, snapshot []hocl.Atom, inbox []InboxRecord) (*SessionWriter, error) {
	dir := j.sessionDir(meta.ID)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &SessionWriter{cfg: j.cfg, dir: dir, meta: meta, met: j.met}
	if n := len(segs); n > 0 {
		w.segIndex = segs[n-1].index
	}
	if len(inbox) > 0 {
		w.inboxSource = func() []InboxRecord { return inbox }
	}
	if err := w.rotate(snapshot); err != nil {
		return nil, err
	}
	return w, nil
}

// SessionWriter appends one session's records to its current segment
// file. It is safe for concurrent use, though sessions write from a
// single goroutine in practice.
type SessionWriter struct {
	cfg  Config
	dir  string
	meta SessionMeta
	// met holds the journal's resolved instruments; nil (a writer built
	// outside Journal, tests only) disables them — every obs instrument
	// is nil-receiver-safe, but the struct pointer itself needs a guard,
	// so writers always get the owning Journal's non-nil met in practice.
	met *jmetrics

	mu           sync.Mutex
	f            *os.File
	segIndex     int
	size         int64
	sinceSnap    int   // status records since the last snapshot
	records      int64 // total records appended (crash-hook counter)
	crashed      bool  // test hook tripped: drop all writes
	closed       bool
	scratch      []byte // frame assembly buffer, reused per record
	enc          []byte // atom-encoding buffer, reused per record
	statusFrames int64
	// inboxSource, when set, supplies the session's full direct-message
	// history at rotation time so each new segment carries the complete
	// inbox replay stream (older segments are pruned).
	inboxSource func() []InboxRecord
}

// InboxRecord is one journaled direct-topic message: the agent inbox
// traffic a recovered session must replay so resumed agents re-observe
// the PASS/ADAPT messages their crashed incarnations consumed from the
// log broker.
type InboxRecord struct {
	// Topic is the direct topic the message was published on.
	Topic string
	// Atoms is the frozen message payload.
	Atoms []hocl.Atom
}

// segmentName renders the file name of segment n.
func segmentName(n int) string { return fmt.Sprintf("seg-%06d.gfj", n) }

// segmentRef locates one segment file.
type segmentRef struct {
	index int
	path  string
}

func listSegments(dir string) ([]segmentRef, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var segs []segmentRef
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".gfj") {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".gfj"))
		if err != nil {
			continue
		}
		segs = append(segs, segmentRef{index: n, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a].index < segs[b].index })
	return segs, nil
}

// crashTripped reports (and latches) the test hook; callers hold w.mu.
func (w *SessionWriter) crashTripped() bool {
	if w.crashed {
		return true
	}
	if w.cfg.CrashAfterRecords > 0 && w.records >= w.cfg.CrashAfterRecords {
		w.crashed = true
	}
	return w.crashed
}

// Crashed reports whether the crash test hook has tripped: all writes
// after the configured record count were dropped.
func (w *SessionWriter) Crashed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.crashed
}

// StatusRecords returns the number of status records appended so far
// (checkpoint and bookkeeping records excluded).
func (w *SessionWriter) StatusRecords() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.statusFrames
}

// appendFrame writes one framed record; callers hold w.mu. Under chaos,
// failed or torn writes are repaired (the file is truncated back to the
// last durable frame boundary) and retried with backoff until the retry
// budget is spent.
func (w *SessionWriter) appendFrame(typ byte, payload []byte) error {
	if w.closed || w.crashTripped() {
		return nil
	}
	if w.f == nil {
		return fmt.Errorf("journal: session %d: no open segment", w.meta.ID)
	}
	buf := w.scratch[:0]
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint64(buf, frameFingerprint(typ, payload))
	w.scratch = buf
	rc := w.cfg.Retry.WithDefaults()
	frameOwned := false
	for attempt := 1; ; attempt++ {
		n, err := w.writeFrame(buf)
		if err == nil {
			w.size += int64(len(buf))
			w.records++
			if w.met != nil {
				w.met.appends.Inc()
			}
			return nil
		}
		if w.met != nil {
			w.met.retries.Inc()
		}
		// A partial write — injected torn frame or a real short write —
		// leaves garbage past the last frame boundary; cut it off so the
		// retry (and any post-crash read) starts clean.
		if n > 0 {
			if rerr := w.repairTail(); rerr != nil {
				return fmt.Errorf("journal: session %d: tail repair after %v: %w",
					w.meta.ID, err, rerr)
			}
		}
		if attempt >= rc.MaxAttempts {
			return fmt.Errorf("journal: session %d: write after %d attempts: %w (%w)",
				w.meta.ID, attempt, failure.ErrRetriesExhausted, err)
		}
		// The backoff must not hold w.mu: under a virtual clock the sleep
		// parks this goroutine in the discrete-event schedule, and any
		// other writer blocking on w.mu while holding the run token would
		// wedge the whole schedule. Frames are self-contained, so another
		// writer appending (or rotating) inside the window is harmless —
		// but it reuses w.scratch, so take a private copy of the frame
		// first (retries are chaos-only; the happy path stays
		// allocation-free).
		if !frameOwned {
			buf = append([]byte(nil), buf...)
			frameOwned = true
		}
		w.mu.Unlock()
		w.cfg.Chaos.Sleep(rc.Delay(attempt))
		w.mu.Lock()
	}
}

// writeFrame performs the raw segment write for one frame, consulting
// the chaos schedule first: an injected error skips the write entirely,
// an injected torn write persists only half the frame before failing.
// Callers hold w.mu.
func (w *SessionWriter) writeFrame(buf []byte) (int, error) {
	if f := w.cfg.Chaos.Draw(failure.BoundaryJournalWrite); f.Kind != failure.FaultNone {
		switch f.Kind {
		case failure.FaultError:
			return 0, f.Err
		case failure.FaultTorn:
			n, _ := w.f.Write(buf[:len(buf)/2])
			return n, f.Err
		}
	}
	return w.f.Write(buf)
}

// repairTail truncates the segment back to the last durable frame
// boundary (w.size) after a partial write, repositioning the file
// offset to match; callers hold w.mu. The segment is opened without
// O_APPEND precisely so this seek is honoured.
func (w *SessionWriter) repairTail() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	_, err := w.f.Seek(w.size, io.SeekStart)
	return err
}

// frameFingerprint hashes a record's type and payload for the frame
// trailer: FNV-1a over the type byte then the payload, accumulated
// inline so the per-record framing path allocates nothing.
func frameFingerprint(typ byte, payload []byte) uint64 {
	const offset, prime = uint64(14695981039346656037), uint64(1099511628211)
	h := (offset ^ uint64(typ)) * prime
	for _, b := range payload {
		h = (h ^ uint64(b)) * prime
	}
	return h
}

// AppendStatus journals one space-topic status payload — the write-ahead
// half of the session's write-through space. The atoms must be frozen
// (they are broker payloads, frozen by the publish contract). The hot
// path reuses the writer's encoding and framing buffers: appending a
// record allocates nothing.
func (w *SessionWriter) AppendStatus(atoms []hocl.Atom) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc = hocl.AppendAtoms(w.enc[:0], atoms)
	if err := w.appendFrame(recStatus, w.enc); err != nil {
		return err
	}
	w.sinceSnap++
	w.statusFrames++
	return nil
}

// AppendInbox journals one direct-topic message — the write-ahead copy
// of an agent inbox delivery. Like AppendStatus it reuses the writer's
// buffers; the atoms must be frozen broker payloads.
func (w *SessionWriter) AppendInbox(topic string, atoms []hocl.Atom) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.enc = appendInboxPayload(w.enc[:0], topic, atoms)
	return w.appendFrame(recInbox, w.enc)
}

// SetInboxSource installs the callback rotation uses to rewrite the
// session's full inbox history into each new segment head. Pass nil to
// stop carrying inbox records forward.
func (w *SessionWriter) SetInboxSource(fn func() []InboxRecord) {
	w.mu.Lock()
	w.inboxSource = fn
	w.mu.Unlock()
}

// appendInboxPayload encodes one inbox record: uvarint topic length,
// topic bytes, then the encoded atom list.
func appendInboxPayload(dst []byte, topic string, atoms []hocl.Atom) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(topic)))
	dst = append(dst, topic...)
	return hocl.AppendAtoms(dst, atoms)
}

// decodeInboxPayload is the inverse of appendInboxPayload.
func decodeInboxPayload(payload []byte) (InboxRecord, error) {
	n, used := binary.Uvarint(payload)
	if used <= 0 || uint64(len(payload)-used) < n {
		return InboxRecord{}, fmt.Errorf("journal: inbox record: bad topic length")
	}
	topic := string(payload[used : used+int(n)])
	atoms, err := hocl.DecodeAtoms(payload[used+int(n):])
	if err != nil {
		return InboxRecord{}, fmt.Errorf("journal: inbox record: %w", err)
	}
	return InboxRecord{Topic: topic, Atoms: atoms}, nil
}

// ShouldCheckpoint reports whether enough status records have
// accumulated since the last snapshot to warrant a checkpoint.
func (w *SessionWriter) ShouldCheckpoint() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sinceSnap >= w.cfg.SnapshotEvery
}

// Checkpoint writes a fresh space snapshot, rotating to a new segment
// first when the current one has outgrown its size budget. snapshot is
// the full molecule list of the session's space (task tuples plus
// markers) at a point consistent with the status records appended so
// far.
func (w *SessionWriter) Checkpoint(snapshot []hocl.Atom) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.crashTripped() {
		return nil
	}
	if w.size >= w.cfg.MaxSegmentBytes {
		return w.rotateLocked(snapshot)
	}
	w.enc = hocl.AppendAtoms(w.enc[:0], snapshot)
	if err := w.appendFrame(recSnapshot, w.enc); err != nil {
		return err
	}
	w.sinceSnap = 0
	return w.maybeSync()
}

// rotate opens the next segment, seeds it with the workflow record and
// a snapshot, then prunes superseded segments.
func (w *SessionWriter) rotate(snapshot []hocl.Atom) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.rotateLocked(snapshot)
}

func (w *SessionWriter) rotateLocked(snapshot []hocl.Atom) error {
	if w.crashTripped() {
		return nil
	}
	metaJSON, err := json.Marshal(w.meta)
	if err != nil {
		return fmt.Errorf("journal: session %d: %w", w.meta.ID, err)
	}
	next := w.segIndex + 1
	path := filepath.Join(w.dir, segmentName(next))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("journal: session %d: %w", w.meta.ID, err)
	}
	old := w.f
	oldIndex := w.segIndex
	if old != nil && w.met != nil {
		w.met.rotations.Inc()
	}
	w.f, w.segIndex, w.size, w.sinceSnap = f, next, 0, 0
	if err := w.appendFrame(recWorkflow, metaJSON); err != nil {
		return err
	}
	if err := w.appendFrame(recSnapshot, hocl.EncodeAtoms(snapshot)); err != nil {
		return err
	}
	// Older segments are about to be pruned: rewrite the full inbox
	// history into the new head so direct-message replay stays complete.
	if w.inboxSource != nil {
		for _, rec := range w.inboxSource() {
			w.enc = appendInboxPayload(w.enc[:0], rec.Topic, rec.Atoms)
			if err := w.appendFrame(recInbox, w.enc); err != nil {
				return err
			}
		}
	}
	if err := w.maybeSync(); err != nil {
		return err
	}
	// The new segment head is durable: the old segments are superseded.
	if old != nil {
		old.Close()
	}
	if oldIndex > 0 {
		segs, err := listSegments(w.dir)
		if err == nil {
			for _, s := range segs {
				if s.index < next {
					os.Remove(s.path)
				}
			}
		}
	}
	return nil
}

func (w *SessionWriter) maybeSync() error {
	if f := w.cfg.Chaos.Draw(failure.BoundaryJournalSync); f.Kind == failure.FaultSlow {
		// Sleep outside w.mu — holding a real mutex across a virtual-clock
		// sleep can wedge the discrete-event schedule (see appendFrame).
		w.mu.Unlock()
		w.cfg.Chaos.Sleep(f.Delay)
		w.mu.Lock()
	}
	if !w.cfg.Sync || w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("journal: session %d: %w", w.meta.ID, err)
	}
	if w.met != nil {
		w.met.fsyncs.Inc()
	}
	return nil
}

// Finish marks the session complete (the done record) and closes the
// writer. A finished session is skipped by recovery; the caller may
// additionally Journal.RemoveSession to reclaim the directory.
func (w *SessionWriter) Finish() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	err := w.appendFrame(recDone, nil)
	if err2 := w.maybeSync(); err == nil {
		err = err2
	}
	w.closed = true
	if w.f != nil {
		if err2 := w.f.Close(); err == nil && !w.crashed {
			err = err2
		}
		w.f = nil
	}
	return err
}

// Close closes the writer without marking the session done (used when a
// manager shuts down while leaving sessions resumable).
func (w *SessionWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	if w.f != nil {
		err := w.f.Close()
		w.f = nil
		return err
	}
	return nil
}
