package journal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ginflow/internal/hocl"
)

func testMeta(id int64) SessionMeta {
	return SessionMeta{
		ID:        id,
		Workflow:  json.RawMessage(`{"name":"t","tasks":[{"id":"T1","service":"s"}]}`),
		TimeoutNS: 1e9,
	}
}

func statusPayload(task string, n int) []hocl.Atom {
	sub := hocl.NewSolution(hocl.Tuple{hocl.Ident("RES"), hocl.NewSolution(hocl.Int(int64(n)))})
	sub.SetInert(true)
	return []hocl.Atom{hocl.Tuple{hocl.Ident(task), sub}}
}

func mustOpen(t *testing.T, cfg Config) *Journal {
	t.Helper()
	j, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	j := mustOpen(t, Config{Dir: t.TempDir()})
	w, err := j.CreateSession(testMeta(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := j.ReadSession(3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Fatal("unfinished session read back done")
	}
	if st.Meta.ID != 3 || string(st.Meta.Workflow) == "" {
		t.Fatalf("meta did not round-trip: %+v", st.Meta)
	}
	// Payloads: the (empty) head snapshot plus the 5 status records.
	if len(st.Payloads) != 6 || st.StatusRecords != 5 {
		t.Fatalf("got %d payloads / %d status records, want 6 / 5", len(st.Payloads), st.StatusRecords)
	}
	if len(st.Payloads[0]) != 0 {
		t.Fatalf("head snapshot not empty: %v", st.Payloads[0])
	}
	for i := 1; i < 6; i++ {
		if !st.Payloads[i][0].Equal(statusPayload("T1", i-1)[0]) {
			t.Fatalf("payload %d did not round-trip", i)
		}
	}
	if st.TornBytes != 0 {
		t.Fatalf("clean file reports %d torn bytes", st.TornBytes)
	}
}

func TestJournalCheckpointCutsReplay(t *testing.T) {
	j := mustOpen(t, Config{Dir: t.TempDir()})
	w, err := j.CreateSession(testMeta(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	snap := statusPayload("T1", 9) // stands in for the space snapshot
	if err := w.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 13; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	st, err := j.ReadSession(1)
	if err != nil {
		t.Fatal(err)
	}
	// Replay = checkpoint snapshot + the 3 records after it; the 10
	// before the checkpoint are superseded.
	if len(st.Payloads) != 4 || st.StatusRecords != 3 {
		t.Fatalf("got %d payloads / %d status, want 4 / 3", len(st.Payloads), st.StatusRecords)
	}
	if !st.Payloads[0][0].Equal(snap[0]) {
		t.Fatal("replay does not start at the checkpoint snapshot")
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir})
	w, err := j.CreateSession(testMeta(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	seg := filepath.Join(dir, "wf-2", segmentName(1))
	intact, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate mid-record crash points: cut the last record at each byte
	// boundary and confirm replay yields exactly the first 3 records
	// (never an error, never a panic).
	for cut := len(intact) - 1; cut > len(intact)-20; cut-- {
		if err := os.WriteFile(seg, intact[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := j.ReadSession(2)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if st.StatusRecords != 3 {
			t.Fatalf("cut %d: replayed %d status records, want 3", cut, st.StatusRecords)
		}
		if st.TornBytes == 0 {
			t.Fatalf("cut %d: torn tail not reported", cut)
		}
	}

	// Trailing garbage after an intact file (a torn frame header) is
	// ignored; all 4 records survive.
	garbage := append(append([]byte(nil), intact...), 0xAA, 0xBB)
	if err := os.WriteFile(seg, garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	st0, err := j.ReadSession(2)
	if err != nil {
		t.Fatal(err)
	}
	if st0.StatusRecords != 4 || st0.TornBytes != 2 {
		t.Fatalf("garbage tail: %d records / %d torn bytes, want 4 / 2", st0.StatusRecords, st0.TornBytes)
	}

	// A bit-flip inside the last record's payload fails its fingerprint:
	// the record is dropped, earlier ones survive.
	flipped := append([]byte(nil), intact...)
	flipped[len(flipped)-12] ^= 0x40
	if err := os.WriteFile(seg, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := j.ReadSession(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.StatusRecords != 3 {
		t.Fatalf("bit flip: replayed %d status records, want 3", st.StatusRecords)
	}
}

func TestJournalRotationPrunesSegments(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir, MaxSegmentBytes: 256, SnapshotEvery: 4})
	w, err := j.CreateSession(testMeta(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
		if w.ShouldCheckpoint() {
			if err := w.Checkpoint(statusPayload("T1", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	segs, err := listSegments(filepath.Join(dir, "wf-7"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("rotation left %d segments, want 1 (pruned)", len(segs))
	}
	if segs[0].index < 2 {
		t.Fatalf("segment never rotated (index %d)", segs[0].index)
	}
	st, err := j.ReadSession(7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Meta.ID != 7 {
		t.Fatalf("meta lost across rotation: %+v", st.Meta)
	}
}

func TestJournalDoneAndRemove(t *testing.T) {
	j := mustOpen(t, Config{Dir: t.TempDir()})
	w, err := j.CreateSession(testMeta(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendStatus(statusPayload("T1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := j.ReadSession(4)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done {
		t.Fatal("finished session not marked done")
	}
	ids, err := j.SessionIDs()
	if err != nil || len(ids) != 1 || ids[0] != 4 {
		t.Fatalf("SessionIDs = %v, %v", ids, err)
	}
	if err := j.RemoveSession(4); err != nil {
		t.Fatal(err)
	}
	ids, _ = j.SessionIDs()
	if len(ids) != 0 {
		t.Fatalf("session survived removal: %v", ids)
	}
}

func TestJournalCrashHookDropsWrites(t *testing.T) {
	j := mustOpen(t, Config{Dir: t.TempDir(), CrashAfterRecords: 5})
	w, err := j.CreateSession(testMeta(9))
	if err != nil {
		t.Fatal(err)
	}
	// Segment head consumed 2 records (workflow + snapshot); 3 status
	// records fit before the hook trips.
	for i := 0; i < 10; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Crashed() {
		t.Fatal("crash hook never tripped")
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := j.ReadSession(9)
	if err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Fatal("done record survived the simulated crash")
	}
	if st.StatusRecords != 3 {
		t.Fatalf("replayed %d status records, want 3", st.StatusRecords)
	}
}

// TestJournalTornRotationHeadFallsBack covers the rotation window: a
// kill between the new segment's workflow record and its head snapshot
// must fall back to the intact predecessor (which rotation prunes only
// after the new head is complete), not restart from scratch.
func TestJournalTornRotationHeadFallsBack(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir})
	w, err := j.CreateSession(testMeta(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Hand-write segment 2 holding only the workflow record — the state
	// a kill leaves when it lands between the two head writes.
	metaJSON, _ := json.Marshal(testMeta(6))
	var frame []byte
	frame = append(frame, 0, 0, 0, 0)
	frame[0] = byte(len(metaJSON))
	frame = append(frame, recWorkflow)
	frame = append(frame, metaJSON...)
	var sum [8]byte
	fp := frameFingerprint(recWorkflow, metaJSON)
	for i := 0; i < 8; i++ {
		sum[i] = byte(fp >> (8 * i))
	}
	frame = append(frame, sum[:]...)
	if err := os.WriteFile(filepath.Join(dir, "wf-6", segmentName(2)), frame, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := j.ReadSession(6)
	if err != nil {
		t.Fatal(err)
	}
	if st.StatusRecords != 4 {
		t.Fatalf("fell back to %d status records, want the predecessor's 4", st.StatusRecords)
	}

	// With the predecessor gone (post-prune kill before any snapshot),
	// the torn head is the last resort: restart from scratch.
	if err := os.Remove(filepath.Join(dir, "wf-6", segmentName(1))); err != nil {
		t.Fatal(err)
	}
	st, err = j.ReadSession(6)
	if err != nil {
		t.Fatal(err)
	}
	if st.StatusRecords != 0 || len(st.Payloads) != 0 {
		t.Fatalf("last-resort recovery not from scratch: %d records", st.StatusRecords)
	}
}

func TestJournalResumeRotatesAndPrunes(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir})
	w, err := j.CreateSession(testMeta(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	snap := statusPayload("T1", 2)
	w2, err := j.ResumeSession(testMeta(5), snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendStatus(statusPayload("T1", 3)); err != nil {
		t.Fatal(err)
	}
	st, err := j.ReadSession(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Payloads) != 2 || st.StatusRecords != 1 {
		t.Fatalf("resume replay: %d payloads / %d status, want 2 / 1", len(st.Payloads), st.StatusRecords)
	}
	if !st.Payloads[0][0].Equal(snap[0]) {
		t.Fatal("resume replay does not start at the recovered snapshot")
	}
	segs, _ := listSegments(filepath.Join(dir, "wf-5"))
	if len(segs) != 1 || segs[0].index != 2 {
		t.Fatalf("resume left segments %v, want only seg 2", segs)
	}
}
