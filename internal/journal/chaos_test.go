package journal

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"ginflow/internal/failure"
)

// journalChaos builds a schedule injecting journal write faults with the
// given probabilities. MaxConsecutive keeps the default forcing (3), so
// every write eventually lands inside the default 5-attempt budget.
func journalChaos(seed int64, errP, tornP float64) *failure.Schedule {
	return failure.NewSchedule(failure.ChaosConfig{
		Seed:          seed,
		JournalErrorP: errP,
		JournalTornP:  tornP,
	})
}

// TestJournalWriteFaultsRetryAndRepair: under heavy injected write
// faults — transient errors and torn half-writes — every record must
// still land intact: torn tails are truncated away before the retry, so
// the read side sees a clean, complete stream.
func TestJournalWriteFaultsRetryAndRepair(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ch := journalChaos(seed, 0.4, 0.4)
		j := mustOpen(t, Config{Dir: t.TempDir(), Chaos: ch})
		w, err := j.CreateSession(testMeta(9))
		if err != nil {
			t.Fatal(err)
		}
		const n = 40
		for i := 0; i < n; i++ {
			if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
				t.Fatalf("seed %d: append %d: %v", seed, i, err)
			}
		}
		st, err := j.ReadSession(9)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if st.TornBytes != 0 {
			t.Fatalf("seed %d: %d torn bytes survived the repairs", seed, st.TornBytes)
		}
		if st.StatusRecords != n {
			t.Fatalf("seed %d: %d status records, want %d", seed, st.StatusRecords, n)
		}
		for i := 1; i <= n; i++ {
			if !st.Payloads[i][0].Equal(statusPayload("T1", i-1)[0]) {
				t.Fatalf("seed %d: payload %d corrupted", seed, i)
			}
		}
		if ch.Faults() == 0 {
			t.Fatalf("seed %d: no faults injected — the test exercised nothing", seed)
		}
	}
}

// TestJournalWriteRetriesExhausted: with consecutive-fault forcing
// disabled and a certain fault, the writer must give up with a cause
// chain matching failure.ErrRetriesExhausted instead of looping.
func TestJournalWriteRetriesExhausted(t *testing.T) {
	ch := failure.NewSchedule(failure.ChaosConfig{
		Seed:           7,
		JournalErrorP:  1,
		MaxConsecutive: -1,
	})
	j := mustOpen(t, Config{Dir: t.TempDir(), Chaos: ch, Retry: failure.RetryConfig{MaxAttempts: 3, BackoffBase: 0.001}})
	w, err := j.CreateSession(testMeta(10))
	if err == nil {
		w.Close()
		t.Fatal("CreateSession succeeded under a certain write fault")
	}
	if !errors.Is(err, failure.ErrRetriesExhausted) {
		t.Fatalf("error chain misses ErrRetriesExhausted: %v", err)
	}
	if !errors.Is(err, failure.ErrInjected) {
		t.Fatalf("error chain misses the injected cause: %v", err)
	}
}

// writeHeadOnlySegment hand-writes a segment holding only the workflow
// record — the on-disk state a kill leaves when it lands between the two
// head writes of a rotation.
func writeHeadOnlySegment(t *testing.T, dir string, id int64, segIdx int) {
	t.Helper()
	metaJSON, err := json.Marshal(testMeta(id))
	if err != nil {
		t.Fatal(err)
	}
	var frame []byte
	frame = append(frame, byte(len(metaJSON)), 0, 0, 0)
	frame = append(frame, recWorkflow)
	frame = append(frame, metaJSON...)
	fp := frameFingerprint(recWorkflow, metaJSON)
	for i := 0; i < 8; i++ {
		frame = append(frame, byte(fp>>(8*i)))
	}
	if err := os.WriteFile(filepath.Join(dir, segmentName(segIdx)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalDoubleTornRotation: the worst crash pattern — the rotation
// head is torn AND the predecessor segment's head is torn too (a second
// kill during the predecessor's own rotation window). No intact segment
// exists, so recovery must cleanly reach the restart-from-scratch last
// resort: the durable workflow record with an empty replay stream, not
// an error and not stale state.
func TestJournalDoubleTornRotation(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir})
	w, err := j.CreateSession(testMeta(11))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInbox("wf11.sa.T1", statusPayload("T1", 0)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.AppendStatus(statusPayload("T1", i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	sessionDir := filepath.Join(dir, "wf-11")
	// Both the newest segment and its predecessor are caught in the
	// rotation window: workflow record durable, head snapshot torn.
	writeHeadOnlySegment(t, sessionDir, 11, 1)
	writeHeadOnlySegment(t, sessionDir, 11, 2)

	st, err := j.ReadSession(11)
	if err != nil {
		t.Fatalf("double-torn session did not reach the last resort: %v", err)
	}
	if st.Meta.ID != 11 {
		t.Fatalf("last resort lost the workflow record: %+v", st.Meta)
	}
	if len(st.Payloads) != 0 || st.StatusRecords != 0 || len(st.Inbox) != 0 {
		t.Fatalf("last resort is not from scratch: %d payloads, %d status, %d inbox",
			len(st.Payloads), st.StatusRecords, len(st.Inbox))
	}
	if st.Done {
		t.Fatal("last resort marked done")
	}
}

// TestJournalInboxRoundTrip: inbox records survive checkpoints (unlike
// status records they are never cut at a snapshot) and rotation rewrites
// the full history into the new segment head.
func TestJournalInboxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir, MaxSegmentBytes: 1})
	w, err := j.CreateSession(testMeta(12))
	if err != nil {
		t.Fatal(err)
	}
	history := []InboxRecord{
		{Topic: "wf12.sa.T2", Atoms: statusPayload("T1", 1)},
		{Topic: "wf12.sa.T3", Atoms: statusPayload("T1", 2)},
		{Topic: "wf12.sa.T2", Atoms: statusPayload("T1", 3)},
	}
	w.SetInboxSource(func() []InboxRecord { return history })
	for _, rec := range history {
		if err := w.AppendInbox(rec.Topic, rec.Atoms); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.AppendStatus(statusPayload("T1", 0)); err != nil {
		t.Fatal(err)
	}
	// MaxSegmentBytes=1 forces this checkpoint to rotate: the new head
	// must carry the rewritten inbox history.
	if err := w.Checkpoint(statusPayload("T1", 0)); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(filepath.Join(dir, "wf-12"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].index != 2 {
		t.Fatalf("rotation left segments %v, want only seg 2", segs)
	}

	st, err := j.ReadSession(12)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Inbox) != len(history) {
		t.Fatalf("read %d inbox records, want %d", len(st.Inbox), len(history))
	}
	for i, rec := range st.Inbox {
		if rec.Topic != history[i].Topic {
			t.Fatalf("inbox %d topic = %q, want %q", i, rec.Topic, history[i].Topic)
		}
		if len(rec.Atoms) != 1 || !rec.Atoms[0].Equal(history[i].Atoms[0]) {
			t.Fatalf("inbox %d atoms did not round-trip: %v", i, rec.Atoms)
		}
	}

	// A later checkpoint that does NOT rotate must not erase the inbox
	// stream either: snapshots cut status replay, never inbox history.
	j2 := mustOpen(t, Config{Dir: t.TempDir()})
	w2, err := j2.CreateSession(testMeta(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.AppendInbox("wf13.sa.T2", statusPayload("T1", 7)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Checkpoint(statusPayload("T1", 7)); err != nil {
		t.Fatal(err)
	}
	st2, err := j2.ReadSession(13)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Inbox) != 1 {
		t.Fatalf("snapshot erased the inbox stream: %d records", len(st2.Inbox))
	}
}

// TestJournalResumeCarriesInboxForward: ResumeSession re-journals the
// recovered inbox history into the fresh segment head, so a crash after
// resume still finds it.
func TestJournalResumeCarriesInboxForward(t *testing.T) {
	dir := t.TempDir()
	j := mustOpen(t, Config{Dir: dir})
	w, err := j.CreateSession(testMeta(14))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendInbox("wf14.sa.T2", statusPayload("T1", 5)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	st, err := j.ReadSession(14)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := j.ResumeSession(testMeta(14), nil, st.Inbox)
	if err != nil {
		t.Fatal(err)
	}
	w2.Close()

	st2, err := j.ReadSession(14)
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Inbox) != 1 || st2.Inbox[0].Topic != "wf14.sa.T2" {
		t.Fatalf("resumed segment lost the inbox history: %+v", st2.Inbox)
	}
}
