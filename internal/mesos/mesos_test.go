package mesos

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ginflow/internal/cluster"
)

func testCluster(nodes, cores int) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: cores,
		Scale: 10 * time.Microsecond,
	})
}

func taskIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("T%d", i)
	}
	return ids
}

func TestOnePerNodePlacesEverything(t *testing.T) {
	c := testCluster(5, 4)
	m := NewMaster(c, Config{})
	f := NewOnePerNodeFramework(taskIDs(17))
	launches, err := m.RunFramework(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(launches) != 17 {
		t.Fatalf("launched %d, want 17", len(launches))
	}
	if !f.Done() || f.Pending() != 0 {
		t.Error("framework not done")
	}
	// One SA per machine per round: 17 tasks over 5 nodes need 4 rounds.
	if m.Rounds() != 4 {
		t.Errorf("rounds = %d, want 4", m.Rounds())
	}
	if m.Launched() != 17 {
		t.Errorf("Launched = %d", m.Launched())
	}
	// Slots were allocated.
	used := 0
	for _, n := range c.Nodes() {
		used += n.InUse()
	}
	if used != 17 {
		t.Errorf("allocated slots = %d", used)
	}
}

// TestRoundsDecreaseWithNodes is the mechanism behind Fig. 14's linearly
// decreasing Mesos deployment time.
func TestRoundsDecreaseWithNodes(t *testing.T) {
	rounds := map[int]int{}
	for _, nodes := range []int{5, 10, 15} {
		m := NewMaster(testCluster(nodes, 24), Config{})
		f := NewOnePerNodeFramework(taskIDs(102)) // 10x10 diamond + split/merge
		if _, err := m.RunFramework(context.Background(), f); err != nil {
			t.Fatal(err)
		}
		rounds[nodes] = m.Rounds()
	}
	if !(rounds[5] > rounds[10] && rounds[10] > rounds[15]) {
		t.Errorf("rounds must decrease with node count: %v", rounds)
	}
	if rounds[5] != 21 || rounds[10] != 11 || rounds[15] != 7 {
		t.Errorf("rounds = %v, want ceil(102/nodes)", rounds)
	}
}

func TestOfferSkipsFullNodes(t *testing.T) {
	c := testCluster(2, 1) // 2 slots per node
	// Fill node 0 completely.
	c.Node(0).Allocate()
	c.Node(0).Allocate()
	m := NewMaster(c, Config{})
	f := NewOnePerNodeFramework(taskIDs(2))
	launches, err := m.RunFramework(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range launches {
		if l.Node.ID == 0 {
			t.Errorf("launched on full node: %+v", l)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	c := testCluster(1, 1)
	// Saturate the only node so no launch can ever occur.
	c.Node(0).Allocate()
	c.Node(0).Allocate()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	m := NewMaster(c, Config{})
	_, err := m.RunFramework(ctx, NewOnePerNodeFramework(taskIDs(1)))
	if err == nil {
		t.Fatal("want cancellation error")
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	c := testCluster(1, 1)
	c.Node(0).Allocate()
	c.Node(0).Allocate()
	m := NewMaster(c, Config{MaxRounds: 3})
	_, err := m.RunFramework(context.Background(), NewOnePerNodeFramework(taskIDs(1)))
	if err == nil {
		t.Fatal("want round-limit error")
	}
}

func TestDeploymentTimeScalesWithRounds(t *testing.T) {
	// At 1 ms per model second the loop's real compute overhead stays
	// small relative to the modelled sleeps.
	c := cluster.New(cluster.Config{Nodes: 2, CoresPerNode: 24, Scale: time.Millisecond})
	m := NewMaster(c, Config{OfferInterval: 1, RegistrationDelay: 1})
	start := c.Clock().Now()
	if _, err := m.RunFramework(context.Background(), NewOnePerNodeFramework(taskIDs(10))); err != nil {
		t.Fatal(err)
	}
	elapsed := c.Clock().Now() - start
	// 1 (registration) + 5 rounds × 1 = 6 model seconds, plus bounded
	// real-compute overhead.
	if elapsed < 5.5 || elapsed > 30 {
		t.Errorf("deployment took %.2f model seconds, want ≈6", elapsed)
	}
}
