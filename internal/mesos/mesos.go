// Package mesos simulates the resource-offer scheduling cycle of Apache
// Mesos (Hindman et al., NSDI 2011), which GinFlow's Mesos-based executor
// delegates agent deployment to (paper §IV-C).
//
// The master periodically offers the platform's free resources to the
// registered framework; the framework accepts slices of the offers and
// the master launches tasks on the corresponding nodes. GinFlow's
// framework launches one service agent per machine per offer round
// (§V-C), which is what produces the linearly-decreasing deployment time
// of Fig. 14: more machines per round means fewer rounds.
package mesos

import (
	"context"
	"fmt"

	"ginflow/internal/cluster"
)

// Offer advertises free capacity on one node for one round.
type Offer struct {
	Node      *cluster.Node
	FreeSlots int
}

// Launch is a framework's acceptance of (part of) an offer: start the
// task identified by TaskID on Node.
type Launch struct {
	Node   *cluster.Node
	TaskID string
}

// Framework is the scheduler-side callback contract (the subset of the
// Mesos framework API GinFlow needs). OnOffers inspects a round of
// offers and returns the launches to perform; Done reports whether the
// framework has nothing left to place.
type Framework interface {
	OnOffers(offers []Offer) []Launch
	Done() bool
}

// Config tunes the master.
type Config struct {
	// OfferInterval is the model-time between offer rounds (default 2.0,
	// matching the coarse cadence of a real master and sitting above the
	// host timer granularity at the default clock scale).
	OfferInterval float64
	// RegistrationDelay is the model-time cost of framework registration
	// (default 2.0).
	RegistrationDelay float64
	// MaxRounds bounds the offer loop (default 10000).
	MaxRounds int
}

func (c Config) withDefaults() Config {
	if c.OfferInterval <= 0 {
		c.OfferInterval = 2.0
	}
	if c.RegistrationDelay <= 0 {
		c.RegistrationDelay = 2.0
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 10000
	}
	return c
}

// Master drives offer rounds over a cluster.
type Master struct {
	cfg     Config
	cluster *cluster.Cluster

	rounds   int
	launched int
}

// NewMaster builds a master over the given cluster.
func NewMaster(c *cluster.Cluster, cfg Config) *Master {
	return &Master{cfg: cfg.withDefaults(), cluster: c}
}

// Rounds returns the number of offer rounds driven so far.
func (m *Master) Rounds() int { return m.rounds }

// Launched returns the number of tasks launched so far.
func (m *Master) Launched() int { return m.launched }

// RunFramework registers the framework and drives offer rounds until the
// framework is done or the context is cancelled. It returns the launches
// performed, in launch order. Each accepted launch allocates a slot on
// its node; callers release slots when tasks finish.
func (m *Master) RunFramework(ctx context.Context, f Framework) ([]Launch, error) {
	clock := m.cluster.Clock()
	clock.Sleep(m.cfg.RegistrationDelay)

	var all []Launch
	for !f.Done() {
		if err := ctx.Err(); err != nil {
			return all, err
		}
		if m.rounds >= m.cfg.MaxRounds {
			return all, fmt.Errorf("mesos: offer loop exceeded %d rounds", m.cfg.MaxRounds)
		}
		m.rounds++
		clock.Sleep(m.cfg.OfferInterval)

		var offers []Offer
		for _, n := range m.cluster.Nodes() {
			free := n.Slots() - n.InUse()
			if free > 0 {
				offers = append(offers, Offer{Node: n, FreeSlots: free})
			}
		}
		if len(offers) == 0 {
			continue // fully booked this round; resources may free up
		}
		launches := f.OnOffers(offers)
		for _, l := range launches {
			if l.Node == nil {
				return all, fmt.Errorf("mesos: launch of %q names no node", l.TaskID)
			}
			if !l.Node.Allocate() {
				return all, fmt.Errorf("mesos: node %v over-committed launching %q", l.Node, l.TaskID)
			}
			m.launched++
			all = append(all, l)
		}
	}
	return all, nil
}

// OnePerNodeFramework is GinFlow's deployment framework: it launches at
// most one pending task per offered machine per round (§V-C: "GinFlow,
// on top of Mesos, starts one SA per machine for each offer received").
type OnePerNodeFramework struct {
	pending []string
}

// NewOnePerNodeFramework queues the given task IDs for placement.
func NewOnePerNodeFramework(taskIDs []string) *OnePerNodeFramework {
	return &OnePerNodeFramework{pending: append([]string(nil), taskIDs...)}
}

// OnOffers accepts one task per offered node.
func (f *OnePerNodeFramework) OnOffers(offers []Offer) []Launch {
	var launches []Launch
	for _, o := range offers {
		if len(f.pending) == 0 {
			break
		}
		launches = append(launches, Launch{Node: o.Node, TaskID: f.pending[0]})
		f.pending = f.pending[1:]
	}
	return launches
}

// Done reports whether every task has been placed.
func (f *OnePerNodeFramework) Done() bool { return len(f.pending) == 0 }

// Pending returns the not-yet-placed task count.
func (f *OnePerNodeFramework) Pending() int { return len(f.pending) }
