package workflow

import (
	"fmt"

	"ginflow/internal/hoclflow"
)

// Validate checks the structural integrity of the workflow:
//
//   - task IDs are unique, non-empty and valid HOCL symbols;
//   - every edge references an existing task;
//   - the DAG is acyclic and has at least one entry and one exit;
//   - every adaptation satisfies the paper's Fig. 9 validity rules:
//     the faulty sub-workflow has a single destination shared with the
//     replacement sub-workflow, the replacement communicates with no
//     other main task, faulty tasks are not workflow entries (their
//     replacement could never receive the original input), and the
//     faulty sets of distinct adaptations are disjoint (§III-C
//     "Generalisation");
//   - replacement task IDs do not collide with main tasks or with other
//     adaptations, and the replacement sub-graph is itself acyclic.
func (d *Definition) Validate() error {
	if len(d.Tasks) == 0 {
		return fmt.Errorf("workflow: no tasks")
	}
	byID := map[string]bool{}
	for _, t := range d.Tasks {
		if err := validateTaskID(t.ID, byID); err != nil {
			return err
		}
		if t.Service == "" {
			return fmt.Errorf("workflow: task %q has no service", t.ID)
		}
	}
	for _, t := range d.Tasks {
		seen := map[string]bool{}
		for _, dst := range t.Dst {
			if !byID[dst] {
				return fmt.Errorf("workflow: task %q lists unknown destination %q", t.ID, dst)
			}
			if dst == t.ID {
				return fmt.Errorf("workflow: task %q depends on itself", t.ID)
			}
			if seen[dst] {
				return fmt.Errorf("workflow: task %q lists destination %q twice", t.ID, dst)
			}
			seen[dst] = true
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	if len(d.Entries()) == 0 {
		return fmt.Errorf("workflow: no entry task")
	}
	if len(d.Exits()) == 0 {
		return fmt.Errorf("workflow: no exit task")
	}
	return d.validateAdaptations(byID)
}

func validateTaskID(id string, byID map[string]bool) error {
	if id == "" {
		return fmt.Errorf("workflow: empty task id")
	}
	if !hoclflow.ValidTaskName(id) {
		return fmt.Errorf("workflow: task id %q is not a valid HOCL symbol (must match [A-Z][A-Za-z0-9_']*)", id)
	}
	if byID[id] {
		return fmt.Errorf("workflow: duplicate task id %q", id)
	}
	byID[id] = true
	return nil
}

func (d *Definition) validateAdaptations(mainIDs map[string]bool) error {
	entries := map[string]bool{}
	for _, e := range d.Entries() {
		entries[e] = true
	}
	claimed := map[string]string{} // faulty task -> adaptation id
	replIDs := map[string]bool{}
	adaptIDs := map[string]bool{}

	for i := range d.Adaptations {
		a := &d.Adaptations[i]
		if a.ID == "" {
			return fmt.Errorf("workflow: adaptation %d has no id", i)
		}
		if adaptIDs[a.ID] {
			return fmt.Errorf("workflow: duplicate adaptation id %q", a.ID)
		}
		adaptIDs[a.ID] = true
		if len(a.Faulty) == 0 {
			return fmt.Errorf("workflow: adaptation %q has no faulty tasks", a.ID)
		}
		if len(a.Replacement) == 0 {
			return fmt.Errorf("workflow: adaptation %q has no replacement tasks", a.ID)
		}
		for _, f := range a.Faulty {
			if !mainIDs[f] {
				return fmt.Errorf("workflow: adaptation %q names unknown faulty task %q", a.ID, f)
			}
			if entries[f] {
				return fmt.Errorf("workflow: adaptation %q: faulty task %q is a workflow entry; its replacement could never receive the workflow input", a.ID, f)
			}
			if prev, dup := claimed[f]; dup {
				return fmt.Errorf("workflow: adaptations %q and %q overlap on task %q (faulty sets must be disjoint, §III-C)", prev, a.ID, f)
			}
			claimed[f] = a.ID
		}
		for _, r := range a.Replacement {
			if !hoclflow.ValidTaskName(r.ID) {
				return fmt.Errorf("workflow: replacement task id %q is not a valid HOCL symbol", r.ID)
			}
			if mainIDs[r.ID] {
				return fmt.Errorf("workflow: replacement task %q collides with a main task", r.ID)
			}
			if replIDs[r.ID] {
				return fmt.Errorf("workflow: replacement task %q defined twice", r.ID)
			}
			replIDs[r.ID] = true
			if r.Service == "" {
				return fmt.Errorf("workflow: replacement task %q has no service", r.ID)
			}
		}
		if err := validateReplacementAcyclic(a); err != nil {
			return err
		}
		// plan() enforces the Fig. 9 destination rules.
		if _, err := a.plan(d); err != nil {
			return fmt.Errorf("workflow: %w", err)
		}
	}
	return nil
}

// validateReplacementAcyclic topologically sorts the replacement-internal
// edges.
func validateReplacementAcyclic(a *Adaptation) error {
	ids := map[string]bool{}
	for _, r := range a.Replacement {
		ids[r.ID] = true
	}
	_, dstOf := a.wiring()
	indeg := map[string]int{}
	adj := map[string][]string{}
	for _, r := range a.Replacement {
		if _, ok := indeg[r.ID]; !ok {
			indeg[r.ID] = 0
		}
		for _, dst := range dstOf[r.ID] {
			if !ids[dst] {
				continue
			}
			adj[r.ID] = append(adj[r.ID], dst)
			indeg[dst]++
		}
	}
	var ready []string
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	seen := 0
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		seen++
		for _, dst := range adj[id] {
			indeg[dst]--
			if indeg[dst] == 0 {
				ready = append(ready, dst)
			}
		}
	}
	if seen != len(indeg) {
		return fmt.Errorf("workflow: adaptation %q: replacement sub-workflow has a cycle", a.ID)
	}
	return nil
}
