package workflow

import (
	"strings"
	"testing"

	"ginflow/internal/hocl"
)

func TestDOTExport(t *testing.T) {
	d := paperAdaptiveDiamond()
	dot := d.DOT()
	for _, frag := range []string{
		"digraph",
		`"T1" -> "T2"`,
		`"T2" -> "T4"`,
		`cluster_a1`,
		`"T1" -> "T2'" [style=dashed]`,
		`"T2'" -> "T4" [style=dashed]`,
		"s2alt",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestDOTExportUnnamedWorkflow(t *testing.T) {
	d := paperDiamond()
	d.Name = ""
	if !strings.Contains(d.DOT(), `digraph "workflow"`) {
		t.Error("unnamed workflow needs a default graph name")
	}
}

func TestHOCLSourceIsParseable(t *testing.T) {
	d := paperAdaptiveDiamond()
	src, err := d.HOCLSource()
	if err != nil {
		t.Fatal(err)
	}
	// The exported source must parse back into a solution with one
	// sub-solution per task (main + replacement) and the global rules.
	atom, err := hocl.ParseGround(src)
	if err != nil {
		t.Fatalf("exported HOCL does not parse: %v\n%s", err, src)
	}
	sol, ok := atom.(*hocl.Solution)
	if !ok {
		t.Fatalf("exported source is %T", atom)
	}
	tasks := 0
	for _, a := range sol.Atoms() {
		if tp, isTuple := a.(hocl.Tuple); isTuple && len(tp) == 2 {
			if _, isSub := tp[1].(*hocl.Solution); isSub {
				tasks++
			}
		}
	}
	if tasks != 5 { // T1..T4 + T2'
		t.Errorf("exported source has %d task sub-solutions, want 5", tasks)
	}
	for _, frag := range []string{"gw_pass", "gw_setup", "gw_call", "trigger_adapt", "add_dst", "mv_src"} {
		if !strings.Contains(src, frag) {
			t.Errorf("exported source missing rule %q", frag)
		}
	}
}

func TestHOCLSourceInvalidWorkflow(t *testing.T) {
	bad := &Definition{Tasks: []Task{{ID: "x", Service: "s"}}}
	if _, err := bad.HOCLSource(); err == nil {
		t.Error("invalid workflow exported")
	}
}
