package workflow

// AdaptationPlan is the derived wiring of one adaptation, exposed for
// consumers outside the translation path — chiefly crash recovery
// (internal/core), which must reason about which replacement tasks are
// live and how a triggered adaptation rewired the DAG.
type AdaptationPlan struct {
	// ID is the adaptation's identifier (TRIGGER markers carry it).
	ID string
	// Sources are the main tasks outside the faulty sub-workflow that
	// feed the replacement and re-send their results on adaptation.
	Sources []string
	// AddDst maps each source to the replacement tasks it serves.
	AddDst map[string][]string
	// Destination is the unique main task receiving the replaced
	// sub-workflow's output.
	Destination string
	// FaultyFinals are the faulty tasks wired into Destination's SRC
	// before adaptation (mv_src removes them).
	FaultyFinals []string
	// ReplacementFinals are the replacement tasks wired into
	// Destination's SRC by mv_src.
	ReplacementFinals []string
	// ReplacementIDs lists every task of the replacement sub-workflow.
	ReplacementIDs []string
}

// AdaptationPlans computes the wiring of every adaptation in the
// definition. It fails on the same structural errors Validate reports
// for adaptations (Fig. 9 validity).
func (d *Definition) AdaptationPlans() ([]AdaptationPlan, error) {
	var out []AdaptationPlan
	for i := range d.Adaptations {
		a := &d.Adaptations[i]
		p, err := a.plan(d)
		if err != nil {
			return nil, err
		}
		ap := AdaptationPlan{
			ID:                a.ID,
			Sources:           append([]string(nil), p.sources...),
			AddDst:            map[string][]string{},
			Destination:       p.destination,
			FaultyFinals:      append([]string(nil), p.faultyFinals...),
			ReplacementFinals: append([]string(nil), p.replacementFinals...),
		}
		for k, v := range p.addDst {
			ap.AddDst[k] = append([]string(nil), v...)
		}
		for _, r := range a.Replacement {
			ap.ReplacementIDs = append(ap.ReplacementIDs, r.ID)
		}
		out = append(out, ap)
	}
	return out, nil
}
