package workflow

import (
	"strings"
	"testing"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
)

func paperDiamond() *Definition {
	return &Definition{
		Name: "paper-fig3",
		Tasks: []Task{
			{ID: "T1", Service: "s1", In: []string{"input"}, Dst: []string{"T2", "T3"}},
			{ID: "T2", Service: "s2", Dst: []string{"T4"}},
			{ID: "T3", Service: "s3", Dst: []string{"T4"}},
			{ID: "T4", Service: "s4"},
		},
	}
}

func paperAdaptiveDiamond() *Definition {
	d := paperDiamond()
	d.Adaptations = []Adaptation{{
		ID:     "a1",
		Faulty: []string{"T2"},
		Replacement: []ReplacementTask{
			{ID: "T2'", Service: "s2alt", Src: []string{"T1"}, Dst: []string{"T4"}},
		},
	}}
	return d
}

func TestValidateAcceptsPaperWorkflows(t *testing.T) {
	if err := paperDiamond().Validate(); err != nil {
		t.Errorf("plain diamond: %v", err)
	}
	if err := paperAdaptiveDiamond().Validate(); err != nil {
		t.Errorf("adaptive diamond: %v", err)
	}
}

func TestDerivedTopology(t *testing.T) {
	d := paperDiamond()
	if got := d.SrcOf("T4"); len(got) != 2 || got[0] != "T2" || got[1] != "T3" {
		t.Errorf("SrcOf(T4) = %v", got)
	}
	if got := d.SrcOf("T1"); len(got) != 0 {
		t.Errorf("SrcOf(T1) = %v", got)
	}
	if got := d.Entries(); len(got) != 1 || got[0] != "T1" {
		t.Errorf("Entries = %v", got)
	}
	if got := d.Exits(); len(got) != 1 || got[0] != "T4" {
		t.Errorf("Exits = %v", got)
	}
	if got := d.EdgeCount(); got != 4 {
		t.Errorf("EdgeCount = %d", got)
	}
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, task := range d.Tasks {
		for _, dst := range task.Dst {
			if pos[task.ID] >= pos[dst] {
				t.Errorf("topo order violates edge %s -> %s: %v", task.ID, dst, order)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		def  *Definition
		frag string
	}{
		{"empty", &Definition{}, "no tasks"},
		{"badID", &Definition{Tasks: []Task{{ID: "t1", Service: "s"}}}, "valid HOCL symbol"},
		{"dupID", &Definition{Tasks: []Task{{ID: "T1", Service: "s"}, {ID: "T1", Service: "s"}}}, "duplicate"},
		{"noService", &Definition{Tasks: []Task{{ID: "T1"}}}, "no service"},
		{"unknownDst", &Definition{Tasks: []Task{{ID: "T1", Service: "s", Dst: []string{"T9"}}}}, "unknown destination"},
		{"selfLoop", &Definition{Tasks: []Task{{ID: "T1", Service: "s", Dst: []string{"T1"}}}}, "itself"},
		{"dupEdge", &Definition{Tasks: []Task{
			{ID: "T1", Service: "s", Dst: []string{"T2", "T2"}},
			{ID: "T2", Service: "s"},
		}}, "twice"},
		{"cycle", &Definition{Tasks: []Task{
			{ID: "T1", Service: "s", Dst: []string{"T2"}},
			{ID: "T2", Service: "s", Dst: []string{"T1"}},
		}}, "cycle"},
	}
	for _, c := range cases {
		err := c.def.Validate()
		if err == nil {
			t.Errorf("%s: Validate succeeded, want error containing %q", c.name, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestValidateAdaptationRejections(t *testing.T) {
	base := func() *Definition { return paperAdaptiveDiamond() }

	mutate := []struct {
		name string
		mut  func(*Definition)
		frag string
	}{
		{"noID", func(d *Definition) { d.Adaptations[0].ID = "" }, "no id"},
		{"noFaulty", func(d *Definition) { d.Adaptations[0].Faulty = nil }, "no faulty"},
		{"noReplacement", func(d *Definition) { d.Adaptations[0].Replacement = nil }, "no replacement"},
		{"unknownFaulty", func(d *Definition) { d.Adaptations[0].Faulty = []string{"T9"} }, "unknown faulty"},
		{"entryFaulty", func(d *Definition) { d.Adaptations[0].Faulty = []string{"T1"} }, "entry"},
		{"collidingReplacement", func(d *Definition) { d.Adaptations[0].Replacement[0].ID = "T3" }, "collides"},
		{"badReplacementID", func(d *Definition) { d.Adaptations[0].Replacement[0].ID = "x" }, "valid HOCL symbol"},
		{"replacementNoService", func(d *Definition) { d.Adaptations[0].Replacement[0].Service = "" }, "no service"},
		{"fromFaulty", func(d *Definition) { d.Adaptations[0].Replacement[0].Src = []string{"T2"} }, "faulty task"},
		{"unknownSource", func(d *Definition) { d.Adaptations[0].Replacement[0].Src = []string{"T9"} }, "unknown source"},
		{"wrongDest", func(d *Definition) { d.Adaptations[0].Replacement[0].Dst = []string{"T3"} }, "destination"},
		{"neverReaches", func(d *Definition) { d.Adaptations[0].Replacement[0].Dst = nil }, "never reaches"},
		{"dupAdaptID", func(d *Definition) {
			d.Adaptations = append(d.Adaptations, d.Adaptations[0])
		}, "duplicate adaptation id"},
	}
	for _, c := range mutate {
		d := base()
		c.mut(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: Validate succeeded, want error containing %q", c.name, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.frag)
		}
	}
}

func TestOverlappingAdaptationsRejected(t *testing.T) {
	d := paperAdaptiveDiamond()
	d.Adaptations = append(d.Adaptations, Adaptation{
		ID:     "a2",
		Faulty: []string{"T2"}, // overlaps a1
		Replacement: []ReplacementTask{
			{ID: "T2c", Service: "alt", Src: []string{"T1"}, Dst: []string{"T4"}},
		},
	})
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "disjoint") {
		t.Errorf("overlapping adaptations: %v", err)
	}
}

// TestMultipleOutgoingDestinationsRejected encodes paper Fig. 9(c): a
// faulty sub-workflow feeding two distinct destinations cannot be
// adapted.
func TestMultipleOutgoingDestinationsRejected(t *testing.T) {
	d := &Definition{Tasks: []Task{
		{ID: "T1", Service: "s", In: []string{"x"}, Dst: []string{"F"}},
		{ID: "F", Service: "s", Dst: []string{"D1", "D2"}},
		{ID: "D1", Service: "s"},
		{ID: "D2", Service: "s"},
	}}
	d.Adaptations = []Adaptation{{
		ID: "a", Faulty: []string{"F"},
		Replacement: []ReplacementTask{{ID: "R", Service: "s", Src: []string{"T1"}, Dst: []string{"D1"}}},
	}}
	err := d.Validate()
	if err == nil || !strings.Contains(err.Error(), "exactly one destination") {
		t.Errorf("Fig 9(c) case: %v", err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	d := paperAdaptiveDiamond()
	data, err := d.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || len(back.Tasks) != len(d.Tasks) ||
		len(back.Adaptations) != len(d.Adaptations) {
		t.Errorf("round trip mismatch: %+v", back)
	}
}

func TestFromJSONRejects(t *testing.T) {
	cases := []string{
		`{`,                         // syntax
		`{"tasks": []}`,             // empty workflow
		`{"tasks": [{"id": "T1"}]}`, // no service
		`{"tasks": [{"id": "T1", "service": "s", "bogus": 1}]}`, // unknown field
	}
	for _, src := range cases {
		if _, err := FromJSON([]byte(src)); err == nil {
			t.Errorf("FromJSON(%q) succeeded", src)
		}
	}
}

func TestDiamondGenerator(t *testing.T) {
	for _, fully := range []bool{false, true} {
		spec := DefaultDiamondSpec(3, 4, fully)
		d := Diamond(spec)
		if err := d.Validate(); err != nil {
			t.Fatalf("fully=%v: %v", fully, err)
		}
		if got := d.TaskCount(); got != 3*4+2 {
			t.Errorf("fully=%v: %d tasks, want 14", fully, got)
		}
		wantEdges := 3 + 3 + 3*3*(4-1) // split + last row + inner rows fully
		if !fully {
			wantEdges = 3 + 3 + 3*(4-1)
		}
		if got := d.EdgeCount(); got != wantEdges {
			t.Errorf("fully=%v: %d edges, want %d", fully, got, wantEdges)
		}
		if got := d.Entries(); len(got) != 1 || got[0] != DiamondSplitName {
			t.Errorf("entries = %v", got)
		}
		if got := d.Exits(); len(got) != 1 || got[0] != DiamondMergeName {
			t.Errorf("exits = %v", got)
		}
	}
}

func TestDiamond1x1(t *testing.T) {
	d := Diamond(DefaultDiamondSpec(1, 1, false))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.TaskCount() != 3 {
		t.Errorf("1x1 diamond: %d tasks", d.TaskCount())
	}
}

func TestWithBodyReplacementValidates(t *testing.T) {
	for _, replFully := range []bool{false, true} {
		spec := DefaultDiamondSpec(2, 3, false)
		d := WithBodyReplacement(Diamond(spec), spec, replFully, "workalt")
		if err := d.Validate(); err != nil {
			t.Fatalf("replFully=%v: %v", replFully, err)
		}
		if got := len(d.Adaptations[0].Faulty); got != 6 {
			t.Errorf("faulty count = %d", got)
		}
		if got := len(d.Adaptations[0].Replacement); got != 6 {
			t.Errorf("replacement count = %d", got)
		}
	}
}

func TestSequenceGenerator(t *testing.T) {
	d := Sequence(5, "s", "in")
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	order, _ := d.TopoOrder()
	if len(order) != 5 || order[0] != "S1" || order[4] != "S5" {
		t.Errorf("order = %v", order)
	}
}

// runCentral translates and reduces a workflow on a single interpreter,
// returning per-service invocation counts.
func runCentral(t *testing.T, d *Definition, fail map[string]bool) (*hocl.Solution, map[string]int) {
	t.Helper()
	prog, err := d.TranslateCentral()
	if err != nil {
		t.Fatal(err)
	}
	e := hocl.NewEngine()
	calls := map[string]int{}
	e.Funcs.Register(hoclflow.FnInvoke, func(args []hocl.Atom) ([]hocl.Atom, error) {
		name := string(args[0].(hocl.Str))
		calls[name]++
		if fail[name] {
			return []hocl.Atom{hoclflow.AtomERROR}, nil
		}
		return []hocl.Atom{hocl.Str("out-" + name)}, nil
	})
	for name, fn := range prog.Funcs {
		e.Funcs.Register(name, fn)
	}
	if err := e.Reduce(prog.Global); err != nil {
		t.Fatal(err)
	}
	return prog.Global, calls
}

func TestTranslateCentralRunsDiamond(t *testing.T) {
	global, calls := runCentral(t, paperDiamond(), nil)
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		if calls[s] != 1 {
			t.Errorf("%s invoked %d times", s, calls[s])
		}
	}
	sink := hoclflow.FindTaskSub(global, "T4")
	if got := hoclflow.StatusOf(sink); got != hoclflow.StatusCompleted {
		t.Errorf("T4 = %v", got)
	}
}

func TestTranslateCentralAdaptiveRun(t *testing.T) {
	global, calls := runCentral(t, paperAdaptiveDiamond(), map[string]bool{"s2": true})
	if calls["s2alt"] != 1 {
		t.Errorf("replacement invoked %d times", calls["s2alt"])
	}
	sink := hoclflow.FindTaskSub(global, "T4")
	if got := hoclflow.StatusOf(sink); got != hoclflow.StatusCompleted {
		t.Errorf("T4 = %v, solution: %s", got, hocl.Pretty(global))
	}
	if !global.Contains(hoclflow.TriggerMarker("a1")) {
		t.Error("TRIGGER marker missing")
	}
}

// TestTranslateCentralGeneratedDiamonds executes small generated diamonds
// of every flavour end-to-end on the centralized interpreter.
func TestTranslateCentralGeneratedDiamonds(t *testing.T) {
	for _, tc := range []struct {
		h, v  int
		fully bool
	}{
		{1, 1, false}, {2, 2, false}, {2, 2, true}, {3, 2, true},
	} {
		spec := DefaultDiamondSpec(tc.h, tc.v, tc.fully)
		global, calls := runCentral(t, Diamond(spec), nil)
		if calls["work"] != tc.h*tc.v {
			t.Errorf("%dx%d fully=%v: work invoked %d times, want %d",
				tc.h, tc.v, tc.fully, calls["work"], tc.h*tc.v)
		}
		sink := hoclflow.FindTaskSub(global, DiamondMergeName)
		if got := hoclflow.StatusOf(sink); got != hoclflow.StatusCompleted {
			t.Errorf("%dx%d fully=%v: merge = %v", tc.h, tc.v, tc.fully, got)
		}
	}
}

// TestTranslateCentralBodySwap runs the §V-B scenario end-to-end on the
// centralized interpreter: the last mesh service fails, the whole body is
// replaced, the merge still completes.
func TestTranslateCentralBodySwap(t *testing.T) {
	spec := DefaultDiamondSpec(2, 2, false)
	spec.MeshService = "work"
	d := WithBodyReplacement(Diamond(spec), spec, false, "workalt")
	// Only the designated "last" service fails; the generator shares one
	// mesh service name, so distinguish via a dedicated service for the
	// failing task.
	last := LastMeshTask(spec)
	lt, _ := d.TaskByID(last)
	lt.Service = "flaky"

	global, calls := runCentral(t, d, map[string]bool{"flaky": true})
	if calls["flaky"] != 1 {
		t.Errorf("flaky invoked %d times", calls["flaky"])
	}
	if calls["workalt"] != 4 {
		t.Errorf("replacement services invoked %d times, want 4", calls["workalt"])
	}
	sink := hoclflow.FindTaskSub(global, DiamondMergeName)
	if got := hoclflow.StatusOf(sink); got != hoclflow.StatusCompleted {
		t.Fatalf("merge = %v\n%s", got, hocl.Pretty(global))
	}
	if !global.Contains(hoclflow.TriggerMarker("bodyswap")) {
		t.Error("TRIGGER marker missing")
	}
}

func TestTranslateAgentsSpecs(t *testing.T) {
	specs, err := paperAdaptiveDiamond().TranslateAgents()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AgentSpec{}
	for _, s := range specs {
		byName[s.Task.Name] = s
	}
	if len(byName) != 5 { // T1..T4 + T2'
		t.Fatalf("agent specs: %d, want 5", len(byName))
	}
	// The faulty task carries the local trigger.
	t2 := byName["T2"]
	if len(t2.Triggers) != 1 {
		t.Fatalf("T2 triggers: %+v", t2.Triggers)
	}
	trig := t2.Triggers[0]
	if trig.AdaptationID != "a1" {
		t.Errorf("trigger adaptation = %q", trig.AdaptationID)
	}
	wantNotify := map[string]bool{"T1": true, "T4": true}
	if len(trig.Notify) != 2 || !wantNotify[trig.Notify[0]] || !wantNotify[trig.Notify[1]] {
		t.Errorf("notify = %v", trig.Notify)
	}
	// The destination carries the mv_src function.
	t4 := byName["T4"]
	if len(t4.Funcs) != 1 {
		t.Errorf("T4 funcs: %v", t4.Funcs)
	}
	// The replacement agent exists, idle, with T1 as pending source.
	t2p := byName["T2'"]
	if got := hoclflow.PendingSources(t2p.Local); len(got) != 1 || got[0] != "T1" {
		t.Errorf("T2' sources: %v", got)
	}
	// Every local solution carries the four decentralised generic rules.
	for name, s := range byName {
		rules := map[string]bool{}
		for _, r := range s.Local.Rules() {
			rules[r.Name] = true
		}
		for _, want := range []string{"gw_setup", "gw_call", "gw_send", "gw_recv"} {
			if !rules[want] {
				t.Errorf("agent %s missing rule %s", name, want)
			}
		}
	}
}

func TestTranslateRejectsInvalid(t *testing.T) {
	bad := &Definition{Tasks: []Task{{ID: "t1", Service: "s"}}}
	if _, err := bad.TranslateCentral(); err == nil {
		t.Error("TranslateCentral accepted invalid workflow")
	}
	if _, err := bad.TranslateAgents(); err == nil {
		t.Error("TranslateAgents accepted invalid workflow")
	}
}
