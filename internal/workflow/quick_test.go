package workflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
)

// randomDAG builds a random acyclic workflow: tasks T1..Tn with forward
// edges only (i -> j implies i < j), at least one entry input and a
// guaranteed path to an exit.
func randomDAG(r *rand.Rand, n int) *Definition {
	if n < 2 {
		n = 2
	}
	d := &Definition{Name: fmt.Sprintf("random-%d", n)}
	for i := 1; i <= n; i++ {
		t := Task{ID: fmt.Sprintf("T%d", i), Service: "svc"}
		if i == 1 {
			t.In = []string{"input"}
		}
		d.Tasks = append(d.Tasks, t)
	}
	// Forward edges: every non-last task points to at least one later
	// task; extra random edges sprinkle fan-out.
	for i := 0; i < n-1; i++ {
		picked := map[int]bool{}
		edges := 1 + r.Intn(3)
		for e := 0; e < edges; e++ {
			j := i + 1 + r.Intn(n-i-1)
			if !picked[j] {
				picked[j] = true
				d.Tasks[i].Dst = append(d.Tasks[i].Dst, d.Tasks[j].ID)
			}
		}
	}
	// Orphan entries (tasks with no incoming edges beyond T1) are fine:
	// they just run immediately with empty input.
	return d
}

// Property: every random forward-edge DAG validates, translates, and
// runs to full completion on the centralized interpreter, with every
// service invoked exactly once.
func TestQuickRandomDAGsRunToCompletion(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(sizeRaw%12)
		d := randomDAG(r, n)
		if err := d.Validate(); err != nil {
			t.Logf("seed %d: validate: %v", seed, err)
			return false
		}
		prog, err := d.TranslateCentral()
		if err != nil {
			t.Logf("seed %d: translate: %v", seed, err)
			return false
		}
		e := hocl.NewEngine()
		invocations := map[string]int{}
		e.Funcs.Register(hoclflow.FnInvoke, func(args []hocl.Atom) ([]hocl.Atom, error) {
			invocations[args[0].String()]++
			return []hocl.Atom{hocl.Str("ok")}, nil
		})
		if err := e.Reduce(prog.Global); err != nil {
			t.Logf("seed %d: reduce: %v", seed, err)
			return false
		}
		for _, task := range d.Tasks {
			sub := hoclflow.FindTaskSub(prog.Global, task.ID)
			if sub == nil {
				t.Logf("seed %d: task %s missing", seed, task.ID)
				return false
			}
			if got := hoclflow.StatusOf(sub); got != hoclflow.StatusCompleted {
				t.Logf("seed %d: task %s = %v\n%s", seed, task.ID, got, hocl.Pretty(prog.Global))
				return false
			}
		}
		total := 0
		for _, c := range invocations {
			total += c
		}
		if total != n {
			t.Logf("seed %d: %d invocations for %d tasks", seed, total, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the derived SRC sets are exactly the transpose of the
// declared DST sets.
func TestQuickSrcIsTransposeOfDst(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDAG(r, 2+int(sizeRaw%20))
		fwd := map[string]map[string]bool{}
		for _, task := range d.Tasks {
			for _, dst := range task.Dst {
				if fwd[dst] == nil {
					fwd[dst] = map[string]bool{}
				}
				fwd[dst][task.ID] = true
			}
		}
		for _, task := range d.Tasks {
			src := d.SrcOf(task.ID)
			if len(src) != len(fwd[task.ID]) {
				return false
			}
			for _, s := range src {
				if !fwd[task.ID][s] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: topological order exists for every random DAG and respects
// every edge.
func TestQuickTopoOrderRespectsEdges(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDAG(r, 2+int(sizeRaw%20))
		order, err := d.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, id := range order {
			pos[id] = i
		}
		for _, task := range d.Tasks {
			for _, dst := range task.Dst {
				if pos[task.ID] >= pos[dst] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round-trips preserve the workflow structure for random
// DAGs.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := randomDAG(r, 2+int(sizeRaw%15))
		data, err := d.JSON()
		if err != nil {
			return false
		}
		back, err := FromJSON(data)
		if err != nil {
			return false
		}
		if len(back.Tasks) != len(d.Tasks) {
			return false
		}
		for i := range d.Tasks {
			if back.Tasks[i].ID != d.Tasks[i].ID ||
				len(back.Tasks[i].Dst) != len(d.Tasks[i].Dst) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
