// Package workflow defines GinFlow's user-facing workflow model: a DAG of
// tasks bound to services, optional adaptation specifications (alternate
// sub-workflows triggered by run-time failures, paper §III-C), a JSON
// representation (§IV-D), structural validation including the paper's
// Fig. 9 adaptation-validity rules, and the translation to HOCL solutions
// executed by the centralized interpreter or the decentralised agents.
package workflow

import (
	"fmt"
	"sort"
)

// Task is a node of the workflow DAG: an abstract function implemented by
// a named service (paper §III-B). Edges are declared on the producing
// side (Dst), as in the DAG view of Fig. 2; SRC sets are derived.
type Task struct {
	// ID names the task. It must parse as an HOCL symbol: leading
	// capital, then letters/digits/underscore/prime (e.g. T1, T2',
	// MPROJECT_17).
	ID string `json:"id"`
	// Service is the name of the service invoked for this task.
	Service string `json:"service"`
	// In holds initial input values, combined with received results to
	// form the invocation parameter list (paper footnote 4).
	In []string `json:"in,omitempty"`
	// Dst lists downstream task IDs that receive this task's result.
	Dst []string `json:"dst,omitempty"`
}

// ReplacementTask is a node of an adaptation's replacement sub-workflow.
// Unlike main tasks it declares Src explicitly, because its inputs can
// come from main-workflow source tasks that do not know about it until
// adaptation rewires them (ADDDST, paper Fig. 6).
type ReplacementTask struct {
	ID      string   `json:"id"`
	Service string   `json:"service"`
	In      []string `json:"in,omitempty"`
	Src     []string `json:"src,omitempty"`
	Dst     []string `json:"dst,omitempty"`
}

// Adaptation specifies that, should any task of Faulty produce ERROR at
// run time, the sub-workflow Faulty is to be replaced on-the-fly by
// Replacement (paper §III-C). Replacement tasks may take inputs from
// main-workflow tasks (the "sources", which re-send their results) and
// must all funnel into the same single destination as the faulty
// sub-workflow (the Fig. 9 validity requirement).
type Adaptation struct {
	ID          string            `json:"id"`
	Faulty      []string          `json:"faulty"`
	Replacement []ReplacementTask `json:"replacement"`
}

// Definition is a complete workflow: the DAG plus adaptation specs.
type Definition struct {
	Name        string       `json:"name,omitempty"`
	Tasks       []Task       `json:"tasks"`
	Adaptations []Adaptation `json:"adaptations,omitempty"`
}

// TaskByID returns the main task with the given id.
func (d *Definition) TaskByID(id string) (*Task, bool) {
	for i := range d.Tasks {
		if d.Tasks[i].ID == id {
			return &d.Tasks[i], true
		}
	}
	return nil, false
}

// SrcOf returns the derived incoming dependencies of main task id, in
// deterministic (sorted) order.
func (d *Definition) SrcOf(id string) []string {
	var src []string
	for _, t := range d.Tasks {
		for _, dst := range t.Dst {
			if dst == id {
				src = append(src, t.ID)
			}
		}
	}
	sort.Strings(src)
	return src
}

// Entries returns tasks with no incoming dependencies (workflow inputs).
func (d *Definition) Entries() []string {
	hasSrc := map[string]bool{}
	for _, t := range d.Tasks {
		for _, dst := range t.Dst {
			hasSrc[dst] = true
		}
	}
	var out []string
	for _, t := range d.Tasks {
		if !hasSrc[t.ID] {
			out = append(out, t.ID)
		}
	}
	return out
}

// Exits returns tasks with no outgoing dependencies (workflow outputs).
func (d *Definition) Exits() []string {
	var out []string
	for _, t := range d.Tasks {
		if len(t.Dst) == 0 {
			out = append(out, t.ID)
		}
	}
	return out
}

// TaskCount returns the number of main tasks.
func (d *Definition) TaskCount() int { return len(d.Tasks) }

// AllTaskIDs returns main and replacement task IDs (replacement agents
// are deployed alongside main agents, idle until adaptation).
func (d *Definition) AllTaskIDs() []string {
	ids := make([]string, 0, len(d.Tasks))
	for _, t := range d.Tasks {
		ids = append(ids, t.ID)
	}
	for _, a := range d.Adaptations {
		for _, r := range a.Replacement {
			ids = append(ids, r.ID)
		}
	}
	return ids
}

// TopoOrder returns main task IDs in a topological order, or an error if
// the graph has a cycle. The order is deterministic: ties break by ID.
func (d *Definition) TopoOrder() ([]string, error) {
	indeg := map[string]int{}
	adj := map[string][]string{}
	for _, t := range d.Tasks {
		if _, ok := indeg[t.ID]; !ok {
			indeg[t.ID] = 0
		}
		for _, dst := range t.Dst {
			adj[t.ID] = append(adj[t.ID], dst)
			indeg[dst]++
		}
	}
	var ready []string
	for id, n := range indeg {
		if n == 0 {
			ready = append(ready, id)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		order = append(order, id)
		var unlocked []string
		for _, dst := range adj[id] {
			indeg[dst]--
			if indeg[dst] == 0 {
				unlocked = append(unlocked, dst)
			}
		}
		sort.Strings(unlocked)
		ready = append(ready, unlocked...)
		sort.Strings(ready)
	}
	if len(order) != len(indeg) {
		return nil, fmt.Errorf("workflow: dependency cycle detected")
	}
	return order, nil
}

// EdgeCount returns the number of edges in the main DAG.
func (d *Definition) EdgeCount() int {
	n := 0
	for _, t := range d.Tasks {
		n += len(t.Dst)
	}
	return n
}

// adaptationPlan is the derived wiring of one adaptation, computed by
// Validate and consumed by translation.
type adaptationPlan struct {
	spec *Adaptation
	// sources: main tasks outside Faulty that feed the replacement
	// sub-workflow and must re-send their result (ADDDST targets).
	sources []string
	// addDst[source] lists the replacement tasks the source must serve.
	addDst map[string][]string
	// destination: the unique main task receiving the sub-workflow output.
	destination string
	// faultyFinals: faulty tasks with an edge to destination (removed
	// from the destination's SRC by mv_src).
	faultyFinals []string
	// replacementFinals: replacement tasks with an edge to destination
	// (added to the destination's SRC by mv_src).
	replacementFinals []string
}

// plan computes the adaptation wiring. It assumes Validate-level checks
// of task existence have passed; structural errors are still reported.
func (a *Adaptation) plan(d *Definition) (*adaptationPlan, error) {
	faulty := map[string]bool{}
	for _, f := range a.Faulty {
		faulty[f] = true
	}
	repl := map[string]bool{}
	for _, r := range a.Replacement {
		repl[r.ID] = true
	}

	p := &adaptationPlan{spec: a, addDst: map[string][]string{}}
	srcOf, dstOf := a.wiring()

	// Destination: the unique non-faulty main task that faulty tasks
	// point to (Fig. 9(c): multiple outgoing destinations are invalid).
	destSet := map[string]bool{}
	for _, fid := range a.Faulty {
		t, ok := d.TaskByID(fid)
		if !ok {
			return nil, fmt.Errorf("adaptation %q: faulty task %q not found", a.ID, fid)
		}
		for _, dst := range t.Dst {
			if faulty[dst] {
				continue
			}
			destSet[dst] = true
			if !containsStr(p.faultyFinals, fid) {
				p.faultyFinals = append(p.faultyFinals, fid)
			}
		}
	}
	if len(destSet) != 1 {
		return nil, fmt.Errorf("adaptation %q: faulty sub-workflow must have exactly one destination, found %d (paper Fig. 9)", a.ID, len(destSet))
	}
	for dst := range destSet {
		p.destination = dst
	}

	// Replacement wiring: sources re-send, finals feed the destination.
	for _, r := range a.Replacement {
		for _, src := range srcOf[r.ID] {
			if repl[src] {
				continue // internal replacement edge
			}
			if faulty[src] {
				return nil, fmt.Errorf("adaptation %q: replacement task %q cannot take input from faulty task %q", a.ID, r.ID, src)
			}
			if _, ok := d.TaskByID(src); !ok {
				return nil, fmt.Errorf("adaptation %q: replacement task %q references unknown source %q", a.ID, r.ID, src)
			}
			if !containsStr(p.sources, src) {
				p.sources = append(p.sources, src)
			}
			p.addDst[src] = append(p.addDst[src], r.ID)
		}
		for _, dst := range dstOf[r.ID] {
			if repl[dst] {
				continue
			}
			// Fig. 9(d): the replacement must not communicate with any
			// main task other than the single destination.
			if dst != p.destination {
				return nil, fmt.Errorf("adaptation %q: replacement task %q sends to %q, but the only allowed destination is %q (paper Fig. 9)", a.ID, r.ID, dst, p.destination)
			}
			if !containsStr(p.replacementFinals, r.ID) {
				p.replacementFinals = append(p.replacementFinals, r.ID)
			}
		}
	}
	if len(p.replacementFinals) == 0 {
		return nil, fmt.Errorf("adaptation %q: replacement sub-workflow never reaches destination %q", a.ID, p.destination)
	}
	sort.Strings(p.sources)
	sort.Strings(p.faultyFinals)
	sort.Strings(p.replacementFinals)
	return p, nil
}

// wiring normalises the replacement sub-workflow's edges: an internal
// edge may be declared on either endpoint (r1.Dst or r2.Src); external
// references (main-workflow sources in Src, the destination in Dst) stay
// where they were declared. The returned maps give the effective Src and
// Dst sets per replacement task, deduplicated and sorted.
func (a *Adaptation) wiring() (srcOf, dstOf map[string][]string) {
	srcOf = map[string][]string{}
	dstOf = map[string][]string{}
	internal := map[string]bool{}
	for _, r := range a.Replacement {
		internal[r.ID] = true
	}
	addEdge := func(m map[string][]string, key, val string) {
		if !containsStr(m[key], val) {
			m[key] = append(m[key], val)
		}
	}
	for _, r := range a.Replacement {
		for _, s := range r.Src {
			addEdge(srcOf, r.ID, s)
			if internal[s] {
				addEdge(dstOf, s, r.ID)
			}
		}
		for _, dst := range r.Dst {
			addEdge(dstOf, r.ID, dst)
			if internal[dst] {
				addEdge(srcOf, dst, r.ID)
			}
		}
	}
	for _, m := range []map[string][]string{srcOf, dstOf} {
		for k := range m {
			sort.Strings(m[k])
		}
	}
	return srcOf, dstOf
}

func containsStr(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}
