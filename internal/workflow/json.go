package workflow

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// FromJSON decodes and validates a workflow definition from its JSON
// representation (paper §IV-D: "the workflow is given in a JSON format
// which will be translated into an HOCL workflow prior to execution").
// Unknown fields are rejected to catch schema mistakes early.
//
// Example:
//
//	{
//	  "name": "diamond",
//	  "tasks": [
//	    {"id": "T1", "service": "s1", "in": ["input"], "dst": ["T2", "T3"]},
//	    {"id": "T2", "service": "s2", "dst": ["T4"]},
//	    {"id": "T3", "service": "s3", "dst": ["T4"]},
//	    {"id": "T4", "service": "s4"}
//	  ],
//	  "adaptations": [
//	    {"id": "a1", "faulty": ["T2"], "replacement": [
//	      {"id": "T2bis", "service": "s2alt", "src": ["T1"], "dst": ["T4"]}
//	    ]}
//	  ]
//	}
func FromJSON(data []byte) (*Definition, error) {
	var d Definition
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("workflow: decoding JSON: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// JSON encodes the definition as indented JSON. The output round-trips
// through FromJSON.
func (d *Definition) JSON() ([]byte, error) {
	return json.MarshalIndent(d, "", "  ")
}
