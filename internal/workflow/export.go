package workflow

import (
	"fmt"
	"sort"
	"strings"

	"ginflow/internal/hocl"
)

// DOT renders the workflow as a Graphviz digraph: main tasks as solid
// nodes and edges, each adaptation's replacement sub-workflow as a
// dashed cluster with dashed rewiring edges — mirroring the visual
// language of the paper's Figs. 5 and 9.
func (d *Definition) DOT() string {
	var b strings.Builder
	name := d.Name
	if name == "" {
		name = "workflow"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=box, style=rounded];\n")

	for _, t := range d.Tasks {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s\"];\n", t.ID, t.ID, t.Service)
	}
	for _, t := range d.Tasks {
		dsts := append([]string(nil), t.Dst...)
		sort.Strings(dsts)
		for _, dst := range dsts {
			fmt.Fprintf(&b, "  %q -> %q;\n", t.ID, dst)
		}
	}

	for i := range d.Adaptations {
		a := &d.Adaptations[i]
		srcOf, dstOf := a.wiring()
		fmt.Fprintf(&b, "  subgraph \"cluster_%s\" {\n", a.ID)
		fmt.Fprintf(&b, "    label=\"adaptation %s (replaces %s)\";\n",
			a.ID, strings.Join(a.Faulty, ", "))
		b.WriteString("    style=dashed;\n")
		for _, r := range a.Replacement {
			fmt.Fprintf(&b, "    %q [label=\"%s\\n%s\", style=\"rounded,dashed\"];\n",
				r.ID, r.ID, r.Service)
		}
		b.WriteString("  }\n")
		for _, r := range a.Replacement {
			for _, src := range srcOf[r.ID] {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed];\n", src, r.ID)
			}
			for _, dst := range dstOf[r.ID] {
				fmt.Fprintf(&b, "  %q -> %q [style=dashed];\n", r.ID, dst)
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// HOCLSource renders the centralized HOCL translation of the workflow as
// pretty-printed, parseable program text — the internal representation
// the paper shows in Figs. 3 and 8, exposed for inspection ("the HOCL
// workflow description is internal to GinFlow", §III-B, but seeing it is
// the best way to understand an enactment).
func (d *Definition) HOCLSource() (string, error) {
	prog, err := d.TranslateCentral()
	if err != nil {
		return "", err
	}
	return prettySource(prog), nil
}

// prettySource renders the global solution in parseable HOCL syntax.
func prettySource(prog *CentralProgram) string {
	return hocl.Pretty(prog.Global)
}
