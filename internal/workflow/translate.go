package workflow

import (
	"fmt"
	"sort"

	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
)

// CentralProgram is the HOCL translation of a workflow for centralized
// execution: one global multiset reduced by a single interpreter, as in
// the paper's §III. Funcs holds the generated external functions
// (mv_src rewrites) that must be registered on the interpreter alongside
// invoke().
type CentralProgram struct {
	Global *hocl.Solution
	Funcs  map[string]hocl.Func
}

// TriggerSpec describes one adaptation trigger owned by a (potentially
// faulty) task's agent in decentralised mode: on ERROR, the agent calls
// FuncName, which must deliver ADAPT:"AdaptationID" to every agent in
// Notify and record TRIGGER:"AdaptationID" in the shared space (§IV-A).
type TriggerSpec struct {
	AdaptationID string
	FuncName     string
	Notify       []string
}

// AgentSpec is the deployment unit for one service agent: the task
// metadata, its agent-local HOCL solution (rules injected), generated
// external functions, and the adaptation triggers it owns.
type AgentSpec struct {
	Task     hoclflow.TaskAttrs
	Local    *hocl.Solution
	Funcs    map[string]hocl.Func
	Triggers []TriggerSpec
}

// rolePlan aggregates, per task, the adaptation artifacts it hosts.
type rolePlan struct {
	rules    []*hocl.Rule
	funcs    map[string]hocl.Func
	triggers []TriggerSpec
}

func newRolePlan() *rolePlan { return &rolePlan{funcs: map[string]hocl.Func{}} }

// adaptationRoles distributes each adaptation's generated rules to the
// tasks that host them: add_dst to sources, mv_src (+ rewrite function)
// to the destination, triggers to every faulty task. The central flag
// selects the centralized trigger (a global rule, returned separately)
// or the decentralised local trigger.
func (d *Definition) adaptationRoles(central bool) (map[string]*rolePlan, []*hocl.Rule, error) {
	roles := map[string]*rolePlan{}
	role := func(id string) *rolePlan {
		if roles[id] == nil {
			roles[id] = newRolePlan()
		}
		return roles[id]
	}
	var globalRules []*hocl.Rule

	for i := range d.Adaptations {
		a := &d.Adaptations[i]
		p, err := a.plan(d)
		if err != nil {
			return nil, nil, fmt.Errorf("workflow: %w", err)
		}
		for _, src := range p.sources {
			dsts := append([]string(nil), p.addDst[src]...)
			sort.Strings(dsts)
			role(src).rules = append(role(src).rules, hoclflow.AddDstRule(a.ID, src, dsts))
		}
		dst := role(p.destination)
		dst.rules = append(dst.rules, hoclflow.MvSrcRule(a.ID))
		dst.funcs[hoclflow.MvSrcFuncName(a.ID)] = hoclflow.MvSrcFunc(p.faultyFinals, p.replacementFinals)

		notify := append(append([]string(nil), p.sources...), p.destination)
		for _, f := range a.Faulty {
			if central {
				globalRules = append(globalRules,
					hoclflow.CentralTriggerRule(a.ID, f, p.sources, p.destination))
			} else {
				role(f).rules = append(role(f).rules, hoclflow.LocalTriggerRule(a.ID, f))
				role(f).triggers = append(role(f).triggers, TriggerSpec{
					AdaptationID: a.ID,
					FuncName:     hoclflow.TriggerFuncName(a.ID),
					Notify:       notify,
				})
			}
		}
	}
	return roles, globalRules, nil
}

// taskAttrs builds the hoclflow attributes for every deployable task:
// main tasks (Src derived from the DAG) and replacement tasks (Src/Dst
// from the normalised adaptation wiring).
func (d *Definition) taskAttrs() []hoclflow.TaskAttrs {
	var out []hoclflow.TaskAttrs
	for _, t := range d.Tasks {
		out = append(out, hoclflow.TaskAttrs{
			Name:    t.ID,
			Src:     d.SrcOf(t.ID),
			Dst:     append([]string(nil), t.Dst...),
			Service: t.Service,
			In:      strAtoms(t.In),
		})
	}
	for i := range d.Adaptations {
		a := &d.Adaptations[i]
		srcOf, dstOf := a.wiring()
		for _, r := range a.Replacement {
			out = append(out, hoclflow.TaskAttrs{
				Name:    r.ID,
				Src:     srcOf[r.ID],
				Dst:     dstOf[r.ID],
				Service: r.Service,
				In:      strAtoms(r.In),
			})
		}
	}
	return out
}

func strAtoms(ss []string) []hocl.Atom {
	out := make([]hocl.Atom, len(ss))
	for i, s := range ss {
		out[i] = hocl.Str(s)
	}
	return out
}

// TranslateCentral produces the centralized HOCL program: the Fig. 3
// global multiset with the Fig. 4 generic rules and the Fig. 7
// adaptation rules injected ("the phase of rules injection ... takes
// place in a transparent way before the actual execution", §IV-D).
func (d *Definition) TranslateCentral() (*CentralProgram, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	roles, globalRules, err := d.adaptationRoles(true)
	if err != nil {
		return nil, err
	}
	global := hocl.NewSolution(hoclflow.GwPass())
	for _, r := range globalRules {
		global.Add(r)
	}
	prog := &CentralProgram{Global: global, Funcs: map[string]hocl.Func{}}
	for _, attrs := range d.taskAttrs() {
		rules := []*hocl.Rule{hoclflow.GwSetup(), hoclflow.GwCall()}
		if rp := roles[attrs.Name]; rp != nil {
			rules = append(rules, rp.rules...)
			for name, fn := range rp.funcs {
				prog.Funcs[name] = fn
			}
		}
		global.Add(hoclflow.TaskTuple(attrs.Name, attrs.SubSolution(rules...)))
	}
	return prog, nil
}

// TranslateAgents produces one AgentSpec per deployable task (main and
// replacement) for decentralised execution: local solutions carry the
// decentralised generic rules (gw_setup, gw_call, gw_send, gw_recv,
// gw_gc) plus the adaptation rules for the roles the task plays.
func (d *Definition) TranslateAgents() ([]AgentSpec, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	roles, _, err := d.adaptationRoles(false)
	if err != nil {
		return nil, err
	}
	var specs []AgentSpec
	for _, attrs := range d.taskAttrs() {
		rules := []*hocl.Rule{
			hoclflow.GwSetup(), hoclflow.GwCall(),
			hoclflow.GwSend(), hoclflow.GwRecv(), hoclflow.GwGc(),
		}
		spec := AgentSpec{Task: attrs, Funcs: map[string]hocl.Func{}}
		if rp := roles[attrs.Name]; rp != nil {
			rules = append(rules, rp.rules...)
			for name, fn := range rp.funcs {
				spec.Funcs[name] = fn
			}
			spec.Triggers = rp.triggers
		}
		spec.Local = attrs.LocalSolution(rules...)
		specs = append(specs, spec)
	}
	return specs, nil
}
