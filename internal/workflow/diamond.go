package workflow

import (
	"fmt"
)

// DiamondSpec parameterises the paper's evaluation workload (Fig. 11): a
// split task fanning out to a mesh of H columns × V rows, funnelling into
// a merge task. Fully connected meshes link every task of a row to every
// task of the next row; simple meshes keep columns independent.
type DiamondSpec struct {
	H, V           int
	FullyConnected bool
	// Service names; all tasks of the mesh share MeshService (the paper's
	// tasks "only simulate a simple script with a very low constant
	// execution time").
	SplitService, MeshService, MergeService string
	// Input is the initial input handed to the split task.
	Input string
}

// DefaultDiamondSpec returns the spec used by the benchmarks: h×v mesh,
// shared "noop" services.
func DefaultDiamondSpec(h, v int, fully bool) DiamondSpec {
	return DiamondSpec{
		H: h, V: v, FullyConnected: fully,
		SplitService: "split", MeshService: "work", MergeService: "merge",
		Input: "input",
	}
}

// MeshTaskName names the mesh task at column c (1-based), row r (1-based).
func MeshTaskName(c, r int) string { return fmt.Sprintf("N%d_%d", c, r) }

// DiamondSplitName and DiamondMergeName are the fan-out/fan-in task names.
const (
	DiamondSplitName = "SPLIT"
	DiamondMergeName = "MERGE"
)

// Diamond builds the workflow of Fig. 11. Task count is h*v + 2.
func Diamond(spec DiamondSpec) *Definition {
	h, v := spec.H, spec.V
	d := &Definition{Name: fmt.Sprintf("diamond-%dx%d", h, v)}

	firstRow := make([]string, h)
	for c := 1; c <= h; c++ {
		firstRow[c-1] = MeshTaskName(c, 1)
	}
	d.Tasks = append(d.Tasks, Task{
		ID: DiamondSplitName, Service: spec.SplitService,
		In: []string{spec.Input}, Dst: firstRow,
	})

	for r := 1; r <= v; r++ {
		for c := 1; c <= h; c++ {
			var dst []string
			switch {
			case r == v:
				dst = []string{DiamondMergeName}
			case spec.FullyConnected:
				dst = make([]string, h)
				for k := 1; k <= h; k++ {
					dst[k-1] = MeshTaskName(k, r+1)
				}
			default:
				dst = []string{MeshTaskName(c, r+1)}
			}
			d.Tasks = append(d.Tasks, Task{
				ID: MeshTaskName(c, r), Service: spec.MeshService, Dst: dst,
			})
		}
	}

	d.Tasks = append(d.Tasks, Task{ID: DiamondMergeName, Service: spec.MergeService})
	return d
}

// ReplacementMeshName names the replacement mesh task at column c, row r.
func ReplacementMeshName(c, r int) string { return fmt.Sprintf("R%d_%d", c, r) }

// WithBodyReplacement extends a diamond with the adaptation used in the
// paper's §V-B experiment: the whole mesh body is declared potentially
// faulty and replaced on-the-fly by a fresh mesh (simple or fully
// connected, per scenario). The trigger fires when any mesh service
// errors; the experiment raises the exception on the last service of the
// mesh.
func WithBodyReplacement(d *Definition, spec DiamondSpec, replacementFully bool, replacementService string) *Definition {
	h, v := spec.H, spec.V
	a := Adaptation{ID: "bodyswap"}
	for r := 1; r <= v; r++ {
		for c := 1; c <= h; c++ {
			a.Faulty = append(a.Faulty, MeshTaskName(c, r))
		}
	}
	for r := 1; r <= v; r++ {
		for c := 1; c <= h; c++ {
			rt := ReplacementTask{
				ID:      ReplacementMeshName(c, r),
				Service: replacementService,
			}
			if r == 1 {
				rt.Src = []string{DiamondSplitName}
			}
			switch {
			case r == v:
				rt.Dst = []string{DiamondMergeName}
			case replacementFully:
				rt.Dst = make([]string, h)
				for k := 1; k <= h; k++ {
					rt.Dst[k-1] = ReplacementMeshName(k, r+1)
				}
			default:
				rt.Dst = []string{ReplacementMeshName(c, r+1)}
			}
			a.Replacement = append(a.Replacement, rt)
		}
	}
	d.Adaptations = append(d.Adaptations, a)
	return d
}

// LastMeshTask returns the mesh task the §V-B experiment makes fail: the
// last service of the mesh (column h, row v).
func LastMeshTask(spec DiamondSpec) string {
	return MeshTaskName(spec.H, spec.V)
}

// Sequence builds a simple linear workflow T1 -> T2 -> ... -> Tn, one of
// the four basic patterns of §V ("split, merge, sequence and parallel").
func Sequence(n int, service, input string) *Definition {
	d := &Definition{Name: fmt.Sprintf("sequence-%d", n)}
	for i := 1; i <= n; i++ {
		t := Task{ID: fmt.Sprintf("S%d", i), Service: service}
		if i == 1 {
			t.In = []string{input}
		}
		if i < n {
			t.Dst = []string{fmt.Sprintf("S%d", i+1)}
		}
		d.Tasks = append(d.Tasks, t)
	}
	return d
}
