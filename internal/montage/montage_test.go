package montage

import (
	"context"
	"math"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
)

func TestWorkflowShape(t *testing.T) {
	d := Workflow()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.TaskCount(); got != TotalTasks {
		t.Errorf("tasks = %d, want %d (paper: 118)", got, TotalTasks)
	}
	if got := d.Entries(); len(got) != 1 || got[0] != "MHDR" {
		t.Errorf("entries = %v", got)
	}
	if got := d.Exits(); len(got) != 1 || got[0] != "MJPEG" {
		t.Errorf("exits = %v", got)
	}
	// The projection stage is 108 wide: MIMGTBL has 108 sources.
	if got := len(d.SrcOf("MIMGTBL")); got != ParallelWidth {
		t.Errorf("MIMGTBL fan-in = %d, want %d", got, ParallelWidth)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Error(err)
	}
}

// TestDurationCDFBands checks the Fig. 15 bands: a small share below
// 20 s, a small share between 20 and 60 s, and the dominant band above
// 60 s.
func TestDurationCDFBands(t *testing.T) {
	durs := Durations()
	if len(durs) != TotalTasks {
		t.Fatalf("durations for %d tasks", len(durs))
	}
	var under20, mid, over60 int
	for _, d := range durs {
		switch {
		case d < 20:
			under20++
		case d <= 60:
			mid++
		default:
			over60++
		}
	}
	if under20 != 5 || mid != 5 || over60 != ParallelWidth {
		t.Errorf("bands = %d/%d/%d, want 5/5/108", under20, mid, over60)
	}
	// §V-D: "95% of the services have a running time greater than 15s".
	n15 := TasksLongerThan(15)
	if frac := float64(n15) / TotalTasks; frac < 0.93 {
		t.Errorf("fraction of tasks >15s = %.2f, want ≈0.95", frac)
	}
	// Projection durations span 60..310 (§V-D: "from 60s to 310s").
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 1; i <= ParallelWidth; i++ {
		d := projectDuration(i)
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	if lo < 60 || lo > 65 {
		t.Errorf("min projection duration = %v, want ≈60", lo)
	}
	if hi < 250 || hi > 310 {
		t.Errorf("max projection duration = %v, want in the 250..310 band", hi)
	}
}

func TestProjectDurationsAreAPermutationSpread(t *testing.T) {
	seen := map[float64]bool{}
	for i := 1; i <= ParallelWidth; i++ {
		d := projectDuration(i)
		if seen[d] {
			t.Fatalf("duplicate projection duration %v", d)
		}
		seen[d] = true
	}
}

func TestCriticalPathNearPaperBaseline(t *testing.T) {
	cp := CriticalPathSeconds()
	// The paper's no-failure baseline is 484 s (σ = 13.5). Messaging adds
	// on top of the pure compute path, so the modelled path sits slightly
	// below it.
	if cp < 400 || cp > 550 {
		t.Errorf("critical path = %.0f model seconds, want within [400, 550]", cp)
	}
}

func TestCDFMonotone(t *testing.T) {
	points := CDF()
	if len(points) != TotalTasks {
		t.Fatalf("CDF has %d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].Seconds < points[i-1].Seconds || points[i].Fraction <= points[i-1].Fraction {
			t.Fatalf("CDF not monotone at %d: %+v -> %+v", i, points[i-1], points[i])
		}
	}
	last := points[len(points)-1]
	if last.Fraction != 1.0 {
		t.Errorf("CDF must end at 1.0, got %v", last.Fraction)
	}
}

func TestKernelsAreDeterministicAndIdempotent(t *testing.T) {
	reg := agent.NewRegistry()
	RegisterServices(reg)
	if got := len(reg.Names()); got != TotalTasks {
		t.Fatalf("registered %d services, want %d", got, TotalTasks)
	}
	svc, ok := reg.Lookup(serviceName("MADD"))
	if !ok {
		t.Fatal("MADD kernel missing")
	}
	params := []hocl.Atom{hocl.Str("b"), hocl.Str("a")}
	r1, err := svc.Invoke(params)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := svc.Invoke([]hocl.Atom{hocl.Str("a"), hocl.Str("b")}) // order-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Errorf("kernel not order-insensitive: %v vs %v", r1, r2)
	}
}

// TestMontageRunsDistributed executes the full 118-task Montage workflow
// on the decentralised engine (Mesos + Kafka, the §V-D configuration) at
// a fast clock scale.
func TestMontageRunsDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("full Montage run")
	}
	reg := agent.NewRegistry()
	RegisterServices(reg)
	rep, err := core.Run(context.Background(), Workflow(), reg, core.Config{
		Executor: executor.KindMesos,
		Broker:   mq.KindLog,
		Cluster:  cluster.Config{Nodes: 25, CoresPerNode: 24, Scale: 100 * time.Microsecond},
		Timeout:  120 * time.Second,
	})
	if err != nil {
		t.Fatalf("run: %v (report %v)", err, rep)
	}
	if got := rep.Statuses["MJPEG"]; got != hoclflow.StatusCompleted {
		t.Errorf("MJPEG = %v", got)
	}
	res := rep.Results["MJPEG"]
	if len(res) != 1 || res[0] != `"mjpeg[1]"` {
		t.Errorf("mosaic result = %v", res)
	}
	if rep.Agents != TotalTasks {
		t.Errorf("agents = %d", rep.Agents)
	}
}
