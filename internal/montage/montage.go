// Package montage generates the Montage-like workflow used in the
// paper's resilience evaluation (§V-D, Fig. 15): 118 tasks building a
// mosaic of the M45 star cluster from hundreds of astronomical images.
// The real Montage toolbox is not available offline, so the package
// substitutes deterministic simulated mosaicking kernels that preserve
// what the experiment depends on: the DAG shape (a wide 108-task
// parallel projection stage between short pre/post stages), the
// task-duration CDF of Fig. 15 (a small share of tasks under 20 s,
// another small share between 20 and 60 s, and the dominant 60–310 s
// band), and idempotence ("the services taken from the Montage toolbox
// are idempotent").
package montage

import (
	"fmt"
	"sort"
	"strings"

	"ginflow/internal/agent"
	"ginflow/internal/hocl"
	"ginflow/internal/workflow"
)

// ParallelWidth is the width of the projection stage (the "…108…" of
// Fig. 15).
const ParallelWidth = 108

// TotalTasks is the workflow size reported by the paper.
const TotalTasks = 118

// Post-stage tasks, in pipeline order, with their modelled durations
// (model seconds). Together with MHDR and the projection stage they
// reproduce the CDF bands of Fig. 15:
//
//	T < 20   : MHDR, MIMGTBL, MOVERLAPS, MIMGTBL2, MJPEG  (5/118 ≈ 4%)
//	20<T<60  : MCONCATFIT, MBGMODEL, MBGEXEC, MADD, MSHRINK (5/118 ≈ 4%)
//	60 < T   : the 108 MPROJECT tasks                       (≈ 92%)
var postStages = []struct {
	Name     string
	Duration float64
}{
	{"MIMGTBL", 10},
	{"MOVERLAPS", 15},
	{"MCONCATFIT", 25},
	{"MBGMODEL", 35},
	{"MBGEXEC", 45},
	{"MIMGTBL2", 10},
	{"MADD", 40},
	{"MSHRINK", 20},
	{"MJPEG", 6},
}

// HdrDuration is the modelled duration of the header task.
const HdrDuration = 10

// projectDuration returns the modelled duration of the i-th (1-based)
// projection task: a deterministic spread over [60, 290] model seconds —
// "the durations of the services in the large parallel part of the
// workflow are quite heterogeneous: from 60s to 310s" (§V-D). The spread
// is scrambled so neighbouring task indices do not get neighbouring
// durations.
func projectDuration(i int) float64 {
	const lo, span = 62.0, 228.0
	// 59 is coprime with 108, so i*59 mod 108 is a permutation.
	slot := (i * 59) % ParallelWidth
	return lo + span*float64(slot)/float64(ParallelWidth-1)
}

// ProjectTaskName names the i-th (1-based) projection task.
func ProjectTaskName(i int) string { return fmt.Sprintf("MPROJECT_%d", i) }

// Workflow builds the 118-task Montage-like DAG:
//
//	MHDR -> MPROJECT_1..108 -> MIMGTBL -> MOVERLAPS -> MCONCATFIT ->
//	MBGMODEL -> MBGEXEC -> MIMGTBL2 -> MADD -> MSHRINK -> MJPEG
func Workflow() *workflow.Definition {
	d := &workflow.Definition{Name: "montage-m45"}

	projections := make([]string, ParallelWidth)
	for i := 1; i <= ParallelWidth; i++ {
		projections[i-1] = ProjectTaskName(i)
	}
	d.Tasks = append(d.Tasks, workflow.Task{
		ID: "MHDR", Service: serviceName("MHDR"),
		In: []string{"m45-3deg.hdr"}, Dst: projections,
	})
	for i := 1; i <= ParallelWidth; i++ {
		d.Tasks = append(d.Tasks, workflow.Task{
			ID:      ProjectTaskName(i),
			Service: serviceName(ProjectTaskName(i)),
			Dst:     []string{postStages[0].Name},
		})
	}
	for i, st := range postStages {
		t := workflow.Task{ID: st.Name, Service: serviceName(st.Name)}
		if i < len(postStages)-1 {
			t.Dst = []string{postStages[i+1].Name}
		}
		d.Tasks = append(d.Tasks, t)
	}
	return d
}

func serviceName(task string) string { return "montage/" + strings.ToLower(task) }

// Durations returns the modelled duration of every task, keyed by task
// ID.
func Durations() map[string]float64 {
	out := map[string]float64{"MHDR": HdrDuration}
	for i := 1; i <= ParallelWidth; i++ {
		out[ProjectTaskName(i)] = projectDuration(i)
	}
	for _, st := range postStages {
		out[st.Name] = st.Duration
	}
	return out
}

// TasksLongerThan returns how many tasks run longer than t model seconds
// — the paper's N_T, the population at risk under failure delay T.
func TasksLongerThan(t float64) int {
	n := 0
	for _, d := range Durations() {
		if d > t {
			n++
		}
	}
	return n
}

// CriticalPathSeconds returns the sum of durations along the (unique)
// critical path: MHDR, the slowest projection, and the post chain. The
// paper measures a 484 s no-failure baseline; the modelled path is close
// by construction (messaging adds the rest).
func CriticalPathSeconds() float64 {
	total := float64(HdrDuration)
	longest := 0.0
	for i := 1; i <= ParallelWidth; i++ {
		if d := projectDuration(i); d > longest {
			longest = d
		}
	}
	total += longest
	for _, st := range postStages {
		total += st.Duration
	}
	return total
}

// RegisterServices registers one deterministic simulated kernel per
// task: projections emit per-tile plate strings, aggregation stages fold
// their inputs into a digest, and MJPEG renders the final mosaic
// description. Every kernel is a pure function of its inputs —
// idempotent, as recovery requires (§IV-B).
func RegisterServices(reg *agent.Registry) {
	reg.RegisterFunc(serviceName("MHDR"), HdrDuration, func(params []hocl.Atom) (hocl.Atom, error) {
		return hocl.Str("hdr(m45,3deg)"), nil
	})
	for i := 1; i <= ParallelWidth; i++ {
		i := i
		reg.RegisterFunc(serviceName(ProjectTaskName(i)), projectDuration(i),
			func(params []hocl.Atom) (hocl.Atom, error) {
				return hocl.Str(fmt.Sprintf("plate-%03d", i)), nil
			})
	}
	for _, st := range postStages {
		st := st
		reg.RegisterFunc(serviceName(st.Name), st.Duration, foldKernel(st.Name))
	}
}

// foldKernel builds an aggregation kernel: it folds the (order-
// insensitive) inputs into a deterministic digest string.
func foldKernel(stage string) func(params []hocl.Atom) (hocl.Atom, error) {
	return func(params []hocl.Atom) (hocl.Atom, error) {
		parts := make([]string, 0, len(params))
		for _, p := range params {
			parts = append(parts, p.String())
		}
		sort.Strings(parts)
		return hocl.Str(fmt.Sprintf("%s[%d]", strings.ToLower(stage), len(parts))), nil
	}
}

// CDFPoint is one step of the task-duration CDF (Fig. 15, right).
type CDFPoint struct {
	Seconds  float64
	Fraction float64 // of services with duration <= Seconds
}

// CDF returns the task-duration CDF.
func CDF() []CDFPoint {
	durs := make([]float64, 0, TotalTasks)
	for _, d := range Durations() {
		durs = append(durs, d)
	}
	sort.Float64s(durs)
	points := make([]CDFPoint, len(durs))
	for i, d := range durs {
		points[i] = CDFPoint{Seconds: d, Fraction: float64(i+1) / float64(len(durs))}
	}
	return points
}
