package mq

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/hocl"
)

// testClock is the discrete-event virtual clock: latency modelling
// stays active (messages fall due at modelled instants) but no real
// time passes — consumers pull via Next and the clock jumps straight to
// each due instant. Tests exercising the real-clock drain path build
// their own cluster.NewClock.
func testClock() *cluster.Clock {
	return cluster.NewVirtualClock()
}

// recvOne fetches the next delivered message: pulling (Next) on a
// virtual-clock subscription, draining C() on a real-clock one.
func recvOne(t *testing.T, sub *Subscription) Message {
	t.Helper()
	if sub.sub.clock != nil && sub.sub.clock.Virtual() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		batch, err := sub.Next(ctx)
		if err != nil {
			t.Fatalf("waiting for message: %v", err)
		}
		if len(batch) != 1 {
			t.Fatalf("expected a single due message, got %d", len(batch))
		}
		return batch[0]
	}
	select {
	case m := <-sub.C():
		return m
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func brokers(t *testing.T) map[string]Broker {
	return map[string]Broker{
		"queue": NewQueueBroker(testClock(), 0.001),
		"log":   NewLogBroker(testClock(), 0.001),
	}
}

func TestPublishSubscribe(t *testing.T) {
	for name, b := range brokers(t) {
		t.Run(name, func(t *testing.T) {
			sub, err := b.Subscribe("sa.T1")
			if err != nil {
				t.Fatal(err)
			}
			if err := b.Publish("sa.T1", "RES:<42>"); err != nil {
				t.Fatal(err)
			}
			m := recvOne(t, sub)
			if m.Payload != "RES:<42>" || m.Topic != "sa.T1" {
				t.Errorf("got %+v", m)
			}
			if b.Published() != 1 {
				t.Errorf("Published = %d", b.Published())
			}
		})
	}
}

func TestTopicIsolation(t *testing.T) {
	for name, b := range brokers(t) {
		t.Run(name, func(t *testing.T) {
			s1, _ := b.Subscribe("a")
			s2, _ := b.Subscribe("b")
			if err := b.Publish("a", "x"); err != nil {
				t.Fatal(err)
			}
			recvOne(t, s1)
			if m := s2.TryNext(); m != nil {
				t.Errorf("topic b received %+v", m)
			}
		})
	}
}

func TestFanOutToMultipleSubscribers(t *testing.T) {
	for name, b := range brokers(t) {
		t.Run(name, func(t *testing.T) {
			s1, _ := b.Subscribe("t")
			s2, _ := b.Subscribe("t")
			if err := b.Publish("t", "m"); err != nil {
				t.Fatal(err)
			}
			recvOne(t, s1)
			recvOne(t, s2)
		})
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	for name, b := range brokers(t) {
		t.Run(name, func(t *testing.T) {
			sub, _ := b.Subscribe("t")
			sub.Cancel()
			sub.Cancel() // idempotent
			if err := b.Publish("t", "m"); err != nil {
				t.Fatal(err)
			}
			if _, err := sub.Next(context.Background()); err != ErrCancelled {
				t.Errorf("cancelled subscription: Next = %v, want ErrCancelled", err)
			}
		})
	}
}

func TestCloseRejectsPublish(t *testing.T) {
	for name, b := range brokers(t) {
		t.Run(name, func(t *testing.T) {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			if err := b.Publish("t", "m"); err != ErrClosed {
				t.Errorf("publish after close: %v", err)
			}
			if _, err := b.Subscribe("t"); err != ErrClosed {
				t.Errorf("subscribe after close: %v", err)
			}
		})
	}
}

// TestQueueBrokerIsVolatile: messages published while nobody listens are
// lost — the ActiveMQ-mode behaviour that rules out crash recovery.
func TestQueueBrokerIsVolatile(t *testing.T) {
	b := NewQueueBroker(testClock(), 0.001)
	if err := b.Publish("t", "lost"); err != nil {
		t.Fatal(err)
	}
	sub, _ := b.Subscribe("t")
	if m := sub.TryNext(); m != nil {
		t.Errorf("late subscriber received %+v", m)
	}
}

// TestLogBrokerPersistsAndReplays: the Kafka-mode capability §IV-B
// recovery relies on.
func TestLogBrokerPersistsAndReplays(t *testing.T) {
	b := NewLogBroker(testClock(), 0.001)
	for i := 0; i < 3; i++ {
		if err := b.Publish("sa.T1", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	b.Publish("sa.T2", "other")

	log := b.Log("sa.T1")
	if len(log) != 3 {
		t.Fatalf("log has %d messages", len(log))
	}
	for i, m := range log {
		if m.Offset != i {
			t.Errorf("offset[%d] = %d", i, m.Offset)
		}
		if m.Payload != fmt.Sprintf("m%d", i) {
			t.Errorf("payload[%d] = %q (order must be preserved)", i, m.Payload)
		}
	}
	// Log returns a copy: mutating it must not corrupt the broker.
	log[0].Payload = "tampered"
	if b.Log("sa.T1")[0].Payload != "m0" {
		t.Error("Log exposed internal state")
	}
	if got := b.Log("nosuch"); len(got) != 0 {
		t.Errorf("unknown topic log: %v", got)
	}
}

func TestLatencyIsModelled(t *testing.T) {
	clock := cluster.NewClock(time.Millisecond)
	b := NewQueueBroker(clock, 20) // 20 model seconds = 20 ms real
	sub, _ := b.Subscribe("t")
	start := time.Now()
	b.Publish("t", "m")
	recvOne(t, sub)
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("delivery took %v, want >= ~20ms of modelled latency", elapsed)
	}
}

func TestDefaultLatencies(t *testing.T) {
	// The Kafka-mode broker must model a higher per-message cost than the
	// ActiveMQ-mode broker (Fig. 14: ~4x slower executions).
	if DefaultLogLatency < 3*DefaultQueueLatency {
		t.Errorf("log latency %v not substantially above queue latency %v",
			DefaultLogLatency, DefaultQueueLatency)
	}
}

func TestNewBrokerKinds(t *testing.T) {
	clock := testClock()
	if b, err := NewBroker(KindQueue, clock); err != nil || b == nil {
		t.Errorf("queue kind: %v", err)
	}
	b, err := NewBroker(KindLog, clock)
	if err != nil {
		t.Fatalf("log kind: %v", err)
	}
	if _, ok := b.(Replayable); !ok {
		t.Error("kafka-kind broker must be Replayable")
	}
	if _, err := NewBroker("rabbitmq", clock); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestConcurrentPublishersAndSubscribers(t *testing.T) {
	// A real clock on purpose: this soaks the concurrent publish path
	// against the push-drain goroutines, which virtual mode (pull
	// consumers, one-at-a-time schedule) replaces by design.
	b := NewLogBroker(cluster.NewClock(10*time.Microsecond), 0.0001)
	const (
		topics     = 8
		publishers = 4
		perPub     = 50
	)
	subs := make([]*Subscription, topics)
	for i := range subs {
		s, err := b.Subscribe(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				topic := fmt.Sprintf("t%d", (p+i)%topics)
				if err := b.Publish(topic, "m"); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}(p)
	}
	wg.Wait()
	total := 0
	deadline := time.After(5 * time.Second)
	for total < publishers*perPub {
		progressed := false
		for _, s := range subs {
			select {
			case <-s.C():
				total++
				progressed = true
			default:
			}
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("received %d of %d messages", total, publishers*perPub)
			case <-time.After(time.Millisecond):
			}
		}
	}
	if got := b.Published(); got != int64(publishers*perPub) {
		t.Errorf("Published = %d", got)
	}
}

func TestPublishAtomsDeliversStructurally(t *testing.T) {
	for name, b := range brokers(t) {
		t.Run(name, func(t *testing.T) {
			sub, err := b.Subscribe("sa.T1")
			if err != nil {
				t.Fatal(err)
			}
			payload := []hocl.Atom{hocl.Tuple{hocl.Ident("RES"), hocl.NewSolution(hocl.Int(42))}}
			if err := b.PublishAtoms("sa.T1", payload); err != nil {
				t.Fatal(err)
			}
			m := recvOne(t, sub)
			if !m.Structural() {
				t.Fatal("message is not structural")
			}
			if len(m.Atoms) != 1 || !m.Atoms[0].Equal(payload[0]) {
				t.Errorf("atoms = %v", m.Atoms)
			}
			if m.Payload != "" {
				t.Errorf("structural message carries text %q", m.Payload)
			}
			if got := m.Text(); got != "RES:<42>" {
				t.Errorf("Text() = %q, want RES:<42>", got)
			}
			if b.Published() != 1 {
				t.Errorf("published = %d", b.Published())
			}
		})
	}
}

// TestTopicNamespaceAccounting: per-prefix publish counters attribute a
// shared broker's traffic to the session namespace that produced it.
func TestTopicNamespaceAccounting(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewQueueBroker(clock, 1e-9)
	for i := 0; i < 3; i++ {
		if err := b.Publish("wf1.sa.T1", "X"); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Publish("wf2.sa.T1", "X"); err != nil {
		t.Fatal(err)
	}
	if got := b.PublishedPrefix("wf1."); got != 3 {
		t.Errorf("wf1 = %d, want 3", got)
	}
	if got := b.PublishedPrefix("wf2."); got != 1 {
		t.Errorf("wf2 = %d, want 1", got)
	}
	if got := b.PublishedPrefix(""); got != 4 {
		t.Errorf("all = %d, want 4", got)
	}
	if b.Published() != 4 {
		t.Errorf("global = %d, want 4", b.Published())
	}
}

// TestPurgeTopicsDropsNamespaceState: purging a prefix removes
// subscriber registrations, counters and (log broker) retained logs for
// that namespace only.
func TestPurgeTopicsDropsNamespaceState(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewLogBroker(clock, 1e-9)
	sub1, err := b.Subscribe("wf1.sa.T1")
	if err != nil {
		t.Fatal(err)
	}
	defer sub1.Cancel()
	if _, err := b.Subscribe("wf2.sa.T1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("wf1.sa.T1", "A"); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("wf2.sa.T1", "B"); err != nil {
		t.Fatal(err)
	}
	<-sub1.C() // drain before purge

	if got := b.Topics("wf1."); len(got) != 1 || got[0] != "wf1.sa.T1" {
		t.Fatalf("topics(wf1.) = %v", got)
	}
	if n := b.PurgeTopics("wf1."); n != 1 {
		t.Errorf("purged = %d, want 1", n)
	}
	if got := b.Topics("wf1."); len(got) != 0 {
		t.Errorf("wf1 topics survive purge: %v", got)
	}
	if got := b.Log("wf1.sa.T1"); len(got) != 0 {
		t.Errorf("wf1 log survives purge: %v", got)
	}
	if got := b.PublishedPrefix("wf1."); got != 0 {
		t.Errorf("wf1 counters survive purge: %d", got)
	}
	// The sibling namespace is untouched.
	if got := b.Topics("wf2."); len(got) != 1 {
		t.Errorf("wf2 topics = %v", got)
	}
	if got := b.Log("wf2.sa.T1"); len(got) != 1 {
		t.Errorf("wf2 log = %v", got)
	}
	// A purged consumer's Subscription remains safe to cancel.
	sub1.Cancel()
	// Post-purge publishes to the namespace still work (topics are
	// created on demand); nothing is delivered to the purged consumer.
	if err := b.Publish("wf1.sa.T1", "C"); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub1.C():
		t.Errorf("purged consumer received %v", m)
	case <-time.After(10 * time.Millisecond):
	}
}

func TestLogBrokerReplaysStructuralMessages(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewLogBroker(clock, 1e-9)
	payload := []hocl.Atom{hocl.Ident("GOODATOM")}
	if err := b.PublishAtoms("sa.T1", payload); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("sa.T1", "TEXTATOM"); err != nil {
		t.Fatal(err)
	}
	log := b.Log("sa.T1")
	if len(log) != 2 {
		t.Fatalf("log length = %d", len(log))
	}
	if !log[0].Structural() || !log[0].Atoms[0].Equal(hocl.Ident("GOODATOM")) {
		t.Errorf("log[0] = %+v", log[0])
	}
	if log[0].Offset != 0 || log[1].Offset != 1 {
		t.Errorf("offsets = %d, %d", log[0].Offset, log[1].Offset)
	}
	if log[1].Structural() || log[1].Payload != "TEXTATOM" {
		t.Errorf("log[1] = %+v", log[1])
	}
	// Tampering with a returned log's atom slice must not corrupt the
	// broker's retained history.
	log[0].Atoms[0] = hocl.Ident("TAMPERED")
	if got := b.Log("sa.T1")[0].Atoms[0]; !got.Equal(hocl.Ident("GOODATOM")) {
		t.Errorf("log atom slice is not isolated: %v", got)
	}
}
