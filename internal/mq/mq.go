// Package mq provides the messaging middleware service agents coordinate
// through (paper §IV-A: "the inter-agents communications rely on a
// message queue middleware which can be either Apache ActiveMQ or
// Kafka"). Two brokers are implemented:
//
//   - QueueBroker stands in for ActiveMQ: in-memory topics, low
//     per-message latency, no persistence — messages delivered to a dead
//     consumer are gone.
//   - LogBroker stands in for Kafka: an append-only log per topic that
//     survives consumer crashes and can be replayed from the beginning,
//     which is exactly the ability the paper's §IV-B recovery mechanism
//     exploits; its per-message latency is higher (the paper measures
//     roughly 4× slower executions, Fig. 14).
//
// Delivery latency is modelled on the cluster clock, so broker choice
// shapes experiment timings the same way it does in the paper.
//
// # Sharding
//
// The broker is partitioned into independent shards (DESIGN.md "Broker
// internals"). Every topic routes through exactly one shard, selected by
// hashing its session-namespace prefix (ShardKey): all topics of one
// Manager session — "wf3.sa.T1", "wf3.ginflow.space" — share a shard, so
// a session's messages queue only behind their own session's traffic,
// while concurrent sessions spread over the shard set instead of
// contending on one lock and one modelled middleware occupancy. Topics
// outside a session namespace hash individually over the same shard
// set, so standalone (un-namespaced) traffic spreads too instead of
// serializing on one default shard's occupancy.
//
// # Batch delivery
//
// Deliveries are batched per subscriber: the broker accumulates a
// subscriber's pending messages and hands over everything due as one
// []Message (Subscription.Batches), so a burst of publishes costs one
// hand-off instead of one channel operation per message. The classic
// per-message feed (Subscription.C) remains as a flattening adapter.
package mq

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/obs"
)

// Message is one published datum. A message carries its content in one of
// two forms:
//
//   - textual: Payload holds HOCL molecule text (the original wire
//     format, still used by external producers and the CLI);
//   - structural: Atoms holds pre-built molecules shared by reference —
//     the zero-reparse path (DESIGN.md). Payload is empty and Text()
//     renders on demand for logs and debugging.
//
// Structural payloads are frozen: the publisher hands over atoms it will
// no longer mutate, and consumers must not mutate them either (the same
// atoms may be shared by other subscribers and by the broker's replay
// log). hocl.Shareable tells a consumer whether an atom can be ingested
// into a reducing solution by reference or must be cloned first.
type Message struct {
	Topic   string
	Payload string
	Atoms   []hocl.Atom
	// Offset is the message's position in its topic's log (LogBroker
	// only; -1 for QueueBroker deliveries).
	Offset int
}

// Structural reports whether the message carries a structural payload.
func (m Message) Structural() bool { return m.Atoms != nil }

// Text returns the textual form of the payload, rendering structural
// payloads on demand. This is the logging/CLI accessor; hot paths consume
// Atoms directly.
func (m Message) Text() string {
	if m.Atoms != nil {
		return hocl.FormatMolecules(m.Atoms)
	}
	return m.Payload
}

// Broker is the pub/sub surface agents use.
type Broker interface {
	// Publish sends payload text to every current subscriber of topic
	// after the broker's modelled latency.
	Publish(topic, payload string) error
	// PublishAtoms sends a structural payload: the pre-built molecules
	// are delivered (and, on a log broker, retained) by reference, never
	// rendered or re-parsed. The caller must not mutate the atoms after
	// publishing.
	PublishAtoms(topic string, atoms []hocl.Atom) error
	// Subscribe registers a consumer. Messages published after the
	// subscription are delivered on C (per message) or Batches (in
	// due-order batches).
	Subscribe(topic string) (*Subscription, error)
	// Published returns the total number of messages accepted, an
	// instrumentation counter for the experiment reports.
	Published() int64
	// PublishedPrefix returns the number of messages accepted for topics
	// sharing the given prefix — the per-session message count of a
	// long-lived broker multiplexing namespaced workflow runs.
	PublishedPrefix(prefix string) int64
	// Topics returns the topics under the given prefix that still hold
	// broker state (subscriber lists, retained logs, counters) on any
	// shard, sorted. An empty prefix lists everything.
	Topics(prefix string) []string
	// PurgeTopics drops all broker state for topics sharing the given
	// prefix — subscriber registrations, retained logs and counters, on
	// every shard — and reports how many topics were purged. Sessions
	// call it on completion so a long-lived broker does not accumulate
	// state for every workflow ever run. Purging does not close
	// subscriber channels; consumers still own their Subscription
	// lifecycles.
	PurgeTopics(prefix string) int
	// ShardCount returns the number of independent shards the broker
	// routes topics through.
	ShardCount() int
	// ShardTopics returns the topics under prefix that hold state on one
	// specific shard, sorted — the per-shard view of Topics, for
	// observability and leak checks.
	ShardTopics(shard int, prefix string) []string
	// Close shuts the broker down; subsequent publishes fail.
	Close() error
}

// Replayable is the additional capability of log-backed brokers: the
// persisted history of a topic, used to rebuild a crashed agent's state
// ("we exploit the ability of Kafka to persist the messages ... and to
// replay them on demand", §IV-B).
type Replayable interface {
	Broker
	// Log returns a copy of every message ever published to topic, in
	// publication order.
	Log(topic string) []Message
}

// DefaultShards is the default number of broker shards. A session's
// topics stay on one shard (see ShardKey) while different sessions hash
// apart; topics outside any session namespace are routed by their full
// name, so standalone traffic also spreads over the shard set.
const DefaultShards = 8

// ShardKey extracts the routing key of a topic: its session-namespace
// prefix ("wf<id>.", as minted by the Manager) when present, else the
// empty key. Keying on the namespace keeps all of one session's topics
// on one shard — a session's delivery order and middleware occupancy
// are self-contained — while different sessions hash apart. Topics with
// the empty key are routed by their full name (shardIndex), so
// standalone traffic spreads over the shards instead of serializing.
func ShardKey(topic string) string {
	if len(topic) > 3 && topic[0] == 'w' && topic[1] == 'f' {
		i := 2
		for i < len(topic) && topic[i] >= '0' && topic[i] <= '9' {
			i++
		}
		if i > 2 && i < len(topic) && topic[i] == '.' {
			return topic[:i+1]
		}
	}
	return ""
}

// subscriberBuffer bounds the per-message compatibility feed (C); the
// batch path hands off synchronously and buffers pending messages
// internally instead.
const subscriberBuffer = 4096

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = fmt.Errorf("mq: broker closed")

// ErrCancelled is returned by Next on a cancelled subscription.
var ErrCancelled = fmt.Errorf("mq: subscription cancelled")

// timedMsg pairs a message with its earliest delivery instant in model
// seconds on the broker's clock. Real-mode consumers convert the model
// instant back to a scaled real-time wait; virtual-mode consumers hand
// it to the discrete-event scheduler.
type timedMsg struct {
	msg Message
	due float64
}

// shard is one independent partition of the broker: its own subscriber
// table, its own per-topic counters and its own modelled middleware
// occupancy. Messages on different shards never queue behind each other.
type shard struct {
	mu   sync.RWMutex
	subs map[string][]*subscriber

	// Per-shard observability series (nil until SetMetrics), handed to
	// subscribers at registration so the hot enqueue/hand-off paths touch
	// resolved instrument pointers only. Written under mu; read under mu
	// (Subscribe) — existing subscribers keep whatever they got, which is
	// why SetMetrics must run before traffic flows.
	metDeliveries *obs.Counter
	metBatches    *obs.Counter
	metPending    *obs.Gauge

	// qmu serialises the occupancy bookkeeping of this shard: a shard
	// models one middleware instance (partition), so its messages queue
	// behind each other. nextFree is the model-time instant the shard
	// finishes its current backlog. The per-topic publish counters
	// piggyback on the same critical section.
	qmu      sync.Mutex
	nextFree float64
	perTopic map[string]int64
}

// common implements the shared sharded pub/sub core. Each message is
// delivered after the broker's modelled latency, measured from its
// publication: deliveries are pipelined (a burst of publishes arrives one
// latency later, not serialized behind each other) while per-publisher
// FIFO order per topic is preserved, like an ActiveMQ queue or a Kafka
// partition. Order preservation matters: agents replace their status in
// the shared space, so a stale update must never overtake a fresh one.
type common struct {
	clock   *cluster.Clock
	latency float64 // model seconds per message (propagation)
	// svcTime is the modelled broker occupancy per message (float64
	// bits): the throughput bottleneck that makes message-heavy
	// workloads pay per message. Atomic so SetServiceTime does not
	// contend with delivery.
	svcTime atomic.Uint64

	shards []*shard

	// chaos, when set, perturbs delivery fan-out per (message,
	// subscriber): drop with bounded redelivery, duplicate, delay,
	// reorder. Atomic so installation needs no delivery-path lock.
	chaos atomic.Pointer[failure.Schedule]

	mu     sync.RWMutex
	closed bool

	nextID    atomic.Int64
	published atomic.Int64

	// metPublished / metBatchSize mirror the broker counters into an obs
	// registry once SetMetrics runs. Atomic pointers: installation needs
	// no publish-path lock, and obs instruments are nil-receiver-safe so
	// the unmetered path pays one pointer load.
	metPublished atomic.Pointer[obs.Counter]
	metBatchSize atomic.Pointer[obs.Histogram]
}

func newCommon(clock *cluster.Clock, latency, svcTime float64, nshards int) *common {
	if nshards <= 0 {
		nshards = DefaultShards
	}
	c := &common{clock: clock, latency: latency, shards: make([]*shard, nshards)}
	c.svcTime.Store(math.Float64bits(svcTime))
	for i := range c.shards {
		c.shards[i] = &shard{subs: map[string][]*subscriber{}, perTopic: map[string]int64{}}
	}
	return c
}

// shardFor routes a topic to its shard by FNV-1a over its ShardKey.
func (c *common) shardFor(topic string) *shard {
	return c.shards[c.shardIndex(topic)]
}

func (c *common) shardIndex(topic string) int {
	key := ShardKey(topic)
	if key == "" {
		// No session namespace: hash the full topic so standalone topics
		// spread over the shard set instead of all serializing behind one
		// default shard's modelled occupancy.
		key = topic
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * 1099511628211
	}
	return int(h % uint64(len(c.shards)))
}

// ShardCount returns the number of shards.
func (c *common) ShardCount() int { return len(c.shards) }

// SetMetrics registers the broker's observability series on reg (nil
// takes the process default registry): total publishes, per-shard
// delivery and batch counters, per-shard pending-depth gauges and a
// batch-size histogram. Call before any traffic flows — subscribers
// capture their shard's instruments at Subscribe time.
func (c *common) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default()
	}
	c.metPublished.Store(reg.Counter("ginflow_mq_published_total",
		"Messages accepted by the broker (all topics, all shards)."))
	c.metBatchSize.Store(reg.Histogram("ginflow_mq_batch_size",
		"Messages per delivery batch handed to a subscriber.", obs.BatchSizeBuckets))
	for i, sh := range c.shards {
		lbl := obs.L("shard", strconv.Itoa(i))
		d := reg.Counter("ginflow_mq_deliveries_total",
			"Messages enqueued to subscribers, per shard (duplicates from chaos included).", lbl)
		b := reg.Counter("ginflow_mq_delivery_batches_total",
			"Delivery batches handed to subscribers, per shard.", lbl)
		p := reg.Gauge("ginflow_mq_pending_messages",
			"Messages enqueued but not yet handed to their subscriber, per shard.", lbl)
		sh.mu.Lock()
		sh.metDeliveries, sh.metBatches, sh.metPending = d, b, p
		sh.mu.Unlock()
	}
}

// subscriber is one consumer's delivery state: an unbounded pending
// queue filled by publishers and drained by a per-subscriber goroutine
// that hands due messages over in batches.
type subscriber struct {
	id int64

	// clock translates model due instants into waits: a scaled real
	// sleep in real mode, a scheduler timer in virtual mode. nil for
	// push-fed subscriptions, whose messages are always already due.
	clock *cluster.Clock
	// vcond, set when the clock is virtual, signals "queue became
	// non-empty" to a participant parked in Next. Virtual subscribers
	// have no drain goroutine: delivery happens inside the consumer's
	// Next/TryNext calls, keeping the single-run-token schedule sound.
	vcond *cluster.Cond

	mu    sync.Mutex
	queue []timedMsg
	spare []timedMsg // recycled backing array for queue swaps

	wake chan struct{} // cap 1: "queue is non-empty" signal
	out  chan []Message
	done chan struct{}

	// bufs double-buffer the delivered batch slices: the consumer owns a
	// delivered slice only until its next receive from out, so the two
	// buffers alternate without allocation in steady state.
	bufs [2][]Message
	cur  int

	// flat is the per-message compatibility feed, materialised on first
	// use of Subscription.C.
	flatOnce sync.Once
	flat     chan Message

	// Observability instruments captured from the shard at Subscribe.
	// All nil for push-fed subscriptions and unmetered brokers — obs
	// instruments are nil-receiver-safe, so the hot paths never branch.
	metDeliveries *obs.Counter
	metBatches    *obs.Counter
	metPending    *obs.Gauge
	metBatchSize  *obs.Histogram
}

// enqueue appends a delivery without blocking the publisher.
func (s *subscriber) enqueue(tm timedMsg) {
	s.metDeliveries.Inc()
	s.metPending.Add(1)
	s.mu.Lock()
	s.queue = append(s.queue, tm)
	s.mu.Unlock()
	if s.vcond != nil {
		s.vcond.Broadcast()
		return
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// swapTail swaps the two newest pending deliveries — the chaos
// schedule's within-batch reorder. Only the messages swap; the due
// instants stay in place, so the due sequence the drain loop relies on
// remains monotone while the delivery order genuinely changes.
func (s *subscriber) swapTail() {
	s.mu.Lock()
	if n := len(s.queue); n >= 2 {
		s.queue[n-1].msg, s.queue[n-2].msg = s.queue[n-2].msg, s.queue[n-1].msg
	}
	s.mu.Unlock()
}

// drain moves pending messages to the consumer in due-order batches: it
// swaps the whole pending queue out under the lock (recycling the backing
// arrays), waits for the head's due instant, then hands over every
// message already due as one batch. Because due instants are
// non-decreasing in enqueue order, waiting for the head never delays a
// message behind a later one.
func (s *subscriber) drain() {
	for {
		select {
		case <-s.done:
			return
		case <-s.wake:
		}
		for {
			s.mu.Lock()
			batch := s.queue
			if len(batch) == 0 {
				s.mu.Unlock()
				break
			}
			// Hand the spare array over to the queue and drop our
			// reference: the queue now owns it exclusively, so the batch
			// being flushed can never alias the array publishers append
			// to. The flushed batch's array becomes the next spare.
			s.queue = s.spare[:0]
			s.spare = nil
			s.mu.Unlock()
			if !s.flush(batch) {
				return
			}
			s.spare = batch[:0]
		}
	}
}

// flush delivers one swapped-out run of pending messages, splitting it at
// due boundaries; it reports false when the subscription was cancelled.
func (s *subscriber) flush(batch []timedMsg) bool {
	for len(batch) > 0 {
		var now float64
		if s.clock != nil {
			if d := batch[0].due - s.clock.Now(); d > 0 {
				s.clock.Sleep(d)
			}
			now = s.clock.Now()
		}
		cut := 1
		for cut < len(batch) && batch[cut].due <= now {
			cut++
		}
		buf := s.bufs[s.cur][:0]
		for i := 0; i < cut; i++ {
			buf = append(buf, batch[i].msg)
		}
		s.bufs[s.cur] = buf
		select {
		case s.out <- buf:
			s.cur = 1 - s.cur
			s.metBatches.Inc()
			s.metBatchSize.Observe(float64(len(buf)))
			s.metPending.Add(-float64(len(buf)))
		case <-s.done:
			return false
		}
		batch = batch[cut:]
	}
	return true
}

// flatten adapts the batch hand-off to the per-message C feed.
func (s *subscriber) flatten() {
	for {
		select {
		case <-s.done:
			return
		case batch := <-s.out:
			for _, m := range batch {
				select {
				case s.flat <- m:
				case <-s.done:
					return
				}
			}
		}
	}
}

// Subscription is one consumer's feed. Consume either per message (C) or
// in batches (Batches), not both.
type Subscription struct {
	sub    *subscriber
	cancel func()
	once   sync.Once
}

// C returns the per-message delivery channel. It is never closed;
// consumers should select against their own shutdown signal.
func (s *Subscription) C() <-chan Message {
	s.sub.flatOnce.Do(func() {
		s.sub.flat = make(chan Message, subscriberBuffer)
		go s.sub.flatten()
	})
	return s.sub.flat
}

// Batches returns the batch delivery channel: each receive yields every
// pending message whose modelled delivery instant has passed, in
// publication order. The delivered slice is owned by the broker and
// recycled — the consumer must finish with it (or copy it) before its
// next receive from the channel, and must not retain it. The channel is
// never closed; consumers select against their own shutdown signal.
func (s *Subscription) Batches() <-chan []Message { return s.sub.out }

// Next blocks until at least one message is due and returns every due
// pending message as one batch, in delivery order. It is the consumer
// call for virtual-clock brokers, where there is no drain goroutine:
// the caller must be a schedule participant, and the wait for the head
// message's due instant runs on the discrete-event scheduler (so model
// time advances exactly to it). On a real-clock broker Next also works
// — it waits on the subscriber queue directly — but C/Batches and Next
// must not be mixed on one subscription. The returned slice is owned by
// the caller.
func (s *Subscription) Next(ctx context.Context) ([]Message, error) {
	sub := s.sub
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		select {
		case <-sub.done:
			return nil, ErrCancelled
		default:
		}
		var now float64
		if sub.clock != nil {
			now = sub.clock.Now()
		}
		sub.mu.Lock()
		if len(sub.queue) > 0 {
			head := sub.queue[0].due
			if head <= now || sub.clock == nil {
				batch := sub.takeDueLocked(now)
				sub.mu.Unlock()
				return batch, nil
			}
			sub.mu.Unlock()
			if err := sub.clock.SleepCtx(ctx, head-now); err != nil {
				return nil, err
			}
			continue
		}
		sub.mu.Unlock()
		if sub.vcond != nil {
			if err := sub.vcond.Wait(ctx); err != nil {
				return nil, err
			}
			continue
		}
		// Real clock: wait for the enqueue signal.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-sub.done:
			return nil, ErrCancelled
		case <-sub.wake:
		}
	}
}

// TryNext returns every pending message already due as one batch, or
// nil when nothing is due yet. It never blocks and never advances model
// time. The returned slice is owned by the caller.
func (s *Subscription) TryNext() []Message {
	sub := s.sub
	var now float64
	if sub.clock != nil {
		now = sub.clock.Now()
	}
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if len(sub.queue) == 0 || (sub.clock != nil && sub.queue[0].due > now) {
		return nil
	}
	return sub.takeDueLocked(now)
}

// takeDueLocked removes and returns the due prefix of the pending
// queue. Caller holds sub.mu and has checked the head is due.
func (sub *subscriber) takeDueLocked(now float64) []Message {
	cut := 1
	if sub.clock != nil {
		for cut < len(sub.queue) && sub.queue[cut].due <= now {
			cut++
		}
	} else {
		cut = len(sub.queue)
	}
	batch := make([]Message, cut)
	for i := 0; i < cut; i++ {
		batch[i] = sub.queue[i].msg
	}
	n := copy(sub.queue, sub.queue[cut:])
	for i := n; i < len(sub.queue); i++ {
		sub.queue[i] = timedMsg{}
	}
	sub.queue = sub.queue[:n]
	sub.metBatches.Inc()
	sub.metBatchSize.Observe(float64(cut))
	sub.metPending.Add(-float64(cut))
	return batch
}

// Cancel detaches the consumer; pending deliveries are dropped, which is
// how a crashed agent loses its in-flight messages on a queue broker.
func (s *Subscription) Cancel() { s.once.Do(s.cancel) }

func (c *common) Subscribe(topic string) (*Subscription, error) {
	sub := &subscriber{
		id:    c.nextID.Add(1),
		clock: c.clock,
		wake:  make(chan struct{}, 1),
		out:   make(chan []Message),
		done:  make(chan struct{}),
	}
	if c.clock.Virtual() {
		sub.vcond = c.clock.NewCond()
	}
	sh := c.shardFor(topic)
	// The closed-check must stay atomic with registration (a concurrent
	// Close between them would hand out a subscription on a closed
	// broker), so the broker read-lock is held across both; Close's
	// write-lock then serialises against in-flight subscribes.
	c.mu.RLock()
	if c.closed {
		c.mu.RUnlock()
		return nil, ErrClosed
	}
	sh.mu.Lock()
	sh.subs[topic] = append(sh.subs[topic], sub)
	sub.metDeliveries, sub.metBatches, sub.metPending = sh.metDeliveries, sh.metBatches, sh.metPending
	sub.metBatchSize = c.metBatchSize.Load()
	sh.mu.Unlock()
	c.mu.RUnlock()
	if sub.vcond == nil {
		go sub.drain()
	}
	return &Subscription{
		sub: sub,
		cancel: func() {
			close(sub.done)
			c.removeSub(sh, topic, sub.id)
		},
	}, nil
}

// pushSubIDs numbers push-fed subscriptions; they never register on a
// broker shard, so the counter only needs to be unique among themselves.
var pushSubIDs atomic.Int64

// NewPushSubscription builds a Subscription fed by the returned push
// function instead of a local broker shard — the consumer half of a
// remote transport. Each pushed message is due immediately (its modelled
// latency already elapsed on the serving broker before the bytes hit
// the wire); the batch/drain machinery behind Batches and C behaves
// exactly as for a broker-fed subscription, including the recycled-
// batch ownership contract. onCancel, when non-nil, runs once when the
// subscription is cancelled (e.g. to tell the remote side to stop
// forwarding). Pushing after cancellation is safe and delivers nothing.
func NewPushSubscription(onCancel func()) (*Subscription, func(msgs []Message)) {
	sub := &subscriber{
		id:   pushSubIDs.Add(1),
		wake: make(chan struct{}, 1),
		out:  make(chan []Message),
		done: make(chan struct{}),
	}
	go sub.drain()
	push := func(msgs []Message) {
		sub.mu.Lock()
		for i := range msgs {
			// due 0: already elapsed (the subscriber has no clock; flush
			// treats every message as due).
			sub.queue = append(sub.queue, timedMsg{msg: msgs[i]})
		}
		sub.mu.Unlock()
		select {
		case sub.wake <- struct{}{}:
		default:
		}
	}
	return &Subscription{
		sub: sub,
		cancel: func() {
			close(sub.done)
			if onCancel != nil {
				onCancel()
			}
		},
	}, push
}

func (c *common) removeSub(sh *shard, topic string, id int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	list := sh.subs[topic]
	for i, s := range list {
		if s.id == id {
			sh.subs[topic] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// deliver fans msg out to the topic's current subscribers on its shard.
// The message first queues for the shard (occupying it for svcTime — the
// per-partition throughput bottleneck), then propagates for latency. The
// resulting due instant is monotonically non-decreasing across publishes
// on one shard, so per-subscriber FIFO order is preserved. Enqueueing
// never blocks: backpressure moved from the publisher to the consumer's
// batch hand-off.
func (c *common) deliver(msg Message) {
	c.metPublished.Load().Inc()
	sh := c.shardFor(msg.Topic)
	svc := math.Float64frombits(c.svcTime.Load())
	now := c.clock.Now()
	sh.qmu.Lock()
	start := now
	if sh.nextFree > now {
		start = sh.nextFree
	}
	sh.nextFree = start + svc
	due := sh.nextFree + c.latency
	sh.perTopic[msg.Topic]++
	sh.qmu.Unlock()

	tm := timedMsg{msg: msg, due: due}
	ch := c.chaos.Load()
	sh.mu.RLock()
	for _, sub := range sh.subs[msg.Topic] {
		if ch == nil {
			sub.enqueue(tm)
			continue
		}
		c.chaosEnqueue(ch, sub, tm, 0)
	}
	sh.mu.RUnlock()
}

// SetServiceTime overrides the per-message broker occupancy (model
// seconds). Call before any traffic flows; 0 disables queueing.
func (c *common) SetServiceTime(s float64) {
	c.svcTime.Store(math.Float64bits(s))
}

// Published returns the total number of messages accepted.
func (c *common) Published() int64 { return c.published.Load() }

// PublishedPrefix sums the per-topic publish counters over topics with
// the given prefix, across all shards. An empty prefix matches everything
// still counted (purged topics no longer contribute).
func (c *common) PublishedPrefix(prefix string) int64 {
	var n int64
	for _, sh := range c.shards {
		sh.qmu.Lock()
		for topic, count := range sh.perTopic {
			if strings.HasPrefix(topic, prefix) {
				n += count
			}
		}
		sh.qmu.Unlock()
	}
	return n
}

// shardTopics collects the topics under prefix holding subscriber or
// counter state on one shard.
func (c *common) shardTopics(sh *shard, prefix string, seen map[string]bool) {
	sh.mu.RLock()
	for topic, list := range sh.subs {
		if len(list) > 0 && strings.HasPrefix(topic, prefix) {
			seen[topic] = true
		}
	}
	sh.mu.RUnlock()
	sh.qmu.Lock()
	for topic := range sh.perTopic {
		if strings.HasPrefix(topic, prefix) {
			seen[topic] = true
		}
	}
	sh.qmu.Unlock()
}

// Topics lists topics under prefix that hold subscriber or counter state
// on any shard.
func (c *common) Topics(prefix string) []string {
	seen := map[string]bool{}
	for _, sh := range c.shards {
		c.shardTopics(sh, prefix, seen)
	}
	return sortedKeys(seen)
}

// ShardTopics lists topics under prefix holding state on the given shard.
func (c *common) ShardTopics(shard int, prefix string) []string {
	seen := map[string]bool{}
	c.shardTopics(c.shards[shard], prefix, seen)
	return sortedKeys(seen)
}

func sortedKeys(seen map[string]bool) []string {
	out := make([]string, 0, len(seen))
	for topic := range seen {
		out = append(out, topic)
	}
	sort.Strings(out)
	return out
}

// PurgeTopics drops subscriber registrations and counters for topics
// with the given prefix on every shard. Subscriber done-channels are left
// untouched — closing them is the owning Subscription's job — so a purged
// consumer simply stops receiving.
func (c *common) PurgeTopics(prefix string) int {
	return len(c.purge(prefix))
}

// purge removes the common state under prefix across shards and returns
// the set of topics that held any, so broker variants can union in their
// own state (the log broker adds its retained logs) without re-scanning.
func (c *common) purge(prefix string) map[string]bool {
	purged := map[string]bool{}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for topic, list := range sh.subs {
			if strings.HasPrefix(topic, prefix) {
				if len(list) > 0 {
					purged[topic] = true
				}
				delete(sh.subs, topic)
			}
		}
		sh.mu.Unlock()
		sh.qmu.Lock()
		for topic := range sh.perTopic {
			if strings.HasPrefix(topic, prefix) {
				purged[topic] = true
				delete(sh.perTopic, topic)
			}
		}
		sh.qmu.Unlock()
	}
	return purged
}

// Close shuts the broker down; subsequent publishes and subscriptions
// fail with ErrClosed.
func (c *common) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *common) checkOpen() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	return nil
}

// QueueBroker is the ActiveMQ-like broker: fast, volatile.
type QueueBroker struct {
	*common
}

// DefaultQueueLatency is the modelled per-message latency of the queue
// broker, in model seconds. Model constants are calibrated so that, at
// the default clock scale (1 ms of real time per model second), every
// modelled sleep sits above the host's ~1.2 ms timer granularity; the
// absolute values are arbitrary, the ratios are what the experiments
// reproduce.
const DefaultQueueLatency = 2.0

// DefaultQueueServiceTime is the broker occupancy per message for the
// queue broker: the throughput term behind Fig. 12(b)'s fully-connected
// slowdown (hundreds of messages per layer share one middleware
// partition).
const DefaultQueueServiceTime = 0.01

// NewQueueBroker builds a queue broker on the given clock with
// DefaultShards shards. latency <= 0 takes DefaultQueueLatency.
func NewQueueBroker(clock *cluster.Clock, latency float64) *QueueBroker {
	return NewQueueBrokerSharded(clock, latency, DefaultShards)
}

// NewQueueBrokerSharded builds a queue broker with an explicit shard
// count (<= 0 takes DefaultShards; 1 reproduces the unsharded broker).
func NewQueueBrokerSharded(clock *cluster.Clock, latency float64, shards int) *QueueBroker {
	if latency <= 0 {
		latency = DefaultQueueLatency
	}
	return &QueueBroker{common: newCommon(clock, latency, DefaultQueueServiceTime, shards)}
}

// Publish delivers to current subscribers only; nothing is retained.
func (b *QueueBroker) Publish(topic, payload string) error {
	if err := b.checkOpen(); err != nil {
		return err
	}
	b.published.Add(1)
	b.deliver(Message{Topic: topic, Payload: payload, Offset: -1})
	return nil
}

// PublishAtoms delivers a structural payload to current subscribers only.
func (b *QueueBroker) PublishAtoms(topic string, atoms []hocl.Atom) error {
	if err := b.checkOpen(); err != nil {
		return err
	}
	b.published.Add(1)
	b.deliver(Message{Topic: topic, Atoms: atoms, Offset: -1})
	return nil
}

// logShard is one shard's slice of the retained logs, so log appends
// contend only within a shard, like Kafka partitions.
type logShard struct {
	mu   sync.RWMutex
	logs map[string][]Message
}

// LogBroker is the Kafka-like broker: append-only persisted topics with
// replay, at a higher per-message cost. Logs are sharded alongside the
// delivery state: a topic's log lives on the same shard its deliveries
// route through.
type LogBroker struct {
	*common
	logShards []*logShard

	// observer, when set, sees every accepted publish — the journal's
	// inbox write-through point (DESIGN.md "Fault model & chaos
	// harness").
	observer atomic.Pointer[func(Message)]
}

// DefaultLogLatency is the modelled per-message latency of the log
// broker: 4× the queue broker, matching the paper's Fig. 14 observation.
const DefaultLogLatency = 4 * DefaultQueueLatency // 8.0

// DefaultLogServiceTime is the broker occupancy per message of the log
// broker: persistence costs throughput as well; the 4x per-message ratio
// carries over (Fig. 14).
const DefaultLogServiceTime = 4 * DefaultQueueServiceTime // 0.04

// NewLogBroker builds a log broker on the given clock with DefaultShards
// shards. latency <= 0 takes DefaultLogLatency.
func NewLogBroker(clock *cluster.Clock, latency float64) *LogBroker {
	return NewLogBrokerSharded(clock, latency, DefaultShards)
}

// NewLogBrokerSharded builds a log broker with an explicit shard count
// (<= 0 takes DefaultShards; 1 reproduces the unsharded broker).
func NewLogBrokerSharded(clock *cluster.Clock, latency float64, shards int) *LogBroker {
	if latency <= 0 {
		latency = DefaultLogLatency
	}
	c := newCommon(clock, latency, DefaultLogServiceTime, shards)
	ls := make([]*logShard, len(c.shards))
	for i := range ls {
		ls[i] = &logShard{logs: map[string][]Message{}}
	}
	return &LogBroker{common: c, logShards: ls}
}

// Publish appends to the topic log, then delivers to subscribers.
func (b *LogBroker) Publish(topic, payload string) error {
	return b.append(Message{Topic: topic, Payload: payload})
}

// PublishAtoms appends a structural payload to the topic log, then
// delivers it. The log retains the atoms by reference: replay hands the
// same frozen molecules back, so recovery pays no re-parse either.
func (b *LogBroker) PublishAtoms(topic string, atoms []hocl.Atom) error {
	return b.append(Message{Topic: topic, Atoms: atoms})
}

func (b *LogBroker) append(msg Message) error {
	if err := b.checkOpen(); err != nil {
		return err
	}
	b.published.Add(1)
	ls := b.logShards[b.shardIndex(msg.Topic)]
	ls.mu.Lock()
	msg.Offset = len(ls.logs[msg.Topic])
	ls.logs[msg.Topic] = append(ls.logs[msg.Topic], msg)
	ls.mu.Unlock()
	// The observer runs outside the log-shard lock (it may take locks of
	// its own, e.g. the journal writer's) and before delivery, so a
	// journaled message is durable before any consumer can act on it.
	if obs := b.observer.Load(); obs != nil {
		(*obs)(msg)
	}
	b.deliver(msg)
	return nil
}

// SetPublishObserver registers fn, invoked synchronously for every
// accepted publish, after the message is appended to the log and before
// it is delivered. One observer at a time; install it before traffic
// flows. The Manager uses it to journal agent inboxes write-through.
func (b *LogBroker) SetPublishObserver(fn func(Message)) {
	if fn == nil {
		b.observer.Store(nil)
		return
	}
	b.observer.Store(&fn)
}

// RestoreLog replaces a topic's retained log with msgs, renumbering
// offsets. Crash recovery uses it to re-seed a fresh process's broker
// with the journaled inbox history, so an agent that crashes again
// after resume still replays its pre-crash messages. Nothing is
// delivered; only the replay history changes.
func (b *LogBroker) RestoreLog(topic string, msgs []Message) {
	log := make([]Message, len(msgs))
	for i, m := range msgs {
		m.Topic = topic
		m.Offset = i
		log[i] = m
	}
	ls := b.logShards[b.shardIndex(topic)]
	ls.mu.Lock()
	ls.logs[topic] = log
	ls.mu.Unlock()
}

// Topics lists topics under prefix holding subscriber, counter or log
// state on any shard.
func (b *LogBroker) Topics(prefix string) []string {
	seen := map[string]bool{}
	for i, sh := range b.shards {
		b.shardTopics(sh, prefix, seen)
		b.logTopics(i, prefix, seen)
	}
	return sortedKeys(seen)
}

// ShardTopics lists topics under prefix holding subscriber, counter or
// log state on the given shard.
func (b *LogBroker) ShardTopics(shard int, prefix string) []string {
	seen := map[string]bool{}
	b.shardTopics(b.shards[shard], prefix, seen)
	b.logTopics(shard, prefix, seen)
	return sortedKeys(seen)
}

func (b *LogBroker) logTopics(shard int, prefix string, seen map[string]bool) {
	ls := b.logShards[shard]
	ls.mu.RLock()
	for topic := range ls.logs {
		if strings.HasPrefix(topic, prefix) {
			seen[topic] = true
		}
	}
	ls.mu.RUnlock()
}

// PurgeTopics additionally drops the retained logs under prefix — the
// piece of per-workflow state that would otherwise grow without bound in
// a long-lived log broker (replay is only meaningful within a session).
func (b *LogBroker) PurgeTopics(prefix string) int {
	purged := b.common.purge(prefix)
	for _, ls := range b.logShards {
		ls.mu.Lock()
		for topic := range ls.logs {
			if strings.HasPrefix(topic, prefix) {
				purged[topic] = true
				delete(ls.logs, topic)
			}
		}
		ls.mu.Unlock()
	}
	return len(purged)
}

// Log returns a copy of the topic's full history. Atom slices are copied
// per message so a caller cannot swap molecules inside the log; the atoms
// themselves are shared (they are frozen by the publish contract).
func (b *LogBroker) Log(topic string) []Message {
	ls := b.logShards[b.shardIndex(topic)]
	ls.mu.RLock()
	defer ls.mu.RUnlock()
	out := append([]Message(nil), ls.logs[topic]...)
	for i := range out {
		if out[i].Atoms != nil {
			out[i].Atoms = append([]hocl.Atom(nil), out[i].Atoms...)
		}
	}
	return out
}

var (
	_ Broker     = (*QueueBroker)(nil)
	_ Replayable = (*LogBroker)(nil)
)

// Kind names a broker implementation in configs and CLIs.
type Kind string

// The broker kinds of the paper's deployment (§IV-A).
const (
	KindQueue Kind = "activemq"
	KindLog   Kind = "kafka"
)

// NewBroker builds a broker of the given kind with its default latency
// and DefaultShards shards.
func NewBroker(kind Kind, clock *cluster.Clock) (Broker, error) {
	return NewBrokerSharded(kind, clock, DefaultShards)
}

// NewBrokerSharded builds a broker of the given kind with its default
// latency and an explicit shard count (<= 0 takes DefaultShards).
func NewBrokerSharded(kind Kind, clock *cluster.Clock, shards int) (Broker, error) {
	switch kind {
	case KindQueue:
		return NewQueueBrokerSharded(clock, 0, shards), nil
	case KindLog:
		return NewLogBrokerSharded(clock, 0, shards), nil
	default:
		return nil, fmt.Errorf("mq: unknown broker kind %q (want %q or %q)", kind, KindQueue, KindLog)
	}
}
