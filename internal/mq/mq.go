// Package mq provides the messaging middleware service agents coordinate
// through (paper §IV-A: "the inter-agents communications rely on a
// message queue middleware which can be either Apache ActiveMQ or
// Kafka"). Two brokers are implemented:
//
//   - QueueBroker stands in for ActiveMQ: in-memory topics, low
//     per-message latency, no persistence — messages delivered to a dead
//     consumer are gone.
//   - LogBroker stands in for Kafka: an append-only log per topic that
//     survives consumer crashes and can be replayed from the beginning,
//     which is exactly the ability the paper's §IV-B recovery mechanism
//     exploits; its per-message latency is higher (the paper measures
//     roughly 4× slower executions, Fig. 14).
//
// Delivery latency is modelled on the cluster clock, so broker choice
// shapes experiment timings the same way it does in the paper.
package mq

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/hocl"
)

// Message is one published datum. A message carries its content in one of
// two forms:
//
//   - textual: Payload holds HOCL molecule text (the original wire
//     format, still used by external producers and the CLI);
//   - structural: Atoms holds pre-built molecules shared by reference —
//     the zero-reparse path (DESIGN.md). Payload is empty and Text()
//     renders on demand for logs and debugging.
//
// Structural payloads are frozen: the publisher hands over atoms it will
// no longer mutate, and consumers must not mutate them either (the same
// atoms may be shared by other subscribers and by the broker's replay
// log). hocl.Shareable tells a consumer whether an atom can be ingested
// into a reducing solution by reference or must be cloned first.
type Message struct {
	Topic   string
	Payload string
	Atoms   []hocl.Atom
	// Offset is the message's position in its topic's log (LogBroker
	// only; -1 for QueueBroker deliveries).
	Offset int
}

// Structural reports whether the message carries a structural payload.
func (m Message) Structural() bool { return m.Atoms != nil }

// Text returns the textual form of the payload, rendering structural
// payloads on demand. This is the logging/CLI accessor; hot paths consume
// Atoms directly.
func (m Message) Text() string {
	if m.Atoms != nil {
		return hocl.FormatMolecules(m.Atoms)
	}
	return m.Payload
}

// Broker is the pub/sub surface agents use.
type Broker interface {
	// Publish sends payload text to every current subscriber of topic
	// after the broker's modelled latency.
	Publish(topic, payload string) error
	// PublishAtoms sends a structural payload: the pre-built molecules
	// are delivered (and, on a log broker, retained) by reference, never
	// rendered or re-parsed. The caller must not mutate the atoms after
	// publishing.
	PublishAtoms(topic string, atoms []hocl.Atom) error
	// Subscribe registers a consumer. Messages published after the
	// subscription are delivered on C.
	Subscribe(topic string) (*Subscription, error)
	// Published returns the total number of messages accepted, an
	// instrumentation counter for the experiment reports.
	Published() int64
	// PublishedPrefix returns the number of messages accepted for topics
	// sharing the given prefix — the per-session message count of a
	// long-lived broker multiplexing namespaced workflow runs.
	PublishedPrefix(prefix string) int64
	// Topics returns the topics under the given prefix that still hold
	// broker state (subscriber lists, retained logs, counters), sorted.
	// An empty prefix lists everything.
	Topics(prefix string) []string
	// PurgeTopics drops all broker state for topics sharing the given
	// prefix — subscriber registrations, retained logs and counters —
	// and reports how many topics were purged. Sessions call it on
	// completion so a long-lived broker does not accumulate state for
	// every workflow ever run. Purging does not close subscriber
	// channels; consumers still own their Subscription lifecycles.
	PurgeTopics(prefix string) int
	// Close shuts the broker down; subsequent publishes fail.
	Close() error
}

// Replayable is the additional capability of log-backed brokers: the
// persisted history of a topic, used to rebuild a crashed agent's state
// ("we exploit the ability of Kafka to persist the messages ... and to
// replay them on demand", §IV-B).
type Replayable interface {
	Broker
	// Log returns a copy of every message ever published to topic, in
	// publication order.
	Log(topic string) []Message
}

// Subscription is one consumer's feed.
type Subscription struct {
	ch     chan Message
	cancel func()
	once   sync.Once
}

// C returns the delivery channel. It is never closed; consumers should
// select against their own shutdown signal.
func (s *Subscription) C() <-chan Message { return s.ch }

// Cancel detaches the consumer; pending deliveries are dropped, which is
// how a crashed agent loses its in-flight messages on a queue broker.
func (s *Subscription) Cancel() { s.once.Do(s.cancel) }

// subscriberBuffer bounds each consumer feed. Publishers block when a
// consumer falls this far behind (backpressure).
const subscriberBuffer = 4096

// ErrClosed is returned by operations on a closed broker.
var ErrClosed = fmt.Errorf("mq: broker closed")

// common implements the shared pub/sub core. Each message is delivered
// after the broker's modelled latency, measured from its publication:
// deliveries are pipelined (a burst of publishes arrives one latency
// later, not serialized behind each other) while per-publisher FIFO order
// is preserved, like an ActiveMQ queue or a Kafka partition. Order
// preservation matters: agents replace their status in the shared space,
// so a stale update must never overtake a fresh one.
type common struct {
	clock   *cluster.Clock
	latency float64 // model seconds per message (propagation)
	svcTime float64 // model seconds of broker occupancy per message

	mu     sync.RWMutex
	closed bool
	subs   map[string][]*subscriber
	nextID int64

	// qmu serialises the broker-occupancy bookkeeping: the broker is a
	// single shared middleware instance (as in the paper's deployment),
	// so bursts of messages queue behind each other. nextFree is the
	// real-time instant the broker finishes its current backlog. The
	// per-topic publish counters piggyback on the same critical section
	// (deliver already holds it exactly once per accepted message).
	qmu      sync.Mutex
	nextFree time.Time
	perTopic map[string]int64

	published atomic.Int64
}

type timedMsg struct {
	msg Message
	due time.Time // earliest real-time delivery instant
}

type subscriber struct {
	id   int64
	in   chan timedMsg // ordered internal queue
	ch   chan Message  // consumer-facing feed
	done chan struct{}
}

// drain delivers queued messages in order, each no earlier than its due
// instant. Because due instants are non-decreasing in enqueue order,
// waiting for the head never delays a message behind a later one.
func (s *subscriber) drain() {
	for {
		select {
		case <-s.done:
			return
		case tm := <-s.in:
			if d := time.Until(tm.due); d > 0 {
				time.Sleep(d)
			}
			select {
			case s.ch <- tm.msg:
			case <-s.done:
				return
			}
		}
	}
}

func newCommon(clock *cluster.Clock, latency, svcTime float64) *common {
	return &common{
		clock: clock, latency: latency, svcTime: svcTime,
		subs: map[string][]*subscriber{}, perTopic: map[string]int64{},
	}
}

func (c *common) Subscribe(topic string) (*Subscription, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	sub := &subscriber{
		id:   c.nextID,
		in:   make(chan timedMsg, subscriberBuffer),
		ch:   make(chan Message, subscriberBuffer),
		done: make(chan struct{}),
	}
	c.nextID++
	c.subs[topic] = append(c.subs[topic], sub)
	go sub.drain()
	return &Subscription{
		ch: sub.ch,
		cancel: func() {
			close(sub.done)
			c.removeSub(topic, sub.id)
		},
	}, nil
}

func (c *common) removeSub(topic string, id int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	list := c.subs[topic]
	for i, s := range list {
		if s.id == id {
			c.subs[topic] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// deliver fans msg out to the topic's current subscribers. The message
// first queues for the broker (occupying it for svcTime — the throughput
// bottleneck that makes message-heavy workloads such as the
// fully-connected diamond pay per message), then propagates for latency.
// The resulting due instant is monotonically non-decreasing across
// publishes, so per-subscriber FIFO order is preserved.
func (c *common) deliver(msg Message) {
	scale := float64(c.clock.Scale())
	now := time.Now()
	c.qmu.Lock()
	start := now
	if c.nextFree.After(now) {
		start = c.nextFree
	}
	c.nextFree = start.Add(time.Duration(c.svcTime * scale))
	due := c.nextFree.Add(time.Duration(c.latency * scale))
	c.perTopic[msg.Topic]++
	c.qmu.Unlock()

	c.mu.RLock()
	targets := append([]*subscriber(nil), c.subs[msg.Topic]...)
	c.mu.RUnlock()
	for _, sub := range targets {
		select {
		case sub.in <- timedMsg{msg: msg, due: due}:
		case <-sub.done:
		}
	}
}

// SetServiceTime overrides the per-message broker occupancy (model
// seconds). Call before any traffic flows; 0 disables queueing.
func (c *common) SetServiceTime(s float64) {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	c.svcTime = s
}

func (c *common) Published() int64 { return c.published.Load() }

// PublishedPrefix sums the per-topic publish counters over topics with
// the given prefix. An empty prefix matches everything still counted
// (purged topics no longer contribute).
func (c *common) PublishedPrefix(prefix string) int64 {
	c.qmu.Lock()
	defer c.qmu.Unlock()
	var n int64
	for topic, count := range c.perTopic {
		if strings.HasPrefix(topic, prefix) {
			n += count
		}
	}
	return n
}

// Topics lists topics under prefix that hold subscriber or counter state.
func (c *common) Topics(prefix string) []string {
	seen := map[string]bool{}
	c.mu.RLock()
	for topic, list := range c.subs {
		if len(list) > 0 && strings.HasPrefix(topic, prefix) {
			seen[topic] = true
		}
	}
	c.mu.RUnlock()
	c.qmu.Lock()
	for topic := range c.perTopic {
		if strings.HasPrefix(topic, prefix) {
			seen[topic] = true
		}
	}
	c.qmu.Unlock()
	out := make([]string, 0, len(seen))
	for topic := range seen {
		out = append(out, topic)
	}
	sort.Strings(out)
	return out
}

// PurgeTopics drops subscriber registrations and counters for topics
// with the given prefix. Subscriber done-channels are left untouched —
// closing them is the owning Subscription's job — so a purged consumer
// simply stops receiving.
func (c *common) PurgeTopics(prefix string) int {
	return len(c.purge(prefix))
}

// purge removes the common state under prefix and returns the set of
// topics that held any, so broker variants can union in their own state
// (the log broker adds its retained logs) without re-scanning.
func (c *common) purge(prefix string) map[string]bool {
	purged := map[string]bool{}
	c.mu.Lock()
	for topic, list := range c.subs {
		if strings.HasPrefix(topic, prefix) {
			if len(list) > 0 {
				purged[topic] = true
			}
			delete(c.subs, topic)
		}
	}
	c.mu.Unlock()
	c.qmu.Lock()
	for topic := range c.perTopic {
		if strings.HasPrefix(topic, prefix) {
			purged[topic] = true
			delete(c.perTopic, topic)
		}
	}
	c.qmu.Unlock()
	return purged
}

func (c *common) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *common) checkOpen() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	return nil
}

// QueueBroker is the ActiveMQ-like broker: fast, volatile.
type QueueBroker struct {
	*common
}

// DefaultQueueLatency is the modelled per-message latency of the queue
// broker, in model seconds. Model constants are calibrated so that, at
// the default clock scale (1 ms of real time per model second), every
// modelled sleep sits above the host's ~1.2 ms timer granularity; the
// absolute values are arbitrary, the ratios are what the experiments
// reproduce.
const DefaultQueueLatency = 2.0

// DefaultQueueServiceTime is the broker occupancy per message for the
// queue broker: the throughput term behind Fig. 12(b)'s fully-connected
// slowdown (hundreds of messages per layer share one middleware).
const DefaultQueueServiceTime = 0.01

// NewQueueBroker builds a queue broker on the given clock. latency <= 0
// takes DefaultQueueLatency.
func NewQueueBroker(clock *cluster.Clock, latency float64) *QueueBroker {
	if latency <= 0 {
		latency = DefaultQueueLatency
	}
	return &QueueBroker{common: newCommon(clock, latency, DefaultQueueServiceTime)}
}

// Publish delivers to current subscribers only; nothing is retained.
func (b *QueueBroker) Publish(topic, payload string) error {
	if err := b.checkOpen(); err != nil {
		return err
	}
	b.published.Add(1)
	b.deliver(Message{Topic: topic, Payload: payload, Offset: -1})
	return nil
}

// PublishAtoms delivers a structural payload to current subscribers only.
func (b *QueueBroker) PublishAtoms(topic string, atoms []hocl.Atom) error {
	if err := b.checkOpen(); err != nil {
		return err
	}
	b.published.Add(1)
	b.deliver(Message{Topic: topic, Atoms: atoms, Offset: -1})
	return nil
}

// LogBroker is the Kafka-like broker: append-only persisted topics with
// replay, at a higher per-message cost.
type LogBroker struct {
	*common
	logMu sync.RWMutex
	logs  map[string][]Message
}

// DefaultLogLatency is the modelled per-message latency of the log
// broker: 4× the queue broker, matching the paper's Fig. 14 observation.
const DefaultLogLatency = 4 * DefaultQueueLatency // 8.0

// DefaultLogServiceTime: persistence costs throughput as well; the 4x
// per-message ratio carries over (Fig. 14).
const DefaultLogServiceTime = 4 * DefaultQueueServiceTime // 0.04

// NewLogBroker builds a log broker on the given clock. latency <= 0
// takes DefaultLogLatency.
func NewLogBroker(clock *cluster.Clock, latency float64) *LogBroker {
	if latency <= 0 {
		latency = DefaultLogLatency
	}
	return &LogBroker{common: newCommon(clock, latency, DefaultLogServiceTime), logs: map[string][]Message{}}
}

// Publish appends to the topic log, then delivers to subscribers.
func (b *LogBroker) Publish(topic, payload string) error {
	return b.append(Message{Topic: topic, Payload: payload})
}

// PublishAtoms appends a structural payload to the topic log, then
// delivers it. The log retains the atoms by reference: replay hands the
// same frozen molecules back, so recovery pays no re-parse either.
func (b *LogBroker) PublishAtoms(topic string, atoms []hocl.Atom) error {
	return b.append(Message{Topic: topic, Atoms: atoms})
}

func (b *LogBroker) append(msg Message) error {
	if err := b.checkOpen(); err != nil {
		return err
	}
	b.published.Add(1)
	b.logMu.Lock()
	msg.Offset = len(b.logs[msg.Topic])
	b.logs[msg.Topic] = append(b.logs[msg.Topic], msg)
	b.logMu.Unlock()
	b.deliver(msg)
	return nil
}

// Topics lists topics under prefix holding subscriber, counter or log
// state.
func (b *LogBroker) Topics(prefix string) []string {
	seen := map[string]bool{}
	for _, t := range b.common.Topics(prefix) {
		seen[t] = true
	}
	b.logMu.RLock()
	for topic := range b.logs {
		if strings.HasPrefix(topic, prefix) {
			seen[topic] = true
		}
	}
	b.logMu.RUnlock()
	out := make([]string, 0, len(seen))
	for topic := range seen {
		out = append(out, topic)
	}
	sort.Strings(out)
	return out
}

// PurgeTopics additionally drops the retained logs under prefix — the
// piece of per-workflow state that would otherwise grow without bound in
// a long-lived log broker (replay is only meaningful within a session).
func (b *LogBroker) PurgeTopics(prefix string) int {
	purged := b.common.purge(prefix)
	b.logMu.Lock()
	for topic := range b.logs {
		if strings.HasPrefix(topic, prefix) {
			purged[topic] = true
			delete(b.logs, topic)
		}
	}
	b.logMu.Unlock()
	return len(purged)
}

// Log returns a copy of the topic's full history. Atom slices are copied
// per message so a caller cannot swap molecules inside the log; the atoms
// themselves are shared (they are frozen by the publish contract).
func (b *LogBroker) Log(topic string) []Message {
	b.logMu.RLock()
	defer b.logMu.RUnlock()
	out := append([]Message(nil), b.logs[topic]...)
	for i := range out {
		if out[i].Atoms != nil {
			out[i].Atoms = append([]hocl.Atom(nil), out[i].Atoms...)
		}
	}
	return out
}

var (
	_ Broker     = (*QueueBroker)(nil)
	_ Replayable = (*LogBroker)(nil)
)

// Kind names a broker implementation in configs and CLIs.
type Kind string

const (
	KindQueue Kind = "activemq"
	KindLog   Kind = "kafka"
)

// NewBroker builds a broker of the given kind with its default latency.
func NewBroker(kind Kind, clock *cluster.Clock) (Broker, error) {
	switch kind {
	case KindQueue:
		return NewQueueBroker(clock, 0), nil
	case KindLog:
		return NewLogBroker(clock, 0), nil
	default:
		return nil, fmt.Errorf("mq: unknown broker kind %q (want %q or %q)", kind, KindQueue, KindLog)
	}
}
