package mq

import (
	"ginflow/internal/failure"
)

// Broker-side chaos: the delivery fan-out draws one fault per
// (message, subscriber) pair from the installed schedule. Faults act on
// delivery attempts only — a LogBroker's retained log always holds
// exactly one copy of each publish, so replay and recovery see the true
// history while live consumers experience drops, duplicates, delays and
// reorders.

// ChaosHost is implemented by brokers that accept a fault-injection
// schedule perturbing delivery. Install the schedule before traffic
// flows; nil uninstalls.
type ChaosHost interface {
	SetChaos(*failure.Schedule)
}

// ObserverHost is implemented by brokers that can report every accepted
// publish to a synchronous observer (the journal's inbox write-through
// point).
type ObserverHost interface {
	SetPublishObserver(func(Message))
}

// LogRestorer is implemented by brokers whose replay logs can be
// re-seeded from journaled history during crash recovery.
type LogRestorer interface {
	RestoreLog(topic string, msgs []Message)
}

var (
	_ ChaosHost    = (*QueueBroker)(nil)
	_ ChaosHost    = (*LogBroker)(nil)
	_ ObserverHost = (*LogBroker)(nil)
	_ LogRestorer  = (*LogBroker)(nil)
)

// maxRedeliveries bounds how often chaos may drop one (message,
// subscriber) delivery before the modelled middleware's redelivery is
// forced through. A drop is therefore a delay plus a reorder, never a
// loss: transport stays at-least-once, the floor the agents' sequence
// numbers turn into exactly-once.
const maxRedeliveries = 2

// SetChaos installs (or, with nil, removes) the fault schedule
// perturbing this broker's deliveries.
func (c *common) SetChaos(s *failure.Schedule) {
	c.chaos.Store(s)
}

// chaosEnqueue routes one delivery through the fault schedule:
//
//   - drop: suppress this attempt and redeliver after the configured
//     lag from a timer goroutine, so the retried message lands behind
//     traffic published meanwhile (genuine reordering), bounded by
//     maxRedeliveries;
//   - duplicate: deliver now and once more after the redelivery lag;
//   - delay: push the due instant out by the drawn amount;
//   - reorder: deliver, then swap with the queue predecessor.
func (c *common) chaosEnqueue(ch *failure.Schedule, sub *subscriber, tm timedMsg, attempt int) {
	f := ch.Draw(failure.BoundaryMessage)
	lag := ch.Config().RedeliverDelay // model seconds
	switch f.Kind {
	case failure.FaultDrop:
		if attempt < maxRedeliveries {
			// The redelivery timer runs on the broker clock: a plain
			// goroutine sleeping scaled real time in real mode, a schedule
			// participant in virtual mode — so chaos lags are drawn in
			// virtual time and stay deterministic.
			c.clock.Go(func() {
				c.clock.Sleep(lag)
				c.chaosEnqueue(ch, sub, timedMsg{msg: tm.msg, due: c.clock.Now()}, attempt+1)
			})
			return
		}
		// Redelivery budget spent: the middleware pushes it through.
	case failure.FaultDuplicate:
		c.clock.Go(func() {
			c.clock.Sleep(lag)
			sub.enqueue(timedMsg{msg: tm.msg, due: c.clock.Now()})
		})
	case failure.FaultDelay:
		tm.due += f.Delay
	case failure.FaultReorder:
		sub.enqueue(tm)
		sub.swapTail()
		return
	}
	sub.enqueue(tm)
}
