package mq

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/hocl"
)

func TestShardKey(t *testing.T) {
	cases := map[string]string{
		"wf3.sa.T1":         "wf3.",
		"wf3.ginflow.space": "wf3.",
		"wf12345.sa.T1":     "wf12345.",
		"sa.T1":             "",
		"ginflow.space":     "",
		"wf.sa.T1":          "", // no digits
		"wfX.sa.T1":         "",
		"wf3":               "", // no dot after the id
		"workflow.topic":    "",
		"":                  "",
	}
	for topic, want := range cases {
		if got := ShardKey(topic); got != want {
			t.Errorf("ShardKey(%q) = %q, want %q", topic, got, want)
		}
	}
}

// TestSessionTopicsShareAShard: all topics of one session namespace
// route to the same shard (a session's traffic is self-contained),
// while un-namespaced topics hash individually so standalone traffic
// spreads over the shard set instead of serializing on one shard.
func TestSessionTopicsShareAShard(t *testing.T) {
	b := NewQueueBrokerSharded(testClock(), 0.001, 8)
	if b.ShardCount() != 8 {
		t.Fatalf("ShardCount = %d", b.ShardCount())
	}
	s1 := b.shardIndex("wf7.sa.T1")
	if got := b.shardIndex("wf7.sa.T99"); got != s1 {
		t.Errorf("inbox topics of one session on different shards: %d vs %d", got, s1)
	}
	if got := b.shardIndex("wf7.ginflow.space"); got != s1 {
		t.Errorf("space topic on a different shard than the inboxes: %d vs %d", got, s1)
	}
	shardsHit := map[int]bool{}
	for i := 0; i < 32; i++ {
		shardsHit[b.shardIndex(fmt.Sprintf("sa.T%d", i))] = true
	}
	if len(shardsHit) < 2 {
		t.Errorf("32 standalone topics all hashed to %d shard(s): the default-shard serialization is back", len(shardsHit))
	}
}

// BenchmarkStandaloneShardSpread is the regression benchmark for the
// standalone-traffic routing fix: 8 un-namespaced topics bursting
// through a sharded broker with modelled occupancy. Before the fix all
// of them shared the default shard, so the burst serialized behind one
// occupancy queue; with per-topic hashing the delivery wall time drops
// by roughly the shard spread.
func BenchmarkStandaloneShardSpread(b *testing.B) {
	clock := cluster.NewClock(50 * time.Microsecond)
	br := NewQueueBrokerSharded(clock, 0.001, 8)
	br.SetServiceTime(0.05) // occupancy is the serialization under test
	const topics = 8
	const perTopic = 16
	subs := make([]*Subscription, topics)
	names := make([]string, topics)
	for i := range subs {
		names[i] = fmt.Sprintf("sa.bench%d", i)
		s, err := br.Subscribe(names[i])
		if err != nil {
			b.Fatal(err)
		}
		subs[i] = s
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for j := 0; j < perTopic; j++ {
			for i := 0; i < topics; i++ {
				if err := br.Publish(names[i], "x"); err != nil {
					b.Fatal(err)
				}
			}
		}
		for i := 0; i < topics; i++ {
			got := 0
			for got < perTopic {
				got += len(<-subs[i].Batches())
			}
		}
	}
}

// TestCrossShardDelivery: pub/sub works for namespaced topics on every
// shard, and sessions spread over more than one shard.
func TestCrossShardDelivery(t *testing.T) {
	b := NewQueueBrokerSharded(testClock(), 0.001, 4)
	const sessions = 16
	subs := make([]*Subscription, sessions)
	shardsHit := map[int]bool{}
	for i := range subs {
		topic := fmt.Sprintf("wf%d.sa.T1", i+1)
		shardsHit[b.shardIndex(topic)] = true
		s, err := b.Subscribe(topic)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = s
	}
	if len(shardsHit) < 2 {
		t.Errorf("16 sessions all hashed to %d shard(s)", len(shardsHit))
	}
	for i := range subs {
		if err := b.Publish(fmt.Sprintf("wf%d.sa.T1", i+1), fmt.Sprintf("m%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, s := range subs {
		m := recvOne(t, s)
		if want := fmt.Sprintf("m%d", i+1); m.Payload != want {
			t.Errorf("session %d received %q, want %q", i+1, m.Payload, want)
		}
	}
}

// TestPurgeTopicsAcrossShards is the regression test for namespace
// cleanup on a sharded broker: purging one session's prefix must remove
// its state from whichever shard held it and leave every other shard's
// state — and every other session — untouched, for subscriber tables,
// counters and retained logs alike.
func TestPurgeTopicsAcrossShards(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewLogBrokerSharded(clock, 1e-9, 4)
	const sessions = 12
	for i := 1; i <= sessions; i++ {
		topic := fmt.Sprintf("wf%d.sa.T1", i)
		if _, err := b.Subscribe(topic); err != nil {
			t.Fatal(err)
		}
		if err := b.Publish(topic, "X"); err != nil {
			t.Fatal(err)
		}
		if err := b.Publish(fmt.Sprintf("wf%d.ginflow.space", i), "Y"); err != nil {
			t.Fatal(err)
		}
	}

	if n := b.PurgeTopics("wf1."); n != 2 {
		t.Errorf("purged %d topics, want 2", n)
	}
	// No shard may retain any state for the purged namespace.
	for shard := 0; shard < b.ShardCount(); shard++ {
		if got := b.ShardTopics(shard, "wf1."); len(got) != 0 {
			t.Errorf("shard %d retains purged topics: %v", shard, got)
		}
	}
	if got := b.Topics("wf1."); len(got) != 0 {
		t.Errorf("Topics(wf1.) = %v after purge", got)
	}
	if got := b.Log("wf1.sa.T1"); len(got) != 0 {
		t.Errorf("purged log survives: %v", got)
	}
	if got := b.PublishedPrefix("wf1."); got != 0 {
		t.Errorf("purged counters survive: %d", got)
	}
	// Every other session keeps its two topics, and the per-shard views
	// union back to the global view.
	union := map[string]bool{}
	for shard := 0; shard < b.ShardCount(); shard++ {
		for _, topic := range b.ShardTopics(shard, "") {
			if union[topic] {
				t.Errorf("topic %s appears on more than one shard", topic)
			}
			union[topic] = true
		}
	}
	all := b.Topics("")
	if len(all) != 2*(sessions-1) || len(union) != len(all) {
		t.Errorf("topics after purge: global %d, shard union %d, want %d", len(all), len(union), 2*(sessions-1))
	}
}

// TestShardsIsolateOccupancy: the modelled middleware occupancy is per
// shard — a burst on one session's shard must not delay another
// session's delivery, which is the scaling property the sharding exists
// for.
func TestShardsIsolateOccupancy(t *testing.T) {
	clock := cluster.NewClock(time.Millisecond)
	b := NewQueueBrokerSharded(clock, 1, 64) // 1 model-second latency
	b.SetServiceTime(5)                      // 5 model seconds occupancy per message

	// Find two session namespaces on different shards.
	busy, quiet := "wf1.", ""
	for i := 2; i < 100; i++ {
		ns := fmt.Sprintf("wf%d.", i)
		if b.shardIndex(ns+"t") != b.shardIndex(busy+"t") {
			quiet = ns
			break
		}
	}
	if quiet == "" {
		t.Fatal("could not find two namespaces on distinct shards")
	}

	busySub, _ := b.Subscribe(busy + "t")
	quietSub, _ := b.Subscribe(quiet + "t")
	// 40 messages × 5 model seconds back up the busy shard for ~200 ms.
	for i := 0; i < 40; i++ {
		if err := b.Publish(busy+"t", "x"); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	if err := b.Publish(quiet+"t", "y"); err != nil {
		t.Fatal(err)
	}
	recvOne(t, quietSub)
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("quiet shard delivery took %v: delayed by the busy shard's backlog", elapsed)
	}
	_ = busySub
}

// TestBatchDelivery: a burst of publishes arrives as batches preserving
// publication order, and the recycled batch slices stay valid until the
// next receive.
func TestBatchDelivery(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewQueueBroker(clock, 1e-9)
	b.SetServiceTime(0)
	sub, err := b.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	go func() {
		for i := 0; i < n; i++ {
			_ = b.Publish("t", fmt.Sprintf("m%d", i))
		}
	}()
	received := 0
	batches := sub.Batches()
	sawMulti := false
	deadline := time.After(5 * time.Second)
	for received < n {
		select {
		case batch := <-batches:
			if len(batch) > 1 {
				sawMulti = true
			}
			for _, m := range batch {
				if want := fmt.Sprintf("m%d", received); m.Payload != want {
					t.Fatalf("out of order: got %q, want %q", m.Payload, want)
				}
				received++
			}
		case <-deadline:
			t.Fatalf("received %d of %d", received, n)
		}
	}
	// A burst against a briefly busy consumer should coalesce at least
	// once; this is the batching the hand-off exists for. (Not asserted
	// strictly per batch — scheduling decides — but over 500 messages a
	// single-message-only stream would mean batching never engaged.)
	if !sawMulti {
		t.Log("note: no multi-message batch observed (scheduling-dependent)")
	}
}

// TestBatchAndFlatFeedsAgree: the per-message C feed is a flattening of
// the batch feed — same messages, same order.
func TestBatchAndFlatFeedsAgree(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewQueueBroker(clock, 1e-9)
	sub1, _ := b.Subscribe("t")
	sub2, _ := b.Subscribe("t")
	const n = 100
	for i := 0; i < n; i++ {
		if err := b.Publish("t", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var flat []string
	for len(flat) < n {
		m := recvOne(t, sub1)
		flat = append(flat, m.Payload)
	}
	var batched []string
	deadline := time.After(5 * time.Second)
	for len(batched) < n {
		select {
		case batch := <-sub2.Batches():
			for _, m := range batch {
				batched = append(batched, m.Payload)
			}
		case <-deadline:
			t.Fatalf("batched feed received %d of %d", len(batched), n)
		}
	}
	for i := range flat {
		if flat[i] != batched[i] {
			t.Fatalf("feeds disagree at %d: %q vs %q", i, flat[i], batched[i])
		}
	}
}

// TestBatchDeliveryConcurrentPublishers hammers one subscriber from many
// publishers: no message may be lost or duplicated through the recycled
// batch buffers (regression for the queue/spare aliasing bug).
func TestBatchDeliveryConcurrentPublishers(t *testing.T) {
	clock := cluster.NewClock(time.Nanosecond)
	b := NewQueueBroker(clock, 1e-9)
	b.SetServiceTime(0)
	sub, err := b.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	const publishers = 8
	const perPub = 200
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				if err := b.PublishAtoms("t", []hocl.Atom{hocl.Int(int64(p*perPub + i))}); err != nil {
					t.Errorf("publish: %v", err)
				}
			}
		}(p)
	}
	seen := make(map[int64]int, publishers*perPub)
	total := 0
	deadline := time.After(10 * time.Second)
	batches := sub.Batches()
	for total < publishers*perPub {
		select {
		case batch := <-batches:
			for _, m := range batch {
				seen[int64(m.Atoms[0].(hocl.Int))]++
				total++
			}
		case <-deadline:
			t.Fatalf("received %d of %d", total, publishers*perPub)
		}
	}
	wg.Wait()
	for v, count := range seen {
		if count != 1 {
			t.Errorf("message %d delivered %d times", v, count)
		}
	}
}
