package mq

import (
	"fmt"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
)

// collect drains n messages from sub with a deadline.
func collect(t *testing.T, sub *Subscription, n int, timeout time.Duration) []Message {
	t.Helper()
	var out []Message
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case m := <-sub.C():
			out = append(out, m)
		case <-deadline:
			t.Fatalf("timed out with %d/%d messages", len(out), n)
		}
	}
	return out
}

func chaosClock(t *testing.T) *cluster.Clock {
	t.Helper()
	return cluster.New(cluster.Config{Nodes: 1, CoresPerNode: 4, Scale: 50 * time.Microsecond}).Clock()
}

// TestChaosDropStillDelivers proves a chaos drop is a redelivery, not a
// loss: even at 100% drop probability every message arrives, because
// the redelivery budget forces it through.
func TestChaosDropStillDelivers(t *testing.T) {
	b := NewQueueBroker(chaosClock(t), 0.1)
	b.SetChaos(failure.NewSchedule(failure.ChaosConfig{
		Seed: 1, MessageDropP: 1, RedeliverDelay: 0.2, MaxConsecutive: -1,
	}))
	sub, err := b.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	const n = 20
	for i := 0; i < n; i++ {
		if err := b.Publish("t", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, sub, n, 5*time.Second)
	seen := map[string]bool{}
	for _, m := range got {
		seen[m.Payload] = true
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct messages, want %d", len(seen), n)
	}
}

// TestChaosDuplicateDelivers proves duplication multiplies deliveries
// without touching the retained log.
func TestChaosDuplicateDelivers(t *testing.T) {
	b := NewLogBroker(chaosClock(t), 0.1)
	b.SetChaos(failure.NewSchedule(failure.ChaosConfig{
		Seed: 2, MessageDupP: 1, RedeliverDelay: 0.2, MaxConsecutive: -1,
	}))
	sub, err := b.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	const n = 10
	for i := 0; i < n; i++ {
		if err := b.PublishAtoms("t", []hocl.Atom{hocl.Int(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, sub, 2*n, 5*time.Second)
	if len(got) != 2*n {
		t.Fatalf("got %d deliveries, want %d", len(got), 2*n)
	}
	if log := b.Log("t"); len(log) != n {
		t.Fatalf("log holds %d messages, want %d — chaos must not touch the log", len(log), n)
	}
}

// TestChaosReorderSwaps drives the reorder fault and checks content
// survives even when order does not.
func TestChaosReorderSwaps(t *testing.T) {
	b := NewQueueBroker(chaosClock(t), 0.5)
	b.SetChaos(failure.NewSchedule(failure.ChaosConfig{
		Seed: 3, MessageReorderP: 1, MaxConsecutive: -1,
	}))
	sub, err := b.Subscribe("t")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Cancel()
	const n = 8
	for i := 0; i < n; i++ {
		if err := b.Publish("t", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, sub, n, 5*time.Second)
	seen := map[string]bool{}
	inOrder := true
	for i, m := range got {
		seen[m.Payload] = true
		if m.Payload != fmt.Sprintf("m%d", i) {
			inOrder = false
		}
	}
	if len(seen) != n {
		t.Fatalf("got %d distinct messages, want %d", len(seen), n)
	}
	if inOrder {
		t.Fatal("100%% reorder probability left the sequence fully ordered")
	}
}

// TestRestoreLogReplacesHistory checks recovery's log re-seeding:
// offsets renumber, content replaces, and replay returns the restored
// history.
func TestRestoreLogReplacesHistory(t *testing.T) {
	b := NewLogBroker(chaosClock(t), 0.1)
	if err := b.Publish("wf1.sa.T1", "old"); err != nil {
		t.Fatal(err)
	}
	b.RestoreLog("wf1.sa.T1", []Message{
		{Atoms: []hocl.Atom{hocl.Int(1)}},
		{Atoms: []hocl.Atom{hocl.Int(2)}},
	})
	log := b.Log("wf1.sa.T1")
	if len(log) != 2 {
		t.Fatalf("restored log holds %d messages, want 2", len(log))
	}
	for i, m := range log {
		if m.Offset != i || m.Topic != "wf1.sa.T1" {
			t.Fatalf("message %d: offset=%d topic=%q", i, m.Offset, m.Topic)
		}
	}
}

// TestPublishObserverSeesEveryPublish checks the write-through hook
// fires once per accepted publish, including for textual payloads.
func TestPublishObserverSeesEveryPublish(t *testing.T) {
	b := NewLogBroker(chaosClock(t), 0.1)
	var seen []Message
	b.SetPublishObserver(func(m Message) { seen = append(seen, m) })
	if err := b.Publish("a", "x"); err != nil {
		t.Fatal(err)
	}
	if err := b.PublishAtoms("b", []hocl.Atom{hocl.Int(7)}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0].Topic != "a" || seen[1].Topic != "b" {
		t.Fatalf("observer saw %+v", seen)
	}
	b.SetPublishObserver(nil)
	if err := b.Publish("a", "y"); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatal("observer still firing after uninstall")
	}
}
