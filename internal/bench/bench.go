// Package bench regenerates every figure of the paper's evaluation
// (§V): the diamond coordination-timespan surfaces (Fig. 12), the
// adaptiveness ratios (Fig. 13), the executor × middleware comparison
// (Fig. 14), the Montage workload shape and duration CDF (Fig. 15) and
// the resilience-under-failure-injection bars (Fig. 16). The same code
// backs the ginflow-bench CLI and the root-level Go benchmarks.
//
// All reported times are model seconds (see internal/cluster): absolute
// values are not comparable to the paper's testbed, but the shapes —
// who wins, by what factor, where crossovers fall — are the
// reproduction target. EXPERIMENTS.md records paper-vs-measured.
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/montage"
	"ginflow/internal/mq"
	"ginflow/internal/obs"
	"ginflow/internal/workflow"
)

// Options tunes an experiment run.
type Options struct {
	// Out receives the rendered tables (io.Discard when nil).
	Out io.Writer
	// Scale is the real-time cost of one model second (default 1 ms —
	// see internal/cluster for the calibration rationale).
	Scale time.Duration
	// Runs is the number of repetitions for averaged experiments
	// (default 3; the paper uses up to 10).
	Runs int
	// Quick shrinks the sweeps for smoke tests and Go benchmarks.
	Quick bool
	// Seed makes runs reproducible (default 1).
	Seed int64
	// Timeout bounds each single workflow run in real time (default 5 m).
	Timeout time.Duration
	// BrokerShards partitions the shared broker (0 = mq default, 1 =
	// unsharded); only concurrent shared-Manager sweeps are sensitive to
	// it.
	BrokerShards int
	// Fan is the number of concurrent copies of each sweep size
	// submitted to the shared Manager (default 1). Raising it multiplies
	// the concurrent-session load on the shared broker — the regime
	// where shard count decides the wall-clock. Standalone sweeps run
	// the copies sequentially, for an equal-work baseline.
	Fan int
	// Virtual runs every experiment on the discrete-event virtual clock
	// (see internal/cluster): model time advances only at timer
	// deadlines, so sweeps cost CPU rather than wall-clock and same-seed
	// runs report bit-identical timings. Scale is ignored.
	Virtual bool
}

func (o Options) withDefaults() Options {
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Scale <= 0 {
		o.Scale = cluster.DefaultScale
	}
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Minute
	}
	if o.Fan <= 0 {
		o.Fan = 1
	}
	return o
}

// MeshTaskDuration is the modelled duration of a diamond mesh task: the
// paper's tasks "only simulate a simple script with a (very low)
// constant execution time" (§V).
const MeshTaskDuration = 2.0

// diamondServices registers the noop services of the diamond workloads.
func diamondServices() *agent.Registry {
	reg := agent.NewRegistry()
	reg.RegisterNoop(MeshTaskDuration, "split", "work", "merge", "workalt")
	return reg
}

func (o Options) clusterConfig(nodes int, seed int64) cluster.Config {
	return cluster.Config{
		Nodes:        nodes,
		CoresPerNode: 24,
		Scale:        o.Scale,
		Seed:         seed,
		Virtual:      o.Virtual,
	}
}

// runOnce executes one workflow run and returns its report.
func runOnce(opts Options, def *workflow.Definition, services *agent.Registry, cfg core.Config) (*core.Report, error) {
	cfg.Timeout = opts.Timeout
	return core.Run(context.Background(), def, services, cfg)
}

// --- Fig. 12: coordination timespan of diamond workflows -----------------

// Fig12Point is one cell of the Fig. 12 surface.
type Fig12Point struct {
	H, V int
	Time float64 // execution (coordination) time, model seconds
}

// Fig12Grid returns the (h, v) sample grid: the paper sweeps 1..31; the
// default harness samples it, and Quick shrinks further.
func Fig12Grid(quick bool) []int {
	if quick {
		return []int{1, 4, 8}
	}
	return []int{1, 6, 11, 16, 21, 26, 31}
}

// Fig12 reproduces Fig. 12(a) (simple-connected) or 12(b) (fully
// connected): execution time of an h×v diamond on 25 nodes over
// SSH + ActiveMQ, for every grid point.
func Fig12(opts Options, fully bool) ([]Fig12Point, error) {
	opts = opts.withDefaults()
	grid := Fig12Grid(opts.Quick)
	flavour := "simple"
	if fully {
		flavour = "fully"
	}
	fmt.Fprintf(opts.Out, "# Fig. 12(%s): coordination timespan, %s-connected diamond (model seconds)\n",
		map[bool]string{false: "a", true: "b"}[fully], flavour)
	fmt.Fprintf(opts.Out, "%-6s", "v\\h")
	for _, h := range grid {
		fmt.Fprintf(opts.Out, "%10d", h)
	}
	fmt.Fprintln(opts.Out)

	var points []Fig12Point
	for _, v := range grid {
		fmt.Fprintf(opts.Out, "%-6d", v)
		for _, h := range grid {
			var sum float64
			for run := 0; run < opts.Runs; run++ {
				def := workflow.Diamond(workflow.DefaultDiamondSpec(h, v, fully))
				rep, err := runOnce(opts, def, diamondServices(), core.Config{
					Executor: executor.KindSSH,
					Broker:   mq.KindQueue,
					Cluster:  opts.clusterConfig(25, opts.Seed+int64(run)),
				})
				if err != nil {
					return points, fmt.Errorf("fig12 %dx%d: %w", h, v, err)
				}
				sum += rep.ExecTime
			}
			mean := sum / float64(opts.Runs)
			points = append(points, Fig12Point{H: h, V: v, Time: mean})
			fmt.Fprintf(opts.Out, "%10.1f", mean)
		}
		fmt.Fprintln(opts.Out)
	}
	return points, nil
}

// --- Diamond scaling sweep (beyond the paper's grid) -----------------------

// SweepPoint is one cell of the diamond scaling sweep.
type SweepPoint struct {
	N    int     // mesh is N×N
	Exec float64 // mean execution time, model seconds
}

// SweepResult is one mode of the diamond scaling sweep in a
// serialisable form (part of the -json artifact of ginflow-bench).
type SweepResult struct {
	Mode         string // "standalone" or "shared-manager"
	BrokerShards int    // 0 = mq default
	Runs         int
	Fan          int // concurrent copies of each size (shared mode)
	Points       []SweepPoint
	WallSeconds  float64 // real time for the whole mode
}

// SweepArtifact is the -json artifact of ginflow-bench: the sweep
// results of both modes plus a final snapshot of every metric family
// the sweep produced, so timing numbers and the counters behind them
// travel together.
type SweepArtifact struct {
	Results []SweepResult
	Metrics []obs.FamilySnapshot
}

// SweepSizes returns the default scaling-sweep mesh sizes. The 24×24
// mesh (578 agents) is the post-sharding scale target; it only became
// tractable in shared-Manager mode once sessions stopped contending on
// one broker occupancy.
func SweepSizes(quick bool) []int {
	if quick {
		return []int{4, 6}
	}
	return []int{8, 12, 16, 24}
}

// DiamondSweep measures N×N simple-connected diamonds at the given
// sizes on 25 nodes over SSH + ActiveMQ.
//
// With shared=false each run gets a throwaway engine (the paper's
// one-workflow-per-invocation shape); Options.Fan > 1 repeats each size
// sequentially, for an equal-work baseline. With shared=true the whole
// sweep fans through one long-lived core.Manager per repetition: Fan
// copies of every size are submitted concurrently and multiplex over one
// cluster and broker in separate topic namespaces — the scaling shape
// the Manager API (and the sharded broker) exists for. The returned wall
// duration covers the whole sweep.
func DiamondSweep(opts Options, sizes []int, shared bool) ([]SweepPoint, time.Duration, error) {
	opts = opts.withDefaults()
	if len(sizes) == 0 {
		sizes = SweepSizes(opts.Quick)
	}
	mode := "standalone runs"
	if shared {
		mode = fmt.Sprintf("one shared Manager, concurrent sessions, %s", shardLabel(opts.BrokerShards))
	}
	if opts.Fan > 1 {
		mode += fmt.Sprintf(", fan %d", opts.Fan)
	}
	fmt.Fprintf(opts.Out, "# Diamond scaling sweep (%s; model seconds, mean of %d runs)\n", mode, opts.Runs)
	fmt.Fprintf(opts.Out, "%-8s %12s\n", "mesh", "exec(s)")

	started := time.Now()
	sums := make([]float64, len(sizes))
	for run := 0; run < opts.Runs; run++ {
		if shared {
			execs, err := sweepThroughManager(opts, sizes, opts.Seed+int64(run))
			if err != nil {
				return nil, time.Since(started), err
			}
			for i, e := range execs {
				sums[i] += e
			}
			continue
		}
		for i, n := range sizes {
			for f := 0; f < opts.Fan; f++ {
				def := workflow.Diamond(workflow.DefaultDiamondSpec(n, n, false))
				rep, err := runOnce(opts, def, diamondServices(), core.Config{
					Executor:     executor.KindSSH,
					Broker:       mq.KindQueue,
					BrokerShards: opts.BrokerShards,
					Cluster:      opts.clusterConfig(25, opts.Seed+int64(run*opts.Fan+f)),
				})
				if err != nil {
					return nil, time.Since(started), fmt.Errorf("sweep %dx%d: %w", n, n, err)
				}
				sums[i] += rep.ExecTime / float64(opts.Fan)
			}
		}
	}
	wall := time.Since(started)

	points := make([]SweepPoint, len(sizes))
	for i, n := range sizes {
		points[i] = SweepPoint{N: n, Exec: sums[i] / float64(opts.Runs)}
		fmt.Fprintf(opts.Out, "%-8s %12.1f\n", fmt.Sprintf("%dx%d", n, n), points[i].Exec)
	}
	fmt.Fprintf(opts.Out, "(sweep wall time: %.1fs real)\n", wall.Seconds())
	return points, wall, nil
}

// shardLabel renders a shard-count option for sweep headers.
func shardLabel(shards int) string {
	switch {
	case shards <= 0:
		return fmt.Sprintf("%d broker shards (default)", mq.DefaultShards)
	case shards == 1:
		return "unsharded broker"
	default:
		return fmt.Sprintf("%d broker shards", shards)
	}
}

// sweepThroughManager submits Fan copies of every sweep size
// concurrently to one long-lived Manager and returns the per-size mean
// execution times.
func sweepThroughManager(opts Options, sizes []int, seed int64) ([]float64, error) {
	// The shared platform grows with the fan so per-session node density
	// matches the standalone baseline (the broker, not the nodes, is the
	// contended resource under test).
	m, err := core.NewManager(core.Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindQueue,
		BrokerShards: opts.BrokerShards,
		Cluster:      opts.clusterConfig(25*opts.Fan, seed),
		Timeout:      opts.Timeout,
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()

	type submission struct {
		idx     int // index into sizes (not the size: duplicates stay distinct)
		session *core.Session
	}
	subs := make([]submission, 0, len(sizes)*opts.Fan)
	for i, n := range sizes {
		for f := 0; f < opts.Fan; f++ {
			def := workflow.Diamond(workflow.DefaultDiamondSpec(n, n, false))
			s, err := m.Submit(context.Background(), def, diamondServices())
			if err != nil {
				return nil, fmt.Errorf("sweep submit %dx%d: %w", n, n, err)
			}
			subs = append(subs, submission{idx: i, session: s})
		}
	}
	execs := make([]float64, len(sizes))
	for _, sub := range subs {
		rep, err := sub.session.Wait(context.Background())
		if err != nil {
			return nil, fmt.Errorf("sweep %dx%d: %w", sizes[sub.idx], sizes[sub.idx], err)
		}
		execs[sub.idx] += rep.ExecTime / float64(opts.Fan)
	}
	return execs, nil
}

// --- Fig. 13: adaptiveness ratio ------------------------------------------

// Fig13Scenario names the three replacement scenarios of §V-B.
type Fig13Scenario struct {
	Name                 string
	BaseFully, ReplFully bool
}

// Fig13Scenarios returns the paper's three scenarios.
func Fig13Scenarios() []Fig13Scenario {
	return []Fig13Scenario{
		{Name: "simple-to-simple", BaseFully: false, ReplFully: false},
		{Name: "simple-to-full", BaseFully: false, ReplFully: true},
		{Name: "full-to-simple", BaseFully: true, ReplFully: false},
	}
}

// Fig13Point is one bar of Fig. 13: the with-adaptiveness over
// without-adaptiveness execution-time ratio for an n×n diamond.
type Fig13Point struct {
	N        int
	Scenario string
	Ratio    float64
	Baseline float64
	Adaptive float64
}

// Fig13Grid returns the square sizes swept (paper: 1, 6, 11, 16, 21).
func Fig13Grid(quick bool) []int {
	if quick {
		return []int{1, 4}
	}
	return []int{1, 6, 11, 16, 21}
}

// Fig13 reproduces the adaptiveness experiment: a square diamond runs
// once plainly (reference) and once with an execution exception raised
// on the last mesh service, which swaps the whole body for a replacement
// mesh on-the-fly (§V-B).
func Fig13(opts Options) ([]Fig13Point, error) {
	opts = opts.withDefaults()
	fmt.Fprintln(opts.Out, "# Fig. 13: with-adaptiveness-over-without-adaptiveness ratio")
	fmt.Fprintf(opts.Out, "%-10s %-18s %12s %12s %8s\n", "config", "scenario", "baseline(s)", "adaptive(s)", "ratio")

	var points []Fig13Point
	for _, sc := range Fig13Scenarios() {
		for _, n := range Fig13Grid(opts.Quick) {
			spec := workflow.DefaultDiamondSpec(n, n, sc.BaseFully)

			var baseSum, adaptSum float64
			for run := 0; run < opts.Runs; run++ {
				base, err := runOnce(opts, workflow.Diamond(spec), diamondServices(), core.Config{
					Executor: executor.KindSSH,
					Broker:   mq.KindQueue,
					Cluster:  opts.clusterConfig(25, opts.Seed+int64(run)),
				})
				if err != nil {
					return points, fmt.Errorf("fig13 %s %dx%d baseline: %w", sc.Name, n, n, err)
				}
				baseSum += base.ExecTime

				def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, sc.ReplFully, "workalt")
				last, _ := def.TaskByID(workflow.LastMeshTask(spec))
				last.Service = "flaky"
				services := diamondServices()
				services.RegisterFailing("flaky", MeshTaskDuration)

				adapt, err := runOnce(opts, def, services, core.Config{
					Executor: executor.KindSSH,
					Broker:   mq.KindQueue,
					Cluster:  opts.clusterConfig(25, opts.Seed+int64(run)),
				})
				if err != nil {
					return points, fmt.Errorf("fig13 %s %dx%d adaptive: %w", sc.Name, n, n, err)
				}
				adaptSum += adapt.ExecTime
			}

			p := Fig13Point{
				N: n, Scenario: sc.Name,
				Baseline: baseSum / float64(opts.Runs),
				Adaptive: adaptSum / float64(opts.Runs),
			}
			p.Ratio = p.Adaptive / p.Baseline
			points = append(points, p)
			fmt.Fprintf(opts.Out, "%-10s %-18s %12.1f %12.1f %8.2f\n",
				fmt.Sprintf("%dx%d", n, n), sc.Name, p.Baseline, p.Adaptive, p.Ratio)
		}
	}
	return points, nil
}

// --- Fig. 14: executor and messaging middleware impact --------------------

// Fig14Point is one bar group of Fig. 14.
type Fig14Point struct {
	Executor string
	Broker   string
	Nodes    int
	Deploy   float64
	Exec     float64
}

// Fig14Nodes returns the node counts swept (paper: 5, 10, 15).
func Fig14Nodes(quick bool) []int {
	if quick {
		return []int{5, 10}
	}
	return []int{5, 10, 15}
}

// Fig14 reproduces the executor × middleware comparison: a 10×10
// simple-connected diamond (Quick: 4×4) under every combination of
// {SSH, Mesos} × {ActiveMQ, Kafka}, with deployment and execution times
// split, averaged over opts.Runs runs.
func Fig14(opts Options) ([]Fig14Point, error) {
	opts = opts.withDefaults()
	h, v := 10, 10
	if opts.Quick {
		h, v = 4, 4
	}
	fmt.Fprintf(opts.Out, "# Fig. 14: %dx%d diamond, deployment and execution time (model seconds, mean of %d runs)\n",
		h, v, opts.Runs)
	fmt.Fprintf(opts.Out, "%-8s %-10s %6s %12s %12s\n", "executor", "broker", "nodes", "deploy(s)", "exec(s)")

	var points []Fig14Point
	for _, exKind := range []executor.Kind{executor.KindSSH, executor.KindMesos} {
		for _, brKind := range []mq.Kind{mq.KindQueue, mq.KindLog} {
			for _, nodes := range Fig14Nodes(opts.Quick) {
				var deploySum, execSum float64
				for run := 0; run < opts.Runs; run++ {
					def := workflow.Diamond(workflow.DefaultDiamondSpec(h, v, false))
					rep, err := runOnce(opts, def, diamondServices(), core.Config{
						Executor: exKind,
						Broker:   brKind,
						Cluster:  opts.clusterConfig(nodes, opts.Seed+int64(run)),
					})
					if err != nil {
						return points, fmt.Errorf("fig14 %s/%s/%d: %w", exKind, brKind, nodes, err)
					}
					deploySum += rep.DeployTime
					execSum += rep.ExecTime
				}
				p := Fig14Point{
					Executor: string(exKind), Broker: string(brKind), Nodes: nodes,
					Deploy: deploySum / float64(opts.Runs),
					Exec:   execSum / float64(opts.Runs),
				}
				points = append(points, p)
				fmt.Fprintf(opts.Out, "%-8s %-10s %6d %12.1f %12.1f\n",
					p.Executor, p.Broker, p.Nodes, p.Deploy, p.Exec)
			}
		}
	}
	return points, nil
}

// --- Fig. 15: Montage shape and CDF ----------------------------------------

// Fig15 prints the Montage workflow's stage widths and task-duration CDF
// bands, the two panels of Fig. 15.
func Fig15(opts Options) error {
	opts = opts.withDefaults()
	def := montage.Workflow()
	order, err := def.TopoOrder()
	if err != nil {
		return err
	}
	fmt.Fprintf(opts.Out, "# Fig. 15: Montage workflow — %d tasks, %d edges\n",
		def.TaskCount(), def.EdgeCount())

	// Stage widths along the topological levels.
	level := map[string]int{}
	for _, id := range order {
		max := 0
		for _, src := range def.SrcOf(id) {
			if level[src]+1 > max {
				max = level[src] + 1
			}
		}
		level[id] = max
	}
	widths := map[int]int{}
	deepest := 0
	for _, l := range level {
		widths[l]++
		if l > deepest {
			deepest = l
		}
	}
	fmt.Fprint(opts.Out, "shape (tasks per level): ")
	for l := 0; l <= deepest; l++ {
		if l > 0 {
			fmt.Fprint(opts.Out, " -> ")
		}
		fmt.Fprintf(opts.Out, "%d", widths[l])
	}
	fmt.Fprintln(opts.Out)

	// CDF bands (the paper annotates T<20, 20<T<60, 60<T).
	var under20, mid, over60 int
	for _, d := range montage.Durations() {
		switch {
		case d < 20:
			under20++
		case d <= 60:
			mid++
		default:
			over60++
		}
	}
	total := float64(montage.TotalTasks)
	fmt.Fprintf(opts.Out, "duration CDF bands: T<20: %.1f%%   20<T<60: %.1f%%   60<T: %.1f%%\n",
		100*float64(under20)/total, 100*float64(mid)/total, 100*float64(over60)/total)
	fmt.Fprintf(opts.Out, "critical path: %.0f model seconds (paper no-failure baseline: 484 s)\n",
		montage.CriticalPathSeconds())

	fmt.Fprintln(opts.Out, "CDF:")
	points := montage.CDF()
	step := len(points) / 10
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(points); i += step {
		fmt.Fprintf(opts.Out, "  %6.0f s  %5.1f%%\n", points[i].Seconds, 100*points[i].Fraction)
	}
	return nil
}

// --- Fig. 16: resilience under failure injection ---------------------------

// Fig16Point is one bar of Fig. 16: mean execution time under failure
// injection (p, T), plus the observed failure count.
type Fig16Point struct {
	P, T     float64
	Mean     float64
	Std      float64
	Failures float64 // mean observed crashes per run
	Expected float64 // the paper's p/(1-p)·N_T estimate
}

// Fig16Params returns the (p, T) grid (paper: p ∈ {.2,.5,.8} × T ∈
// {0,15,100}).
func Fig16Params(quick bool) (ps, ts []float64) {
	if quick {
		return []float64{0.5}, []float64{0}
	}
	return []float64{0.2, 0.5, 0.8}, []float64{0, 15, 100}
}

// Fig16 reproduces the resilience experiment: Montage on Mesos + Kafka
// with agents crashing with probability p a time T into their service,
// recovered by inbox replay. The no-failure baseline is measured first
// (the dashed line of Fig. 16).
func Fig16(opts Options) (baseline Fig16Point, points []Fig16Point, err error) {
	opts = opts.withDefaults()
	fmt.Fprintf(opts.Out, "# Fig. 16: Montage under failure injection (Mesos + Kafka, mean of %d runs, model seconds)\n", opts.Runs)

	runMontage := func(p, t float64, seed int64) (*core.Report, error) {
		reg := agent.NewRegistry()
		montage.RegisterServices(reg)
		return runOnce(opts, montage.Workflow(), reg, core.Config{
			Executor: executor.KindMesos,
			Broker:   mq.KindLog,
			Cluster:  opts.clusterConfig(25, seed),
			FailureP: p,
			FailureT: t,
		})
	}

	measure := func(p, t float64) (Fig16Point, error) {
		var times []float64
		var failSum float64
		for run := 0; run < opts.Runs; run++ {
			rep, err := runMontage(p, t, opts.Seed+int64(run))
			if err != nil {
				return Fig16Point{}, err
			}
			times = append(times, rep.ExecTime)
			failSum += float64(rep.Failures)
		}
		mean, std := meanStd(times)
		nT := montage.TasksLongerThan(t)
		return Fig16Point{
			P: p, T: t, Mean: mean, Std: std,
			Failures: failSum / float64(opts.Runs),
			Expected: expectedFailures(p, nT),
		}, nil
	}

	baseline, err = measure(0, 0)
	if err != nil {
		return baseline, nil, fmt.Errorf("fig16 baseline: %w", err)
	}
	fmt.Fprintf(opts.Out, "baseline (no failures): %.0f s (σ %.1f)   [paper: 484 s, σ 13.5]\n",
		baseline.Mean, baseline.Std)
	fmt.Fprintf(opts.Out, "%6s %6s %12s %8s %10s %10s\n", "p", "T", "exec(s)", "σ", "failures", "expected")

	ps, ts := Fig16Params(opts.Quick)
	for _, t := range ts {
		for _, p := range ps {
			point, err := measure(p, t)
			if err != nil {
				return baseline, points, fmt.Errorf("fig16 p=%v T=%v: %w", p, t, err)
			}
			points = append(points, point)
			fmt.Fprintf(opts.Out, "%6.1f %6.0f %12.0f %8.1f %10.1f %10.1f\n",
				point.P, point.T, point.Mean, point.Std, point.Failures, point.Expected)
		}
	}
	return baseline, points, nil
}

func expectedFailures(p float64, nT int) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return p / (1 - p) * float64(nT)
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}
