package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/mq"
	"ginflow/internal/workflow"
)

// quickOpts runs experiments on reduced grids at a reduced (but still
// granularity-respecting) pace.
func quickOpts(buf *bytes.Buffer) Options {
	return Options{
		Out:   buf,
		Quick: true,
		Runs:  1,
		Scale: time.Millisecond, // modelled sleeps must clear timer granularity
	}
}

func TestFig12QuickShape(t *testing.T) {
	var buf bytes.Buffer
	simple, err := Fig12(quickOpts(&buf), false)
	if err != nil {
		t.Fatal(err)
	}
	grid := Fig12Grid(true)
	if len(simple) != len(grid)*len(grid) {
		t.Fatalf("points: %d", len(simple))
	}
	byHV := map[[2]int]float64{}
	for _, p := range simple {
		if p.Time <= 0 {
			t.Fatalf("non-positive time at %dx%d", p.H, p.V)
		}
		byHV[[2]int{p.H, p.V}] = p.Time
	}
	// Time grows with the vertical dimension (layers serialize).
	lo, hi := grid[0], grid[len(grid)-1]
	if byHV[[2]int{lo, hi}] <= byHV[[2]int{lo, lo}] {
		t.Errorf("time must grow with v: %v", byHV)
	}
	if !strings.Contains(buf.String(), "Fig. 12(a)") {
		t.Errorf("output header missing:\n%s", buf.String())
	}
}

// TestDiamondSweepQuick runs the scaling sweep in both modes on the
// reduced grid: standalone runs and the whole sweep fanned through one
// shared Manager, which must produce per-size results of the same shape.
func TestDiamondSweepQuick(t *testing.T) {
	var buf bytes.Buffer
	standalone, _, err := DiamondSweep(quickOpts(&buf), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	shared, _, err := DiamondSweep(quickOpts(&buf), nil, true)
	if err != nil {
		t.Fatal(err)
	}
	sizes := SweepSizes(true)
	if len(standalone) != len(sizes) || len(shared) != len(sizes) {
		t.Fatalf("points: standalone=%d shared=%d, want %d", len(standalone), len(shared), len(sizes))
	}
	for i := range sizes {
		if standalone[i].N != sizes[i] || shared[i].N != sizes[i] {
			t.Errorf("size order: standalone=%v shared=%v", standalone, shared)
		}
		if standalone[i].Exec <= 0 || shared[i].Exec <= 0 {
			t.Errorf("non-positive exec at %dx%d", sizes[i], sizes[i])
		}
	}
	// Bigger meshes take longer when run back to back. (No such
	// monotonicity holds in shared mode: concurrent sessions contend on
	// the one middleware, so a small mesh can queue behind a big one.)
	last := len(sizes) - 1
	if standalone[last].Exec <= standalone[0].Exec {
		t.Errorf("standalone sweep not scaling: %v", standalone)
	}
	if !strings.Contains(buf.String(), "shared Manager") {
		t.Errorf("output header missing:\n%s", buf.String())
	}
}

func TestFig12FullyConnectedCostsMore(t *testing.T) {
	// A wide, shallow diamond separates the two flavours structurally:
	// 20x4 fully connected pushes 400 messages per layer boundary through
	// the shared broker where the simple flavour pushes 20. The quick
	// grid's small squares are too close to distinguish under load noise
	// (e.g. with the race detector), so measure this shape directly.
	run := func(fully bool) float64 {
		def := workflow.Diamond(workflow.DefaultDiamondSpec(20, 4, fully))
		rep, err := runOnce(Options{Scale: time.Millisecond, Timeout: time.Minute}.withDefaults(),
			def, diamondServices(), core.Config{
				Executor: executor.KindSSH,
				Broker:   mq.KindQueue,
				Cluster: cluster.Config{
					Nodes: 25, CoresPerNode: 24, Scale: time.Millisecond, Seed: 7,
				},
			})
		if err != nil {
			t.Fatal(err)
		}
		return rep.ExecTime
	}
	simple := run(false)
	full := run(true)
	if full <= simple*1.15 {
		t.Errorf("fully connected %0.1f should clearly exceed simple %0.1f", full, simple)
	}
}

func TestFig13QuickShape(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig13(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3*len(Fig13Grid(true)) {
		t.Fatalf("points: %d", len(points))
	}
	for _, p := range points {
		if p.Ratio <= 0.5 || p.Ratio > 4.0 {
			t.Errorf("%s %dx%d: implausible ratio %.2f (baseline %.1f adaptive %.1f)",
				p.Scenario, p.N, p.N, p.Ratio, p.Baseline, p.Adaptive)
		}
	}
}

func TestFig14QuickShape(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig14(quickOpts(&buf))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig14Point{}
	for _, p := range points {
		byKey[p.Executor+"/"+p.Broker+"/"+strconv.Itoa(p.Nodes)] = p
	}
	// ActiveMQ must beat Kafka on execution time for the same executor.
	for _, ex := range []string{"ssh", "mesos"} {
		q := byKey[ex+"/activemq/5"].Exec
		k := byKey[ex+"/kafka/5"].Exec
		if k <= q {
			t.Errorf("%s: kafka exec %.1f must exceed activemq %.1f", ex, k, q)
		}
	}
	// Mesos deployment time decreases with nodes; SSH's increases.
	if !(byKey["mesos/activemq/10"].Deploy < byKey["mesos/activemq/5"].Deploy) {
		t.Errorf("mesos deploy must shrink with nodes: %+v", points)
	}
	if !(byKey["ssh/activemq/10"].Deploy > byKey["ssh/activemq/5"].Deploy) {
		t.Errorf("ssh deploy must grow with nodes: %+v", points)
	}
}

func TestFig15Output(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig15(Options{Out: &buf}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"118 tasks", "108", "T<20", "critical path"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Fig15 output missing %q:\n%s", frag, out)
		}
	}
}

func TestFig16QuickShape(t *testing.T) {
	var buf bytes.Buffer
	opts := quickOpts(&buf)
	baseline, points, err := Fig16(opts)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Mean <= 0 {
		t.Fatalf("baseline: %+v", baseline)
	}
	if len(points) != 1 { // quick: p=0.5, T=0
		t.Fatalf("points: %+v", points)
	}
	p := points[0]
	if p.Failures == 0 {
		t.Error("no failures observed at p=0.5")
	}
	if p.Mean <= baseline.Mean {
		t.Errorf("failures must cost time: %0.f vs baseline %0.f", p.Mean, baseline.Mean)
	}
	// Observed failures should be within a factor ~2.5 of the paper's
	// p/(1-p)·N_T estimate even on a single run.
	if p.Failures < p.Expected/2.5 || p.Failures > p.Expected*2.5 {
		t.Errorf("failures %.0f vs expected %.0f diverge", p.Failures, p.Expected)
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("meanStd = %v, %v; want 5, 2", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty meanStd = %v, %v", m, s)
	}
}
