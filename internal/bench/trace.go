package bench

import (
	"fmt"

	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/mq"
	"ginflow/internal/workflow"
)

// TracedDiamondRun enacts one n×n simple-connected diamond on the
// discrete-event virtual clock with the full event timeline retained,
// and returns the run report. The backing for ginflow-bench -trace-out:
// the report's Events feed trace.WriteChromeTrace, and because the run
// is virtual the exported model-time spans are bit-identical across
// same-seed invocations.
func TracedDiamondRun(opts Options, n int) (*core.Report, error) {
	opts = opts.withDefaults()
	opts.Virtual = true
	def := workflow.Diamond(workflow.DefaultDiamondSpec(n, n, false))
	rep, err := runOnce(opts, def, diamondServices(), core.Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindQueue,
		BrokerShards: opts.BrokerShards,
		Cluster:      opts.clusterConfig(25, opts.Seed),
		CollectTrace: true,
	})
	if err != nil {
		return nil, fmt.Errorf("traced %dx%d diamond: %w", n, n, err)
	}
	return rep, nil
}
