package bench

import (
	"fmt"

	"ginflow/internal/core"
	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/mq"
	"ginflow/internal/workflow"
)

// SoakChaosConfig returns the fault mix the chaos soak injects at every
// seed: lossy, duplicating, delaying, reordering message delivery plus
// transient invocation errors and slow-downs — the full message and
// invocation surface, with probabilities high enough that a typical run
// draws dozens of faults.
func SoakChaosConfig(seed int64) failure.ChaosConfig {
	return failure.ChaosConfig{
		Seed:            seed,
		MessageDropP:    0.05,
		MessageDupP:     0.10,
		MessageDelayP:   0.10,
		MessageReorderP: 0.05,
		InvokeErrorP:    0.05,
		InvokeSlowP:     0.10,
	}
}

// SoakRetryConfig returns the retry budget the chaos soak runs under:
// generous enough that the forced fault-free draw after a consecutive
// run (ChaosConfig.MaxConsecutive) always lands inside the budget.
func SoakRetryConfig() failure.RetryConfig {
	return failure.RetryConfig{MaxAttempts: 8, BackoffBase: 0.25}
}

// ChaosSoak runs `seeds` seeded chaos schedules over a diamond workload
// on the log broker and checks each run converges to the chaos-free
// outcome (same per-task statuses and exit results). The failing seed is
// named in the error, so a red soak is reproducible from the log alone.
func ChaosSoak(opts Options, seeds int) error {
	opts = opts.withDefaults()
	if seeds <= 0 {
		seeds = 10
	}
	h, v := 4, 4
	if opts.Quick {
		h, v = 2, 2
	}
	def := workflow.Diamond(workflow.DefaultDiamondSpec(h, v, false))
	cleanCfg := func() core.Config {
		return core.Config{
			Executor: executor.KindSSH,
			Broker:   mq.KindLog,
			Cluster:  opts.clusterConfig(25, opts.Seed),
		}
	}
	baseline, err := runOnce(opts, def, diamondServices(), cleanCfg())
	if err != nil {
		return fmt.Errorf("chaos soak baseline: %w", err)
	}

	fmt.Fprintf(opts.Out, "# chaos soak: %d seeded schedules, %dx%d diamond on kafka\n", seeds, h, v)
	for i := 0; i < seeds; i++ {
		seed := opts.Seed + int64(i)
		cfg := cleanCfg()
		cfg.Chaos = SoakChaosConfig(seed)
		cfg.Retry = SoakRetryConfig()
		rep, err := runOnce(opts, def, diamondServices(), cfg)
		if err != nil {
			return fmt.Errorf("chaos soak: seed %d failed: %w", seed, err)
		}
		if reason := outcomeDiff(baseline, rep); reason != "" {
			return fmt.Errorf("chaos soak: seed %d diverged from the chaos-free outcome: %s", seed, reason)
		}
		fmt.Fprintf(opts.Out, "seed %-6d ok: exec=%7.1fs dups=%-3d dropped-events=%d\n",
			seed, rep.ExecTime, rep.DuplicatesSuppressed, rep.EventsDropped)
	}
	return nil
}

// outcomeDiff compares the observable outcome of two runs: per-task
// final statuses and exit results. It returns "" when they match, else a
// one-line description of the first divergence.
func outcomeDiff(a, b *core.Report) string {
	for task, st := range a.Statuses {
		if b.Statuses[task] != st {
			return fmt.Sprintf("task %s status %v vs %v", task, st, b.Statuses[task])
		}
	}
	if len(a.Results) != len(b.Results) {
		return fmt.Sprintf("%d vs %d exit result sets", len(a.Results), len(b.Results))
	}
	for task, rs := range a.Results {
		bs := b.Results[task]
		if len(rs) != len(bs) {
			return fmt.Sprintf("exit %s has %d vs %d results", task, len(rs), len(bs))
		}
		for i := range rs {
			if rs[i] != bs[i] {
				return fmt.Sprintf("exit %s result %d: %q vs %q", task, i, rs[i], bs[i])
			}
		}
	}
	return ""
}
