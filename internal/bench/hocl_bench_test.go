package bench

// Micro-benchmarks for the compiled expression machine (internal/hocl
// ecompile.go / evm.go), guarded by cmd/benchguard alongside the
// end-to-end reduction benchmark: the guard path must stay allocation-
// free per failed candidate, and the product path must not regress to
// tree-walker slice churn.

import (
	"testing"

	"ginflow/internal/hocl"
)

// BenchmarkEvalGuard measures the cost of guard rejection, the dominant
// operation of chemical matching: getMax's `x >= y` over a solution of
// unorderable idents tries every candidate pair, and every guard
// evaluation fails with a comparison type error (eval-error-means-false).
// Under the tree-walker each failure allocated an error chain; compiled
// quiet-mode guards fail without touching the heap, so the per-call
// allocations are the constant matcher setup of the public MatchRule
// path, independent of the quadratic number of guard attempts.
func BenchmarkEvalGuard(b *testing.B) {
	rule := hocl.MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	atoms := make([]hocl.Atom, 9)
	for i := 0; i < 8; i++ {
		atoms[i] = hocl.Ident("A" + string(rune('0'+i)))
	}
	atoms[8] = rule
	sol := hocl.NewSolution(atoms...)
	funcs := hocl.NewFuncs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := hocl.MatchRule(rule, sol, 8, funcs, nil); m != nil {
			b.Fatal("idents must not satisfy x >= y")
		}
	}
}

// BenchmarkEvalProducts measures product construction through the
// engine's firing path: a one-shot rule whose products exercise every
// constructor opcode — an omega splice into a call, a nested tuple, and
// a fresh sub-solution with a second splice. Per iteration the template
// is snapshotted (the agent instantiation path) and reduced to inertness,
// which fires the rule exactly once.
func BenchmarkEvalProducts(b *testing.B) {
	tmpl, err := hocl.Parse(
		`let gw = replace-one IN:<*w> by OUT:list(*w), PAIR:(1:2), <DONE, *w>
		 in <gw, IN:<"a", "b", "c", "d">>`)
	if err != nil {
		b.Fatal(err)
	}
	engine := hocl.NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := tmpl.SnapshotSolution()
		if err := engine.Reduce(sol); err != nil {
			b.Fatal(err)
		}
	}
}
