package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"ginflow/internal/cluster"
)

// TestSetCapRing exercises the ring-buffer retention bound: overwrite
// order, the dropped counter, shrink-below-length, and restoring
// unbounded retention.
func TestSetCapRing(t *testing.T) {
	clock := cluster.NewVirtualClock()
	r := NewRecorder(clock)
	r.SetCap(3)
	for i := 1; i <= 5; i++ {
		clock.AdvanceTo(float64(i))
		r.Record(ResultSent, "T", i, "")
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", r.Dropped())
	}
	events := r.Events()
	for i, want := range []float64{3, 4, 5} {
		if events[i].At != want {
			t.Errorf("event[%d].At = %v, want %v (newest 3 must survive)", i, events[i].At, want)
		}
	}

	// Shrinking below the current length discards the oldest surplus.
	r.SetCap(1)
	if r.Len() != 1 || r.Events()[0].At != 5 {
		t.Errorf("after shrink: len=%d events=%v, want only the newest", r.Len(), r.Events())
	}
	if r.Dropped() != 4 {
		t.Errorf("dropped = %d, want 4", r.Dropped())
	}

	// Restoring unbounded retention grows again.
	r.SetCap(0)
	clock.AdvanceTo(6)
	r.Record(ResultSent, "T", 6, "")
	clock.AdvanceTo(7)
	r.Record(ResultSent, "T", 7, "")
	if r.Len() != 3 {
		t.Errorf("after uncapping: len = %d, want 3", r.Len())
	}

	// Nil recorder stays safe.
	var nilRec *Recorder
	nilRec.SetCap(2)
	if nilRec.Dropped() != 0 {
		t.Error("nil recorder dropped != 0")
	}
}

// TestSetCapMidRing re-bounds a recorder whose ring has already
// wrapped (start > 0), the aliasing-sensitive path of SetCap.
func TestSetCapMidRing(t *testing.T) {
	clock := cluster.NewVirtualClock()
	r := NewRecorder(clock)
	r.SetCap(4)
	for i := 1; i <= 6; i++ { // wraps twice: ring holds 3,4,5,6 with start=2
		clock.AdvanceTo(float64(i))
		r.Record(ResultSent, "T", i, "")
	}
	r.SetCap(2)
	events := r.Events()
	if len(events) != 2 || events[0].At != 5 || events[1].At != 6 {
		t.Errorf("mid-ring re-bound kept %v, want [5 6]", events)
	}
	clock.AdvanceTo(7)
	r.Record(ResultSent, "T", 7, "")
	events = r.Events()
	if len(events) != 2 || events[0].At != 6 || events[1].At != 7 {
		t.Errorf("post-re-bound ring = %v, want [6 7]", events)
	}
}

// TestWriteChromeTrace locks the trace_event mapping: a metadata row
// per task, matched invocations as complete "X" slices with model
// seconds scaled to microseconds, everything else as instants.
func TestWriteChromeTrace(t *testing.T) {
	clock := cluster.NewVirtualClock()
	r := NewRecorder(clock)
	clock.AdvanceTo(1)
	r.Record(AgentStarted, "T1", 0, "")
	clock.AdvanceTo(2)
	r.Record(ServiceInvoked, "T1", 0, "work")
	clock.AdvanceTo(4.5)
	r.Record(ServiceCompleted, "T1", 0, "work")
	clock.AdvanceTo(5)
	r.Record(ServiceInvoked, "T2", 1, "flaky")
	clock.AdvanceTo(6)
	r.Record(ServiceErrored, "T2", 1, "flaky")
	clock.AdvanceTo(7)
	r.Record(AgentCrashed, "T2", 1, "boom")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", out.DisplayTimeUnit)
	}

	byPh := map[string]int{}
	var slices, metas int
	for _, e := range out.TraceEvents {
		byPh[e.Ph]++
		switch e.Ph {
		case "M":
			metas++
			if e.Name != "thread_name" {
				t.Errorf("metadata name = %q", e.Name)
			}
		case "X":
			slices++
			switch e.Name {
			case "work":
				if e.Ts != 2e6 || e.Dur != 2.5e6 {
					t.Errorf("work slice ts=%v dur=%v, want 2e6/2.5e6", e.Ts, e.Dur)
				}
				if e.Args["error"] != false {
					t.Errorf("work slice error = %v", e.Args["error"])
				}
			case "flaky":
				if e.Args["error"] != true {
					t.Errorf("errored slice not flagged: %v", e.Args)
				}
			default:
				t.Errorf("unexpected slice %q", e.Name)
			}
		}
	}
	if metas != 2 {
		t.Errorf("thread metadata rows = %d, want 2 (one per task)", metas)
	}
	if slices != 2 {
		t.Errorf("X slices = %d, want 2", slices)
	}
	// agent-started and agent-crashed become instants; the four
	// invocation events were consumed by the slices.
	if byPh["i"] != 2 {
		t.Errorf("instants = %d, want 2", byPh["i"])
	}
}

// TestWriteChromeTraceEmpty: an empty timeline still renders a valid,
// loadable document (traceEvents present, not null).
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["traceEvents"]) != "[]" {
		t.Errorf("traceEvents = %s, want []", raw["traceEvents"])
	}
}
