// Package trace records the observable events of a workflow enactment —
// agent lifecycle, service invocations, result transfers, adaptation
// triggers, crashes and recoveries — on the model-time axis. A Recorder
// is optional instrumentation: the engine attaches one when asked
// (core.Config.CollectTrace) and returns the collected timeline in the
// run report, where tests and the CLI can assert on or display it.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Kind classifies an event.
type Kind string

// Event kinds, in rough lifecycle order.
const (
	AgentStarted     Kind = "agent-started"
	ServiceInvoked   Kind = "service-invoked"
	ServiceCompleted Kind = "service-completed"
	ServiceErrored   Kind = "service-errored" // ERROR result (adaptation fuel)
	ResultSent       Kind = "result-sent"
	AdaptTriggered   Kind = "adapt-triggered"
	AgentCrashed     Kind = "agent-crashed"
	AgentRecovered   Kind = "agent-recovered"
	TaskCompleted    Kind = "task-completed"
	// SessionRecovered marks a whole session resumed from its journal by
	// a fresh Manager process (DESIGN.md "Durability & recovery").
	SessionRecovered Kind = "session-recovered"
	// ServiceFaulted marks a transient injected invocation fault (chaos
	// harness); the agent retries with backoff.
	ServiceFaulted Kind = "service-faulted"
	// MessageDeduped marks a duplicated delivery suppressed by the inbox
	// sequence protocol (exactly-once ingestion).
	MessageDeduped Kind = "message-deduped"
	// AgentEscalated marks an agent abandoned after its transient-fault
	// retry budget ran out: the session fails with the cause chain
	// instead of stalling.
	AgentEscalated Kind = "agent-escalated"
	// EventsDropped summarises events lost on the lossy live-event
	// stream (slow consumer backpressure), recorded once per session.
	EventsDropped Kind = "events-dropped"
)

// Event is one timeline entry.
type Event struct {
	// At is the model-time instant of the event.
	At float64
	// Kind classifies the event.
	Kind Kind
	// Task is the task whose agent emitted the event.
	Task string
	// Incarnation is the agent incarnation (0 for the first launch).
	Incarnation int
	// Info carries event-specific detail (service name, destination,
	// adaptation id, ...).
	Info string
}

func (e Event) String() string {
	if e.Info != "" {
		return fmt.Sprintf("%10.2fs  %-18s %-12s #%d  %s", e.At, e.Kind, e.Task, e.Incarnation, e.Info)
	}
	return fmt.Sprintf("%10.2fs  %-18s %-12s #%d", e.At, e.Kind, e.Task, e.Incarnation)
}

// Clock supplies model time; cluster.Clock satisfies it.
type Clock interface {
	Now() float64
}

// Recorder collects events. It is safe for concurrent use; a nil
// Recorder ignores all records, so instrumentation sites need no guards.
//
// Besides retaining the timeline, a recorder can fan events out live:
// sinks registered with AddSink observe every event as it is recorded —
// the mechanism behind the engine's streaming Events() API. A
// forward-only recorder (NewForwarder) invokes its sinks without
// retaining anything, so always-on streaming costs no unbounded memory.
type Recorder struct {
	clock  Clock
	retain bool

	mu     sync.Mutex
	events []Event
	// cap bounds the retained timeline (0 = unbounded, the default).
	// When full, the ring overwrites the oldest event — start is the
	// ring head — and dropped counts the overwritten events.
	cap     int
	start   int
	dropped int64
	sinks   []func(Event)
}

// NewRecorder returns a recorder stamping events with the given clock
// and retaining the full timeline.
func NewRecorder(clock Clock) *Recorder {
	return &Recorder{clock: clock, retain: true}
}

// NewForwarder returns a recorder that forwards events to its sinks
// without retaining them: Events() stays empty, Record is O(sinks).
func NewForwarder(clock Clock) *Recorder {
	return &Recorder{clock: clock}
}

// AddSink registers a live observer invoked (synchronously) for every
// subsequently recorded event. Sinks must not block: a slow sink stalls
// the recording agent. Safe to call concurrently with Record.
func (r *Recorder) AddSink(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, fn)
	r.mu.Unlock()
}

// Record appends an event at the current model time and forwards it to
// the registered sinks.
func (r *Recorder) Record(kind Kind, task string, incarnation int, info string) {
	if r == nil {
		return
	}
	at := 0.0
	if r.clock != nil {
		at = r.clock.Now()
	}
	e := Event{At: at, Kind: kind, Task: task, Incarnation: incarnation, Info: info}
	r.mu.Lock()
	if r.retain {
		if r.cap > 0 && len(r.events) == r.cap {
			// Ring full: overwrite the oldest event.
			r.events[r.start] = e
			r.start = (r.start + 1) % r.cap
			r.dropped++
			obsDropped.Inc()
		} else {
			r.events = append(r.events, e)
		}
	}
	sinks := r.sinks
	r.mu.Unlock()
	for _, fn := range sinks {
		fn(e)
	}
}

// SetCap bounds the retained timeline to the newest n events, turning
// the retention buffer into a ring: once full, each new event
// overwrites the oldest and counts into Dropped. n <= 0 restores
// unbounded retention (the default). Shrinking below the current
// length discards the oldest surplus immediately.
func (r *Recorder) SetCap(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	// Normalise the ring into record order before re-bounding it.
	if r.start > 0 {
		r.events = append(r.events[r.start:], r.events[:r.start]...)
		r.start = 0
	}
	if n <= 0 {
		r.cap = 0
		return
	}
	r.cap = n
	if surplus := len(r.events) - n; surplus > 0 {
		r.events = append([]Event(nil), r.events[surplus:]...)
		r.dropped += int64(surplus)
		obsDropped.Add(int64(surplus))
	}
}

// Dropped reports how many retained events the ring-buffer cap
// (SetCap) has overwritten or discarded.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the timeline, sorted by model time (record
// order breaks ties).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	r.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Filter returns the events of one kind, in time order.
func (r *Recorder) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// ForTask returns the events of one task, in time order.
func (r *Recorder) ForTask(task string) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Task == task {
			out = append(out, e)
		}
	}
	return out
}

// Count returns the number of events of a kind.
func (r *Recorder) Count(kind Kind) int {
	return len(r.Filter(kind))
}

// Len returns the total number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteTimeline renders the timeline to w, one event per line.
func (r *Recorder) WriteTimeline(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Spans derives per-task busy intervals (service-invoked to
// service-completed/errored pairs, matched per incarnation) — the raw
// material of a Gantt view.
type Span struct {
	Task        string
	Incarnation int
	Start, End  float64
	Err         bool // ended in ERROR
}

// Spans returns completed service spans in start order. Invocations cut
// short by a crash produce no span (their end never happened).
func (r *Recorder) Spans() []Span {
	type key struct {
		task string
		inc  int
	}
	open := map[key]float64{}
	var spans []Span
	for _, e := range r.Events() {
		k := key{e.Task, e.Incarnation}
		switch e.Kind {
		case ServiceInvoked:
			open[k] = e.At
		case ServiceCompleted, ServiceErrored:
			if start, ok := open[k]; ok {
				spans = append(spans, Span{
					Task: e.Task, Incarnation: e.Incarnation,
					Start: start, End: e.At,
					Err: e.Kind == ServiceErrored,
				})
				delete(open, k)
			}
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return spans
}
