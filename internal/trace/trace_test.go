package trace

import (
	"strings"
	"testing"

	"ginflow/internal/cluster"
)

// The tests drive model time through a participant-less virtual clock:
// AdvanceTo moves Now() forward by hand (the unit-test face of the
// discrete-event scheduler; see internal/cluster).

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(AgentStarted, "T1", 0, "") // must not panic
	if r.Events() != nil {
		t.Error("nil recorder has events")
	}
	if r.Len() != 0 {
		t.Error("nil recorder non-empty")
	}
}

func TestRecordAndQuery(t *testing.T) {
	clock := cluster.NewVirtualClock()
	r := NewRecorder(clock)

	clock.AdvanceTo(1)
	r.Record(AgentStarted, "T1", 0, "")
	clock.AdvanceTo(2)
	r.Record(ServiceInvoked, "T1", 0, "s1")
	clock.AdvanceTo(5)
	r.Record(ServiceCompleted, "T1", 0, "s1")
	clock.AdvanceTo(6)
	r.Record(ResultSent, "T1", 0, "T2")
	clock.AdvanceTo(7)
	r.Record(TaskCompleted, "T2", 0, "")

	if r.Len() != 5 {
		t.Fatalf("len = %d", r.Len())
	}
	events := r.Events()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("events out of order: %v", events)
		}
	}
	if got := r.Filter(ServiceInvoked); len(got) != 1 || got[0].Info != "s1" {
		t.Errorf("Filter = %v", got)
	}
	if got := r.ForTask("T1"); len(got) != 4 {
		t.Errorf("ForTask(T1) = %v", got)
	}
	if r.Count(TaskCompleted) != 1 {
		t.Errorf("Count = %d", r.Count(TaskCompleted))
	}
}

func TestSpans(t *testing.T) {
	clock := cluster.NewVirtualClock()
	r := NewRecorder(clock)

	// Incarnation 0 invokes at t=1 and crashes (no completion).
	clock.AdvanceTo(1)
	r.Record(ServiceInvoked, "T1", 0, "s")
	clock.AdvanceTo(2)
	r.Record(AgentCrashed, "T1", 0, "s")
	// Incarnation 1 replays: invokes at t=4, completes at t=9 — with
	// another task erroring at t=5..6 in between.
	clock.AdvanceTo(4)
	r.Record(ServiceInvoked, "T1", 1, "s")
	clock.AdvanceTo(5)
	r.Record(ServiceInvoked, "T2", 0, "flaky")
	clock.AdvanceTo(6)
	r.Record(ServiceErrored, "T2", 0, "flaky")
	clock.AdvanceTo(9)
	r.Record(ServiceCompleted, "T1", 1, "s")

	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %v", spans)
	}
	if spans[0].Task != "T1" || spans[0].Start != 4 || spans[0].End != 9 || spans[0].Err {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[1].Task != "T2" || !spans[1].Err {
		t.Errorf("span[1] = %+v", spans[1])
	}
}

func TestWriteTimeline(t *testing.T) {
	clock := cluster.NewVirtualClock()
	clock.AdvanceTo(3.5)
	r := NewRecorder(clock)
	r.Record(AgentStarted, "T1", 2, "detail")
	var b strings.Builder
	if err := r.WriteTimeline(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"3.50s", "agent-started", "T1", "#2", "detail"} {
		if !strings.Contains(out, frag) {
			t.Errorf("timeline %q missing %q", out, frag)
		}
	}
}

// TestSinkFanOut: sinks observe every recorded event live; a
// forward-only recorder streams without retaining.
func TestSinkFanOut(t *testing.T) {
	r := NewRecorder(cluster.NewVirtualClock())
	var got1, got2 []Event
	r.AddSink(func(e Event) { got1 = append(got1, e) })
	r.AddSink(func(e Event) { got2 = append(got2, e) })
	r.Record(AgentStarted, "T1", 0, "")
	r.Record(TaskCompleted, "T1", 0, "")
	if len(got1) != 2 || len(got2) != 2 {
		t.Errorf("sinks saw %d/%d events, want 2/2", len(got1), len(got2))
	}
	if got1[1].Kind != TaskCompleted {
		t.Errorf("sink order: %v", got1)
	}
	if r.Len() != 2 {
		t.Errorf("retained = %d", r.Len())
	}

	f := NewForwarder(cluster.NewVirtualClock())
	var streamed int
	f.AddSink(func(Event) { streamed++ })
	f.Record(AgentStarted, "T1", 0, "")
	if streamed != 1 {
		t.Errorf("forwarder streamed %d, want 1", streamed)
	}
	if f.Len() != 0 || len(f.Events()) != 0 {
		t.Errorf("forwarder retained events: %d", f.Len())
	}
	// Nil recorder and nil sink stay safe.
	var nilRec *Recorder
	nilRec.AddSink(func(Event) {})
	f.AddSink(nil)
	f.Record(AgentStarted, "T1", 0, "")
}

func TestRecorderConcurrency(t *testing.T) {
	r := NewRecorder(cluster.NewVirtualClock())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				r.Record(ResultSent, "T", 0, "x")
				_ = r.Events()
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if r.Len() != 8*200 {
		t.Errorf("len = %d", r.Len())
	}
}
