package trace

import (
	"encoding/json"
	"io"
	"sort"

	"ginflow/internal/obs"
)

// obsDropped counts ring-buffer overwrites across every capped
// recorder in the process (satellite of the Recorder.SetCap bound).
var obsDropped = obs.Default().Counter("ginflow_trace_events_dropped_total",
	"Retained trace events overwritten by the Recorder ring-buffer cap.")

// chromeEvent is one entry of the Chrome trace_event JSON format
// (the "JSON Array Format" chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event object form.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the recorder's timeline as Chrome
// trace_event JSON — openable in about:tracing or Perfetto. See the
// package-level WriteChromeTrace for the mapping.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, r.Events())
}

// WriteChromeTrace renders an event timeline (e.g. Report.Events) as
// Chrome trace_event JSON. Each task becomes one named thread; matched
// service-invoked → service-completed/errored pairs become complete
// ("X") slices labelled with the service, and every other event
// becomes a thread-scoped instant. Timestamps are model seconds scaled
// to microseconds, so one trace-viewer second reads as one model
// second with the default ms display unit.
func WriteChromeTrace(w io.Writer, events []Event) error {
	// Stable task -> tid mapping, in first-appearance-then-name order.
	tids := map[string]int{}
	var tasks []string
	for _, e := range events {
		if _, ok := tids[e.Task]; !ok {
			tids[e.Task] = 0
			tasks = append(tasks, e.Task)
		}
	}
	sort.Strings(tasks)
	for i, t := range tasks {
		tids[t] = i + 1
	}

	const usPerModelSecond = 1e6
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, t := range tasks {
		name := t
		if name == "" {
			name = "(session)"
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tids[t],
			Args: map[string]any{"name": name},
		})
	}

	// Pair invocations into slices exactly like Spans, but keeping the
	// invoked event's Info (the service name) as the slice label.
	type openInv struct {
		start float64
		info  string
	}
	type key struct {
		task string
		inc  int
	}
	open := map[key]openInv{}
	for _, e := range events {
		k := key{e.Task, e.Incarnation}
		switch e.Kind {
		case ServiceInvoked:
			open[k] = openInv{start: e.At, info: e.Info}
		case ServiceCompleted, ServiceErrored:
			if inv, ok := open[k]; ok {
				name := inv.info
				if name == "" {
					name = "service"
				}
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: name, Ph: "X", Pid: 1, Tid: tids[e.Task],
					Ts: inv.start * usPerModelSecond, Dur: (e.At - inv.start) * usPerModelSecond,
					Args: map[string]any{
						"incarnation": e.Incarnation,
						"error":       e.Kind == ServiceErrored,
					},
				})
				delete(open, k)
			}
		default:
			args := map[string]any{"incarnation": e.Incarnation}
			if e.Info != "" {
				args["info"] = e.Info
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: string(e.Kind), Ph: "i", S: "t", Pid: 1, Tid: tids[e.Task],
				Ts: e.At * usPerModelSecond, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
