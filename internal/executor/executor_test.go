package executor

import (
	"context"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/workflow"
)

func testSpecs(t *testing.T, n int) []workflow.AgentSpec {
	t.Helper()
	d := workflow.Sequence(n, "s", "in")
	specs, err := d.TranslateAgents()
	if err != nil {
		t.Fatal(err)
	}
	return specs
}

func testCluster(nodes, cores int) *cluster.Cluster {
	return cluster.New(cluster.Config{
		Nodes: nodes, CoresPerNode: cores, Scale: 20 * time.Microsecond,
	})
}

func TestNewKinds(t *testing.T) {
	if e, err := New(KindSSH); err != nil || e.Name() != "ssh" {
		t.Errorf("ssh: %v, %v", e, err)
	}
	if e, err := New(KindMesos); err != nil || e.Name() != "mesos" {
		t.Errorf("mesos: %v, %v", e, err)
	}
	if e, err := New(KindCentralized); err != nil || e != nil {
		t.Errorf("centralized must be nil executor: %v, %v", e, err)
	}
	if _, err := New("slurm"); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSSHRoundRobinPlacement(t *testing.T) {
	c := testCluster(3, 24)
	specs := testSpecs(t, 9)
	placements, deploy, err := (&SSH{}).Deploy(context.Background(), specs, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 9 {
		t.Fatalf("placed %d", len(placements))
	}
	if deploy <= 0 {
		t.Error("deployment time must be positive")
	}
	// Round-robin: 3 agents per node.
	perNode := map[int]int{}
	for _, p := range placements {
		perNode[p.Node.ID]++
	}
	for id, n := range perNode {
		if n != 3 {
			t.Errorf("node %d hosts %d agents, want 3", id, n)
		}
	}
}

func TestSSHClusterFull(t *testing.T) {
	c := testCluster(1, 1) // 2 slots
	specs := testSpecs(t, 3)
	_, _, err := (&SSH{}).Deploy(context.Background(), specs, c)
	if err == nil {
		t.Fatal("overfull deployment succeeded")
	}
	// Failed deployment must release what it allocated.
	if got := c.Node(0).InUse(); got != 0 {
		t.Errorf("leaked %d slots", got)
	}
}

// TestSSHDeployTimeGrowsWithNodes encodes the paper's §V-C observation:
// "the deployment time slightly increases with the number of nodes".
func TestSSHDeployTimeGrowsWithNodes(t *testing.T) {
	times := map[int]float64{}
	for _, nodes := range []int{5, 10, 15} {
		c := testCluster(nodes, 24)
		_, deploy, err := (&SSH{}).Deploy(context.Background(), testSpecs(t, 102), c)
		if err != nil {
			t.Fatal(err)
		}
		times[nodes] = deploy
	}
	if !(times[5] < times[10] && times[10] < times[15]) {
		t.Errorf("SSH deploy must slightly increase with nodes: %v", times)
	}
	// "Slightly": the 5->15 growth stays under 2x.
	if times[15] > 2*times[5] {
		t.Errorf("SSH deploy growth too steep: %v", times)
	}
}

// TestMesosDeployTimeShrinksWithNodes encodes Fig. 14's linear decrease.
func TestMesosDeployTimeShrinksWithNodes(t *testing.T) {
	times := map[int]float64{}
	for _, nodes := range []int{5, 10, 15} {
		// Mesos deployment time is measured (not computed), so the clock
		// scale must keep per-round sleeps above timer granularity, and
		// the minimum of three trials filters host scheduling hiccups.
		best := 0.0
		for trial := 0; trial < 3; trial++ {
			c := cluster.New(cluster.Config{Nodes: nodes, CoresPerNode: 24, Scale: time.Millisecond})
			placements, deploy, err := (&Mesos{}).Deploy(context.Background(), testSpecs(t, 102), c)
			if err != nil {
				t.Fatal(err)
			}
			releaseAll(placements)
			if trial == 0 || deploy < best {
				best = deploy
			}
		}
		times[nodes] = best
	}
	if !(times[5] > times[10] && times[10] > times[15]) {
		t.Errorf("Mesos deploy must decrease with nodes: %v", times)
	}
}

func TestMesosPlacementsComplete(t *testing.T) {
	c := testCluster(4, 24)
	specs := testSpecs(t, 10)
	placements, _, err := (&Mesos{}).Deploy(context.Background(), specs, c)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, p := range placements {
		if p.Node == nil {
			t.Errorf("agent %s placed on nil node", p.Spec.Task.Name)
		}
		seen[p.Spec.Task.Name] = true
	}
	if len(seen) != 10 {
		t.Errorf("placed %d distinct agents", len(seen))
	}
}

func TestSSHDefaults(t *testing.T) {
	d := (&SSH{}).withDefaults()
	if d.Base <= 0 || d.PerNodeSetup <= 0 || d.AgentStart <= 0 || d.ParallelConns <= 0 {
		t.Errorf("defaults not applied: %+v", d)
	}
	custom := (&SSH{Base: 9}).withDefaults()
	if custom.Base != 9 {
		t.Error("explicit value overridden")
	}
}
