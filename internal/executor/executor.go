// Package executor implements GinFlow's executors (paper §IV-C): "the
// role of the executor is to enact the workflow in a specific environment
// ... A distributed executor will (1) claim resources from an
// infrastructure and (2) provision the distributed engine (i.e., the SAs)
// on them."
//
// Three distributed executors are provided — the paper's two plus the
// extension it sketches:
//
//   - SSH: starts agents round-robin over a preconfigured node list,
//     through a bounded pool of parallel connections. Its deployment time
//     grows slightly with the node count (per-node connection setup).
//   - Mesos: delegates placement to the resource-offer cycle of the
//     simulated Mesos master, launching one agent per machine per offer —
//     deployment time shrinks as machines are added.
//   - EC2 (extension, §IV-C): elastic cloud provisioning — instances boot
//     on demand and agents pack densely; deployment time depends on the
//     workload, not the platform size.
//
// The centralized executor (a single HOCL interpreter, no agents) lives
// in the core engine, as it deploys nothing.
package executor

import (
	"context"
	"fmt"
	"math"

	"ginflow/internal/cluster"
	"ginflow/internal/mesos"
	"ginflow/internal/workflow"
)

// Placement assigns one agent spec to a node.
type Placement struct {
	Spec workflow.AgentSpec
	Node *cluster.Node
}

// Executor claims resources and places agents. Deploy returns the
// placements and the modelled deployment duration in model seconds
// (already charged on the cluster clock).
type Executor interface {
	Name() string
	Deploy(ctx context.Context, specs []workflow.AgentSpec, c *cluster.Cluster) ([]Placement, float64, error)
}

// Kind names an executor in configs and CLIs.
type Kind string

const (
	KindSSH         Kind = "ssh"
	KindMesos       Kind = "mesos"
	KindEC2         Kind = "ec2"
	KindCentralized Kind = "centralized"
)

// New builds a distributed executor of the given kind with default
// tuning. KindCentralized returns nil: the engine short-circuits it.
func New(kind Kind) (Executor, error) {
	switch kind {
	case KindSSH:
		return &SSH{}, nil
	case KindMesos:
		return &Mesos{}, nil
	case KindEC2:
		return &EC2{}, nil
	case KindCentralized:
		return nil, nil
	default:
		return nil, fmt.Errorf("executor: unknown kind %q (want %q, %q, %q or %q)",
			kind, KindSSH, KindMesos, KindEC2, KindCentralized)
	}
}

// SSH models the SSH-based executor: "starts the SAs on a predefined set
// of machines ... As the SSH connections are parallelized, the deployment
// time slightly increases with the number of nodes" (§V-C).
type SSH struct {
	// Base is the fixed setup cost in model seconds (default 2.0).
	Base float64
	// PerNodeSetup is the per-machine connection/configuration cost
	// (default 0.25) — the term that makes deployment grow with nodes.
	PerNodeSetup float64
	// AgentStart is the cost of starting one agent over a connection
	// (default 0.6).
	AgentStart float64
	// ParallelConns bounds concurrent SSH connections (default 16).
	ParallelConns int
}

func (s *SSH) withDefaults() SSH {
	d := *s
	if d.Base <= 0 {
		d.Base = 2.0
	}
	if d.PerNodeSetup <= 0 {
		d.PerNodeSetup = 0.25
	}
	if d.AgentStart <= 0 {
		d.AgentStart = 0.6
	}
	if d.ParallelConns <= 0 {
		d.ParallelConns = 16
	}
	return d
}

func (s *SSH) Name() string { return string(KindSSH) }

// Deploy places agents round-robin across the node list, skipping full
// nodes, and charges the modelled deployment time.
func (s *SSH) Deploy(ctx context.Context, specs []workflow.AgentSpec, c *cluster.Cluster) ([]Placement, float64, error) {
	cfg := s.withDefaults()
	placements, err := roundRobin(specs, c)
	if err != nil {
		return nil, 0, err
	}
	n := float64(len(c.Nodes()))
	batches := math.Ceil(float64(len(specs)) / float64(cfg.ParallelConns))
	deploy := cfg.Base + cfg.PerNodeSetup*n + cfg.AgentStart*batches
	if err := sleepCtx(ctx, c.Clock(), deploy); err != nil {
		releaseAll(placements)
		return nil, 0, err
	}
	return placements, deploy, nil
}

// roundRobin allocates one slot per spec, cycling over nodes.
func roundRobin(specs []workflow.AgentSpec, c *cluster.Cluster) ([]Placement, error) {
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return nil, fmt.Errorf("executor: cluster has no nodes")
	}
	placements := make([]Placement, 0, len(specs))
	next := 0
	for _, spec := range specs {
		placed := false
		for try := 0; try < len(nodes); try++ {
			node := nodes[(next+try)%len(nodes)]
			if node.Allocate() {
				placements = append(placements, Placement{Spec: spec, Node: node})
				next = (next + try + 1) % len(nodes)
				placed = true
				break
			}
		}
		if !placed {
			releaseAll(placements)
			return nil, fmt.Errorf("executor: cluster full: %d agents need more than %d slots",
				len(specs), c.TotalSlots())
		}
	}
	return placements, nil
}

func releaseAll(placements []Placement) {
	for _, p := range placements {
		p.Node.Release()
	}
}

// Mesos delegates deployment to the simulated Mesos master (§IV-C): one
// agent per machine per offer round.
type Mesos struct {
	// Master configuration; zero values take mesos defaults.
	Config mesos.Config
}

func (m *Mesos) Name() string { return string(KindMesos) }

func (m *Mesos) Deploy(ctx context.Context, specs []workflow.AgentSpec, c *cluster.Cluster) ([]Placement, float64, error) {
	byID := map[string]workflow.AgentSpec{}
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.Task.Name
		byID[s.Task.Name] = s
	}
	master := mesos.NewMaster(c, m.Config)
	start := c.Clock().Now()
	launches, err := master.RunFramework(ctx, mesos.NewOnePerNodeFramework(ids))
	if err != nil {
		for _, l := range launches {
			l.Node.Release()
		}
		return nil, 0, fmt.Errorf("executor: mesos deployment: %w", err)
	}
	deploy := c.Clock().Now() - start
	placements := make([]Placement, len(launches))
	for i, l := range launches {
		placements[i] = Placement{Spec: byID[l.TaskID], Node: l.Node}
	}
	return placements, deploy, nil
}

// sleepCtx charges a model-time sleep, honouring cancellation at a coarse
// granularity (the whole sleep is one slice; deployment sleeps are short).
func sleepCtx(ctx context.Context, clock *cluster.Clock, modelSeconds float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	clock.Sleep(modelSeconds)
	return ctx.Err()
}

var (
	_ Executor = (*SSH)(nil)
	_ Executor = (*Mesos)(nil)
)
