package executor

import (
	"context"
	"testing"
	"time"

	"ginflow/internal/cluster"
)

func TestEC2PacksDensely(t *testing.T) {
	c := testCluster(10, 2) // 4 slots per instance
	placements, deploy, err := (&EC2{}).Deploy(context.Background(), testSpecs(t, 9), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 9 {
		t.Fatalf("placed %d", len(placements))
	}
	if deploy <= 0 {
		t.Error("deploy time must be positive")
	}
	// First-fit packing: 9 agents over 4-slot instances use exactly 3
	// instances (4 + 4 + 1), leaving the rest untouched.
	used := 0
	for _, n := range c.Nodes() {
		if n.InUse() > 0 {
			used++
		}
	}
	if used != 3 {
		t.Errorf("booted %d instances, want 3 (dense packing)", used)
	}
	if c.Node(0).InUse() != 4 || c.Node(1).InUse() != 4 || c.Node(2).InUse() != 1 {
		t.Errorf("packing: %d/%d/%d", c.Node(0).InUse(), c.Node(1).InUse(), c.Node(2).InUse())
	}
}

// TestEC2DeployIndependentOfClusterSize is the elastic-cloud signature:
// unlike SSH (grows with nodes) and Mesos (shrinks with nodes), cloud
// provisioning time depends only on how many instances the workload
// needs.
func TestEC2DeployIndependentOfClusterSize(t *testing.T) {
	times := map[int]float64{}
	for _, nodes := range []int{5, 10, 25} {
		c := testCluster(nodes, 24)
		_, deploy, err := (&EC2{}).Deploy(context.Background(), testSpecs(t, 40), c)
		if err != nil {
			t.Fatal(err)
		}
		times[nodes] = deploy
	}
	if times[5] != times[10] || times[10] != times[25] {
		t.Errorf("cloud deploy must not depend on platform size: %v", times)
	}
}

// TestEC2DeployScalesWithInstanceWaves: boot waves of MaxParallelBoots
// instances each.
func TestEC2DeployScalesWithInstanceWaves(t *testing.T) {
	e := &EC2{RequestLatency: 2, BootLatency: 20, MaxParallelBoots: 2}
	deployFor := func(agents int) float64 {
		c := testCluster(30, 1) // 2 slots per instance
		_, deploy, err := e.Deploy(context.Background(), testSpecs(t, agents), c)
		if err != nil {
			t.Fatal(err)
		}
		return deploy
	}
	// 4 agents -> 2 instances -> 1 wave; 8 agents -> 4 instances -> 2 waves.
	if got := deployFor(4); got != 2+20 {
		t.Errorf("1 wave = %v, want 22", got)
	}
	if got := deployFor(8); got != 2+2*20 {
		t.Errorf("2 waves = %v, want 42", got)
	}
}

func TestEC2QuotaExhausted(t *testing.T) {
	c := testCluster(1, 1) // 2 slots total
	_, _, err := (&EC2{}).Deploy(context.Background(), testSpecs(t, 3), c)
	if err == nil {
		t.Fatal("over-quota deployment succeeded")
	}
	if got := c.Node(0).InUse(); got != 0 {
		t.Errorf("leaked %d slots", got)
	}
}

func TestEC2EndToEndRun(t *testing.T) {
	// The EC2 executor drives a full decentralised run through the
	// public engine path (checked from the executor package via New).
	e, err := New(KindEC2)
	if err != nil || e.Name() != "ec2" {
		t.Fatalf("New(ec2): %v, %v", e, err)
	}
	c := cluster.New(cluster.Config{Nodes: 4, CoresPerNode: 4, Scale: 20 * time.Microsecond})
	placements, _, err := e.Deploy(context.Background(), testSpecs(t, 5), c)
	if err != nil {
		t.Fatal(err)
	}
	if len(placements) != 5 {
		t.Errorf("placements = %d", len(placements))
	}
}
