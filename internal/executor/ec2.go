package executor

import (
	"context"
	"fmt"
	"math"

	"ginflow/internal/cluster"
	"ginflow/internal/workflow"
)

// EC2 models the cloud executor the paper sketches as an extension
// (§IV-C: "the abstract nature of the code allows other executors to be
// implemented (e.g., an EC2 executor to run GinFlow's distributed engine
// on EC2-compatible cloud)").
//
// Unlike SSH (fixed machine list) and Mesos (offers over a fixed pool),
// the cloud executor is *elastic*: it provisions exactly as many
// instances as the workflow needs, packs agents densely onto them
// (instances are billed, so none idles), and pays a per-instance boot
// latency. Its deployment time therefore depends on the agent count —
// in waves of MaxParallelBoots — and not on the platform size, the
// signature behaviour distinguishing it from the paper's two executors.
type EC2 struct {
	// RequestLatency is the provisioning API round-trip (default 2).
	RequestLatency float64
	// BootLatency is the per-instance boot time (default 20 — cloud
	// instances boot in tens of seconds, dwarfing SSH session setup).
	BootLatency float64
	// MaxParallelBoots bounds concurrent provisioning (default 8).
	MaxParallelBoots int
}

func (e *EC2) withDefaults() EC2 {
	d := *e
	if d.RequestLatency <= 0 {
		d.RequestLatency = 2.0
	}
	if d.BootLatency <= 0 {
		d.BootLatency = 20.0
	}
	if d.MaxParallelBoots <= 0 {
		d.MaxParallelBoots = 8
	}
	return d
}

func (e *EC2) Name() string { return string(KindEC2) }

// Deploy provisions the fewest instances (cluster nodes) that fit the
// agents, packing first-fit in node order, and charges the modelled
// provisioning time: one API round-trip plus boot waves.
func (e *EC2) Deploy(ctx context.Context, specs []workflow.AgentSpec, c *cluster.Cluster) ([]Placement, float64, error) {
	cfg := e.withDefaults()
	nodes := c.Nodes()
	if len(nodes) == 0 {
		return nil, 0, fmt.Errorf("executor: cluster has no nodes")
	}

	placements := make([]Placement, 0, len(specs))
	booted := 0
	nodeIdx := 0
	for _, spec := range specs {
		placed := false
		for nodeIdx < len(nodes) {
			node := nodes[nodeIdx]
			if node.Allocate() {
				if node.InUse() == 1 {
					booted++ // first agent on this node: a fresh instance
				}
				placements = append(placements, Placement{Spec: spec, Node: node})
				placed = true
				break
			}
			nodeIdx++ // instance full; provision the next one
		}
		if !placed {
			releaseAll(placements)
			return nil, 0, fmt.Errorf("executor: cloud quota exhausted: %d agents need more than %d slots",
				len(specs), c.TotalSlots())
		}
	}

	waves := math.Ceil(float64(booted) / float64(cfg.MaxParallelBoots))
	deploy := cfg.RequestLatency + waves*cfg.BootLatency
	if err := sleepCtx(ctx, c.Clock(), deploy); err != nil {
		releaseAll(placements)
		return nil, 0, err
	}
	return placements, deploy, nil
}

var _ Executor = (*EC2)(nil)
