package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// WriteProm renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, one
// HELP/TYPE header each, series sorted by label signature.
func (r *Registry) WriteProm(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, name := range r.sortedNames() {
		r.mu.Lock()
		f := r.families[name]
		series := append([]*series(nil), f.series...)
		r.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range series {
			switch f.typ {
			case typeCounter:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.key, s.counter.Value())
			case typeGauge:
				v := s.gauge.Value()
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.key, formatFloat(v))
			case typeHistogram:
				writeHistProm(bw, f, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistProm renders one histogram series: cumulative _bucket lines
// (le is inclusive), then _sum and _count.
func writeHistProm(w io.Writer, f *family, s *series) {
	cum := int64(0)
	for i, ub := range s.hist.upper {
		cum += s.hist.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.key, formatFloat(ub)), cum)
	}
	cum += s.hist.counts[len(s.hist.upper)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, withLE(s.key, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.key, formatFloat(s.hist.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.key, cum)
}

// withLE merges an le label into a rendered label signature.
func withLE(key, le string) string {
	if key == "" {
		return `{le="` + le + `"}`
	}
	return key[:len(key)-1] + `,le="` + le + `"}`
}

// formatFloat renders a sample value per the exposition format.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP text per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Snapshot types: the JSON form of the registry, also the structural
// form tests diff (the cross-mode determinism test compares snapshots
// of two same-seed virtual runs for bit-identical equality).
type (
	// FamilySnapshot is one metric family with all its series.
	FamilySnapshot struct {
		Name   string           `json:"name"`
		Help   string           `json:"help,omitempty"`
		Type   string           `json:"type"`
		Series []SeriesSnapshot `json:"series"`
	}
	// SeriesSnapshot is one labelled series' current value(s).
	SeriesSnapshot struct {
		Labels map[string]string `json:"labels,omitempty"`
		// Value holds counter and gauge values (counters as exact
		// integers).
		Value float64 `json:"value"`
		// Count/Sum/Buckets are set for histograms only; bucket counts
		// are non-cumulative per finite bucket, with the overflow bucket
		// last (le "+Inf").
		Count   int64            `json:"count,omitempty"`
		Sum     float64          `json:"sum,omitempty"`
		Buckets []BucketSnapshot `json:"buckets,omitempty"`
	}
	// BucketSnapshot is one histogram bucket. LE is the rendered upper
	// bound ("+Inf" for the overflow bucket) so the snapshot survives
	// JSON, which cannot carry infinities.
	BucketSnapshot struct {
		LE    string `json:"le"`
		Count int64  `json:"count"`
	}
)

// Snapshot captures every family's current state, sorted by name.
func (r *Registry) Snapshot() []FamilySnapshot {
	names := r.sortedNames()
	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		series := append([]*series(nil), f.series...)
		r.mu.Unlock()
		fs := FamilySnapshot{Name: f.name, Help: f.help, Type: string(f.typ)}
		for _, s := range series {
			ss := SeriesSnapshot{}
			if len(s.labels) > 0 {
				ss.Labels = map[string]string{}
				for _, l := range s.labels {
					ss.Labels[l.Name] = l.Value
				}
			}
			switch f.typ {
			case typeCounter:
				ss.Value = float64(s.counter.Value())
			case typeGauge:
				if s.fn != nil {
					ss.Value = s.fn()
				} else {
					ss.Value = s.gauge.Value()
				}
			case typeHistogram:
				ss.Count = s.hist.Count()
				ss.Sum = s.hist.Sum()
				for i, ub := range s.hist.upper {
					ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: formatFloat(ub), Count: s.hist.counts[i].Load()})
				}
				ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: "+Inf", Count: s.hist.counts[len(s.hist.upper)].Load()})
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON (the /metrics.json
// body).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Exposition validation: a promlint-style checker used by the golden
// test and the CI metrics-smoke step. It verifies the subset of the
// format this package emits — and the conventions the engine's metric
// catalogue follows.

var (
	expoNameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	expoLabelRe = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// ValidateExposition checks a Prometheus text exposition body:
//
//   - every sample line parses (name, optional labels, float value);
//   - every sample's family has a preceding # TYPE line, declared once;
//   - counter family names end in _total (promlint convention);
//   - histogram families expose _bucket series with monotonically
//     non-decreasing cumulative counts, a terminal le="+Inf" bucket,
//     and matching _sum/_count samples.
//
// It returns the first violation found, or nil for a valid body.
func ValidateExposition(data []byte) error {
	type famState struct {
		typ string
		// per label-signature histogram bucket state
		lastCum  map[string]int64
		sawInf   map[string]bool
		infCount map[string]int64
		sawCount map[string]bool
	}
	families := map[string]*famState{}
	samples := 0
	for ln, line := range strings.Split(string(data), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if !expoNameRe.MatchString(parts[0]) {
				return fmt.Errorf("line %d: bad HELP metric name %q", lineNo, parts[0])
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !expoNameRe.MatchString(parts[0]) {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			if families[name] != nil {
				return fmt.Errorf("line %d: family %s declared twice", lineNo, name)
			}
			if typ == "counter" && !strings.HasSuffix(name, "_total") {
				return fmt.Errorf("line %d: counter %s should end in _total", lineNo, name)
			}
			families[name] = &famState{
				typ:     typ,
				lastCum: map[string]int64{}, sawInf: map[string]bool{},
				infCount: map[string]int64{}, sawCount: map[string]bool{},
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		fam, suffix := families[name], ""
		if fam == nil {
			for _, sfx := range []string{"_bucket", "_sum", "_count"} {
				if base := strings.TrimSuffix(name, sfx); base != name && families[base] != nil {
					fam, suffix = families[base], sfx
					break
				}
			}
		}
		if fam == nil {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if fam.typ == "histogram" {
			if suffix == "" {
				return fmt.Errorf("line %d: histogram %s exposes a bare sample", lineNo, name)
			}
			sig := labelSigWithoutLE(labels)
			switch suffix {
			case "_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return fmt.Errorf("line %d: %s without le label", lineNo, name)
				}
				cum := int64(value)
				if cum < fam.lastCum[sig] {
					return fmt.Errorf("line %d: %s cumulative bucket counts decreased", lineNo, name)
				}
				fam.lastCum[sig] = cum
				if le == "+Inf" {
					fam.sawInf[sig] = true
					fam.infCount[sig] = cum
				}
			case "_count":
				fam.sawCount[sig] = true
				if !fam.sawInf[sig] {
					return fmt.Errorf("line %d: %s before an le=\"+Inf\" bucket", lineNo, name)
				}
				if int64(value) != fam.infCount[sig] {
					return fmt.Errorf("line %d: %s (%d) != +Inf bucket count (%d)",
						lineNo, name, int64(value), fam.infCount[sig])
				}
			}
		} else if labelValue0(labels, "le") {
			return fmt.Errorf("line %d: le label on non-histogram %s", lineNo, name)
		}
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition body")
	}
	for name, fam := range families {
		if fam.typ != "histogram" {
			continue
		}
		for sig := range fam.sawInf {
			if !fam.sawCount[sig] {
				return fmt.Errorf("histogram %s%s missing _count sample", name, sig)
			}
		}
	}
	return nil
}

// parseSample splits one sample line into name, label pairs and value.
func parseSample(line string) (string, []Label, float64, error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexByte(rest, ' ')
	var name string
	var labels []Label
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		for _, pair := range splitLabels(rest[brace+1 : end]) {
			m := expoLabelRe.FindStringSubmatch(pair)
			if m == nil {
				return "", nil, 0, fmt.Errorf("bad label pair %q", pair)
			}
			labels = append(labels, Label{Name: m[1], Value: m[2]})
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("no value in sample %q", line)
		}
		name = rest[:sp]
		rest = strings.TrimSpace(rest[sp+1:])
	}
	if !expoNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	// A timestamp may follow the value; this package never emits one.
	valueField := strings.Fields(rest)
	if len(valueField) < 1 {
		return "", nil, 0, fmt.Errorf("no value in sample %q", line)
	}
	v, err := parseValue(valueField[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %w", valueField[0], err)
	}
	return name, labels, v, nil
}

// parseValue parses a sample value, accepting the exposition-format
// infinity spellings.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// labelSigWithoutLE renders the label pairs minus le, as a histogram
// series signature.
func labelSigWithoutLE(labels []Label) string {
	var parts []string
	for _, l := range labels {
		if l.Name != "le" {
			parts = append(parts, l.Name+"="+l.Value)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// labelValue returns the value of the named label.
func labelValue(labels []Label, name string) (string, bool) {
	for _, l := range labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// labelValue0 reports whether the named label is present.
func labelValue0(labels []Label, name string) bool {
	_, ok := labelValue(labels, name)
	return ok
}
