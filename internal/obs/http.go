package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the observability surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot of every family
//	/debug/pprof/  the standard net/http/pprof profile index
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteProm(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	// The pprof handlers are mounted explicitly rather than through the
	// package's DefaultServeMux side effect, so embedding programs keep
	// their global mux clean.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running observability HTTP endpoint (see Serve).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr ("host:port"; ":0" picks a free port, resolved by
// Addr) and serves Handler(reg) until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
