package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden locks the rendered text format: family order,
// HELP/TYPE headers, label rendering, cumulative histogram buckets.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("ginflow_test_events_total", "Events seen.", L("kind", "a")).Add(3)
	r.Counter("ginflow_test_events_total", "Events seen.", L("kind", "b")).Inc()
	r.Gauge("ginflow_test_depth", "Queue depth.").Set(2.5)
	h := r.Histogram("ginflow_test_latency_seconds", "Latency.", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP ginflow_test_depth Queue depth.
# TYPE ginflow_test_depth gauge
ginflow_test_depth 2.5
# HELP ginflow_test_events_total Events seen.
# TYPE ginflow_test_events_total counter
ginflow_test_events_total{kind="a"} 3
ginflow_test_events_total{kind="b"} 1
# HELP ginflow_test_latency_seconds Latency.
# TYPE ginflow_test_latency_seconds histogram
ginflow_test_latency_seconds_bucket{le="1"} 1
ginflow_test_latency_seconds_bucket{le="2"} 2
ginflow_test_latency_seconds_bucket{le="4"} 3
ginflow_test_latency_seconds_bucket{le="+Inf"} 4
ginflow_test_latency_seconds_sum 105
ginflow_test_latency_seconds_count 4
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("golden exposition failed validation: %v", err)
	}
}

// TestValidateExpositionRejects exercises the promlint-style checks on
// hand-built invalid bodies.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string // substring of the expected error
	}{
		{"empty", "", "no samples"},
		{"no type", "foo 1\n", "no preceding # TYPE"},
		{"counter suffix", "# TYPE foo counter\nfoo 1\n", "_total"},
		{"duplicate family", "# TYPE a_total counter\n# TYPE a_total counter\na_total 1\n", "declared twice"},
		{"bad value", "# TYPE b gauge\nb nope\n", "bad value"},
		{"bare histogram sample", "# TYPE h histogram\nh 1\n", "bare sample"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\n", "without le"},
		{"decreasing buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" + "h_count 3\n",
			"decreased"},
		{"count mismatch", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 3` + "\n" + "h_count 4\n",
			"+Inf bucket count"},
		{"missing count", "# TYPE h histogram\n" + `h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\n",
			"missing _count"},
		{"le on gauge", "# TYPE g gauge\n" + `g{le="1"} 3` + "\n", "le label on non-histogram"},
		{"unknown type", "# TYPE x widget\nx 1\n", "unknown metric type"},
	}
	for _, tc := range cases {
		err := ValidateExposition([]byte(tc.body))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// TestRegistryGetOrCreate verifies the sharing and panic contracts:
// same name+labels yields the same instrument, different labels a
// sibling series, and type or name violations panic.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "1"))
	b := r.Counter("x_total", "x", L("k", "1"))
	c := r.Counter("x_total", "x", L("k", "2"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if a == c {
		t.Error("distinct labels shared one counter")
	}
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Errorf("shared counter value = %d, want 1", got)
	}

	mustPanic(t, "type mismatch", func() { r.Gauge("x_total", "x") })
	mustPanic(t, "invalid metric name", func() { r.Counter("0bad", "x") })
	mustPanic(t, "invalid label name", func() { r.Counter("ok_total", "x", L("0bad", "v")) })
	mustPanic(t, "empty buckets", func() { r.Histogram("h", "x", nil) })
	mustPanic(t, "non-increasing buckets", func() { r.Histogram("h", "x", []float64{1, 1}) })
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

// TestNilInstruments locks the nil-receiver no-op contract the hot
// paths rely on (instrumented code never guards).
func TestNilInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments reported non-zero values")
	}
}

// TestConcurrentHammer races many writers against concurrent renders;
// run under -race this is the registry's data-race proof, and the final
// counts must be exact (no lost updates).
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		perG       = 2000
	)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			// Resolve inside the goroutine too: get-or-create must be safe
			// concurrently with itself and with renders.
			c := r.Counter("hammer_total", "h", L("g", fmt.Sprint(n%4)))
			ga := r.Gauge("hammer_depth", "h")
			h := r.Histogram("hammer_seconds", "h", []float64{1, 10, 100})
			for j := 0; j < perG; j++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(j % 200))
			}
		}(i)
	}
	// Concurrent readers while writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.WriteProm(io.Discard)
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	total := int64(0)
	for i := 0; i < 4; i++ {
		total += r.Counter("hammer_total", "h", L("g", fmt.Sprint(i))).Value()
	}
	if want := int64(goroutines * perG); total != want {
		t.Errorf("counter total = %d, want %d", total, want)
	}
	if got := r.Gauge("hammer_depth", "h").Value(); got != float64(goroutines*perG) {
		t.Errorf("gauge = %v, want %d", got, goroutines*perG)
	}
	if got := r.Histogram("hammer_seconds", "h", []float64{1, 10, 100}).Count(); got != int64(goroutines*perG) {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("post-hammer exposition invalid: %v", err)
	}
}

// TestHistogramBucketProperty drives a histogram with seeded random
// values and checks every bucket count against a reference
// implementation, plus the le-inclusive boundary rule on exact bounds.
func TestHistogramBucketProperty(t *testing.T) {
	bounds := ExpBuckets(0.25, 2, 12)
	r := NewRegistry()
	h := r.Histogram("prop_seconds", "p", bounds)

	ref := make([]int64, len(bounds)+1) // reference, overflow last
	refBucket := func(v float64) int {
		for i, ub := range bounds {
			if v <= ub {
				return i
			}
		}
		return len(bounds)
	}

	rng := rand.New(rand.NewSource(42))
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		var v float64
		switch i % 5 {
		case 0:
			v = bounds[rng.Intn(len(bounds))] // exact boundary: le is inclusive
		case 1:
			v = rng.Float64() * 1000 // spread across and beyond the range
		default:
			v = rng.ExpFloat64() * 4
		}
		h.Observe(v)
		ref[refBucket(v)]++
		sum += v
	}

	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Sum() != sum {
		t.Errorf("sum = %v, want %v (same addition order, must be bit-identical)", h.Sum(), sum)
	}
	for i := range ref {
		if got := h.counts[i].Load(); got != ref[i] {
			t.Errorf("bucket %d: got %d, want %d", i, got, ref[i])
		}
	}
}

// TestGaugeFunc verifies callback gauges render live values and that
// re-registration replaces the callback (latest owner wins).
func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("live", "l", func() float64 { return v })
	v = 7
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Series[0].Value != 7 {
		t.Fatalf("GaugeFunc snapshot = %+v, want value 7", snap)
	}
	r.GaugeFunc("live", "l", func() float64 { return 42 })
	if got := r.Snapshot()[0].Series[0].Value; got != 42 {
		t.Errorf("re-registered GaugeFunc = %v, want 42", got)
	}
}

// TestSnapshotJSONRoundTrip checks the /metrics.json body parses back
// into the snapshot types, including the +Inf bucket's string form.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Histogram("rt_seconds", "r", []float64{1}).Observe(5)
	r.Counter("rt_total", "r").Inc()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap []FamilySnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(snap) != 2 {
		t.Fatalf("got %d families, want 2", len(snap))
	}
	buckets := snap[0].Series[0].Buckets
	if len(buckets) != 2 || buckets[1].LE != "+Inf" || buckets[1].Count != 1 {
		t.Errorf("histogram buckets = %+v, want terminal +Inf bucket with count 1", buckets)
	}
}

// TestServeEndpoints boots the HTTP surface on a loopback port and
// checks all three mounts respond with sane bodies.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "s").Inc()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.HasPrefix(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if err := ValidateExposition([]byte(body)); err != nil {
		t.Errorf("/metrics body invalid: %v", err)
	}
	if !strings.Contains(body, "served_total 1") {
		t.Errorf("/metrics missing sample:\n%s", body)
	}

	body, ct = get("/metrics.json")
	if ct != "application/json" {
		t.Errorf("/metrics.json content type = %q", ct)
	}
	var snap []FamilySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Errorf("/metrics.json not parseable: %v", err)
	}

	body, _ = get("/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.200s", body)
	}
}

// TestCounterNamesSorted locks the exposition family ordering (sorted
// by name) that the golden test and scrapers rely on.
func TestCounterNamesSorted(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"c_total", "a_total", "b_total"} {
		r.Counter(name, "x")
	}
	names := r.sortedNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("family names not sorted: %v", names)
	}
}

// BenchmarkCounterInc is the hot-path ceiling: a single atomic add,
// 0 allocs/op (gated by benchguard via internal/bench/baseline.json).
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "b")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures the histogram hot path (bucket
// scan + three atomics), also 0 allocs/op.
func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "b", ModelSecondsBuckets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 0.5)
	}
}
