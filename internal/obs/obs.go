// Package obs is the engine's dependency-free metrics spine: a registry
// of counters, gauges and fixed-bucket histograms whose hot-path
// updates are single atomic operations — 0 allocs/op, wait-free for
// counters and histogram bucket counts — plus Prometheus text
// exposition, a JSON snapshot form, and an HTTP endpoint (see http.go)
// mounting /metrics, /metrics.json and net/http/pprof.
//
// Instruments are resolved once (Registry.Counter and friends are
// get-or-create, so two subsystems naming the same series share one
// instrument) and then held as struct fields by the instrumented code;
// the registry is never consulted on a hot path. All instrument methods
// are nil-receiver-safe, so optional instrumentation needs no guards.
//
// Metrics carry two timing axes: *_model_seconds histograms observe
// model-clock durations (deterministic under the virtual clock — two
// same-seed virtual runs produce bit-identical model-time metrics) and
// *_wall_seconds histograms observe real time.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name=value pair attached to a series at
// creation time. Labels are fixed for the life of the instrument, so
// the hot path never formats them.
type Label struct {
	// Name is the label name ([a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value (arbitrary UTF-8; escaped on exposition).
	Value string
}

// L builds a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing value. Inc and Add are a single
// atomic add: wait-free, 0 allocs. A nil *Counter ignores updates.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. Set is a single atomic
// store; Add is a compare-and-swap loop (lock-free). A nil *Gauge
// ignores updates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add shifts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed bucket layout chosen at
// registration. Observe is a linear bucket scan plus three atomic
// operations (bucket count, total count, CAS sum): 0 allocs, lock-free.
// A nil *Histogram ignores observations.
type Histogram struct {
	// upper holds the inclusive upper bounds of the finite buckets, in
	// strictly increasing order; an overflow (+Inf) bucket is implicit.
	upper   []float64
	counts  []atomic.Int64 // len(upper)+1, last is the overflow bucket
	total   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor,
// ... (start > 0, factor > 1, n >= 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinBuckets returns n linear bucket bounds: start, start+width, ...
func LinBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n < 1 {
		panic("obs: LinBuckets needs width > 0, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Default bucket layouts of the engine's two timing axes and the
// broker's batch sizes.
var (
	// ModelSecondsBuckets spans the model-time range of interest: service
	// invocations run ~1 model second, whole sessions tens to hundreds.
	ModelSecondsBuckets = ExpBuckets(0.25, 2, 12) // 0.25s .. 512s
	// WallSecondsBuckets spans real time from sub-millisecond (virtual
	// runs) to minutes.
	WallSecondsBuckets = ExpBuckets(0.001, 4, 10) // 1ms .. ~262s
	// BatchSizeBuckets spans the broker's per-flush batch sizes.
	BatchSizeBuckets = ExpBuckets(1, 2, 9) // 1 .. 256
)

// metricType tags a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labelled instrument inside a family.
type series struct {
	labels []Label
	key    string // rendered label signature, for lookup and sort

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // GaugeFunc
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histograms only
	series  []*series
	byKey   map[string]*series
}

// Registry holds metric families and renders them. Instrument creation
// (Counter/Gauge/Histogram/GaugeFunc) is get-or-create under a mutex —
// a cold path; the returned instruments are then updated without ever
// touching the registry again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names, rebuilt lazily
	stale    bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// defaultRegistry is the process-wide registry instrumentation falls
// back to when no explicit registry is wired through.
var defaultRegistry = NewRegistry()

// Default returns the process-wide default registry. Package-level
// instrumentation (hocl, transport, trace) registers here; a Manager
// without an explicit Config.Metrics registry serves it.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter for name+labels, creating family and
// series on first use. Registering the same name with a different
// instrument type panics (a programming error, caught in tests).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, typeCounter, nil, labels)
	return s.counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, typeGauge, nil, labels)
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// exposition time — for quantities already tracked elsewhere (active
// sessions, model clock). Re-registering the same series replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, typeGauge, nil, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram for name+labels with the given finite
// bucket upper bounds (strictly increasing; a +Inf overflow bucket is
// implicit). The bucket layout is fixed by the first registration.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %s: buckets not strictly increasing", name))
		}
	}
	if len(buckets) == 0 {
		panic(fmt.Sprintf("obs: histogram %s: empty bucket layout", name))
	}
	s := r.getOrCreate(name, help, typeHistogram, buckets, labels)
	return s.hist
}

// getOrCreate resolves one series, creating family and series as
// needed.
func (r *Registry) getOrCreate(name, help string, typ metricType, buckets []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l.Name) {
			panic(fmt.Sprintf("obs: metric %s: invalid label name %q", name, l.Name))
		}
	}
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, buckets: append([]float64(nil), buckets...), byKey: map[string]*series{}}
		r.families[name] = f
		r.stale = true
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, typ, f.typ))
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		switch typ {
		case typeCounter:
			s.counter = &Counter{}
		case typeGauge:
			s.gauge = &Gauge{}
		case typeHistogram:
			s.hist = &Histogram{upper: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
		}
		f.byKey[key] = s
		f.series = append(f.series, s)
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
	}
	return s
}

// sortedNames returns the family names in sorted order (caller holds no
// lock).
func (r *Registry) sortedNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stale {
		r.names = r.names[:0]
		for name := range r.families {
			r.names = append(r.names, name)
		}
		sort.Strings(r.names)
		r.stale = false
	}
	return append([]string(nil), r.names...)
}

// validName reports whether s is a legal Prometheus metric/label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// labelKey renders a label set into its canonical exposition form,
// e.g. `{shard="3"}` ("" for no labels). Labels keep registration
// order; instrumentation sites use a consistent order per name.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
