package agent

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/space"
	"ginflow/internal/workflow"
)

func testCluster() *cluster.Cluster {
	return cluster.New(cluster.Config{Nodes: 2, CoresPerNode: 4, Scale: 20 * time.Microsecond})
}

// twoAgentSpecs builds the producer/consumer pair T1 -> T2.
func twoAgentSpecs(t *testing.T) (workflow.AgentSpec, workflow.AgentSpec) {
	t.Helper()
	def := &workflow.Definition{Name: "pair", Tasks: []workflow.Task{
		{ID: "T1", Service: "s1", In: []string{"input"}, Dst: []string{"T2"}},
		{ID: "T2", Service: "s2"},
	}}
	specs, err := def.TranslateAgents()
	if err != nil {
		t.Fatal(err)
	}
	return specs[0], specs[1]
}

func noopRegistry(duration float64, names ...string) *Registry {
	r := NewRegistry()
	r.RegisterNoop(duration, names...)
	return r
}

func waitStatus(t *testing.T, sp *space.Space, task string, want hoclflow.Status) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if sp.Status(task) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("task %s never reached %v (is %v)", task, want, sp.Status(task))
}

// startSpace wires a Space to the broker and returns it.
func startSpace(t *testing.T, ctx context.Context, broker mq.Broker) *space.Space {
	t.Helper()
	sp := space.New()
	go sp.Serve(ctx, broker, "")
	// Let the subscription land before agents publish.
	time.Sleep(5 * time.Millisecond)
	return sp
}

// TestTwoAgentPipeline runs the decentralised data path end to end:
// producer invokes, sends P2P, consumer receives, invokes, reports.
func TestTwoAgentPipeline(t *testing.T) {
	clus := testCluster()
	broker := mq.NewQueueBroker(clus.Clock(), 0.0001)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sp := startSpace(t, ctx, broker)

	p, c := twoAgentSpecs(t)
	services := noopRegistry(0.01, "s1", "s2")
	var agents []*Agent
	for _, spec := range []workflow.AgentSpec{p, c} { // producer first: the
		// subscription barrier must make start order irrelevant
		a := New(Config{
			Spec: spec, Broker: broker, Cluster: clus,
			Node: clus.Node(0), Services: services,
		})
		if err := a.Subscribe(); err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	for _, a := range agents {
		go a.Run(ctx)
	}
	waitStatus(t, sp, "T2", hoclflow.StatusCompleted)
	res := sp.Results("T2")
	if len(res) != 1 || !res[0].Equal(hocl.Str("out-s2")) {
		t.Errorf("T2 results = %v", res)
	}
	if sp.Status("T1") != hoclflow.StatusCompleted {
		t.Errorf("T1 = %v", sp.Status("T1"))
	}
}

// TestAgentCrashAndReplayRecovery exercises §IV-B end to end by hand:
// the consumer crashes mid-service, a new incarnation replays its Kafka
// inbox and completes.
func TestAgentCrashAndReplayRecovery(t *testing.T) {
	clus := testCluster()
	broker := mq.NewLogBroker(clus.Clock(), 0.0001)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sp := startSpace(t, ctx, broker)

	p, c := twoAgentSpecs(t)
	services := noopRegistry(0.05, "s1", "s2")

	// Injector: the first draw crashes (p=1 for one call), then heals.
	inj := failure.New(1.0, 0.01, rand.New(rand.NewSource(5)))

	// Consumer incarnation 0 with injection enabled.
	crashed := make(chan error, 1)
	a0 := New(Config{
		Spec: c, Broker: broker, Cluster: clus, Node: clus.Node(0),
		Services: services, Injector: inj,
	})
	if err := a0.Subscribe(); err != nil {
		t.Fatal(err)
	}
	go func() { crashed <- a0.Run(ctx) }()

	// Producer (no injection).
	prod := New(Config{
		Spec: p, Broker: broker, Cluster: clus, Node: clus.Node(1),
		Services: services,
	})
	go prod.Run(ctx)

	select {
	case err := <-crashed:
		if !IsCrash(err) {
			t.Fatalf("want crash, got %v", err)
		}
		var ce *CrashError
		if !errors.As(err, &ce) || ce.Task != "T2" || ce.Incarnation != 0 {
			t.Fatalf("crash detail: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("consumer never crashed")
	}
	if sp.Status("T2") == hoclflow.StatusCompleted {
		t.Fatal("T2 completed despite crash")
	}

	// Recovery: incarnation 1, injection disabled, replays the log.
	a1 := New(Config{
		Spec: c, Broker: broker, Cluster: clus, Node: clus.Node(0),
		Services: services, Incarnation: 1,
	})
	go a1.Run(ctx)
	waitStatus(t, sp, "T2", hoclflow.StatusCompleted)
}

// TestAgentRecoveryImpossibleOnQueueBroker: with the ActiveMQ-like
// broker the pre-crash messages are gone, so a respawned consumer stalls
// — the behaviour that justifies Kafka for resilience (§IV-B).
func TestAgentRecoveryImpossibleOnQueueBroker(t *testing.T) {
	clus := testCluster()
	broker := mq.NewQueueBroker(clus.Clock(), 0.0001)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sp := startSpace(t, ctx, broker)

	p, c := twoAgentSpecs(t)
	services := noopRegistry(0.01, "s1", "s2")

	// Producer runs and completes while the consumer is dead.
	prod := New(Config{Spec: p, Broker: broker, Cluster: clus, Node: clus.Node(1), Services: services})
	go prod.Run(ctx)
	waitStatus(t, sp, "T1", hoclflow.StatusCompleted)
	time.Sleep(10 * time.Millisecond) // let the P2P message evaporate

	// "Recovered" consumer: nothing to replay on a queue broker.
	a1 := New(Config{
		Spec: c, Broker: broker, Cluster: clus, Node: clus.Node(0),
		Services: services, Incarnation: 1,
	})
	go a1.Run(ctx)
	time.Sleep(50 * time.Millisecond)
	if sp.Status("T2") == hoclflow.StatusCompleted {
		t.Fatal("consumer completed without its input — impossible")
	}
}

// TestAgentDistributedAdaptation wires the paper's adaptive diamond
// through real agents and a broker: T2's service errors, the trigger
// fans ADAPT out, T1 re-sends to T2', T4 completes.
func TestAgentDistributedAdaptation(t *testing.T) {
	def := &workflow.Definition{
		Name: "adaptive",
		Tasks: []workflow.Task{
			{ID: "T1", Service: "s1", In: []string{"input"}, Dst: []string{"T2", "T3"}},
			{ID: "T2", Service: "s2", Dst: []string{"T4"}},
			{ID: "T3", Service: "s3", Dst: []string{"T4"}},
			{ID: "T4", Service: "s4"},
		},
		Adaptations: []workflow.Adaptation{{
			ID: "a1", Faulty: []string{"T2"},
			Replacement: []workflow.ReplacementTask{
				{ID: "T2'", Service: "s2alt", Src: []string{"T1"}, Dst: []string{"T4"}},
			},
		}},
	}
	specs, err := def.TranslateAgents()
	if err != nil {
		t.Fatal(err)
	}

	clus := testCluster()
	broker := mq.NewQueueBroker(clus.Clock(), 0.0001)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sp := startSpace(t, ctx, broker)

	services := noopRegistry(0.01, "s1", "s3", "s4", "s2alt")
	services.RegisterFailing("s2", 0.01)

	var agents []*Agent
	for _, spec := range specs {
		a := New(Config{
			Spec: spec, Broker: broker, Cluster: clus,
			Node: clus.Node(0), Services: services,
		})
		if err := a.Subscribe(); err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
	}
	for _, a := range agents {
		go a.Run(ctx)
	}
	waitStatus(t, sp, "T4", hoclflow.StatusCompleted)
	if got := sp.Triggered(); len(got) != 1 || got[0] != "a1" {
		t.Errorf("triggered adaptations = %v", got)
	}
	waitStatus(t, sp, "T2'", hoclflow.StatusCompleted)
}

func TestServiceRegistry(t *testing.T) {
	r := NewRegistry()
	r.RegisterNoop(0.5, "a", "b")
	r.RegisterFunc("c", 1.0, func(params []hocl.Atom) (hocl.Atom, error) {
		return hocl.Int(int64(len(params))), nil
	})
	r.RegisterFailing("f", 0.1)

	if len(r.Names()) != 4 {
		t.Errorf("names = %v", r.Names())
	}
	svc, ok := r.Lookup("a")
	if !ok || svc.InvocationDuration(nil) != 0.5 {
		t.Errorf("noop service: %+v", svc)
	}
	out, err := svc.Invoke(nil)
	if err != nil || !out.Equal(hocl.Str("out-a")) {
		t.Errorf("noop invoke: %v, %v", out, err)
	}
	cSvc, _ := r.Lookup("c")
	out, err = cSvc.Invoke([]hocl.Atom{hocl.Int(1), hocl.Int(2)})
	if err != nil || !out.Equal(hocl.Int(2)) {
		t.Errorf("computed invoke: %v, %v", out, err)
	}
	fSvc, _ := r.Lookup("f")
	if _, err := fSvc.Invoke(nil); err == nil {
		t.Error("failing service returned no error")
	}
	if _, ok := r.Lookup("nosuch"); ok {
		t.Error("phantom service")
	}
	// DurationFn takes precedence.
	r.Register(&Service{Name: "d", Duration: 9, DurationFn: func(*rand.Rand) float64 { return 2 }})
	dSvc, _ := r.Lookup("d")
	if got := dSvc.InvocationDuration(nil); got != 2 {
		t.Errorf("DurationFn ignored: %v", got)
	}
	// Zero-value registry is usable.
	var z Registry
	z.RegisterNoop(0, "zv")
	if _, ok := z.Lookup("zv"); !ok {
		t.Error("zero-value registry broken")
	}
}

func TestTopicNaming(t *testing.T) {
	if got := Topic("", "T1"); got != "sa.T1" {
		t.Errorf("Topic = %q", got)
	}
	if got := Topic("x.", "T1"); got != "x.T1" {
		t.Errorf("Topic = %q", got)
	}
}

func TestAgentIngestIgnoresGarbage(t *testing.T) {
	clus := testCluster()
	p, _ := twoAgentSpecs(t)
	a := New(Config{
		Spec: p, Broker: mq.NewQueueBroker(clus.Clock(), 0.0001),
		Cluster: clus, Node: clus.Node(0), Services: noopRegistry(0, "s1"),
	})
	before := a.Local().Len()
	a.ingest(mq.Message{Payload: "<<<not hocl"})
	if a.Local().Len() != before {
		t.Error("garbage payload mutated the local solution")
	}
	a.ingest(mq.Message{Payload: "GOODATOM"})
	if a.Local().Len() != before+1 {
		t.Error("valid payload not ingested")
	}
	a.ingest(mq.Message{Atoms: []hocl.Atom{hocl.Ident("STRUCTURAL")}})
	if a.Local().Len() != before+2 {
		t.Error("structural payload not ingested")
	}
}

func TestInvokeUnknownServiceIsFatal(t *testing.T) {
	clus := testCluster()
	p, _ := twoAgentSpecs(t)
	a := New(Config{
		Spec: p, Broker: mq.NewQueueBroker(clus.Clock(), 0.0001),
		Cluster: clus, Node: clus.Node(0), Services: NewRegistry(), // empty!
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := a.Run(ctx)
	if err == nil || IsCrash(err) {
		t.Fatalf("want configuration error, got %v", err)
	}
}

func TestCrashErrorFormatting(t *testing.T) {
	err := &CrashError{Task: "T1", Incarnation: 2, At: 3.5}
	msg := err.Error()
	for _, frag := range []string{"T1", "2", "3.5"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q missing %q", msg, frag)
		}
	}
	if IsCrash(fmt.Errorf("plain")) {
		t.Error("plain error classified as crash")
	}
	if !IsCrash(fmt.Errorf("wrapped: %w", err)) {
		t.Error("wrapped crash not detected")
	}
}

// TestPushStatusDeduplicatesByFingerprint pins the cheap-dedup satellite:
// reducing an unchanged solution publishes exactly one status message,
// and a state change publishes again.
func TestPushStatusDeduplicatesByFingerprint(t *testing.T) {
	clus := testCluster()
	broker := mq.NewQueueBroker(clus.Clock(), 0.0001)
	p, _ := twoAgentSpecs(t)
	a := New(Config{
		Spec: p, Broker: broker, Cluster: clus, Node: clus.Node(0),
		Services: noopRegistry(0, "s1"),
	})
	a.pushStatus()
	if got := broker.Published(); got != 1 {
		t.Fatalf("first push published %d messages, want 1", got)
	}
	a.pushStatus() // unchanged state: deduplicated
	if got := broker.Published(); got != 1 {
		t.Errorf("unchanged push published %d messages, want 1", got)
	}
	a.local.Add(hocl.Ident("NEWSTATE"))
	a.pushStatus()
	if got := broker.Published(); got != 2 {
		t.Errorf("changed push published %d messages, want 2", got)
	}
}

// TestIngestSharesFrozenAtoms asserts the structural ingest contract:
// shareable (frozen) atoms enter the local solution by reference, while
// atoms containing an active solution are isolated by cloning.
func TestIngestSharesFrozenAtoms(t *testing.T) {
	clus := testCluster()
	p, _ := twoAgentSpecs(t)
	a := New(Config{
		Spec: p, Broker: mq.NewQueueBroker(clus.Clock(), 0.0001),
		Cluster: clus, Node: clus.Node(0), Services: noopRegistry(0, "s1"),
	})

	frozen := hoclflow.PassMessage("T0", []hocl.Atom{hocl.Str("r")})
	a.ingest(mq.Message{Atoms: []hocl.Atom{frozen}})
	got := a.local.At(a.local.Len() - 1)
	if gt, ok := got.(hocl.Tuple); !ok || gt[2].(*hocl.Solution) != frozen.(hocl.Tuple)[2].(*hocl.Solution) {
		t.Error("frozen PASS payload was not shared by reference")
	}

	active := hocl.NewSolution(hocl.Str("r")) // not inert: must be cloned
	a.ingest(mq.Message{Atoms: []hocl.Atom{active}})
	got = a.local.At(a.local.Len() - 1)
	if got.(*hocl.Solution) == active {
		t.Error("active solution was shared; the engine could mutate the sender's copy")
	}
	if !got.Equal(active) {
		t.Errorf("clone diverged: %v", got)
	}
}

// TestResyncMarkerForcesFullPush: a RESYNC control message resets the
// status encoder — the next push is a full snapshot even though the
// local state is unchanged — and never enters the local solution.
func TestResyncMarkerForcesFullPush(t *testing.T) {
	clus := testCluster()
	broker := mq.NewQueueBroker(clus.Clock(), 0.0001)
	p, _ := twoAgentSpecs(t)
	a := New(Config{
		Spec: p, Broker: broker, Cluster: clus, Node: clus.Node(0),
		Services: noopRegistry(0, "s1"),
	})
	a.pushStatus()
	a.pushStatus() // unchanged: deduplicated
	if got := broker.Published(); got != 1 {
		t.Fatalf("setup: published %d, want 1", got)
	}

	before := a.local.Len()
	a.ingest(mq.Message{Atoms: []hocl.Atom{hoclflow.ResyncMarker("T1")}})
	if a.local.Len() != before {
		t.Fatal("RESYNC marker leaked into the local solution")
	}
	a.pushStatus() // same state, but the encoder was reset: full push
	if got := broker.Published(); got != 2 {
		t.Fatalf("post-resync push published %d total, want 2", got)
	}
}
