package agent

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/space"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// DefaultTopicPrefix prefixes each agent's inbox topic: the inbox of task
// T1 is "sa.T1".
const DefaultTopicPrefix = "sa."

// Topic returns the inbox topic of a task's agent.
func Topic(prefix, task string) string {
	if prefix == "" {
		prefix = DefaultTopicPrefix
	}
	return prefix + task
}

// CrashError reports a fault-injected agent crash (§V-D). The supervisor
// reacts by starting a replacement incarnation.
type CrashError struct {
	Task        string
	Incarnation int
	At          float64 // model time of the crash
}

func (e *CrashError) Error() string {
	return fmt.Sprintf("agent %s (incarnation %d) crashed at t=%.2f", e.Task, e.Incarnation, e.At)
}

// IsCrash reports whether err is (or wraps) an injected crash.
func IsCrash(err error) bool {
	var ce *CrashError
	return errors.As(err, &ce)
}

// EscalationError reports a service invocation abandoned after its
// bounded retry budget: every attempt hit a transient fault. The
// supervisor escalates it — the session fails with the structured cause
// chain instead of stalling. errors.Is matches both
// failure.ErrRetriesExhausted and the underlying cause chain.
type EscalationError struct {
	// Task and Incarnation identify the failing agent.
	Task        string
	Incarnation int
	// Service is the invoked service name.
	Service string
	// Attempts is how many invocation attempts were made.
	Attempts int
	// Cause is the last attempt's fault.
	Cause error
}

func (e *EscalationError) Error() string {
	return fmt.Sprintf("agent %s (incarnation %d): service %q: %v after %d attempts: %v",
		e.Task, e.Incarnation, e.Service, failure.ErrRetriesExhausted, e.Attempts, e.Cause)
}

// Unwrap exposes the last fault for errors.Is/As chains.
func (e *EscalationError) Unwrap() error { return e.Cause }

// Is matches failure.ErrRetriesExhausted, which the message embeds.
func (e *EscalationError) Is(target error) bool {
	return target == failure.ErrRetriesExhausted
}

// Config wires one agent incarnation.
type Config struct {
	Spec workflow.AgentSpec
	// Broker carries inter-agent messages and space updates.
	Broker mq.Broker
	// Cluster provides the clock and the link-latency model; Node is the
	// machine hosting this agent.
	Cluster *cluster.Cluster
	Node    *cluster.Node
	// Placements locates peer agents' nodes for link-latency modelling
	// (nil disables link latency).
	Placements map[string]*cluster.Node
	// Services resolves SRV names.
	Services *Registry
	// Injector draws crash plans (nil or zero: no failures).
	Injector *failure.Injector
	// Chaos, when enabled, perturbs service invocations with transient
	// faults (errors, timeouts, slow-downs) that the agent retries under
	// Retry before escalating.
	Chaos *failure.Schedule
	// Retry bounds the retry-with-backoff for transient invocation
	// faults (zero value: failure.RetryConfig defaults).
	Retry failure.RetryConfig
	// SpaceTopic receives status pushes (default space.DefaultTopic).
	SpaceTopic string
	// TopicPrefix prefixes inbox topics (default DefaultTopicPrefix).
	TopicPrefix string
	// Incarnation is 0 for the first launch and increments per recovery.
	Incarnation int
	// Rand drives duration draws; nil derives one from Cluster.
	Rand *rand.Rand
	// Trace, when non-nil, records the agent's lifecycle events.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives the agent's observability updates
	// (invocation timings, retries, dedup suppressions). nil disables
	// instrumentation at zero cost.
	Metrics *Metrics
}

// Agent is one service agent incarnation. Create with New, Subscribe
// before any peer may address it (the engine subscribes every agent
// before starting any of them, so no message is published into the
// void), then drive with Run; a crashed agent is dead — recovery creates
// a new incarnation.
type Agent struct {
	cfg    Config
	name   string
	local  *hocl.Solution
	engine *hocl.Engine
	rng    *rand.Rand
	sub    *mq.Subscription
	// runCtx is the context of the active Run, consulted by invoke so a
	// cancelled agent abandons its in-flight modelled invocation instead
	// of sleeping it out.
	runCtx context.Context

	// statusEnc delta-encodes status pushes: the first push of this
	// incarnation is a full snapshot, later pushes ship only the changed
	// top-level atoms, and unchanged states are deduplicated by
	// fingerprint without rendering or snapshotting anything.
	statusEnc     hoclflow.StatusEncoder
	statusScratch []hocl.Atom
	completedSeen bool
	sends         atomic.Int64
	reductions    atomic.Int64

	// sendSeq numbers this incarnation's outgoing messages per topic;
	// each direct message is prefixed with a SEQ header so the receiver
	// can suppress duplicated deliveries. Touched only by the reduction
	// goroutine.
	sendSeq map[string]int64
	// seen records ingested (origin, seq) pairs with the payload
	// fingerprint that carried them: a repeat with the same fingerprint
	// is a duplicate delivery and is suppressed; a repeat with a
	// different fingerprint is a respawned sender reusing its counter
	// and is accepted. Touched only by the ingest goroutine.
	seen map[string]map[int64]uint64
	dups atomic.Int64

	// met is the resolved instrument set (zero value: all no-ops).
	met Metrics
}

// New builds an agent incarnation from its spec. The spec's template
// solution is snapshotted (copy-on-write at the solution boundary):
// every incarnation starts from the pristine task state and rebuilds
// through replay, per §IV-B's soft-state design, while immutable atoms
// and rules stay shared with the template.
func New(cfg Config) *Agent {
	a := &Agent{
		cfg:  cfg,
		name: cfg.Spec.Task.Name,
	}
	a.local = cfg.Spec.Local.SnapshotSolution()
	a.statusEnc.Task = a.name
	a.statusEnc.Incarnation = cfg.Incarnation
	a.rng = cfg.Rand
	if a.rng == nil && cfg.Cluster != nil {
		a.rng = cfg.Cluster.Rand()
	}
	a.engine = hocl.NewEngine()
	if cfg.Metrics != nil {
		a.met = *cfg.Metrics
	}
	a.bindFunctions()
	return a
}

// Name returns the task this agent executes.
func (a *Agent) Name() string { return a.name }

// Incarnation returns the agent's incarnation number.
func (a *Agent) Incarnation() int { return a.cfg.Incarnation }

// Sends returns the number of direct messages this incarnation sent.
func (a *Agent) Sends() int64 { return a.sends.Load() }

// Reductions returns the number of reduction passes performed.
func (a *Agent) Reductions() int64 { return a.reductions.Load() }

// DuplicatesSuppressed returns how many duplicated deliveries the inbox
// sequence protocol suppressed in this incarnation.
func (a *Agent) DuplicatesSuppressed() int64 { return a.dups.Load() }

// Local exposes the agent's local solution for inspection in tests and
// reports. The caller must not mutate it while Run is active.
func (a *Agent) Local() *hocl.Solution { return a.local }

func (a *Agent) clock() *cluster.Clock { return a.cfg.Cluster.Clock() }

// sleep charges a modelled duration, interruptible by the active Run's
// context: a cancelled agent abandons the invocation mid-sleep, so
// session teardown never waits out long in-flight services.
func (a *Agent) sleep(modelSeconds float64) error {
	ctx := a.runCtx
	if ctx == nil {
		ctx = context.Background()
	}
	return a.clock().SleepCtx(ctx, modelSeconds)
}

func (a *Agent) inboxTopic() string { return Topic(a.cfg.TopicPrefix, a.name) }

func (a *Agent) spaceTopic() string {
	if a.cfg.SpaceTopic != "" {
		return a.cfg.SpaceTopic
	}
	return space.DefaultTopic
}

// bindFunctions registers the agent-bound external functions on the
// embedded interpreter: invoke, send, the adaptation triggers this task
// owns and the generated mv_src rewrites.
func (a *Agent) bindFunctions() {
	a.engine.Funcs.Register(hoclflow.FnInvoke, a.invoke)
	a.engine.Funcs.Register(hoclflow.FnSend, a.send)
	for name, fn := range a.cfg.Spec.Funcs {
		a.engine.Funcs.Register(name, fn)
	}
	for _, trig := range a.cfg.Spec.Triggers {
		trig := trig
		a.engine.Funcs.Register(trig.FuncName, func([]hocl.Atom) ([]hocl.Atom, error) {
			return nil, a.fireTrigger(trig)
		})
	}
}

// invoke implements the gw_call external function: resolve the service,
// charge its modelled duration on the clock and return the result (or
// ERROR on service-level failure). Fault injection interrupts the
// invocation with a CrashError after the planned delay, aborting the
// reduction — the supervisor takes over from there.
func (a *Agent) invoke(args []hocl.Atom) ([]hocl.Atom, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("invoke: missing service name")
	}
	svcName, ok := args[0].(hocl.Str)
	if !ok {
		return nil, fmt.Errorf("invoke: service name is %s, want string", args[0].Kind())
	}
	svc, ok := a.cfg.Services.Lookup(string(svcName))
	if !ok {
		return nil, fmt.Errorf("invoke: unknown service %q", svcName)
	}
	var params []hocl.Atom
	if len(args) > 1 {
		if l, ok := args[1].(hocl.List); ok {
			params = l
		}
	}

	dur := svc.InvocationDuration(a.rng)
	startModel, startWall := a.clock().Now(), time.Now()
	a.cfg.Trace.Record(trace.ServiceInvoked, a.name, a.cfg.Incarnation, string(svcName))
	if plan := a.cfg.Injector.Next(); plan.Crash && plan.After <= dur {
		// The failure hits while the service is still running (§V-D:
		// only services whose duration exceeds T are at risk).
		if err := a.sleep(plan.After); err != nil {
			return nil, err
		}
		a.cfg.Trace.Record(trace.AgentCrashed, a.name, a.cfg.Incarnation, string(svcName))
		return nil, &CrashError{Task: a.name, Incarnation: a.cfg.Incarnation, At: a.clock().Now()}
	}
	if a.cfg.Chaos.Enabled() {
		var err error
		if dur, err = a.rideOutFaults(string(svcName), dur); err != nil {
			return nil, err
		}
	}
	if err := a.sleep(dur); err != nil {
		return nil, err
	}

	result, err := svc.Invoke(params)
	a.met.InvokeModel.Observe(a.clock().Now() - startModel)
	a.met.InvokeWall.Observe(time.Since(startWall).Seconds())
	if err != nil {
		a.cfg.Trace.Record(trace.ServiceErrored, a.name, a.cfg.Incarnation, string(svcName))
		return []hocl.Atom{hoclflow.AtomERROR}, nil
	}
	a.cfg.Trace.Record(trace.ServiceCompleted, a.name, a.cfg.Incarnation, string(svcName))
	return []hocl.Atom{result}, nil
}

// rideOutFaults draws the chaos schedule's invocation boundary and
// retries transient faults under the bounded backoff budget:
//
//   - slow: the call succeeds but takes longer (added to dur, no retry);
//   - error: the attempt fails fast, is traced and retried after
//     backoff;
//   - timeout: the service runs its full duration, the response is
//     lost, and the attempt is retried after backoff.
//
// Exhaustion returns an EscalationError whose chain matches
// failure.ErrRetriesExhausted; the supervisor escalates it into a
// session failure.
func (a *Agent) rideOutFaults(svcName string, dur float64) (float64, error) {
	rc := a.cfg.Retry.WithDefaults()
	for attempt := 1; ; attempt++ {
		f := a.cfg.Chaos.Draw(failure.BoundaryInvoke)
		switch f.Kind {
		case failure.FaultSlow:
			return dur + f.Delay, nil
		case failure.FaultError, failure.FaultTimeout:
			cost := f.Delay
			if f.Kind == failure.FaultTimeout {
				cost = dur // the service ran to its deadline before the response was lost
			}
			if err := a.sleep(cost); err != nil {
				return 0, err
			}
			a.cfg.Trace.Record(trace.ServiceFaulted, a.name, a.cfg.Incarnation,
				fmt.Sprintf("%s attempt %d: %v", svcName, attempt, f.Err))
			a.met.Retries.Inc()
			if attempt >= rc.MaxAttempts {
				return 0, &EscalationError{
					Task: a.name, Incarnation: a.cfg.Incarnation,
					Service: svcName, Attempts: attempt, Cause: f.Err,
				}
			}
			if err := a.sleep(rc.Delay(attempt)); err != nil {
				return 0, err
			}
		default:
			return dur, nil
		}
	}
}

// send implements the decentralised gw_pass product (§IV-A): ship the
// result molecules directly to the destination agent's inbox. The
// payload is structural — the result atoms are snapshotted (solutions
// get independent shells, immutable atoms travel by reference) and
// handed to the broker pre-built, never rendered to text. Link latency
// to the destination's node is charged asynchronously — the message is
// on the wire, the sender moves on.
func (a *Agent) send(args []hocl.Atom) ([]hocl.Atom, error) {
	if len(args) < 1 {
		return nil, fmt.Errorf("send: missing destination")
	}
	dst, ok := args[0].(hocl.Ident)
	if !ok {
		return nil, fmt.Errorf("send: destination is %s, want task name", args[0].Kind())
	}
	topic := Topic(a.cfg.TopicPrefix, string(dst))
	payload := a.stampSeq(topic, hoclflow.PassMessage(a.name, hocl.SnapshotAtoms(args[1:])))
	a.publishWithLatency(topic, payload, a.linkLatencyTo(string(dst)))
	a.sends.Add(1)
	a.cfg.Trace.Record(trace.ResultSent, a.name, a.cfg.Incarnation, string(dst))
	return nil, nil
}

// fireTrigger implements the decentralised trigger_adapt (§IV-A): the
// interpreter that detected the failure messages ADAPT to the agents
// hosting add_dst/mv_src rules and records TRIGGER in the shared space.
func (a *Agent) fireTrigger(trig workflow.TriggerSpec) error {
	a.met.Adaptations.Inc()
	a.cfg.Trace.Record(trace.AdaptTriggered, a.name, a.cfg.Incarnation, trig.AdaptationID)
	marker := hoclflow.AdaptMarker(trig.AdaptationID)
	for _, peer := range trig.Notify {
		t := Topic(a.cfg.TopicPrefix, peer)
		a.publishWithLatency(t, a.stampSeq(t, marker), a.linkLatencyTo(peer))
		a.sends.Add(1)
	}
	a.publishWithLatency(a.spaceTopic(), []hocl.Atom{hoclflow.TriggerMarker(trig.AdaptationID)}, 0)
	return nil
}

// stampSeq wraps a direct message's body with this incarnation's next
// per-destination SEQ header, the receiver's handle for suppressing
// duplicated deliveries (exactly-once ingestion).
func (a *Agent) stampSeq(topic string, body hocl.Atom) []hocl.Atom {
	if a.sendSeq == nil {
		a.sendSeq = map[string]int64{}
	}
	a.sendSeq[topic]++
	return []hocl.Atom{hoclflow.SeqMarker(a.name, a.sendSeq[topic]), body}
}

// dupSeq records a message's (origin, seq, payload fingerprint)
// identity and reports whether that exact message was ingested before.
// The fingerprint guards the one legitimate reuse of a sequence number:
// a respawned sender restarts its counter, and its re-send may carry
// different content that must not be suppressed.
func (a *Agent) dupSeq(origin string, n int64, payload []hocl.Atom) bool {
	fp := hocl.Fingerprint(payload...)
	if a.seen == nil {
		a.seen = map[string]map[int64]uint64{}
	}
	m := a.seen[origin]
	if m == nil {
		m = map[int64]uint64{}
		a.seen[origin] = m
	}
	if prev, ok := m[n]; ok && prev == fp {
		return true
	}
	m[n] = fp
	return false
}

func (a *Agent) linkLatencyTo(peer string) float64 {
	if a.cfg.Placements == nil || a.cfg.Node == nil {
		return 0
	}
	return a.cfg.Cluster.Latency(a.cfg.Node, a.cfg.Placements[peer])
}

// publishWithLatency ships a structural payload after the given link
// latency without blocking the reduction.
func (a *Agent) publishWithLatency(topic string, atoms []hocl.Atom, latency float64) {
	if latency <= 0 {
		_ = a.cfg.Broker.PublishAtoms(topic, atoms)
		return
	}
	a.clock().Go(func() {
		a.clock().Sleep(latency)
		_ = a.cfg.Broker.PublishAtoms(topic, atoms)
	})
}

// pushStatus publishes the task's current sub-solution to the shared
// space ("often pushed back (written) to the multiset", §IV-A). Rules
// and the NAME atom are stripped: the space tracks data state, and rules
// do not round-trip cheaply.
//
// The stripped state goes through the incarnation's StatusEncoder: the
// first push is a full snapshot, later pushes are deltas carrying only
// the changed top-level atoms (falling back to a snapshot when the delta
// would not be smaller), and an unchanged state costs one hash pass and
// no publish.
func (a *Agent) pushStatus() {
	atoms := a.statusScratch[:0]
	for _, atom := range a.local.Atoms() {
		if _, isRule := atom.(*hocl.Rule); isRule {
			continue
		}
		if tp, ok := atom.(hocl.Tuple); ok && len(tp) == 2 && tp[0].Equal(hoclflow.KeyNAME) {
			continue
		}
		atoms = append(atoms, atom)
	}
	a.statusScratch = atoms
	payload := a.statusEnc.Encode(atoms, a.local.Inert())
	if payload == nil {
		return
	}
	_ = a.cfg.Broker.PublishAtoms(a.spaceTopic(), payload)
}

// reduce runs the interpreter over the local solution and pushes status.
func (a *Agent) reduce() error {
	a.reductions.Add(1)
	if err := a.engine.Reduce(a.local); err != nil {
		return err
	}
	if !a.completedSeen && hoclflow.StatusOf(a.local) == hoclflow.StatusCompleted {
		a.completedSeen = true
		a.cfg.Trace.Record(trace.TaskCompleted, a.name, a.cfg.Incarnation, "")
	}
	a.pushStatus()
	return nil
}

// ingest folds a message into the local solution. Structural payloads
// are ingested by reference — no parsing, no cloning — except for atoms
// containing a non-inert solution, which the engine could mutate while
// other owners (peers, the replay log) still share them; those are
// cloned. Textual payloads take the parse path; undecodable ones are
// dropped — a poisoned message must not kill the agent.
//
// RESYNC markers are control messages, not molecules: they reset the
// status encoder so the next push is a full snapshot (the space asked
// for one after refusing a delta) and never enter the local solution.
// SEQ headers are checked first: a message whose (origin, seq, payload
// fingerprint) was already ingested is a duplicated delivery and is
// dropped whole (exactly-once ingestion over at-least-once transport).
func (a *Agent) ingest(msg mq.Message) {
	if msg.Structural() {
		a.ingestAtoms(msg.Atoms)
		return
	}
	atoms, err := hocl.ParseMolecules(msg.Payload)
	if err != nil {
		return
	}
	a.ingestAtoms(atoms)
}

func (a *Agent) ingestAtoms(atoms []hocl.Atom) {
	if len(atoms) > 0 {
		if origin, n, ok := hoclflow.DecodeSeq(atoms[0]); ok {
			atoms = atoms[1:]
			if a.dupSeq(origin, n, atoms) {
				a.dups.Add(1)
				a.met.Dedup.Inc()
				a.cfg.Trace.Record(trace.MessageDeduped, a.name, a.cfg.Incarnation,
					fmt.Sprintf("%s#%d", origin, n))
				return
			}
		}
	}
	for _, atom := range atoms {
		if _, ok := hoclflow.DecodeResync(atom); ok {
			a.statusEnc.Reset()
			continue
		}
		if hocl.Shareable(atom) {
			a.local.Add(atom)
		} else {
			a.local.Add(atom.Clone())
		}
	}
}

// Subscribe attaches the agent to its inbox topic. The engine subscribes
// every agent before starting any of them: a peer that finishes fast
// cannot publish a result into the void (on the volatile queue broker
// that message would be lost forever). Subscribe is idempotent.
func (a *Agent) Subscribe() error {
	if a.sub != nil {
		return nil
	}
	sub, err := a.cfg.Broker.Subscribe(a.inboxTopic())
	if err != nil {
		return fmt.Errorf("agent %s: %w", a.name, err)
	}
	a.sub = sub
	return nil
}

// Run executes the agent until the context ends or a crash is injected.
// The sequence implements §IV-A/§IV-B:
//
//  1. subscribe to the inbox topic if Subscribe has not been called yet
//     (before replay, so no message can fall between the log snapshot
//     and the live feed);
//  2. on recovery, replay the persisted inbox log in order, rebuilding
//     the local state — the agent "lifecycle is a sequence of receptions
//     and reductions", so replaying receptions reproduces the state;
//  3. reduce (entry tasks invoke their service right away);
//  4. loop: receive molecules, reduce, push status.
func (a *Agent) Run(ctx context.Context) error {
	if err := a.Subscribe(); err != nil {
		return err
	}
	a.runCtx = ctx
	sub := a.sub
	defer sub.Cancel()

	a.met.Deployed.Inc()
	a.cfg.Trace.Record(trace.AgentStarted, a.name, a.cfg.Incarnation, "")
	if a.cfg.Incarnation > 0 {
		if replayable, ok := a.cfg.Broker.(mq.Replayable); ok {
			for _, msg := range replayable.Log(a.inboxTopic()) {
				a.ingest(msg)
			}
		}
	}
	if err := a.reduce(); err != nil {
		return err
	}

	if a.clock().Virtual() {
		return a.runVirtual(ctx, sub)
	}
	batches := sub.Batches()
	for {
		select {
		case <-ctx.Done():
			return nil
		case batch := <-batches:
			for i := range batch {
				a.ingest(batch[i])
			}
			// Drain whatever else is already due before reducing: one
			// reduction can absorb a burst of arrivals. (Batch slices
			// are broker-owned; each is fully ingested before the next
			// receive, as the Batches contract requires.)
			for drained := true; drained; {
				select {
				case more := <-batches:
					for i := range more {
						a.ingest(more[i])
					}
				default:
					drained = false
				}
			}
			if err := a.reduce(); err != nil {
				return err
			}
		}
	}
}

// runVirtual is the receive→reduce loop on a discrete-event clock: the
// agent goroutine is a schedule participant, so it consumes its inbox
// with Subscription.Next (the wait for the head message's due instant
// runs on the scheduler) instead of the drain goroutine behind Batches.
func (a *Agent) runVirtual(ctx context.Context, sub *mq.Subscription) error {
	for {
		batch, err := sub.Next(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return nil // subscription cancelled
		}
		for i := range batch {
			a.ingest(batch[i])
		}
		// Absorb whatever else is already due before reducing, matching
		// the real-mode burst drain.
		for more := sub.TryNext(); more != nil; more = sub.TryNext() {
			for i := range more {
				a.ingest(more[i])
			}
		}
		if err := a.reduce(); err != nil {
			return err
		}
	}
}
