package agent

import "ginflow/internal/obs"

// Metrics is the set of resolved instruments an agent incarnation
// updates. Resolve once per process or per session with NewMetrics and
// share the value across incarnations: every field is an obs instrument
// whose methods are nil-receiver-safe, so the zero Metrics (and a nil
// Config.Metrics) is a no-op and the agent hot paths never branch on
// instrumentation being present.
type Metrics struct {
	// InvokeModel observes the model-clock seconds of each finished
	// service invocation, fault delays and retry backoffs included.
	InvokeModel *obs.Histogram
	// InvokeWall observes the wall-clock seconds of the same invocations
	// — the real cost axis, excluded from determinism comparisons.
	InvokeWall *obs.Histogram
	// Retries counts transient-fault invocation attempts that were
	// retried under the bounded backoff budget.
	Retries *obs.Counter
	// Dedup counts duplicated deliveries suppressed by the inbox
	// sequence protocol.
	Dedup *obs.Counter
	// Deployed counts agent incarnation starts (recoveries included).
	Deployed *obs.Counter
	// Adaptations counts adaptation triggers fired by agents.
	Adaptations *obs.Counter
}

// NewMetrics resolves the agent instrument set on reg (nil takes the
// process default registry).
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &Metrics{
		InvokeModel: reg.Histogram("ginflow_service_invoke_model_seconds",
			"Model-clock duration of finished service invocations, fault delays and retries included.",
			obs.ModelSecondsBuckets),
		InvokeWall: reg.Histogram("ginflow_service_invoke_wall_seconds",
			"Wall-clock duration of finished service invocations.",
			obs.WallSecondsBuckets),
		Retries: reg.Counter("ginflow_retry_attempts_total",
			"Retries after transient faults, per boundary.", obs.L("boundary", "invoke")),
		Dedup: reg.Counter("ginflow_dedup_suppressed_total",
			"Duplicated deliveries suppressed by the inbox sequence protocol."),
		Deployed: reg.Counter("ginflow_agents_deployed_total",
			"Agent incarnations started (recoveries included)."),
		Adaptations: reg.Counter("ginflow_adaptations_total",
			"Adaptation triggers fired by agents."),
	}
}
