// Package agent implements GinFlow's service agents (SAs): the workers
// that jointly execute a workflow without a central engine (paper §IV-A).
// Each SA bundles (1) the service it wraps, (2) a local copy of its task
// sub-solution and (3) an HOCL interpreter that reduces the local
// solution every time molecules arrive. Completed results travel directly
// to the destination agents through the message broker, and every
// reduction's outcome is pushed back to the shared space.
//
// The package also implements the §IV-B resilience behaviour: an agent
// can crash (by fault injection) and a replacement incarnation rebuilds
// the lost state by replaying the agent's inbox from a log-backed broker,
// re-invoking its (idempotent) service along the way.
package agent

import (
	"fmt"
	"math/rand"
	"sync"

	"ginflow/internal/hocl"
)

// Service describes one invocable service: a modelled duration (the time
// the invocation occupies the agent) and an optional computation over the
// parameter list. The zero Compute echoes a deterministic output string.
type Service struct {
	// Name is the service identifier referenced by task SRV atoms.
	Name string
	// Duration is the modelled execution time in model seconds.
	Duration float64
	// DurationFn, when set, draws the execution time per invocation
	// (heterogeneous workloads such as Montage).
	DurationFn func(r *rand.Rand) float64
	// Compute produces the result atom from the invocation parameters.
	// Returning an error yields the ERROR atom (a service-level failure,
	// the trigger of workflow adaptation, §III-C). Nil echoes
	// "out-<name>".
	Compute func(params []hocl.Atom) (hocl.Atom, error)
}

// InvocationDuration resolves the invocation's modelled duration.
func (s *Service) InvocationDuration(r *rand.Rand) float64 {
	if s.DurationFn != nil {
		return s.DurationFn(r)
	}
	return s.Duration
}

// Invoke executes the computation.
func (s *Service) Invoke(params []hocl.Atom) (hocl.Atom, error) {
	if s.Compute == nil {
		return hocl.Str("out-" + s.Name), nil
	}
	return s.Compute(params)
}

// Registry maps service names to implementations; it is safe for
// concurrent use. The zero value is empty and usable.
type Registry struct {
	mu sync.RWMutex
	m  map[string]*Service
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: map[string]*Service{}} }

// Register adds (or replaces) a service.
func (r *Registry) Register(s *Service) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = map[string]*Service{}
	}
	r.m[s.Name] = s
}

// RegisterFunc is a convenience for fixed-duration computed services.
func (r *Registry) RegisterFunc(name string, duration float64, compute func(params []hocl.Atom) (hocl.Atom, error)) {
	r.Register(&Service{Name: name, Duration: duration, Compute: compute})
}

// RegisterNoop registers echo services with a fixed duration — the
// paper's diamond tasks "only simulate a simple script with a (very low)
// constant execution time" (§V).
func (r *Registry) RegisterNoop(duration float64, names ...string) {
	for _, n := range names {
		r.Register(&Service{Name: n, Duration: duration})
	}
}

// RegisterFailing registers a service that always produces ERROR — used
// to raise the execution exception in the adaptiveness experiments
// (§V-B).
func (r *Registry) RegisterFailing(name string, duration float64) {
	r.Register(&Service{
		Name: name, Duration: duration,
		Compute: func([]hocl.Atom) (hocl.Atom, error) {
			return nil, fmt.Errorf("service %s: injected execution exception", name)
		},
	})
}

// Lookup resolves a service by name.
func (r *Registry) Lookup(name string) (*Service, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.m[name]
	return s, ok
}

// Names returns the registered service names (unordered).
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.m))
	for n := range r.m {
		out = append(out, n)
	}
	return out
}
