package hoclflow

import (
	"testing"

	"ginflow/internal/hocl"
)

func statusAtoms() []hocl.Atom {
	return []hocl.Atom{
		hocl.Tuple{KeySRC, hocl.NewSolution(hocl.Ident("T1"), hocl.Ident("T2"))},
		hocl.Tuple{KeyDST, hocl.NewSolution(hocl.Ident("T4"))},
		hocl.Tuple{KeySRV, hocl.Str("s1")},
		hocl.Tuple{KeyRES, hocl.NewSolution()},
	}
}

func TestStatusDeltaRoundTrip(t *testing.T) {
	d := StatusDelta{
		Task: "T3", Base: 0xdeadbeefcafef00d, Next: 42,
		RemovedHashes: []uint64{1, 2, 1 << 63},
		Added:         []hocl.Atom{hocl.Tuple{KeyRES, hocl.NewSolution(hocl.Str("out"))}},
		Inert:         true,
	}
	got, ok := DecodeStatusDelta(d.Atom())
	if !ok {
		t.Fatal("round trip failed to decode")
	}
	if got.Task != d.Task || got.Base != d.Base || got.Next != d.Next || got.Inert != d.Inert {
		t.Errorf("decoded %+v, want %+v", got, d)
	}
	if len(got.RemovedHashes) != 3 || got.RemovedHashes[2] != 1<<63 {
		t.Errorf("removed hashes = %v", got.RemovedHashes)
	}
	if len(got.Added) != 1 || !got.Added[0].Equal(d.Added[0]) {
		t.Errorf("added = %v", got.Added)
	}
}

func TestDecodeStatusDeltaRejectsOtherAtoms(t *testing.T) {
	for _, a := range []hocl.Atom{
		hocl.Int(1),
		hocl.Tuple{hocl.Ident("T1"), hocl.NewSolution()},              // full snapshot
		hocl.Tuple{KeySTATDELTA, hocl.Ident("T1")},                    // short
		hocl.Tuple{KeyTRIGGER, hocl.Str("a1")}, // marker
		hocl.Tuple{ // right arity, wrong element types
			KeySTATDELTA, hocl.Str("T1"), hocl.Int(0), hocl.Int(0),
			hocl.List{}, hocl.List{}, hocl.Bool(false),
		},
		hocl.Tuple{ // non-Int removal hash
			KeySTATDELTA, hocl.Ident("T1"), hocl.Int(0), hocl.Int(0),
			hocl.List{hocl.Str("nope")}, hocl.List{}, hocl.Bool(false),
		},
	} {
		if _, ok := DecodeStatusDelta(a); ok {
			t.Errorf("decoded non-delta atom %v", a)
		}
	}
}

// body strips and validates the VER header every encoder payload leads
// with, returning the status body atom.
func body(t *testing.T, e *StatusEncoder, payload []hocl.Atom) hocl.Atom {
	t.Helper()
	if len(payload) != 2 {
		t.Fatalf("payload = %v, want [VER header, body]", payload)
	}
	task, inc, push, ok := DecodeVersion(payload[0])
	if !ok || task != e.Task || inc != int64(e.Incarnation) || push <= 0 {
		t.Fatalf("payload header %v does not version task %s", payload[0], e.Task)
	}
	return payload[1]
}

func TestStatusEncoderFirstPushIsFullSnapshot(t *testing.T) {
	e := &StatusEncoder{Task: "T3"}
	atoms := statusAtoms()
	payload := e.Encode(atoms, false)
	tp, ok := body(t, e, payload).(hocl.Tuple)
	if !ok || len(tp) != 2 || !tp[0].Equal(hocl.Ident("T3")) {
		t.Fatalf("first push is not a full snapshot tuple: %v", payload[0])
	}
	sub, ok := tp[1].(*hocl.Solution)
	if !ok || sub.Len() != len(atoms) {
		t.Fatalf("snapshot sub = %v", tp[1])
	}
	// Unchanged state: deduplicated.
	if p := e.Encode(atoms, false); p != nil {
		t.Errorf("unchanged state re-pushed: %v", p)
	}
}

func TestStatusEncoderEmitsDeltaForSmallChange(t *testing.T) {
	e := &StatusEncoder{Task: "T3"}
	atoms := statusAtoms()
	e.Encode(atoms, false)

	// One tuple changes: RES gains a result.
	oldRES := atoms[3]
	newRES := hocl.Tuple{KeyRES, hocl.NewSolution(hocl.Str("out"))}
	atoms[3] = newRES
	payload := e.Encode(atoms, true)
	d, ok := DecodeStatusDelta(body(t, e, payload))
	if !ok {
		t.Fatalf("change did not encode as delta: %v", payload)
	}
	if len(d.RemovedHashes) != 1 || d.RemovedHashes[0] != hocl.AtomHash(oldRES) {
		t.Errorf("removed = %v, want hash of %v", d.RemovedHashes, oldRES)
	}
	if len(d.Added) != 1 || !d.Added[0].Equal(newRES) {
		t.Errorf("added = %v", d.Added)
	}
	if !d.Inert {
		t.Error("inert flag lost")
	}
	if d.Base != hocl.Fingerprint(statusAtoms()...) || d.Next != hocl.Fingerprint(atoms...) {
		t.Error("delta fingerprints do not anchor the old and new states")
	}
}

func TestStatusEncoderFallsBackToFullOnLargeChange(t *testing.T) {
	e := &StatusEncoder{Task: "T3"}
	e.Encode(statusAtoms(), false)

	// Everything changes: a delta would ship more than a snapshot.
	replaced := []hocl.Atom{
		hocl.Tuple{KeyRES, hocl.NewSolution(hocl.Str("a"))},
		hocl.Tuple{KeyIN, hocl.NewSolution(hocl.Str("b"))},
	}
	payload := e.Encode(replaced, false)
	b := body(t, e, payload)
	if _, ok := DecodeStatusDelta(b); ok {
		t.Fatal("full-rewrite state encoded as delta")
	}
	tp, ok := b.(hocl.Tuple)
	if !ok || len(tp) != 2 {
		t.Fatalf("fallback is not a full snapshot: %v", b)
	}
}

func TestStatusEncoderResetForcesFullSnapshot(t *testing.T) {
	e := &StatusEncoder{Task: "T3"}
	atoms := statusAtoms()
	e.Encode(atoms, false)
	atoms[3] = hocl.Tuple{KeyRES, hocl.NewSolution(hocl.Str("out"))}
	if _, ok := DecodeStatusDelta(body(t, e, e.Encode(atoms, false))); !ok {
		t.Fatal("expected a delta before Reset")
	}
	e.Reset()
	payload := e.Encode(atoms, false)
	if _, ok := DecodeStatusDelta(body(t, e, payload)); ok {
		t.Error("post-Reset push is a delta, want full snapshot")
	}
}

// TestStatusEncoderSnapshotsAddedAtoms: delta payloads must be frozen —
// mutating the agent's live solution after encoding must not reach atoms
// already on the wire.
func TestStatusEncoderSnapshotsAddedAtoms(t *testing.T) {
	e := &StatusEncoder{Task: "T3"}
	atoms := statusAtoms()
	e.Encode(atoms, false)
	live := hocl.NewSolution(hocl.Str("out"))
	atoms[3] = hocl.Tuple{KeyRES, live}
	payload := e.Encode(atoms, false)
	d, ok := DecodeStatusDelta(body(t, e, payload))
	if !ok {
		t.Fatal("expected delta")
	}
	live.Add(hocl.Str("late-mutation"))
	added := d.Added[0].(hocl.Tuple)[1].(*hocl.Solution)
	if added.Len() != 1 {
		t.Errorf("wire payload observed a post-encode mutation: %v", added)
	}
}

// TestResyncMarkerRoundTrip covers the RESYNC control molecule's codec.
func TestResyncMarkerRoundTrip(t *testing.T) {
	m := ResyncMarker("T7")
	task, ok := DecodeResync(m)
	if !ok || task != "T7" {
		t.Fatalf("DecodeResync(ResyncMarker) = %q, %v", task, ok)
	}
	for _, not := range []hocl.Atom{
		hocl.Ident("RESYNC"),
		hocl.Tuple{KeyRESYNC},
		hocl.Tuple{KeyRESYNC, hocl.Str("T7")},
		hocl.Tuple{KeyPASS, hocl.Ident("T7")},
	} {
		if _, ok := DecodeResync(not); ok {
			t.Errorf("DecodeResync accepted %v", not)
		}
	}
}
