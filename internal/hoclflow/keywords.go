package hoclflow

import (
	"fmt"
	"regexp"
	"strings"

	"ginflow/internal/hocl"
)

// Reserved workflow atoms (paper §III-B/C). They key the tuples of a task
// sub-solution and mark adaptation state.
const (
	KeySRC     = hocl.Ident("SRC")     // incoming dependencies: SRC:<T1, ...>
	KeyDST     = hocl.Ident("DST")     // outgoing dependencies: DST:<T4, ...>
	KeySRV     = hocl.Ident("SRV")     // service to invoke: SRV:"s1"
	KeyIN      = hocl.Ident("IN")      // accumulated inputs: IN:<...>
	KeyPAR     = hocl.Ident("PAR")     // assembled parameter list: PAR:[...]
	KeyRES     = hocl.Ident("RES")     // invocation results: RES:<...>
	KeyNAME    = hocl.Ident("NAME")    // agent-local task identity: NAME:T1
	KeyPASS    = hocl.Ident("PASS")    // in-flight result message: PASS:T1:<...>
	KeyADAPT   = hocl.Ident("ADAPT")   // adaptation marker: ADAPT:"id"
	KeyTRIGGER = hocl.Ident("TRIGGER") // adaptation-fired marker: TRIGGER:"id"
	KeyADDDST  = hocl.Ident("ADDDST")  // user-level reconfiguration atom
	KeyMVSRC   = hocl.Ident("MVSRC")   // user-level reconfiguration atom
	KeyRESYNC  = hocl.Ident("RESYNC")  // space-to-agent full-push request
	KeySEQ     = hocl.Ident("SEQ")     // per-inbox sequence header: SEQ:T1:n
	KeyVER     = hocl.Ident("VER")     // status version header: VER:T1:inc:push
	AtomERROR  = hocl.Ident("ERROR")   // failed invocation marker in RES
)

// Rule and external-function naming. Generated per-adaptation artifacts
// embed a sanitised adaptation id.
const (
	RuleGwSetup = "gw_setup"
	RuleGwCall  = "gw_call"
	RuleGwPass  = "gw_pass"
	RuleGwSend  = "gw_send"
	RuleGwRecv  = "gw_recv"
	RuleGwGc    = "gw_gc"

	FnInvoke = "invoke" // invoke(service, params) -> result | ERROR
	FnSend   = "send"   // send(dest, result...) -> nothing (agent-bound)
)

var taskNameRE = regexp.MustCompile(`^[A-Z][A-Za-z0-9_']*$`)

// ValidTaskName reports whether name is usable as a task identifier: it
// must parse as an HOCL Ident (leading capital), since task names become
// symbolic atoms in solutions.
func ValidTaskName(name string) bool { return taskNameRE.MatchString(name) }

var sanitizeRE = regexp.MustCompile(`[^a-z0-9_]`)

// SanitizeID lowercases and strips an adaptation id so it can be embedded
// in rule and function names.
func SanitizeID(id string) string {
	s := sanitizeRE.ReplaceAllString(strings.ToLower(id), "_")
	if s == "" {
		s = "a"
	}
	return s
}

// TriggerFuncName returns the agent-bound function name that fires
// adaptation id (distributed trigger_adapt, §IV-A).
func TriggerFuncName(id string) string { return "adapt_trigger_" + SanitizeID(id) }

// MvSrcFuncName returns the generated function that rewrites a
// destination's source set for adaptation id.
func MvSrcFuncName(id string) string { return "mv_src_fn_" + SanitizeID(id) }

// TriggerRuleName / AddDstRuleName / MvSrcRuleName name the generated
// per-adaptation rules (paper Fig. 7's trigger_adapt, add_dst1, mv_src4).
func TriggerRuleName(id, task string) string {
	return fmt.Sprintf("trigger_adapt_%s_%s", SanitizeID(id), strings.ToLower(task))
}

func AddDstRuleName(id, task string) string {
	return fmt.Sprintf("add_dst_%s_%s", SanitizeID(id), strings.ToLower(task))
}

func MvSrcRuleName(id string) string { return "mv_src_" + SanitizeID(id) }

// idents converts task names to Ident atoms.
func idents(names []string) []hocl.Atom {
	out := make([]hocl.Atom, len(names))
	for i, n := range names {
		out[i] = hocl.Ident(n)
	}
	return out
}

// identSolution builds <T1, T2, ...> from task names.
func identSolution(names []string) *hocl.Solution {
	return hocl.NewSolution(idents(names)...)
}
