package hoclflow

import (
	"testing"

	"ginflow/internal/hocl"
)

func TestSeqMarkerRoundTrip(t *testing.T) {
	origin, n, ok := DecodeSeq(SeqMarker("T2", 17))
	if !ok || origin != "T2" || n != 17 {
		t.Fatalf("DecodeSeq(SeqMarker) = %q, %d, %v", origin, n, ok)
	}
	for _, not := range []hocl.Atom{
		hocl.Ident("SEQ"),
		hocl.Tuple{KeySEQ, hocl.Ident("T2")},
		hocl.Tuple{KeySEQ, hocl.Str("T2"), hocl.Int(1)},
		hocl.Tuple{KeyPASS, hocl.Ident("T2"), hocl.Int(1)},
		SeqMarker("T2", 1).(hocl.Tuple)[:2],
	} {
		if _, _, ok := DecodeSeq(not); ok {
			t.Errorf("DecodeSeq accepted %v", not)
		}
	}
}

func TestVersionMarkerRoundTrip(t *testing.T) {
	task, inc, push, ok := DecodeVersion(VersionMarker("T5", 2, 9))
	if !ok || task != "T5" || inc != 2 || push != 9 {
		t.Fatalf("DecodeVersion(VersionMarker) = %q, %d, %d, %v", task, inc, push, ok)
	}
	for _, not := range []hocl.Atom{
		hocl.Ident("VER"),
		hocl.Tuple{KeyVER, hocl.Ident("T5"), hocl.Int(1)},
		hocl.Tuple{KeyVER, hocl.Str("T5"), hocl.Int(1), hocl.Int(1)},
		SeqMarker("T5", 1),
	} {
		if _, _, _, ok := DecodeVersion(not); ok {
			t.Errorf("DecodeVersion accepted %v", not)
		}
	}
}

// TestStatusEncoderVersionsAdvance proves the VER stream is strictly
// monotone within an incarnation, including across Reset — the property
// the space's stale-push gate relies on.
func TestStatusEncoderVersionsAdvance(t *testing.T) {
	e := &StatusEncoder{Task: "T1", Incarnation: 3}
	atoms := statusAtoms()
	var last int64
	bump := func(payload []hocl.Atom) {
		t.Helper()
		task, inc, push, ok := DecodeVersion(payload[0])
		if !ok || task != "T1" || inc != 3 {
			t.Fatalf("bad header %v", payload[0])
		}
		if push <= last {
			t.Fatalf("push %d did not advance past %d", push, last)
		}
		last = push
	}
	bump(e.Encode(atoms, false))
	atoms[3] = hocl.Tuple{KeyRES, hocl.NewSolution(hocl.Str("out"))}
	bump(e.Encode(atoms, false))
	e.Reset() // resync: the re-push must still outrank prior pushes
	bump(e.Encode(atoms, false))
}
