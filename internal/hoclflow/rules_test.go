package hoclflow

import (
	"fmt"
	"testing"

	"ginflow/internal/hocl"
)

// buildDiamond assembles the paper's Fig. 3 workflow as a centralized
// global multiset with the Fig. 4 generic rules injected, plus any extra
// per-task rules and global rules.
func buildDiamond(extraTaskRules map[string][]*hocl.Rule, globalRules ...*hocl.Rule) *hocl.Solution {
	tasks := []TaskAttrs{
		{Name: "T1", Src: nil, Dst: []string{"T2", "T3"}, Service: "s1", In: []hocl.Atom{hocl.Str("input")}},
		{Name: "T2", Src: []string{"T1"}, Dst: []string{"T4"}, Service: "s2"},
		{Name: "T3", Src: []string{"T1"}, Dst: []string{"T4"}, Service: "s3"},
		{Name: "T4", Src: []string{"T2", "T3"}, Dst: nil, Service: "s4"},
	}
	global := hocl.NewSolution(GwPass())
	for _, r := range globalRules {
		global.Add(r)
	}
	for _, t := range tasks {
		rules := []*hocl.Rule{GwSetup(), GwCall()}
		rules = append(rules, extraTaskRules[t.Name]...)
		global.Add(TaskTuple(t.Name, t.SubSolution(rules...)))
	}
	return global
}

// invokeRecorder registers an invoke() that logs calls and fails the
// services listed in fail.
func invokeRecorder(e *hocl.Engine, fail map[string]bool) map[string]int {
	calls := map[string]int{}
	e.Funcs.Register(FnInvoke, func(args []hocl.Atom) ([]hocl.Atom, error) {
		name := string(args[0].(hocl.Str))
		calls[name]++
		if fail[name] {
			return []hocl.Atom{AtomERROR}, nil
		}
		return []hocl.Atom{hocl.Str("out-" + name)}, nil
	})
	return calls
}

// TestCentralizedDiamond runs the paper's Fig. 3 workflow to completion
// through the generic rules alone.
func TestCentralizedDiamond(t *testing.T) {
	global := buildDiamond(nil)
	e := hocl.NewEngine()
	calls := invokeRecorder(e, nil)
	if err := e.Reduce(global); err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		if calls[s] != 1 {
			t.Errorf("service %s invoked %d times, want 1", s, calls[s])
		}
	}
	t4 := FindTaskSub(global, "T4")
	if t4 == nil {
		t.Fatal("T4 sub-solution missing")
	}
	if got := StatusOf(t4); got != StatusCompleted {
		t.Errorf("T4 status = %v, want completed", got)
	}
	res := Results(t4)
	if len(res) != 1 || !res[0].Equal(hocl.Str("out-s4")) {
		t.Errorf("T4 results = %v", res)
	}
	// T4 must have received both T2's and T3's outputs in its parameters:
	// the PAR list was consumed by gw_call, so check the invocation count
	// and the emptied dependency bookkeeping instead.
	if n := len(PendingSources(t4)); n != 0 {
		t.Errorf("T4 still expects %d sources", n)
	}
	t1 := FindTaskSub(global, "T1")
	if n := len(PendingDestinations(t1)); n != 0 {
		t.Errorf("T1 still has %d destinations to serve", n)
	}
}

// TestCentralizedDiamondFailureWithoutAdaptationStalls checks that an
// ERROR result is not propagated by gw_pass: the workflow stalls rather
// than feeding ERROR downstream (adaptation is the paper's answer).
func TestCentralizedDiamondFailureWithoutAdaptationStalls(t *testing.T) {
	global := buildDiamond(nil)
	e := hocl.NewEngine()
	invokeRecorder(e, map[string]bool{"s2": true})
	if err := e.Reduce(global); err != nil {
		t.Fatal(err)
	}
	t2 := FindTaskSub(global, "T2")
	if got := StatusOf(t2); got != StatusFailed {
		t.Errorf("T2 status = %v, want failed", got)
	}
	t4 := FindTaskSub(global, "T4")
	if got := StatusOf(t4); got == StatusCompleted {
		t.Errorf("T4 must not complete when T2 failed without adaptation")
	}
	if got := PendingSources(t4); len(got) != 1 || got[0] != "T2" {
		t.Errorf("T4 pending sources = %v, want [T2]", got)
	}
}

// TestCentralizedAdaptiveWorkflow reproduces the paper's Figs. 5-8: T2 is
// potentially faulty; on ERROR the alternative T2' is wired in on-the-fly
// (add_dst on T1, mv_src on T4) and the workflow completes without a
// restart.
func TestCentralizedAdaptiveWorkflow(t *testing.T) {
	const aid = "a1"
	extra := map[string][]*hocl.Rule{
		"T1": {AddDstRule(aid, "T1", []string{"T2'"})},
		"T4": {MvSrcRule(aid)},
	}
	global := buildDiamond(extra, CentralTriggerRule(aid, "T2", []string{"T1"}, "T4"))
	// The alternative task T2' (paper Fig. 6, line 6.06), idle until T1
	// resends its result.
	alt := TaskAttrs{Name: "T2'", Src: []string{"T1"}, Dst: []string{"T4"}, Service: "s2alt"}
	global.Add(TaskTuple("T2'", alt.SubSolution(GwSetup(), GwCall())))

	e := hocl.NewEngine()
	calls := invokeRecorder(e, map[string]bool{"s2": true})
	e.Funcs.Register(MvSrcFuncName(aid), MvSrcFunc([]string{"T2"}, []string{"T2'"}))

	if err := e.Reduce(global); err != nil {
		t.Fatal(err)
	}

	if calls["s2"] != 1 || calls["s2alt"] != 1 {
		t.Errorf("faulty s2 called %d (want 1), replacement s2alt called %d (want 1)",
			calls["s2"], calls["s2alt"])
	}
	if calls["s4"] != 1 {
		t.Errorf("s4 called %d times, want 1", calls["s4"])
	}
	t4 := FindTaskSub(global, "T4")
	if got := StatusOf(t4); got != StatusCompleted {
		t.Fatalf("T4 status = %v, want completed (solution: %s)", got, hocl.Pretty(global))
	}
	// The TRIGGER:"a1" marker must be recorded in the global solution.
	if !global.Contains(TriggerMarker(aid)) {
		t.Error("TRIGGER marker missing from global solution")
	}
	// T2's error was consumed by trigger_adapt (paper Fig. 7: T2:<w2>).
	t2 := FindTaskSub(global, "T2")
	if HasError(t2) {
		t.Error("trigger_adapt must clear T2's ERROR")
	}
	// T2' completed and delivered.
	t2p := FindTaskSub(global, "T2'")
	if got := StatusOf(t2p); got != StatusCompleted {
		t.Errorf("T2' status = %v, want completed", got)
	}
	if n := len(PendingDestinations(t2p)); n != 0 {
		t.Errorf("T2' still has %d destinations pending", n)
	}
}

// TestAdaptationNotTriggeredWhenHealthy: the adaptation rules must stay
// dormant when the potentially-faulty service succeeds.
func TestAdaptationNotTriggeredWhenHealthy(t *testing.T) {
	const aid = "a1"
	extra := map[string][]*hocl.Rule{
		"T1": {AddDstRule(aid, "T1", []string{"T2'"})},
		"T4": {MvSrcRule(aid)},
	}
	global := buildDiamond(extra, CentralTriggerRule(aid, "T2", []string{"T1"}, "T4"))
	alt := TaskAttrs{Name: "T2'", Src: []string{"T1"}, Dst: []string{"T4"}, Service: "s2alt"}
	global.Add(TaskTuple("T2'", alt.SubSolution(GwSetup(), GwCall())))

	e := hocl.NewEngine()
	calls := invokeRecorder(e, nil) // nothing fails
	e.Funcs.Register(MvSrcFuncName(aid), MvSrcFunc([]string{"T2"}, []string{"T2'"}))

	if err := e.Reduce(global); err != nil {
		t.Fatal(err)
	}
	if calls["s2alt"] != 0 {
		t.Errorf("replacement service invoked %d times on healthy run", calls["s2alt"])
	}
	if global.Contains(TriggerMarker(aid)) {
		t.Error("TRIGGER marker must not appear on healthy run")
	}
	if got := StatusOf(FindTaskSub(global, "T4")); got != StatusCompleted {
		t.Errorf("T4 status = %v, want completed", got)
	}
}

// TestGwSendCallsSendPerDestination checks the decentralised sender rule:
// one send per destination, the result retained, ERROR never sent.
func TestGwSendCallsSendPerDestination(t *testing.T) {
	e := hocl.NewEngine()
	var sent []string
	e.Funcs.Register(FnSend, func(args []hocl.Atom) ([]hocl.Atom, error) {
		dest := string(args[0].(hocl.Ident))
		payload := hocl.FormatMolecules(args[1:])
		sent = append(sent, fmt.Sprintf("%s<-%s", dest, payload))
		return nil, nil
	})

	local := hocl.NewSolution(
		hocl.Tuple{KeyRES, hocl.NewSolution(hocl.Str("r"))},
		hocl.Tuple{KeyDST, hocl.NewSolution(hocl.Ident("T4"), hocl.Ident("T5"))},
		GwSend(),
	)
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 2 {
		t.Fatalf("sent %v, want 2 sends", sent)
	}
	if got := PendingDestinations(local); len(got) != 0 {
		t.Errorf("DST not drained: %v", got)
	}
	res := Results(local)
	if len(res) != 1 || !res[0].Equal(hocl.Str("r")) {
		t.Errorf("result must be retained: %v", res)
	}
}

func TestGwSendDoesNotSendError(t *testing.T) {
	e := hocl.NewEngine()
	sends := 0
	e.Funcs.Register(FnSend, func(args []hocl.Atom) ([]hocl.Atom, error) {
		sends++
		return nil, nil
	})
	local := hocl.NewSolution(
		hocl.Tuple{KeyRES, hocl.NewSolution(AtomERROR)},
		hocl.Tuple{KeyDST, hocl.NewSolution(hocl.Ident("T4"))},
		GwSend(),
	)
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	if sends != 0 {
		t.Errorf("ERROR result was sent %d times", sends)
	}
}

func TestGwSendWaitsForResult(t *testing.T) {
	e := hocl.NewEngine()
	sends := 0
	e.Funcs.Register(FnSend, func(args []hocl.Atom) ([]hocl.Atom, error) {
		sends++
		return nil, nil
	})
	local := hocl.NewSolution(
		hocl.Tuple{KeyRES, hocl.NewSolution()}, // empty: not yet produced
		hocl.Tuple{KeyDST, hocl.NewSolution(hocl.Ident("T4"))},
		GwSend(),
	)
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	if sends != 0 {
		t.Errorf("gw_send fired on empty RES (%d sends)", sends)
	}
	if got := PendingDestinations(local); len(got) != 1 {
		t.Errorf("DST must be untouched: %v", got)
	}
}

// TestGwRecvConsumesPassAndDependency checks the decentralised receiver
// rule, including duplicate-message suppression after recovery (§IV-B).
func TestGwRecvConsumesPassAndDependency(t *testing.T) {
	attrs := TaskAttrs{Name: "T4", Src: []string{"T2", "T3"}, Service: "s4"}
	local := attrs.LocalSolution(GwRecv())
	e := hocl.NewEngine()
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}

	// First result from T2.
	local.Add(PassMessage("T2", []hocl.Atom{hocl.Str("r2")}))
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	if got := PendingSources(local); len(got) != 1 || got[0] != "T3" {
		t.Fatalf("pending sources after T2 delivery: %v", got)
	}

	// Duplicate from T2 (recovered agent re-sent): must be ignored — the
	// dependency is already consumed.
	local.Add(PassMessage("T2", []hocl.Atom{hocl.Str("r2-dup")}))
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	in, _ := local.FindTuple(KeyIN)
	inSol := in[1].(*hocl.Solution)
	if inSol.Contains(hocl.Str("r2-dup")) {
		t.Errorf("duplicate result was accepted: %v", inSol)
	}
	if inSol.Count(hocl.Str("r2")) != 1 {
		t.Errorf("IN = %v, want exactly one r2", inSol)
	}

	// A message from an unknown sender also parks harmlessly.
	local.Add(PassMessage("T9", []hocl.Atom{hocl.Str("stray")}))
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	if inSol2, _ := local.FindTuple(KeyIN); inSol2[1].(*hocl.Solution).Contains(hocl.Str("stray")) {
		t.Error("stray message was accepted into IN")
	}
}

// TestDecentralisedAgentPipeline chains two agent-local solutions through
// gw_send/gw_recv by hand, verifying the full decentralised data path
// that the agent package automates.
func TestDecentralisedAgentPipeline(t *testing.T) {
	producer := TaskAttrs{Name: "T1", Dst: []string{"T2"}, Service: "s1",
		In: []hocl.Atom{hocl.Str("input")}}.LocalSolution(GwSetup(), GwCall(), GwSend(), GwRecv())
	consumer := TaskAttrs{Name: "T2", Src: []string{"T1"}, Service: "s2"}.
		LocalSolution(GwSetup(), GwCall(), GwSend(), GwRecv())

	// Each agent has its own engine and function bindings (§IV-A).
	mailbox := map[string][]hocl.Atom{}
	newEngine := func(self string) *hocl.Engine {
		e := hocl.NewEngine()
		e.Funcs.Register(FnInvoke, func(args []hocl.Atom) ([]hocl.Atom, error) {
			return []hocl.Atom{hocl.Str("out-" + string(args[0].(hocl.Str)))}, nil
		})
		e.Funcs.Register(FnSend, func(args []hocl.Atom) ([]hocl.Atom, error) {
			dest := string(args[0].(hocl.Ident))
			mailbox[dest] = append(mailbox[dest], PassMessage(self, args[1:]))
			return nil, nil
		})
		return e
	}

	if err := newEngine("T1").Reduce(producer); err != nil {
		t.Fatal(err)
	}
	msgs := mailbox["T2"]
	if len(msgs) != 1 {
		t.Fatalf("T2 mailbox: %v", msgs)
	}
	consumer.Add(msgs...)
	if err := newEngine("T2").Reduce(consumer); err != nil {
		t.Fatal(err)
	}
	if got := StatusOf(consumer); got != StatusCompleted {
		t.Fatalf("consumer status = %v (solution %s)", got, consumer)
	}
	res := Results(consumer)
	if len(res) != 1 || !res[0].Equal(hocl.Str("out-s2")) {
		t.Errorf("consumer results = %v", res)
	}
}

// TestLocalTriggerRule checks the decentralised trigger: ERROR in RES
// calls the agent-bound trigger function and clears the error.
func TestLocalTriggerRule(t *testing.T) {
	local := hocl.NewSolution(
		hocl.Tuple{KeyRES, hocl.NewSolution(AtomERROR)},
		LocalTriggerRule("a1", "T2"),
	)
	e := hocl.NewEngine()
	fired := 0
	e.Funcs.Register(TriggerFuncName("a1"), func(args []hocl.Atom) ([]hocl.Atom, error) {
		fired++
		return nil, nil
	})
	if err := e.Reduce(local); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("trigger fired %d times, want 1", fired)
	}
	if HasError(local) {
		t.Error("ERROR must be cleared after trigger")
	}
}

func TestMvSrcFunc(t *testing.T) {
	fn := MvSrcFunc([]string{"T2", "T9"}, []string{"R1", "R2"})
	out, err := fn([]hocl.Atom{hocl.Ident("T2"), hocl.Ident("T3"), hocl.Ident("R1")})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, a := range out {
		got[string(a.(hocl.Ident))] = true
	}
	if !got["T3"] || !got["R1"] || !got["R2"] || got["T2"] {
		t.Errorf("mv_src output: %v", out)
	}
	if len(out) != 3 {
		t.Errorf("mv_src output has duplicates: %v", out)
	}
	if _, err := fn([]hocl.Atom{hocl.Str("notatask")}); err == nil {
		t.Error("non-ident source must error")
	}
}

func TestStatusHelpers(t *testing.T) {
	idle := TaskAttrs{Name: "T2", Src: []string{"T1"}, Service: "s"}.SubSolution()
	if got := StatusOf(idle); got != StatusIdle {
		t.Errorf("status = %v, want idle", got)
	}
	ready := TaskAttrs{Name: "T1", Service: "s"}.SubSolution()
	if got := StatusOf(ready); got != StatusReady {
		t.Errorf("status = %v, want ready", got)
	}
	done := TaskAttrs{Name: "T1", Service: "s"}.SubSolution()
	res, _ := done.FindTuple(KeyRES)
	res[1].(*hocl.Solution).Add(hocl.Str("out"))
	if got := StatusOf(done); got != StatusCompleted {
		t.Errorf("status = %v, want completed", got)
	}
	failed := TaskAttrs{Name: "T1", Service: "s"}.SubSolution()
	res2, _ := failed.FindTuple(KeyRES)
	res2[1].(*hocl.Solution).Add(AtomERROR)
	if got := StatusOf(failed); got != StatusFailed {
		t.Errorf("status = %v, want failed", got)
	}
	for s, want := range map[Status]string{
		StatusIdle: "idle", StatusReady: "ready",
		StatusCompleted: "completed", StatusFailed: "failed", Status(42): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q", s, s.String())
		}
	}
}

func TestTaskNameValidation(t *testing.T) {
	valid := []string{"T1", "T2'", "MPROJECT_1", "A", "Zz9_'"}
	invalid := []string{"", "t1", "1T", "T 1", "T-1", "_T", "'T"}
	for _, n := range valid {
		if !ValidTaskName(n) {
			t.Errorf("ValidTaskName(%q) = false", n)
		}
	}
	for _, n := range invalid {
		if ValidTaskName(n) {
			t.Errorf("ValidTaskName(%q) = true", n)
		}
	}
}

func TestSanitizeID(t *testing.T) {
	cases := map[string]string{
		"a1":      "a1",
		"A-1 x":   "a_1_x",
		"":        "a",
		"Adapt#2": "adapt_2",
	}
	for in, want := range cases {
		if got := SanitizeID(in); got != want {
			t.Errorf("SanitizeID(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLocalSolutionHasName(t *testing.T) {
	local := TaskAttrs{Name: "T7", Service: "s"}.LocalSolution()
	if got := TaskName(local); got != "T7" {
		t.Errorf("TaskName = %q", got)
	}
	sub := TaskAttrs{Name: "T7", Service: "s"}.SubSolution()
	if got := TaskName(sub); got != "" {
		t.Errorf("SubSolution must not carry NAME, got %q", got)
	}
}
