package hoclflow

import (
	"ginflow/internal/hocl"
)

// This file carries the two headers of the exactly-once hardening
// (DESIGN.md "Fault model & chaos harness"):
//
//   - SEQ:origin:n prefixes every direct agent-to-agent message. The
//     receiver remembers each ingested (origin, n, payload fingerprint)
//     triple and suppresses repeats, so a duplicated or redelivered
//     message is applied exactly once even though transport is merely
//     at-least-once.
//   - VER:task:incarnation:push prefixes every status push to the
//     space. The space records each task's highest (incarnation, push)
//     pair and drops payloads that do not advance it, so a delayed or
//     redelivered status push can never roll a task's recorded state
//     back.

// SeqMarker builds the SEQ:origin:n sequence header an agent prefixes
// to its n-th message toward one destination.
func SeqMarker(origin string, n int64) hocl.Atom {
	return hocl.Tuple{KeySEQ, hocl.Ident(origin), hocl.Int(n)}
}

// DecodeSeq reports whether a is a SEQ header and, if so, returns its
// origin task and sequence number.
func DecodeSeq(a hocl.Atom) (origin string, n int64, ok bool) {
	tp, isTuple := a.(hocl.Tuple)
	if !isTuple || len(tp) != 3 || !tp[0].Equal(KeySEQ) {
		return "", 0, false
	}
	name, okName := tp[1].(hocl.Ident)
	num, okNum := tp[2].(hocl.Int)
	if !okName || !okNum {
		return "", 0, false
	}
	return string(name), int64(num), true
}

// VersionMarker builds the VER:task:incarnation:push header the status
// encoder prefixes to each space payload.
func VersionMarker(task string, incarnation, push int64) hocl.Atom {
	return hocl.Tuple{KeyVER, hocl.Ident(task), hocl.Int(incarnation), hocl.Int(push)}
}

// DecodeVersion reports whether a is a VER header and, if so, returns
// the task, its agent incarnation, and the push counter within that
// incarnation.
func DecodeVersion(a hocl.Atom) (task string, incarnation, push int64, ok bool) {
	tp, isTuple := a.(hocl.Tuple)
	if !isTuple || len(tp) != 4 || !tp[0].Equal(KeyVER) {
		return "", 0, 0, false
	}
	name, okName := tp[1].(hocl.Ident)
	inc, okInc := tp[2].(hocl.Int)
	push2, okPush := tp[3].(hocl.Int)
	if !okName || !okInc || !okPush {
		return "", 0, 0, false
	}
	return string(name), int64(inc), int64(push2), true
}
