package hoclflow

import (
	"ginflow/internal/hocl"
)

// This file implements the delta-encoded status-push protocol (DESIGN.md
// "Broker internals"). An agent's status push is the stripped top-level
// multiset of its local solution; between two pushes most of those atoms
// are unchanged, so instead of re-shipping the whole sub-solution the
// agent ships only the multiset difference:
//
//   - removed atoms travel as their hocl.AtomHash values (the space
//     already holds the atoms; a hash identifies which to drop);
//   - added atoms travel by value (frozen snapshots, shared by
//     reference on the in-process broker);
//   - the delta is anchored by the fingerprint of the state it applies
//     to (Base) and the fingerprint it must produce (Next), so a
//     receiver can detect and refuse a delta it cannot apply.
//
// The first push of an agent incarnation is always a full snapshot (the
// classic Name:<...> tuple), which is also the fallback whenever a delta
// would not be smaller than the snapshot. Per-topic FIFO delivery makes
// the full→delta→delta chain apply cleanly in normal operation; a
// receiver that cannot apply a delta (unknown task, base mismatch) keeps
// its last good state and counts the fallback.

// KeySTATDELTA marks a delta-encoded status push on the space topic:
// STATDELTA : Name : base : next : [removedHash, ...] : [added, ...] : inert.
const KeySTATDELTA = hocl.Ident("STATDELTA")

// statDeltaLen is the arity of the STATDELTA wire tuple.
const statDeltaLen = 7

// StatusDelta is one decoded delta-encoded status push.
type StatusDelta struct {
	// Task names the task whose recorded sub-solution the delta updates.
	Task string
	// Base is the fingerprint (hocl.Fingerprint over the top-level
	// multiset) of the state the delta applies to; Next is the
	// fingerprint of the state it produces.
	Base, Next uint64
	// RemovedHashes identifies the atoms to drop by their hocl.AtomHash,
	// with multiplicity.
	RemovedHashes []uint64
	// Added holds the atoms to add, frozen by the publish contract.
	Added []hocl.Atom
	// Inert carries the local solution's inertness flag, mirroring what
	// a full snapshot records via Solution.SetInert.
	Inert bool
}

// Atom renders the delta in its wire form.
func (d *StatusDelta) Atom() hocl.Atom {
	removed := make(hocl.List, len(d.RemovedHashes))
	for i, h := range d.RemovedHashes {
		removed[i] = hocl.Int(int64(h))
	}
	return hocl.Tuple{
		KeySTATDELTA,
		hocl.Ident(d.Task),
		hocl.Int(int64(d.Base)),
		hocl.Int(int64(d.Next)),
		removed,
		hocl.List(d.Added),
		hocl.Bool(d.Inert),
	}
}

// DecodeStatusDelta reports whether a is a STATDELTA wire tuple and, if
// so, decodes it. The returned Added atoms are shared with the wire
// payload and must not be mutated.
func DecodeStatusDelta(a hocl.Atom) (StatusDelta, bool) {
	tp, ok := a.(hocl.Tuple)
	if !ok || len(tp) != statDeltaLen || !tp[0].Equal(KeySTATDELTA) {
		return StatusDelta{}, false
	}
	name, ok := tp[1].(hocl.Ident)
	if !ok {
		return StatusDelta{}, false
	}
	base, ok := tp[2].(hocl.Int)
	if !ok {
		return StatusDelta{}, false
	}
	next, ok := tp[3].(hocl.Int)
	if !ok {
		return StatusDelta{}, false
	}
	removedList, ok := tp[4].(hocl.List)
	if !ok {
		return StatusDelta{}, false
	}
	added, ok := tp[5].(hocl.List)
	if !ok {
		return StatusDelta{}, false
	}
	inert, ok := tp[6].(hocl.Bool)
	if !ok {
		return StatusDelta{}, false
	}
	d := StatusDelta{
		Task:  string(name),
		Base:  uint64(int64(base)),
		Next:  uint64(int64(next)),
		Added: []hocl.Atom(added),
		Inert: bool(inert),
	}
	if len(removedList) > 0 {
		d.RemovedHashes = make([]uint64, len(removedList))
		for i, r := range removedList {
			h, ok := r.(hocl.Int)
			if !ok {
				return StatusDelta{}, false
			}
			d.RemovedHashes[i] = uint64(int64(h))
		}
	}
	return d, true
}

// StatusEncoder produces the status-push payload stream of one task: a
// full snapshot on first use, multiset deltas afterwards, and a full
// snapshot again whenever the delta would not be smaller. Unchanged
// states are deduplicated by fingerprint (Encode returns nil). The
// encoder is the single writer of its task's status on the space topic;
// it is not safe for concurrent use.
type StatusEncoder struct {
	// Task names the task whose status this encoder publishes.
	Task string
	// Incarnation is the publishing agent's incarnation, stamped into
	// every payload's VER header so the space can order pushes across a
	// respawn.
	Incarnation int

	pushed bool
	fp     uint64
	hashes []uint64 // per-atom hashes of the last pushed state

	// push counts emitted payloads within this incarnation. It is
	// monotone across Reset — a resync re-push must still outrank the
	// pushes before it, or the space would drop it as stale.
	push int64

	cur    []uint64       // scratch: hashes of the current state
	counts map[uint64]int // scratch: multiset diff working set
}

// Encode returns the wire payload for the task's current stripped status
// atoms — a VER header followed by either the full Name:<...> snapshot
// tuple or a STATDELTA tuple — or nil when the state is unchanged since
// the last push. Atoms shipped in the payload are snapshotted (frozen);
// the caller keeps ownership of the input slice.
func (e *StatusEncoder) Encode(atoms []hocl.Atom, inert bool) []hocl.Atom {
	cur := e.cur[:0]
	var m hocl.MultisetHash
	for _, a := range atoms {
		h := hocl.AtomHash(a)
		cur = append(cur, h)
		m.Add(h)
	}
	e.cur = cur
	fp := m.Fingerprint()
	if e.pushed && fp == e.fp {
		return nil
	}
	if !e.pushed {
		return e.full(atoms, cur, fp, inert)
	}

	// Multiset diff against the last pushed state: counts carries the
	// previous multiplicity per hash; atoms not matched by it are added,
	// leftovers are removed.
	if e.counts == nil {
		e.counts = make(map[uint64]int, len(e.hashes))
	}
	counts := e.counts
	clear(counts)
	for _, h := range e.hashes {
		counts[h]++
	}
	var added []hocl.Atom
	for i, h := range cur {
		if counts[h] > 0 {
			counts[h]--
			continue
		}
		added = append(added, hocl.Snapshot(atoms[i]))
	}
	var removed []uint64
	for _, h := range e.hashes {
		if counts[h] > 0 {
			counts[h]--
			removed = append(removed, h)
		}
	}
	if len(added)+len(removed) >= len(atoms) {
		return e.full(atoms, cur, fp, inert)
	}
	d := StatusDelta{
		Task: e.Task, Base: e.fp, Next: fp,
		RemovedHashes: removed, Added: added, Inert: inert,
	}
	e.remember(cur, fp)
	return e.payload(d.Atom())
}

// full builds the classic full-snapshot payload and records the state.
func (e *StatusEncoder) full(atoms []hocl.Atom, cur []uint64, fp uint64, inert bool) []hocl.Atom {
	sub := hocl.NewSolution(hocl.SnapshotAtoms(atoms)...)
	sub.SetInert(inert)
	e.remember(cur, fp)
	return e.payload(hocl.Tuple{hocl.Ident(e.Task), sub})
}

// payload stamps the next VER header ahead of the status body.
func (e *StatusEncoder) payload(body hocl.Atom) []hocl.Atom {
	e.push++
	return []hocl.Atom{VersionMarker(e.Task, int64(e.Incarnation), e.push), body}
}

func (e *StatusEncoder) remember(cur []uint64, fp uint64) {
	// Swap the hash buffers instead of copying: cur becomes the recorded
	// state, the old record becomes the next scratch.
	e.hashes, e.cur = cur, e.hashes
	e.fp = fp
	e.pushed = true
}

// Reset forgets the recorded state: the next Encode emits a full
// snapshot, as a fresh agent incarnation must. The push counter is NOT
// reset — it stays monotone within the incarnation, so the re-push
// after a resync outranks everything emitted before it.
func (e *StatusEncoder) Reset() {
	e.pushed = false
	e.fp = 0
	e.hashes = e.hashes[:0]
}
