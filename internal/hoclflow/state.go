package hoclflow

import (
	"ginflow/internal/hocl"
)

// Status is the observable execution state of a task, derived from its
// (sub-)solution. It mirrors the paper's Fig. 1 agent states.
type Status int

const (
	// StatusIdle: dependencies outstanding, service not yet invoked.
	StatusIdle Status = iota
	// StatusReady: dependencies satisfied but the service has not
	// produced a result yet (transient: gw_setup fired, gw_call pending).
	StatusReady
	// StatusCompleted: the service produced a non-error result.
	StatusCompleted
	// StatusFailed: the service produced ERROR (adaptation may clear it).
	StatusFailed
)

var statusNames = [...]string{
	StatusIdle:      "idle",
	StatusReady:     "ready",
	StatusCompleted: "completed",
	StatusFailed:    "failed",
}

func (s Status) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return "unknown"
}

// StatusOf derives the task status from its sub-solution.
func StatusOf(sol *hocl.Solution) Status {
	res := Results(sol)
	switch {
	case containsError(res):
		return StatusFailed
	case len(res) > 0:
		return StatusCompleted
	}
	if src, idx := sol.FindTuple(KeySRC); idx >= 0 {
		if s, ok := src[1].(*hocl.Solution); ok && s.Len() == 0 {
			return StatusReady
		}
	}
	return StatusIdle
}

// Results returns the atoms currently held in the task's RES solution
// (nil when RES is absent or empty).
func Results(sol *hocl.Solution) []hocl.Atom {
	res, idx := sol.FindTuple(KeyRES)
	if idx < 0 || len(res) != 2 {
		return nil
	}
	rs, ok := res[1].(*hocl.Solution)
	if !ok {
		return nil
	}
	return rs.Atoms()
}

// HasError reports whether the task's RES holds the ERROR marker.
func HasError(sol *hocl.Solution) bool { return containsError(Results(sol)) }

func containsError(atoms []hocl.Atom) bool {
	for _, a := range atoms {
		if a.Equal(AtomERROR) {
			return true
		}
	}
	return false
}

// PendingSources returns the task names still expected in SRC.
func PendingSources(sol *hocl.Solution) []string {
	return identNames(sol, KeySRC)
}

// PendingDestinations returns the task names still to be served in DST.
func PendingDestinations(sol *hocl.Solution) []string {
	return identNames(sol, KeyDST)
}

func identNames(sol *hocl.Solution, key hocl.Ident) []string {
	tp, idx := sol.FindTuple(key)
	if idx < 0 || len(tp) != 2 {
		return nil
	}
	inner, ok := tp[1].(*hocl.Solution)
	if !ok {
		return nil
	}
	var names []string
	for _, a := range inner.Atoms() {
		if id, ok := a.(hocl.Ident); ok {
			names = append(names, string(id))
		}
	}
	return names
}

// TaskName returns the NAME of an agent-local solution ("" when absent).
func TaskName(sol *hocl.Solution) string {
	tp, idx := sol.FindTuple(KeyNAME)
	if idx < 0 || len(tp) != 2 {
		return ""
	}
	if id, ok := tp[1].(hocl.Ident); ok {
		return string(id)
	}
	return ""
}

// FindTaskSub locates a task's sub-solution inside a centralized global
// multiset (an element Name:<...>).
func FindTaskSub(global *hocl.Solution, name string) *hocl.Solution {
	for _, a := range global.Atoms() {
		tp, ok := a.(hocl.Tuple)
		if !ok || len(tp) != 2 {
			continue
		}
		if !tp[0].Equal(hocl.Ident(name)) {
			continue
		}
		if sub, ok := tp[1].(*hocl.Solution); ok {
			return sub
		}
	}
	return nil
}
