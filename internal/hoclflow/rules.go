package hoclflow

import (
	"fmt"
	"strings"

	"ginflow/internal/hocl"
)

// GwSetup returns the paper's gw_setup rule (Fig. 4, lines 4.01-4.03):
// once every dependency is satisfied (SRC is empty), assemble the
// parameter list from the accumulated inputs.
//
//	replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w)
func GwSetup() *hocl.Rule {
	return hocl.MustParseRuleBody(RuleGwSetup,
		`replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w)`, nil)
}

// GwCall returns the paper's gw_call rule (Fig. 4, lines 4.04-4.06):
// invoke the service with the assembled parameters and store the result.
// invoke is an external function bound by the executor/agent; it returns
// the ERROR atom on service failure.
//
//	replace-one SRC:<>, SRV:s, PAR:p, RES:<*w>
//	by SRC:<>, SRV:s, RES:<invoke(s, p), *w>
func GwCall() *hocl.Rule {
	return hocl.MustParseRuleBody(RuleGwCall,
		`replace-one SRC:<>, SRV:s, PAR:p, RES:<*w> by SRC:<>, SRV:s, RES:<invoke(s, p), *w>`, nil)
}

// GwPass returns the paper's gw_pass rule (Fig. 4, lines 4.07-4.11) for
// centralized execution: it moves a produced result from a source task's
// RES to a destination task's IN across sub-solutions, retiring the
// satisfied dependency on both sides. ERROR results are not propagated —
// they are reserved for the adaptation machinery (§III-C).
//
//	replace ti:<RES:<r, *res>, DST:<tj, *dst>, *oi>,
//	        tj:<SRC:<ti, *src>, IN:<*win>, *oj>
//	by      ti:<RES:<r, *res>, DST:<*dst>, *oi>,
//	        tj:<SRC:<*src>, IN:<r, *res, *win>, *oj>
//	if !(r == ERROR)
func GwPass() *hocl.Rule {
	return hocl.MustParseRuleBody(RuleGwPass,
		`replace ti:<RES:<r, *res>, DST:<tj, *dst>, *oi>, tj:<SRC:<ti, *src>, IN:<*win>, *oj>
		 by ti:<RES:<r, *res>, DST:<*dst>, *oi>, tj:<SRC:<*src>, IN:<r, *res, *win>, *oj>
		 if !(r == ERROR)`, nil)
}

// GwSend returns the decentralised sender half of gw_pass (§IV-A): "once
// the result of the invocation ... is collected, a SA triggers a local
// version of the gw_pass rule which calls a function that sends a message
// directly to the destination SA". send is an agent-bound external
// function; it transmits the result molecules to destination d and
// produces nothing locally.
//
//	replace RES:<r, *res>, DST:<d, *dst>
//	by RES:<r, *res>, DST:<*dst>, send(d, r, *res)
//	if !(r == ERROR)
func GwSend() *hocl.Rule {
	return hocl.MustParseRuleBody(RuleGwSend,
		`replace RES:<r, *res>, DST:<d, *dst> by RES:<r, *res>, DST:<*dst>, send(d, r, *res) if !(r == ERROR)`, nil)
}

// GwRecv returns the decentralised receiver half of gw_pass: a PASS
// message from source t satisfies the matching dependency and feeds the
// carried result into IN. Duplicate PASS messages (possible after a
// recovery replay, §IV-B) do not match once the dependency is consumed,
// which is exactly the paper's "successors take into account only the
// first result received".
//
//	replace PASS:t:<*res>, SRC:<t, *src>, IN:<*win>
//	by SRC:<*src>, IN:<*res, *win>
func GwRecv() *hocl.Rule {
	return hocl.MustParseRuleBody(RuleGwRecv,
		`replace PASS:t:<*res>, SRC:<t, *src>, IN:<*win> by SRC:<*src>, IN:<*res, *win>`, nil)
}

// GwGc returns the stale-PASS collector: once a task has invoked its
// service (RES holds a result, so no further input can ever be
// consumed), any PASS still in the local solution is garbage. Such
// leftovers arise from at-least-once transport (a redelivered PASS
// whose dependency gw_recv already retired) and from adaptation races
// (a faulty final's PASS landing after mv_src rewired SRC away from
// it). Collecting them keeps the converged solution — and therefore the
// space fingerprint — independent of delivery timing. The RES guard is
// what makes collection safe: before the invocation, an early PASS from
// a replacement final must survive until mv_src wires its sender into
// SRC.
//
//	replace PASS:t:<*res>, SRC:<>, RES:<r, *rest>
//	by SRC:<>, RES:<r, *rest>
func GwGc() *hocl.Rule {
	return hocl.MustParseRuleBody(RuleGwGc,
		`replace PASS:t:<*res>, SRC:<>, RES:<r, *rest> by SRC:<>, RES:<r, *rest>`, nil)
}

// PassMessage builds the molecule carried by a result transfer from task
// src: PASS:src:<res...>. The carried solution is marked inert at build
// time: the results come out of the sender's already-reduced RES solution
// (gw_send only matches an inert RES), so the receiving engine can match
// gw_recv immediately instead of first reducing the payload — and, on the
// structural message path, the shared payload is never written to.
func PassMessage(src string, res []hocl.Atom) hocl.Atom {
	sol := hocl.NewSolution(res...)
	sol.SetInert(true)
	return hocl.Tuple{KeyPASS, hocl.Ident(src), sol}
}

// AdaptMarker builds the ADAPT:"id" molecule that enables an adaptation's
// add_dst/mv_src rules (paper Fig. 7: "the presence of ADAPT is
// mandatory to apply these adaptation rules").
func AdaptMarker(id string) hocl.Atom {
	return hocl.Tuple{KeyADAPT, hocl.Str(id)}
}

// TriggerMarker builds the TRIGGER:"id" status molecule recording that an
// adaptation fired.
func TriggerMarker(id string) hocl.Atom {
	return hocl.Tuple{KeyTRIGGER, hocl.Str(id)}
}

// ResyncMarker builds the RESYNC:Task control molecule a space sends to
// an agent's inbox when a delta-encoded status push failed to anchor
// (fingerprint mismatch): the agent must answer with a full snapshot
// push instead of staying stale until its next natural full push. The
// marker is a control message — agents consume it without adding it to
// their local solution.
func ResyncMarker(task string) hocl.Atom {
	return hocl.Tuple{KeyRESYNC, hocl.Ident(task)}
}

// DecodeResync reports whether a is a RESYNC control marker and, if so,
// the task it addresses.
func DecodeResync(a hocl.Atom) (string, bool) {
	tp, ok := a.(hocl.Tuple)
	if !ok || len(tp) != 2 || !tp[0].Equal(KeyRESYNC) {
		return "", false
	}
	name, ok := tp[1].(hocl.Ident)
	if !ok {
		return "", false
	}
	return string(name), true
}

// AddDstRule generates the add_dst rule for a source task of a replaced
// sub-workflow (paper Fig. 7, lines 7.01-7.03): when the adaptation
// marker arrives, new destinations are appended, which re-enables
// gw_send/gw_pass for the already-produced result ("T1 needs to resend
// its result to the new destination T2'").
//
//	replace-one ADAPT:"id", DST:<*dst> by DST:<*dst, N1, ..., Nk>
func AddDstRule(id, sourceTask string, newDsts []string) *hocl.Rule {
	body := fmt.Sprintf(`replace-one ADAPT:%q, DST:<*dst> by DST:<*dst, %s>`,
		id, strings.Join(newDsts, ", "))
	return hocl.MustParseRuleBody(AddDstRuleName(id, sourceTask), body, nil)
}

// MvSrcRule generates the mv_src rule for the destination of a replaced
// sub-workflow (paper Fig. 7, lines 7.04-7.06): on adaptation, the
// expected sources are rewritten (faulty sources out, replacement sources
// in) and IN is emptied, discarding "results that will not be relevant
// after reconfiguration". The source-set rewrite is delegated to the
// external function named MvSrcFuncName(id) — see the package comment for
// why this is a function rather than a pure pattern.
//
//	replace-one ADAPT:"id", SRC:<*src>, IN:<*win> by SRC:<fn(*src)>, IN:<>
func MvSrcRule(id string) *hocl.Rule {
	body := fmt.Sprintf(`replace-one ADAPT:%q, SRC:<*src>, IN:<*win> by SRC:<%s(*src)>, IN:<>`,
		id, MvSrcFuncName(id))
	return hocl.MustParseRuleBody(MvSrcRuleName(id), body, nil)
}

// MvSrcFunc builds the source-set rewrite function registered under
// MvSrcFuncName(id): it removes the faulty sources and adds the
// replacement sources (deduplicated, idempotent).
func MvSrcFunc(removeSrcs, addSrcs []string) hocl.Func {
	remove := make(map[hocl.Ident]bool, len(removeSrcs))
	for _, r := range removeSrcs {
		remove[hocl.Ident(r)] = true
	}
	return func(args []hocl.Atom) ([]hocl.Atom, error) {
		var out []hocl.Atom
		seen := map[hocl.Ident]bool{}
		for _, a := range args {
			id, ok := a.(hocl.Ident)
			if !ok {
				return nil, fmt.Errorf("mv_src: source %v is not a task name", a)
			}
			if remove[id] || seen[id] {
				continue
			}
			seen[id] = true
			out = append(out, id)
		}
		for _, add := range addSrcs {
			id := hocl.Ident(add)
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out, nil
	}
}

// LocalTriggerRule generates the decentralised trigger_adapt rule placed
// in a potentially-faulty task's agent (§IV-A): on ERROR, clear RES and
// call the agent-bound trigger function, which messages ADAPT:"id" to the
// affected agents and TRIGGER:"id" to the shared space.
//
//	replace-one RES:<ERROR, *w> by RES:<>, adapt_trigger_id()
func LocalTriggerRule(id, faultyTask string) *hocl.Rule {
	body := fmt.Sprintf(`replace-one RES:<ERROR, *w> by RES:<>, %s()`, TriggerFuncName(id))
	return hocl.MustParseRuleBody(TriggerRuleName(id, faultyTask), body, nil)
}

// CentralTriggerRule generates the centralized trigger_adapt rule (paper
// Fig. 7, lines 7.07-7.09) for one potentially-faulty task: it matches
// the ERROR in the faulty task's sub-solution and injects the ADAPT
// marker into every source and the destination, plus a TRIGGER status
// marker in the global solution.
//
//	replace-one F:<RES:<ERROR, *wr>, *wf>, S1:<*w1>, ..., D:<*wd>
//	by F:<RES:<>, *wf>, S1:<ADAPT:"id", *w1>, ..., D:<ADAPT:"id", *wd>, TRIGGER:"id"
func CentralTriggerRule(id, faultyTask string, sources []string, dest string) *hocl.Rule {
	var pat, prod []string
	pat = append(pat, fmt.Sprintf(`%s:<RES:<ERROR, *wr>, *wf>`, faultyTask))
	prod = append(prod, fmt.Sprintf(`%s:<RES:<>, *wf>`, faultyTask))
	for i, s := range sources {
		pat = append(pat, fmt.Sprintf(`%s:<*ws%d>`, s, i))
		prod = append(prod, fmt.Sprintf(`%s:<ADAPT:%q, *ws%d>`, s, id, i))
	}
	pat = append(pat, fmt.Sprintf(`%s:<*wd>`, dest))
	prod = append(prod, fmt.Sprintf(`%s:<ADAPT:%q, *wd>`, dest, id))
	prod = append(prod, fmt.Sprintf(`TRIGGER:%q`, id))
	body := "replace-one " + strings.Join(pat, ", ") + " by " + strings.Join(prod, ", ")
	return hocl.MustParseRuleBody(TriggerRuleName(id, faultyTask), body, nil)
}

// TaskAttrs describes one task's workflow attributes, the four atoms of
// Fig. 3 plus initial inputs.
type TaskAttrs struct {
	Name    string      // task identity (must satisfy ValidTaskName)
	Src     []string    // upstream dependencies
	Dst     []string    // downstream dependencies
	Service string      // service name for SRV
	In      []hocl.Atom // initial inputs (paper footnote 4)
}

// SubSolution builds the task's sub-solution for the centralized global
// multiset (Fig. 3): SRC:<...>, DST:<...>, SRV:"s", IN:<...>, RES:<>,
// plus the given rules (generic and adaptation).
func (t TaskAttrs) SubSolution(rules ...*hocl.Rule) *hocl.Solution {
	atoms := t.attrAtoms()
	for _, r := range rules {
		atoms = append(atoms, r)
	}
	return hocl.NewSolution(atoms...)
}

// LocalSolution builds the task's agent-local solution (§IV-A): the same
// attributes plus a NAME atom identifying the agent.
func (t TaskAttrs) LocalSolution(rules ...*hocl.Rule) *hocl.Solution {
	atoms := append([]hocl.Atom{hocl.Tuple{KeyNAME, hocl.Ident(t.Name)}}, t.attrAtoms()...)
	for _, r := range rules {
		atoms = append(atoms, r)
	}
	return hocl.NewSolution(atoms...)
}

func (t TaskAttrs) attrAtoms() []hocl.Atom {
	in := make([]hocl.Atom, len(t.In))
	for i, a := range t.In {
		in[i] = a.Clone()
	}
	return []hocl.Atom{
		hocl.Tuple{KeySRC, identSolution(t.Src)},
		hocl.Tuple{KeyDST, identSolution(t.Dst)},
		hocl.Tuple{KeySRV, hocl.Str(t.Service)},
		hocl.Tuple{KeyIN, hocl.NewSolution(in...)},
		hocl.Tuple{KeyRES, hocl.NewSolution()},
	}
}

// TaskTuple wraps a task sub-solution under its name for the global
// multiset: Name:<...>.
func TaskTuple(name string, sub *hocl.Solution) hocl.Atom {
	return hocl.Tuple{hocl.Ident(name), sub}
}
