// Package hoclflow implements HOCLflow, the workflow-specific dialect of
// HOCL used by GinFlow (paper §III). It defines the reserved workflow
// atoms (SRC, DST, SRV, IN, PAR, RES, ERROR, ADAPT, TRIGGER, ...), builds
// task sub-solutions from workflow metadata, and generates the reaction
// rules that make a workflow description executable:
//
//   - the generic enactment rules gw_setup, gw_call and gw_pass of Fig. 4,
//     in both their centralized form (one interpreter, one global
//     solution) and their decentralised form (per-agent local rules where
//     gw_pass splits into gw_send/gw_recv pairs exchanging messages, §IV-A);
//   - the adaptation rules of Fig. 7 — trigger_adapt, add_dst and mv_src —
//     generated from an adaptation specification so that a failed
//     sub-workflow is replaced on-the-fly (§III-C).
//
// One deliberate deviation from the paper's Fig. 7 is documented here:
// the figure's mv_src rule adds the replacement source without removing
// the faulty one (its accompanying prose says the source is "replaced").
// Pattern-only removal deadlocks when a faulty source already delivered,
// so the generated mv_src rule delegates the source-set rewrite to a
// generated external function (remove faulty sources, add replacement
// sources) — the same mechanism the paper's Java middleware uses for its
// distributed trigger_adapt.
package hoclflow
