package hocl

import (
	"fmt"
	"math/rand"
)

// DefaultMaxSteps bounds a single Reduce call; programs that exceed it are
// assumed divergent. Workflow solutions fire a handful of rules per
// message, so the bound is generous.
const DefaultMaxSteps = 1_000_000

// TraceEvent describes one rule firing, for debugging and tests.
type TraceEvent struct {
	Rule  *Rule
	Depth int // nesting depth of the solution the rule fired in
}

// Engine reduces solutions: it applies rules until no rule can fire
// anywhere, at which point the solution (and, recursively, every
// sub-solution) is inert.
//
// The zero value is usable: built-in functions only, deterministic
// left-to-right atom selection, DefaultMaxSteps.
type Engine struct {
	// Funcs resolves external function calls; nil falls back to a
	// built-ins-only registry.
	Funcs *Funcs
	// Rand, when non-nil, shuffles candidate order each firing so the
	// reduction order is chemically non-deterministic (but reproducible
	// for a fixed seed). Nil keeps natural order.
	Rand *rand.Rand
	// MaxSteps bounds the number of rule firings per Reduce (0 means
	// DefaultMaxSteps).
	MaxSteps int
	// Trace, when non-nil, observes every firing.
	Trace func(TraceEvent)

	steps int

	// scratch is the reusable matcher (used-flags and binding); its state
	// is only live within one fireOne candidate attempt, so a single
	// instance serves the whole (sequential) reduction.
	scratch matcher
	// ruleOrd / candOrd are reusable permutation buffers for the
	// chemically non-deterministic (Rand != nil) mode.
	ruleOrd []int
	candOrd []int
}

// NewEngine returns an engine with the built-in function registry.
func NewEngine() *Engine { return &Engine{Funcs: NewFuncs()} }

// ErrDiverged reports that reduction exceeded the step budget.
type ErrDiverged struct{ Steps int }

func (e *ErrDiverged) Error() string {
	return fmt.Sprintf("hocl: reduction exceeded %d steps (divergent program?)", e.Steps)
}

// Reduce rewrites sol until it is inert. It is not safe for concurrent
// use on the same solution; each service agent owns one engine and one
// local solution (paper §IV-A), which is exactly how GinFlow avoids
// coherency problems.
func (e *Engine) Reduce(sol *Solution) error {
	e.steps = 0
	err := e.reduce(sol, 0)
	// Flush the pass's locally accumulated counts to the process-wide
	// metrics — three atomic adds per Reduce, nothing per firing.
	metReduceCalls.Inc()
	metRuleFirings.Add(int64(e.steps))
	metGuardRejections.Add(e.scratch.guardRejects)
	e.scratch.guardRejects = 0
	return err
}

// Steps returns the number of rule firings performed by the last Reduce.
func (e *Engine) Steps() int { return e.steps }

func (e *Engine) funcs() *Funcs {
	if e.Funcs == nil {
		e.Funcs = NewFuncs()
	}
	return e.Funcs
}

func (e *Engine) maxSteps() int {
	if e.MaxSteps > 0 {
		return e.MaxSteps
	}
	return DefaultMaxSteps
}

func (e *Engine) reduce(sol *Solution, depth int) error {
	if sol.Inert() {
		return nil
	}
	for {
		// Depth-first: inner programs must finish before their results
		// are observable by outer rules (sub-solution inertness law).
		// Solutions nested inside tuples and lists (e.g. SRC:<...>) count:
		// the workflow rules match on their inertness. The nested list is
		// cached on the solution and invalidated by its generation
		// counter, and sub-solutions already marked inert are skipped
		// without a recursive call.
		for _, sub := range sol.nestedSolutions() {
			if sub.Inert() {
				continue
			}
			if err := e.reduce(sub, depth+1); err != nil {
				return err
			}
		}
		fired, err := e.fireOne(sol, depth)
		if err != nil {
			return err
		}
		if !fired {
			sol.SetInert(true)
			return nil
		}
	}
}

// fireOne tries every rule in sol and applies the first match found,
// reporting whether anything fired. Rule positions come from the
// solution's cached rule index, so atom-heavy solutions are not rescanned
// per firing; matcher state and permutation buffers are engine-owned and
// reused across attempts.
func (e *Engine) fireOne(sol *Solution, depth int) (bool, error) {
	rules := sol.ruleIndices()
	if len(rules) == 0 {
		return false, nil
	}
	ruleOrd := e.permInto(&e.ruleOrd, len(rules))
	for k := range rules {
		ri := k
		if ruleOrd != nil {
			ri = ruleOrd[k]
		}
		idx := rules[ri]
		r := sol.At(idx).(*Rule)
		// The candidate permutation covers the top level; the matcher
		// draws per-context permutations from Rand itself, so nested
		// solution patterns see the same chemical non-determinism.
		e.scratch.reset(sol, e.funcs(), e.permInto(&e.candOrd, sol.Len()), e.Rand)
		m := e.scratch.matchRule(r, idx)
		if m == nil {
			continue
		}
		e.steps++
		if e.steps > e.maxSteps() {
			return false, &ErrDiverged{Steps: e.maxSteps()}
		}
		if err := r.applyVM(sol, m, idx, e.funcs(), &e.scratch.vm); err != nil {
			return false, err
		}
		if e.Trace != nil {
			e.Trace(TraceEvent{Rule: r, Depth: depth})
		}
		return true, nil
	}
	return false, nil
}

// permInto writes a fresh random permutation of [0,n) into the reusable
// buffer when Rand is set, or returns nil (natural order) otherwise.
func (e *Engine) permInto(buf *[]int, n int) []int {
	if e.Rand == nil {
		return nil
	}
	s := *buf
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := e.Rand.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
	*buf = s
	return s
}

// Run parses an HOCL program and reduces it to inertia, returning the
// final solution. It is the one-call entry point used by the hocl CLI and
// the examples.
func (e *Engine) Run(src string) (*Solution, error) {
	sol, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if err := e.Reduce(sol); err != nil {
		return nil, err
	}
	return sol, nil
}
