package hocl

import (
	"testing"
)

// The incremental engine caches each solution's rule index and nested
// solution list, and skips inert sub-solutions. These tests pin the
// invariant those caches must preserve: after ANY mutation of a solution,
// a rule that can fire does fire on the next Reduce.

func TestInertnessCacheNeverSkipsFireableRuleAfterAdd(t *testing.T) {
	rule := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	sol := NewSolution(Int(3), rule)
	e := NewEngine()
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Inert() {
		t.Fatal("solution not inert after reduce")
	}
	// New atoms re-enable the cached rule: the engine must rescan.
	sol.Add(Int(7), Int(1))
	if sol.Inert() {
		t.Fatal("mutation did not clear inertness")
	}
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 2 || !sol.Contains(Int(7)) {
		t.Errorf("after re-reduce: %v, want <7, max>", sol)
	}
}

func TestRuleIndexCacheSeesRuleAddedAfterInertness(t *testing.T) {
	sol := NewSolution(Int(2), Int(5))
	e := NewEngine()
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	// The rule index was cached as empty; adding a rule must invalidate it.
	sol.Add(MustParseRuleBody("max", "replace x, y by x if x >= y", nil))
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 2 || !sol.Contains(Int(5)) {
		t.Errorf("after adding rule: %v, want <5, max>", sol)
	}
}

func TestNestedSolutionCacheSeesNewSubSolution(t *testing.T) {
	// An outer rule matches on an inert sub-solution; the sub-solution
	// arrives only after the outer solution has already gone inert once.
	outer := MustParseRuleBody("grab", "replace <x, *w> by x", nil)
	sol := NewSolution(outer)
	e := NewEngine()
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	sol.Add(NewSolution(Int(11), Int(12)))
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Contains(Int(11)) && !sol.Contains(Int(12)) {
		t.Errorf("outer rule never saw the new sub-solution: %v", sol)
	}
}

func TestReplaceAtInvalidatesCaches(t *testing.T) {
	rule := MustParseRuleBody("gt", "replace x by 9 if x > 10", nil)
	sol := NewSolution(Int(1), rule)
	e := NewEngine()
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Contains(Int(9)) {
		t.Fatal("rule fired prematurely")
	}
	sol.ReplaceAt(0, Int(20))
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Contains(Int(9)) {
		t.Errorf("rule skipped after ReplaceAt: %v", sol)
	}
}

func TestInertSubSolutionIsNotReReduced(t *testing.T) {
	// A pre-frozen sub-solution (the structural message contract) is
	// skipped entirely: reducing the outer solution must not write to it.
	inner := NewSolution(Int(1))
	inner.SetInert(true)
	sol := NewSolution(Tuple{Ident("PASS"), Ident("T1"), inner})
	genBefore := inner.Gen()
	if err := NewEngine().Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if inner.Gen() != genBefore {
		t.Error("engine mutated an inert sub-solution")
	}
	if !sol.Inert() {
		t.Error("outer solution should be inert")
	}
}

// TestCompiledProgramSurvivesSolutionMutation checks the matcher-program
// cache against the incremental engine's mutation model: the program is
// compiled once per rule and never invalidated (patterns are immutable),
// so matching the same rule object must stay correct as the solution it
// runs against grows, shrinks and is reindexed underneath it.
func TestCompiledProgramSurvivesSolutionMutation(t *testing.T) {
	r := MustParseRuleBody("pair", "replace A:x, B:x by HIT", nil)
	sol := NewSolution(Tuple{Ident("A"), Int(1)})
	if m := MatchRule(r, sol, -1, NewFuncs(), nil); m != nil {
		t.Fatal("matched with the partner tuple missing")
	}
	sol.Add(Tuple{Ident("B"), Int(1)})
	m := MatchRule(r, sol, -1, NewFuncs(), nil)
	if m == nil {
		t.Fatal("no match after the partner tuple arrived")
	}
	sol.RemoveIndices(m.Consumed)
	if m := MatchRule(r, sol, -1, NewFuncs(), nil); m != nil {
		t.Fatalf("matched after consuming both tuples: %v", sol)
	}
	sol.Add(Tuple{Ident("B"), Int(2)}, Tuple{Ident("A"), Int(2)})
	if m := MatchRule(r, sol, -1, NewFuncs(), nil); m == nil {
		t.Fatal("no match after refill")
	}
}

func TestEngineReuseAcrossSolutions(t *testing.T) {
	// The engine's scratch state (matcher, permutation buffers) must not
	// leak between reductions of different solutions.
	e := NewEngine()
	for i := 0; i < 5; i++ {
		sol, err := e.Run(`let max = replace x, y by x if x >= y in <4, 17, 3, 9, max>`)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Contains(Int(17)) || sol.Len() != 2 {
			t.Errorf("round %d: %v", i, sol)
		}
	}
}
