package hocl

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"
)

// Parse parses a complete HOCL program: a chain of let-bound rule
// definitions followed by the initial solution.
//
//	let max = replace x, y by x if x >= y in
//	let clean = replace-one <max, *w> by *w in
//	<<2, 3, 5, 8, 9, max>, clean>
//
// Rule references in the solution body are resolved against the let
// scope; the body may not contain free variables.
func Parse(src string) (*Solution, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// ParseMolecules parses a comma-separated list of ground molecules — the
// wire format of inter-agent messages. No variables or external scope are
// allowed; rule literals `(rule name = replace ... by ...)` are.
func ParseMolecules(src string) ([]Atom, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var atoms []Atom
	if p.tok.kind == tokEOF {
		return nil, nil
	}
	for {
		a, err := p.parseGround()
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after molecules", p.tok)
	}
	return atoms, nil
}

// ParseGround parses a single ground molecule.
func ParseGround(src string) (Atom, error) {
	atoms, err := ParseMolecules(src)
	if err != nil {
		return nil, err
	}
	if len(atoms) != 1 {
		return nil, fmt.Errorf("hocl: want exactly 1 molecule, got %d", len(atoms))
	}
	return atoms[0], nil
}

// ParseRuleBody parses a rule definition body such as
// "replace x, y by x if x >= y" under the given named-rule scope (which
// may be nil). This is how HOCLflow generates the gw_* and adaptation
// rules from templates.
func ParseRuleBody(name, src string, scope map[string]*Rule) (*Rule, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	if scope != nil {
		p.scope = scope
	}
	r, err := p.parseRuleBody(name)
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after rule body", p.tok)
	}
	return r, nil
}

// MustParseRuleBody is ParseRuleBody for statically-known rule text;
// it panics on error.
func MustParseRuleBody(name, src string, scope map[string]*Rule) *Rule {
	r, err := ParseRuleBody(name, src, scope)
	if err != nil {
		panic(err)
	}
	return r
}

type parser struct {
	lx    *lexer
	tok   token
	scope map[string]*Rule
}

func newParser(src string) (*parser, error) {
	p := &parser{lx: newLexer(src), scope: map[string]*Rule{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(kind tokKind, what string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.errf("expected %s, found %s", what, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errf("expected %q, found %s", kw, p.tok)
	}
	return p.advance()
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func lowerIdent(name string) bool {
	r, _ := utf8.DecodeRuneInString(name)
	return unicode.IsLower(r) || r == '_'
}

// --- program -------------------------------------------------------------

func (p *parser) parseProgram() (*Solution, error) {
	for p.atKeyword("let") {
		if err := p.parseLet(); err != nil {
			return nil, err
		}
	}
	a, err := p.parseGround()
	if err != nil {
		return nil, err
	}
	sol, ok := a.(*Solution)
	if !ok {
		return nil, fmt.Errorf("hocl: program body must be a solution, got %s", a.Kind())
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %s after program body", p.tok)
	}
	return sol, nil
}

func (p *parser) parseLet() error {
	if err := p.expectKeyword("let"); err != nil {
		return err
	}
	nameTok, err := p.expect(tokIdent, "rule name")
	if err != nil {
		return err
	}
	if !lowerIdent(nameTok.text) {
		return p.errf("rule name %q must start with a lowercase letter", nameTok.text)
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return err
	}
	r, err := p.parseRuleBody(nameTok.text)
	if err != nil {
		return err
	}
	if err := p.expectKeyword("in"); err != nil {
		return err
	}
	p.scope[nameTok.text] = r
	return nil
}

// parseRuleBody parses "replace P by M [if G]", "replace-one P by M
// [if G]" or the HOCLflow sugar "with P inject M".
func (p *parser) parseRuleBody(name string) (*Rule, error) {
	switch {
	case p.atKeyword("replace"), p.atKeyword("replace-one"):
		oneShot := p.tok.text == "replace-one"
		if err := p.advance(); err != nil {
			return nil, err
		}
		pats, err := p.parsePatternList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		prods, err := p.parseProductList()
		if err != nil {
			return nil, err
		}
		var guard Expr
		if p.atKeyword("if") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			guard, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		r := &Rule{Name: name, Pattern: pats, Guard: guard, Product: prods, OneShot: oneShot}
		return r, p.validateRule(r)

	case p.atKeyword("with"):
		// with X inject M  ≡  replace-one X by X, M (HOCLflow §III-A).
		if err := p.advance(); err != nil {
			return nil, err
		}
		pats, err := p.parsePatternList()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("inject"); err != nil {
			return nil, err
		}
		injected, err := p.parseProductList()
		if err != nil {
			return nil, err
		}
		reemit, err := patternsToExprs(pats)
		if err != nil {
			return nil, err
		}
		r := &Rule{Name: name, Pattern: pats, Product: append(reemit, injected...), OneShot: true}
		return r, p.validateRule(r)

	default:
		return nil, p.errf("expected 'replace', 'replace-one' or 'with', found %s", p.tok)
	}
}

// validateRule rejects top-level omega patterns (they only make sense
// inside solution patterns).
func (p *parser) validateRule(r *Rule) error {
	for _, pat := range r.Pattern {
		if _, ok := pat.(*POmega); ok {
			return fmt.Errorf("hocl: rule %s: omega pattern outside a solution pattern", r.Name)
		}
	}
	if len(r.Pattern) == 0 {
		return fmt.Errorf("hocl: rule %s: empty pattern", r.Name)
	}
	return nil
}

// --- patterns ------------------------------------------------------------

func (p *parser) parsePatternList() ([]Pattern, error) {
	var pats []Pattern
	for {
		pat, err := p.parsePatternElem()
		if err != nil {
			return nil, err
		}
		pats = append(pats, pat)
		if p.tok.kind != tokComma {
			return pats, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// parsePatternElem parses a pattern molecule: a primary or a tuple chain
// prim:prim:...
func (p *parser) parsePatternElem() (Pattern, error) {
	first, err := p.parsePatternPrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokColon {
		return first, nil
	}
	elems := []Pattern{first}
	for p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parsePatternPrimary()
		if err != nil {
			return nil, err
		}
		elems = append(elems, next)
	}
	return &PTuple{Elems: elems}, nil
}

func (p *parser) parsePatternPrimary() (Pattern, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &PConst{Val: Int(v)}, nil

	case tokFloat:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &PConst{Val: Float(v)}, nil

	case tokString:
		s, err := unquote(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &PConst{Val: Str(s)}, nil

	case tokKeyword:
		switch p.tok.text {
		case "true", "false":
			v := p.tok.text == "true"
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &PConst{Val: Bool(v)}, nil
		}
		return nil, p.errf("unexpected keyword %q in pattern", p.tok.text)

	case tokOp:
		if p.tok.text == "-" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokInt:
				v, _ := strconv.ParseInt(p.tok.text, 10, 64)
				if err := p.advance(); err != nil {
					return nil, err
				}
				return &PConst{Val: Int(-v)}, nil
			case tokFloat:
				v, _ := strconv.ParseFloat(p.tok.text, 64)
				if err := p.advance(); err != nil {
					return nil, err
				}
				return &PConst{Val: Float(-v)}, nil
			}
			return nil, p.errf("expected number after '-' in pattern")
		}
		return nil, p.errf("unexpected operator %q in pattern", p.tok.text)

	case tokStar:
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "omega variable name")
		if err != nil {
			return nil, err
		}
		return &POmega{Name: name.text}, nil

	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if lowerIdent(name) {
			if _, ok := p.scope[name]; ok {
				return &PRuleRef{Name: name}, nil
			}
			return &PVar{Name: name}, nil
		}
		return &PConst{Val: Ident(name)}, nil

	case tokLAngle:
		return p.parseSolutionPattern()

	case tokLBrack:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []Pattern
		if p.tok.kind != tokRBrack {
			for {
				e, err := p.parsePatternElem()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		return &PList{Elems: elems}, nil

	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parsePatternElem()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil

	default:
		return nil, p.errf("unexpected %s in pattern", p.tok)
	}
}

func (p *parser) parseSolutionPattern() (Pattern, error) {
	if _, err := p.expect(tokLAngle, "'<'"); err != nil {
		return nil, err
	}
	sp := &PSolution{}
	if p.tok.kind != tokRAngle {
		for {
			e, err := p.parsePatternElem()
			if err != nil {
				return nil, err
			}
			if om, ok := e.(*POmega); ok {
				if sp.Rest != "" {
					return nil, p.errf("solution pattern has more than one omega variable")
				}
				sp.Rest = om.Name
			} else {
				sp.Elems = append(sp.Elems, e)
			}
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(tokRAngle, "'>'"); err != nil {
		return nil, err
	}
	return sp, nil
}

// --- products and expressions ---------------------------------------------

func (p *parser) parseProductList() ([]Expr, error) {
	if p.atKeyword("nothing") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	var prods []Expr
	for {
		e, err := p.parseElemExpr()
		if err != nil {
			return nil, err
		}
		prods = append(prods, e)
		if p.tok.kind != tokComma {
			return prods, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// parseExpr parses a full expression (guards): boolean and comparison
// operators are available at the top level.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "||" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &EBinop{Op: "||", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && p.tok.text == "&&" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &EBinop{Op: "&&", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.tok.kind == tokOp && (p.tok.text == "==" || p.tok.text == "!=" ||
			p.tok.text == "<=" || p.tok.text == ">="):
			op = p.tok.text
		case p.tok.kind == tokLAngle:
			op = "<"
		case p.tok.kind == tokRAngle:
			op = ">"
		default:
			return l, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &EBinop{Op: op, L: l, R: r}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &EBinop{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.tok.kind == tokOp && (p.tok.text == "/" || p.tok.text == "%")) ||
		p.tok.kind == tokStar {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &EBinop{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && (p.tok.text == "-" || p.tok.text == "!") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &EUnop{Op: op, X: x}, nil
	}
	if p.tok.kind == tokStar {
		// Prefix star: omega reference.
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "omega variable name")
		if err != nil {
			return nil, err
		}
		return &EVar{Name: name.text, Omega: true}, nil
	}
	return p.parseTupleChain()
}

// parseElemExpr parses an element-position expression (solution, list and
// tuple elements, call arguments, products): arithmetic is available but
// comparisons are not, so '<' and '>' remain structural delimiters.
// Parenthesised sub-expressions re-enable the full grammar.
func (p *parser) parseElemExpr() (Expr, error) {
	if p.tok.kind == tokStar {
		if err := p.advance(); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "omega variable name")
		if err != nil {
			return nil, err
		}
		return &EVar{Name: name.text, Omega: true}, nil
	}
	return p.parseAdd()
}

func (p *parser) parseTupleChain() (Expr, error) {
	first, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokColon {
		return first, nil
	}
	elems := []Expr{first}
	for p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		elems = append(elems, next)
	}
	return &ETuple{Elems: elems}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ELit{Val: Int(v)}, nil

	case tokFloat:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ELit{Val: Float(v)}, nil

	case tokString:
		s, err := unquote(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &ELit{Val: Str(s)}, nil

	case tokKeyword:
		switch p.tok.text {
		case "true", "false":
			v := p.tok.text == "true"
			if err := p.advance(); err != nil {
				return nil, err
			}
			return &ELit{Val: Bool(v)}, nil
		}
		return nil, p.errf("unexpected keyword %q in expression", p.tok.text)

	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokLParen {
			// Function call.
			if err := p.advance(); err != nil {
				return nil, err
			}
			var args []Expr
			if p.tok.kind != tokRParen {
				for {
					a, err := p.parseElemExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.tok.kind != tokComma {
						break
					}
					if err := p.advance(); err != nil {
						return nil, err
					}
				}
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return &ECall{Fn: name, Args: args}, nil
		}
		if lowerIdent(name) {
			if r, ok := p.scope[name]; ok {
				return &ELit{Val: r}, nil
			}
			return &EVar{Name: name}, nil
		}
		return &ELit{Val: Ident(name)}, nil

	case tokLAngle:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []Expr
		if p.tok.kind != tokRAngle {
			for {
				e, err := p.parseElemExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRAngle, "'>'"); err != nil {
			return nil, err
		}
		return &ESolution{Elems: elems}, nil

	case tokLBrack:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems []Expr
		if p.tok.kind != tokRBrack {
			for {
				e, err := p.parseElemExpr()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		return &EList{Elems: elems}, nil

	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("rule") {
			r, err := p.parseRuleLiteral()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return &ELit{Val: r}, nil
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil

	default:
		return nil, p.errf("unexpected %s in expression", p.tok)
	}
}

// parseRuleLiteral parses "rule name = <body>" (the caller consumed '('
// and will consume ')'). The name "_" denotes an anonymous rule.
func (p *parser) parseRuleLiteral() (*Rule, error) {
	if err := p.expectKeyword("rule"); err != nil {
		return nil, err
	}
	nameTok, err := p.expect(tokIdent, "rule name")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokAssign, "'='"); err != nil {
		return nil, err
	}
	name := nameTok.text
	if name == "_" {
		name = ""
	}
	return p.parseRuleBody(name)
}

// --- ground molecules ------------------------------------------------------

// parseGround parses a molecule with no free variables: the program body,
// and the wire format for messages. Lowercase identifiers must resolve to
// let-bound rules.
func (p *parser) parseGround() (Atom, error) {
	first, err := p.parseGroundPrimary()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokColon {
		return first, nil
	}
	elems := []Atom{first}
	for p.tok.kind == tokColon {
		if err := p.advance(); err != nil {
			return nil, err
		}
		next, err := p.parseGroundPrimary()
		if err != nil {
			return nil, err
		}
		elems = append(elems, next)
	}
	return Tuple(elems), nil
}

func (p *parser) parseGroundPrimary() (Atom, error) {
	switch p.tok.kind {
	case tokInt:
		v, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", p.tok.text)
		}
		return Int(v), p.advance()

	case tokFloat:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad float %q", p.tok.text)
		}
		return Float(v), p.advance()

	case tokString:
		s, err := unquote(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		return Str(s), p.advance()

	case tokKeyword:
		switch p.tok.text {
		case "true":
			return Bool(true), p.advance()
		case "false":
			return Bool(false), p.advance()
		}
		return nil, p.errf("unexpected keyword %q in molecule", p.tok.text)

	case tokOp:
		if p.tok.text == "-" {
			if err := p.advance(); err != nil {
				return nil, err
			}
			switch p.tok.kind {
			case tokInt:
				v, _ := strconv.ParseInt(p.tok.text, 10, 64)
				return Int(-v), p.advance()
			case tokFloat:
				v, _ := strconv.ParseFloat(p.tok.text, 64)
				return Float(-v), p.advance()
			}
			return nil, p.errf("expected number after '-'")
		}
		return nil, p.errf("unexpected operator %q in molecule", p.tok.text)

	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if lowerIdent(name) {
			if r, ok := p.scope[name]; ok {
				return r, nil
			}
			return nil, p.errf("unbound identifier %q in molecule (variables are not allowed here)", name)
		}
		return Ident(name), nil

	case tokLAngle:
		if err := p.advance(); err != nil {
			return nil, err
		}
		sol := NewSolution()
		if p.tok.kind != tokRAngle {
			for {
				a, err := p.parseGround()
				if err != nil {
					return nil, err
				}
				sol.Add(a)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRAngle, "'>'"); err != nil {
			return nil, err
		}
		return sol, nil

	case tokLBrack:
		if err := p.advance(); err != nil {
			return nil, err
		}
		var elems List
		if p.tok.kind != tokRBrack {
			for {
				a, err := p.parseGround()
				if err != nil {
					return nil, err
				}
				elems = append(elems, a)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if _, err := p.expect(tokRBrack, "']'"); err != nil {
			return nil, err
		}
		return elems, nil

	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.atKeyword("rule") {
			r, err := p.parseRuleLiteral()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, "')'"); err != nil {
				return nil, err
			}
			return r, nil
		}
		// Parenthesised molecule: grouping for nested tuples, A:(B:C).
		inner, err := p.parseGround()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return inner, nil

	default:
		return nil, p.errf("unexpected %s in molecule", p.tok)
	}
}
