package hocl

import (
	"strings"
	"testing"
)

// evalGuardSrc parses src as a rule guard over the given binding and
// evaluates it.
func evalGuardSrc(t *testing.T, guard string, bind map[string]Atom) bool {
	t.Helper()
	r, err := ParseRuleBody("g", "replace x by x if "+guard, nil)
	if err != nil {
		t.Fatalf("parse guard %q: %v", guard, err)
	}
	env := NewBinding()
	for k, v := range bind {
		env.bindAtom(k, v)
	}
	return EvalGuard(r.Guard, env, NewFuncs())
}

func TestGuardArithmeticAndComparison(t *testing.T) {
	env := map[string]Atom{"a": Int(6), "b": Int(4), "f": Float(2.5), "s": Str("abc")}
	cases := []struct {
		guard string
		want  bool
	}{
		{"a > b", true},
		{"a < b", false},
		{"a >= 6", true},
		{"a <= 5", false},
		{"a == 6", true},
		{"a != 6", false},
		{"a + b == 10", true},
		{"a - b == 2", true},
		{"a * b == 24", true},
		{"a / b == 1", true}, // integer division
		{"a % b == 2", true},
		{"f * 2.0 == 5.0", true},
		{"a + f == 8.5", true}, // int promotes to float
		{"f < a", true},
		{"s == \"abc\"", true},
		{"s + \"d\" == \"abcd\"", true},
		{"s < \"b\"", true}, // lexicographic
		{"a > 0 && b > 0", true},
		{"a < 0 || b > 0", true},
		{"!(a < 0)", true},
		{"a > 0 && !(b > 100)", true},
		{"-a == -6", true},
		{"a / 0 == 1", false}, // division by zero -> guard false
		{"a % 0 == 1", false}, // modulo by zero -> guard false
		{"s > 1", false},      // type mismatch -> guard false
		{"a && true", false},  // non-bool operand -> guard false
		{"true && a > 0", true},
		{"false || a == 6", true},
		{"!a", false},              // negating non-bool -> guard false
		{"unknownvar == 1", false}, // unbound -> guard false
		{"nosuchfn(a) == 1", false},
	}
	for _, c := range cases {
		if got := evalGuardSrc(t, c.guard, env); got != c.want {
			t.Errorf("guard %q = %v, want %v", c.guard, got, c.want)
		}
	}
}

func TestGuardShortCircuit(t *testing.T) {
	// && short-circuits: the erroring right side is never evaluated.
	env := map[string]Atom{"a": Int(1)}
	if evalGuardSrc(t, "false && nosuchfn(a) == 1", env) {
		t.Error("false && ... should be false")
	}
	if !evalGuardSrc(t, "true || nosuchfn(a) == 1", env) {
		t.Error("true || ... should be true")
	}
}

func TestNilGuardIsTrue(t *testing.T) {
	if !EvalGuard(nil, NewBinding(), NewFuncs()) {
		t.Error("nil guard must be true")
	}
}

func TestEvalElemsSplicesOmega(t *testing.T) {
	env := NewBinding()
	env.bindRest("w", []Atom{Int(1), Int(2)})
	out, err := EvalElems([]Expr{
		&ELit{Val: Ident("HEAD")},
		&EVar{Name: "w", Omega: true},
		&ELit{Val: Ident("TAIL")},
	}, env, NewFuncs())
	if err != nil {
		t.Fatal(err)
	}
	want := []Atom{Ident("HEAD"), Int(1), Int(2), Ident("TAIL")}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if !out[i].Equal(want[i]) {
			t.Errorf("elem %d = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestEvalScalarErrors(t *testing.T) {
	env := NewBinding()
	env.bindRest("w", []Atom{Int(1)})
	cases := []Expr{
		&EVar{Name: "w", Omega: true},              // omega in scalar position
		&EVar{Name: "missing"},                     // unbound
		&ECall{Fn: "nosuch"},                       // unknown function
		&ETuple{Elems: []Expr{&ELit{Val: Int(1)}}}, // 1-element tuple
	}
	for _, e := range cases {
		if _, err := EvalScalar(e, env, NewFuncs()); err == nil {
			t.Errorf("EvalScalar(%v) succeeded, want error", e)
		}
	}
}

func TestEvalErrorMessage(t *testing.T) {
	_, err := EvalScalar(&EVar{Name: "nope"}, NewBinding(), NewFuncs())
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %v should mention the variable", err)
	}
}

func TestBuiltinFunctions(t *testing.T) {
	funcs := NewFuncs()
	call := func(name string, args ...Atom) ([]Atom, error) {
		fn, ok := funcs.Lookup(name)
		if !ok {
			t.Fatalf("builtin %q missing", name)
		}
		return fn(args)
	}

	if out, err := call("list", Int(1), Int(2)); err != nil || !out[0].Equal(List{Int(1), Int(2)}) {
		t.Errorf("list: %v, %v", out, err)
	}
	if out, err := call("len", List{Int(1), Int(2), Int(3)}); err != nil || !out[0].Equal(Int(3)) {
		t.Errorf("len list: %v, %v", out, err)
	}
	if out, err := call("len", Str("abcd")); err != nil || !out[0].Equal(Int(4)) {
		t.Errorf("len str: %v, %v", out, err)
	}
	if out, err := call("len", NewSolution(Int(1))); err != nil || !out[0].Equal(Int(1)) {
		t.Errorf("len solution: %v, %v", out, err)
	}
	if _, err := call("len", Int(1)); err == nil {
		t.Error("len int should error")
	}
	if out, err := call("head", List{Int(9), Int(8)}); err != nil || !out[0].Equal(Int(9)) {
		t.Errorf("head: %v, %v", out, err)
	}
	if _, err := call("head", List{}); err == nil {
		t.Error("head of empty list should error")
	}
	if out, err := call("tail", List{Int(9), Int(8)}); err != nil || !out[0].Equal(List{Int(8)}) {
		t.Errorf("tail: %v, %v", out, err)
	}
	if out, err := call("append", List{Int(1)}, Int(2)); err != nil || !out[0].Equal(List{Int(1), Int(2)}) {
		t.Errorf("append: %v, %v", out, err)
	}
	if out, err := call("concat", List{Int(1)}, List{Int(2)}); err != nil || !out[0].Equal(List{Int(1), Int(2)}) {
		t.Errorf("concat: %v, %v", out, err)
	}
	if out, err := call("str", Str("a"), Int(1)); err != nil || !out[0].Equal(Str("a1")) {
		t.Errorf("str: %v, %v", out, err)
	}
	if out, err := call("flatten", List{Int(1), Int(2)}); err != nil || len(out) != 2 {
		t.Errorf("flatten: %v, %v", out, err)
	}
}

func TestFuncsRegistryOps(t *testing.T) {
	f := NewFuncs()
	f.Register("custom", func(args []Atom) ([]Atom, error) { return nil, nil })
	if _, ok := f.Lookup("custom"); !ok {
		t.Error("registered function missing")
	}
	names := f.Names()
	if len(names) == 0 {
		t.Fatal("Names empty")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
	g := &Funcs{}
	f.CloneInto(g)
	if _, ok := g.Lookup("custom"); !ok {
		t.Error("CloneInto missed a function")
	}
	// Zero value is usable.
	var z Funcs
	z.Register("zv", func(args []Atom) ([]Atom, error) { return nil, nil })
	if _, ok := z.Lookup("zv"); !ok {
		t.Error("zero-value registry unusable")
	}
}

func TestBindingUndo(t *testing.T) {
	b := NewBinding()
	b.bindAtom("x", Int(1))
	mark := b.mark()
	b.bindAtom("y", Int(2))
	b.bindRest("w", []Atom{Int(3)})
	b.undo(mark)
	if _, ok := b.Atom("y"); ok {
		t.Error("y should be unbound after undo")
	}
	if _, ok := b.Rest("w"); ok {
		t.Error("w should be unbound after undo")
	}
	if v, ok := b.Atom("x"); !ok || !v.Equal(Int(1)) {
		t.Error("x lost by undo")
	}
}

func TestExprStrings(t *testing.T) {
	r := MustParseRuleBody("r",
		`replace SRC:<>, x, <*w> by PAR:list(*w), x + 1, [x, 2] if x >= 0 && x != 9`, nil)
	body := r.Body()
	for _, frag := range []string{"replace", "SRC:<>", "by", "PAR:list(*w)", "if", ">="} {
		if !strings.Contains(body, frag) {
			t.Errorf("Body() = %q missing %q", body, frag)
		}
	}
	// Rule.String is parseable (covered elsewhere); check shape here.
	if !strings.HasPrefix(r.String(), "(rule r = replace") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestCompareAtoms(t *testing.T) {
	cases := []struct {
		a, b Atom
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{Float(1), Float(1), 0, true},
		{Str("a"), Str("b"), -1, true},
		{Str("a"), Int(1), 0, false},
		{Bool(true), Bool(true), 0, false},
		{Ident("A"), Ident("A"), 0, false},
	}
	for _, c := range cases {
		got, err := compareAtoms(c.a, c.b)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("compare(%v, %v) = %d, %v; want %d", c.a, c.b, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("compare(%v, %v) should error", c.a, c.b)
		}
	}
}
