package hocl

import (
	"testing"
)

// FuzzWireDecode hardens DecodeAtoms against arbitrary bytes: the
// journal replays records straight off disk, so a corrupt or torn
// record must error, never panic — and whatever decodes must re-encode
// and decode back Equal (the codec's fixpoint property).
func FuzzWireDecode(f *testing.F) {
	for _, atoms := range [][]Atom{
		nil,
		{Int(-3), Str("x"), Bool(true)},
		{Tuple{Ident("T1"), NewSolution(Str("r"), Int(1))}},
		{List{Float(2.5), NewSolution()}},
	} {
		f.Add(EncodeAtoms(atoms))
	}
	f.Add([]byte{})
	f.Add([]byte{WireVersion, 1, wireRule, 0, 3, 'b', 'a', 'd'})
	f.Add([]byte{WireVersion, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		atoms, err := DecodeAtoms(data)
		if err != nil {
			return
		}
		back, err := DecodeAtoms(EncodeAtoms(atoms))
		if err != nil {
			t.Fatalf("re-decode of decoded input failed: %v", err)
		}
		if len(back) != len(atoms) {
			t.Fatalf("re-decode changed arity: %d -> %d", len(atoms), len(back))
		}
		for i := range atoms {
			if !atoms[i].Equal(back[i]) {
				t.Fatalf("re-decode changed atom %d: %v -> %v", i, atoms[i], back[i])
			}
		}
	})
}

// FuzzWireTextEquivalence is the codec's equivalence guard against the
// parser path: any molecule list the textual format can express must
// survive the binary codec structurally unchanged — the property that
// lets the journal replace text records without changing what replay
// rebuilds.
func FuzzWireTextEquivalence(f *testing.F) {
	seeds := []string{
		"42, -1, 3.5, true, false",
		`T1:<SRC:<>, DST:<T2, T3>, SRV:"s1", IN:<"input">, RES:<>>`,
		`STATDELTA:T2:12:34:[5, 6]:[RES:<"r">]:true`,
		`PASS:T1:<"x", [1, 2], <3>>`,
		`TRIGGER:"a1"`,
		`(rule max = replace x, y by x if x >= y)`,
		`(rule gw = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w))`,
		`A:(B:C):[<>, <1>]`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		atoms, err := ParseMolecules(input)
		if err != nil {
			return
		}
		back, err := DecodeAtoms(EncodeAtoms(atoms))
		if err != nil {
			t.Fatalf("binary codec rejected parser output for %q: %v", input, err)
		}
		if len(back) != len(atoms) {
			t.Fatalf("binary round trip of %q changed arity: %d -> %d", input, len(atoms), len(back))
		}
		for i := range atoms {
			if !atoms[i].Equal(back[i]) {
				t.Fatalf("binary round trip of %q changed molecule %d: %v -> %v",
					input, i, atoms[i], back[i])
			}
		}
	})
}
