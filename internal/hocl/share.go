package hocl

import (
	"encoding/binary"
	"math"
)

// This file implements structural sharing for the zero-reparse message
// path (DESIGN.md "Zero-reparse message path"). The package invariant it
// rests on: every atom except *Solution is immutable, and an inert
// solution is never mutated by the reduction engine (the engine neither
// descends into nor fires rules inside an inert solution, and pattern
// matching only destructures). Snapshots therefore copy only Solution
// shells and their element arrays — the copy-on-write boundary — and
// share everything else by reference.

// Snapshot returns a copy of a that can be mutated through Solution
// methods without affecting the original (and vice versa): every solution
// reachable from a gets a fresh shell with a fresh element array, while
// all non-solution atoms — including those inside rebuilt tuples and
// lists — are shared by reference. For atoms containing no solution,
// Snapshot returns a itself with zero allocation.
func Snapshot(a Atom) Atom {
	c, _ := snapshotAtom(a)
	return c
}

// SnapshotAtoms maps Snapshot over a slice of atoms.
func SnapshotAtoms(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = Snapshot(a)
	}
	return out
}

// SnapshotSolution is the Solution form of Snapshot: a fresh shell and
// element array (preserving the inertness flag), sharing element atoms
// down to the next solution boundary.
func (s *Solution) SnapshotSolution() *Solution {
	elems := make([]Atom, len(s.elems))
	for i, e := range s.elems {
		elems[i], _ = snapshotAtom(e)
	}
	return &Solution{elems: elems, inert: s.inert}
}

// snapshotAtom returns the snapshot of a and whether anything was copied
// (i.e. a contains a solution somewhere).
func snapshotAtom(a Atom) (Atom, bool) {
	switch v := a.(type) {
	case *Solution:
		return v.SnapshotSolution(), true
	case Tuple:
		if out, copied := snapshotSeq([]Atom(v)); copied {
			return Tuple(out), true
		}
		return v, false
	case List:
		if out, copied := snapshotSeq([]Atom(v)); copied {
			return List(out), true
		}
		return v, false
	default:
		return a, false
	}
}

// snapshotSeq snapshots a tuple/list element slice, allocating only when
// some element actually contains a solution.
func snapshotSeq(elems []Atom) ([]Atom, bool) {
	for i, e := range elems {
		c, copied := snapshotAtom(e)
		if !copied {
			continue
		}
		out := make([]Atom, len(elems))
		copy(out, elems[:i])
		out[i] = c
		for j := i + 1; j < len(elems); j++ {
			out[j], _ = snapshotAtom(elems[j])
		}
		return out, true
	}
	return elems, false
}

// Shareable reports whether a can be added to a solution under active
// reduction while remaining shared with other owners (another agent, the
// broker's replay log, the space): true when every solution reachable
// from a is inert. The engine never mutates an inert solution — it skips
// reducing it and pattern matching only destructures — so such atoms can
// travel by reference. A non-shareable atom must be cloned by the
// receiver before ingestion.
func Shareable(a Atom) bool {
	switch v := a.(type) {
	case *Solution:
		if !v.inert {
			return false
		}
		return shareableSeq(v.elems)
	case Tuple:
		return shareableSeq([]Atom(v))
	case List:
		return shareableSeq([]Atom(v))
	default:
		return true
	}
}

func shareableSeq(elems []Atom) bool {
	for _, e := range elems {
		if !Shareable(e) {
			return false
		}
	}
	return true
}

// Fingerprint returns a 64-bit structural hash of the atoms, used by
// agents to deduplicate unchanged status pushes without rendering the
// solution to text.
//
// The top level is a multiset hash: each atom is hashed independently
// (FNV-1a, then a splitmix64 finalizer) and the per-atom hashes are
// combined commutatively (sum and xor, plus the count), so a reduction
// that merely permutes the top-level atoms — chemically the same state —
// fingerprints equal and is never re-pushed. Multiplicity still counts:
// {a, a, b} and {a, b, b} differ through both combiners. Below the top
// level, tuples, lists and nested solutions hash order-sensitively, as
// their element order is structurally meaningful on the wire.
//
// The inertness flag and solution identity do not participate. Rules
// hash exactly the components Rule.Equal compares (name, one-shot flag,
// rendered body), so two states that differ only in a rule's guard or
// products never collide.
func Fingerprint(atoms ...Atom) uint64 {
	var sum, xor uint64
	for _, a := range atoms {
		h := mix64(fingerprintAtom(fnvOffset, a))
		sum += h
		xor ^= h
	}
	return mix64(sum ^ mix64(xor+uint64(len(atoms))))
}

// AtomHash returns the finalized structural hash of one atom: the
// per-atom term of Fingerprint's top-level multiset combine. Equal atoms
// hash equal; below the atom's top level, element order is significant
// (matching Fingerprint). The delta status protocol (DESIGN.md "Broker
// internals") uses AtomHash to identify removed atoms on the wire and to
// fold per-atom hashes incrementally through MultisetHash.
func AtomHash(a Atom) uint64 {
	return mix64(fingerprintAtom(fnvOffset, a))
}

// MultisetHash combines AtomHash values incrementally into the same
// order-insensitive fingerprint Fingerprint computes in one pass:
// folding the AtomHash of every atom in a multiset through Add yields
// Fingerprint of those atoms, and Remove undoes an Add exactly. The zero
// value is the hash of the empty multiset.
type MultisetHash struct {
	sum, xor uint64
	n        uint64
}

// Add folds one atom hash into the multiset.
func (m *MultisetHash) Add(h uint64) {
	m.sum += h
	m.xor ^= h
	m.n++
}

// Remove unfolds one previously added atom hash.
func (m *MultisetHash) Remove(h uint64) {
	m.sum -= h
	m.xor ^= h
	m.n--
}

// Count returns the number of atoms currently folded in.
func (m *MultisetHash) Count() int { return int(m.n) }

// Fingerprint returns the combined fingerprint, equal to Fingerprint
// over the same multiset of atoms.
func (m *MultisetHash) Fingerprint() uint64 {
	return mix64(m.sum ^ mix64(m.xor+m.n))
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
// Each per-atom hash is finalized before the commutative combine so
// structurally close atoms contribute independent bit patterns — the
// property that keeps sum/xor combining collision-safe in practice.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime
}

func fnvUint64(h, v uint64) uint64 {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for _, b := range buf {
		h = fnvByte(h, b)
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	h = fnvUint64(h, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

func fingerprintAtom(h uint64, a Atom) uint64 {
	h = fnvByte(h, byte(a.Kind()))
	switch v := a.(type) {
	case Int:
		h = fnvUint64(h, uint64(v))
	case Float:
		h = fnvUint64(h, math.Float64bits(float64(v)))
	case Str:
		h = fnvString(h, string(v))
	case Bool:
		if v {
			h = fnvByte(h, 1)
		} else {
			h = fnvByte(h, 0)
		}
	case Ident:
		h = fnvString(h, string(v))
	case Tuple:
		h = fingerprintSeq(h, []Atom(v))
	case List:
		h = fingerprintSeq(h, []Atom(v))
	case *Solution:
		h = fingerprintSeq(h, v.elems)
	case *Rule:
		h = fnvString(h, v.Name)
		h = fnvByte(h, byte(boolBit(v.OneShot)))
		h = fnvString(h, v.Body())
	}
	return h
}

func fingerprintSeq(h uint64, elems []Atom) uint64 {
	h = fnvUint64(h, uint64(len(elems)))
	for _, e := range elems {
		h = fingerprintAtom(h, e)
	}
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
