package hocl

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: the parser never panics, whatever bytes it is fed — it
// either parses or returns an error. Agents feed network payloads
// straight into ParseMolecules, so this is a hardening requirement, not
// a nicety.
func TestQuickParserNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		_, _ = ParseMolecules(input)
		_, _ = Parse(input)
		_, _ = ParseRuleBody("r", input, nil)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: near-valid inputs (mutations of valid programs) never panic
// either — plain random strings rarely get past the lexer, so mutate
// real programs to reach deeper parser states.
func TestQuickMutatedProgramsNeverPanic(t *testing.T) {
	programs := []string{
		`let max = replace x, y by x if x >= y in <2, 3, 5, 8, 9, max>`,
		`let clean = replace-one <TAG, *w> by *w in <<TAG, 1>, clean>`,
		`T1:<SRC:<>, DST:<T2, T3>, SRV:"s1", IN:<"input">>`,
		`(rule r = replace SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w))`,
		`with T2:<RES:<ERROR>, *o> inject TRIGGER:"a1"`,
	}
	mutators := []func(r *rand.Rand, s string) string{
		func(r *rand.Rand, s string) string { // delete a byte
			if len(s) == 0 {
				return s
			}
			i := r.Intn(len(s))
			return s[:i] + s[i+1:]
		},
		func(r *rand.Rand, s string) string { // duplicate a byte
			if len(s) == 0 {
				return s
			}
			i := r.Intn(len(s))
			return s[:i] + string(s[i]) + s[i:]
		},
		func(r *rand.Rand, s string) string { // swap in a metacharacter
			if len(s) == 0 {
				return s
			}
			meta := "<>[](),:*=\"'"
			i := r.Intn(len(s))
			return s[:i] + string(meta[r.Intn(len(meta))]) + s[i+1:]
		},
		func(r *rand.Rand, s string) string { // truncate
			if len(s) == 0 {
				return s
			}
			return s[:r.Intn(len(s))]
		},
	}
	r := rand.New(rand.NewSource(99))
	for round := 0; round < 3000; round++ {
		src := programs[r.Intn(len(programs))]
		for hits := 1 + r.Intn(4); hits > 0; hits-- {
			src = mutators[r.Intn(len(mutators))](r, src)
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					t.Fatalf("panic on mutated input %q: %v", src, rec)
				}
			}()
			_, _ = Parse(src)
			_, _ = ParseMolecules(src)
		}()
	}
}

// Property: whatever parses also reduces without panicking (bounded
// steps), even if the program is semantically odd.
func TestQuickParsedProgramsReduceSafely(t *testing.T) {
	programs := []string{
		`let r = replace x by x if false in <1, r>`,
		`let r = replace-one x, y by y, x in <1, 2, r>`,
		`let a = replace x by x if false in let b = replace-one a by nothing in <a, b>`,
		`let r = replace <*w> by list(*w) in <<1>, <2, 3>, r>`,
		`<1, 2.5, "s", TRUEISH, [1, <2>], A:B:C>`,
	}
	for _, src := range programs {
		e := NewEngine()
		e.MaxSteps = 10000
		if _, err := e.Run(src); err != nil {
			// Divergence errors are acceptable; panics are not (they
			// would have crashed the test).
			if _, diverged := err.(*ErrDiverged); !diverged {
				t.Errorf("program %q: %v", src, err)
			}
		}
	}
}

// TestDeepNestingDoesNotOverflow guards the recursive-descent parser and
// the recursive reducer against stack abuse from hostile inputs.
func TestDeepNestingDoesNotOverflow(t *testing.T) {
	const depth = 2000
	src := strings.Repeat("<", depth) + strings.Repeat(">", depth)
	sol, err := ParseGround(src)
	if err != nil {
		t.Fatalf("deep nesting rejected: %v", err)
	}
	if err := NewEngine().Reduce(sol.(*Solution)); err != nil {
		t.Fatal(err)
	}
	// And the printer round-trips it.
	if _, err := ParseGround(sol.String()); err != nil {
		t.Fatal(err)
	}
}
