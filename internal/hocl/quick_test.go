package hocl

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genAtom builds a random ground atom of bounded depth — the generator
// behind the property-based tests.
func genAtom(r *rand.Rand, depth int) Atom {
	max := 7
	if depth <= 0 {
		max = 4 // leaves only
	}
	switch r.Intn(max) {
	case 0:
		return Int(r.Int63n(2000) - 1000)
	case 1:
		return Float(float64(r.Int63n(1000)) / 8.0)
	case 2:
		return Str(randName(r, "s"))
	case 3:
		if r.Intn(2) == 0 {
			return Bool(r.Intn(2) == 0)
		}
		return Ident(randUpperName(r))
	case 4:
		n := 2 + r.Intn(3)
		t := make(Tuple, n)
		for i := range t {
			t[i] = genAtom(r, depth-1)
		}
		return t
	case 5:
		n := r.Intn(4)
		l := make(List, n)
		for i := range l {
			l[i] = genAtom(r, depth-1)
		}
		return l
	default:
		n := r.Intn(4)
		atoms := make([]Atom, n)
		for i := range atoms {
			atoms[i] = genAtom(r, depth-1)
		}
		return NewSolution(atoms...)
	}
}

func randName(r *rand.Rand, prefix string) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return prefix + string(b)
}

func randUpperName(r *rand.Rand) string {
	const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	n := 1 + r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return string(b)
}

// atomBox adapts genAtom to testing/quick's Generator interface.
type atomBox struct{ A Atom }

func (atomBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(atomBox{A: genAtom(r, 3)})
}

// Property: printing any ground atom and re-parsing it yields an equal
// atom. GinFlow ships molecules between agents as text, so this property
// is load-bearing for the whole middleware.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(b atomBox) bool {
		back, err := ParseGround(b.A.String())
		if err != nil {
			t.Logf("parse error for %q: %v", b.A.String(), err)
			return false
		}
		return b.A.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Clone is deep — mutating the original solution never changes
// the clone, and clones are Equal to their source.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(b atomBox) bool {
		sol := NewSolution(b.A)
		clone := sol.CloneSolution()
		if !sol.Equal(clone) {
			return false
		}
		sol.Add(Ident("MUTATION"))
		return clone.Len() == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Equal is reflexive and survives element permutation (multiset
// semantics).
func TestQuickSolutionPermutationEqual(t *testing.T) {
	f := func(b atomBox, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		atoms := make([]Atom, 3+r.Intn(5))
		for i := range atoms {
			atoms[i] = genAtom(r, 2)
		}
		s1 := NewSolution(atoms...)
		perm := r.Perm(len(atoms))
		shuffled := make([]Atom, len(atoms))
		for i, j := range perm {
			shuffled[i] = atoms[j]
		}
		s2 := NewSolution(shuffled...)
		return s1.Equal(s1) && s1.Equal(s2) && s2.Equal(s1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: getMax computes the maximum of any non-empty random integer
// multiset, regardless of reaction order, and always terminates with
// exactly the max plus the catalyst.
func TestQuickGetMaxCorrect(t *testing.T) {
	maxRule := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	f := func(vals []int16, seed int64) bool {
		if len(vals) == 0 {
			return true
		}
		want := vals[0]
		atoms := make([]Atom, len(vals))
		for i, v := range vals {
			atoms[i] = Int(v)
			if v > want {
				want = v
			}
		}
		sol := NewSolution(append(atoms, maxRule)...)
		e := NewEngine()
		e.Rand = rand.New(rand.NewSource(seed))
		if err := e.Reduce(sol); err != nil {
			return false
		}
		return sol.Len() == 2 && sol.Contains(Int(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: reduction firing count for getMax is exactly n-1 (each firing
// removes one atom): the engine does no redundant work.
func TestQuickGetMaxStepCount(t *testing.T) {
	maxRule := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	f := func(vals []int8) bool {
		if len(vals) < 2 {
			return true
		}
		atoms := make([]Atom, len(vals))
		for i, v := range vals {
			atoms[i] = Int(v)
		}
		sol := NewSolution(append(atoms, maxRule)...)
		e := NewEngine()
		if err := e.Reduce(sol); err != nil {
			return false
		}
		return e.Steps() == len(vals)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: FormatMolecules/ParseMolecules round-trips arbitrary ground
// molecule lists (the wire format invariant used by the agents).
func TestQuickWireFormatRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		atoms := make([]Atom, r.Intn(5))
		for i := range atoms {
			atoms[i] = genAtom(r, 2)
		}
		back, err := ParseMolecules(FormatMolecules(atoms))
		if err != nil {
			return false
		}
		if len(back) != len(atoms) {
			return false
		}
		for i := range atoms {
			if !atoms[i].Equal(back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
