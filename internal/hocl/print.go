package hocl

import (
	"strings"
)

// writeTuple renders a tuple, parenthesising nested tuples so that
// A:(B:C) round-trips unambiguously.
func writeTuple(b *strings.Builder, t Tuple) {
	for i, e := range t {
		if i > 0 {
			b.WriteByte(':')
		}
		if nested, ok := e.(Tuple); ok {
			b.WriteByte('(')
			writeTuple(b, nested)
			b.WriteByte(')')
			continue
		}
		b.WriteString(e.String())
	}
}

func writeList(b *strings.Builder, l List) {
	b.WriteByte('[')
	for i, e := range l {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	b.WriteByte(']')
}

func writeSolution(b *strings.Builder, s *Solution) {
	b.WriteByte('<')
	for i := 0; i < s.Len(); i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(s.At(i).String())
	}
	b.WriteByte('>')
}

// FormatMolecules renders atoms as a comma-separated molecule list — the
// inverse of ParseMolecules and the wire format for inter-agent messages.
func FormatMolecules(atoms []Atom) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}

// Pretty renders a solution with indentation for human consumption (logs,
// CLI output). The output is still parseable.
func Pretty(a Atom) string {
	var b strings.Builder
	prettyAtom(&b, a, 0)
	return b.String()
}

func prettyAtom(b *strings.Builder, a Atom, depth int) {
	sol, ok := a.(*Solution)
	if !ok || sol.Len() == 0 {
		b.WriteString(a.String())
		return
	}
	indent := strings.Repeat("  ", depth+1)
	b.WriteString("<\n")
	for i := 0; i < sol.Len(); i++ {
		b.WriteString(indent)
		prettyAtom(b, sol.At(i), depth+1)
		if i < sol.Len()-1 {
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteByte('>')
}
