package hocl

// This file is the expression compiler: the guard and product side of the
// compilation story that matcher.go tells for patterns. Expressions are
// immutable once a rule is built, so each *Rule compiles its guard and
// product trees once (Rule.eprograms, same sync.Once idiom as
// Rule.program) into a flat instruction sequence executed by the
// iterative stack machine in evm.go. The tree-walker in expr.go stays as
// the semantic reference: FuzzExprDifferential pins the two paths to
// byte-identical results and errors.
//
// Two compilation contexts mirror the walker's two entry points:
//
//   - scalar (EvalScalar): the expression must leave exactly one atom on
//     the value stack. Omega references compile to an instruction that
//     always fails, matching the walker's runtime error.
//   - element (EvalElems): the expression may leave any number of atoms —
//     omega references splice, calls splice their multi-atom results —
//     and every atom crossing out of the binding or a function is
//     snapshotted (copy-on-write at the Solution boundary), except
//     freshly constructed composites whose parts were already
//     snapshotted by their own element compilation.
//
// Composite constructors (tuple/list/solution/call arguments) bracket
// their element programs with eMark/eTuple-style pairs: eMark records the
// value-stack height, the constructor pops everything above it. Snapshot
// placement is decided at compile time: a literal in element position
// gets a trailing eSnap only if it actually contains a solution, and
// binop/unop results are always scalar kinds, so they never need one.

// eop is the opcode of one expression instruction.
type eop uint8

const (
	eLit        eop = iota // push val
	eVarScalar             // push the atom bound to name
	eVarElem               // push Snapshot of the atom bound to name
	eOmegaScalar           // always errors: omega variable in scalar position
	eSplice                // push Snapshot of each atom of the rest bound to name
	eSnap                  // replace top of stack with its Snapshot
	eMark                  // record value-stack height for a constructor
	eCallCheck             // verify the function exists before evaluating args
	eCallScalar            // pop mark; call name(stack[mark:]); require 1 atom; push it
	eCallElems             // pop mark; call; push Snapshot of each result atom
	eTuple                 // pop mark; stack[mark:] becomes a Tuple (arity >= 2)
	eList                  // pop mark; stack[mark:] becomes a List
	eSol                   // pop mark; stack[mark:] becomes a fresh *Solution
	eBinop                 // pop r, l; push applyBinop result
	eUnop                  // pop v; push applyUnop result
	eAndJmp                // top must be Bool; false: jump tgt keeping it; true: pop
	eOrJmp                 // top must be Bool; true: jump tgt keeping it; false: pop
	eBoolRight             // top must be Bool (right operand of && / ||)
	eBadExpr               // unknown expression type
)

// einstr is one expression instruction. The operand fields are a union:
// each opcode reads the ones documented next to it above. src is the
// originating expression, carried for error fidelity with the
// tree-walker (the machine's EvalError values reference the same node).
type einstr struct {
	op   eop
	tgt  int    // eAndJmp/eOrJmp jump target
	name string // variable or function name
	val  Atom   // eLit value
	src  Expr
}

// compileGuard compiles a guard expression to a scalar program. A nil
// guard compiles to an empty program, which evalGuard treats as true.
func compileGuard(e Expr) []einstr {
	if e == nil {
		return nil
	}
	return compileScalar(nil, e)
}

// compileProducts compiles a product expression list to an element
// program: running it leaves the produced atoms on the value stack in
// insertion order.
func compileProducts(elems []Expr) []einstr {
	var p []einstr
	for _, e := range elems {
		p = compileElem(p, e)
	}
	return p
}

// compileScalar emits instructions that leave exactly one atom on the
// stack, mirroring EvalScalar case by case.
func compileScalar(p []einstr, e Expr) []einstr {
	switch x := e.(type) {
	case *ELit:
		return append(p, einstr{op: eLit, val: x.Val, src: e})
	case *EVar:
		if x.Omega {
			return append(p, einstr{op: eOmegaScalar, src: e})
		}
		return append(p, einstr{op: eVarScalar, name: x.Name, src: e})
	case *ECall:
		return compileCall(p, x, eCallScalar)
	case *ETuple:
		p = append(p, einstr{op: eMark})
		for _, el := range x.Elems {
			p = compileElem(p, el)
		}
		return append(p, einstr{op: eTuple, src: e})
	case *EList:
		p = append(p, einstr{op: eMark})
		for _, el := range x.Elems {
			p = compileElem(p, el)
		}
		return append(p, einstr{op: eList, src: e})
	case *ESolution:
		p = append(p, einstr{op: eMark})
		for _, el := range x.Elems {
			p = compileElem(p, el)
		}
		return append(p, einstr{op: eSol, src: e})
	case *EBinop:
		if x.Op == "&&" || x.Op == "||" {
			op := eAndJmp
			if x.Op == "||" {
				op = eOrJmp
			}
			p = compileScalar(p, x.L)
			j := len(p)
			p = append(p, einstr{op: op, src: e})
			p = compileScalar(p, x.R)
			p = append(p, einstr{op: eBoolRight, src: e})
			p[j].tgt = len(p)
			return p
		}
		p = compileScalar(p, x.L)
		p = compileScalar(p, x.R)
		return append(p, einstr{op: eBinop, src: e})
	case *EUnop:
		p = compileScalar(p, x.X)
		return append(p, einstr{op: eUnop, src: e})
	default:
		return append(p, einstr{op: eBadExpr, src: e})
	}
}

// compileElem emits instructions for one element-position expression,
// mirroring EvalElems: omegas and calls splice, and every atom leaving
// the binding or a function is snapshotted. Composites need no snapshot
// (their parts were snapshotted when compiled), and neither do literals
// without a solution inside or binop/unop results (always scalar kinds):
// Snapshot would return them unchanged.
func compileElem(p []einstr, e Expr) []einstr {
	switch x := e.(type) {
	case *EVar:
		if x.Omega {
			return append(p, einstr{op: eSplice, name: x.Name, src: e})
		}
		return append(p, einstr{op: eVarElem, name: x.Name, src: e})
	case *ECall:
		return compileCall(p, x, eCallElems)
	case *ETuple, *EList, *ESolution:
		return compileScalar(p, e)
	case *ELit:
		p = append(p, einstr{op: eLit, val: x.Val, src: e})
		if _, hasSol := snapshotAtom(x.Val); hasSol {
			p = append(p, einstr{op: eSnap})
		}
		return p
	default:
		return compileScalar(p, e)
	}
}

// compileCall emits the call sequence shared by both contexts. The
// leading eCallCheck reproduces the walker's error precedence: a missing
// registry or unknown function is reported before any argument error,
// even though the compiled program evaluates arguments first.
func compileCall(p []einstr, x *ECall, op eop) []einstr {
	p = append(p, einstr{op: eCallCheck, name: x.Fn, src: x})
	p = append(p, einstr{op: eMark})
	for _, a := range x.Args {
		p = compileElem(p, a)
	}
	return append(p, einstr{op: op, name: x.Fn, src: x})
}
