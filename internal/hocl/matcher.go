package hocl

import "math/rand"

// This file is the rule matcher: a backtracking machine that matches a
// rule's pattern list against the atoms of a solution.
//
// Patterns are immutable, so each *Rule compiles its pattern list once
// (Rule.program) into a flat instruction sequence; matching then runs as
// an iterative loop over a matcher-owned frame stack instead of the
// nested closures of the earlier continuation-passing matcher, whose
// per-pattern-level allocations dominated the reduction hot path.
//
// The machine has four stacks, all owned by the matcher and reused
// across matches:
//
//   - data:   atoms still to be destructured (opTuple pushes a tuple's
//     elements, the following instructions pop them);
//   - ctxs:   open solution contexts — index 0 is the top-level solution,
//     opEnterSol opens one per non-trivial sub-solution pattern. A
//     context is popped only by backtracking, never by opExitSol: a
//     completed sub-match must stay revisitable while later patterns run;
//   - frames: one choice point per opSelect, recording where to resume
//     (pc, next candidate) and what to roll back (binding mark, trail
//     mark, data length, context depth);
//   - trail:  every used-flag set since the last choice point, so
//     backtracking can clear candidate reservations in any context.
//
// Candidate order is how the engine injects chemical non-determinism:
// the top-level context iterates the engine-supplied order permutation,
// and every sub-solution context draws its own permutation from the
// engine's Rand (nil keeps natural order at every level).

// mop is the opcode of one matcher instruction.
type mop uint8

const (
	// opSelect is the machine's only choice point: reserve an unused atom
	// of the active solution context and push it on the data stack.
	opSelect mop = iota
	opBindVar  // pop atom; bind a variable, or compare non-linearly
	opConst    // pop atom; structural equality with a constant
	opRuleRef  // pop atom; must be a *Rule carrying the given name
	opTuple    // pop atom; must be a Tuple of arity n; push its elements
	opList     // pop atom; must be a List of arity n; push its elements
	opSolEmpty // pop atom; must be an inert, empty *Solution   (<>)
	opSolRest  // pop atom; inert *Solution, whole contents -> rest (<*w>)
	opEnterSol // pop atom; inert *Solution of viable arity; open a context
	opExitSol  // close the active context, leftovers -> rest (or none)
	opFail     // always fails (omega outside a solution rest position)
)

// minstr is one matcher instruction. The operand fields are a union:
// each opcode reads the ones documented next to it above.
type minstr struct {
	op   mop
	n    int    // opTuple/opList arity, opEnterSol element count
	name string // variable, rule or rest name
	val  Atom   // opConst value
}

// compilePatterns flattens a rule's pattern list into the instruction
// sequence executed by matcher.run. Patterns compile in list order and
// pre-order within each tree, which reproduces the traversal order of
// the recursive matcher exactly — the differential fuzz test
// (FuzzMatcherDifferential) pins that equivalence.
func compilePatterns(pats []Pattern) []minstr {
	var ins []minstr
	for _, p := range pats {
		ins = append(ins, minstr{op: opSelect})
		ins = compilePattern(ins, p)
	}
	return ins
}

func compilePattern(ins []minstr, p Pattern) []minstr {
	switch pt := p.(type) {
	case *PVar:
		return append(ins, minstr{op: opBindVar, name: pt.Name})
	case *PConst:
		return append(ins, minstr{op: opConst, val: pt.Val})
	case *PRuleRef:
		return append(ins, minstr{op: opRuleRef, name: pt.Name})
	case *PTuple:
		ins = append(ins, minstr{op: opTuple, n: len(pt.Elems)})
		for _, e := range pt.Elems {
			ins = compilePattern(ins, e)
		}
		return ins
	case *PList:
		ins = append(ins, minstr{op: opList, n: len(pt.Elems)})
		for _, e := range pt.Elems {
			ins = compilePattern(ins, e)
		}
		return ins
	case *PSolution:
		if len(pt.Elems) == 0 {
			// The ubiquitous exact-empty (<>) and rest-only (<*w>)
			// patterns need no context or backtracking state.
			if pt.Rest == "" {
				return append(ins, minstr{op: opSolEmpty})
			}
			return append(ins, minstr{op: opSolRest, name: pt.Rest})
		}
		ins = append(ins, minstr{op: opEnterSol, n: len(pt.Elems), name: pt.Rest})
		for _, e := range pt.Elems {
			ins = append(ins, minstr{op: opSelect})
			ins = compilePattern(ins, e)
		}
		return append(ins, minstr{op: opExitSol, name: pt.Rest})
	case *POmega:
		// An omega outside a solution pattern would capture "the rest of
		// the enclosing solution", which HOCL reserves for explicit
		// sub-solution patterns; the parser rejects the top-level case
		// and nested occurrences (e.g. inside a tuple) never match.
		return append(ins, minstr{op: opFail})
	default:
		return append(ins, minstr{op: opFail})
	}
}

// solCtx is an open solution context: the multiset an opSelect draws
// candidates from, its reservation flags, and its candidate order.
type solCtx struct {
	sub  *Solution
	used []bool
	ord  []int // candidate permutation; nil means natural order
	prev int   // ctxs index active when this context was opened
}

// mframe is one choice point: enough to re-run its opSelect with the
// next candidate after rolling back everything attempted since.
type mframe struct {
	pc        int // instruction index of the opSelect
	cand      int // next candidate ordinal to try
	cur       int // active context at the choice point
	envMark   int
	trailMark int
	dataLen   int
	ctxLen    int
}

// trailRef records one used-flag reservation for rollback.
type trailRef struct{ ctx, idx int }

// Match is the result of matching a rule against a solution: the variable
// binding plus the indices of the consumed top-level atoms.
type Match struct {
	Env      *Binding
	Consumed []int // indices into the solution, ascending
}

// MatchRule searches sol for atoms satisfying r's pattern and guard. The
// rule's own atom (at index selfIdx, -1 if not applicable) is excluded
// from candidates: a rule does not consume itself. Candidates are tried
// in the order given by order (a permutation of sol indices; nil means
// natural order), which is how the engine injects chemical
// non-determinism. Returns nil when no match exists.
func MatchRule(r *Rule, sol *Solution, selfIdx int, funcs *Funcs, order []int) *Match {
	var m matcher
	m.reset(sol, funcs, order, nil)
	res := m.matchRule(r, selfIdx)
	metGuardRejections.Add(m.guardRejects)
	return res
}

type matcher struct {
	sol   *Solution
	used  []bool // top-level reservation flags (context 0)
	env   *Binding
	funcs *Funcs
	order []int
	// rng, when non-nil, draws a candidate permutation per sub-solution
	// context, extending the engine's chemical non-determinism below the
	// top level. The engine wires its own Rand through reset.
	rng *rand.Rand

	data   []Atom
	frames []mframe
	trail  []trailRef
	ctxs   []solCtx
	cur    int // ctxs index opSelect draws from

	// usedPool / ordPool recycle sub-context state by context stack
	// position: two contexts never share a position while both are live,
	// so the engine's hot loop opens contexts without allocating.
	usedPool [][]bool
	ordPool  [][]int
	// eqScratch backs restEqual's seen-flags, pooled for the same reason.
	eqScratch []bool

	// vm is the matcher-owned expression machine: guard programs run on
	// it in quiet mode after every complete candidate selection, and the
	// engine reuses the same machine for product evaluation, so neither
	// a failed guard nor a firing allocates evaluation state.
	vm evalVM

	// guardRejects accumulates guard rejections locally; the engine
	// flushes it to the package metrics once per Reduce, keeping the
	// match loop free of atomics.
	guardRejects int64
}

// reset prepares the matcher for a fresh match, reusing its slices and
// binding so the engine's hot loop does not allocate per candidate rule.
func (m *matcher) reset(sol *Solution, funcs *Funcs, order []int, rng *rand.Rand) {
	m.sol = sol
	m.funcs = funcs
	m.order = order
	m.rng = rng
	n := sol.Len()
	if cap(m.used) < n {
		m.used = make([]bool, n)
	} else {
		m.used = m.used[:n]
		clear(m.used)
	}
	if m.env == nil {
		m.env = NewBinding()
	} else {
		m.env.reset()
	}
}

// matchRule runs the match for r against the prepared solution. The
// returned Match shares the matcher's binding: it is valid until the next
// reset.
func (m *matcher) matchRule(r *Rule, selfIdx int) *Match {
	if selfIdx >= 0 && selfIdx < m.sol.Len() {
		m.used[selfIdx] = true
	}
	gprog, _ := r.eprograms()
	if !m.run(r.program(), gprog) {
		return nil
	}
	return &Match{Env: m.env, Consumed: m.consumedIndices(selfIdx)}
}

// run executes the compiled instruction sequence to the first complete
// match that also satisfies the guard (a compiled expression program,
// empty when the rule has none), backtracking through choice points on
// any failure.
func (m *matcher) run(prog []minstr, gprog []einstr) bool {
	m.data = m.data[:0]
	m.frames = m.frames[:0]
	m.trail = m.trail[:0]
	m.ctxs = append(m.ctxs[:0], solCtx{sub: m.sol, used: m.used, ord: m.order})
	m.cur = 0

	pc := 0
	for {
		if pc == len(prog) {
			if m.vm.evalGuard(gprog, m.env, m.funcs) {
				return true
			}
			m.guardRejects++
			if !m.backtrack(&pc) {
				return false
			}
			continue
		}
		ins := &prog[pc]
		ok := false
		switch ins.op {
		case opSelect:
			m.frames = append(m.frames, mframe{
				pc:        pc,
				cur:       m.cur,
				envMark:   m.env.mark(),
				trailMark: len(m.trail),
				dataLen:   len(m.data),
				ctxLen:    len(m.ctxs),
			})
			// backtrack tries the fresh frame's first candidate: the
			// rollback to its just-recorded marks is a no-op.
			if !m.backtrack(&pc) {
				return false
			}
			continue

		case opBindVar:
			a := m.pop()
			if prev, bound := m.env.Atom(ins.name); bound {
				ok = prev.Equal(a)
			} else {
				m.env.bindAtom(ins.name, a)
				ok = true
			}

		case opConst:
			ok = ins.val.Equal(m.pop())

		case opRuleRef:
			r, is := m.pop().(*Rule)
			ok = is && r.Name == ins.name

		case opTuple:
			if t, is := m.pop().(Tuple); is && len(t) == ins.n {
				for i := len(t) - 1; i >= 0; i-- {
					m.data = append(m.data, t[i])
				}
				ok = true
			}

		case opList:
			if l, is := m.pop().(List); is && len(l) == ins.n {
				for i := len(l) - 1; i >= 0; i-- {
					m.data = append(m.data, l[i])
				}
				ok = true
			}

		case opSolEmpty:
			s, is := m.pop().(*Solution)
			ok = is && s.Inert() && s.Len() == 0

		case opSolRest:
			s, is := m.pop().(*Solution)
			ok = is && s.Inert() && m.bindRest(ins.name, s.Atoms())

		case opEnterSol:
			// HOCL semantics: sub-solutions are matched only once inert.
			// The arity check prunes sub-solutions that cannot possibly
			// place every element pattern (exactly n atoms for an exact
			// pattern, at least n with a rest).
			s, is := m.pop().(*Solution)
			if is && s.Inert() && (s.Len() == ins.n || (ins.name != "" && s.Len() > ins.n)) {
				depth := len(m.ctxs)
				m.ctxs = append(m.ctxs, solCtx{
					sub:  s,
					used: m.subUsed(depth, s.Len()),
					ord:  m.subOrder(depth, s.Len()),
					prev: m.cur,
				})
				m.cur = depth
				ok = true
			}

		case opExitSol:
			ctx := &m.ctxs[m.cur]
			if ok = m.closeSol(ctx, ins.name); ok {
				m.cur = ctx.prev
			}

		case opFail:
			// ok stays false
		}
		if ok {
			pc++
			continue
		}
		if !m.backtrack(&pc) {
			return false
		}
	}
}

// backtrack resumes the most recent choice point with its next untried
// candidate, rolling back bindings, reservations, data and contexts to
// the choice point first and popping exhausted frames. It reports false
// when no choice remains anywhere.
func (m *matcher) backtrack(pc *int) bool {
	for len(m.frames) > 0 {
		f := &m.frames[len(m.frames)-1]
		m.env.undo(f.envMark)
		for i := len(m.trail) - 1; i >= f.trailMark; i-- {
			t := m.trail[i]
			m.ctxs[t.ctx].used[t.idx] = false
		}
		m.trail = m.trail[:f.trailMark]
		m.data = m.data[:f.dataLen]
		m.ctxs = m.ctxs[:f.ctxLen]
		m.cur = f.cur
		ctx := &m.ctxs[f.cur]
		n := ctx.sub.Len()
		for f.cand < n {
			i := f.cand
			if ctx.ord != nil {
				i = ctx.ord[i]
			}
			f.cand++
			if ctx.used[i] {
				continue
			}
			ctx.used[i] = true
			m.trail = append(m.trail, trailRef{ctx: f.cur, idx: i})
			m.data = append(m.data, ctx.sub.At(i))
			*pc = f.pc + 1
			return true
		}
		m.frames = m.frames[:len(m.frames)-1]
	}
	return false
}

func (m *matcher) pop() Atom {
	a := m.data[len(m.data)-1]
	m.data = m.data[:len(m.data)-1]
	return a
}

// closeSol finishes a sub-solution pattern: the context's unreserved
// atoms either bind to the rest variable or must not exist.
func (m *matcher) closeSol(ctx *solCtx, rest string) bool {
	free := 0
	for _, u := range ctx.used {
		if !u {
			free++
		}
	}
	if rest == "" {
		return free == 0
	}
	if free == 0 {
		return m.bindRest(rest, nil)
	}
	out := make([]Atom, 0, free)
	for i, u := range ctx.used {
		if !u {
			out = append(out, ctx.sub.At(i))
		}
	}
	return m.bindRest(rest, out)
}

// bindRest binds a rest capture, or — for a non-linear omega — compares
// it against the earlier capture.
func (m *matcher) bindRest(name string, rest []Atom) bool {
	if prev, bound := m.env.Rest(name); bound {
		return m.restEqual(prev, rest)
	}
	m.env.bindRest(name, rest)
	return true
}

// restEqual reports multiset equality of two rest captures. The
// seen-flags scratch is matcher-owned: non-linear omega re-checks sit on
// the reduction hot path and must not allocate.
func (m *matcher) restEqual(a, b []Atom) bool {
	if len(a) != len(b) {
		return false
	}
	if cap(m.eqScratch) < len(b) {
		m.eqScratch = make([]bool, len(b))
	}
	seen := m.eqScratch[:len(b)]
	clear(seen)
outer:
	for _, x := range a {
		for j, y := range b {
			if !seen[j] && x.Equal(y) {
				seen[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// subUsed returns a cleared reservation slice for a sub context opened
// at ctxs position depth. Positions are never shared by live contexts,
// so pooling by position is race-free within one matcher.
func (m *matcher) subUsed(depth, n int) []bool {
	d := depth - 1 // position 0 is the top level, which owns m.used
	for len(m.usedPool) <= d {
		m.usedPool = append(m.usedPool, nil)
	}
	buf := m.usedPool[d]
	if cap(buf) < n {
		buf = make([]bool, n)
	} else {
		buf = buf[:n]
		clear(buf)
	}
	m.usedPool[d] = buf
	return buf
}

// subOrder draws a fresh candidate permutation for a sub context opened
// at ctxs position depth, or nil (natural order) without an rng. This is
// where the engine's chemical non-determinism reaches nested solutions:
// re-entering a context after backtracking redraws, which is harmless —
// any permutation is exhaustively iterated.
func (m *matcher) subOrder(depth, n int) []int {
	if m.rng == nil || n < 2 {
		return nil
	}
	d := depth - 1
	for len(m.ordPool) <= d {
		m.ordPool = append(m.ordPool, nil)
	}
	s := m.ordPool[d]
	if cap(s) < n {
		s = make([]int, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := m.rng.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
	m.ordPool[d] = s
	return s
}

// consumedIndices collects the reserved top-level indices, pre-sized
// from the reservation count: the result escapes into the Match, so it
// is the one allocation a successful match cannot avoid.
func (m *matcher) consumedIndices(selfIdx int) []int {
	n := 0
	for i, u := range m.used {
		if u && i != selfIdx {
			n++
		}
	}
	out := make([]int, 0, n)
	for i, u := range m.used {
		if u && i != selfIdx {
			out = append(out, i)
		}
	}
	return out
}
