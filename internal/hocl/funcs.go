package hocl

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Func is an external function callable from rule guards and products.
// It receives evaluated argument atoms and returns the atoms to splice
// into the enclosing molecule list. The paper's HOCL interpreter calls
// Java methods this way (§III-A); GinFlow uses external functions for
// list construction, service invocation (invoke) and message sending.
//
// The args slice is only valid for the duration of the call: the
// compiled evaluator passes a window of its pooled value stack. A Func
// that needs to keep the arguments must copy them (returning args, or a
// subslice of it, as the result is fine — the evaluator reads results
// before reusing the window).
type Func func(args []Atom) ([]Atom, error)

// Funcs is a registry of external functions. The zero value is empty and
// ready to use; NewFuncs returns a registry preloaded with the built-ins.
// Registries are safe for concurrent lookup and registration.
type Funcs struct {
	mu sync.RWMutex
	m  map[string]Func
}

// NewFuncs returns a registry containing the built-in functions:
//
//	list(a1, ..., an)   -> [a1, ..., an]          (paper footnote 4)
//	len(x)              -> element count of a list, solution, tuple or string
//	head(l), tail(l)    -> first element / remainder of a list
//	append(l, a...)     -> list with atoms appended
//	concat(l1, l2)      -> concatenated lists
//	str(a...)           -> string rendering of atoms, concatenated
//	flatten(l)          -> splices a list's elements into the molecule list
func NewFuncs() *Funcs {
	f := &Funcs{m: map[string]Func{}}
	f.registerBuiltins()
	f.registerListBuiltins()
	return f
}

// Register adds (or replaces) a function under the given name.
func (f *Funcs) Register(name string, fn Func) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = map[string]Func{}
	}
	f.m[name] = fn
}

// Lookup returns the function registered under name.
func (f *Funcs) Lookup(name string) (Func, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	fn, ok := f.m[name]
	return fn, ok
}

// Names returns the sorted registered function names.
func (f *Funcs) Names() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.m))
	for n := range f.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CloneInto copies every registration into dst (used by agents that extend
// the shared built-ins with instance-bound functions).
func (f *Funcs) CloneInto(dst *Funcs) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for n, fn := range f.m {
		dst.Register(n, fn)
	}
}

func (f *Funcs) registerBuiltins() {
	f.Register("list", func(args []Atom) ([]Atom, error) {
		return []Atom{List(append([]Atom(nil), args...))}, nil
	})
	f.Register("len", func(args []Atom) ([]Atom, error) {
		if len(args) != 1 {
			return nil, fmt.Errorf("len: want 1 argument, got %d", len(args))
		}
		switch v := args[0].(type) {
		case List:
			return []Atom{Int(len(v))}, nil
		case Tuple:
			return []Atom{Int(len(v))}, nil
		case *Solution:
			return []Atom{Int(v.Len())}, nil
		case Str:
			return []Atom{Int(len(v))}, nil
		default:
			return nil, fmt.Errorf("len: cannot measure %s", args[0].Kind())
		}
	})
	f.Register("head", func(args []Atom) ([]Atom, error) {
		l, err := oneList("head", args)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return nil, fmt.Errorf("head: empty list")
		}
		return []Atom{l[0]}, nil
	})
	f.Register("tail", func(args []Atom) ([]Atom, error) {
		l, err := oneList("tail", args)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return nil, fmt.Errorf("tail: empty list")
		}
		return []Atom{List(append([]Atom(nil), l[1:]...))}, nil
	})
	f.Register("append", func(args []Atom) ([]Atom, error) {
		if len(args) < 1 {
			return nil, fmt.Errorf("append: want at least 1 argument")
		}
		l, ok := args[0].(List)
		if !ok {
			return nil, fmt.Errorf("append: first argument is %s, want list", args[0].Kind())
		}
		out := append(append(List(nil), l...), args[1:]...)
		return []Atom{out}, nil
	})
	f.Register("concat", func(args []Atom) ([]Atom, error) {
		var out List
		for i, a := range args {
			l, ok := a.(List)
			if !ok {
				return nil, fmt.Errorf("concat: argument %d is %s, want list", i+1, a.Kind())
			}
			out = append(out, l...)
		}
		return []Atom{out}, nil
	})
	f.Register("str", func(args []Atom) ([]Atom, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			if s, ok := a.(Str); ok {
				parts[i] = string(s)
			} else {
				parts[i] = a.String()
			}
		}
		return []Atom{Str(strings.Join(parts, ""))}, nil
	})
	f.Register("flatten", func(args []Atom) ([]Atom, error) {
		l, err := oneList("flatten", args)
		if err != nil {
			return nil, err
		}
		return append([]Atom(nil), l...), nil
	})
}

func oneList(fn string, args []Atom) (List, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("%s: want 1 argument, got %d", fn, len(args))
	}
	l, ok := args[0].(List)
	if !ok {
		return nil, fmt.Errorf("%s: argument is %s, want list", fn, args[0].Kind())
	}
	return l, nil
}
