package hocl

import (
	"encoding/binary"
	"fmt"
	"math"
)

// This file implements the compact binary atom codec: the record format
// of the durable session journal (internal/journal) and the seed for any
// future binary network transport. EncodeAtoms/DecodeAtoms round-trip a
// frozen molecule list losslessly — including solution inertness flags
// and exact float bits, which the textual wire format does not preserve
// — and a decoded tree compares Equal to the source of its encoding.
//
// Layout: one version byte, then a uvarint molecule count, then each
// atom as a one-byte tag followed by a tag-specific payload. Sequences
// (tuples, lists, solutions) carry a uvarint element count and recurse.
// Rules travel as their name plus rendered body and are re-parsed on
// decode (the same path the textual format uses), so only rules whose
// bodies are self-contained — which includes every rule GinFlow
// generates — survive the trip; a rule whose body references a named
// rule scope fails to decode with an error, never silently.

// WireVersion is the codec version emitted by EncodeAtoms and accepted
// by DecodeAtoms. A version bump invalidates persisted journals, so the
// layout favours extension (new tags) over relayout.
const WireVersion = 1

// Atom tags of the binary codec. Bool folds its value into the tag, and
// Solution splits by inertness, so the five scalar kinds and the four
// structured kinds fit a dense tag space with no flag bytes.
const (
	wireInt byte = iota
	wireFloat
	wireStr
	wireBoolFalse
	wireBoolTrue
	wireIdent
	wireTuple
	wireList
	wireSolution
	wireSolutionInert
	wireRule
)

// wireMaxDepth bounds decoder recursion: deeper nesting than this is
// rejected as corrupt rather than risking a stack overflow on a
// malformed (or adversarial) record.
const wireMaxDepth = 1000

// EncodeAtoms renders a molecule list in the binary wire format.
// The atoms must be frozen (the encoder reads, never mutates).
func EncodeAtoms(atoms []Atom) []byte {
	// Pre-size for the common journal record: mostly small scalars.
	dst := make([]byte, 0, 16+16*len(atoms))
	return AppendAtoms(dst, atoms)
}

// AppendAtoms appends the binary encoding of a molecule list to dst and
// returns the extended slice — the allocation-free form of EncodeAtoms
// for callers that reuse buffers.
func AppendAtoms(dst []byte, atoms []Atom) []byte {
	dst = append(dst, WireVersion)
	dst = binary.AppendUvarint(dst, uint64(len(atoms)))
	for _, a := range atoms {
		dst = appendAtom(dst, a)
	}
	return dst
}

func appendAtom(dst []byte, a Atom) []byte {
	switch v := a.(type) {
	case Int:
		dst = append(dst, wireInt)
		dst = binary.AppendVarint(dst, int64(v))
	case Float:
		dst = append(dst, wireFloat)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(float64(v)))
	case Str:
		dst = append(dst, wireStr)
		dst = appendWireString(dst, string(v))
	case Bool:
		if v {
			dst = append(dst, wireBoolTrue)
		} else {
			dst = append(dst, wireBoolFalse)
		}
	case Ident:
		dst = append(dst, wireIdent)
		dst = appendWireString(dst, string(v))
	case Tuple:
		dst = append(dst, wireTuple)
		dst = appendWireSeq(dst, []Atom(v))
	case List:
		dst = append(dst, wireList)
		dst = appendWireSeq(dst, []Atom(v))
	case *Solution:
		if v.Inert() {
			dst = append(dst, wireSolutionInert)
		} else {
			dst = append(dst, wireSolution)
		}
		dst = appendWireSeq(dst, v.Atoms())
	case *Rule:
		dst = append(dst, wireRule)
		dst = appendWireString(dst, v.Name)
		dst = appendWireString(dst, v.Body())
	default:
		// The Atom interface is closed over the nine kinds above; a new
		// kind must teach the codec about itself before it can travel.
		panic(fmt.Sprintf("hocl: EncodeAtoms: unencodable atom kind %v", a.Kind()))
	}
	return dst
}

func appendWireString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendWireSeq(dst []byte, elems []Atom) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(elems)))
	for _, e := range elems {
		dst = appendAtom(dst, e)
	}
	return dst
}

// DecodeAtoms decodes a molecule list from the binary wire format,
// consuming the whole buffer. Decoded atoms are freshly built (nothing
// aliases data): solutions carry their encoded inertness, floats and
// strings are bit-exact, and rules are re-parsed from their rendered
// bodies. Corrupt input — bad version, truncation, trailing garbage,
// over-deep nesting, an unparseable rule — returns an error; DecodeAtoms
// never panics on arbitrary bytes.
func DecodeAtoms(data []byte) ([]Atom, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("hocl: DecodeAtoms: empty input")
	}
	if data[0] != WireVersion {
		return nil, fmt.Errorf("hocl: DecodeAtoms: wire version %d, want %d", data[0], WireVersion)
	}
	d := wireDecoder{buf: data, pos: 1}
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	atoms, err := d.seq(n, 0)
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("hocl: DecodeAtoms: %d trailing bytes", len(d.buf)-d.pos)
	}
	return atoms, nil
}

type wireDecoder struct {
	buf []byte
	pos int
}

func (d *wireDecoder) errf(format string, args ...any) error {
	return fmt.Errorf("hocl: DecodeAtoms: byte %d: %s", d.pos, fmt.Sprintf(format, args...))
}

func (d *wireDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errf("bad uvarint")
	}
	d.pos += n
	return v, nil
}

func (d *wireDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.buf[d.pos:])
	if n <= 0 {
		return 0, d.errf("bad varint")
	}
	d.pos += n
	return v, nil
}

func (d *wireDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return "", d.errf("string length %d overruns buffer", n)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// seq decodes n atoms at the given nesting depth. The count is validated
// against the bytes remaining (every atom costs at least one tag byte),
// so a corrupt count fails fast instead of allocating gigabytes.
func (d *wireDecoder) seq(n uint64, depth int) ([]Atom, error) {
	if n > uint64(len(d.buf)-d.pos) {
		return nil, d.errf("element count %d overruns buffer", n)
	}
	if n == 0 {
		return nil, nil
	}
	atoms := make([]Atom, 0, n)
	for i := uint64(0); i < n; i++ {
		a, err := d.atom(depth)
		if err != nil {
			return nil, err
		}
		atoms = append(atoms, a)
	}
	return atoms, nil
}

func (d *wireDecoder) atom(depth int) (Atom, error) {
	if depth > wireMaxDepth {
		return nil, d.errf("nesting deeper than %d", wireMaxDepth)
	}
	if d.pos >= len(d.buf) {
		return nil, d.errf("truncated atom")
	}
	tag := d.buf[d.pos]
	d.pos++
	switch tag {
	case wireInt:
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		return Int(v), nil
	case wireFloat:
		if len(d.buf)-d.pos < 8 {
			return nil, d.errf("truncated float")
		}
		bits := binary.LittleEndian.Uint64(d.buf[d.pos:])
		d.pos += 8
		return Float(math.Float64frombits(bits)), nil
	case wireStr:
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		return Str(s), nil
	case wireBoolFalse:
		return Bool(false), nil
	case wireBoolTrue:
		return Bool(true), nil
	case wireIdent:
		s, err := d.str()
		if err != nil {
			return nil, err
		}
		return Ident(s), nil
	case wireTuple, wireList, wireSolution, wireSolutionInert:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		elems, err := d.seq(n, depth+1)
		if err != nil {
			return nil, err
		}
		switch tag {
		case wireTuple:
			return Tuple(elems), nil
		case wireList:
			return List(elems), nil
		default:
			sol := NewSolution(elems...)
			sol.SetInert(tag == wireSolutionInert)
			return sol, nil
		}
	case wireRule:
		name, err := d.str()
		if err != nil {
			return nil, err
		}
		body, err := d.str()
		if err != nil {
			return nil, err
		}
		r, err := ParseRuleBody(name, body, nil)
		if err != nil {
			return nil, d.errf("rule %q: %v", name, err)
		}
		return r, nil
	default:
		return nil, d.errf("unknown atom tag %d", tag)
	}
}
