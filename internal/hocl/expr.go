package hocl

import (
	"fmt"
	"strings"
)

// Expr is a guard or product expression evaluated under a binding produced
// by pattern matching. Products of a rule are expressions; evaluating them
// yields the molecules inserted into the solution.
type Expr interface {
	exprNode()
	// String renders the expression in parseable syntax.
	String() string
}

// ELit is a literal atom (including rules embedded by the parser when a
// product references a let-bound rule by name).
type ELit struct{ Val Atom }

// EVar references a pattern variable. For an ω variable the reference
// splices the captured atoms into the enclosing element list.
type EVar struct {
	Name  string
	Omega bool
}

// ECall invokes a registered external function with evaluated arguments.
// Paper §III-A: "HOCL can also use external functions"; GinFlow uses them
// for list construction, service invocation and message sending.
type ECall struct {
	Fn   string
	Args []Expr
}

// ETuple builds a Tuple from element expressions.
type ETuple struct{ Elems []Expr }

// EList builds a List from element expressions (ω references splice).
type EList struct{ Elems []Expr }

// ESolution builds a Solution from element expressions (ω references
// splice).
type ESolution struct{ Elems []Expr }

// EBinop is a binary operation: arithmetic (+ - * / %), comparison
// (== != < <= > >=) or boolean (&& ||).
type EBinop struct {
	Op   string
	L, R Expr
}

// EUnop is unary negation (-) or logical not (!).
type EUnop struct {
	Op string
	X  Expr
}

func (*ELit) exprNode()      {}
func (*EVar) exprNode()      {}
func (*ECall) exprNode()     {}
func (*ETuple) exprNode()    {}
func (*EList) exprNode()     {}
func (*ESolution) exprNode() {}
func (*EBinop) exprNode()    {}
func (*EUnop) exprNode()     {}

func (e *ELit) String() string { return e.Val.String() }

func (e *EVar) String() string {
	if e.Omega {
		return "*" + e.Name
	}
	return e.Name
}

func (e *ECall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Fn + "(" + strings.Join(args, ", ") + ")"
}

func (e *ETuple) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = exprTupleElem(el)
	}
	return strings.Join(parts, ":")
}

// exprTupleElem parenthesises tuple elements that would re-associate.
func exprTupleElem(e Expr) string {
	switch e.(type) {
	case *ETuple, *EBinop, *EUnop:
		return "(" + e.String() + ")"
	default:
		return e.String()
	}
}

func (e *EList) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (e *ESolution) String() string {
	parts := make([]string, len(e.Elems))
	for i, el := range e.Elems {
		parts[i] = el.String()
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (e *EBinop) String() string {
	return "(" + e.L.String() + " " + e.Op + " " + e.R.String() + ")"
}

func (e *EUnop) String() string { return e.Op + exprTupleElem(e.X) }

// Binding maps pattern variables to the atoms they captured. Atom
// variables bind one atom; omega variables bind a slice (the "rest" of a
// solution). Bindings use an undo log so the matcher can backtrack.
type Binding struct {
	atoms map[string]Atom
	rests map[string][]Atom
	log   []bindEntry
}

type bindEntry struct {
	name  string
	omega bool
}

// NewBinding returns an empty binding.
func NewBinding() *Binding {
	return &Binding{atoms: map[string]Atom{}, rests: map[string][]Atom{}}
}

// Atom returns the atom bound to name.
func (b *Binding) Atom(name string) (Atom, bool) {
	a, ok := b.atoms[name]
	return a, ok
}

// Rest returns the atoms bound to the omega variable name.
func (b *Binding) Rest(name string) ([]Atom, bool) {
	r, ok := b.rests[name]
	return r, ok
}

func (b *Binding) bindAtom(name string, a Atom) {
	b.atoms[name] = a
	b.log = append(b.log, bindEntry{name, false})
}

func (b *Binding) bindRest(name string, atoms []Atom) {
	b.rests[name] = atoms
	b.log = append(b.log, bindEntry{name, true})
}

// reset empties the binding for reuse, keeping its maps and log capacity.
func (b *Binding) reset() {
	clear(b.atoms)
	clear(b.rests)
	b.log = b.log[:0]
}

// mark returns an undo checkpoint.
func (b *Binding) mark() int { return len(b.log) }

// undo rolls the binding back to a checkpoint.
func (b *Binding) undo(mark int) {
	for i := len(b.log) - 1; i >= mark; i-- {
		e := b.log[i]
		if e.omega {
			delete(b.rests, e.name)
		} else {
			delete(b.atoms, e.name)
		}
	}
	b.log = b.log[:mark]
}

// EvalError reports a failure while evaluating an expression. When the
// failure originated in an external function, Err preserves the cause so
// callers can unwrap domain errors (e.g. an injected agent crash) through
// the interpreter.
type EvalError struct {
	Expr Expr
	Msg  string
	Err  error
}

func (e *EvalError) Error() string {
	return fmt.Sprintf("hocl: eval %s: %s", e.Expr, e.Msg)
}

func (e *EvalError) Unwrap() error { return e.Err }

func evalErrf(e Expr, format string, args ...any) error {
	return &EvalError{Expr: e, Msg: fmt.Sprintf(format, args...)}
}

// EvalScalar evaluates an expression to a single atom. Omega references
// are invalid in scalar position (guards, operator operands).
func EvalScalar(e Expr, env *Binding, funcs *Funcs) (Atom, error) {
	switch x := e.(type) {
	case *ELit:
		return x.Val, nil
	case *EVar:
		if x.Omega {
			return nil, evalErrf(e, "omega variable in scalar position")
		}
		a, ok := env.Atom(x.Name)
		if !ok {
			return nil, evalErrf(e, "unbound variable %q", x.Name)
		}
		return a, nil
	case *ECall:
		out, err := evalCall(x, env, funcs)
		if err != nil {
			return nil, err
		}
		if len(out) != 1 {
			return nil, evalErrf(e, "function %s returned %d atoms in scalar position", x.Fn, len(out))
		}
		return out[0], nil
	case *ETuple:
		elems, err := EvalElems(x.Elems, env, funcs)
		if err != nil {
			return nil, err
		}
		if len(elems) < 2 {
			return nil, evalErrf(e, "tuple needs at least 2 elements, got %d", len(elems))
		}
		return Tuple(elems), nil
	case *EList:
		elems, err := EvalElems(x.Elems, env, funcs)
		if err != nil {
			return nil, err
		}
		return List(elems), nil
	case *ESolution:
		elems, err := EvalElems(x.Elems, env, funcs)
		if err != nil {
			return nil, err
		}
		return NewSolution(elems...), nil
	case *EBinop:
		return evalBinop(x, env, funcs)
	case *EUnop:
		return evalUnop(x, env, funcs)
	default:
		return nil, evalErrf(e, "unknown expression type %T", e)
	}
}

// EvalElems evaluates an element list, splicing omega references and
// multi-atom function results. Every produced atom is snapshotted
// (copy-on-write at the Solution boundary) so products never alias
// consumed molecules: non-solution atoms are immutable and travel by
// reference, solutions get independent shells.
func EvalElems(elems []Expr, env *Binding, funcs *Funcs) ([]Atom, error) {
	var out []Atom
	for _, e := range elems {
		switch x := e.(type) {
		case *EVar:
			if x.Omega {
				rest, ok := env.Rest(x.Name)
				if !ok {
					return nil, evalErrf(e, "unbound omega variable %q", x.Name)
				}
				for _, a := range rest {
					out = append(out, Snapshot(a))
				}
				continue
			}
			a, err := EvalScalar(e, env, funcs)
			if err != nil {
				return nil, err
			}
			out = append(out, Snapshot(a))
		case *ECall:
			atoms, err := evalCall(x, env, funcs)
			if err != nil {
				return nil, err
			}
			for _, a := range atoms {
				out = append(out, Snapshot(a))
			}
		case *ETuple, *EList, *ESolution:
			// Freshly constructed composites: their inner atoms were
			// already snapshotted by the recursive EvalElems, so
			// re-snapshotting would copy every solution shell twice.
			a, err := EvalScalar(e, env, funcs)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
		default:
			a, err := EvalScalar(e, env, funcs)
			if err != nil {
				return nil, err
			}
			out = append(out, Snapshot(a))
		}
	}
	return out, nil
}

func evalCall(x *ECall, env *Binding, funcs *Funcs) ([]Atom, error) {
	if funcs == nil {
		return nil, evalErrf(x, "no function registry for %s", x.Fn)
	}
	fn, ok := funcs.Lookup(x.Fn)
	if !ok {
		return nil, evalErrf(x, "unknown function %q", x.Fn)
	}
	args, err := EvalElems(x.Args, env, funcs)
	if err != nil {
		return nil, err
	}
	out, err := fn(args)
	if err != nil {
		return nil, &EvalError{Expr: x, Msg: err.Error(), Err: err}
	}
	return out, nil
}

// EvalGuard evaluates a guard expression to a boolean. A nil guard is
// true. Evaluation errors (type mismatches, unbound names) make the guard
// false rather than aborting reduction: chemically, atoms that cannot
// react simply do not react. getMax relies on this — the pair (rule, 2)
// fails x >= y with a type error and is skipped.
func EvalGuard(e Expr, env *Binding, funcs *Funcs) bool {
	if e == nil {
		return true
	}
	v, err := EvalScalar(e, env, funcs)
	if err != nil {
		return false
	}
	b, ok := v.(Bool)
	return ok && bool(b)
}

func evalBinop(x *EBinop, env *Binding, funcs *Funcs) (Atom, error) {
	// Short-circuit boolean operators.
	if x.Op == "&&" || x.Op == "||" {
		lv, err := EvalScalar(x.L, env, funcs)
		if err != nil {
			return nil, err
		}
		lb, ok := lv.(Bool)
		if !ok {
			return nil, evalErrf(x, "left operand of %s is %s, want bool", x.Op, lv.Kind())
		}
		if (x.Op == "&&" && !bool(lb)) || (x.Op == "||" && bool(lb)) {
			return lb, nil
		}
		rv, err := EvalScalar(x.R, env, funcs)
		if err != nil {
			return nil, err
		}
		rb, ok := rv.(Bool)
		if !ok {
			return nil, evalErrf(x, "right operand of %s is %s, want bool", x.Op, rv.Kind())
		}
		return rb, nil
	}
	l, err := EvalScalar(x.L, env, funcs)
	if err != nil {
		return nil, err
	}
	r, err := EvalScalar(x.R, env, funcs)
	if err != nil {
		return nil, err
	}
	return applyBinop(x, l, r, true)
}

// applyBinop computes a non-short-circuit binary operation on evaluated
// operands. It is shared by the tree-walker and the compiled expression
// machine so the two paths cannot drift. With wantErr false (the
// machine's quiet guard mode, where any error just means "guard false"),
// failures return errEvalQuiet without allocating an error value.
func applyBinop(x *EBinop, l, r Atom, wantErr bool) (Atom, error) {
	switch x.Op {
	case "==":
		return Bool(l.Equal(r)), nil
	case "!=":
		return Bool(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		c, ok := compareAtomsOrd(l, r)
		if !ok {
			if !wantErr {
				return nil, errEvalQuiet
			}
			return nil, evalErrf(x, "cannot compare %s with %s", l.Kind(), r.Kind())
		}
		switch x.Op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		return arith(x, l, r, wantErr)
	default:
		if !wantErr {
			return nil, errEvalQuiet
		}
		return nil, evalErrf(x, "unknown operator %q", x.Op)
	}
}

func evalUnop(x *EUnop, env *Binding, funcs *Funcs) (Atom, error) {
	v, err := EvalScalar(x.X, env, funcs)
	if err != nil {
		return nil, err
	}
	return applyUnop(x, v, true)
}

// applyUnop computes a unary operation on an evaluated operand; shared
// by the tree-walker and the compiled machine like applyBinop.
func applyUnop(x *EUnop, v Atom, wantErr bool) (Atom, error) {
	switch x.Op {
	case "-":
		switch n := v.(type) {
		case Int:
			return -n, nil
		case Float:
			return -n, nil
		}
		if !wantErr {
			return nil, errEvalQuiet
		}
		return nil, evalErrf(x, "cannot negate %s", v.Kind())
	case "!":
		b, ok := v.(Bool)
		if !ok {
			if !wantErr {
				return nil, errEvalQuiet
			}
			return nil, evalErrf(x, "cannot negate non-bool %s", v.Kind())
		}
		return !b, nil
	default:
		if !wantErr {
			return nil, errEvalQuiet
		}
		return nil, evalErrf(x, "unknown unary operator %q", x.Op)
	}
}

// compareAtoms orders two atoms: numbers compare numerically with int→float
// promotion, strings lexicographically. Other kinds are unordered.
func compareAtoms(l, r Atom) (int, error) {
	c, ok := compareAtomsOrd(l, r)
	if !ok {
		return 0, fmt.Errorf("cannot compare %s with %s", l.Kind(), r.Kind())
	}
	return c, nil
}

// compareAtomsOrd is the allocation-free core of compareAtoms: it reports
// unordered kinds with a bool instead of constructing an error, so the
// quiet guard path stays off the heap.
func compareAtomsOrd(l, r Atom) (int, bool) {
	switch a := l.(type) {
	case Int:
		switch b := r.(type) {
		case Int:
			return cmpInt(int64(a), int64(b)), true
		case Float:
			return cmpFloat(float64(a), float64(b)), true
		}
	case Float:
		switch b := r.(type) {
		case Int:
			return cmpFloat(float64(a), float64(b)), true
		case Float:
			return cmpFloat(float64(a), float64(b)), true
		}
	case Str:
		if b, ok := r.(Str); ok {
			return strings.Compare(string(a), string(b)), true
		}
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// arith computes an arithmetic binary operation. With wantErr false
// (quiet guard mode) every failure returns errEvalQuiet; the error sites
// check before formatting so a failed guard never touches the heap.
func arith(x *EBinop, l, r Atom, wantErr bool) (Atom, error) {
	// String concatenation.
	if x.Op == "+" {
		if ls, ok := l.(Str); ok {
			if rs, ok := r.(Str); ok {
				return ls + rs, nil
			}
		}
	}
	li, lIsInt := l.(Int)
	ri, rIsInt := r.(Int)
	if lIsInt && rIsInt {
		switch x.Op {
		case "+":
			return li + ri, nil
		case "-":
			return li - ri, nil
		case "*":
			return li * ri, nil
		case "/":
			if ri == 0 {
				if !wantErr {
					return nil, errEvalQuiet
				}
				return nil, evalErrf(x, "division by zero")
			}
			return li / ri, nil
		case "%":
			if ri == 0 {
				if !wantErr {
					return nil, errEvalQuiet
				}
				return nil, evalErrf(x, "modulo by zero")
			}
			return li % ri, nil
		}
	}
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if !lok || !rok {
		if !wantErr {
			return nil, errEvalQuiet
		}
		return nil, evalErrf(x, "arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	switch x.Op {
	case "+":
		return Float(lf + rf), nil
	case "-":
		return Float(lf - rf), nil
	case "*":
		return Float(lf * rf), nil
	case "/":
		if rf == 0 {
			if !wantErr {
				return nil, errEvalQuiet
			}
			return nil, evalErrf(x, "division by zero")
		}
		return Float(lf / rf), nil
	default:
		if !wantErr {
			return nil, errEvalQuiet
		}
		return nil, evalErrf(x, "operator %q not defined on floats", x.Op)
	}
}

func toFloat(a Atom) (float64, bool) {
	switch n := a.(type) {
	case Int:
		return float64(n), true
	case Float:
		return float64(n), true
	}
	return 0, false
}
