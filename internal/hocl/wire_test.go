package hocl

import (
	"bytes"
	"math"
	"testing"
)

// wireSamples is a battery of representative molecule lists: every atom
// kind, nesting, inertness, and the exact shapes the journal persists
// (task tuples, STATDELTA-like tuples, markers).
func wireSamples(t *testing.T) [][]Atom {
	t.Helper()
	parsed := func(src string) []Atom {
		atoms, err := ParseMolecules(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return atoms
	}
	inertSol := NewSolution(Str("out"), Int(7))
	inertSol.SetInert(true)
	return [][]Atom{
		nil,
		{Int(0)},
		{Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(-0.5), Float(math.Inf(1)), Float(math.SmallestNonzeroFloat64)},
		{Str(""), Str("he\"llo\nworld"), Str("plain")},
		{Bool(true), Bool(false)},
		{Ident("T1"), Ident("MERGE_17'")},
		{Tuple{Ident("SRC"), NewSolution(Ident("T1"), Ident("T2"))}},
		{List{Int(1), List{Int(2)}, NewSolution()}},
		{Tuple{Ident("T4"), inertSol}},
		parsed(`T1:<SRC:<>, DST:<T2, T3>, SRV:"s1", IN:<"input">, RES:<>>`),
		parsed(`STATDELTA:T2:12:34:[5, 6]:[RES:<"r">]:true`),
		parsed(`TRIGGER:"a1", PASS:T1:<"x", [1, 2], <3.5>>`),
		parsed(`(rule max = replace x, y by x if x >= y)`),
		parsed(`(rule gw = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w))`),
	}
}

func TestWireRoundTrip(t *testing.T) {
	for i, atoms := range wireSamples(t) {
		data := EncodeAtoms(atoms)
		back, err := DecodeAtoms(data)
		if err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if len(back) != len(atoms) {
			t.Fatalf("sample %d: arity %d -> %d", i, len(atoms), len(back))
		}
		for j := range atoms {
			if !atoms[j].Equal(back[j]) {
				t.Fatalf("sample %d atom %d: %v -> %v", i, j, atoms[j], back[j])
			}
		}
		// Fingerprint equality is stronger than Equal for rules (it folds
		// the rendered body) and catches lossy re-encoding.
		if Fingerprint(atoms...) != Fingerprint(back...) {
			t.Fatalf("sample %d: fingerprint changed across round trip", i)
		}
	}
}

func TestWireRoundTripPreservesInertness(t *testing.T) {
	inert := NewSolution(Str("done"))
	inert.SetInert(true)
	active := NewSolution(Str("pending"))
	back, err := DecodeAtoms(EncodeAtoms([]Atom{inert, active}))
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].(*Solution).Inert() {
		t.Error("inert solution decoded active")
	}
	if back[1].(*Solution).Inert() {
		t.Error("active solution decoded inert")
	}
}

func TestWireRoundTripPreservesFloatBits(t *testing.T) {
	// 1/3 does not survive the %g textual path bit-exactly at shallow
	// precision; the binary codec must.
	v := Float(1.0 / 3.0)
	back, err := DecodeAtoms(EncodeAtoms([]Atom{v}))
	if err != nil {
		t.Fatal(err)
	}
	if got := back[0].(Float); got != v {
		t.Fatalf("float changed: %v -> %v", float64(v), float64(got))
	}
	// NaN round-trips too (Equal treats NaN == NaN).
	nan, err := DecodeAtoms(EncodeAtoms([]Atom{Float(math.NaN())}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(nan[0].(Float))) {
		t.Fatal("NaN did not round-trip")
	}
}

func TestWireDecodeRejectsCorruption(t *testing.T) {
	good := EncodeAtoms([]Atom{Tuple{Ident("T1"), NewSolution(Str("x"))}, Int(42)})
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      append([]byte{99}, good[1:]...),
		"truncated tail":   good[:len(good)-1],
		"trailing garbage": append(bytes.Clone(good), 0),
		"unknown tag":      append(bytes.Clone(good), 250),
	}
	for name, data := range cases {
		if _, err := DecodeAtoms(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	// Every single-byte truncation must error, never panic.
	for cut := 0; cut < len(good); cut++ {
		if _, err := DecodeAtoms(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestWireDecodeRejectsHugeCounts(t *testing.T) {
	// A corrupt element count far beyond the buffer must fail fast
	// without attempting the allocation.
	data := []byte{WireVersion}
	data = append(data, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01) // uvarint 2^63-ish
	if _, err := DecodeAtoms(data); err == nil {
		t.Fatal("huge count accepted")
	}
}

func TestWireAppendAtomsReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 256)
	atoms := []Atom{Tuple{Ident("T1"), NewSolution(Str("x"))}}
	out := AppendAtoms(buf, atoms)
	if &out[0] != &buf[:1][0] {
		t.Skip("buffer grew; nothing to assert")
	}
	back, err := DecodeAtoms(out)
	if err != nil || !back[0].Equal(atoms[0]) {
		t.Fatalf("append-path decode failed: %v", err)
	}
}
