package hocl

import "errors"

// This file is the expression stack machine that executes the programs
// built by ecompile.go. One evalVM is owned by each matcher (guards) and
// reused by the engine across firings (products), so its value stack,
// mark stack and removal scratch amortise to zero allocations on the
// reduction hot path.
//
// The machine runs in one of two modes:
//
//   - quiet (guards): any evaluation failure returns the errEvalQuiet
//     sentinel instead of constructing an *EvalError, because EvalGuard
//     semantics fold every error into "guard false" — chemically, atoms
//     that cannot react simply do not react. Every error site checks
//     quiet before formatting, so a failed guard costs zero heap. Note
//     that external functions are still called in quiet mode: their side
//     effects (message sends, service invocations) must happen exactly
//     as under the tree-walker.
//   - loud (products): failures build the same *EvalError the
//     tree-walker builds — same Expr reference, same message, same
//     wrapped cause — which evm_test.go pins class by class.

// errEvalQuiet is the allocation-free sentinel for evaluation failures
// in quiet guard mode. It never escapes the package: evalGuard folds it
// (like every other error) into a false guard.
var errEvalQuiet = errors.New("hocl: guard evaluation failed")

// evalVM is the expression machine state. The zero value is ready to
// use; stacks grow on first use and are retained across runs.
type evalVM struct {
	stack []Atom // value stack; after a run, holds the produced atoms
	marks []int  // constructor stack-height marks
	quiet bool   // guard mode: errors become errEvalQuiet
	// removeScratch backs applyVM's consumed-index buffer, pooled here
	// because the vm already travels through every firing site.
	removeScratch []int
}

// evalGuard runs a compiled guard program under EvalGuard semantics: an
// empty program (nil guard) is true, any evaluation error is false, and
// otherwise the result must be the atom true.
func (v *evalVM) evalGuard(prog []einstr, env *Binding, funcs *Funcs) bool {
	if len(prog) == 0 {
		return true
	}
	v.quiet = true
	err := v.run(prog, env, funcs)
	v.quiet = false
	if err != nil {
		return false
	}
	b, ok := v.stack[len(v.stack)-1].(Bool)
	return ok && bool(b)
}

// evalProducts runs a compiled product program and returns the produced
// atoms in a fresh exact-size slice (nil when the program produces
// nothing, matching EvalElems). The engine's firing path skips the copy
// by reading vm.stack directly after run — see Rule.applyVM.
func (v *evalVM) evalProducts(prog []einstr, env *Binding, funcs *Funcs) ([]Atom, error) {
	if err := v.run(prog, env, funcs); err != nil {
		return nil, err
	}
	if len(v.stack) == 0 {
		return nil, nil
	}
	out := make([]Atom, len(v.stack))
	copy(out, v.stack)
	return out, nil
}

// run executes a compiled program, leaving its results on v.stack. Error
// construction is gated on v.quiet at every site (rather than through a
// helper) so the quiet path provably never reaches an allocating
// fmt.Sprintf or argument boxing.
func (v *evalVM) run(prog []einstr, env *Binding, funcs *Funcs) error {
	v.stack = v.stack[:0]
	v.marks = v.marks[:0]
	pc := 0
	for pc < len(prog) {
		ins := &prog[pc]
		switch ins.op {
		case eLit:
			v.stack = append(v.stack, ins.val)

		case eVarScalar:
			a, ok := env.Atom(ins.name)
			if !ok {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "unbound variable %q", ins.name)
			}
			v.stack = append(v.stack, a)

		case eVarElem:
			a, ok := env.Atom(ins.name)
			if !ok {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "unbound variable %q", ins.name)
			}
			v.stack = append(v.stack, Snapshot(a))

		case eOmegaScalar:
			if v.quiet {
				return errEvalQuiet
			}
			return evalErrf(ins.src, "omega variable in scalar position")

		case eSplice:
			rest, ok := env.Rest(ins.name)
			if !ok {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "unbound omega variable %q", ins.name)
			}
			for _, a := range rest {
				v.stack = append(v.stack, Snapshot(a))
			}

		case eSnap:
			v.stack[len(v.stack)-1] = Snapshot(v.stack[len(v.stack)-1])

		case eMark:
			v.marks = append(v.marks, len(v.stack))

		case eCallCheck:
			// Error precedence matches the tree-walker: registry and
			// lookup failures are reported before any argument error.
			if funcs == nil {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "no function registry for %s", ins.name)
			}
			if _, ok := funcs.Lookup(ins.name); !ok {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "unknown function %q", ins.name)
			}

		case eCallScalar, eCallElems:
			mark := v.marks[len(v.marks)-1]
			v.marks = v.marks[:len(v.marks)-1]
			// Re-lookup after argument evaluation: registries are
			// mutable, and eCallCheck ran before the arguments.
			fn, ok := funcs.Lookup(ins.name)
			if !ok {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "unknown function %q", ins.name)
			}
			out, err := fn(v.stack[mark:len(v.stack):len(v.stack)])
			if err != nil {
				if v.quiet {
					return errEvalQuiet
				}
				return &EvalError{Expr: ins.src, Msg: err.Error(), Err: err}
			}
			if ins.op == eCallScalar {
				if len(out) != 1 {
					if v.quiet {
						return errEvalQuiet
					}
					return evalErrf(ins.src, "function %s returned %d atoms in scalar position", ins.name, len(out))
				}
				v.stack = append(v.stack[:mark], out[0])
			} else {
				// out may alias the argument window (a Func returning
				// its args); the element-wise read-before-write of
				// append keeps the truncate-then-push safe.
				v.stack = v.stack[:mark]
				for _, a := range out {
					v.stack = append(v.stack, Snapshot(a))
				}
			}

		case eTuple:
			mark := v.marks[len(v.marks)-1]
			v.marks = v.marks[:len(v.marks)-1]
			n := len(v.stack) - mark
			if n < 2 {
				if v.quiet {
					return errEvalQuiet
				}
				return evalErrf(ins.src, "tuple needs at least 2 elements, got %d", n)
			}
			t := make(Tuple, n)
			copy(t, v.stack[mark:])
			v.stack = append(v.stack[:mark], t)

		case eList:
			mark := v.marks[len(v.marks)-1]
			v.marks = v.marks[:len(v.marks)-1]
			l := make(List, len(v.stack)-mark)
			copy(l, v.stack[mark:])
			v.stack = append(v.stack[:mark], l)

		case eSol:
			mark := v.marks[len(v.marks)-1]
			v.marks = v.marks[:len(v.marks)-1]
			s := NewSolution(v.stack[mark:]...)
			v.stack = append(v.stack[:mark], s)

		case eBinop:
			r := v.stack[len(v.stack)-1]
			l := v.stack[len(v.stack)-2]
			v.stack = v.stack[:len(v.stack)-1]
			res, err := applyBinop(ins.src.(*EBinop), l, r, !v.quiet)
			if err != nil {
				return err
			}
			v.stack[len(v.stack)-1] = res

		case eUnop:
			res, err := applyUnop(ins.src.(*EUnop), v.stack[len(v.stack)-1], !v.quiet)
			if err != nil {
				return err
			}
			v.stack[len(v.stack)-1] = res

		case eAndJmp, eOrJmp:
			top := v.stack[len(v.stack)-1]
			b, ok := top.(Bool)
			if !ok {
				if v.quiet {
					return errEvalQuiet
				}
				x := ins.src.(*EBinop)
				return evalErrf(x, "left operand of %s is %s, want bool", x.Op, top.Kind())
			}
			// Short-circuit keeps the left operand as the result.
			if bool(b) == (ins.op == eOrJmp) {
				pc = ins.tgt
				continue
			}
			v.stack = v.stack[:len(v.stack)-1]

		case eBoolRight:
			top := v.stack[len(v.stack)-1]
			if _, ok := top.(Bool); !ok {
				if v.quiet {
					return errEvalQuiet
				}
				x := ins.src.(*EBinop)
				return evalErrf(x, "right operand of %s is %s, want bool", x.Op, top.Kind())
			}

		case eBadExpr:
			if v.quiet {
				return errEvalQuiet
			}
			return evalErrf(ins.src, "unknown expression type %T", ins.src)
		}
		pc++
	}
	return nil
}
