package hocl

import (
	"math/rand"
	"testing"
)

func reduceProgram(t *testing.T, src string) *Solution {
	t.Helper()
	e := NewEngine()
	sol, err := e.Run(src)
	if err != nil {
		t.Fatalf("Run(%q): %v", src, err)
	}
	return sol
}

// TestGetMax reproduces the paper's §III-A example: the max rule reduces
// the multiset to its largest value (with the catalyst rule remaining).
func TestGetMax(t *testing.T) {
	sol := reduceProgram(t, `let max = replace x, y by x if x >= y in <2, 3, 5, 8, 9, max>`)
	if sol.Len() != 2 {
		t.Fatalf("final solution %v, want <9, max>", sol)
	}
	if !sol.Contains(Int(9)) {
		t.Errorf("final solution %v must contain 9", sol)
	}
	if len(sol.Rules()) != 1 {
		t.Errorf("catalyst max must remain: %v", sol)
	}
}

// TestGetMaxWithClean reproduces the paper's higher-order variant: clean
// extracts the result from the inner solution and removes max with it.
func TestGetMaxWithClean(t *testing.T) {
	sol := reduceProgram(t, `
		let max = replace x, y by x if x >= y in
		let clean = replace-one <max, *w> by *w in
		<<2, 3, 5, 8, 9, max>, clean>`)
	want := NewSolution(Int(9))
	if !sol.Equal(want) {
		t.Fatalf("final solution %v, want %v", sol, want)
	}
}

// TestCleanWaitsForInertInnerSolution checks the core HOCL law: a
// sub-solution pattern only matches once the sub-solution is inert, so
// clean cannot fire before max has finished.
func TestCleanWaitsForInertInnerSolution(t *testing.T) {
	inner := NewSolution(Int(2), Int(9), MustParseRuleBody("max", "replace x, y by x if x >= y", nil))
	scope := map[string]*Rule{"max": inner.Rules()[0]}
	clean := MustParseRuleBody("clean", "replace-one <max, *w> by *w", scope)
	outer := NewSolution(inner, clean)

	// Direct match against the non-inert inner solution must fail.
	if m := MatchRule(clean, outer, 1, NewFuncs(), nil); m != nil {
		t.Fatal("clean matched a non-inert sub-solution")
	}
	// After full reduction the law is restored and clean has fired.
	if err := NewEngine().Reduce(outer); err != nil {
		t.Fatal(err)
	}
	if !outer.Equal(NewSolution(Int(9))) {
		t.Errorf("outer = %v, want <9>", outer)
	}
}

func TestGetMaxRandomisedOrderIsConfluent(t *testing.T) {
	// getMax is confluent: whatever the (random) reaction order, the
	// result is the maximum.
	for seed := int64(0); seed < 20; seed++ {
		e := NewEngine()
		e.Rand = rand.New(rand.NewSource(seed))
		sol, err := e.Run(`let max = replace x, y by x if x >= y in <4, 17, 3, 17, 9, 1, max>`)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Contains(Int(17)) || sol.Len() != 2 {
			t.Errorf("seed %d: final solution %v", seed, sol)
		}
	}
}

func TestOneShotRuleFiresOnce(t *testing.T) {
	sol := reduceProgram(t, `let inc = replace-one x by x + 100 in <1, 2, inc>`)
	// Exactly one of the two integers got incremented, and inc is gone.
	if sol.Len() != 2 {
		t.Fatalf("final solution %v", sol)
	}
	if len(sol.Rules()) != 0 {
		t.Errorf("one-shot rule must disappear: %v", sol)
	}
	hits := 0
	for _, a := range sol.Atoms() {
		if n, ok := a.(Int); ok && n >= 100 {
			hits++
		}
	}
	if hits != 1 {
		t.Errorf("want exactly one incremented atom, got %d in %v", hits, sol)
	}
}

func TestWithInjectSugar(t *testing.T) {
	// with X inject M keeps X and adds M, firing once.
	sol := reduceProgram(t, `
		let w = with ERROR inject ADAPT, TRIGGER in
		<ERROR, w>`)
	want := NewSolution(Ident("ERROR"), Ident("ADAPT"), Ident("TRIGGER"))
	if !sol.Equal(want) {
		t.Errorf("final solution %v, want %v", sol, want)
	}
}

func TestHigherOrderRuleConsumingRule(t *testing.T) {
	// A rule that removes another rule by name — rules are ordinary atoms.
	sol := reduceProgram(t, `
		let noisy = replace x by x if false in
		let killer = replace-one noisy by nothing in
		<noisy, killer, 7>`)
	want := NewSolution(Int(7))
	if !sol.Equal(want) {
		t.Errorf("final solution %v, want %v", sol, want)
	}
}

func TestRuleProducingRule(t *testing.T) {
	// Higher order in the other direction: firing a rule injects another
	// rule, which then runs. This is exactly how trigger_adapt enables
	// add_dst/mv_src in the paper (§III-C).
	sol := reduceProgram(t, `
		let inner = replace x, y by x if x >= y in
		let boot = with GO inject inner in
		<GO, 3, 8, boot>`)
	// boot is with/inject-style: it keeps GO and injects inner; inner
	// then reduces 3, 8 to 8.
	if !sol.Contains(Int(8)) || sol.Contains(Int(3)) {
		t.Errorf("final solution %v", sol)
	}
	if !sol.Contains(Ident("GO")) {
		t.Errorf("GO must survive (with/inject re-emits): %v", sol)
	}
}

func TestNonLinearPattern(t *testing.T) {
	// The same variable twice requires equal atoms.
	sol := reduceProgram(t, `let pair = replace-one x, x by PAIR in <1, 2, 2, pair>`)
	if !sol.Contains(Ident("PAIR")) {
		t.Fatalf("pair rule did not fire: %v", sol)
	}
	if !sol.Contains(Int(1)) {
		t.Errorf("1 must survive: %v", sol)
	}
	if sol.Contains(Int(2)) {
		t.Errorf("both 2s must be consumed: %v", sol)
	}
}

func TestGuardFailureBacktracks(t *testing.T) {
	// Only the (5, 5) pair satisfies the guard; the matcher must search
	// past failing candidate pairs.
	sol := reduceProgram(t, `
		let eq5 = replace-one x, y by FOUND if x == y && x == 5 in
		<1, 5, 2, 5, eq5>`)
	if !sol.Contains(Ident("FOUND")) {
		t.Fatalf("rule did not fire: %v", sol)
	}
	if sol.Count(Int(5)) != 0 {
		t.Errorf("the two 5s must be consumed: %v", sol)
	}
}

func TestGuardTypeErrorIsFalse(t *testing.T) {
	// x >= y over a string and an int is a type error, which makes the
	// guard false (atoms that cannot react do not react) — not a crash.
	sol := reduceProgram(t, `let max = replace x, y by x if x >= y in <"s", 4, 9, max>`)
	if !sol.Contains(Str("s")) || !sol.Contains(Int(9)) {
		t.Errorf("final solution %v", sol)
	}
	if sol.Contains(Int(4)) {
		t.Errorf("4 should react with 9: %v", sol)
	}
}

func TestTupleAndSolutionPatterns(t *testing.T) {
	// gw_setup-shaped rule: match SRC:<> empty dependency solution.
	sol := reduceProgram(t, `
		let setup = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w) in
		<SRC:<>, IN:<"a", "b">, setup>`)
	par, idx := sol.FindTuple(Ident("PAR"))
	if idx < 0 {
		t.Fatalf("no PAR tuple: %v", sol)
	}
	l, ok := par[1].(List)
	if !ok || len(l) != 2 {
		t.Fatalf("PAR payload: %v", par[1])
	}
}

func TestSetupDoesNotFireWithPendingDeps(t *testing.T) {
	sol := reduceProgram(t, `
		let setup = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w) in
		<SRC:<T1>, IN:<"a">, setup>`)
	if _, idx := sol.FindTuple(Ident("PAR")); idx != -1 {
		t.Fatalf("setup fired despite non-empty SRC: %v", sol)
	}
	if len(sol.Rules()) != 1 {
		t.Errorf("setup must remain: %v", sol)
	}
}

func TestOmegaCapturesRest(t *testing.T) {
	sol := reduceProgram(t, `
		let grab = replace-one <TAG, *rest> by list(*rest) in
		<<TAG, 1, 2, 3>, grab>`)
	if sol.Len() != 1 {
		t.Fatalf("final solution %v", sol)
	}
	l, ok := sol.At(0).(List)
	if !ok || len(l) != 3 {
		t.Fatalf("captured rest: %v", sol.At(0))
	}
}

func TestOmegaCanBeEmpty(t *testing.T) {
	sol := reduceProgram(t, `
		let grab = replace-one <TAG, *rest> by DONE:list(*rest) in
		<<TAG>, grab>`)
	tp, idx := sol.FindTuple(Ident("DONE"))
	if idx < 0 {
		t.Fatalf("grab did not fire on empty rest: %v", sol)
	}
	if l := tp[1].(List); len(l) != 0 {
		t.Errorf("rest should be empty, got %v", l)
	}
}

func TestArithmeticProducts(t *testing.T) {
	sol := reduceProgram(t, `let sum = replace x, y by x + y if x <= y in <1, 2, 3, 4, sum>`)
	if !sol.Contains(Int(10)) || sol.Len() != 2 {
		t.Errorf("sum result: %v", sol)
	}
}

func TestDivergentProgramDetected(t *testing.T) {
	e := NewEngine()
	e.MaxSteps = 1000
	_, err := e.Run(`let dup = replace x by x, x in <1, dup>`)
	if err == nil {
		t.Fatal("divergent program must be detected")
	}
	if _, ok := err.(*ErrDiverged); !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
}

func TestTraceObservesFirings(t *testing.T) {
	e := NewEngine()
	var fired []string
	e.Trace = func(ev TraceEvent) { fired = append(fired, ev.Rule.Name) }
	if _, err := e.Run(`let max = replace x, y by x if x >= y in <2, 3, max>`); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "max" {
		t.Errorf("trace: %v", fired)
	}
	if e.Steps() != 1 {
		t.Errorf("steps = %d, want 1", e.Steps())
	}
}

func TestReduceIdempotentOnInertSolution(t *testing.T) {
	e := NewEngine()
	sol, err := e.Run(`let max = replace x, y by x if x >= y in <2, 3, max>`)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Inert() {
		t.Fatal("reduced solution must be inert")
	}
	before := sol.CloneSolution()
	if err := e.Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if !sol.Equal(before) {
		t.Errorf("re-reducing an inert solution changed it")
	}
	if e.Steps() != 0 {
		t.Errorf("re-reduction fired %d steps", e.Steps())
	}
}

func TestNestedTupleSolutionBecomesInert(t *testing.T) {
	// Solutions nested inside tuples (SRC:<...>) must be reduced and
	// marked inert so patterns like SRC:<> can match them.
	sol := NewSolution(Tuple{Ident("SRC"), NewSolution()})
	if err := NewEngine().Reduce(sol); err != nil {
		t.Fatal(err)
	}
	inner := sol.At(0).(Tuple)[1].(*Solution)
	if !inner.Inert() {
		t.Error("tuple-nested solution not marked inert")
	}
}

func TestExternalFunctionCall(t *testing.T) {
	e := NewEngine()
	calls := 0
	e.Funcs.Register("invoke", func(args []Atom) ([]Atom, error) {
		calls++
		return []Atom{Str("result-of-" + string(args[0].(Str)))}, nil
	})
	sol, err := e.Run(`
		let call = replace-one SRV:s, PAR:p by RES:<invoke(s)> in
		<SRV:"s1", PAR:[], call>`)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("invoke called %d times", calls)
	}
	res, idx := sol.FindTuple(Ident("RES"))
	if idx < 0 {
		t.Fatalf("no RES: %v", sol)
	}
	rs := res[1].(*Solution)
	if !rs.Contains(Str("result-of-s1")) {
		t.Errorf("RES = %v", rs)
	}
}

func TestEngineZeroValueUsable(t *testing.T) {
	var e Engine
	sol, err := e.Run(`let max = replace x, y by x if x >= y in <1, 2, max>`)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Contains(Int(2)) {
		t.Errorf("zero-value engine result: %v", sol)
	}
}

// TestPaperWorkflowRulesEndToEnd runs the paper's Fig. 3 workflow with the
// Fig. 4 generic rules through a single centralized interpreter: the full
// T1 -> (T2, T3) -> T4 diamond, with invoke() simulated.
func TestPaperWorkflowRulesEndToEnd(t *testing.T) {
	e := NewEngine()
	invoked := map[string]int{}
	e.Funcs.Register("invoke", func(args []Atom) ([]Atom, error) {
		name := string(args[0].(Str))
		invoked[name]++
		return []Atom{Str("out-" + name)}, nil
	})
	src := `
	let gw_setup = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w) in
	let gw_call = replace-one SRC:<>, SRV:s, PAR:p, RES:<*w> by SRC:<>, SRV:s, RES:<invoke(s, p), *w> in
	let gw_pass = replace ti:<RES:<*res>, DST:<tj, *dst>, *oi>, tj:<SRC:<ti, *src>, IN:<*win>, *oj>
	              by ti:<RES:<*res>, DST:<*dst>, *oi>, tj:<SRC:<*src>, IN:<*res, *win>, *oj> in
	<
	  gw_pass,
	  T1:<SRC:<>, DST:<T2, T3>, SRV:"s1", IN:<"input">, RES:<>, gw_setup, gw_call>,
	  T2:<SRC:<T1>, DST:<T4>, SRV:"s2", IN:<>, RES:<>, gw_setup, gw_call>,
	  T3:<SRC:<T1>, DST:<T4>, SRV:"s3", IN:<>, RES:<>, gw_setup, gw_call>,
	  T4:<SRC:<T2, T3>, DST:<>, SRV:"s4", IN:<>, RES:<>, gw_setup, gw_call>
	>`
	sol, err := e.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"s1", "s2", "s3", "s4"} {
		if invoked[s] != 1 {
			t.Errorf("service %s invoked %d times, want 1", s, invoked[s])
		}
	}
	// T4's subsolution must hold the final result.
	var t4 *Solution
	for _, a := range sol.Atoms() {
		if tp, ok := a.(Tuple); ok && len(tp) == 2 && tp[0].Equal(Ident("T4")) {
			t4 = tp[1].(*Solution)
		}
	}
	if t4 == nil {
		t.Fatal("no T4 in final solution")
	}
	res, idx := t4.FindTuple(Ident("RES"))
	if idx < 0 {
		t.Fatal("no RES in T4")
	}
	if !res[1].(*Solution).Contains(Str("out-s4")) {
		t.Errorf("T4 RES = %v", res[1])
	}
}
