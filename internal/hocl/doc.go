// Package hocl implements the Higher-Order Chemical Language (HOCL), the
// rule-based chemical programming language GinFlow is built on (Banâtre,
// Fradet, Radenac: "Generalised multisets for chemical programming", MSCS
// 2006; §III-A of the GinFlow paper).
//
// An HOCL program is a multiset of atoms — the solution — rewritten by
// reaction rules that are themselves first-class atoms of the solution
// (the "higher order"). A rule
//
//	let max = replace x, y by x if x >= y in <2, 3, 5, 8, 9, max>
//
// repeatedly consumes two atoms satisfying its guard and produces its
// right-hand side, until no rule can fire anywhere: the solution is then
// inert and the program has terminated.
//
// # Atoms
//
// Atoms are either basic — Int, Float, Str, Bool, Ident (a symbolic
// constant such as ERROR or T1) — or structured: Tuple (ordered, written
// A:B:C), List (an HOCLflow extension, written [a, b, c]), Solution (a
// nested multiset, written <a, b, c>), and Rule.
//
// # Rules
//
// A rule `replace P1, ..., Pn by M1, ..., Mk if G` consumes atoms matching
// the patterns P1..Pn (subject to guard G) and produces the molecules
// M1..Mk. `replace` rules are catalysts: they remain in the solution after
// firing. `replace-one` rules are one-shot: they disappear once fired.
// The HOCLflow sugar `with P inject M` abbreviates
// `replace-one P by P, M`.
//
// Patterns bind lowercase identifiers to single atoms and `*name` ("omega")
// variables to the rest of a solution. A sub-solution pattern <...> only
// matches an inert sub-solution, per HOCL semantics: inner programs finish
// before their results are observable outside.
//
// # Text syntax
//
// The package includes a lexer, parser and printer for an ASCII rendering
// of the paper's notation (⟨⟩ becomes <>, ω becomes *rest). Printing then
// re-parsing any atom yields an equal atom; GinFlow uses this round-trip
// property to ship molecules between service agents as plain text.
package hocl
