package hocl

import (
	"fmt"
	"math/rand"
	"testing"
)

// FuzzParseMolecules hardens the wire-format decoder: agents feed
// broker payloads straight into it, so arbitrary bytes must never
// panic, and anything that parses must round-trip through the printer.
// The seed corpus doubles as a regression suite in plain `go test` runs.
func FuzzParseMolecules(f *testing.F) {
	seeds := []string{
		"",
		"42",
		`RES:<"out-s1">, ADAPT:"a1"`,
		`PASS:T1:<"x", [1, 2], <3>>`,
		`T1:<SRC:<>, DST:<T2, T3>, SRV:"s1", IN:<"input">>`,
		`(rule max = replace x, y by x if x >= y)`,
		`(rule gw = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w))`,
		"<<<<",
		">>>",
		"A:B:C:D:E",
		`"unterminated`,
		"1e9999",
		"*orphan",
		"let max = replace x by x in <max>",
		"(rule _ = with X inject Y)",
		"-",
		"A:",
		"[,]",
		"/* unclosed",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		atoms, err := ParseMolecules(input)
		if err != nil {
			return
		}
		// Whatever parses must round-trip.
		back, err := ParseMolecules(FormatMolecules(atoms))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", input, err)
		}
		if len(back) != len(atoms) {
			t.Fatalf("round trip of %q changed arity: %d -> %d", input, len(atoms), len(back))
		}
		for i := range atoms {
			if !atoms[i].Equal(back[i]) {
				t.Fatalf("round trip of %q changed molecule %d: %v -> %v",
					input, i, atoms[i], back[i])
			}
		}
	})
}

// FuzzMatcherDifferential proves the instruction-machine matcher
// equivalent to the naive recursive reference matcher
// (reference_test.go) over randomized rule/solution pairs: same
// match/no-match verdict, same consumed index set, same variable and
// rest bindings. The seed corpus runs in every plain `go test` (and so
// under -race in CI); this test is what licensed deleting the
// continuation-passing matcher, and it now guards the machine.
func FuzzMatcherDifferential(f *testing.F) {
	for seed := int64(0); seed < 64; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		funcs := NewFuncs()
		for round := 0; round < 8; round++ {
			r := genMatchRule(rng)
			sol := genMatchSolution(rng)
			selfIdx := -1
			if sol.Len() > 0 && rng.Intn(2) == 0 {
				selfIdx = rng.Intn(sol.Len())
			}
			var order []int
			if rng.Intn(2) == 0 {
				order = rng.Perm(sol.Len())
			}
			got := MatchRule(r, sol, selfIdx, funcs, order)
			want := referenceMatch(r, sol, selfIdx, funcs, order)
			describe := func() string {
				return fmt.Sprintf("rule %s on %v (self %d, order %v)", r, sol, selfIdx, order)
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("%s: machine match %v, reference match %v", describe(), got != nil, want != nil)
			}
			if got == nil {
				continue
			}
			if fmt.Sprint(got.Consumed) != fmt.Sprint(want.Consumed) {
				t.Fatalf("%s: consumed %v, reference %v", describe(), got.Consumed, want.Consumed)
			}
			for _, name := range patternVars(r.Pattern) {
				ga, gok := got.Env.Atom(name)
				wa, wok := want.Env.Atom(name)
				if gok != wok || (gok && !ga.Equal(wa)) {
					t.Fatalf("%s: binding %s = %v (bound %v), reference %v (bound %v)",
						describe(), name, ga, gok, wa, wok)
				}
				gr, grok := got.Env.Rest(name)
				wr, wrok := want.Env.Rest(name)
				if grok != wrok || (grok && !refRestEqual(gr, wr)) {
					t.Fatalf("%s: rest %s = %v (bound %v), reference %v (bound %v)",
						describe(), name, gr, grok, wr, wrok)
				}
			}
		}
	})
}

// fuzzRefRule is a rule atom floating in generated solutions so PRuleRef
// patterns have something to hit.
var fuzzRefRule = MustParseRuleBody("other", "replace q by q if false", nil)

// genMatchAtom draws a random atom over deliberately tiny domains: collisions
// are what exercise non-linear bindings and backtracking.
func genMatchAtom(rng *rand.Rand, depth int) Atom {
	top := 10
	if depth <= 0 {
		top = 5 // scalars only
	}
	switch rng.Intn(top) {
	case 0, 1:
		return Int(rng.Intn(4))
	case 2:
		return Ident([]string{"A", "B", "C"}[rng.Intn(3)])
	case 3:
		return Str([]string{"s", "t"}[rng.Intn(2)])
	case 4:
		return Bool(rng.Intn(2) == 0)
	case 5:
		return fuzzRefRule
	case 6:
		n := 2 + rng.Intn(2)
		t := make(Tuple, n)
		for i := range t {
			t[i] = genMatchAtom(rng, depth-1)
		}
		return t
	case 7:
		n := rng.Intn(3)
		l := make(List, n)
		for i := range l {
			l[i] = genMatchAtom(rng, depth-1)
		}
		return l
	default:
		n := rng.Intn(4)
		atoms := make([]Atom, n)
		for i := range atoms {
			atoms[i] = genMatchAtom(rng, depth-1)
		}
		sub := NewSolution(atoms...)
		// Mostly inert (matchable); occasionally active, which every
		// solution pattern must refuse.
		sub.SetInert(rng.Intn(4) != 0)
		return sub
	}
}

func genMatchSolution(rng *rand.Rand) *Solution {
	atoms := make([]Atom, rng.Intn(6))
	for i := range atoms {
		atoms[i] = genMatchAtom(rng, 2)
	}
	return NewSolution(atoms...)
}

// genMatchPattern draws a random pattern over the same tiny domains, with a
// shared three-name variable pool so non-linear repeats are common.
func genMatchPattern(rng *rand.Rand, depth int) Pattern {
	vars := []string{"x", "y", "z"}
	top := 8
	if depth <= 0 {
		top = 4
	}
	switch rng.Intn(top) {
	case 0, 1:
		return &PVar{Name: vars[rng.Intn(len(vars))]}
	case 2:
		return &PConst{Val: genMatchAtom(rng, 0)}
	case 3:
		if rng.Intn(3) == 0 {
			return &PRuleRef{Name: "other"}
		}
		return &PConst{Val: Ident([]string{"A", "B"}[rng.Intn(2)])}
	case 4:
		n := 2 + rng.Intn(2)
		elems := make([]Pattern, n)
		for i := range elems {
			elems[i] = genMatchPattern(rng, depth-1)
		}
		return &PTuple{Elems: elems}
	case 5:
		n := rng.Intn(3)
		elems := make([]Pattern, n)
		for i := range elems {
			elems[i] = genMatchPattern(rng, depth-1)
		}
		return &PList{Elems: elems}
	default:
		n := rng.Intn(3)
		elems := make([]Pattern, n)
		for i := range elems {
			elems[i] = genMatchPattern(rng, depth-1)
		}
		rest := ""
		if rng.Intn(2) == 0 {
			rest = []string{"w", "v"}[rng.Intn(2)]
		}
		return &PSolution{Elems: elems, Rest: rest}
	}
}

func genMatchRule(rng *rand.Rand) *Rule {
	n := 1 + rng.Intn(3)
	pats := make([]Pattern, n)
	for i := range pats {
		pats[i] = genMatchPattern(rng, 2)
	}
	var guard Expr
	switch rng.Intn(4) {
	case 0:
		guard = &EBinop{Op: "==", L: &EVar{Name: "x"}, R: &EVar{Name: "y"}}
	case 1:
		guard = &EUnop{Op: "!", X: &EBinop{Op: "==", L: &EVar{Name: "x"}, R: &ELit{Val: Int(0)}}}
	}
	return &Rule{Name: "fuzz", Pattern: pats, Guard: guard}
}

// patternVars collects every variable and rest name mentioned in a
// pattern list (with duplicates; the comparison loop tolerates them).
func patternVars(pats []Pattern) []string {
	var names []string
	var walk func(p Pattern)
	walk = func(p Pattern) {
		switch pt := p.(type) {
		case *PVar:
			names = append(names, pt.Name)
		case *POmega:
			names = append(names, pt.Name)
		case *PTuple:
			for _, e := range pt.Elems {
				walk(e)
			}
		case *PList:
			for _, e := range pt.Elems {
				walk(e)
			}
		case *PSolution:
			for _, e := range pt.Elems {
				walk(e)
			}
			if pt.Rest != "" {
				names = append(names, pt.Rest)
			}
		}
	}
	for _, p := range pats {
		walk(p)
	}
	return names
}

// FuzzParseProgram hardens the full program parser the same way.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"let max = replace x, y by x if x >= y in <2, 3, max>",
		"let a = replace x by x in let b = replace-one a by nothing in <a, b>",
		"let w = with ERROR inject ADAPT in <ERROR, w>",
		"<1, <2, <3>>>",
		"let bad = replace by x in <>",
		"let p = replace <K, *r> by list(*r) in <<K, 1>, p>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sol, err := Parse(input)
		if err != nil {
			return
		}
		// Parsed programs must render to parseable text.
		if _, err := ParseGround(sol.String()); err != nil {
			t.Fatalf("program %q printed unparseable text: %v", input, err)
		}
	})
}
