package hocl

import (
	"testing"
)

// FuzzParseMolecules hardens the wire-format decoder: agents feed
// broker payloads straight into it, so arbitrary bytes must never
// panic, and anything that parses must round-trip through the printer.
// The seed corpus doubles as a regression suite in plain `go test` runs.
func FuzzParseMolecules(f *testing.F) {
	seeds := []string{
		"",
		"42",
		`RES:<"out-s1">, ADAPT:"a1"`,
		`PASS:T1:<"x", [1, 2], <3>>`,
		`T1:<SRC:<>, DST:<T2, T3>, SRV:"s1", IN:<"input">>`,
		`(rule max = replace x, y by x if x >= y)`,
		`(rule gw = replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w))`,
		"<<<<",
		">>>",
		"A:B:C:D:E",
		`"unterminated`,
		"1e9999",
		"*orphan",
		"let max = replace x by x in <max>",
		"(rule _ = with X inject Y)",
		"-",
		"A:",
		"[,]",
		"/* unclosed",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		atoms, err := ParseMolecules(input)
		if err != nil {
			return
		}
		// Whatever parses must round-trip.
		back, err := ParseMolecules(FormatMolecules(atoms))
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", input, err)
		}
		if len(back) != len(atoms) {
			t.Fatalf("round trip of %q changed arity: %d -> %d", input, len(atoms), len(back))
		}
		for i := range atoms {
			if !atoms[i].Equal(back[i]) {
				t.Fatalf("round trip of %q changed molecule %d: %v -> %v",
					input, i, atoms[i], back[i])
			}
		}
	})
}

// FuzzParseProgram hardens the full program parser the same way.
func FuzzParseProgram(f *testing.F) {
	seeds := []string{
		"let max = replace x, y by x if x >= y in <2, 3, max>",
		"let a = replace x by x in let b = replace-one a by nothing in <a, b>",
		"let w = with ERROR inject ADAPT in <ERROR, w>",
		"<1, <2, <3>>>",
		"let bad = replace by x in <>",
		"let p = replace <K, *r> by list(*r) in <<K, 1>, p>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sol, err := Parse(input)
		if err != nil {
			return
		}
		// Parsed programs must render to parseable text.
		if _, err := ParseGround(sol.String()); err != nil {
			t.Fatalf("program %q printed unparseable text: %v", input, err)
		}
	})
}
