package hocl

import (
	"testing"
)

func sampleTaskSub() *Solution {
	return NewSolution(
		Tuple{Ident("SRC"), NewSolution(Ident("T1"), Ident("T2"))},
		Tuple{Ident("DST"), NewSolution(Ident("T4"))},
		Tuple{Ident("SRV"), Str("s1")},
		Tuple{Ident("RES"), NewSolution(Str("out"), List{Int(1), Int(2)})},
		Int(42),
	)
}

func TestSnapshotIsIndependentlyMutable(t *testing.T) {
	orig := sampleTaskSub()
	origStr := orig.String()
	snap := orig.SnapshotSolution()
	if !snap.Equal(orig) {
		t.Fatalf("snapshot not equal: %v vs %v", snap, orig)
	}

	// Mutating the snapshot — including nested solutions — must not leak
	// into the original.
	snap.Add(Ident("EXTRA"))
	if tp, idx := snap.FindTuple(Ident("SRC")); idx >= 0 {
		tp[1].(*Solution).Add(Ident("T9"))
	}
	if orig.String() != origStr {
		t.Errorf("original changed after snapshot mutation:\n%s\nwant\n%s", orig, origStr)
	}

	// And the other way round.
	orig.RemoveIndices([]int{0})
	if snap.Len() != 6 {
		t.Errorf("snapshot changed after original mutation: %v", snap)
	}
}

func TestSnapshotSharesSolutionFreeAtoms(t *testing.T) {
	tup := Tuple{Ident("SRV"), Str("s1")}
	if got := Snapshot(tup); &got.(Tuple)[0] == &tup[0] {
		// Indexing proves same backing array; a solution-free tuple must
		// be returned as-is.
		t.Log("shared, as expected")
	}
	got, copied := snapshotAtom(tup)
	if copied {
		t.Errorf("solution-free tuple was copied")
	}
	if !got.Equal(tup) {
		t.Errorf("snapshot altered the atom: %v", got)
	}
}

func TestSnapshotPreservesInertness(t *testing.T) {
	sol := NewSolution(Int(1))
	sol.SetInert(true)
	if !sol.SnapshotSolution().Inert() {
		t.Error("snapshot dropped the inert flag")
	}
}

func TestShareable(t *testing.T) {
	inert := NewSolution(Str("r"))
	inert.SetInert(true)
	active := NewSolution(Str("r"))

	cases := []struct {
		atom Atom
		want bool
	}{
		{Int(1), true},
		{Str("x"), true},
		{Tuple{Ident("PASS"), Ident("T1"), inert}, true},
		{Tuple{Ident("PASS"), Ident("T1"), active}, false},
		{List{inert}, true},
		{List{active}, false},
		{inert, true},
		{active, false},
	}
	for _, c := range cases {
		if got := Shareable(c.atom); got != c.want {
			t.Errorf("Shareable(%v) = %v, want %v", c.atom, got, c.want)
		}
	}

	// A non-inert solution buried inside an inert one still blocks
	// sharing: a rule elsewhere could destructure the outer solution and
	// re-emit the inner one into an active context.
	outer := NewSolution(active)
	outer.SetInert(true)
	if Shareable(outer) {
		t.Error("inert solution containing an active one must not be shareable")
	}
}

func TestFingerprintDistinguishesStates(t *testing.T) {
	a := sampleTaskSub()
	b := sampleTaskSub()
	if Fingerprint(a.Atoms()...) != Fingerprint(b.Atoms()...) {
		t.Error("identical states fingerprint differently")
	}
	b.Add(Str("new"))
	if Fingerprint(a.Atoms()...) == Fingerprint(b.Atoms()...) {
		t.Error("different states fingerprint equal")
	}

	// Kind confusion must not collide: 1 vs "1" vs <1> vs [1].
	fps := map[uint64]string{}
	for _, c := range []Atom{Int(1), Str("1"), Ident("A1"), NewSolution(Int(1)), List{Int(1)}} {
		fp := Fingerprint(c)
		if prev, dup := fps[fp]; dup {
			t.Errorf("fingerprint collision: %v vs %s", c, prev)
		}
		fps[fp] = c.String()
	}
}

func TestFingerprintSeesRuleBodyChanges(t *testing.T) {
	// Rules can ride inside nested solutions of a status payload (they
	// are only stripped at top level), so two rules that differ only in
	// guard or products must not collide — same name/arity included.
	a := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	b := MustParseRuleBody("max", "replace x, y by y if x >= y", nil)
	c := MustParseRuleBody("max", "replace x, y by x if x <= y", nil)
	if Fingerprint(NewSolution(a)) == Fingerprint(NewSolution(b)) {
		t.Error("rules with different products fingerprint equal")
	}
	if Fingerprint(NewSolution(a)) == Fingerprint(NewSolution(c)) {
		t.Error("rules with different guards fingerprint equal")
	}
	a2 := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	if Fingerprint(NewSolution(a)) != Fingerprint(NewSolution(a2)) {
		t.Error("structurally equal rules fingerprint differently")
	}
}

// TestFingerprintOrderInsensitiveTopLevel: permuting the top-level
// multiset must not change the fingerprint (a permutation-only reduction
// is chemically the same state), while genuinely different multisets —
// including ones differing only in multiplicity — must not collide.
func TestFingerprintOrderInsensitiveTopLevel(t *testing.T) {
	a, b, c := Str("a"), Int(7), Tuple{Ident("STATUS"), Str("completed")}
	if Fingerprint(a, b, c) != Fingerprint(c, a, b) {
		t.Error("permuted multisets fingerprint differently")
	}
	if Fingerprint(a, b, c) != Fingerprint(b, c, a) {
		t.Error("permuted multisets fingerprint differently (second rotation)")
	}
	if Fingerprint(a, b) == Fingerprint(a, b, c) {
		t.Error("different multisets fingerprint equal")
	}
	// Multiplicity matters: {a, a, b} vs {a, b, b} vs {a, b}.
	if Fingerprint(a, a, b) == Fingerprint(a, b, b) {
		t.Error("multisets differing only in multiplicity collide")
	}
	if Fingerprint(a, a, b) == Fingerprint(a, b) {
		t.Error("duplicate atom not reflected in fingerprint")
	}
	// The empty multiset is distinct from any singleton.
	if Fingerprint() == Fingerprint(a) {
		t.Error("empty multiset collides with singleton")
	}
}

// TestFingerprintNestedOrderStillCounts: below the top level, element
// order is structurally meaningful (tuples and lists are ordered on the
// wire), so swapping elements inside a nested container must change the
// fingerprint.
func TestFingerprintNestedOrderStillCounts(t *testing.T) {
	if Fingerprint(List{Int(1), Int(2)}) == Fingerprint(List{Int(2), Int(1)}) {
		t.Error("list element order ignored")
	}
	if Fingerprint(Tuple{Str("x"), Str("y")}) == Fingerprint(Tuple{Str("y"), Str("x")}) {
		t.Error("tuple element order ignored")
	}
}

func TestFingerprintIgnoresInertFlag(t *testing.T) {
	a := NewSolution(Int(1))
	fp := Fingerprint(a)
	a.SetInert(true)
	if Fingerprint(a) != fp {
		t.Error("inert flag changed the fingerprint")
	}
}

func TestGenCountsMutations(t *testing.T) {
	s := NewSolution(Int(1))
	g := s.Gen()
	s.Add(Int(2))
	if s.Gen() == g {
		t.Error("Add did not bump the generation")
	}
	g = s.Gen()
	s.RemoveIndices([]int{0})
	if s.Gen() == g {
		t.Error("RemoveIndices did not bump the generation")
	}
	g = s.Gen()
	s.ReplaceAt(0, Int(3))
	if s.Gen() == g {
		t.Error("ReplaceAt did not bump the generation")
	}
	g = s.Gen()
	s.SetInert(true)
	if s.Gen() != g {
		t.Error("SetInert must not bump the generation")
	}
}

// TestAtomHashMatchesFingerprint pins the invariant the delta status
// protocol rests on: folding per-atom hashes through MultisetHash yields
// exactly Fingerprint of the same atoms, and Remove undoes Add.
func TestAtomHashMatchesFingerprint(t *testing.T) {
	atoms := sampleTaskSub().Atoms()
	var m MultisetHash
	for _, a := range atoms {
		m.Add(AtomHash(a))
	}
	if got, want := m.Fingerprint(), Fingerprint(atoms...); got != want {
		t.Errorf("MultisetHash fingerprint %#x != Fingerprint %#x", got, want)
	}
	if m.Count() != len(atoms) {
		t.Errorf("Count = %d, want %d", m.Count(), len(atoms))
	}

	// Removing one atom lands on the fingerprint of the rest.
	m.Remove(AtomHash(atoms[0]))
	if got, want := m.Fingerprint(), Fingerprint(atoms[1:]...); got != want {
		t.Errorf("after Remove: %#x != %#x", got, want)
	}

	// The zero value hashes the empty multiset.
	var empty MultisetHash
	if got, want := empty.Fingerprint(), Fingerprint(); got != want {
		t.Errorf("empty: %#x != %#x", got, want)
	}
}

// TestAtomHashOrderInsensitiveViaMultiset: the multiset combine is
// order-insensitive (add order does not matter), while distinct atoms
// hash apart.
func TestAtomHashOrderInsensitiveViaMultiset(t *testing.T) {
	a, b, c := Atom(Int(1)), Atom(Str("x")), Atom(Tuple{Ident("RES"), NewSolution(Int(2))})
	var m1, m2 MultisetHash
	for _, x := range []Atom{a, b, c} {
		m1.Add(AtomHash(x))
	}
	for _, x := range []Atom{c, a, b} {
		m2.Add(AtomHash(x))
	}
	if m1.Fingerprint() != m2.Fingerprint() {
		t.Error("add order changed the multiset fingerprint")
	}
	if AtomHash(a) == AtomHash(b) {
		t.Error("distinct atoms share a hash")
	}
	// A snapshot hashes identically to its original (structural hash).
	if AtomHash(c) != AtomHash(Snapshot(c)) {
		t.Error("snapshot changed the atom hash")
	}
}
