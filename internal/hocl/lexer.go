package hocl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind enumerates lexical token kinds of the ASCII HOCL dialect.
type tokKind int

const (
	tokEOF   tokKind = iota
	tokIdent         // identifier: variables, symbols, function names
	tokInt
	tokFloat
	tokString
	tokLAngle  // <
	tokRAngle  // >
	tokLBrack  // [
	tokRBrack  // ]
	tokLParen  // (
	tokRParen  // )
	tokComma   // ,
	tokColon   // :
	tokStar    // *
	tokAssign  // =
	tokOp      // == != <= >= && || + - / % !
	tokKeyword // let in replace replace-one with inject by if rule nothing true false
)

var keywords = map[string]bool{
	"let": true, "in": true, "replace": true, "replace-one": true,
	"with": true, "inject": true, "by": true, "if": true,
	"rule": true, "nothing": true, "true": true, "false": true,
}

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// SyntaxError reports a lexing or parsing failure with position info.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("hocl: %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: lx.line, Col: lx.col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *lexer) advance(n int) {
	for i := 0; i < n && lx.pos < len(lx.src); i++ {
		if lx.src[lx.pos] == '\n' {
			lx.line++
			lx.col = 1
		} else {
			lx.col++
		}
		lx.pos++
	}
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance(1)
		case c == '/' && lx.peekByteAt(1) == '/':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case c == '#':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.advance(1)
			}
		case c == '/' && lx.peekByteAt(1) == '*':
			lx.advance(2)
			for {
				if lx.pos >= len(lx.src) {
					return lx.errf("unterminated block comment")
				}
				if lx.src[lx.pos] == '*' && lx.peekByteAt(1) == '/' {
					lx.advance(2)
					break
				}
				lx.advance(1)
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// next returns the next token.
func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	tok := token{line: lx.line, col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.kind = tokEOF
		return tok, nil
	}
	c := lx.src[lx.pos]

	switch {
	case c >= '0' && c <= '9':
		return lx.lexNumber()
	case c == '"':
		return lx.lexString()
	}

	r, _ := utf8.DecodeRuneInString(lx.src[lx.pos:])
	if isIdentStart(r) {
		return lx.lexIdent()
	}

	// Two-character operators first.
	two := ""
	if lx.pos+1 < len(lx.src) {
		two = lx.src[lx.pos : lx.pos+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		tok.kind = tokOp
		tok.text = two
		lx.advance(2)
		return tok, nil
	}

	switch c {
	case '<':
		tok.kind, tok.text = tokLAngle, "<"
	case '>':
		tok.kind, tok.text = tokRAngle, ">"
	case '[':
		tok.kind, tok.text = tokLBrack, "["
	case ']':
		tok.kind, tok.text = tokRBrack, "]"
	case '(':
		tok.kind, tok.text = tokLParen, "("
	case ')':
		tok.kind, tok.text = tokRParen, ")"
	case ',':
		tok.kind, tok.text = tokComma, ","
	case ':':
		tok.kind, tok.text = tokColon, ":"
	case '*':
		tok.kind, tok.text = tokStar, "*"
	case '=':
		tok.kind, tok.text = tokAssign, "="
	case '+', '-', '/', '%', '!':
		tok.kind, tok.text = tokOp, string(c)
	default:
		return token{}, lx.errf("unexpected character %q", string(c))
	}
	lx.advance(1)
	return tok, nil
}

func (lx *lexer) lexNumber() (token, error) {
	tok := token{line: lx.line, col: lx.col}
	start := lx.pos
	for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
		lx.advance(1)
	}
	isFloat := false
	if lx.peekByte() == '.' && lx.peekByteAt(1) >= '0' && lx.peekByteAt(1) <= '9' {
		isFloat = true
		lx.advance(1)
		for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
			lx.advance(1)
		}
	}
	if b := lx.peekByte(); b == 'e' || b == 'E' {
		// Exponent part: e[+-]?digits.
		save := lx.pos
		lx.advance(1)
		if b := lx.peekByte(); b == '+' || b == '-' {
			lx.advance(1)
		}
		if b := lx.peekByte(); b >= '0' && b <= '9' {
			isFloat = true
			for lx.pos < len(lx.src) && lx.src[lx.pos] >= '0' && lx.src[lx.pos] <= '9' {
				lx.advance(1)
			}
		} else {
			lx.pos = save // not an exponent; restore ("3e" → "3", ident "e")
		}
	}
	tok.text = lx.src[start:lx.pos]
	if isFloat {
		tok.kind = tokFloat
	} else {
		tok.kind = tokInt
	}
	return tok, nil
}

func (lx *lexer) lexString() (token, error) {
	tok := token{line: lx.line, col: lx.col}
	start := lx.pos
	lx.advance(1) // opening quote
	for {
		if lx.pos >= len(lx.src) {
			return token{}, lx.errf("unterminated string literal")
		}
		c := lx.src[lx.pos]
		if c == '\\' {
			lx.advance(2)
			continue
		}
		if c == '"' {
			lx.advance(1)
			break
		}
		lx.advance(1)
	}
	tok.kind = tokString
	tok.text = lx.src[start:lx.pos]
	return tok, nil
}

func (lx *lexer) lexIdent() (token, error) {
	tok := token{line: lx.line, col: lx.col}
	start := lx.pos
	for lx.pos < len(lx.src) {
		r, size := utf8.DecodeRuneInString(lx.src[lx.pos:])
		if !isIdentPart(r) {
			break
		}
		lx.advance(size)
	}
	text := lx.src[start:lx.pos]
	// "replace" may extend to "replace-one".
	if text == "replace" && strings.HasPrefix(lx.src[lx.pos:], "-one") {
		lx.advance(4)
		text = "replace-one"
	}
	tok.text = text
	if keywords[text] {
		tok.kind = tokKeyword
	} else {
		tok.kind = tokIdent
	}
	return tok, nil
}

// unquote decodes a lexed string literal.
func unquote(lit string) (string, error) {
	s, err := strconv.Unquote(lit)
	if err != nil {
		return "", fmt.Errorf("invalid string literal %s: %w", lit, err)
	}
	return s, nil
}
