package hocl

import (
	"fmt"
	"sort"
)

// registerListBuiltins adds the numeric and list utilities beyond the
// core set — the HOCLflow "extra syntactic facilities" (§III-A) grow a
// small standard library here so user programs and service kernels can
// manipulate parameter lists without external functions.
func (f *Funcs) registerListBuiltins() {
	f.Register("sum", numericFold("sum", func(acc, x float64) float64 { return acc + x }, 0))
	f.Register("product", numericFold("product", func(acc, x float64) float64 { return acc * x }, 1))
	f.Register("count", func(args []Atom) ([]Atom, error) {
		return []Atom{Int(len(args))}, nil
	})
	f.Register("minimum", numericPick("minimum", func(a, b float64) bool { return a < b }))
	f.Register("maximum", numericPick("maximum", func(a, b float64) bool { return a > b }))
	f.Register("nth", func(args []Atom) ([]Atom, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("nth: want (list, index)")
		}
		l, ok := args[0].(List)
		if !ok {
			return nil, fmt.Errorf("nth: first argument is %s, want list", args[0].Kind())
		}
		n, ok := args[1].(Int)
		if !ok {
			return nil, fmt.Errorf("nth: index is %s, want int", args[1].Kind())
		}
		if n < 0 || int(n) >= len(l) {
			return nil, fmt.Errorf("nth: index %d out of range [0, %d)", n, len(l))
		}
		return []Atom{l[n]}, nil
	})
	f.Register("reverse", func(args []Atom) ([]Atom, error) {
		l, err := oneList("reverse", args)
		if err != nil {
			return nil, err
		}
		out := make(List, len(l))
		for i, a := range l {
			out[len(l)-1-i] = a
		}
		return []Atom{out}, nil
	})
	f.Register("sorted", func(args []Atom) ([]Atom, error) {
		l, err := oneList("sorted", args)
		if err != nil {
			return nil, err
		}
		out := append(List(nil), l...)
		var sortErr error
		sort.SliceStable(out, func(i, j int) bool {
			c, err := compareAtoms(out[i], out[j])
			if err != nil && sortErr == nil {
				sortErr = fmt.Errorf("sorted: %w", err)
			}
			return c < 0
		})
		if sortErr != nil {
			return nil, sortErr
		}
		return []Atom{out}, nil
	})
	f.Register("contains", func(args []Atom) ([]Atom, error) {
		if len(args) != 2 {
			return nil, fmt.Errorf("contains: want (list|solution, atom)")
		}
		needle := args[1]
		switch hay := args[0].(type) {
		case List:
			for _, a := range hay {
				if a.Equal(needle) {
					return []Atom{Bool(true)}, nil
				}
			}
			return []Atom{Bool(false)}, nil
		case *Solution:
			return []Atom{Bool(hay.Contains(needle))}, nil
		default:
			return nil, fmt.Errorf("contains: cannot search %s", args[0].Kind())
		}
	})
}

// numericFold builds a variadic numeric reducer that accepts bare
// numbers, or a single list of numbers. Integers stay integral when
// every operand is an Int.
func numericFold(name string, step func(acc, x float64) float64, init float64) Func {
	return func(args []Atom) ([]Atom, error) {
		nums, allInt, err := numericArgs(name, args)
		if err != nil {
			return nil, err
		}
		acc := init
		for _, x := range nums {
			acc = step(acc, x)
		}
		if allInt {
			return []Atom{Int(int64(acc))}, nil
		}
		return []Atom{Float(acc)}, nil
	}
}

// numericPick builds min/max style selectors.
func numericPick(name string, better func(a, b float64) bool) Func {
	return func(args []Atom) ([]Atom, error) {
		nums, allInt, err := numericArgs(name, args)
		if err != nil {
			return nil, err
		}
		if len(nums) == 0 {
			return nil, fmt.Errorf("%s: no operands", name)
		}
		best := nums[0]
		for _, x := range nums[1:] {
			if better(x, best) {
				best = x
			}
		}
		if allInt {
			return []Atom{Int(int64(best))}, nil
		}
		return []Atom{Float(best)}, nil
	}
}

// numericArgs flattens arguments into float operands: either a single
// list argument or bare numbers.
func numericArgs(name string, args []Atom) (nums []float64, allInt bool, err error) {
	operands := args
	if len(args) == 1 {
		if l, ok := args[0].(List); ok {
			operands = l
		}
	}
	allInt = true
	for _, a := range operands {
		switch v := a.(type) {
		case Int:
			nums = append(nums, float64(v))
		case Float:
			nums = append(nums, float64(v))
			allInt = false
		default:
			return nil, false, fmt.Errorf("%s: operand %s is not numeric", name, a.Kind())
		}
	}
	return nums, allInt, nil
}
