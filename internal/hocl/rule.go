package hocl

import (
	"fmt"
	"strings"
	"sync"
)

// Rule is a reaction rule and, per HOCL's higher order, also an atom that
// can float in solutions, be consumed and be produced. Rules are immutable
// after construction.
//
//	replace P1, ..., Pn by M1, ..., Mk if G      (catalyst: persists)
//	replace-one P1, ..., Pn by M1, ..., Mk if G  (one-shot: fires once)
type Rule struct {
	// Name identifies the rule for higher-order references; anonymous
	// rules have an empty name.
	Name    string
	Pattern []Pattern
	Guard   Expr // nil means always true
	Product []Expr
	OneShot bool

	// compiled caches the matcher program for Pattern. Patterns are
	// immutable, so the cache is never invalidated; rules are shared by
	// reference across engines (Clone returns the rule itself), so
	// compilation must be once-only under concurrency.
	compileOnce sync.Once
	compiled    []minstr

	// ecompileOnce caches the expression programs for Guard and Product
	// under the same immutability/sharing contract as compileOnce.
	ecompileOnce sync.Once
	guardProg    []einstr
	productProg  []einstr
}

// program returns the rule's compiled matcher program, compiling the
// pattern list on first use.
func (r *Rule) program() []minstr {
	r.compileOnce.Do(func() { r.compiled = compilePatterns(r.Pattern) })
	return r.compiled
}

// eprograms returns the rule's compiled guard and product programs,
// compiling both expression trees on first use. A nil guard compiles to
// an empty program (always true).
func (r *Rule) eprograms() (guard, products []einstr) {
	r.ecompileOnce.Do(func() {
		r.guardProg = compileGuard(r.Guard)
		r.productProg = compileProducts(r.Product)
	})
	return r.guardProg, r.productProg
}

// NewRule builds a named catalyst rule.
func NewRule(name string, pattern []Pattern, guard Expr, product []Expr) *Rule {
	return &Rule{Name: name, Pattern: pattern, Guard: guard, Product: product}
}

// NewOneShotRule builds a named replace-one rule.
func NewOneShotRule(name string, pattern []Pattern, guard Expr, product []Expr) *Rule {
	return &Rule{Name: name, Pattern: pattern, Guard: guard, Product: product, OneShot: true}
}

// Equal compares rules structurally: same name and same rendered
// definition. Rules received over the wire must compare equal to the
// rules they were printed from, anonymous ones included.
func (r *Rule) Equal(b Atom) bool {
	o, ok := b.(*Rule)
	if !ok {
		return false
	}
	if r == o {
		return true
	}
	return r.Name == o.Name && r.OneShot == o.OneShot && r.Body() == o.Body()
}

// Clone returns the rule itself: rules are immutable, so sharing is safe.
func (r *Rule) Clone() Atom { return r }

// Keyword returns the defining keyword of the rule.
func (r *Rule) Keyword() string {
	if r.OneShot {
		return "replace-one"
	}
	return "replace"
}

// Body renders the rule definition without its name binding, e.g.
// "replace x, y by x if (x >= y)".
func (r *Rule) Body() string {
	var b strings.Builder
	b.WriteString(r.Keyword())
	b.WriteByte(' ')
	for i, p := range r.Pattern {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(" by ")
	if len(r.Product) == 0 {
		b.WriteString("nothing")
	}
	for i, e := range r.Product {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(e.String())
	}
	if r.Guard != nil {
		b.WriteString(" if ")
		b.WriteString(r.Guard.String())
	}
	return b.String()
}

// String renders the rule as a parseable inline literal:
// "(rule name = replace ... by ... if ...)". The parenthesised form keeps
// the rule's internal commas from being read as solution separators, so
// solutions containing rules round-trip through the wire format.
func (r *Rule) String() string {
	name := r.Name
	if name == "" {
		name = "_"
	}
	return fmt.Sprintf("(rule %s = %s)", name, r.Body())
}

// Apply fires the rule on sol for the given match: consumed atoms are
// removed (plus the rule itself at selfIdx when one-shot) and products
// are evaluated and inserted. Apply reports an error if a product fails
// to evaluate; the solution is unchanged in that case.
func (r *Rule) Apply(sol *Solution, m *Match, selfIdx int, funcs *Funcs) error {
	var vm evalVM
	return r.applyVM(sol, m, selfIdx, funcs, &vm)
}

// applyVM is Apply with a caller-owned expression machine: the engine's
// hot loop reuses one machine (and its removal scratch) across firings,
// so firing a rule allocates only what the products themselves require.
// The products are inserted straight off the machine's value stack —
// Solution.Add copies the atoms, so the stack is free for reuse after.
func (r *Rule) applyVM(sol *Solution, m *Match, selfIdx int, funcs *Funcs, vm *evalVM) error {
	_, pprog := r.eprograms()
	if err := vm.run(pprog, m.Env, funcs); err != nil {
		return fmt.Errorf("hocl: rule %s: %w", r.displayName(), err)
	}
	remove := append(vm.removeScratch[:0], m.Consumed...)
	if r.OneShot && selfIdx >= 0 {
		remove = append(remove, selfIdx)
	}
	vm.removeScratch = remove
	sol.removeSortedInPlace(remove)
	sol.Add(vm.stack...)
	return nil
}

func (r *Rule) displayName() string {
	if r.Name == "" {
		return "<anonymous>"
	}
	return r.Name
}
