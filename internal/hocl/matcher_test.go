package hocl

import (
	"testing"
)

// matchOnce builds a rule from src, matches it against the solution
// (after reducing sub-solutions to inertness) and returns the match.
func matchOnce(t *testing.T, ruleSrc string, sol *Solution) *Match {
	t.Helper()
	r := MustParseRuleBody("r", ruleSrc, nil)
	sol.Add(r)
	if err := NewEngine().reduceNestedOnly(sol); err != nil {
		t.Fatal(err)
	}
	return MatchRule(r, sol, sol.Len()-1, NewFuncs(), nil)
}

// reduceNestedOnly reduces every nested solution to inertness without
// firing top-level rules — test scaffolding for matcher-level assertions.
func (e *Engine) reduceNestedOnly(sol *Solution) error {
	for _, sub := range sol.nestedSolutions() {
		if err := e.reduce(sub, 1); err != nil {
			return err
		}
	}
	return nil
}

func TestMatcherBindsTupleKeyAcrossElements(t *testing.T) {
	// gw_pass-style cross-element non-linear binding: the destination
	// name found in the first tuple must select the second tuple.
	sol := NewSolution(
		Tuple{Ident("T1"), NewSolution(Tuple{Ident("DST"), NewSolution(Ident("T2"))})},
		Tuple{Ident("T2"), NewSolution(Tuple{Ident("SRC"), NewSolution(Ident("T1"))})},
		Tuple{Ident("T3"), NewSolution(Tuple{Ident("SRC"), NewSolution(Ident("T9"))})},
	)
	m := matchOnce(t, `replace ti:<DST:<tj, *d>>, tj:<SRC:<ti, *s>> by MATCHED`, sol)
	if m == nil {
		t.Fatal("no match")
	}
	ti, _ := m.Env.Atom("ti")
	tj, _ := m.Env.Atom("tj")
	if !ti.Equal(Ident("T1")) || !tj.Equal(Ident("T2")) {
		t.Errorf("bindings ti=%v tj=%v", ti, tj)
	}
}

func TestMatcherBacktracksAcrossWrongCandidates(t *testing.T) {
	// The first candidate for x (10) cannot complete the match (no
	// matching partner); the matcher must revisit.
	sol := NewSolution(
		Tuple{Ident("A"), Int(10)},
		Tuple{Ident("A"), Int(3)},
		Tuple{Ident("B"), Int(3)},
	)
	m := matchOnce(t, `replace A:x, B:x by MATCHED`, sol)
	if m == nil {
		t.Fatal("no match despite valid assignment")
	}
	x, _ := m.Env.Atom("x")
	if !x.Equal(Int(3)) {
		t.Errorf("x = %v, want 3", x)
	}
}

func TestMatcherRestBindingIsSharedNonLinearly(t *testing.T) {
	// The same omega name in two solution patterns requires multiset-
	// equal rests.
	sol := NewSolution(
		NewSolution(Ident("K"), Int(1), Int(2)),
		NewSolution(Ident("K"), Int(2), Int(1)),
	)
	if m := matchOnce(t, `replace <K, *w>, <K, *w> by SAME`, sol); m == nil {
		t.Fatal("equal rests must match non-linear omega")
	}
	sol2 := NewSolution(
		NewSolution(Ident("K"), Int(1)),
		NewSolution(Ident("K"), Int(2)),
	)
	if m := matchOnce(t, `replace <K, *w>, <K, *w> by SAME`, sol2); m != nil {
		t.Fatal("different rests matched non-linear omega")
	}
}

func TestMatcherListPattern(t *testing.T) {
	sol := NewSolution(List{Int(1), Str("x"), Bool(true)})
	m := matchOnce(t, `replace [a, b, c] by c, b, a`, sol)
	if m == nil {
		t.Fatal("list pattern did not match")
	}
	b, _ := m.Env.Atom("b")
	if !b.Equal(Str("x")) {
		t.Errorf("b = %v", b)
	}
	// Arity must be exact.
	sol2 := NewSolution(List{Int(1), Int(2)})
	if m := matchOnce(t, `replace [a, b, c] by a`, sol2); m != nil {
		t.Fatal("list arity mismatch matched")
	}
}

func TestMatcherEmptySolutionPattern(t *testing.T) {
	empty := NewSolution()
	sol := NewSolution(Tuple{Ident("SRC"), empty})
	if m := matchOnce(t, `replace SRC:<> by READY`, sol); m == nil {
		t.Fatal("SRC:<> did not match empty inert solution")
	}
	nonEmpty := NewSolution(Tuple{Ident("SRC"), NewSolution(Ident("T1"))})
	if m := matchOnce(t, `replace SRC:<> by READY`, nonEmpty); m != nil {
		t.Fatal("SRC:<> matched non-empty solution")
	}
}

func TestMatcherConsumedIndicesAreDistinct(t *testing.T) {
	sol := NewSolution(Int(5), Int(5))
	m := matchOnce(t, `replace x, y by PAIR if x == y`, sol)
	if m == nil {
		t.Fatal("no match")
	}
	if len(m.Consumed) != 2 || m.Consumed[0] == m.Consumed[1] {
		t.Errorf("consumed = %v", m.Consumed)
	}
}

func TestMatcherRuleDoesNotConsumeItself(t *testing.T) {
	// A one-atom pattern must not match the firing rule's own atom.
	sol := NewSolution()
	r := MustParseRuleBody("lonely", "replace x by x, x", nil)
	sol.Add(r)
	if m := MatchRule(r, sol, 0, NewFuncs(), nil); m != nil {
		t.Fatal("rule consumed itself")
	}
}

func TestMatcherRuleCanConsumeOtherRules(t *testing.T) {
	// ...but an unconstrained variable does bind other rule atoms.
	other := MustParseRuleBody("other", "replace y by y if false", nil)
	sol := NewSolution(other)
	m := matchOnce(t, `replace x by CONSUMED`, sol)
	if m == nil {
		t.Fatal("variable did not bind a rule atom")
	}
	x, _ := m.Env.Atom("x")
	if _, isRule := x.(*Rule); !isRule {
		t.Errorf("x = %T, want rule", x)
	}
}

func TestMatcherDeepNesting(t *testing.T) {
	// Three levels of nesting with omegas at two levels.
	ground := mustParseGround(t, `BOX:<LID:<GEM, 1, 2>, 3>`)
	sol := NewSolution(ground)
	m := matchOnce(t, `replace BOX:<LID:<GEM, *inner>, *outer> by list(*inner), list(*outer)`, sol)
	if m == nil {
		t.Fatal("deep pattern did not match")
	}
	inner, _ := m.Env.Rest("inner")
	outer, _ := m.Env.Rest("outer")
	if len(inner) != 2 || len(outer) != 1 {
		t.Errorf("inner=%v outer=%v", inner, outer)
	}
}

func TestMatcherOrderPermutationStillFindsMatch(t *testing.T) {
	// With an adversarial candidate order the matcher still finds the
	// only valid pair.
	sol := NewSolution(Int(1), Int(2), Int(3), Int(4), Int(100), Int(100))
	r := MustParseRuleBody("pair", "replace x, y by HIT if x == y", nil)
	sol.Add(r)
	if err := NewEngine().reduceNestedOnly(sol); err != nil {
		t.Fatal(err)
	}
	// Reverse order.
	order := make([]int, sol.Len())
	for i := range order {
		order[i] = sol.Len() - 1 - i
	}
	if m := MatchRule(r, sol, sol.Len()-1, NewFuncs(), order); m == nil {
		t.Fatal("no match under permuted order")
	}
}
