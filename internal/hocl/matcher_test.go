package hocl

import (
	"math/rand"
	"sync"
	"testing"
)

// matchOnce builds a rule from src, matches it against the solution
// (after reducing sub-solutions to inertness) and returns the match.
func matchOnce(t *testing.T, ruleSrc string, sol *Solution) *Match {
	t.Helper()
	r := MustParseRuleBody("r", ruleSrc, nil)
	sol.Add(r)
	if err := NewEngine().reduceNestedOnly(sol); err != nil {
		t.Fatal(err)
	}
	return MatchRule(r, sol, sol.Len()-1, NewFuncs(), nil)
}

// reduceNestedOnly reduces every nested solution to inertness without
// firing top-level rules — test scaffolding for matcher-level assertions.
func (e *Engine) reduceNestedOnly(sol *Solution) error {
	for _, sub := range sol.nestedSolutions() {
		if err := e.reduce(sub, 1); err != nil {
			return err
		}
	}
	return nil
}

func TestMatcherBindsTupleKeyAcrossElements(t *testing.T) {
	// gw_pass-style cross-element non-linear binding: the destination
	// name found in the first tuple must select the second tuple.
	sol := NewSolution(
		Tuple{Ident("T1"), NewSolution(Tuple{Ident("DST"), NewSolution(Ident("T2"))})},
		Tuple{Ident("T2"), NewSolution(Tuple{Ident("SRC"), NewSolution(Ident("T1"))})},
		Tuple{Ident("T3"), NewSolution(Tuple{Ident("SRC"), NewSolution(Ident("T9"))})},
	)
	m := matchOnce(t, `replace ti:<DST:<tj, *d>>, tj:<SRC:<ti, *s>> by MATCHED`, sol)
	if m == nil {
		t.Fatal("no match")
	}
	ti, _ := m.Env.Atom("ti")
	tj, _ := m.Env.Atom("tj")
	if !ti.Equal(Ident("T1")) || !tj.Equal(Ident("T2")) {
		t.Errorf("bindings ti=%v tj=%v", ti, tj)
	}
}

func TestMatcherBacktracksAcrossWrongCandidates(t *testing.T) {
	// The first candidate for x (10) cannot complete the match (no
	// matching partner); the matcher must revisit.
	sol := NewSolution(
		Tuple{Ident("A"), Int(10)},
		Tuple{Ident("A"), Int(3)},
		Tuple{Ident("B"), Int(3)},
	)
	m := matchOnce(t, `replace A:x, B:x by MATCHED`, sol)
	if m == nil {
		t.Fatal("no match despite valid assignment")
	}
	x, _ := m.Env.Atom("x")
	if !x.Equal(Int(3)) {
		t.Errorf("x = %v, want 3", x)
	}
}

func TestMatcherRestBindingIsSharedNonLinearly(t *testing.T) {
	// The same omega name in two solution patterns requires multiset-
	// equal rests.
	sol := NewSolution(
		NewSolution(Ident("K"), Int(1), Int(2)),
		NewSolution(Ident("K"), Int(2), Int(1)),
	)
	if m := matchOnce(t, `replace <K, *w>, <K, *w> by SAME`, sol); m == nil {
		t.Fatal("equal rests must match non-linear omega")
	}
	sol2 := NewSolution(
		NewSolution(Ident("K"), Int(1)),
		NewSolution(Ident("K"), Int(2)),
	)
	if m := matchOnce(t, `replace <K, *w>, <K, *w> by SAME`, sol2); m != nil {
		t.Fatal("different rests matched non-linear omega")
	}
}

func TestMatcherListPattern(t *testing.T) {
	sol := NewSolution(List{Int(1), Str("x"), Bool(true)})
	m := matchOnce(t, `replace [a, b, c] by c, b, a`, sol)
	if m == nil {
		t.Fatal("list pattern did not match")
	}
	b, _ := m.Env.Atom("b")
	if !b.Equal(Str("x")) {
		t.Errorf("b = %v", b)
	}
	// Arity must be exact.
	sol2 := NewSolution(List{Int(1), Int(2)})
	if m := matchOnce(t, `replace [a, b, c] by a`, sol2); m != nil {
		t.Fatal("list arity mismatch matched")
	}
}

func TestMatcherEmptySolutionPattern(t *testing.T) {
	empty := NewSolution()
	sol := NewSolution(Tuple{Ident("SRC"), empty})
	if m := matchOnce(t, `replace SRC:<> by READY`, sol); m == nil {
		t.Fatal("SRC:<> did not match empty inert solution")
	}
	nonEmpty := NewSolution(Tuple{Ident("SRC"), NewSolution(Ident("T1"))})
	if m := matchOnce(t, `replace SRC:<> by READY`, nonEmpty); m != nil {
		t.Fatal("SRC:<> matched non-empty solution")
	}
}

func TestMatcherConsumedIndicesAreDistinct(t *testing.T) {
	sol := NewSolution(Int(5), Int(5))
	m := matchOnce(t, `replace x, y by PAIR if x == y`, sol)
	if m == nil {
		t.Fatal("no match")
	}
	if len(m.Consumed) != 2 || m.Consumed[0] == m.Consumed[1] {
		t.Errorf("consumed = %v", m.Consumed)
	}
}

func TestMatcherRuleDoesNotConsumeItself(t *testing.T) {
	// A one-atom pattern must not match the firing rule's own atom.
	sol := NewSolution()
	r := MustParseRuleBody("lonely", "replace x by x, x", nil)
	sol.Add(r)
	if m := MatchRule(r, sol, 0, NewFuncs(), nil); m != nil {
		t.Fatal("rule consumed itself")
	}
}

func TestMatcherRuleCanConsumeOtherRules(t *testing.T) {
	// ...but an unconstrained variable does bind other rule atoms.
	other := MustParseRuleBody("other", "replace y by y if false", nil)
	sol := NewSolution(other)
	m := matchOnce(t, `replace x by CONSUMED`, sol)
	if m == nil {
		t.Fatal("variable did not bind a rule atom")
	}
	x, _ := m.Env.Atom("x")
	if _, isRule := x.(*Rule); !isRule {
		t.Errorf("x = %T, want rule", x)
	}
}

func TestMatcherDeepNesting(t *testing.T) {
	// Three levels of nesting with omegas at two levels.
	ground := mustParseGround(t, `BOX:<LID:<GEM, 1, 2>, 3>`)
	sol := NewSolution(ground)
	m := matchOnce(t, `replace BOX:<LID:<GEM, *inner>, *outer> by list(*inner), list(*outer)`, sol)
	if m == nil {
		t.Fatal("deep pattern did not match")
	}
	inner, _ := m.Env.Rest("inner")
	outer, _ := m.Env.Rest("outer")
	if len(inner) != 2 || len(outer) != 1 {
		t.Errorf("inner=%v outer=%v", inner, outer)
	}
}

// TestNestedMatchOrderVariesAcrossSeeds pins the nested-ordering fix:
// the engine's chemical non-determinism must reach sub-solution
// candidate choice, not just the top level. The grab rule picks one
// element out of a six-atom sub-solution; with natural nested order
// every seed picked element 1.
func TestNestedMatchOrderVariesAcrossSeeds(t *testing.T) {
	run := func(seed int64) Atom {
		t.Helper()
		e := NewEngine()
		e.Rand = rand.New(rand.NewSource(seed))
		sol, err := e.Run(`let grab = replace-one <x, *w> by x in <<1, 2, 3, 4, 5, 6>, grab>`)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Len() != 1 {
			t.Fatalf("seed %d: final solution %v, want one picked atom", seed, sol)
		}
		return sol.At(0)
	}
	picked := map[string]bool{}
	for seed := int64(0); seed < 24; seed++ {
		picked[run(seed).String()] = true
	}
	if len(picked) < 2 {
		t.Fatalf("nested candidate choice never varied across 24 seeds: always %v", picked)
	}
	// Reproducibility: the same seed must pick the same atom.
	for seed := int64(0); seed < 4; seed++ {
		if a, b := run(seed), run(seed); !a.Equal(b) {
			t.Fatalf("seed %d not reproducible: %v vs %v", seed, a, b)
		}
	}
}

// TestRuleProgramConcurrentCompile hits one rule from many engines at
// once: the lazily compiled matcher program is cached on the shared
// *Rule, so first use must be race-free (the -race CI job is the real
// assertion here).
func TestRuleProgramConcurrentCompile(t *testing.T) {
	r := MustParseRuleBody("pair", "replace A:x, B:x by MATCHED if x == x", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sol := NewSolution(
				Tuple{Ident("A"), Int(g)},
				Tuple{Ident("B"), Int(g)},
			)
			if m := MatchRule(r, sol, -1, NewFuncs(), nil); m == nil {
				t.Errorf("goroutine %d: no match", g)
			}
		}(g)
	}
	wg.Wait()
}

// TestMatcherBacktracksAcrossSubSolutionChoices forces backtracking to
// revisit a *completed* sub-solution match after a later top-level
// pattern fails: the machine must keep finished contexts revisitable.
func TestMatcherBacktracksAcrossSubSolutionChoices(t *testing.T) {
	// k must bind 2 (picked inside the first sub-solution) because only
	// then does the second pattern find a partner.
	sol := NewSolution(
		NewSolution(Int(1), Int(2)),
		Tuple{Ident("NEED"), Int(2)},
	)
	m := matchOnce(t, `replace <k, *w>, NEED:k by HIT`, sol)
	if m == nil {
		t.Fatal("no match despite valid nested assignment")
	}
	k, _ := m.Env.Atom("k")
	if !k.Equal(Int(2)) {
		t.Errorf("k = %v, want 2", k)
	}
	w, _ := m.Env.Rest("w")
	if len(w) != 1 || !w[0].Equal(Int(1)) {
		t.Errorf("rest w = %v, want [1]", w)
	}
}

// TestMatcherReuseAcrossMatches drives one engine-owned matcher through
// many differently-shaped matches in sequence, checking the pooled
// machine state (frames, trail, contexts, used flags) never leaks
// between matches.
func TestMatcherReuseAcrossMatches(t *testing.T) {
	e := NewEngine()
	programs := []struct {
		src  string
		want Atom
	}{
		{`let p = replace <K, *w>, <K, *w> by SAME in <<K, 1, 2>, <K, 2, 1>, p>`, Ident("SAME")},
		{`let q = replace a:<RES:<r, *res>> by r in <T1:<RES:<9>>, q>`, Int(9)},
		{`let s = replace [a, b], a by b in <[1, 2], 1, s>`, Int(2)},
	}
	for round := 0; round < 3; round++ {
		for _, p := range programs {
			sol, err := e.Run(p.src)
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Contains(p.want) {
				t.Errorf("round %d: %s reduced to %v, want %v produced", round, p.src, sol, p.want)
			}
		}
	}
}

func TestMatcherOrderPermutationStillFindsMatch(t *testing.T) {
	// With an adversarial candidate order the matcher still finds the
	// only valid pair.
	sol := NewSolution(Int(1), Int(2), Int(3), Int(4), Int(100), Int(100))
	r := MustParseRuleBody("pair", "replace x, y by HIT if x == y", nil)
	sol.Add(r)
	if err := NewEngine().reduceNestedOnly(sol); err != nil {
		t.Fatal(err)
	}
	// Reverse order.
	order := make([]int, sol.Len())
	for i := range order {
		order[i] = sol.Len() - 1 - i
	}
	if m := MatchRule(r, sol, sol.Len()-1, NewFuncs(), order); m == nil {
		t.Fatal("no match under permuted order")
	}
}
