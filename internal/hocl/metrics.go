package hocl

import "ginflow/internal/obs"

// Chemical-engine instrumentation. The reduction loop is the hottest
// code in the repo (BenchmarkReduceDiamondRules guards its allocation
// budget), so counts accumulate in plain engine-local integers and are
// flushed to these process-wide counters once per Reduce / MatchRule
// call — the hot loop itself never touches an atomic.
var (
	metReduceCalls = obs.Default().Counter("ginflow_hocl_reduce_calls_total",
		"Engine.Reduce invocations (one per agent reaction pass).")
	metRuleFirings = obs.Default().Counter("ginflow_hocl_rule_firings_total",
		"Rules fired by the reduction VM.")
	metGuardRejections = obs.Default().Counter("ginflow_hocl_guard_rejections_total",
		"Complete candidate matches rejected by a rule guard.")
)
