package hocl

// The naive reference matcher: a direct recursive continuation-passing
// implementation of rule matching, kept as the oracle for the
// differential fuzz test (FuzzMatcherDifferential in fuzz_test.go).
//
// This is, essentially, the pre-machine CPS matcher with its pooling
// stripped: it allocates freely and optimises nothing, which is exactly
// what makes it a trustworthy reference. It must track the production
// matcher's *semantics* — same match/no-match, same consumed indices,
// same bindings under natural nested order — but never its
// implementation. The machine replaced this code after the differential
// test proved them equivalent over randomized rule/solution pairs; the
// same test now guards the machine against regressions.

// referenceMatch is MatchRule's oracle twin.
func referenceMatch(r *Rule, sol *Solution, selfIdx int, funcs *Funcs, order []int) *Match {
	m := &refMatcher{
		sol:   sol,
		used:  make([]bool, sol.Len()),
		env:   NewBinding(),
		funcs: funcs,
		order: order,
	}
	if selfIdx >= 0 && selfIdx < sol.Len() {
		m.used[selfIdx] = true
	}
	var consumed []int
	ok := m.matchSeq(r.Pattern, 0, func() bool {
		if !EvalGuard(r.Guard, m.env, m.funcs) {
			return false
		}
		for i, u := range m.used {
			if u && i != selfIdx {
				consumed = append(consumed, i)
			}
		}
		return true
	})
	if !ok {
		return nil
	}
	return &Match{Env: m.env, Consumed: consumed}
}

type refMatcher struct {
	sol   *Solution
	used  []bool
	env   *Binding
	funcs *Funcs
	order []int
}

// matchSeq matches patterns[k:] against unused atoms of m.sol, invoking
// cont when every pattern is placed.
func (m *refMatcher) matchSeq(patterns []Pattern, k int, cont func() bool) bool {
	if k == len(patterns) {
		return cont()
	}
	p := patterns[k]
	n := m.sol.Len()
	for oi := 0; oi < n; oi++ {
		i := oi
		if m.order != nil {
			i = m.order[oi]
		}
		if m.used[i] {
			continue
		}
		m.used[i] = true
		ok := m.matchAtom(p, m.sol.At(i), func() bool {
			return m.matchSeq(patterns, k+1, cont)
		})
		if ok {
			return true
		}
		m.used[i] = false
	}
	return false
}

// matchAtom matches a single pattern against a single atom, calling cont
// on (tentative) success; bindings are rolled back when cont fails.
func (m *refMatcher) matchAtom(p Pattern, a Atom, cont func() bool) bool {
	switch pt := p.(type) {
	case *PVar:
		if prev, ok := m.env.Atom(pt.Name); ok {
			if !prev.Equal(a) {
				return false
			}
			return cont()
		}
		mark := m.env.mark()
		m.env.bindAtom(pt.Name, a)
		if cont() {
			return true
		}
		m.env.undo(mark)
		return false

	case *PConst:
		return pt.Val.Equal(a) && cont()

	case *PRuleRef:
		r, ok := a.(*Rule)
		return ok && r.Name == pt.Name && cont()

	case *PTuple:
		t, ok := a.(Tuple)
		if !ok || len(t) != len(pt.Elems) {
			return false
		}
		return m.matchFixed(pt.Elems, []Atom(t), 0, cont)

	case *PList:
		l, ok := a.(List)
		if !ok || len(l) != len(pt.Elems) {
			return false
		}
		return m.matchFixed(pt.Elems, []Atom(l), 0, cont)

	case *PSolution:
		sub, ok := a.(*Solution)
		if !ok || !sub.Inert() {
			return false
		}
		return m.matchSolutionContents(pt, sub, cont)

	case *POmega:
		return false

	default:
		return false
	}
}

func (m *refMatcher) matchFixed(pats []Pattern, atoms []Atom, k int, cont func() bool) bool {
	if k == len(pats) {
		return cont()
	}
	return m.matchAtom(pats[k], atoms[k], func() bool {
		return m.matchFixed(pats, atoms, k+1, cont)
	})
}

// matchSolutionContents matches a solution pattern's element patterns
// against distinct atoms of sub, binding the leftovers to the omega rest
// variable (or requiring none when Rest is empty).
func (m *refMatcher) matchSolutionContents(pt *PSolution, sub *Solution, cont func() bool) bool {
	used := make([]bool, sub.Len())
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(pt.Elems) {
			var rest []Atom
			for i := 0; i < sub.Len(); i++ {
				if !used[i] {
					rest = append(rest, sub.At(i))
				}
			}
			if pt.Rest == "" {
				return len(rest) == 0 && cont()
			}
			if prev, ok := m.env.Rest(pt.Rest); ok {
				return refRestEqual(prev, rest) && cont()
			}
			mark := m.env.mark()
			m.env.bindRest(pt.Rest, rest)
			if cont() {
				return true
			}
			m.env.undo(mark)
			return false
		}
		for i := 0; i < sub.Len(); i++ {
			if used[i] {
				continue
			}
			used[i] = true
			ok := m.matchAtom(pt.Elems[k], sub.At(i), func() bool {
				return rec(k + 1)
			})
			if ok {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0)
}

// refRestEqual is multiset equality over rest captures.
func refRestEqual(a, b []Atom) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for j, y := range b {
			if !used[j] && x.Equal(y) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}
