package hocl

import (
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "int", KindFloat: "float", KindStr: "string",
		KindBool: "bool", KindIdent: "ident", KindTuple: "tuple",
		KindList: "list", KindSolution: "solution", KindRule: "rule",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestBasicAtomEquality(t *testing.T) {
	cases := []struct {
		a, b Atom
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(1), Float(1), false}, // different kinds are never equal
		{Float(1.5), Float(1.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Ident("a"), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Ident("ERROR"), Ident("ERROR"), true},
		{Ident("ERROR"), Ident("ADAPT"), false},
		{Tuple{Ident("SRC"), Int(1)}, Tuple{Ident("SRC"), Int(1)}, true},
		{Tuple{Ident("SRC"), Int(1)}, Tuple{Ident("SRC"), Int(2)}, false},
		{Tuple{Int(1), Int(2)}, Tuple{Int(1), Int(2), Int(3)}, false},
		{List{Int(1), Int(2)}, List{Int(1), Int(2)}, true},
		{List{Int(1), Int(2)}, List{Int(2), Int(1)}, false}, // lists are ordered
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSolutionEqualityIsMultiset(t *testing.T) {
	a := NewSolution(Int(1), Int(2), Int(2))
	b := NewSolution(Int(2), Int(1), Int(2))
	c := NewSolution(Int(1), Int(2))
	d := NewSolution(Int(1), Int(1), Int(2))
	if !a.Equal(b) {
		t.Errorf("order must not matter: %v != %v", a, b)
	}
	if a.Equal(c) {
		t.Errorf("different sizes must differ: %v == %v", a, c)
	}
	if a.Equal(d) {
		t.Errorf("multiplicities must matter: %v == %v", a, d)
	}
}

func TestSolutionOps(t *testing.T) {
	s := NewSolution(Int(1), Ident("A"), Int(1))
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.Count(Int(1)); got != 2 {
		t.Errorf("Count(1) = %d, want 2", got)
	}
	if !s.Contains(Ident("A")) {
		t.Error("Contains(A) = false")
	}
	if s.Contains(Ident("B")) {
		t.Error("Contains(B) = true")
	}
	if !s.RemoveFirst(Int(1)) {
		t.Error("RemoveFirst(1) failed")
	}
	if got := s.Count(Int(1)); got != 1 {
		t.Errorf("after removal Count(1) = %d, want 1", got)
	}
	if s.RemoveFirst(Ident("Z")) {
		t.Error("RemoveFirst(Z) should fail")
	}
}

func TestSolutionRemoveIndices(t *testing.T) {
	s := NewSolution(Int(0), Int(1), Int(2), Int(3), Int(4))
	s.RemoveIndices([]int{1, 3})
	want := NewSolution(Int(0), Int(2), Int(4))
	if !s.Equal(want) {
		t.Errorf("after RemoveIndices: %v, want %v", s, want)
	}
	s.RemoveIndices(nil) // no-op
	if s.Len() != 3 {
		t.Errorf("nil removal changed length")
	}
}

func TestSolutionCloneIsDeep(t *testing.T) {
	inner := NewSolution(Int(1))
	s := NewSolution(Tuple{Ident("SRC"), inner})
	c := s.CloneSolution()
	inner.Add(Int(2))
	clonedInner := c.At(0).(Tuple)[1].(*Solution)
	if clonedInner.Len() != 1 {
		t.Errorf("clone shares inner solution with original")
	}
}

func TestInertnessFlagLifecycle(t *testing.T) {
	s := NewSolution(Int(1))
	if s.Inert() {
		t.Error("fresh solution must not be inert")
	}
	s.SetInert(true)
	if !s.Inert() {
		t.Error("SetInert(true) had no effect")
	}
	s.Add(Int(2))
	if s.Inert() {
		t.Error("Add must clear inertness")
	}
	s.SetInert(true)
	s.RemoveIndices([]int{0})
	if s.Inert() {
		t.Error("RemoveIndices must clear inertness")
	}
	s.SetInert(true)
	s.ReplaceAt(0, Int(9))
	if s.Inert() {
		t.Error("ReplaceAt must clear inertness")
	}
}

func TestFindTuple(t *testing.T) {
	s := NewSolution(
		Int(3),
		Tuple{Ident("SRC"), NewSolution()},
		Tuple{Ident("DST"), NewSolution(Ident("T2"))},
	)
	tp, idx := s.FindTuple(Ident("DST"))
	if idx != 2 || tp == nil {
		t.Fatalf("FindTuple(DST) idx = %d", idx)
	}
	if _, idx := s.FindTuple(Ident("RES")); idx != -1 {
		t.Errorf("FindTuple(RES) found %d, want -1", idx)
	}
}

func TestAtomStrings(t *testing.T) {
	cases := []struct {
		a    Atom
		want string
	}{
		{Int(42), "42"},
		{Int(-3), "-3"},
		{Float(1.5), "1.5"},
		{Float(2), "2.0"}, // floats keep a decimal marker
		{Str("hi"), `"hi"`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Ident("ERROR"), "ERROR"},
		{Tuple{Ident("SRC"), Int(1)}, "SRC:1"},
		{Tuple{Ident("A"), Tuple{Ident("B"), Int(1)}}, "A:(B:1)"},
		{List{Int(1), Str("x")}, `[1, "x"]`},
		{NewSolution(), "<>"},
		{NewSolution(Int(1), Int(2)), "<1, 2>"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("%T String() = %q, want %q", c.a, got, c.want)
		}
	}
}

func TestSubsolutionsAndRules(t *testing.T) {
	r := MustParseRuleBody("r", "replace x by x", nil)
	sub := NewSolution(Int(1))
	s := NewSolution(sub, r, Int(5))
	if got := len(s.Subsolutions()); got != 1 {
		t.Errorf("Subsolutions = %d, want 1", got)
	}
	if got := len(s.Rules()); got != 1 {
		t.Errorf("Rules = %d, want 1", got)
	}
}
