package hocl

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// FuzzExprDifferential proves the compiled expression machine
// (ecompile.go + evm.go) equivalent to the tree-walking evaluator over
// randomized expression trees, bindings and function registries: same
// produced atoms in the same order, same errors (message, source node,
// wrapped cause), and the same guard verdict — including the
// guard-error-means-false semantics documented on EvalGuard, which the
// quiet machine mode implements without allocating. The seed corpus runs
// in every plain `go test` (and under -race in CI); this test is what
// licenses routing the reduction hot path through the machine while the
// tree-walker stays as the oracle.
func FuzzExprDifferential(f *testing.F) {
	for seed := int64(0); seed < 64; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		funcs := exprFuzzFuncs()
		for round := 0; round < 8; round++ {
			env := genExprEnv(rng)
			products := make([]Expr, 1+rng.Intn(3))
			for i := range products {
				products[i] = genExpr(rng, 2)
			}
			reg := funcs
			if rng.Intn(8) == 0 {
				reg = nil // exercise the no-registry error class
			}
			compareExprPaths(t, products, env, reg)
		}
	})
}

// compareExprPaths runs one product list through the tree-walker and the
// compiled machine and requires identical results: atoms, errors and the
// guard verdict of the first expression.
func compareExprPaths(t *testing.T, products []Expr, env *Binding, funcs *Funcs) {
	t.Helper()
	describe := func() string {
		parts := make([]string, len(products))
		for i, e := range products {
			parts[i] = e.String()
		}
		return fmt.Sprintf("products %v", parts)
	}

	want, werr := EvalElems(products, env, funcs)
	var vm evalVM
	prog := compileProducts(products)
	got, gerr := vm.evalProducts(prog, env, funcs)

	if (gerr == nil) != (werr == nil) {
		t.Fatalf("%s: compiled err %v, walker err %v", describe(), gerr, werr)
	}
	if werr != nil {
		if gerr.Error() != werr.Error() {
			t.Fatalf("%s: error mismatch\ncompiled: %s\nwalker:   %s", describe(), gerr, werr)
		}
		var ge, we *EvalError
		if !errors.As(gerr, &ge) || !errors.As(werr, &we) {
			t.Fatalf("%s: non-EvalError (compiled %T, walker %T)", describe(), gerr, werr)
		}
		if ge.Expr != we.Expr || ge.Msg != we.Msg {
			t.Fatalf("%s: EvalError fields differ: compiled {%s %q}, walker {%s %q}",
				describe(), ge.Expr, ge.Msg, we.Expr, we.Msg)
		}
		if (ge.Err == nil) != (we.Err == nil) || (we.Err != nil && ge.Err.Error() != we.Err.Error()) {
			t.Fatalf("%s: wrapped cause differs: compiled %v, walker %v", describe(), ge.Err, we.Err)
		}
		// Functions build a fresh error value per call, so cause
		// identity across the two evaluations only holds for stable
		// sentinels — which is exactly what callers unwrap.
		if errors.Is(werr, errExprFuzz) != errors.Is(gerr, errExprFuzz) {
			t.Fatalf("%s: sentinel cause lost: compiled %v, walker %v", describe(), gerr, werr)
		}
	} else {
		if len(got) != len(want) {
			t.Fatalf("%s: compiled %d atoms, walker %d (%v vs %v)",
				describe(), len(got), len(want), got, want)
		}
		for i := range got {
			if !got[i].Equal(want[i]) || got[i].String() != want[i].String() {
				t.Fatalf("%s: atom %d: compiled %v, walker %v", describe(), i, got[i], want[i])
			}
		}
	}

	// Guard verdict of the first expression, re-evaluated with both
	// paths: errors must fold to false identically.
	if gv, wv := vm.evalGuard(compileGuard(products[0]), env, funcs), EvalGuard(products[0], env, funcs); gv != wv {
		t.Fatalf("guard %s: compiled %v, walker %v", products[0], gv, wv)
	}
}

// errExprFuzz is the fixed cause returned by the fuzz registry's
// erroring function, so cause propagation is covered differentially.
var errExprFuzz = errors.New("fuzz: injected function failure")

// exprFuzzFuncs returns the built-ins plus fuzz-specific functions:
// pair returns its (pooled) argument window unchanged — the aliasing
// case the machine's truncate-then-push must survive — and explode
// always fails with a stable cause.
func exprFuzzFuncs() *Funcs {
	funcs := NewFuncs()
	funcs.Register("pair", func(args []Atom) ([]Atom, error) { return args, nil })
	funcs.Register("explode", func([]Atom) ([]Atom, error) { return nil, errExprFuzz })
	return funcs
}

// genExprEnv draws a random binding: scalar names x/y/z and omega names
// w/v are each bound most of the time (leaving some unbound so the
// unbound-variable classes fire), over the same tiny atom domains as the
// matcher fuzz so kind collisions are common.
func genExprEnv(rng *rand.Rand) *Binding {
	env := NewBinding()
	for _, n := range []string{"x", "y", "z"} {
		if rng.Intn(4) > 0 {
			env.bindAtom(n, genEAtom(rng, 2))
		}
	}
	for _, n := range []string{"w", "v"} {
		if rng.Intn(4) > 0 {
			rest := make([]Atom, rng.Intn(3))
			for i := range rest {
				rest[i] = genEAtom(rng, 1)
			}
			env.bindRest(n, rest)
		}
	}
	return env
}

// genEAtom extends the matcher fuzz's atom generator with floats, which
// matter here for the int→float promotion and float-operator error paths.
func genEAtom(rng *rand.Rand, depth int) Atom {
	if rng.Intn(6) == 0 {
		return Float([]float64{-1.5, 0, 0.5, 2}[rng.Intn(4)])
	}
	return genMatchAtom(rng, depth)
}

// genExpr draws a random expression over tiny domains: a shared variable
// pool (x/y/z scalar, w/v omega, u never bound), every operator
// including the short-circuit pair, calls into the fuzz registry
// (including an unregistered name), and all three constructors. Small
// domains make collisions — type errors, splices into tuples, unbound
// names — the common case rather than the corner case.
func genExpr(rng *rand.Rand, depth int) Expr {
	ops := []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||"}
	top := 11
	if depth <= 0 {
		top = 4
	}
	switch rng.Intn(top) {
	case 0, 1:
		return &ELit{Val: genEAtom(rng, depth)}
	case 2:
		return &EVar{Name: []string{"x", "y", "z", "u"}[rng.Intn(4)]}
	case 3:
		return &EVar{Name: []string{"w", "v", "u"}[rng.Intn(3)], Omega: true}
	case 4, 5:
		return &EBinop{Op: ops[rng.Intn(len(ops))], L: genExpr(rng, depth-1), R: genExpr(rng, depth-1)}
	case 6:
		return &EUnop{Op: []string{"-", "!"}[rng.Intn(2)], X: genExpr(rng, depth-1)}
	case 7:
		fns := []string{"list", "len", "head", "str", "pair", "explode", "nope"}
		args := make([]Expr, rng.Intn(3))
		for i := range args {
			args[i] = genExpr(rng, depth-1)
		}
		return &ECall{Fn: fns[rng.Intn(len(fns))], Args: args}
	case 8:
		// Arity 0..2 on purpose: with splices the element count is only
		// known at runtime, which is exactly the tuple-arity error path.
		elems := make([]Expr, rng.Intn(3))
		for i := range elems {
			elems[i] = genExpr(rng, depth-1)
		}
		return &ETuple{Elems: elems}
	case 9:
		elems := make([]Expr, rng.Intn(3))
		for i := range elems {
			elems[i] = genExpr(rng, depth-1)
		}
		return &EList{Elems: elems}
	default:
		elems := make([]Expr, rng.Intn(3))
		for i := range elems {
			elems[i] = genExpr(rng, depth-1)
		}
		return &ESolution{Elems: elems}
	}
}

// TestExprDifferentialScenarios is the curated corpus behind the fuzz:
// the cases named by the refactor's contract, kept as deterministic
// tests so they run on every plain `go test` and under -race in CI.
func TestExprDifferentialScenarios(t *testing.T) {
	funcs := exprFuzzFuncs()

	t.Run("getMax guard error means false", func(t *testing.T) {
		// §III-A getMax over {rule, 2}: the pair (rule, 2) must fail
		// x >= y with a type error and be skipped, not abort reduction.
		max := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
		env := NewBinding()
		env.bindAtom("x", max) // a rule atom is unorderable
		env.bindAtom("y", Int(2))
		var vm evalVM
		if vm.evalGuard(compileGuard(max.Guard), env, funcs) {
			t.Fatal("compiled guard accepted an unorderable pair")
		}
		if EvalGuard(max.Guard, env, funcs) {
			t.Fatal("tree-walker guard accepted an unorderable pair")
		}
		sol := NewSolution(Int(3), max, Int(7))
		e := NewEngine()
		if err := e.Reduce(sol); err != nil {
			t.Fatal(err)
		}
		if !sol.Contains(Int(7)) || sol.Contains(Int(3)) {
			t.Fatalf("getMax reduced wrongly: %v", sol)
		}
	})

	t.Run("omega splices", func(t *testing.T) {
		env := NewBinding()
		env.bindRest("w", []Atom{Int(1), NewSolution(Ident("A")), Str("s")})
		products := []Expr{
			&ECall{Fn: "list", Args: []Expr{&EVar{Name: "w", Omega: true}}},
			&ESolution{Elems: []Expr{&ELit{Val: Ident("DONE")}, &EVar{Name: "w", Omega: true}}},
			&ETuple{Elems: []Expr{&ELit{Val: Int(1)}, &EVar{Name: "w", Omega: true}}},
		}
		compareExprPaths(t, products, env, funcs)
	})

	t.Run("nested solutions", func(t *testing.T) {
		env := NewBinding()
		env.bindRest("v", []Atom{Int(2)})
		env.bindAtom("x", NewSolution(Str("inner")))
		products := []Expr{
			&ESolution{Elems: []Expr{
				&ELit{Val: Ident("A")},
				&ESolution{Elems: []Expr{&ELit{Val: Ident("B")}, &EVar{Name: "v", Omega: true}}},
				&EVar{Name: "x"},
			}},
		}
		compareExprPaths(t, products, env, funcs)
	})

	t.Run("non-linear bindings snapshot independently", func(t *testing.T) {
		env := NewBinding()
		env.bindAtom("x", NewSolution(Ident("S")))
		products := []Expr{&EVar{Name: "x"}, &EVar{Name: "x"}}
		compareExprPaths(t, products, env, funcs)
		var vm evalVM
		got, err := vm.evalProducts(compileProducts(products), env, funcs)
		if err != nil {
			t.Fatal(err)
		}
		// Each occurrence must be its own copy-on-write shell: mutating
		// one produced solution must not leak into the other (or into
		// the bound original).
		if got[0].(*Solution) == got[1].(*Solution) {
			t.Fatal("non-linear occurrences share a solution shell")
		}
		bound, _ := env.Atom("x")
		if got[0].(*Solution) == bound.(*Solution) {
			t.Fatal("produced solution aliases the binding")
		}
	})

	t.Run("short-circuit skips erroring operand", func(t *testing.T) {
		env := NewBinding()
		// false && (1 / 0 == 0): the walker never evaluates the right
		// side; the compiled jump must not either.
		div := &EBinop{Op: "==", L: &EBinop{Op: "/", L: &ELit{Val: Int(1)}, R: &ELit{Val: Int(0)}}, R: &ELit{Val: Int(0)}}
		products := []Expr{
			&EBinop{Op: "&&", L: &ELit{Val: Bool(false)}, R: div},
			&EBinop{Op: "||", L: &ELit{Val: Bool(true)}, R: div},
		}
		compareExprPaths(t, products, env, funcs)
	})
}
