package hocl

import (
	"fmt"
	"strings"
)

// Pattern is the left-hand side of a rule. Patterns match atoms of a
// solution and bind variables used by the guard and products.
type Pattern interface {
	patNode()
	String() string
}

// PVar binds a single atom to a lowercase variable name. If the name is
// already bound (non-linear pattern), the atom must be Equal to the
// earlier capture.
type PVar struct{ Name string }

// PConst matches an atom structurally equal to Val (an Ident, number,
// string or bool constant).
type PConst struct{ Val Atom }

// PRuleRef matches a rule atom carrying the given name — this is how the
// paper's clean rule consumes max by naming it (§III-A, higher order).
type PRuleRef struct{ Name string }

// POmega is the ω variable of the paper: inside a solution pattern it
// captures every atom not consumed by the other sub-patterns (possibly
// none). At most one ω may appear per solution pattern.
type POmega struct{ Name string }

// PTuple matches a Tuple of exactly len(Elems) elements, element-wise.
type PTuple struct{ Elems []Pattern }

// PList matches a List of exactly len(Elems) elements, element-wise.
type PList struct{ Elems []Pattern }

// PSolution matches an inert sub-solution: every element pattern consumes
// a distinct atom, and the remainder binds to Rest (if empty, the
// remainder must itself be empty). Matching a non-inert sub-solution
// fails — HOCL only observes finished inner programs.
type PSolution struct {
	Elems []Pattern
	Rest  string // omega variable name, "" for exact match
}

func (*PVar) patNode()      {}
func (*PConst) patNode()    {}
func (*PRuleRef) patNode()  {}
func (*POmega) patNode()    {}
func (*PTuple) patNode()    {}
func (*PList) patNode()     {}
func (*PSolution) patNode() {}

func (p *PVar) String() string     { return p.Name }
func (p *PConst) String() string   { return p.Val.String() }
func (p *PRuleRef) String() string { return p.Name }
func (p *POmega) String() string   { return "*" + p.Name }

func (p *PTuple) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		if _, nested := e.(*PTuple); nested {
			parts[i] = "(" + e.String() + ")"
		} else {
			parts[i] = e.String()
		}
	}
	return strings.Join(parts, ":")
}

func (p *PList) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (p *PSolution) String() string {
	parts := make([]string, 0, len(p.Elems)+1)
	for _, e := range p.Elems {
		parts = append(parts, e.String())
	}
	if p.Rest != "" {
		parts = append(parts, "*"+p.Rest)
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// Match is the result of matching a rule against a solution: the variable
// binding plus the indices of the consumed top-level atoms.
type Match struct {
	Env      *Binding
	Consumed []int // indices into the solution, ascending
}

// MatchRule searches sol for atoms satisfying r's pattern and guard. The
// rule's own atom (at index selfIdx, -1 if not applicable) is excluded
// from candidates: a rule does not consume itself. Candidates are tried
// in the order given by order (a permutation of sol indices; nil means
// natural order), which is how the engine injects chemical
// non-determinism. Returns nil when no match exists.
func MatchRule(r *Rule, sol *Solution, selfIdx int, funcs *Funcs, order []int) *Match {
	var m matcher
	m.reset(sol, funcs, order)
	return m.matchRule(r, selfIdx)
}

type matcher struct {
	sol   *Solution
	used  []bool
	env   *Binding
	funcs *Funcs
	order []int

	// solUsed pools the used-flags scratch of matchSolutionContents, one
	// slice per nesting depth of solution patterns, so the engine's hot
	// loop does not allocate per solution-pattern attempt. solDepth is
	// the current nesting depth (siblings at the same depth reuse the
	// same slice sequentially; a nested pattern pushes one level).
	solUsed  [][]bool
	solDepth int
}

// pushUsed returns a cleared n-element used-flags slice for the current
// solution-pattern nesting level and enters the next level; popUsed
// leaves it. The slice stays owned by the matcher across matches.
func (m *matcher) pushUsed(n int) []bool {
	if m.solDepth == len(m.solUsed) {
		m.solUsed = append(m.solUsed, make([]bool, n))
	}
	buf := m.solUsed[m.solDepth]
	if cap(buf) < n {
		buf = make([]bool, n)
	} else {
		buf = buf[:n]
		clear(buf)
	}
	m.solUsed[m.solDepth] = buf
	m.solDepth++
	return buf
}

func (m *matcher) popUsed() { m.solDepth-- }

// reset prepares the matcher for a fresh match, reusing its used-flags
// slice and binding so the engine's hot loop does not allocate per
// candidate rule.
func (m *matcher) reset(sol *Solution, funcs *Funcs, order []int) {
	m.sol = sol
	m.funcs = funcs
	m.order = order
	n := sol.Len()
	if cap(m.used) < n {
		m.used = make([]bool, n)
	} else {
		m.used = m.used[:n]
		clear(m.used)
	}
	if m.env == nil {
		m.env = NewBinding()
	} else {
		m.env.reset()
	}
	m.solDepth = 0
}

// matchRule runs the match for r against the prepared solution. The
// returned Match shares the matcher's binding: it is valid until the next
// reset.
func (m *matcher) matchRule(r *Rule, selfIdx int) *Match {
	if selfIdx >= 0 && selfIdx < m.sol.Len() {
		m.used[selfIdx] = true
	}
	var consumed []int
	ok := m.matchSeq(r.Pattern, 0, func() bool {
		if !EvalGuard(r.Guard, m.env, m.funcs) {
			return false
		}
		consumed = m.consumedIndices(selfIdx)
		return true
	})
	if !ok {
		return nil
	}
	return &Match{Env: m.env, Consumed: consumed}
}

func (m *matcher) consumedIndices(selfIdx int) []int {
	var out []int
	for i, u := range m.used {
		if u && i != selfIdx {
			out = append(out, i)
		}
	}
	return out
}

// matchSeq matches patterns[k:] against unused atoms of m.sol, invoking
// cont when every pattern is placed. It backtracks across candidate atoms
// and across alternative bindings in nested structures. Omega patterns are
// not allowed at rule top level (they belong to solution patterns); the
// parser enforces this.
func (m *matcher) matchSeq(patterns []Pattern, k int, cont func() bool) bool {
	if k == len(patterns) {
		return cont()
	}
	p := patterns[k]
	n := m.sol.Len()
	// The continuation is loop-invariant: allocate it once per pattern
	// level, not once per candidate atom.
	next := func() bool {
		return m.matchSeq(patterns, k+1, cont)
	}
	for oi := 0; oi < n; oi++ {
		i := oi
		if m.order != nil {
			i = m.order[oi]
		}
		if m.used[i] {
			continue
		}
		m.used[i] = true
		ok := m.matchAtom(p, m.sol.At(i), next)
		if ok {
			return true
		}
		m.used[i] = false
	}
	return false
}

// matchAtom matches a single pattern against a single atom, calling cont
// on (tentative) success; bindings are rolled back when cont fails, so
// the caller can try other candidates.
func (m *matcher) matchAtom(p Pattern, a Atom, cont func() bool) bool {
	switch pt := p.(type) {
	case *PVar:
		if prev, ok := m.env.Atom(pt.Name); ok {
			if !prev.Equal(a) {
				return false
			}
			return cont()
		}
		mark := m.env.mark()
		m.env.bindAtom(pt.Name, a)
		if cont() {
			return true
		}
		m.env.undo(mark)
		return false

	case *PConst:
		if !pt.Val.Equal(a) {
			return false
		}
		return cont()

	case *PRuleRef:
		r, ok := a.(*Rule)
		if !ok || r.Name != pt.Name {
			return false
		}
		return cont()

	case *PTuple:
		t, ok := a.(Tuple)
		if !ok || len(t) != len(pt.Elems) {
			return false
		}
		return m.matchFixed(pt.Elems, []Atom(t), 0, cont)

	case *PList:
		l, ok := a.(List)
		if !ok || len(l) != len(pt.Elems) {
			return false
		}
		return m.matchFixed(pt.Elems, []Atom(l), 0, cont)

	case *PSolution:
		sub, ok := a.(*Solution)
		if !ok {
			return false
		}
		if !sub.Inert() {
			// HOCL semantics: sub-solutions are matched only once inert.
			return false
		}
		return m.matchSolutionContents(pt, sub, cont)

	case *POmega:
		// An omega outside a solution pattern would capture "the rest of
		// the enclosing solution", which HOCL reserves for explicit
		// sub-solution patterns; the parser rejects it earlier.
		return false

	default:
		return false
	}
}

// matchFixed matches patterns element-wise against a fixed sequence
// (tuple or list contents).
func (m *matcher) matchFixed(pats []Pattern, atoms []Atom, k int, cont func() bool) bool {
	if k == len(pats) {
		return cont()
	}
	return m.matchAtom(pats[k], atoms[k], func() bool {
		return m.matchFixed(pats, atoms, k+1, cont)
	})
}

// matchSolutionContents matches a solution pattern's element patterns
// against distinct atoms of sub, binding the leftovers to the omega rest
// variable (or requiring none when Rest is empty).
func (m *matcher) matchSolutionContents(pt *PSolution, sub *Solution, cont func() bool) bool {
	if len(pt.Elems) == 0 {
		// Fast path for the ubiquitous exact-empty (<>) and rest-only
		// (<*w>) patterns: no element choice, so no backtracking state.
		if pt.Rest == "" {
			return sub.Len() == 0 && cont()
		}
		rest := sub.Atoms()
		if prev, ok := m.env.Rest(pt.Rest); ok {
			return restEqual(prev, rest) && cont()
		}
		mark := m.env.mark()
		m.env.bindRest(pt.Rest, rest)
		if cont() {
			return true
		}
		m.env.undo(mark)
		return false
	}
	used := m.pushUsed(sub.Len())
	defer m.popUsed()
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(pt.Elems) {
			var rest []Atom
			for i := 0; i < sub.Len(); i++ {
				if !used[i] {
					rest = append(rest, sub.At(i))
				}
			}
			if pt.Rest == "" {
				if len(rest) != 0 {
					return false
				}
				return cont()
			}
			if prev, ok := m.env.Rest(pt.Rest); ok {
				if !restEqual(prev, rest) {
					return false
				}
				return cont()
			}
			mark := m.env.mark()
			m.env.bindRest(pt.Rest, rest)
			if cont() {
				return true
			}
			m.env.undo(mark)
			return false
		}
		next := func() bool {
			return rec(k + 1)
		}
		for i := 0; i < sub.Len(); i++ {
			if used[i] {
				continue
			}
			used[i] = true
			ok := m.matchAtom(pt.Elems[k], sub.At(i), next)
			if ok {
				return true
			}
			used[i] = false
		}
		return false
	}
	return rec(0)
}

func restEqual(a, b []Atom) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
outer:
	for _, x := range a {
		for j, y := range b {
			if !used[j] && x.Equal(y) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

// PatternToExpr converts a pattern to the expression that rebuilds the
// matched molecules. It implements the HOCLflow sugar
// `with X inject M  ≡  replace-one X by X, M` (§III-A), where the
// left-hand side must be re-emitted verbatim.
func PatternToExpr(p Pattern) (Expr, error) {
	switch pt := p.(type) {
	case *PVar:
		return &EVar{Name: pt.Name}, nil
	case *PConst:
		return &ELit{Val: pt.Val}, nil
	case *PRuleRef:
		return nil, fmt.Errorf("hocl: cannot re-emit rule reference %q in with/inject", pt.Name)
	case *POmega:
		return &EVar{Name: pt.Name, Omega: true}, nil
	case *PTuple:
		elems, err := patternsToExprs(pt.Elems)
		if err != nil {
			return nil, err
		}
		return &ETuple{Elems: elems}, nil
	case *PList:
		elems, err := patternsToExprs(pt.Elems)
		if err != nil {
			return nil, err
		}
		return &EList{Elems: elems}, nil
	case *PSolution:
		elems, err := patternsToExprs(pt.Elems)
		if err != nil {
			return nil, err
		}
		if pt.Rest != "" {
			elems = append(elems, &EVar{Name: pt.Rest, Omega: true})
		}
		return &ESolution{Elems: elems}, nil
	default:
		return nil, fmt.Errorf("hocl: cannot convert pattern %T to expression", p)
	}
}

func patternsToExprs(pats []Pattern) ([]Expr, error) {
	out := make([]Expr, len(pats))
	for i, p := range pats {
		e, err := PatternToExpr(p)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
