package hocl

import (
	"fmt"
	"strings"
)

// Pattern is the left-hand side of a rule. Patterns match atoms of a
// solution and bind variables used by the guard and products. Pattern
// trees are immutable once built; each rule compiles its pattern list
// into the flat instruction sequence run by the matcher (matcher.go).
type Pattern interface {
	patNode()
	String() string
}

// PVar binds a single atom to a lowercase variable name. If the name is
// already bound (non-linear pattern), the atom must be Equal to the
// earlier capture.
type PVar struct{ Name string }

// PConst matches an atom structurally equal to Val (an Ident, number,
// string or bool constant).
type PConst struct{ Val Atom }

// PRuleRef matches a rule atom carrying the given name — this is how the
// paper's clean rule consumes max by naming it (§III-A, higher order).
type PRuleRef struct{ Name string }

// POmega is the ω variable of the paper: inside a solution pattern it
// captures every atom not consumed by the other sub-patterns (possibly
// none). At most one ω may appear per solution pattern.
type POmega struct{ Name string }

// PTuple matches a Tuple of exactly len(Elems) elements, element-wise.
type PTuple struct{ Elems []Pattern }

// PList matches a List of exactly len(Elems) elements, element-wise.
type PList struct{ Elems []Pattern }

// PSolution matches an inert sub-solution: every element pattern consumes
// a distinct atom, and the remainder binds to Rest (if empty, the
// remainder must itself be empty). Matching a non-inert sub-solution
// fails — HOCL only observes finished inner programs.
type PSolution struct {
	Elems []Pattern
	Rest  string // omega variable name, "" for exact match
}

func (*PVar) patNode()      {}
func (*PConst) patNode()    {}
func (*PRuleRef) patNode()  {}
func (*POmega) patNode()    {}
func (*PTuple) patNode()    {}
func (*PList) patNode()     {}
func (*PSolution) patNode() {}

func (p *PVar) String() string     { return p.Name }
func (p *PConst) String() string   { return p.Val.String() }
func (p *PRuleRef) String() string { return p.Name }
func (p *POmega) String() string   { return "*" + p.Name }

func (p *PTuple) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		if _, nested := e.(*PTuple); nested {
			parts[i] = "(" + e.String() + ")"
		} else {
			parts[i] = e.String()
		}
	}
	return strings.Join(parts, ":")
}

func (p *PList) String() string {
	parts := make([]string, len(p.Elems))
	for i, e := range p.Elems {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

func (p *PSolution) String() string {
	parts := make([]string, 0, len(p.Elems)+1)
	for _, e := range p.Elems {
		parts = append(parts, e.String())
	}
	if p.Rest != "" {
		parts = append(parts, "*"+p.Rest)
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

// PatternToExpr converts a pattern to the expression that rebuilds the
// matched molecules. It implements the HOCLflow sugar
// `with X inject M  ≡  replace-one X by X, M` (§III-A), where the
// left-hand side must be re-emitted verbatim.
func PatternToExpr(p Pattern) (Expr, error) {
	switch pt := p.(type) {
	case *PVar:
		return &EVar{Name: pt.Name}, nil
	case *PConst:
		return &ELit{Val: pt.Val}, nil
	case *PRuleRef:
		return nil, fmt.Errorf("hocl: cannot re-emit rule reference %q in with/inject", pt.Name)
	case *POmega:
		return &EVar{Name: pt.Name, Omega: true}, nil
	case *PTuple:
		elems, err := patternsToExprs(pt.Elems)
		if err != nil {
			return nil, err
		}
		return &ETuple{Elems: elems}, nil
	case *PList:
		elems, err := patternsToExprs(pt.Elems)
		if err != nil {
			return nil, err
		}
		return &EList{Elems: elems}, nil
	case *PSolution:
		elems, err := patternsToExprs(pt.Elems)
		if err != nil {
			return nil, err
		}
		if pt.Rest != "" {
			elems = append(elems, &EVar{Name: pt.Rest, Omega: true})
		}
		return &ESolution{Elems: elems}, nil
	default:
		return nil, fmt.Errorf("hocl: cannot convert pattern %T to expression", p)
	}
}

func patternsToExprs(pats []Pattern) ([]Expr, error) {
	out := make([]Expr, len(pats))
	for i, p := range pats {
		e, err := PatternToExpr(p)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}
