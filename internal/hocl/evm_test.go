package hocl

import (
	"errors"
	"testing"
)

// TestCompiledErrorFidelity pins the compiled evaluator's errors to the
// tree-walker's, class by class: same rendered message, same *EvalError
// with the identical source Expr node, and the same wrapped cause under
// errors.Is/errors.As. Callers unwrap domain errors (e.g. injected agent
// crashes) through the interpreter, so error identity is part of the
// refactor's compatibility contract, not a cosmetic detail.
func TestCompiledErrorFidelity(t *testing.T) {
	boom := errors.New("boom")
	funcs := NewFuncs()
	funcs.Register("pair", func(args []Atom) ([]Atom, error) { return args, nil })
	funcs.Register("explode", func([]Atom) ([]Atom, error) { return nil, boom })

	env := NewBinding()
	env.bindAtom("x", Ident("A"))
	env.bindRest("e", nil)

	cases := []struct {
		name    string
		product []Expr
		funcs   *Funcs
		cause   error // non-nil: must match via errors.Is on both paths
	}{
		{
			name:    "unbound variable",
			product: []Expr{&EVar{Name: "nope"}},
			funcs:   funcs,
		},
		{
			name:    "unbound omega variable",
			product: []Expr{&EVar{Name: "nope", Omega: true}},
			funcs:   funcs,
		},
		{
			name:    "omega variable in scalar position",
			product: []Expr{&EUnop{Op: "!", X: &EVar{Name: "e", Omega: true}}},
			funcs:   funcs,
		},
		{
			name:    "comparison type mismatch",
			product: []Expr{&EBinop{Op: ">=", L: &EVar{Name: "x"}, R: &ELit{Val: Int(1)}}},
			funcs:   funcs,
		},
		{
			name:    "arithmetic type mismatch",
			product: []Expr{&EBinop{Op: "+", L: &EVar{Name: "x"}, R: &ELit{Val: Int(1)}}},
			funcs:   funcs,
		},
		{
			name:    "division by zero",
			product: []Expr{&EBinop{Op: "/", L: &ELit{Val: Int(1)}, R: &ELit{Val: Int(0)}}},
			funcs:   funcs,
		},
		{
			name:    "modulo by zero",
			product: []Expr{&EBinop{Op: "%", L: &ELit{Val: Int(1)}, R: &ELit{Val: Int(0)}}},
			funcs:   funcs,
		},
		{
			name:    "modulo on floats",
			product: []Expr{&EBinop{Op: "%", L: &ELit{Val: Float(1.5)}, R: &ELit{Val: Int(2)}}},
			funcs:   funcs,
		},
		{
			name:    "non-bool left operand",
			product: []Expr{&EBinop{Op: "&&", L: &ELit{Val: Int(1)}, R: &ELit{Val: Bool(true)}}},
			funcs:   funcs,
		},
		{
			name:    "non-bool right operand",
			product: []Expr{&EBinop{Op: "||", L: &ELit{Val: Bool(false)}, R: &ELit{Val: Int(1)}}},
			funcs:   funcs,
		},
		{
			name:    "negate non-number",
			product: []Expr{&EUnop{Op: "-", X: &ELit{Val: Str("s")}}},
			funcs:   funcs,
		},
		{
			name:    "logical not on non-bool",
			product: []Expr{&EUnop{Op: "!", X: &ELit{Val: Int(3)}}},
			funcs:   funcs,
		},
		{
			name:    "bad call arity",
			product: []Expr{&ECall{Fn: "len", Args: []Expr{&ELit{Val: Int(1)}, &ELit{Val: Int(2)}}}},
			funcs:   funcs,
		},
		{
			name:    "unknown function",
			product: []Expr{&ECall{Fn: "nope"}},
			funcs:   funcs,
		},
		{
			name:    "no function registry",
			product: []Expr{&ECall{Fn: "list", Args: []Expr{&ELit{Val: Int(1)}}}},
			funcs:   nil,
		},
		{
			name: "multi-atom result in scalar position",
			product: []Expr{&EUnop{Op: "!", X: &ECall{
				Fn: "pair", Args: []Expr{&ELit{Val: Int(1)}, &ELit{Val: Int(2)}},
			}}},
			funcs: funcs,
		},
		{
			name: "tuple too short after splice",
			product: []Expr{&ETuple{Elems: []Expr{
				&ELit{Val: Int(1)}, &EVar{Name: "e", Omega: true},
			}}},
			funcs: funcs,
		},
		{
			name:    "function error wraps cause",
			product: []Expr{&ECall{Fn: "explode"}},
			funcs:   funcs,
			cause:   boom,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, werr := EvalElems(tc.product, env, tc.funcs)
			if werr == nil {
				t.Fatal("tree-walker did not error; the case does not cover its class")
			}
			var vm evalVM
			_, gerr := vm.evalProducts(compileProducts(tc.product), env, tc.funcs)
			if gerr == nil {
				t.Fatalf("compiled path succeeded; tree-walker errored: %v", werr)
			}
			if gerr.Error() != werr.Error() {
				t.Errorf("message mismatch:\ncompiled: %s\nwalker:   %s", gerr, werr)
			}
			var ge, we *EvalError
			if !errors.As(gerr, &ge) || !errors.As(werr, &we) {
				t.Fatalf("both paths must yield *EvalError (compiled %T, walker %T)", gerr, werr)
			}
			if ge.Expr != we.Expr {
				t.Errorf("source expression differs: compiled %s, walker %s", ge.Expr, we.Expr)
			}
			if ge.Msg != we.Msg {
				t.Errorf("Msg differs: compiled %q, walker %q", ge.Msg, we.Msg)
			}
			if (ge.Err == nil) != (we.Err == nil) {
				t.Errorf("wrapped cause presence differs: compiled %v, walker %v", ge.Err, we.Err)
			}
			if tc.cause != nil {
				if !errors.Is(gerr, tc.cause) {
					t.Error("compiled error does not wrap the function's cause")
				}
				if !errors.Is(werr, tc.cause) {
					t.Error("tree-walker error does not wrap the function's cause")
				}
			}
			// Every error class folds to a false guard on both paths.
			if len(tc.product) == 1 {
				if EvalGuard(tc.product[0], env, tc.funcs) {
					t.Error("tree-walker guard did not fold the error to false")
				}
				if vm.evalGuard(compileGuard(tc.product[0]), env, tc.funcs) {
					t.Error("compiled guard did not fold the error to false")
				}
			}
		})
	}
}

// TestCompiledRuleApplyErrorWrapping checks the firing-path wrapper: a
// product failure surfaces through Rule.Apply with the rule name prefix
// and still unwraps to the same *EvalError and cause.
func TestCompiledRuleApplyErrorWrapping(t *testing.T) {
	boom := errors.New("invoke failed")
	funcs := NewFuncs()
	funcs.Register("explode", func([]Atom) ([]Atom, error) { return nil, boom })
	r := MustParseRuleBody("gw", "replace-one X by explode()", nil)
	sol := NewSolution(Ident("X"), r)
	m := MatchRule(r, sol, 1, funcs, nil)
	if m == nil {
		t.Fatal("no match")
	}
	err := r.Apply(sol, m, 1, funcs)
	if err == nil {
		t.Fatal("Apply must fail when a product errors")
	}
	if !errors.Is(err, boom) {
		t.Errorf("cause lost through Apply: %v", err)
	}
	var ee *EvalError
	if !errors.As(err, &ee) {
		t.Fatalf("no *EvalError in chain: %v", err)
	}
	if want := "hocl: rule gw: " + ee.Error(); err.Error() != want {
		t.Errorf("wrapped message %q, want %q", err, want)
	}
	if sol.Len() != 2 {
		t.Errorf("solution must be unchanged on product failure, len %d", sol.Len())
	}
}
