package hocl

import (
	"testing"
)

func callBuiltin(t *testing.T, name string, args ...Atom) ([]Atom, error) {
	t.Helper()
	fn, ok := NewFuncs().Lookup(name)
	if !ok {
		t.Fatalf("builtin %q missing", name)
	}
	return fn(args)
}

func TestNumericFoldBuiltins(t *testing.T) {
	cases := []struct {
		fn   string
		args []Atom
		want Atom
	}{
		{"sum", []Atom{Int(1), Int(2), Int(3)}, Int(6)},
		{"sum", []Atom{List{Int(1), Int(2)}}, Int(3)},
		{"sum", []Atom{Int(1), Float(0.5)}, Float(1.5)},
		{"sum", nil, Int(0)},
		{"product", []Atom{Int(2), Int(3), Int(4)}, Int(24)},
		{"product", nil, Int(1)},
		{"minimum", []Atom{Int(4), Int(2), Int(9)}, Int(2)},
		{"maximum", []Atom{List{Float(1.5), Int(3)}}, Float(3)},
		{"count", []Atom{Int(1), Str("a"), Bool(true)}, Int(3)},
		{"count", nil, Int(0)},
	}
	for _, c := range cases {
		out, err := callBuiltin(t, c.fn, c.args...)
		if err != nil {
			t.Errorf("%s(%v): %v", c.fn, c.args, err)
			continue
		}
		if len(out) != 1 || !out[0].Equal(c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.fn, c.args, out, c.want)
		}
	}
}

func TestNumericBuiltinErrors(t *testing.T) {
	if _, err := callBuiltin(t, "sum", Str("x")); err == nil {
		t.Error("sum over strings accepted")
	}
	if _, err := callBuiltin(t, "minimum"); err == nil {
		t.Error("minimum of nothing accepted")
	}
	if _, err := callBuiltin(t, "maximum", List{}); err == nil {
		t.Error("maximum of empty list accepted")
	}
}

func TestListBuiltins(t *testing.T) {
	l := List{Int(3), Int(1), Int(2)}
	if out, err := callBuiltin(t, "nth", l, Int(1)); err != nil || !out[0].Equal(Int(1)) {
		t.Errorf("nth: %v, %v", out, err)
	}
	if _, err := callBuiltin(t, "nth", l, Int(5)); err == nil {
		t.Error("nth out of range accepted")
	}
	if _, err := callBuiltin(t, "nth", l, Int(-1)); err == nil {
		t.Error("negative nth accepted")
	}
	if out, err := callBuiltin(t, "reverse", l); err != nil || !out[0].Equal(List{Int(2), Int(1), Int(3)}) {
		t.Errorf("reverse: %v, %v", out, err)
	}
	if out, err := callBuiltin(t, "sorted", l); err != nil || !out[0].Equal(List{Int(1), Int(2), Int(3)}) {
		t.Errorf("sorted: %v, %v", out, err)
	}
	if _, err := callBuiltin(t, "sorted", List{Int(1), Bool(true)}); err == nil {
		t.Error("sorting incomparable atoms accepted")
	}
	// sorted must not mutate its argument.
	if !l.Equal(List{Int(3), Int(1), Int(2)}) {
		t.Errorf("sorted mutated input: %v", l)
	}
}

func TestContainsBuiltin(t *testing.T) {
	l := List{Int(1), Str("x")}
	if out, _ := callBuiltin(t, "contains", l, Str("x")); !out[0].Equal(Bool(true)) {
		t.Error("contains missed a list member")
	}
	if out, _ := callBuiltin(t, "contains", l, Str("y")); !out[0].Equal(Bool(false)) {
		t.Error("contains found a phantom")
	}
	sol := NewSolution(Ident("ADAPT"))
	if out, _ := callBuiltin(t, "contains", sol, Ident("ADAPT")); !out[0].Equal(Bool(true)) {
		t.Error("contains missed a solution member")
	}
	if _, err := callBuiltin(t, "contains", Int(1), Int(1)); err == nil {
		t.Error("contains over int accepted")
	}
}

// TestBuiltinsInPrograms exercises the new builtins through full HOCL
// programs — the user-visible surface.
func TestBuiltinsInPrograms(t *testing.T) {
	cases := []struct {
		src  string
		want Atom
	}{
		{`let r = replace-one <*w> by sum(*w) in <<1, 2, 3>, r>`, Int(6)},
		{`let r = replace-one x by maximum(x) in <[4, 9, 2], r>`, Int(9)},
		{`let r = replace-one x by nth(sorted(x), 0) in <[3, 1, 2], r>`, Int(1)},
		{`let r = replace-one x by x if contains([1, 2], x) in <2, r>`, Int(2)},
	}
	for _, c := range cases {
		sol := reduceProgram(t, c.src)
		if !sol.Contains(c.want) {
			t.Errorf("program %q: final %v, want to contain %v", c.src, sol, c.want)
		}
	}
}
