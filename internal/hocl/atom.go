package hocl

import (
	"fmt"
	"math"
	"slices"
	"strings"
)

// Kind discriminates the concrete type of an Atom.
type Kind int

const (
	KindInt Kind = iota
	KindFloat
	KindStr
	KindBool
	KindIdent
	KindTuple
	KindList
	KindSolution
	KindRule
)

var kindNames = [...]string{
	KindInt:      "int",
	KindFloat:    "float",
	KindStr:      "string",
	KindBool:     "bool",
	KindIdent:    "ident",
	KindTuple:    "tuple",
	KindList:     "list",
	KindSolution: "solution",
	KindRule:     "rule",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Atom is an element of an HOCL solution. Atoms are immutable except for
// Solution, whose contents evolve under reduction; Clone produces a deep
// copy safe to mutate or to ship to another goroutine.
type Atom interface {
	Kind() Kind
	// Equal reports structural equality. Two Solutions are equal when they
	// contain equal atoms with equal multiplicities, regardless of order.
	Equal(Atom) bool
	// Clone returns a deep copy. Immutable atoms may return themselves.
	Clone() Atom
	// String renders the atom in the parseable ASCII syntax.
	String() string
}

// Int is an integer atom.
type Int int64

// Float is a floating-point atom.
type Float float64

// Str is a string atom.
type Str string

// Bool is a boolean atom.
type Bool bool

// Ident is a symbolic constant, written as an identifier with a leading
// upper-case letter: task names (T1), reserved workflow keywords (SRC, DST,
// ERROR, ADAPT), and user-defined markers.
type Ident string

// Tuple is an ordered group of two or more atoms, written A:B:C. GinFlow
// uses tuples keyed by a leading Ident, e.g. SRC:<T1> or MVSRC:T4:T2:T2P.
type Tuple []Atom

// List is an ordered sequence of atoms, written [a, b, c]. Lists are an
// HOCLflow extension (§III-A): plain HOCL has no native list type.
type List []Atom

func (Int) Kind() Kind       { return KindInt }
func (Float) Kind() Kind     { return KindFloat }
func (Str) Kind() Kind       { return KindStr }
func (Bool) Kind() Kind      { return KindBool }
func (Ident) Kind() Kind     { return KindIdent }
func (Tuple) Kind() Kind     { return KindTuple }
func (List) Kind() Kind      { return KindList }
func (*Solution) Kind() Kind { return KindSolution }
func (*Rule) Kind() Kind     { return KindRule }

func (a Int) Equal(b Atom) bool   { o, ok := b.(Int); return ok && a == o }
func (a Str) Equal(b Atom) bool   { o, ok := b.(Str); return ok && a == o }
func (a Bool) Equal(b Atom) bool  { o, ok := b.(Bool); return ok && a == o }
func (a Ident) Equal(b Atom) bool { o, ok := b.(Ident); return ok && a == o }

func (a Float) Equal(b Atom) bool {
	o, ok := b.(Float)
	return ok && (a == o || (math.IsNaN(float64(a)) && math.IsNaN(float64(o))))
}

func (a Tuple) Equal(b Atom) bool {
	o, ok := b.(Tuple)
	if !ok || len(a) != len(o) {
		return false
	}
	for i := range a {
		if !a[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (a List) Equal(b Atom) bool {
	o, ok := b.(List)
	if !ok || len(a) != len(o) {
		return false
	}
	for i := range a {
		if !a[i].Equal(o[i]) {
			return false
		}
	}
	return true
}

func (a Int) Clone() Atom   { return a }
func (a Float) Clone() Atom { return a }
func (a Str) Clone() Atom   { return a }
func (a Bool) Clone() Atom  { return a }
func (a Ident) Clone() Atom { return a }

func (a Tuple) Clone() Atom {
	c := make(Tuple, len(a))
	for i, e := range a {
		c[i] = e.Clone()
	}
	return c
}

func (a List) Clone() Atom {
	c := make(List, len(a))
	for i, e := range a {
		c[i] = e.Clone()
	}
	return c
}

// Solution is a multiset of atoms: the chemical "solution" in which
// reactions occur. The zero value is an empty solution ready to use.
//
// A Solution tracks an inertness flag maintained by the reduction engine:
// a solution is inert when no rule it contains can fire and all of its
// sub-solutions are inert. Mutating the solution clears the flag.
//
// A Solution also tracks a generation counter bumped on every structural
// mutation. The reduction engine keeps per-solution caches (the indices
// of contained rules and the list of reachable nested solutions) that are
// invalidated by the counter, so an unchanged solution is never rescanned.
type Solution struct {
	elems []Atom
	inert bool

	// gen counts structural mutations (DESIGN.md "Incremental reduction").
	gen uint64
	// cacheGen tags ruleIdx/nested with gen+1 at build time, so the
	// caches are valid while cacheGen == gen+1: any mutation bumps gen
	// past them, and the zero value (gen 0, cacheGen 0) is never valid —
	// solutions built by struct literal are safe without ceremony.
	cacheGen uint64
	// ruleIdx holds the elems indices of *Rule atoms.
	ruleIdx []int
	// nested holds the solutions reachable from elems through tuples and
	// lists without crossing another solution boundary.
	nested []*Solution
}

// mutated records a structural mutation: the solution is active again and
// the generation counter moves past the engine caches, invalidating them.
func (s *Solution) mutated() {
	s.gen++
	s.inert = false
}

// Gen returns the solution's generation: a counter bumped on every
// structural mutation (Add, RemoveIndices, ReplaceAt). Snapshots and
// clones start a fresh lineage; the counter only orders mutations of one
// solution instance.
func (s *Solution) Gen() uint64 { return s.gen }

// ruleIndices returns the cached elems indices of the rules in s.
func (s *Solution) ruleIndices() []int {
	if s.cacheGen != s.gen+1 {
		s.buildCaches()
	}
	return s.ruleIdx
}

// nestedSolutions returns the cached solutions reachable from s through
// tuples and lists without crossing another solution boundary (the
// engine's recursion handles deeper levels).
func (s *Solution) nestedSolutions() []*Solution {
	if s.cacheGen != s.gen+1 {
		s.buildCaches()
	}
	return s.nested
}

func (s *Solution) buildCaches() {
	s.ruleIdx = s.ruleIdx[:0]
	s.nested = s.nested[:0]
	for i, a := range s.elems {
		switch v := a.(type) {
		case *Rule:
			s.ruleIdx = append(s.ruleIdx, i)
		case *Solution:
			s.nested = append(s.nested, v)
		case Tuple:
			collectNested([]Atom(v), &s.nested)
		case List:
			collectNested([]Atom(v), &s.nested)
		}
	}
	s.cacheGen = s.gen + 1
}

func collectNested(elems []Atom, out *[]*Solution) {
	for _, e := range elems {
		switch v := e.(type) {
		case *Solution:
			*out = append(*out, v)
		case Tuple:
			collectNested([]Atom(v), out)
		case List:
			collectNested([]Atom(v), out)
		}
	}
}

// NewSolution returns a solution containing the given atoms.
func NewSolution(atoms ...Atom) *Solution {
	s := &Solution{}
	s.Add(atoms...)
	return s
}

// Len returns the number of atoms in the solution.
func (s *Solution) Len() int { return len(s.elems) }

// At returns the i-th atom. The order is an implementation detail: a
// multiset has no intrinsic order, but a stable iteration order keeps
// reduction deterministic for a fixed seed.
func (s *Solution) At(i int) Atom { return s.elems[i] }

// Atoms returns the underlying atom slice. The caller must not mutate it.
func (s *Solution) Atoms() []Atom { return s.elems }

// Add inserts atoms into the solution and marks it active (non-inert).
func (s *Solution) Add(atoms ...Atom) {
	s.elems = append(s.elems, atoms...)
	if len(atoms) > 0 {
		s.mutated()
	}
}

// RemoveIndices removes the atoms at the given indices (which must be
// distinct) and marks the solution active.
func (s *Solution) RemoveIndices(idx []int) {
	if len(idx) == 0 {
		return
	}
	s.removeSortedInPlace(slices.Clone(idx))
}

// removeSortedInPlace is RemoveIndices for a caller-owned index slice:
// it sorts idx in place instead of cloning, so the reduction hot loop
// can reuse one scratch buffer across firings.
func (s *Solution) removeSortedInPlace(idx []int) {
	if len(idx) == 0 {
		return
	}
	slices.Sort(idx)
	// Remove back to front so earlier indices stay valid.
	for k := len(idx) - 1; k >= 0; k-- {
		i := idx[k]
		s.elems = append(s.elems[:i], s.elems[i+1:]...)
	}
	s.mutated()
}

// RemoveFirst removes the first atom equal to a, reporting whether one was
// found.
func (s *Solution) RemoveFirst(a Atom) bool {
	for i, e := range s.elems {
		if e.Equal(a) {
			s.RemoveIndices([]int{i})
			return true
		}
	}
	return false
}

// Contains reports whether the solution holds an atom equal to a.
func (s *Solution) Contains(a Atom) bool {
	for _, e := range s.elems {
		if e.Equal(a) {
			return true
		}
	}
	return false
}

// Count returns the multiplicity of atoms equal to a.
func (s *Solution) Count(a Atom) int {
	n := 0
	for _, e := range s.elems {
		if e.Equal(a) {
			n++
		}
	}
	return n
}

// Inert reports whether the reduction engine has marked this solution
// inert. A freshly built or freshly mutated solution is not inert.
func (s *Solution) Inert() bool { return s.inert }

// SetInert records the inertness state; it is exported for the reduction
// engine and for agents that receive solutions over the wire.
func (s *Solution) SetInert(v bool) { s.inert = v }

func (s *Solution) Equal(b Atom) bool {
	o, ok := b.(*Solution)
	if !ok || len(s.elems) != len(o.elems) {
		return false
	}
	// Multiset equality: each atom of s must be matched by a distinct,
	// equal atom of o. Solutions stay small (tens of atoms), so the
	// quadratic scan is fine.
	used := make([]bool, len(o.elems))
outer:
	for _, e := range s.elems {
		for j, f := range o.elems {
			if !used[j] && e.Equal(f) {
				used[j] = true
				continue outer
			}
		}
		return false
	}
	return true
}

func (s *Solution) Clone() Atom { return s.CloneSolution() }

// CloneSolution returns a deep copy preserving the inertness flag.
func (s *Solution) CloneSolution() *Solution {
	c := &Solution{elems: make([]Atom, len(s.elems)), inert: s.inert}
	for i, e := range s.elems {
		c.elems[i] = e.Clone()
	}
	return c
}

// Subsolutions returns the nested solutions directly contained in s.
func (s *Solution) Subsolutions() []*Solution {
	var subs []*Solution
	for _, e := range s.elems {
		if sub, ok := e.(*Solution); ok {
			subs = append(subs, sub)
		}
	}
	return subs
}

// Rules returns the rules directly contained in s, in solution order.
func (s *Solution) Rules() []*Rule {
	var rs []*Rule
	for _, e := range s.elems {
		if r, ok := e.(*Rule); ok {
			rs = append(rs, r)
		}
	}
	return rs
}

// FindTuple returns the first tuple whose leading element is the ident key,
// and its index, or (nil, -1). GinFlow stores task attributes as keyed
// tuples (SRC:<...>, RES:<...>), so this is the workhorse accessor.
func (s *Solution) FindTuple(key Ident) (Tuple, int) {
	for i, e := range s.elems {
		if t, ok := e.(Tuple); ok && len(t) > 0 {
			if k, ok := t[0].(Ident); ok && k == key {
				return t, i
			}
		}
	}
	return nil, -1
}

// ReplaceAt substitutes the atom at index i and marks the solution active.
func (s *Solution) ReplaceAt(i int, a Atom) {
	s.elems[i] = a
	s.mutated()
}

func (s *Solution) String() string {
	var b strings.Builder
	writeSolution(&b, s)
	return b.String()
}

func (a Tuple) String() string {
	var b strings.Builder
	writeTuple(&b, a)
	return b.String()
}

func (a List) String() string {
	var b strings.Builder
	writeList(&b, a)
	return b.String()
}

func (a Int) String() string   { return fmt.Sprintf("%d", int64(a)) }
func (a Str) String() string   { return fmt.Sprintf("%q", string(a)) }
func (a Ident) String() string { return string(a) }

func (a Bool) String() string {
	if a {
		return "true"
	}
	return "false"
}

func (a Float) String() string {
	str := fmt.Sprintf("%g", float64(a))
	// Keep floats distinguishable from ints in the round-trip syntax.
	if !strings.ContainsAny(str, ".eE") && !strings.Contains(str, "Inf") && !strings.Contains(str, "NaN") {
		str += ".0"
	}
	return str
}
