package hocl

import (
	"strings"
	"testing"
)

func mustParseGround(t *testing.T, src string) Atom {
	t.Helper()
	a, err := ParseGround(src)
	if err != nil {
		t.Fatalf("ParseGround(%q): %v", src, err)
	}
	return a
}

func TestParseGroundBasics(t *testing.T) {
	cases := []struct {
		src  string
		want Atom
	}{
		{"42", Int(42)},
		{"-7", Int(-7)},
		{"3.25", Float(3.25)},
		{"-0.5", Float(-0.5)},
		{"1e3", Float(1000)},
		{`"hello world"`, Str("hello world")},
		{`"esc\"aped"`, Str(`esc"aped`)},
		{"true", Bool(true)},
		{"false", Bool(false)},
		{"ERROR", Ident("ERROR")},
		{"T2'", Ident("T2'")}, // paper-style primes are identifiers
		{"SRC:<>", Tuple{Ident("SRC"), NewSolution()}},
		{"A:B:C", Tuple{Ident("A"), Ident("B"), Ident("C")}},
		{"A:(B:C)", Tuple{Ident("A"), Tuple{Ident("B"), Ident("C")}}},
		{"[1, 2, 3]", List{Int(1), Int(2), Int(3)}},
		{"[]", List(nil)},
		{"<1, 2>", NewSolution(Int(1), Int(2))},
		{"<>", NewSolution()},
		{"<<1>, 2>", NewSolution(NewSolution(Int(1)), Int(2))},
	}
	for _, c := range cases {
		got := mustParseGround(t, c.src)
		if !got.Equal(c.want) {
			t.Errorf("ParseGround(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseGroundErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"x",           // free variable
		"<1",          // unterminated solution
		"[1",          // unterminated list
		`"abc`,        // unterminated string
		"1 2",         // juxtaposition
		"*w",          // omega outside rule
		"let",         // keyword
		"A:",          // dangling colon
		"/* unclosed", // unterminated comment
	}
	for _, src := range cases {
		if _, err := ParseGround(src); err == nil {
			t.Errorf("ParseGround(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	src := `
	// line comment
	# hash comment
	/* block
	   comment */
	<1, 2> // trailing
	`
	got := mustParseGround(t, src)
	if !got.Equal(NewSolution(Int(1), Int(2))) {
		t.Errorf("got %v", got)
	}
}

func TestRoundTripGround(t *testing.T) {
	// Printing then re-parsing must yield an equal atom. This property is
	// what makes the text syntax usable as the message wire format.
	srcs := []string{
		"42", "-42", "3.5", `"s"`, "true", "ERROR",
		"SRC:<T1, T2>",
		"T1:<SRC:<>, DST:<T2, T3>, SRV:\"s1\", IN:<\"input\">>",
		"[1, [2, 3], <4>]",
		"A:(B:C):D",
		"MVSRC:T4:T2:T2'",
		"<RES:<ERROR>, ADAPT>",
	}
	for _, src := range srcs {
		a := mustParseGround(t, src)
		b := mustParseGround(t, a.String())
		if !a.Equal(b) {
			t.Errorf("round trip of %q: %v != %v", src, a, b)
		}
	}
}

func TestRoundTripRuleLiteral(t *testing.T) {
	r := MustParseRuleBody("max", "replace x, y by x if x >= y", nil)
	sol := NewSolution(Int(2), r)
	back := mustParseGround(t, sol.String())
	bsol, ok := back.(*Solution)
	if !ok {
		t.Fatalf("got %T", back)
	}
	rules := bsol.Rules()
	if len(rules) != 1 || rules[0].Name != "max" {
		t.Fatalf("rules after round trip: %v", rules)
	}
	if rules[0].OneShot {
		t.Error("catalyst became one-shot")
	}
	// And the round-tripped rule must still work.
	e := NewEngine()
	if err := e.Reduce(bsol); err != nil {
		t.Fatal(err)
	}
	if !bsol.Contains(Int(2)) {
		t.Errorf("solution after reduction: %v", bsol)
	}
}

func TestParseProgramGetMax(t *testing.T) {
	sol, err := Parse(`let max = replace x, y by x if x >= y in <2, 3, 5, 8, 9, max>`)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 6 {
		t.Fatalf("program solution has %d atoms, want 6", sol.Len())
	}
	if len(sol.Rules()) != 1 {
		t.Fatalf("rules: %d, want 1", len(sol.Rules()))
	}
}

func TestParseProgramScopedRuleRefs(t *testing.T) {
	sol, err := Parse(`
		let max = replace x, y by x if x >= y in
		let clean = replace-one <max, *w> by *w in
		<<2, 3, 5, 8, 9, max>, clean>`)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 2 {
		t.Fatalf("outer solution has %d atoms, want 2", sol.Len())
	}
	clean := sol.Rules()
	if len(clean) != 1 || clean[0].Name != "clean" || !clean[0].OneShot {
		t.Fatalf("outer rule wrong: %v", clean)
	}
}

func TestParseRuleBodyForms(t *testing.T) {
	// replace-one
	r := MustParseRuleBody("r", `replace-one SRC:<>, IN:<*w> by SRC:<>, PAR:list(*w)`, nil)
	if !r.OneShot || len(r.Pattern) != 2 || len(r.Product) != 2 {
		t.Fatalf("gw_setup-style rule parsed wrong: %+v", r)
	}
	// with/inject sugar re-emits the pattern.
	wi := MustParseRuleBody("w", `with T2:<RES:<ERROR>, *o> inject TRIGGER:T2'`, nil)
	if !wi.OneShot {
		t.Error("with/inject must be one-shot")
	}
	if len(wi.Product) != len(wi.Pattern)+1 {
		t.Errorf("with/inject product = %d exprs, want pattern(%d)+1",
			len(wi.Product), len(wi.Pattern))
	}
	// guard with full expression grammar
	g := MustParseRuleBody("g", `replace x, y by x + y if x > 0 && !(y > 10) || x == y`, nil)
	if g.Guard == nil {
		t.Fatal("guard missing")
	}
}

func TestParseRuleErrors(t *testing.T) {
	cases := []string{
		"replace by x",          // empty pattern
		"replace *w by *w",      // top-level omega
		"replace x",             // missing by
		"replace x by",          // missing product
		"with x by x",           // wrong keyword
		"replace <*a, *b> by x", // two omegas in one solution pattern
		"frobnicate x by y",     // unknown keyword
	}
	for _, src := range cases {
		if _, err := ParseRuleBody("r", src, nil); err == nil {
			t.Errorf("ParseRuleBody(%q) succeeded, want error", src)
		}
	}
}

func TestParseByNothing(t *testing.T) {
	r := MustParseRuleBody("drop", "replace-one x by nothing", nil)
	if len(r.Product) != 0 {
		t.Fatalf("products: %d, want 0", len(r.Product))
	}
	sol := NewSolution(Int(1), r)
	if err := NewEngine().Reduce(sol); err != nil {
		t.Fatal(err)
	}
	if sol.Len() != 0 {
		t.Errorf("solution after drop: %v", sol)
	}
}

func TestParseMoleculesList(t *testing.T) {
	atoms, err := ParseMolecules(`RES:<42>, ADAPT, DST:<T1>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(atoms) != 3 {
		t.Fatalf("got %d molecules", len(atoms))
	}
	if !atoms[1].Equal(Ident("ADAPT")) {
		t.Errorf("atoms[1] = %v", atoms[1])
	}
	// Empty input is an empty message.
	none, err := ParseMolecules("")
	if err != nil || len(none) != 0 {
		t.Errorf("empty molecules: %v, %v", none, err)
	}
}

func TestFormatMoleculesRoundTrip(t *testing.T) {
	atoms := []Atom{
		Tuple{Ident("RES"), NewSolution(Int(42))},
		Ident("ADAPT"),
		List{Str("a"), Str("b")},
	}
	s := FormatMolecules(atoms)
	back, err := ParseMolecules(s)
	if err != nil {
		t.Fatalf("ParseMolecules(%q): %v", s, err)
	}
	if len(back) != len(atoms) {
		t.Fatalf("length mismatch: %d != %d", len(back), len(atoms))
	}
	for i := range atoms {
		if !atoms[i].Equal(back[i]) {
			t.Errorf("molecule %d: %v != %v", i, atoms[i], back[i])
		}
	}
}

func TestSyntaxErrorPositions(t *testing.T) {
	_, err := Parse("<1,\n  &&>")
	if err == nil {
		t.Fatal("want error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2 (%v)", se.Line, err)
	}
	if !strings.Contains(err.Error(), "hocl:") {
		t.Errorf("error should be prefixed: %v", err)
	}
}

func TestPrettyIsParseable(t *testing.T) {
	src := `<T1:<SRC:<>, DST:<T2, T3>>, T2:<SRC:<T1>>, 5>`
	a := mustParseGround(t, src)
	pretty := Pretty(a)
	if !strings.Contains(pretty, "\n") {
		t.Error("Pretty output should be multi-line for nested solutions")
	}
	b := mustParseGround(t, pretty)
	if !a.Equal(b) {
		t.Errorf("Pretty round trip failed:\n%s", pretty)
	}
}
