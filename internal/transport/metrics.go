package transport

import "ginflow/internal/obs"

// Wire-layer instrumentation, registered on the process-wide default
// registry: a transport endpoint (server or worker) may live in a
// process with no Manager, so the package does not thread a registry
// through — every instrument is a resolved pointer and each update is
// one atomic operation on an already-encoded frame path.
var (
	metFramesSent = obs.Default().Counter("ginflow_transport_frames_sent_total",
		"Frames written to transport sockets (both directions' writers).")
	metFramesReceived = obs.Default().Counter("ginflow_transport_frames_received_total",
		"Frames read from transport sockets.")
	metReconnects = obs.Default().Counter("ginflow_transport_reconnects_total",
		"Successful client re-handshakes after a broken connection.")
	metRetryDials = obs.Default().Counter("ginflow_retry_attempts_total",
		"Retries after transient faults, per boundary.", obs.L("boundary", "dial"))
	// metUnacked is the ACK lag: reliable frames sitting in link
	// outboxes awaiting the peer's cumulative acknowledgement, summed
	// over every live link in the process.
	metUnacked = obs.Default().Gauge("ginflow_transport_unacked_frames",
		"Reliable frames in outboxes awaiting cumulative ACK (ACK lag).")
)
