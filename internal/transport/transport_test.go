package transport

import (
	"context"
	"fmt"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/mq"
	"ginflow/internal/space"
	"ginflow/internal/workflow"
)

// newTestServer starts a listener on a loopback port over a fast-clock
// replayable broker.
func newTestServer(t *testing.T, chaos *failure.Schedule) (*Server, *mq.LogBroker, *cluster.Clock) {
	t.Helper()
	clock := cluster.NewClock(50 * time.Microsecond)
	br := mq.NewLogBrokerSharded(clock, 0.001, 4)
	if chaos != nil {
		chaos.SetSleeper(clock.Sleep)
	}
	srv, err := Listen("127.0.0.1:0", ServerConfig{Broker: br, Chaos: chaos})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		srv.Close()
		br.Close()
	})
	return srv, br, clock
}

func dialTest(t *testing.T, srv *Server, name string) *RemoteBroker {
	t.Helper()
	rb, err := Dial(srv.Addr(), DialConfig{Name: name, PingInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { rb.Close() })
	return rb
}

func recv(t *testing.T, sub *mq.Subscription, timeout time.Duration) mq.Message {
	t.Helper()
	select {
	case m := <-sub.C():
		return m
	case <-time.After(timeout):
		t.Fatal("timeout waiting for message")
		return mq.Message{}
	}
}

func TestHandshakeAssignsNodeIDs(t *testing.T) {
	srv, _, _ := newTestServer(t, nil)
	a := dialTest(t, srv, "a")
	b := dialTest(t, srv, "b")
	if a.NodeID() == 0 || b.NodeID() == 0 || a.NodeID() == b.NodeID() {
		t.Fatalf("bad identities: %d and %d", a.NodeID(), b.NodeID())
	}
	if srv.NodeCount() != 2 {
		t.Fatalf("NodeCount = %d, want 2", srv.NodeCount())
	}
}

func TestRemotePublishReachesBroker(t *testing.T) {
	srv, br, _ := newTestServer(t, nil)
	rb := dialTest(t, srv, "pub")
	sub, err := br.Subscribe("sa.t")
	if err != nil {
		t.Fatal(err)
	}
	if err := rb.Publish("sa.t", "hello"); err != nil {
		t.Fatal(err)
	}
	if m := recv(t, sub, 5*time.Second); m.Payload != "hello" || m.Structural() {
		t.Fatalf("got %+v", m)
	}
	if err := rb.PublishAtoms("sa.t", []hocl.Atom{hocl.Str("res"), hocl.Int(7)}); err != nil {
		t.Fatal(err)
	}
	m := recv(t, sub, 5*time.Second)
	if !m.Structural() || len(m.Atoms) != 2 {
		t.Fatalf("structural publish arrived as %+v", m)
	}
	if rb.Published() != 2 || rb.PublishedPrefix("sa.") != 2 {
		t.Fatalf("local counters: %d / %d", rb.Published(), rb.PublishedPrefix("sa."))
	}
}

func TestRemoteSubscribeReceives(t *testing.T) {
	srv, br, _ := newTestServer(t, nil)
	rb := dialTest(t, srv, "sub")
	sub, err := rb.Subscribe("sa.x")
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Publish("sa.x", "one"); err != nil {
		t.Fatal(err)
	}
	if err := br.PublishAtoms("sa.x", []hocl.Atom{hocl.Int(2)}); err != nil {
		t.Fatal(err)
	}
	m1 := recv(t, sub, 5*time.Second)
	if m1.Topic != "sa.x" || m1.Payload != "one" {
		t.Fatalf("first: %+v", m1)
	}
	m2 := recv(t, sub, 5*time.Second)
	if !m2.Structural() || len(m2.Atoms) != 1 {
		t.Fatalf("second: %+v", m2)
	}
	// Cancelling unsubscribes remotely; later publishes go nowhere.
	sub.Cancel()
}

func TestReconnectResumesBothDirections(t *testing.T) {
	srv, br, _ := newTestServer(t, nil)
	rb := dialTest(t, srv, "rec")
	sub, err := rb.Subscribe("sa.r")
	if err != nil {
		t.Fatal(err)
	}
	if err := br.Publish("sa.r", "m1"); err != nil {
		t.Fatal(err)
	}
	if m := recv(t, sub, 5*time.Second); m.Payload != "m1" {
		t.Fatalf("pre-drop: %+v", m)
	}

	local, err := br.Subscribe("sa.c")
	if err != nil {
		t.Fatal(err)
	}
	srv.DropNode(rb.NodeID())
	// Traffic during the outage queues on both sides' outboxes.
	for i := 2; i <= 4; i++ {
		if err := br.Publish("sa.r", fmt.Sprintf("m%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rb.Publish("sa.c", "c1"); err != nil {
		t.Fatal(err)
	}

	seen := map[string]int{}
	for i := 0; i < 3; i++ {
		seen[recv(t, sub, 10*time.Second).Payload]++
	}
	for i := 2; i <= 4; i++ {
		if k := fmt.Sprintf("m%d", i); seen[k] != 1 {
			t.Fatalf("message %s seen %d times (%v)", k, seen[k], seen)
		}
	}
	if m := recv(t, local, 10*time.Second); m.Payload != "c1" {
		t.Fatalf("client publish during outage: %+v", m)
	}
	if srv.NodeCount() != 1 {
		t.Fatalf("reconnect created a new identity: %d nodes", srv.NodeCount())
	}
}

func TestLogRoundTrip(t *testing.T) {
	srv, br, _ := newTestServer(t, nil)
	rb := dialTest(t, srv, "log")
	if err := br.Publish("sa.log", "zero"); err != nil {
		t.Fatal(err)
	}
	if err := br.PublishAtoms("sa.log", []hocl.Atom{hocl.Str("one")}); err != nil {
		t.Fatal(err)
	}
	msgs := rb.Log("sa.log")
	if len(msgs) != 2 {
		t.Fatalf("Log returned %d messages, want 2", len(msgs))
	}
	if msgs[0].Payload != "zero" || msgs[0].Topic != "sa.log" || msgs[0].Offset != 0 {
		t.Fatalf("first: %+v", msgs[0])
	}
	if !msgs[1].Structural() || msgs[1].Offset != 1 {
		t.Fatalf("second: %+v", msgs[1])
	}
}

func TestSocketChaosLosesNothing(t *testing.T) {
	chaos := failure.NewSchedule(failure.ChaosConfig{
		Seed:           7,
		SocketDropP:    0.15,
		SocketDupP:     0.15,
		SocketDelayP:   0.2,
		SocketReorderP: 0.1,
	})
	srv, br, _ := newTestServer(t, chaos)
	rb := dialTest(t, srv, "chaos")
	sub, err := br.Subscribe("sa.chaos")
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	for i := 0; i < n; i++ {
		if err := rb.Publish("sa.chaos", fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	// The socket boundary is at-least-once: every distinct payload must
	// land, duplicates permitted (agents dedup above this layer).
	seen := map[string]bool{}
	deadline := time.After(20 * time.Second)
	for len(seen) < n {
		select {
		case m := <-sub.C():
			seen[m.Payload] = true
		case <-deadline:
			t.Fatalf("only %d/%d distinct payloads arrived under chaos", len(seen), n)
		}
	}
	if chaos.Faults() == 0 {
		t.Fatal("chaos schedule drew no faults; the hook is not wired")
	}
}

// TestNodeRunsAssignedSession drives the full worker protocol in one
// process: assign a two-task sequence, barrier on READY, start, watch
// the space converge, stop, and collect the DONE stats.
func TestNodeRunsAssignedSession(t *testing.T) {
	srv, br, _ := newTestServer(t, nil)

	reg := agent.NewRegistry()
	reg.RegisterNoop(0.01, "s")
	node, err := Join(srv.Addr(), NodeConfig{Name: "w1", Services: reg})
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	defer node.Close()

	def := workflow.Sequence(2, "s", "in")
	blob, err := def.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := srv.StartRemote(1, map[uint64]Assignment{
		node.NodeID(): {
			SpaceTopic:  "wt.space",
			TopicPrefix: "wt.sa.",
			Workflow:    blob,
			Tasks:       []string{"S1", "S2"},
			Seed:        1,
			ScaleNS:     int64(50 * time.Microsecond),
		},
	})
	if err != nil {
		t.Fatalf("start remote: %v", err)
	}
	defer rs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := rs.WaitReady(ctx); err != nil {
		t.Fatalf("ready: %v", err)
	}

	sp := space.New()
	spCtx, spCancel := context.WithCancel(context.Background())
	defer spCancel()
	go sp.Serve(spCtx, br, "wt.space")

	rs.Start()
	if err := sp.WaitCompleted(ctx, []string{"S1", "S2"}); err != nil {
		t.Fatalf("convergence: %v (err channel: %v)", err, drainFailed(rs))
	}
	rs.Stop()
	stats, err := rs.WaitDone(ctx)
	if err != nil {
		t.Fatalf("done: %v", err)
	}
	if stats.Failures != 0 || stats.Recoveries != 0 {
		t.Fatalf("unexpected stats: %+v", stats)
	}
	if sp.StateFingerprint() == 0 {
		t.Fatal("space fingerprint is zero after convergence")
	}
}

func drainFailed(rs *RemoteSession) error {
	select {
	case err := <-rs.Failed():
		return err
	default:
		return nil
	}
}
