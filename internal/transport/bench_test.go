package transport

import (
	"testing"
	"time"

	"ginflow/internal/cluster"
	"ginflow/internal/mq"
)

// BenchmarkRemoteRoundTrip measures one full transport round trip:
// client publish → frame → server → broker delivery → forwarder →
// frame → client subscription. Guarded by cmd/benchguard so the
// per-message allocation cost of the wire path cannot silently regress.
func BenchmarkRemoteRoundTrip(b *testing.B) {
	clock := cluster.NewClock(time.Microsecond)
	br := mq.NewQueueBrokerSharded(clock, 0.001, 4)
	srv, err := Listen("127.0.0.1:0", ServerConfig{Broker: br})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	defer br.Close()

	rb, err := Dial(srv.Addr(), DialConfig{Name: "bench"}) // pings off
	if err != nil {
		b.Fatal(err)
	}
	defer rb.Close()
	sub, err := rb.Subscribe("sa.rt")
	if err != nil {
		b.Fatal(err)
	}
	c := sub.C()

	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := rb.Publish("sa.rt", "ping"); err != nil {
			b.Fatal(err)
		}
		<-c
	}
}
