package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"ginflow/internal/hocl"
)

// frameBytes renders a full wire frame (length header, type, payload).
func frameBytes(t testing.TB, typ byte, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeFrame(&buf, typ, payload); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	return buf.Bytes()
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	h := helloFrame{version: protocolVersion, nodeID: 7, lastSeq: 42, name: "worker-a"}
	if err := writeFrame(&buf, fHello, encodeHello(h)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(&buf)
	if err != nil || typ != fHello {
		t.Fatalf("readFrame: type %d err %v", typ, err)
	}
	got, err := parseHello(payload)
	if err != nil || got != h {
		t.Fatalf("parseHello: %+v err %v", got, err)
	}

	w := welcomeFrame{version: protocolVersion, nodeID: 7, lastSeq: 9}
	gw, err := parseWelcome(encodeWelcome(w))
	if err != nil || gw != w {
		t.Fatalf("parseWelcome: %+v err %v", gw, err)
	}
}

func TestPublishRoundTrip(t *testing.T) {
	atoms := []hocl.Atom{hocl.Str("hello"), hocl.Int(3)}
	p := publishFrame{topic: "wf1.space", kind: kindStructural, data: hocl.EncodeAtoms(atoms)}
	payload := encodePublish(99, p)
	c := cursor{buf: payload}
	seq, err := c.uvarint()
	if err != nil || seq != 99 {
		t.Fatalf("seq %d err %v", seq, err)
	}
	got, err := parsePublish(&c)
	if err != nil {
		t.Fatal(err)
	}
	if got.topic != p.topic || got.kind != p.kind || !bytes.Equal(got.data, p.data) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	back, err := hocl.DecodeAtoms(got.data)
	if err != nil || len(back) != 2 {
		t.Fatalf("decode atoms: %v %v", back, err)
	}
}

func TestMsgsRoundTrip(t *testing.T) {
	msgs := []wireMsg{
		{kind: kindTextual, offset: -1, data: []byte("DONE")},
		{kind: kindStructural, offset: 12, data: hocl.EncodeAtoms([]hocl.Atom{hocl.Int(1)})},
	}
	buf := encodeMsgs(binary.AppendUvarint(nil, 5), msgs)
	c := cursor{buf: buf}
	if id, err := c.uvarint(); err != nil || id != 5 {
		t.Fatalf("id %d err %v", id, err)
	}
	got, err := c.msgs()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.done(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].offset != -1 || string(got[0].data) != "DONE" || got[1].kind != kindStructural {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestReadFrameRejectsBeforeAllocation(t *testing.T) {
	cases := map[string][]byte{
		"zero length":    {0, 0, 0, 0},
		"oversized":      {0xff, 0xff, 0xff, 0xff, fPing},
		"type zero":      frameBytesRaw(3, []byte{0, 'x', 'y'}),
		"type too large": frameBytesRaw(2, []byte{200, 'x'}),
	}
	for name, data := range cases {
		if _, _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, errFrame) {
			t.Errorf("%s: err = %v, want errFrame", name, err)
		}
	}
	// A torn frame (header promises more than arrives) is an io error,
	// not a decode error: the connection died mid-frame.
	torn := frameBytes(t, fPing, nil)[:3]
	if _, _, err := readFrame(bytes.NewReader(torn)); err == nil {
		t.Error("torn frame: no error")
	}
}

// frameBytesRaw builds a frame with an arbitrary (possibly invalid)
// body, bypassing writeFrame's checks.
func frameBytesRaw(n uint32, body []byte) []byte {
	out := binary.BigEndian.AppendUint32(nil, n)
	return append(out, body...)
}

func TestParseFrameRejectsTrailingGarbage(t *testing.T) {
	body := binary.AppendUvarint(nil, 1) // seq
	body = binary.AppendUvarint(body, 3) // subID
	body = append(body, 0xde, 0xad)      // trailing garbage
	if err := parseFrame(fUnsubscribe, body); !errors.Is(err, errFrame) {
		t.Fatalf("err = %v, want errFrame", err)
	}
}

func TestParseFrameRejectsBadKind(t *testing.T) {
	p := encodePublish(1, publishFrame{topic: "t", kind: 7, data: []byte("x")})
	if err := parseFrame(fPublish, p); !errors.Is(err, errFrame) {
		t.Fatalf("err = %v, want errFrame", err)
	}
}

// FuzzFrameDecode locks in the frame parser's resilience contract:
// whatever bytes arrive — torn frames, oversized lengths, bad control
// tags, corrupt counts — reading and parsing either succeeds or returns
// an error wrapping errFrame (or an io error for truncation); it never
// panics and never allocates unbounded memory from a hostile length.
func FuzzFrameDecode(f *testing.F) {
	seq := func(body []byte) []byte {
		return append(binary.AppendUvarint(nil, 1), body...)
	}
	wire := func(typ byte, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeFrame(&buf, typ, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}

	atoms := hocl.EncodeAtoms([]hocl.Atom{hocl.Str("res"), hocl.Int(42)})
	msgsBody := encodeMsgs(binary.AppendUvarint(seq(nil), 2), []wireMsg{
		{kind: kindTextual, offset: -1, data: []byte("DONE")},
		{kind: kindStructural, offset: 3, data: atoms},
	})

	// One valid frame of every type.
	f.Add(wire(fHello, encodeHello(helloFrame{version: 1, nodeID: 0, lastSeq: 0, name: "n"})))
	f.Add(wire(fWelcome, encodeWelcome(welcomeFrame{version: 1, nodeID: 4, lastSeq: 2})))
	f.Add(wire(fPing, nil))
	f.Add(wire(fPong, nil))
	f.Add(wire(fAck, binary.AppendUvarint(nil, 17)))
	f.Add(wire(fSubscribe, appendString(binary.AppendUvarint(seq(nil), 1), "wf1.space")))
	f.Add(wire(fUnsubscribe, binary.AppendUvarint(seq(nil), 1)))
	f.Add(wire(fPublish, encodePublish(1, publishFrame{topic: "sa.t", kind: kindStructural, data: atoms})))
	f.Add(wire(fPublish, encodePublish(2, publishFrame{topic: "sa.t", kind: kindTextual, data: []byte("hi")})))
	f.Add(wire(fBatch, msgsBody))
	f.Add(wire(fLogResp, msgsBody))
	f.Add(wire(fLogReq, appendString(binary.AppendUvarint(seq(nil), 9), "sa.t")))
	f.Add(wire(fAssign, encodeSessionJSON(1, 3, []byte(`{"tasks":["A"]}`))))
	f.Add(wire(fReady, binary.AppendUvarint(seq(nil), 3)))
	f.Add(wire(fStart, binary.AppendUvarint(seq(nil), 3)))
	f.Add(wire(fStop, binary.AppendUvarint(seq(nil), 3)))
	f.Add(wire(fFail, encodeSessionJSON(1, 3, []byte(`{"err":"x"}`))))
	f.Add(wire(fDone, encodeSessionJSON(1, 3, []byte(`{"failures":0}`))))
	f.Add(wire(fEvent, encodeSessionJSON(1, 3, []byte(`{"kind":"agent-started"}`))))

	// Hostile shapes.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})                                                             // zero length
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, fPing})                                          // oversized length
	f.Add(frameBytesRaw(2, []byte{0, 'x'}))                                               // type zero
	f.Add(frameBytesRaw(2, []byte{200, 'x'}))                                             // bad control tag
	f.Add(wire(fPing, nil)[:3])                                                           // torn header
	f.Add(wire(fHello, []byte{1})[:6])                                                    // torn payload
	f.Add(wire(fPublish, encodePublish(1, publishFrame{topic: "t", kind: 9, data: nil}))) // bad kind
	f.Add(wire(fBatch, binary.AppendUvarint(seq(nil), ^uint64(0))))                       // absurd count
	f.Add(wire(fUnsubscribe, append(binary.AppendUvarint(seq(nil), 1), 0xde, 0xad)))      // trailing bytes
	two := append(wire(fPing, nil), wire(fAck, binary.AppendUvarint(nil, 1))...)
	f.Add(two) // multiple frames per input

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			typ, payload, err := readFrame(r)
			if err != nil {
				if !errors.Is(err, errFrame) && !isIOErr(err) {
					t.Fatalf("readFrame: unexpected error class: %v", err)
				}
				return
			}
			if err := parseFrame(typ, payload); err != nil && !errors.Is(err, errFrame) {
				t.Fatalf("parseFrame(%d): unexpected error class: %v", typ, err)
			}
		}
	})
}

func isIOErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
