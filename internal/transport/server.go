package transport

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ginflow/internal/failure"
	"ginflow/internal/hocl"
	"ginflow/internal/mq"
)

// handshakeTimeout bounds how long an accepted connection may take to
// present its HELLO (and a dialing client waits for its WELCOME).
const handshakeTimeout = 10 * time.Second

// maxSocketRedeliveries bounds the chaos drop chain at the socket
// boundary: a publish dropped this many times in a row is forced
// through, mirroring the broker chaos host's bounded-redelivery
// contract — the socket stays at-least-once, never lossy.
const maxSocketRedeliveries = 2

// ServerConfig wires a transport listener to its host.
type ServerConfig struct {
	// Broker is the in-process broker the listener fronts; remote
	// publishes land here and remote subscriptions are served from it.
	Broker mq.Broker
	// Chaos, when enabled, perturbs the socket boundary: each remote
	// publish dispatch may be dropped (bounded redelivery), duplicated,
	// delayed or held for reordering before it reaches the broker. Nil
	// disables the hook. The schedule's sleeper provides the delay
	// clock.
	Chaos *failure.Schedule
}

// Server is the listener side of the network transport: it accepts
// worker connections, assigns node identities, bridges their publish
// and subscribe traffic onto the in-process broker, and carries the
// control conversation (assignments, readiness, start/stop, results)
// for remote sessions. A node's state — its reliable-link outbox,
// receive cursor and subscriptions — survives connection drops; a
// reconnecting worker resumes exactly where the socket broke.
type Server struct {
	cfg ServerConfig
	ln  net.Listener

	mu       sync.Mutex
	closed   bool
	nodes    map[uint64]*serverNode
	nextNode uint64
	sessions map[uint64]*RemoteSession

	wg sync.WaitGroup
}

// serverNode is the server-side state of one worker, persistent across
// that worker's connections.
type serverNode struct {
	id   uint64
	name string
	link link

	mu   sync.Mutex
	subs map[uint64]*serverSub
}

// serverSub is one remote subscription: the broker-side subscription
// and the forwarder goroutine's stop signal.
type serverSub struct {
	topic string
	sub   *mq.Subscription
	stop  chan struct{}
}

// Listen starts a transport server on addr ("host:port"; ":0" picks a
// free port, see Addr).
func Listen(addr string, cfg ServerConfig) (*Server, error) {
	if cfg.Broker == nil {
		return nil, fmt.Errorf("transport: listen: nil broker")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		ln:       ln,
		nodes:    map[uint64]*serverNode{},
		sessions: map[uint64]*RemoteSession{},
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener's bound address (the dial target for
// workers, resolving ":0" to the picked port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// NodeCount returns how many worker nodes have joined (connected or
// temporarily dropped; node state persists across reconnects).
func (s *Server) NodeCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.nodes)
}

// NodeIDs returns the joined nodes' handshake-assigned IDs, sorted.
func (s *Server) NodeIDs() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]uint64, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// DropConnections closes every node's current socket without touching
// node state — a test hook simulating network partitions; workers
// reconnect and resume through the outbox replay.
func (s *Server) DropConnections() {
	s.mu.Lock()
	nodes := make([]*serverNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.mu.Unlock()
	for _, n := range nodes {
		n.link.close()
	}
}

// DropNode closes one node's current socket (state kept, like
// DropConnections).
func (s *Server) DropNode(id uint64) {
	s.mu.Lock()
	n := s.nodes[id]
	s.mu.Unlock()
	if n != nil {
		n.link.close()
	}
}

// Close stops accepting, drops every connection and waits for the
// forwarders and connection handlers to unwind. Node and session state
// is discarded.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	nodes := make([]*serverNode, 0, len(s.nodes))
	for _, n := range s.nodes {
		nodes = append(nodes, n)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, n := range nodes {
		n.link.close()
		n.mu.Lock()
		for id, ss := range n.subs {
			ss.sub.Cancel()
			close(ss.stop)
			delete(n.subs, id)
		}
		n.mu.Unlock()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.handshake(conn)
	}
}

// handshake consumes a connection's HELLO, resolves or creates its node
// identity, answers WELCOME and hands the socket to the node's link
// (which replays any unacknowledged frames).
func (s *Server) handshake(conn net.Conn) {
	defer s.wg.Done()
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != fHello {
		conn.Close()
		return
	}
	h, err := parseHello(payload)
	if err != nil || h.version != protocolVersion {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	var n *serverNode
	rejoined := false
	if h.nodeID == 0 {
		s.nextNode++
		n = &serverNode{id: s.nextNode, name: h.name, subs: map[uint64]*serverSub{}}
		s.nodes[n.id] = n
	} else {
		n = s.nodes[h.nodeID]
		if n == nil {
			// An identity this server never assigned (or a server
			// restart): the worker's broker state is unrecoverable here,
			// so reject rather than silently resume with a hole.
			s.mu.Unlock()
			conn.Close()
			return
		}
		rejoined = true
	}
	var sessions []*RemoteSession
	if rejoined {
		for _, rs := range s.sessions {
			if rs.hasNode(n.id) {
				sessions = append(sessions, rs)
			}
		}
	}
	s.mu.Unlock()

	n.link.onAck(h.lastSeq)
	w := welcomeFrame{version: protocolVersion, nodeID: n.id, lastSeq: n.link.received()}
	if err := writeFrame(conn, fWelcome, encodeWelcome(w)); err != nil {
		conn.Close()
		return
	}
	n.link.attach(conn)
	for _, rs := range sessions {
		rs.notifyReconnect(n.id)
	}
	s.wg.Add(1)
	go s.serveConn(n, conn)
}

// serveConn reads one connection until it breaks, dispatching reliable
// frames exactly once (duplicates replayed after a reconnect are
// discarded by sequence).
func (s *Server) serveConn(n *serverNode, conn net.Conn) {
	defer s.wg.Done()
	defer n.link.detach(conn)
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case fPing:
			n.link.sendControl(fPong, nil)
			continue
		case fPong:
			continue
		case fAck:
			c := cursor{buf: payload}
			seq, err := c.uvarint()
			if err != nil {
				return
			}
			n.link.onAck(seq)
			continue
		case fHello, fWelcome:
			return // handshake frames mid-stream: protocol violation
		}
		c := cursor{buf: payload}
		seq, err := c.uvarint()
		if err != nil {
			return
		}
		fresh, err := n.link.accept(seq)
		if err != nil {
			return
		}
		if fresh {
			if err := s.dispatch(n, typ, &c); err != nil {
				return
			}
		}
		// Ack after dispatch: a cumulative ACK certifies processing, the
		// guarantee the client's synchronous Subscribe waits on.
		n.link.sendAck()
	}
}

// dispatch handles one fresh reliable frame from a worker.
func (s *Server) dispatch(n *serverNode, typ byte, c *cursor) error {
	switch typ {
	case fSubscribe:
		subID, err := c.uvarint()
		if err != nil {
			return err
		}
		topic, err := c.str()
		if err != nil {
			return err
		}
		if err := c.done(); err != nil {
			return err
		}
		sub, err := s.cfg.Broker.Subscribe(topic)
		if err != nil {
			return err
		}
		ss := &serverSub{topic: topic, sub: sub, stop: make(chan struct{})}
		n.mu.Lock()
		if _, dup := n.subs[subID]; dup {
			n.mu.Unlock()
			sub.Cancel()
			return nil
		}
		n.subs[subID] = ss
		n.mu.Unlock()
		s.wg.Add(1)
		go s.forward(n, subID, ss)
		return nil

	case fUnsubscribe:
		subID, err := c.uvarint()
		if err != nil {
			return err
		}
		if err := c.done(); err != nil {
			return err
		}
		n.mu.Lock()
		ss := n.subs[subID]
		delete(n.subs, subID)
		n.mu.Unlock()
		if ss != nil {
			ss.sub.Cancel()
			close(ss.stop)
		}
		return nil

	case fPublish:
		p, err := parsePublish(c)
		if err != nil {
			return err
		}
		s.deliverPublish(p, 1)
		return nil

	case fLogReq:
		reqID, err := c.uvarint()
		if err != nil {
			return err
		}
		topic, err := c.str()
		if err != nil {
			return err
		}
		if err := c.done(); err != nil {
			return err
		}
		var msgs []wireMsg
		if rep, ok := s.cfg.Broker.(mq.Replayable); ok {
			log := rep.Log(topic)
			msgs = make([]wireMsg, len(log))
			for i := range log {
				msgs[i] = toWireMsg(log[i])
			}
		}
		n.link.send(fLogResp, func(seq uint64) []byte {
			buf := binary.AppendUvarint(nil, seq)
			buf = binary.AppendUvarint(buf, reqID)
			return encodeMsgs(buf, msgs)
		})
		return nil

	case fReady, fFail, fDone, fEvent:
		return s.dispatchSession(n, typ, c)
	}
	return fmt.Errorf("%w: unexpected type %d from worker", errFrame, typ)
}

// dispatchSession routes a session-scoped frame to its RemoteSession
// (silently dropped if the session is gone — a late frame after Close).
func (s *Server) dispatchSession(n *serverNode, typ byte, c *cursor) error {
	var session uint64
	var blob []byte
	var err error
	if typ == fReady {
		if session, err = c.uvarint(); err != nil {
			return err
		}
		if err = c.done(); err != nil {
			return err
		}
	} else {
		if session, blob, err = parseSessionJSON(c); err != nil {
			return err
		}
	}
	s.mu.Lock()
	rs := s.sessions[session]
	s.mu.Unlock()
	if rs == nil {
		return nil
	}
	switch typ {
	case fReady:
		rs.markReady(n.id)
	case fFail:
		rs.markFailed(n.id, blob)
	case fDone:
		rs.markDone(n.id, blob)
	case fEvent:
		rs.pushEvent(n.id, blob)
	}
	return nil
}

// forward streams one broker subscription to its remote subscriber.
// Each batch is encoded into the BATCH frame immediately — the encode
// copies every payload, satisfying the broker's recycled-batch
// contract — and sent reliably, so a batch that raced a connection
// drop is replayed on reconnect.
func (s *Server) forward(n *serverNode, subID uint64, ss *serverSub) {
	defer s.wg.Done()
	batches := ss.sub.Batches()
	for {
		select {
		case <-ss.stop:
			return
		case batch := <-batches:
			msgs := make([]wireMsg, len(batch))
			for i := range batch {
				msgs[i] = toWireMsg(batch[i])
			}
			n.link.send(fBatch, func(seq uint64) []byte {
				buf := binary.AppendUvarint(nil, seq)
				buf = binary.AppendUvarint(buf, subID)
				return encodeMsgs(buf, msgs)
			})
		}
	}
}

// deliverPublish is the socket-boundary chaos hook: a remote publish
// dispatch may be dropped (bounded, then forced through), duplicated,
// delayed or held back so the dispatch behind it overtakes — the
// real-network fault mix, injected after the frame protocol's own
// sequence dedup so connection-resume logic is never the thing hiding
// a fault. Delays sleep on the chaos schedule's clock.
func (s *Server) deliverPublish(p publishFrame, attempt int) {
	if s.cfg.Chaos.Enabled() {
		cfg := s.cfg.Chaos.Config()
		switch f := s.cfg.Chaos.Draw(failure.BoundarySocket); f.Kind {
		case failure.FaultDrop:
			if attempt <= maxSocketRedeliveries {
				s.chaosGo(cfg.RedeliverDelay, func() { s.deliverPublish(p, attempt+1) })
				return
			}
			// Redelivery budget spent: force the publish through. The
			// socket models at-least-once, never loss.
		case failure.FaultDuplicate:
			s.chaosGo(cfg.RedeliverDelay, func() { s.publish(p) })
		case failure.FaultDelay:
			s.chaosGo(f.Delay, func() { s.publish(p) })
			return
		case failure.FaultReorder:
			s.chaosGo(cfg.RedeliverDelay, func() { s.publish(p) })
			return
		}
	}
	s.publish(p)
}

// chaosGo runs fn after a model-time delay, tracked by the server's
// wait group so Close drains in-flight chaos deliveries.
func (s *Server) chaosGo(delay float64, fn func()) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.cfg.Chaos.Sleep(delay)
		fn()
	}()
}

// publish lands one remote publish on the broker. Undecodable
// structural payloads are dropped — a poisoned frame must not kill the
// bridge (the same resilience contract the agents apply to their
// inboxes).
func (s *Server) publish(p publishFrame) {
	if p.kind == kindStructural {
		atoms, err := hocl.DecodeAtoms(p.data)
		if err != nil {
			return
		}
		_ = s.cfg.Broker.PublishAtoms(p.topic, atoms)
		return
	}
	_ = s.cfg.Broker.Publish(p.topic, string(p.data))
}

// toWireMsg encodes a broker message for the wire, copying the payload
// out of the broker-owned batch buffer.
func toWireMsg(m mq.Message) wireMsg {
	w := wireMsg{offset: int64(m.Offset)}
	if m.Structural() {
		w.kind = kindStructural
		w.data = hocl.EncodeAtoms(m.Atoms)
	} else {
		w.kind = kindTextual
		w.data = []byte(m.Payload)
	}
	return w
}

// fromWireMsg decodes a wire message back into a broker message.
func fromWireMsg(topic string, w wireMsg) (mq.Message, error) {
	m := mq.Message{Topic: topic, Offset: int(w.offset)}
	if w.kind == kindStructural {
		atoms, err := hocl.DecodeAtoms(w.data)
		if err != nil {
			return m, err
		}
		if atoms == nil {
			atoms = []hocl.Atom{}
		}
		m.Atoms = atoms
		return m, nil
	}
	m.Payload = string(w.data)
	return m, nil
}

// Assignment is the work order a remote session sends each worker: the
// workflow (JSON, rebuilt node-side into agent specs — service
// implementations and generated functions cannot travel), the subset of
// tasks the worker hosts, and the tuning the in-process engine would
// have applied (failure injection, restart budget, chaos, clock scale).
type Assignment struct {
	// SpaceTopic and TopicPrefix scope the agents to the session's
	// broker namespace, exactly as the in-process supervisor would.
	SpaceTopic  string `json:"space_topic"`
	TopicPrefix string `json:"topic_prefix"`
	// Workflow is the session's workflow definition JSON.
	Workflow json.RawMessage `json:"workflow"`
	// Tasks names the agents this worker hosts.
	Tasks []string `json:"tasks"`
	// FailureP / FailureT parameterise §V-D crash injection node-side.
	FailureP float64 `json:"failure_p,omitempty"`
	FailureT float64 `json:"failure_t,omitempty"`
	// RestartDelay / MaxRecoveries tune the node-side supervisor loop.
	RestartDelay  float64 `json:"restart_delay,omitempty"`
	MaxRecoveries int     `json:"max_recoveries,omitempty"`
	// Seed seeds the worker's local RNG (duration draws, crash plans).
	Seed int64 `json:"seed,omitempty"`
	// ScaleNS is the model clock scale in nanoseconds per model second.
	ScaleNS int64 `json:"scale_ns,omitempty"`
	// Chaos parameterises the worker's invocation-boundary fault
	// schedule; Retry bounds its retries.
	Chaos failure.ChaosConfig `json:"chaos,omitempty"`
	Retry failure.RetryConfig `json:"retry,omitempty"`
}

// NodeDone is a worker's end-of-session stats report.
type NodeDone struct {
	// Failures / Recoveries count injected crashes and respawns on this
	// worker; Duplicates counts deliveries its agents' sequence
	// protocol suppressed.
	Failures   int   `json:"failures"`
	Recoveries int   `json:"recoveries"`
	Duplicates int64 `json:"duplicates"`
}

// nodeFailure is a worker's early-failure report (an escalated agent or
// a spent recovery budget).
type nodeFailure struct {
	Err              string `json:"err"`
	RetriesExhausted bool   `json:"retries_exhausted,omitempty"`
}

// NodeEvent is one trace event forwarded from a worker's agents.
type NodeEvent struct {
	// Node is the emitting worker's handshake-assigned ID.
	Node uint64 `json:"node"`
	// At is the worker-local model time of the event.
	At float64 `json:"at"`
	// Kind, Task, Incarnation and Info mirror trace.Event.
	Kind        string `json:"kind"`
	Task        string `json:"task"`
	Incarnation int    `json:"incarnation"`
	Info        string `json:"info"`
}

// ErrNodeFailed wraps a worker's early-failure report.
type ErrNodeFailed struct {
	// Node identifies the failing worker.
	Node uint64
	// Msg is the worker's rendered error.
	Msg string
	// RetriesExhausted marks a spent retry budget (matches
	// failure.ErrRetriesExhausted through Unwrap at the call site).
	RetriesExhausted bool
}

// Error renders the failure.
func (e *ErrNodeFailed) Error() string {
	return fmt.Sprintf("transport: node %d failed: %s", e.Node, e.Msg)
}

// RemoteSession is the server-side handle of one workflow session's
// remote enactment: it tracks which workers were assigned, barriers on
// their readiness, starts and stops them, and collects their failure
// and completion reports.
type RemoteSession struct {
	id     uint64
	server *Server
	nodes  []uint64

	mu      sync.Mutex
	ready   map[uint64]bool
	dones   map[uint64]NodeDone
	readyCh chan struct{}
	doneCh  chan struct{}
	started bool
	stopped bool

	failed      chan error
	events      chan NodeEvent
	reconnected chan uint64
}

// StartRemote registers a remote session and sends each worker its
// assignment. The workers answer READY once their agents are built and
// subscribed; barrier on that with WaitReady, then Start.
func (s *Server) StartRemote(session uint64, assigns map[uint64]Assignment) (*RemoteSession, error) {
	if len(assigns) == 0 {
		return nil, fmt.Errorf("transport: session %d: no assignments", session)
	}
	rs := &RemoteSession{
		id:          session,
		server:      s,
		ready:       map[uint64]bool{},
		dones:       map[uint64]NodeDone{},
		readyCh:     make(chan struct{}),
		doneCh:      make(chan struct{}),
		failed:      make(chan error, 1),
		events:      make(chan NodeEvent, 1024),
		reconnected: make(chan uint64, 64),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("transport: server closed")
	}
	if _, dup := s.sessions[session]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("transport: session %d already active", session)
	}
	nodes := make([]*serverNode, 0, len(assigns))
	for id := range assigns {
		n := s.nodes[id]
		if n == nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("transport: session %d: unknown node %d", session, id)
		}
		nodes = append(nodes, n)
		rs.nodes = append(rs.nodes, id)
	}
	sort.Slice(rs.nodes, func(i, j int) bool { return rs.nodes[i] < rs.nodes[j] })
	s.sessions[session] = rs
	s.mu.Unlock()

	for _, n := range nodes {
		blob, err := json.Marshal(assigns[n.id])
		if err != nil {
			rs.Close()
			return nil, err
		}
		n.link.send(fAssign, func(seq uint64) []byte {
			return encodeSessionJSON(seq, session, blob)
		})
	}
	return rs, nil
}

// Nodes returns the session's assigned worker IDs, sorted.
func (rs *RemoteSession) Nodes() []uint64 {
	return append([]uint64(nil), rs.nodes...)
}

func (rs *RemoteSession) hasNode(id uint64) bool {
	for _, n := range rs.nodes {
		if n == id {
			return true
		}
	}
	return false
}

// WaitReady blocks until every assigned worker reported READY (its
// agents built and subscribed) or ctx ends.
func (rs *RemoteSession) WaitReady(ctx context.Context) error {
	select {
	case <-rs.readyCh:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("transport: session %d: workers not ready: %w", rs.id, context.Cause(ctx))
	}
}

// Start tells every worker to launch its agents. Call after WaitReady:
// the READY barrier guarantees every inbox subscription reached the
// broker before any agent reduces (the same no-publish-into-the-void
// ordering the in-process engine enforces).
func (rs *RemoteSession) Start() {
	rs.mu.Lock()
	if rs.started {
		rs.mu.Unlock()
		return
	}
	rs.started = true
	rs.mu.Unlock()
	rs.sendAll(fStart)
}

// Stop tells every worker to wind its agents down and report DONE.
func (rs *RemoteSession) Stop() {
	rs.mu.Lock()
	if rs.stopped {
		rs.mu.Unlock()
		return
	}
	rs.stopped = true
	rs.mu.Unlock()
	rs.sendAll(fStop)
}

func (rs *RemoteSession) sendAll(typ byte) {
	rs.server.mu.Lock()
	nodes := make([]*serverNode, 0, len(rs.nodes))
	for _, id := range rs.nodes {
		if n := rs.server.nodes[id]; n != nil {
			nodes = append(nodes, n)
		}
	}
	rs.server.mu.Unlock()
	for _, n := range nodes {
		n.link.send(typ, func(seq uint64) []byte {
			buf := binary.AppendUvarint(nil, seq)
			return binary.AppendUvarint(buf, rs.id)
		})
	}
}

// WaitDone blocks until every worker reported DONE (or ctx ends) and
// returns the aggregated stats.
func (rs *RemoteSession) WaitDone(ctx context.Context) (NodeDone, error) {
	select {
	case <-rs.doneCh:
	case <-ctx.Done():
		return rs.stats(), fmt.Errorf("transport: session %d: workers not done: %w", rs.id, context.Cause(ctx))
	}
	return rs.stats(), nil
}

func (rs *RemoteSession) stats() NodeDone {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var total NodeDone
	for _, d := range rs.dones {
		total.Failures += d.Failures
		total.Recoveries += d.Recoveries
		total.Duplicates += d.Duplicates
	}
	return total
}

// Failed delivers at most one early worker failure (an escalated agent
// or spent recovery budget) — the remote analogue of the in-process
// supervisor's error channel.
func (rs *RemoteSession) Failed() <-chan error { return rs.failed }

// Events delivers trace events forwarded from the workers' agents.
// Delivery is lossy under backpressure, like every event stream in the
// engine.
func (rs *RemoteSession) Events() <-chan NodeEvent { return rs.events }

// Reconnected delivers the ID of a worker whose connection dropped and
// came back — the session's cue to resync that worker's tasks.
func (rs *RemoteSession) Reconnected() <-chan uint64 { return rs.reconnected }

// Close unregisters the session from the server; late frames for it
// are dropped.
func (rs *RemoteSession) Close() {
	rs.server.mu.Lock()
	if rs.server.sessions[rs.id] == rs {
		delete(rs.server.sessions, rs.id)
	}
	rs.server.mu.Unlock()
}

func (rs *RemoteSession) markReady(node uint64) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.ready[node] || !rs.hasNode(node) {
		return
	}
	rs.ready[node] = true
	if len(rs.ready) == len(rs.nodes) {
		close(rs.readyCh)
	}
}

func (rs *RemoteSession) markFailed(node uint64, blob []byte) {
	var nf nodeFailure
	if err := json.Unmarshal(blob, &nf); err != nil {
		nf.Err = fmt.Sprintf("unparseable failure report: %v", err)
	}
	select {
	case rs.failed <- &ErrNodeFailed{Node: node, Msg: nf.Err, RetriesExhausted: nf.RetriesExhausted}:
	default:
	}
}

func (rs *RemoteSession) markDone(node uint64, blob []byte) {
	var d NodeDone
	if err := json.Unmarshal(blob, &d); err != nil {
		return
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, dup := rs.dones[node]; dup || !rs.hasNode(node) {
		return
	}
	rs.dones[node] = d
	if len(rs.dones) == len(rs.nodes) {
		close(rs.doneCh)
	}
}

func (rs *RemoteSession) pushEvent(node uint64, blob []byte) {
	var e NodeEvent
	if err := json.Unmarshal(blob, &e); err != nil {
		return
	}
	e.Node = node
	select {
	case rs.events <- e:
	default: // lossy, like every other event stream
	}
}

func (rs *RemoteSession) notifyReconnect(node uint64) {
	select {
	case rs.reconnected <- node:
	default:
	}
}
