package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"ginflow/internal/hocl"
	"ginflow/internal/mq"
)

// DialConfig tunes a RemoteBroker connection.
type DialConfig struct {
	// Name is a human-readable label sent in the handshake (hostnames,
	// test case names); it never affects routing.
	Name string
	// PingInterval is the keepalive cadence; zero disables pings
	// (benchmarks measure round-trips, not keepalive noise).
	PingInterval time.Duration
	// LogTimeout bounds a Log replay round-trip (default 10s).
	LogTimeout time.Duration
}

// RemoteBroker is the client side of the network transport: an
// mq.Broker (and mq.Replayable) whose publishes and subscriptions ride
// length-prefixed frames to a Server fronting the real broker. Agents,
// the space client and the journal run against it unchanged.
//
// The connection self-heals: a broken socket triggers a background
// reconnect loop (capped exponential backoff) that re-handshakes with
// the server-assigned node ID, and the reliable link replays every
// unacknowledged frame in order — publishes and subscriptions issued
// during an outage are queued, never lost. Counters and the topic view
// (Published, Topics, PurgeTopics, ShardTopics) are local to this
// client's own traffic; cluster-wide accounting lives on the serving
// broker.
type RemoteBroker struct {
	addr string
	cfg  DialConfig
	link link

	mu        sync.Mutex
	closed    bool
	nodeID    uint64
	nextSub   uint64
	subs      map[uint64]*clientSub
	published map[string]int64
	nextReq   uint64
	logWaits  map[uint64]*logWait

	ctrl     chan controlFrame
	closedCh chan struct{}
	wg       sync.WaitGroup
}

// clientSub is one client-side subscription: its topic and the push
// half of its mq.NewPushSubscription.
type clientSub struct {
	topic string
	push  func([]mq.Message)
}

// logWait is one pending Log round-trip: the reply channel and the
// requested topic (stamped onto the replayed messages, which travel
// without one).
type logWait struct {
	ch    chan []mq.Message
	topic string
}

// controlFrame is a decoded session-control frame (ASSIGN/START/STOP)
// handed to the node runtime.
type controlFrame struct {
	typ     byte
	session uint64
	blob    []byte
}

// Dial connects to a transport server, performs the HELLO/WELCOME
// handshake (receiving a server-assigned node ID) and starts the
// keepalive and reconnect machinery.
func Dial(addr string, cfg DialConfig) (*RemoteBroker, error) {
	if cfg.LogTimeout <= 0 {
		cfg.LogTimeout = 10 * time.Second
	}
	rb := &RemoteBroker{
		addr:      addr,
		cfg:       cfg,
		subs:      map[uint64]*clientSub{},
		published: map[string]int64{},
		logWaits:  map[uint64]*logWait{},
		ctrl:      make(chan controlFrame, 16),
		closedCh:  make(chan struct{}),
	}
	conn, err := rb.connect()
	if err != nil {
		return nil, err
	}
	rb.wg.Add(1)
	go rb.run(conn)
	return rb, nil
}

// NodeID returns the server-assigned node identity (stable across
// reconnects).
func (rb *RemoteBroker) NodeID() uint64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.nodeID
}

// connect dials and handshakes once, attaching the socket to the
// reliable link (which replays any unacknowledged frames).
func (rb *RemoteBroker) connect() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", rb.addr, handshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", rb.addr, err)
	}
	rb.mu.Lock()
	h := helloFrame{version: protocolVersion, nodeID: rb.nodeID, lastSeq: rb.link.received(), name: rb.cfg.Name}
	rb.mu.Unlock()
	if err := writeFrame(conn, fHello, encodeHello(h)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake write: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := readFrame(conn)
	if err != nil || typ != fWelcome {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: no welcome (type %d, err %v)", typ, err)
	}
	w, err := parseWelcome(payload)
	if err != nil || w.version != protocolVersion {
		conn.Close()
		return nil, fmt.Errorf("transport: handshake: bad welcome (err %v)", err)
	}
	conn.SetReadDeadline(time.Time{})
	rb.mu.Lock()
	rb.nodeID = w.nodeID
	rb.mu.Unlock()
	rb.link.onAck(w.lastSeq)
	rb.link.attach(conn)
	return conn, nil
}

// run owns the connection lifecycle: serve reads until the socket
// breaks, then reconnect with capped backoff until Close.
func (rb *RemoteBroker) run(conn net.Conn) {
	defer rb.wg.Done()
	backoff := 50 * time.Millisecond
	for {
		stopPing := rb.startPing()
		rb.serveConn(conn)
		stopPing()
		rb.link.detach(conn)
		for {
			if rb.isClosed() {
				return
			}
			select {
			case <-rb.closedCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			next, err := rb.connect()
			if err == nil {
				conn = next
				backoff = 50 * time.Millisecond
				metReconnects.Inc()
				break
			}
			metRetryDials.Inc()
		}
	}
}

// startPing launches the keepalive ticker for the current connection
// epoch; the returned stop function ends it.
func (rb *RemoteBroker) startPing() func() {
	if rb.cfg.PingInterval <= 0 {
		return func() {}
	}
	stop := make(chan struct{})
	rb.wg.Add(1)
	go func() {
		defer rb.wg.Done()
		t := time.NewTicker(rb.cfg.PingInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-rb.closedCh:
				return
			case <-t.C:
				rb.link.sendControl(fPing, nil)
			}
		}
	}()
	return func() { close(stop) }
}

// serveConn reads one connection until it breaks.
func (rb *RemoteBroker) serveConn(conn net.Conn) {
	for {
		typ, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case fPing:
			rb.link.sendControl(fPong, nil)
			continue
		case fPong:
			continue
		case fAck:
			c := cursor{buf: payload}
			seq, err := c.uvarint()
			if err != nil {
				return
			}
			rb.link.onAck(seq)
			continue
		case fHello, fWelcome:
			return
		}
		c := cursor{buf: payload}
		seq, err := c.uvarint()
		if err != nil {
			return
		}
		fresh, err := rb.link.accept(seq)
		if err != nil {
			return
		}
		if fresh {
			if err := rb.dispatch(typ, &c); err != nil {
				return
			}
		}
		rb.link.sendAck()
	}
}

// dispatch handles one fresh reliable frame from the server.
func (rb *RemoteBroker) dispatch(typ byte, c *cursor) error {
	switch typ {
	case fBatch:
		subID, err := c.uvarint()
		if err != nil {
			return err
		}
		msgs, err := c.msgs()
		if err != nil {
			return err
		}
		if err := c.done(); err != nil {
			return err
		}
		rb.mu.Lock()
		cs := rb.subs[subID]
		rb.mu.Unlock()
		if cs == nil {
			return nil // cancelled locally while the batch was in flight
		}
		batch := make([]mq.Message, 0, len(msgs))
		for _, w := range msgs {
			m, err := fromWireMsg(cs.topic, w)
			if err != nil {
				continue // poisoned entry: drop it, keep the stream alive
			}
			batch = append(batch, m)
		}
		if len(batch) > 0 {
			cs.push(batch)
		}
		return nil

	case fLogResp:
		reqID, err := c.uvarint()
		if err != nil {
			return err
		}
		msgs, err := c.msgs()
		if err != nil {
			return err
		}
		if err := c.done(); err != nil {
			return err
		}
		rb.mu.Lock()
		lw := rb.logWaits[reqID]
		delete(rb.logWaits, reqID)
		rb.mu.Unlock()
		if lw != nil {
			out := make([]mq.Message, 0, len(msgs))
			for _, w := range msgs {
				m, err := fromWireMsg(lw.topic, w)
				if err != nil {
					continue
				}
				out = append(out, m)
			}
			lw.ch <- out
		}
		return nil

	case fAssign, fStart, fStop:
		var cf controlFrame
		cf.typ = typ
		var err error
		if typ == fAssign {
			cf.session, cf.blob, err = parseSessionJSON(c)
		} else {
			if cf.session, err = c.uvarint(); err == nil {
				err = c.done()
			}
		}
		if err != nil {
			return err
		}
		select {
		case rb.ctrl <- cf:
		case <-rb.closedCh:
		}
		return nil
	}
	return nil // tolerate unknown server frames
}

// control exposes the session-control stream to the node runtime.
func (rb *RemoteBroker) control() <-chan controlFrame { return rb.ctrl }

// sendReady reports this node's session readiness to the server.
func (rb *RemoteBroker) sendReady(session uint64) {
	rb.link.send(fReady, func(seq uint64) []byte {
		buf := binary.AppendUvarint(nil, seq)
		return binary.AppendUvarint(buf, session)
	})
}

// sendSessionJSON sends a session-scoped JSON frame (FAIL/DONE/EVENT).
func (rb *RemoteBroker) sendSessionJSON(typ byte, session uint64, blob []byte) {
	rb.link.send(typ, func(seq uint64) []byte {
		return encodeSessionJSON(seq, session, blob)
	})
}

// Publish sends a textual message to the serving broker.
func (rb *RemoteBroker) Publish(topic, payload string) error {
	return rb.publish(topic, kindTextual, []byte(payload))
}

// PublishAtoms sends a structural message, encoded with the hocl wire
// codec, to the serving broker.
func (rb *RemoteBroker) PublishAtoms(topic string, atoms []hocl.Atom) error {
	return rb.publish(topic, kindStructural, hocl.EncodeAtoms(atoms))
}

func (rb *RemoteBroker) publish(topic string, kind byte, data []byte) error {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return mq.ErrClosed
	}
	rb.published[topic]++
	rb.mu.Unlock()
	p := publishFrame{topic: topic, kind: kind, data: data}
	rb.link.send(fPublish, func(seq uint64) []byte { return encodePublish(seq, p) })
	return nil
}

// Subscribe opens a remote subscription on the serving broker and
// returns a push-fed local Subscription; cancelling it unsubscribes
// remotely.
func (rb *RemoteBroker) Subscribe(topic string) (*mq.Subscription, error) {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return nil, mq.ErrClosed
	}
	rb.nextSub++
	id := rb.nextSub
	rb.mu.Unlock()
	sub, push := mq.NewPushSubscription(func() { rb.unsubscribe(id) })
	rb.mu.Lock()
	rb.subs[id] = &clientSub{topic: topic, push: push}
	rb.mu.Unlock()
	// Synchronous like the in-process broker: wait for the server's
	// post-dispatch ACK, so a publish issued right after Subscribe
	// returns can never beat the subscription to the broker. During an
	// outage this waits for the reconnect to replay the frame.
	acked := rb.link.sendWait(fSubscribe, func(seq uint64) []byte {
		buf := binary.AppendUvarint(nil, seq)
		buf = binary.AppendUvarint(buf, id)
		return appendString(buf, topic)
	})
	select {
	case <-acked:
	case <-rb.closedCh:
		return nil, mq.ErrClosed
	}
	return sub, nil
}

func (rb *RemoteBroker) unsubscribe(id uint64) {
	rb.mu.Lock()
	_, known := rb.subs[id]
	delete(rb.subs, id)
	closed := rb.closed
	rb.mu.Unlock()
	if !known || closed {
		return
	}
	rb.link.send(fUnsubscribe, func(seq uint64) []byte {
		buf := binary.AppendUvarint(nil, seq)
		return binary.AppendUvarint(buf, id)
	})
}

// Published counts this client's own publishes (the serving broker
// holds the cluster-wide count).
func (rb *RemoteBroker) Published() int64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	var n int64
	for _, c := range rb.published {
		n += c
	}
	return n
}

// PublishedPrefix counts this client's own publishes to topics with the
// given prefix.
func (rb *RemoteBroker) PublishedPrefix(prefix string) int64 {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	var n int64
	for t, c := range rb.published {
		if strings.HasPrefix(t, prefix) {
			n += c
		}
	}
	return n
}

// Topics lists the topics this client has published to under the
// prefix, sorted (a local view; remote publishers are not visible).
func (rb *RemoteBroker) Topics(prefix string) []string {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	var out []string
	for t := range rb.published {
		if strings.HasPrefix(t, prefix) {
			out = append(out, t)
		}
	}
	sort.Strings(out)
	return out
}

// PurgeTopics forgets this client's local record of matching topics and
// returns how many were dropped. Server-side retention is owned by the
// session manager, which purges the real broker directly.
func (rb *RemoteBroker) PurgeTopics(prefix string) int {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	n := 0
	for t := range rb.published {
		if strings.HasPrefix(t, prefix) {
			delete(rb.published, t)
			n++
		}
	}
	return n
}

// ShardCount reports 1: the wire is a single ordered stream; real
// sharding happens on the serving broker.
func (rb *RemoteBroker) ShardCount() int { return 1 }

// ShardTopics lists the local topic view for shard 0 (nil otherwise).
func (rb *RemoteBroker) ShardTopics(shard int, prefix string) []string {
	if shard != 0 {
		return nil
	}
	return rb.Topics(prefix)
}

// Log fetches a topic's retained log from the serving broker (the
// mq.Replayable contract agents use for inbox replay after a crash).
// Returns nil if the serving broker is not replayable or the round trip
// times out.
func (rb *RemoteBroker) Log(topic string) []mq.Message {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return nil
	}
	rb.nextReq++
	id := rb.nextReq
	lw := &logWait{ch: make(chan []mq.Message, 1), topic: topic}
	rb.logWaits[id] = lw
	rb.mu.Unlock()
	rb.link.send(fLogReq, func(seq uint64) []byte {
		buf := binary.AppendUvarint(nil, seq)
		buf = binary.AppendUvarint(buf, id)
		return appendString(buf, topic)
	})
	select {
	case msgs := <-lw.ch:
		return msgs
	case <-time.After(rb.cfg.LogTimeout):
	case <-rb.closedCh:
	}
	rb.mu.Lock()
	delete(rb.logWaits, id)
	rb.mu.Unlock()
	return nil
}

func (rb *RemoteBroker) isClosed() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	return rb.closed
}

// Close tears the connection down and stops the reconnect loop.
// Outstanding local subscriptions simply stop receiving.
func (rb *RemoteBroker) Close() error {
	rb.mu.Lock()
	if rb.closed {
		rb.mu.Unlock()
		return nil
	}
	rb.closed = true
	rb.mu.Unlock()
	close(rb.closedCh)
	rb.link.close()
	rb.wg.Wait()
	return nil
}
