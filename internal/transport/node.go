package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/failure"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// NodeConfig tunes a worker node.
type NodeConfig struct {
	// Name is a human-readable label for the handshake.
	Name string
	// Services resolves the service names the assigned workflows
	// invoke. Implementations cannot travel over the wire, so every
	// worker must register the services its tasks need.
	Services *agent.Registry
	// PingInterval is the keepalive cadence (default 1s; negative
	// disables).
	PingInterval time.Duration
}

// Node is a worker process's runtime: it joins a transport server,
// receives session assignments, rebuilds the assigned agents from the
// workflow definition (resolving services from its local registry) and
// supervises them — crash restarts with inbox replay included — until
// the server says stop. One Node can serve many sessions over its
// lifetime.
type Node struct {
	rb       *RemoteBroker
	services *agent.Registry

	mu       sync.Mutex
	sessions map[uint64]*nodeSession

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Join connects a worker to a transport server and starts serving
// assignments. The returned Node's identity (NodeID) is assigned by the
// server during the handshake.
func Join(addr string, cfg NodeConfig) (*Node, error) {
	if cfg.Services == nil {
		return nil, fmt.Errorf("transport: join: nil service registry")
	}
	ping := cfg.PingInterval
	if ping == 0 {
		ping = time.Second
	} else if ping < 0 {
		ping = 0
	}
	rb, err := Dial(addr, DialConfig{Name: cfg.Name, PingInterval: ping})
	if err != nil {
		return nil, err
	}
	n := &Node{
		rb:       rb,
		services: cfg.Services,
		sessions: map[uint64]*nodeSession{},
		done:     make(chan struct{}),
	}
	n.wg.Add(1)
	go n.loop()
	return n, nil
}

// NodeID returns the server-assigned node identity.
func (n *Node) NodeID() uint64 { return n.rb.NodeID() }

// Close stops every hosted session and disconnects.
func (n *Node) Close() error {
	n.closeOnce.Do(func() { close(n.done) })
	n.mu.Lock()
	sessions := make([]*nodeSession, 0, len(n.sessions))
	for _, ns := range n.sessions {
		sessions = append(sessions, ns)
	}
	n.mu.Unlock()
	for _, ns := range sessions {
		ns.stop()
	}
	err := n.rb.Close()
	n.wg.Wait()
	return err
}

// loop serves the server's control conversation.
func (n *Node) loop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case cf := <-n.rb.control():
			switch cf.typ {
			case fAssign:
				n.handleAssign(cf.session, cf.blob)
			case fStart:
				if ns := n.session(cf.session); ns != nil {
					ns.start()
				}
			case fStop:
				if ns := n.session(cf.session); ns != nil {
					n.wg.Add(1)
					go func() {
						defer n.wg.Done()
						ns.stopAndReport()
					}()
				}
			}
		}
	}
}

func (n *Node) session(id uint64) *nodeSession {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sessions[id]
}

func (n *Node) removeSession(id uint64) {
	n.mu.Lock()
	delete(n.sessions, id)
	n.mu.Unlock()
}

// handleAssign builds a session from its assignment and reports READY,
// or FAIL if the assignment cannot be realised here (unknown service,
// bad workflow JSON).
func (n *Node) handleAssign(session uint64, blob []byte) {
	ns, err := n.buildSession(session, blob)
	if err != nil {
		b, _ := json.Marshal(nodeFailure{Err: err.Error()})
		n.rb.sendSessionJSON(fFail, session, b)
		return
	}
	n.mu.Lock()
	n.sessions[session] = ns
	n.mu.Unlock()
	// READY travels the same ordered stream as the SUBSCRIBE frames
	// before it, so by the time the server routes it every inbox
	// subscription is live on the broker: the no-publish-into-the-void
	// barrier holds across the wire.
	n.rb.sendReady(session)
}

// nodeSession is one assigned session's worker-side state.
type nodeSession struct {
	node *Node
	id   uint64

	clus          *cluster.Cluster
	recorder      *trace.Recorder
	restartDelay  float64
	maxRecoveries int

	specs  []workflow.AgentSpec
	agents []*agent.Agent // first incarnations, subscribed at build time
	newInc func(spec workflow.AgentSpec, incarnation int) *agent.Agent

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	started    bool
	failures   int
	recoveries int
	duplicates int64

	failOnce sync.Once
}

// buildSession rebuilds the assigned agents from the workflow JSON —
// the wire carries the definition, not the specs: generated reduction
// functions and service bindings are reconstructed locally, exactly as
// the in-process engine builds them.
func (n *Node) buildSession(session uint64, blob []byte) (*nodeSession, error) {
	var a Assignment
	if err := json.Unmarshal(blob, &a); err != nil {
		return nil, fmt.Errorf("bad assignment: %w", err)
	}
	def, err := workflow.FromJSON(a.Workflow)
	if err != nil {
		return nil, err
	}
	specs, err := def.TranslateAgents()
	if err != nil {
		return nil, err
	}
	want := map[string]bool{}
	for _, t := range a.Tasks {
		want[t] = true
	}
	var mine []workflow.AgentSpec
	for _, spec := range specs {
		if want[spec.Task.Name] {
			mine = append(mine, spec)
			delete(want, spec.Task.Name)
		}
	}
	if len(want) > 0 {
		return nil, fmt.Errorf("assignment names unknown tasks: %v", a.Tasks)
	}
	// Best-effort pre-flight: the statically-declared service of each
	// task must resolve locally (adaptation-swapped services resolve
	// lazily at invoke time and escalate if missing).
	for _, spec := range mine {
		if svc := spec.Task.Service; svc != "" {
			if _, ok := n.services.Lookup(svc); !ok {
				return nil, fmt.Errorf("service %q not registered on this node", svc)
			}
		}
	}

	scale := time.Duration(a.ScaleNS)
	if scale <= 0 {
		scale = time.Millisecond
	}
	clus := cluster.New(cluster.Config{Nodes: 1, Scale: scale, Seed: a.Seed})
	clock := clus.Clock()
	var injector *failure.Injector
	if a.FailureP > 0 {
		injector = failure.New(a.FailureP, a.FailureT, clus.Rand())
	}
	var chaos *failure.Schedule
	if a.Chaos.Enabled() {
		chaos = failure.NewSchedule(a.Chaos)
		chaos.SetSleeper(clock.Sleep)
	}

	ns := &nodeSession{
		node:          n,
		id:            session,
		clus:          clus,
		restartDelay:  a.RestartDelay,
		maxRecoveries: a.MaxRecoveries,
		specs:         mine,
	}
	ns.recorder = trace.NewForwarder(clock)
	ns.recorder.AddSink(func(e trace.Event) {
		b, err := json.Marshal(NodeEvent{
			At: e.At, Kind: string(e.Kind), Task: e.Task,
			Incarnation: e.Incarnation, Info: e.Info,
		})
		if err != nil {
			return
		}
		n.rb.sendSessionJSON(fEvent, session, b)
	})
	ns.newInc = func(spec workflow.AgentSpec, incarnation int) *agent.Agent {
		return agent.New(agent.Config{
			Spec:        spec,
			Broker:      n.rb,
			Cluster:     clus,
			Services:    n.services,
			Injector:    injector,
			Chaos:       chaos,
			Retry:       a.Retry,
			SpaceTopic:  a.SpaceTopic,
			TopicPrefix: a.TopicPrefix,
			Incarnation: incarnation,
			Trace:       ns.recorder,
			Metrics:     agent.NewMetrics(nil),
		})
	}
	for _, spec := range mine {
		first := ns.newInc(spec, 0)
		if err := first.Subscribe(); err != nil {
			return nil, err
		}
		ns.agents = append(ns.agents, first)
	}
	return ns, nil
}

// start launches the supervised agent loops.
func (ns *nodeSession) start() {
	ns.mu.Lock()
	if ns.started {
		ns.mu.Unlock()
		return
	}
	ns.started = true
	ns.ctx, ns.cancel = context.WithCancel(context.Background())
	ns.mu.Unlock()
	for i := range ns.specs {
		ns.wg.Add(1)
		go ns.runLoop(ns.specs[i], ns.agents[i])
	}
}

// runLoop mirrors the in-process supervisor: restart crashed
// incarnations (inbox replay via the remote broker's Log) under a
// recovery budget; escalations and spent budgets FAIL the session to
// the server, while the remaining agents keep running until STOP —
// exactly the in-process engine's wind-down semantics.
func (ns *nodeSession) runLoop(spec workflow.AgentSpec, first *agent.Agent) {
	defer ns.wg.Done()
	for incarnation := 0; ; incarnation++ {
		a := first
		if incarnation > 0 || a == nil {
			a = ns.newInc(spec, incarnation)
		}
		err := a.Run(ns.ctx)
		ns.mu.Lock()
		ns.duplicates += a.DuplicatesSuppressed()
		ns.mu.Unlock()
		switch {
		case err == nil:
			return // context ended: orderly shutdown
		case agent.IsCrash(err):
			ns.mu.Lock()
			ns.failures++
			if ns.recoveries >= ns.maxRecoveries {
				ns.mu.Unlock()
				ns.fail(fmt.Errorf("recovery budget exhausted: %w", err))
				return
			}
			ns.recoveries++
			ns.mu.Unlock()
			if ns.clus.Clock().SleepCtx(ns.ctx, ns.restartDelay) != nil {
				return
			}
			ns.recorder.Record(trace.AgentRecovered, spec.Task.Name, incarnation+1, "")
		default:
			var esc *agent.EscalationError
			if errors.As(err, &esc) {
				ns.recorder.Record(trace.AgentEscalated, esc.Task, esc.Incarnation,
					fmt.Sprintf("service %s: %d attempts: %v", esc.Service, esc.Attempts, esc.Cause))
			}
			ns.fail(err)
			return
		}
	}
}

// fail reports the session's first unrecoverable error to the server.
func (ns *nodeSession) fail(err error) {
	ns.failOnce.Do(func() {
		b, _ := json.Marshal(nodeFailure{
			Err:              err.Error(),
			RetriesExhausted: errors.Is(err, failure.ErrRetriesExhausted),
		})
		ns.node.rb.sendSessionJSON(fFail, ns.id, b)
	})
}

// stop cancels the agents and waits for them to unwind. A session
// stopped before start releases its subscriptions by running each
// agent once under an already-cancelled context.
func (ns *nodeSession) stop() {
	ns.mu.Lock()
	started := ns.started
	ns.started = true // bar a late START from relaunching
	ns.mu.Unlock()
	if started {
		ns.cancel()
		ns.wg.Wait()
		return
	}
	done, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range ns.agents {
		_ = a.Run(done)
	}
}

// stopAndReport stops the session and sends the DONE stats report.
func (ns *nodeSession) stopAndReport() {
	ns.stop()
	ns.mu.Lock()
	d := NodeDone{Failures: ns.failures, Recoveries: ns.recoveries, Duplicates: ns.duplicates}
	ns.mu.Unlock()
	blob, _ := json.Marshal(d)
	ns.node.rb.sendSessionJSON(fDone, ns.id, blob)
	ns.node.removeSession(ns.id)
}
