package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
)

// link is one side of a transport connection's reliable layer. It
// serializes writes, assigns sequence numbers to reliable frames, keeps
// every unacknowledged frame in an outbox for replay after a reconnect,
// and dedups incoming reliable frames by sequence number. The link
// outlives individual connections: a broken socket detaches, a
// handshake attaches the replacement and replays the outbox.
type link struct {
	mu      sync.Mutex
	conn    net.Conn
	nextSeq uint64
	outbox  []sentFrame
	lastIn  uint64
	acked   uint64
	waiters []ackWaiter
}

// ackWaiter signals a sender blocked until its frame's sequence is
// cumulatively acknowledged (the synchronous-subscribe round trip).
type ackWaiter struct {
	seq uint64
	ch  chan struct{}
}

// sentFrame is one reliable frame awaiting acknowledgement. payload
// includes the sequence prefix, so replay is a plain re-write.
type sentFrame struct {
	seq     uint64
	typ     byte
	payload []byte
}

// send transmits a reliable frame whose payload was built by an
// encode* helper around the sequence seq returns. Reliable sends never
// fail: if the connection is down (or breaks mid-write) the frame stays
// in the outbox and the next attach replays it.
func (l *link) send(typ byte, build func(seq uint64) []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	payload := build(l.nextSeq)
	l.outbox = append(l.outbox, sentFrame{seq: l.nextSeq, typ: typ, payload: payload})
	metUnacked.Add(1)
	if l.conn != nil {
		if err := writeFrame(l.conn, typ, payload); err != nil {
			l.conn.Close()
			l.conn = nil
		}
	}
}

// sendWait is send plus a completion signal: the returned channel
// closes when the peer's cumulative ACK passes this frame — i.e. the
// peer has processed it, since acks are sent post-dispatch. Used where
// the caller needs synchronous semantics (Subscribe must not return
// before the subscription is live on the serving broker).
func (l *link) sendWait(typ byte, build func(seq uint64) []byte) <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	seq := l.nextSeq
	payload := build(seq)
	l.outbox = append(l.outbox, sentFrame{seq: seq, typ: typ, payload: payload})
	metUnacked.Add(1)
	if l.conn != nil {
		if err := writeFrame(l.conn, typ, payload); err != nil {
			l.conn.Close()
			l.conn = nil
		}
	}
	ch := make(chan struct{})
	l.waiters = append(l.waiters, ackWaiter{seq: seq, ch: ch})
	return ch
}

// sendControl transmits an unsequenced control frame on the current
// connection, if any; control frames are connection-scoped and are
// never replayed.
func (l *link) sendControl(typ byte, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == nil {
		return
	}
	if err := writeFrame(l.conn, typ, payload); err != nil {
		l.conn.Close()
		l.conn = nil
	}
}

// sendAck acknowledges everything received so far.
func (l *link) sendAck() {
	l.mu.Lock()
	seq := l.lastIn
	l.mu.Unlock()
	l.sendControl(fAck, binary.AppendUvarint(nil, seq))
}

// onAck trims the outbox up to the peer's cumulative sequence and
// releases any senders waiting on it.
func (l *link) onAck(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	i := 0
	for i < len(l.outbox) && l.outbox[i].seq <= seq {
		i++
	}
	if i > 0 {
		l.outbox = append(l.outbox[:0:0], l.outbox[i:]...)
		metUnacked.Add(-float64(i))
	}
	if seq > l.acked {
		l.acked = seq
	}
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		if w.seq <= l.acked {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	l.waiters = kept
}

// accept dedups an incoming reliable sequence number: false for a
// replayed duplicate, an error for a gap (the peer lost state we cannot
// recover — a protocol violation that kills the connection).
func (l *link) accept(seq uint64) (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case seq <= l.lastIn:
		return false, nil
	case seq == l.lastIn+1:
		l.lastIn = seq
		return true, nil
	default:
		return false, fmt.Errorf("%w: sequence gap: got %d, want %d", errFrame, seq, l.lastIn+1)
	}
}

// received returns the highest reliable sequence accepted so far (the
// lastSeq the handshake advertises).
func (l *link) received() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastIn
}

// attach installs a (re)connected socket and replays the outbox. The
// caller has already trimmed it via onAck with the peer's handshake
// lastSeq, so only genuinely unacknowledged frames go out again.
func (l *link) attach(conn net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		l.conn.Close()
	}
	l.conn = conn
	for _, f := range l.outbox {
		if err := writeFrame(conn, f.typ, f.payload); err != nil {
			conn.Close()
			l.conn = nil
			return
		}
	}
}

// detach clears the connection if it is still the given one (a stale
// read loop must not tear down its successor's socket).
func (l *link) detach(conn net.Conn) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn == conn {
		l.conn.Close()
		l.conn = nil
	}
}

// close tears the current connection down unconditionally.
func (l *link) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.conn != nil {
		l.conn.Close()
		l.conn = nil
	}
}
