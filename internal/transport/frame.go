// Package transport puts the GinFlow broker on a real network: a TCP
// listener (Server) fronts the in-process sharded broker, and a
// client-side RemoteBroker satisfies the mq.Broker interface so agents,
// the space and the journal code run unchanged in a separate OS process.
// A worker process hosts agents through the Node runtime (Join), which
// receives its task assignments, workflow definition and tuning over the
// same connection.
//
// # Frame format
//
// Every frame is length-prefixed: a 4-byte big-endian length (counting
// the type byte and the payload, capped at 16 MiB), one type byte, then
// the payload. Payload integers are varints (uvarint unless noted),
// strings and byte blobs are uvarint-length-prefixed. Molecule payloads
// travel in the hocl wire codec (hocl.EncodeAtoms / hocl.DecodeAtoms).
//
// Control frames (HELLO, WELCOME, PING, PONG, ACK) are connection-scoped
// and unsequenced. Every other frame is reliable: its payload starts
// with a per-direction uvarint sequence number, the sender keeps the
// frame in an outbox until the peer's cumulative ACK passes it, and a
// reconnect replays the outbox — so a dropped connection loses nothing
// and duplicates are discarded by sequence on the receiver.
//
// # Handshake and reconnect
//
// A client opens with HELLO{version, nodeID, lastSeq, name}; nodeID 0
// asks the server to assign a fresh node identity, a non-zero nodeID
// resumes an existing one after a connection drop. The server answers
// WELCOME{version, nodeID, lastSeq}. The lastSeq fields carry each
// side's highest received sequence number, acting as an implicit
// cumulative ACK that trims the peer's outbox before it replays.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// protocolVersion is the frame protocol version carried in HELLO and
// WELCOME; a mismatch fails the handshake.
const protocolVersion = 1

// maxFrame bounds a frame's length prefix (type byte + payload). A peer
// announcing more is protocol-corrupt and the connection is dropped
// before any allocation.
const maxFrame = 16 << 20

// Frame types. Types below fSubscribe are connection control
// (unsequenced); fSubscribe and above are reliable frames whose payload
// starts with a sequence number.
const (
	fHello   byte = 1 // client→server: version, nodeID (0 = assign), lastSeq, name
	fWelcome byte = 2 // server→client: version, assigned nodeID, lastSeq
	fPing    byte = 3 // either direction: empty, answered with PONG
	fPong    byte = 4 // either direction: empty
	fAck     byte = 5 // either direction: cumulative received seq

	fSubscribe   byte = 16 // client→server: subID, topic
	fUnsubscribe byte = 17 // client→server: subID
	fPublish     byte = 18 // client→server: topic, kind, data
	fBatch       byte = 19 // server→client: subID, count, messages
	fAssign      byte = 20 // server→client: session, assignment JSON
	fReady       byte = 21 // client→server: session
	fStart       byte = 22 // server→client: session
	fStop        byte = 23 // server→client: session
	fFail        byte = 24 // client→server: session, failure JSON
	fDone        byte = 25 // client→server: session, stats JSON
	fEvent       byte = 26 // client→server: session, trace-event JSON
	fLogReq      byte = 27 // client→server: reqID, topic
	fLogResp     byte = 28 // server→client: reqID, count, messages

	fTypeMax byte = 28
)

// reliable reports whether a frame type carries a sequence number.
func reliable(typ byte) bool { return typ >= fSubscribe }

// Message payload kinds inside PUBLISH / BATCH / LOGRESP entries.
const (
	kindTextual    byte = 0 // data is the payload string's bytes
	kindStructural byte = 1 // data is hocl wire-encoded atoms
)

// errFrame is the root of every frame-decode error; the fuzz harness
// asserts decoding either succeeds or returns an error wrapping it —
// never panics.
var errFrame = errors.New("transport: bad frame")

// writeFrame writes one frame as a single Write (header, type byte and
// payload in one buffer), so concurrent writers serialized by a mutex
// never interleave partial frames.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	n := 1 + len(payload)
	if n > maxFrame {
		return fmt.Errorf("%w: oversized frame (%d bytes)", errFrame, n)
	}
	buf := make([]byte, 0, 5+len(payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, typ)
	buf = append(buf, payload...)
	_, err := w.Write(buf)
	if err == nil {
		metFramesSent.Inc()
	}
	return err
}

// readFrame reads one frame, returning its type and a freshly allocated
// payload (safe to retain or hand to goroutines). Length and type are
// validated before any payload allocation.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:4]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: length %d", errFrame, n)
	}
	if _, err := io.ReadFull(r, hdr[4:5]); err != nil {
		return 0, nil, err
	}
	typ := hdr[4]
	if typ == 0 || typ > fTypeMax {
		return 0, nil, fmt.Errorf("%w: unknown type %d", errFrame, typ)
	}
	payload := make([]byte, n-1)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	metFramesReceived.Inc()
	return typ, payload, nil
}

// cursor is a bounds-checked reader over a frame payload. Every method
// returns an error instead of panicking, whatever the input — the
// property FuzzFrameDecode locks in.
type cursor struct {
	buf []byte
	off int
}

func (c *cursor) errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s at offset %d", errFrame, fmt.Sprintf(format, args...), c.off)
}

func (c *cursor) uvarint() (uint64, error) {
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		return 0, c.errf("bad uvarint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) varint() (int64, error) {
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		return 0, c.errf("bad varint")
	}
	c.off += n
	return v, nil
}

func (c *cursor) u8() (byte, error) {
	if c.off >= len(c.buf) {
		return 0, c.errf("truncated byte")
	}
	b := c.buf[c.off]
	c.off++
	return b, nil
}

// bytes returns a length-prefixed blob as a sub-slice of the payload
// (no copy; the payload is per-frame allocated, so retaining is safe).
func (c *cursor) bytes() ([]byte, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.buf)-c.off) {
		return nil, c.errf("blob length %d exceeds remaining %d", n, len(c.buf)-c.off)
	}
	b := c.buf[c.off : c.off+int(n)]
	c.off += int(n)
	return b, nil
}

func (c *cursor) str() (string, error) {
	b, err := c.bytes()
	return string(b), err
}

// done errors on trailing garbage, so a frame with extra bytes is
// rejected rather than silently half-read.
func (c *cursor) done() error {
	if c.off != len(c.buf) {
		return c.errf("%d trailing bytes", len(c.buf)-c.off)
	}
	return nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// helloFrame is the client's opening frame.
type helloFrame struct {
	version byte
	nodeID  uint64
	lastSeq uint64
	name    string
}

func encodeHello(h helloFrame) []byte {
	buf := []byte{h.version}
	buf = binary.AppendUvarint(buf, h.nodeID)
	buf = binary.AppendUvarint(buf, h.lastSeq)
	return appendString(buf, h.name)
}

func parseHello(payload []byte) (helloFrame, error) {
	c := cursor{buf: payload}
	var h helloFrame
	var err error
	if h.version, err = c.u8(); err != nil {
		return h, err
	}
	if h.nodeID, err = c.uvarint(); err != nil {
		return h, err
	}
	if h.lastSeq, err = c.uvarint(); err != nil {
		return h, err
	}
	if h.name, err = c.str(); err != nil {
		return h, err
	}
	return h, c.done()
}

// welcomeFrame is the server's handshake reply.
type welcomeFrame struct {
	version byte
	nodeID  uint64
	lastSeq uint64
}

func encodeWelcome(w welcomeFrame) []byte {
	buf := []byte{w.version}
	buf = binary.AppendUvarint(buf, w.nodeID)
	return binary.AppendUvarint(buf, w.lastSeq)
}

func parseWelcome(payload []byte) (welcomeFrame, error) {
	c := cursor{buf: payload}
	var w welcomeFrame
	var err error
	if w.version, err = c.u8(); err != nil {
		return w, err
	}
	if w.nodeID, err = c.uvarint(); err != nil {
		return w, err
	}
	if w.lastSeq, err = c.uvarint(); err != nil {
		return w, err
	}
	return w, c.done()
}

// wireMsg is one broker message inside a BATCH or LOGRESP frame.
type wireMsg struct {
	kind   byte
	offset int64
	data   []byte
}

func appendWireMsg(dst []byte, m wireMsg) []byte {
	dst = append(dst, m.kind)
	dst = binary.AppendVarint(dst, m.offset)
	return appendBytes(dst, m.data)
}

func (c *cursor) wireMsg() (wireMsg, error) {
	var m wireMsg
	var err error
	if m.kind, err = c.u8(); err != nil {
		return m, err
	}
	if m.kind != kindTextual && m.kind != kindStructural {
		return m, c.errf("unknown message kind %d", m.kind)
	}
	if m.offset, err = c.varint(); err != nil {
		return m, err
	}
	m.data, err = c.data()
	return m, err
}

// data reads a blob like bytes but always returns a non-nil slice, so a
// structural message with zero atoms stays structural on the far side.
func (c *cursor) data() ([]byte, error) {
	b, err := c.bytes()
	if err != nil {
		return nil, err
	}
	if b == nil {
		b = []byte{}
	}
	return b, nil
}

// publishFrame is a client publish: one topic, one message body.
type publishFrame struct {
	topic string
	kind  byte
	data  []byte
}

func encodePublish(seq uint64, p publishFrame) []byte {
	buf := binary.AppendUvarint(nil, seq)
	buf = appendString(buf, p.topic)
	buf = append(buf, p.kind)
	return appendBytes(buf, p.data)
}

// parsePublish parses a PUBLISH body (sequence already consumed).
func parsePublish(c *cursor) (publishFrame, error) {
	var p publishFrame
	var err error
	if p.topic, err = c.str(); err != nil {
		return p, err
	}
	if p.kind, err = c.u8(); err != nil {
		return p, err
	}
	if p.kind != kindTextual && p.kind != kindStructural {
		return p, c.errf("unknown message kind %d", p.kind)
	}
	if p.data, err = c.data(); err != nil {
		return p, err
	}
	return p, c.done()
}

// encodeMsgs appends a count-prefixed message list (BATCH and LOGRESP
// share the layout after their respective IDs).
func encodeMsgs(buf []byte, msgs []wireMsg) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(msgs)))
	for _, m := range msgs {
		buf = appendWireMsg(buf, m)
	}
	return buf
}

func (c *cursor) msgs() ([]wireMsg, error) {
	n, err := c.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(c.buf)-c.off) {
		// Each message costs at least 3 bytes; a count beyond the
		// remaining payload is corrupt, rejected before allocation.
		return nil, c.errf("message count %d exceeds remaining %d bytes", n, len(c.buf)-c.off)
	}
	msgs := make([]wireMsg, 0, n)
	for i := uint64(0); i < n; i++ {
		m, err := c.wireMsg()
		if err != nil {
			return nil, err
		}
		msgs = append(msgs, m)
	}
	return msgs, nil
}

// sessionJSON encodes the (session, JSON blob) bodies shared by ASSIGN,
// FAIL, DONE and EVENT.
func encodeSessionJSON(seq, session uint64, blob []byte) []byte {
	buf := binary.AppendUvarint(nil, seq)
	buf = binary.AppendUvarint(buf, session)
	return appendBytes(buf, blob)
}

func parseSessionJSON(c *cursor) (uint64, []byte, error) {
	session, err := c.uvarint()
	if err != nil {
		return 0, nil, err
	}
	blob, err := c.bytes()
	if err != nil {
		return 0, nil, err
	}
	return session, blob, c.done()
}

// parseFrame validates a full frame payload of the given type,
// discarding the result — the shared validation core of FuzzFrameDecode.
// It exercises every per-type parser exactly as the server and client
// read loops do.
func parseFrame(typ byte, payload []byte) error {
	c := cursor{buf: payload}
	if reliable(typ) {
		if _, err := c.uvarint(); err != nil {
			return err
		}
	}
	switch typ {
	case fHello:
		_, err := parseHello(payload)
		return err
	case fWelcome:
		_, err := parseWelcome(payload)
		return err
	case fPing, fPong:
		return c.done()
	case fAck:
		if _, err := c.uvarint(); err != nil {
			return err
		}
		return c.done()
	case fSubscribe:
		if _, err := c.uvarint(); err != nil {
			return err
		}
		if _, err := c.str(); err != nil {
			return err
		}
		return c.done()
	case fUnsubscribe:
		if _, err := c.uvarint(); err != nil {
			return err
		}
		return c.done()
	case fPublish:
		_, err := parsePublish(&c)
		return err
	case fBatch, fLogResp:
		if _, err := c.uvarint(); err != nil { // subID / reqID
			return err
		}
		if _, err := c.msgs(); err != nil {
			return err
		}
		return c.done()
	case fLogReq:
		if _, err := c.uvarint(); err != nil {
			return err
		}
		if _, err := c.str(); err != nil {
			return err
		}
		return c.done()
	case fAssign, fFail, fDone, fEvent:
		_, _, err := parseSessionJSON(&c)
		return err
	case fReady, fStart, fStop:
		if _, err := c.uvarint(); err != nil {
			return err
		}
		return c.done()
	}
	return fmt.Errorf("%w: unknown type %d", errFrame, typ)
}
