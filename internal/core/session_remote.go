package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ginflow/internal/space"
	"ginflow/internal/trace"
	"ginflow/internal/transport"
	"ginflow/internal/workflow"
)

// remoteDoneTimeout bounds the wait for the workers' DONE reports at
// session teardown, in real time: the model clock scale makes a healthy
// wind-down near-instant, so a worker that stays silent this long is
// gone and the session proceeds with the stats it has.
const remoteDoneTimeout = 10 * time.Second

// remoteHost is the session side of out-of-process enactment: it owns
// the transport RemoteSession, forwards the workers' trace events into
// the session recorder, and translates worker reconnects into space
// resync requests for that worker's tasks.
type remoteHost struct {
	rs       *transport.RemoteSession
	tasksOf  map[uint64][]string
	sp       *space.Space
	recorder *trace.Recorder

	stopC chan struct{}
	doneC chan struct{}
	once  sync.Once
}

// launchRemote fans the session's tasks out over the joined worker
// nodes (round-robin over the sorted node IDs, so the assignment is
// deterministic for a given fleet) and barriers on every worker's READY
// — the remote form of the subscribe-before-reduce ordering: a worker
// reports READY only once all its agents' inbox subscriptions are live
// on the manager's broker.
func (s *Session) launchRemote(ctx context.Context, sp *space.Space, spaceTopic, topicPrefix string, specs []workflow.AgentSpec) (*remoteHost, error) {
	srv := s.mgr.server
	ids := srv.NodeIDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("core: remote enactment: no worker nodes joined")
	}
	defJSON, err := s.def.JSON()
	if err != nil {
		return nil, err
	}
	cfg := s.mgr.cfg
	tasksOf := map[uint64][]string{}
	for i := range specs {
		id := ids[i%len(ids)]
		tasksOf[id] = append(tasksOf[id], specs[i].Task.Name)
	}
	assigns := map[uint64]transport.Assignment{}
	for id, tasks := range tasksOf {
		assigns[id] = transport.Assignment{
			SpaceTopic:    spaceTopic,
			TopicPrefix:   topicPrefix,
			Workflow:      defJSON,
			Tasks:         tasks,
			FailureP:      s.sub.FailureP,
			FailureT:      s.sub.FailureT,
			RestartDelay:  cfg.RestartDelay,
			MaxRecoveries: cfg.MaxRecoveries,
			// Offsetting the platform seed by the session ID gives each
			// session its own deterministic worker-side stream (duration
			// draws, crash plans), mirroring the manager's shared RNG
			// being advanced per session.
			Seed:    cfg.Cluster.Seed + s.id,
			ScaleNS: int64(s.mgr.cluster.Clock().Scale()),
			Chaos:   cfg.Chaos,
			Retry:   cfg.Retry,
		}
	}
	rs, err := srv.StartRemote(uint64(s.id), assigns)
	if err != nil {
		return nil, fmt.Errorf("core: remote enactment: %w", err)
	}
	rh := &remoteHost{
		rs: rs, tasksOf: tasksOf, sp: sp, recorder: s.recorder,
		stopC: make(chan struct{}), doneC: make(chan struct{}),
	}
	go rh.forward()

	// The READY barrier must also watch the failure channel: a worker
	// that cannot build its agents reports FAIL instead of READY, and
	// the barrier would otherwise hang until the session timeout.
	readyErr := make(chan error, 1)
	go func() { readyErr <- rs.WaitReady(ctx) }()
	select {
	case err := <-readyErr:
		if err != nil {
			rh.close()
			return nil, err
		}
	case err := <-rs.Failed():
		rh.close()
		return nil, fmt.Errorf("core: remote enactment: %w", err)
	}
	return rh, nil
}

// forward pumps the workers' event and reconnect streams until close.
// Reconnects trigger a space resync of that worker's tasks: the
// reliable link replays everything the outage queued, and the resync
// additionally forces a fresh full snapshot per task so the space heals
// even if the worker itself restarted mid-push (the version gate drops
// whatever arrives stale or twice).
func (rh *remoteHost) forward() {
	defer close(rh.doneC)
	for {
		select {
		case <-rh.stopC:
			return
		case e := <-rh.rs.Events():
			rh.recorder.Record(trace.Kind(e.Kind), e.Task, e.Incarnation, e.Info)
		case id := <-rh.rs.Reconnected():
			for _, task := range rh.tasksOf[id] {
				rh.sp.RequestResync(task)
			}
		}
	}
}

// stop winds the workers down and aggregates their DONE stats (partial
// if a worker never answers within remoteDoneTimeout).
func (rh *remoteHost) stop() transport.NodeDone {
	rh.rs.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), remoteDoneTimeout)
	defer cancel()
	stats, _ := rh.rs.WaitDone(ctx)
	return stats
}

// close stops the forwarder and unregisters the remote session.
func (rh *remoteHost) close() {
	rh.once.Do(func() {
		close(rh.stopC)
		<-rh.doneC
		rh.rs.Close()
	})
}
