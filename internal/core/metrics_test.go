package core

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"ginflow/internal/executor"
	"ginflow/internal/failure"
	"ginflow/internal/mq"
	"ginflow/internal/obs"
	"ginflow/internal/workflow"
)

// runMetricsVirtual enacts one chaotic seeded 8x8 diamond on the
// virtual clock against a fresh private registry and returns the
// model-time metric families — the deterministic slice of the catalogue
// (wall-clock families are excluded by construction; counters tied to
// the post-completion message drain are excluded because the snapshot
// races with it).
func runMetricsVirtual(t *testing.T, seed int64) []obs.FamilySnapshot {
	t.Helper()
	reg := obs.NewRegistry()
	m, err := NewManager(Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  virtualCluster(25, seed),
		Timeout:  2 * time.Minute,
		Chaos:    soakChaosMix(seed),
		Retry:    failure.RetryConfig{MaxAttempts: 8, BackoffBase: 0.25},
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	def := workflow.Diamond(workflow.DefaultDiamondSpec(8, 8, false))
	s, err := m.Submit(context.Background(), def, diamondServices(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	var out []obs.FamilySnapshot
	for _, f := range reg.Snapshot() {
		if strings.Contains(f.Name, "_model_seconds") {
			out = append(out, f)
		}
	}
	return out
}

// TestModelMetricsDeterministic: two same-seed virtual runs must report
// bit-identical model-time metric families — every bucket count and
// every float sum. This extends the virtual clock's determinism promise
// (TestVirtualTimingDeterminism) to the metrics layer: model-time
// observations are pure functions of the schedule.
func TestModelMetricsDeterministic(t *testing.T) {
	a := runMetricsVirtual(t, 7)
	b := runMetricsVirtual(t, 7)
	if len(a) < 3 {
		t.Fatalf("model-time families = %d, want >= 3 (invoke, deploy, exec)", len(a))
	}
	observed := false
	for _, f := range a {
		for _, s := range f.Series {
			if s.Count > 0 {
				observed = true
			}
		}
	}
	if !observed {
		t.Fatal("no model-time observations recorded")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed virtual runs disagree on model-time metrics:\nrun A: %+v\nrun B: %+v", a, b)
	}
}

// TestPrivateRegistryIsolation: a Manager given Config.Metrics must not
// leak its session metrics into the process default registry, and two
// managers with separate registries must not share counters.
func TestPrivateRegistryIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	m, err := NewManager(Config{
		Cluster: virtualCluster(4, 1),
		Timeout: time.Minute,
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	def := workflow.Diamond(workflow.DefaultDiamondSpec(2, 2, false))
	s, err := m.Submit(context.Background(), def, diamondServices(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("ginflow_sessions_completed_total",
		"Workflow sessions that finished successfully.").Value(); got != 1 {
		t.Errorf("private registry sessions_completed = %d, want 1", got)
	}
}
