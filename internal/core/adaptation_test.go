package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/workflow"
)

// multiAdaptiveWorkflow builds a workflow with two independent faulty
// branches, each with its own adaptation — the paper's §III-C
// "Generalisation": "GinFlow can support several adaptations for the
// same workflow if they concern disjoint sets of tasks."
func multiAdaptiveWorkflow() *workflow.Definition {
	return &workflow.Definition{
		Name: "multi-adaptive",
		Tasks: []workflow.Task{
			{ID: "HEAD", Service: "ok", In: []string{"x"}, Dst: []string{"FA", "FB", "MID"}},
			{ID: "FA", Service: "failA", Dst: []string{"TAIL"}},
			{ID: "FB", Service: "failB", Dst: []string{"TAIL"}},
			{ID: "MID", Service: "ok", Dst: []string{"TAIL"}},
			{ID: "TAIL", Service: "ok"},
		},
		Adaptations: []workflow.Adaptation{
			{
				ID: "swapA", Faulty: []string{"FA"},
				Replacement: []workflow.ReplacementTask{
					{ID: "RA", Service: "altA", Src: []string{"HEAD"}, Dst: []string{"TAIL"}},
				},
			},
			{
				ID: "swapB", Faulty: []string{"FB"},
				Replacement: []workflow.ReplacementTask{
					{ID: "RB", Service: "altB", Src: []string{"HEAD"}, Dst: []string{"TAIL"}},
				},
			},
		},
	}
}

// TestMultipleDisjointAdaptationsBothFire: both faulty branches fail;
// both adaptations trigger independently and the workflow completes.
func TestMultipleDisjointAdaptationsBothFire(t *testing.T) {
	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "ok", "altA", "altB")
	services.RegisterFailing("failA", 0.1)
	services.RegisterFailing("failB", 0.1)

	for _, exKind := range []executor.Kind{executor.KindCentralized, executor.KindSSH} {
		rep, err := Run(context.Background(), multiAdaptiveWorkflow(), services, Config{
			Executor: exKind,
			Broker:   mq.KindQueue,
			Cluster:  fastCluster(4),
		})
		if err != nil {
			t.Fatalf("%s: %v", exKind, err)
		}
		got := append([]string(nil), rep.Adaptations...)
		sort.Strings(got)
		if len(got) != 2 || got[0] != "swapA" || got[1] != "swapB" {
			t.Errorf("%s: adaptations = %v, want both", exKind, got)
		}
		if rep.Statuses["TAIL"] != hoclflow.StatusCompleted {
			t.Errorf("%s: TAIL = %v", exKind, rep.Statuses["TAIL"])
		}
		for _, r := range []string{"RA", "RB"} {
			if rep.Statuses[r] != hoclflow.StatusCompleted {
				t.Errorf("%s: replacement %s = %v", exKind, r, rep.Statuses[r])
			}
		}
	}
}

// TestOnlyFailingAdaptationFires: when just one branch fails, the other
// adaptation must stay dormant.
func TestOnlyFailingAdaptationFires(t *testing.T) {
	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "ok", "failB", "altA", "altB") // failB healthy here
	services.RegisterFailing("failA", 0.1)

	rep, err := Run(context.Background(), multiAdaptiveWorkflow(), services, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adaptations) != 1 || rep.Adaptations[0] != "swapA" {
		t.Errorf("adaptations = %v, want [swapA]", rep.Adaptations)
	}
	if rep.Statuses["RB"] == hoclflow.StatusCompleted {
		t.Error("dormant replacement RB ran")
	}
	if rep.Statuses["TAIL"] != hoclflow.StatusCompleted {
		t.Errorf("TAIL = %v", rep.Statuses["TAIL"])
	}
}

// TestMultiTaskReplacementSubworkflow replaces one faulty task by a
// two-task replacement pipeline (paper Fig. 9(a): a sub-workflow, not
// just a task, goes in).
func TestMultiTaskReplacementSubworkflow(t *testing.T) {
	def := &workflow.Definition{
		Name: "pipeline-replacement",
		Tasks: []workflow.Task{
			{ID: "T1", Service: "ok", In: []string{"x"}, Dst: []string{"F"}},
			{ID: "F", Service: "flaky", Dst: []string{"T3"}},
			{ID: "T3", Service: "ok"},
		},
		Adaptations: []workflow.Adaptation{{
			ID: "pipe", Faulty: []string{"F"},
			Replacement: []workflow.ReplacementTask{
				{ID: "R1", Service: "alt", Src: []string{"T1"}, Dst: []string{"R2"}},
				// R2's edges are declared by its neighbours; the wiring
				// normaliser merges both directions.
				{ID: "R2", Service: "alt"},
				{ID: "R3", Service: "alt", Src: []string{"R2"}, Dst: []string{"T3"}},
			},
		}},
	}
	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "ok", "alt")
	services.RegisterFailing("flaky", 0.1)

	for _, exKind := range []executor.Kind{executor.KindCentralized, executor.KindSSH} {
		rep, err := Run(context.Background(), def, services, Config{
			Executor: exKind,
			Broker:   mq.KindQueue,
			Cluster:  fastCluster(4),
		})
		if err != nil {
			t.Fatalf("%s: %v", exKind, err)
		}
		if rep.Statuses["T3"] != hoclflow.StatusCompleted {
			t.Errorf("%s: T3 = %v", exKind, rep.Statuses["T3"])
		}
		for _, r := range []string{"R1", "R2", "R3"} {
			if rep.Statuses[r] != hoclflow.StatusCompleted {
				t.Errorf("%s: %s = %v", exKind, r, rep.Statuses[r])
			}
		}
	}
}

// TestRandomDAGsDistributedWithCrashes is the heavyweight property: a
// handful of random DAGs run on the decentralised engine under crash
// injection (Kafka broker) and still complete, with recoveries matching
// failures.
func TestRandomDAGsDistributedWithCrashes(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy integration test")
	}
	for seed := int64(1); seed <= 4; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(6)
		def := randomForwardDAG(r, n)
		services := agent.NewRegistry()
		services.RegisterNoop(0.3, "svc")

		cfg := Config{
			Executor:     executor.KindSSH,
			Broker:       mq.KindLog,
			Cluster:      fastCluster(4),
			FailureP:     0.3,
			FailureT:     0.05,
			RestartDelay: 0.2,
			Timeout:      60 * time.Second,
		}
		cfg.Cluster.Seed = seed
		rep, err := Run(context.Background(), def, services, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v (report %v)", seed, err, rep)
		}
		for _, task := range def.Tasks {
			if rep.Statuses[task.ID] != hoclflow.StatusCompleted {
				t.Errorf("seed %d: %s = %v", seed, task.ID, rep.Statuses[task.ID])
			}
		}
		if rep.Failures != rep.Recoveries {
			t.Errorf("seed %d: failures %d != recoveries %d", seed, rep.Failures, rep.Recoveries)
		}
	}
}

// randomForwardDAG mirrors the workflow package's random generator (kept
// local to avoid exporting test scaffolding).
func randomForwardDAG(r *rand.Rand, n int) *workflow.Definition {
	def := &workflow.Definition{Name: "rand"}
	for i := 1; i <= n; i++ {
		t := workflow.Task{ID: taskName(i), Service: "svc"}
		if i == 1 {
			t.In = []string{"input"}
		}
		def.Tasks = append(def.Tasks, t)
	}
	for i := 0; i < n-1; i++ {
		picked := map[int]bool{}
		for e := 0; e < 1+r.Intn(2); e++ {
			j := i + 1 + r.Intn(n-i-1)
			if !picked[j] {
				picked[j] = true
				def.Tasks[i].Dst = append(def.Tasks[i].Dst, taskName(j+1))
			}
		}
	}
	return def
}

func taskName(i int) string { return "T" + string(rune('A'+i-1)) }
