package core

import (
	"context"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/executor"
	"ginflow/internal/mq"
	"ginflow/internal/trace"
	"ginflow/internal/workflow"
)

// timelineOf indexes a report's events by kind.
func timelineOf(rep *Report) map[trace.Kind][]trace.Event {
	byKind := map[trace.Kind][]trace.Event{}
	for _, e := range rep.Events {
		byKind[e.Kind] = append(byKind[e.Kind], e)
	}
	return byKind
}

// TestTraceTimelineOfPlainRun asserts the enactment timeline of the
// paper's diamond: 4 starts, 4 invocations, 4 completions, 4 transfers
// (T1 sends twice, T2 and T3 once each).
func TestTraceTimelineOfPlainRun(t *testing.T) {
	def := &workflow.Definition{
		Name: "traced",
		Tasks: []workflow.Task{
			{ID: "T1", Service: "s", In: []string{"x"}, Dst: []string{"T2", "T3"}},
			{ID: "T2", Service: "s", Dst: []string{"T4"}},
			{ID: "T3", Service: "s", Dst: []string{"T4"}},
			{ID: "T4", Service: "s"},
		},
	}
	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "s")
	rep, err := Run(context.Background(), def, services, Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindQueue,
		Cluster:      fastCluster(4),
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKind := timelineOf(rep)
	if got := len(byKind[trace.AgentStarted]); got != 4 {
		t.Errorf("starts = %d", got)
	}
	if got := len(byKind[trace.ServiceInvoked]); got != 4 {
		t.Errorf("invocations = %d", got)
	}
	if got := len(byKind[trace.ServiceCompleted]); got != 4 {
		t.Errorf("completions = %d", got)
	}
	if got := len(byKind[trace.ResultSent]); got != 4 {
		t.Errorf("transfers = %d", got)
	}
	if got := len(byKind[trace.TaskCompleted]); got != 4 {
		t.Errorf("task completions = %d", got)
	}
	if len(byKind[trace.AgentCrashed]) != 0 || len(byKind[trace.AdaptTriggered]) != 0 {
		t.Errorf("unexpected failure events: %v", rep.Events)
	}
	// Causality: T1's completion precedes T4's invocation.
	var t1Done, t4Start float64 = -1, -1
	for _, e := range rep.Events {
		if e.Kind == trace.ServiceCompleted && e.Task == "T1" {
			t1Done = e.At
		}
		if e.Kind == trace.ServiceInvoked && e.Task == "T4" {
			t4Start = e.At
		}
	}
	if t1Done < 0 || t4Start < 0 || t4Start <= t1Done {
		t.Errorf("causality violated: T1 done %.2f, T4 start %.2f", t1Done, t4Start)
	}
}

// TestTraceTimelineOfAdaptiveRun asserts the adaptation events: the
// faulty service errors, the trigger fires, the replacement runs.
func TestTraceTimelineOfAdaptiveRun(t *testing.T) {
	def := &workflow.Definition{
		Name: "traced-adaptive",
		Tasks: []workflow.Task{
			{ID: "T1", Service: "ok", In: []string{"x"}, Dst: []string{"F"}},
			{ID: "F", Service: "flaky", Dst: []string{"T3"}},
			{ID: "T3", Service: "ok"},
		},
		Adaptations: []workflow.Adaptation{{
			ID: "a", Faulty: []string{"F"},
			Replacement: []workflow.ReplacementTask{
				{ID: "R", Service: "alt", Src: []string{"T1"}, Dst: []string{"T3"}},
			},
		}},
	}
	services := agent.NewRegistry()
	services.RegisterNoop(0.1, "ok", "alt")
	services.RegisterFailing("flaky", 0.1)

	rep, err := Run(context.Background(), def, services, Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindQueue,
		Cluster:      fastCluster(4),
		CollectTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKind := timelineOf(rep)
	if got := byKind[trace.ServiceErrored]; len(got) != 1 || got[0].Task != "F" {
		t.Errorf("errored = %v", got)
	}
	trig := byKind[trace.AdaptTriggered]
	if len(trig) != 1 || trig[0].Task != "F" || trig[0].Info != "a" {
		t.Errorf("triggers = %v", trig)
	}
	// The replacement's invocation happens after the trigger.
	var rStart float64 = -1
	for _, e := range rep.Events {
		if e.Kind == trace.ServiceInvoked && e.Task == "R" {
			rStart = e.At
		}
	}
	if rStart < trig[0].At {
		t.Errorf("replacement started at %.2f before trigger %.2f", rStart, trig[0].At)
	}
}

// TestTraceTimelineOfRecovery asserts crash/recovery events and that the
// recovered incarnation completes the service span.
func TestTraceTimelineOfRecovery(t *testing.T) {
	def := workflow.Sequence(2, "s", "in")
	services := agent.NewRegistry()
	services.RegisterNoop(0.2, "s")
	rep, err := Run(context.Background(), def, services, Config{
		Executor:     executor.KindMesos,
		Broker:       mq.KindLog,
		Cluster:      fastCluster(3),
		FailureP:     0.5,
		FailureT:     0,
		RestartDelay: 0.2,
		CollectTrace: true,
		Timeout:      60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	byKind := timelineOf(rep)
	if len(byKind[trace.AgentCrashed]) != rep.Failures {
		t.Errorf("crash events %d != failures %d", len(byKind[trace.AgentCrashed]), rep.Failures)
	}
	if len(byKind[trace.AgentRecovered]) != rep.Recoveries {
		t.Errorf("recovery events %d != recoveries %d", len(byKind[trace.AgentRecovered]), rep.Recoveries)
	}
	// Every task eventually produced a completed service span.
	spansByTask := map[string]bool{}
	for _, sp := range recorderFromEvents(rep.Events).Spans() {
		if !sp.Err {
			spansByTask[sp.Task] = true
		}
	}
	for _, task := range def.Tasks {
		if !spansByTask[task.ID] {
			t.Errorf("task %s has no completed span", task.ID)
		}
	}
}

// recorderFromEvents rebuilds a recorder from recorded events so span
// derivation can be reused.
func recorderFromEvents(events []trace.Event) *trace.Recorder {
	r := trace.NewRecorder(nil)
	for _, e := range events {
		// Note: At is lost (nil clock stamps 0), but span matching only
		// needs ordering, which record order preserves.
		r.Record(e.Kind, e.Task, e.Incarnation, e.Info)
	}
	return r
}

// TestTraceDisabledByDefault keeps the hot path clean.
func TestTraceDisabledByDefault(t *testing.T) {
	def := workflow.Sequence(2, "s", "in")
	services := agent.NewRegistry()
	services.RegisterNoop(0.05, "s")
	rep, err := Run(context.Background(), def, services, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Events) != 0 {
		t.Errorf("events recorded without CollectTrace: %d", len(rep.Events))
	}
}
