package core

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"

	"ginflow/internal/agent"
	"ginflow/internal/cluster"
	"ginflow/internal/executor"
	"ginflow/internal/hoclflow"
	"ginflow/internal/mq"
	"ginflow/internal/workflow"
)

// fastCluster keeps integration tests quick: 50 µs per model second.
// Setting GINFLOW_VIRTUAL (any non-empty value) reruns the same tests
// on the discrete-event virtual clock instead — CI uses this to soak
// the chaos suite under both timing models.
func fastCluster(nodes int) cluster.Config {
	return cluster.Config{
		Nodes:        nodes,
		CoresPerNode: 24,
		Scale:        50 * time.Microsecond,
		Virtual:      os.Getenv("GINFLOW_VIRTUAL") != "",
	}
}

func diamondServices(reg *agent.Registry) *agent.Registry {
	if reg == nil {
		reg = agent.NewRegistry()
	}
	reg.RegisterNoop(0.1, "split", "work", "merge", "workalt")
	return reg
}

func runDiamond(t *testing.T, h, v int, cfg Config) *Report {
	t.Helper()
	def := workflow.Diamond(workflow.DefaultDiamondSpec(h, v, false))
	rep, err := Run(context.Background(), def, diamondServices(nil), cfg)
	if err != nil {
		t.Fatalf("run: %v (report %v)", err, rep)
	}
	return rep
}

func TestRunCentralizedDiamond(t *testing.T) {
	rep := runDiamond(t, 2, 2, Config{
		Executor: executor.KindCentralized,
		Cluster:  fastCluster(4),
	})
	if rep.Executor != "centralized" || rep.Agents != 0 {
		t.Errorf("report: %+v", rep)
	}
	if got := rep.Statuses[workflow.DiamondMergeName]; got != hoclflow.StatusCompleted {
		t.Errorf("merge = %v", got)
	}
	if len(rep.Results[workflow.DiamondMergeName]) != 1 {
		t.Errorf("results: %v", rep.Results)
	}
	if rep.ExecTime <= 0 {
		t.Errorf("exec time = %v", rep.ExecTime)
	}
}

func TestRunDistributedSSHQueue(t *testing.T) {
	rep := runDiamond(t, 3, 3, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(5),
	})
	if rep.Agents != 11 {
		t.Errorf("agents = %d, want 11", rep.Agents)
	}
	if rep.DeployTime <= 0 || rep.ExecTime <= 0 {
		t.Errorf("times: %+v", rep)
	}
	if got := rep.Statuses[workflow.DiamondMergeName]; got != hoclflow.StatusCompleted {
		t.Errorf("merge = %v", got)
	}
	if rep.Messages == 0 {
		t.Error("no messages recorded")
	}
	if rep.Failures != 0 || rep.Recoveries != 0 {
		t.Errorf("unexpected failures: %+v", rep)
	}
}

func TestRunDistributedMesosKafka(t *testing.T) {
	rep := runDiamond(t, 2, 3, Config{
		Executor: executor.KindMesos,
		Broker:   mq.KindLog,
		Cluster:  fastCluster(4),
	})
	if got := rep.Statuses[workflow.DiamondMergeName]; got != hoclflow.StatusCompleted {
		t.Errorf("merge = %v", got)
	}
	if rep.Broker != "kafka" || rep.Executor != "mesos" {
		t.Errorf("report: %+v", rep)
	}
}

// TestRunDistributedAdaptation runs the §V-B scenario through the full
// stack: the last mesh service errors, the body is swapped, the merge
// completes, and the report records the adaptation.
func TestRunDistributedAdaptation(t *testing.T) {
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
	last, _ := def.TaskByID(workflow.LastMeshTask(spec))
	last.Service = "flaky"

	services := diamondServices(nil)
	services.RegisterFailing("flaky", 0.1)

	rep, err := Run(context.Background(), def, services, Config{
		Executor: executor.KindSSH,
		Broker:   mq.KindQueue,
		Cluster:  fastCluster(5),
	})
	if err != nil {
		t.Fatalf("run: %v (report %v)", err, rep)
	}
	if len(rep.Adaptations) != 1 || rep.Adaptations[0] != "bodyswap" {
		t.Errorf("adaptations = %v", rep.Adaptations)
	}
	if got := rep.Statuses[workflow.DiamondMergeName]; got != hoclflow.StatusCompleted {
		t.Errorf("merge = %v", got)
	}
	// Replacement agents were deployed alongside main agents.
	if rep.Agents != 2*2*2+2 {
		t.Errorf("agents = %d, want 10 (mesh + replacement mesh + split/merge)", rep.Agents)
	}
}

// TestRunCentralizedAdaptation runs the same scenario on the centralized
// interpreter.
func TestRunCentralizedAdaptation(t *testing.T) {
	spec := workflow.DefaultDiamondSpec(2, 2, false)
	def := workflow.WithBodyReplacement(workflow.Diamond(spec), spec, false, "workalt")
	last, _ := def.TaskByID(workflow.LastMeshTask(spec))
	last.Service = "flaky"

	services := diamondServices(nil)
	services.RegisterFailing("flaky", 0.1)

	rep, err := Run(context.Background(), def, services, Config{
		Executor: executor.KindCentralized,
		Cluster:  fastCluster(4),
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(rep.Adaptations) != 1 {
		t.Errorf("adaptations = %v", rep.Adaptations)
	}
}

// TestRunResilienceKafka injects crashes (p=0.5, T=0) under the Kafka
// broker: the workflow must still complete, with observed failures and
// recoveries (§V-D).
func TestRunResilienceKafka(t *testing.T) {
	rep := runDiamond(t, 2, 2, Config{
		Executor:     executor.KindMesos,
		Broker:       mq.KindLog,
		Cluster:      fastCluster(4),
		FailureP:     0.5,
		FailureT:     0,
		RestartDelay: 0.5,
		Timeout:      60 * time.Second,
	})
	if got := rep.Statuses[workflow.DiamondMergeName]; got != hoclflow.StatusCompleted {
		t.Fatalf("merge = %v (report %v)", got, rep)
	}
	if rep.Failures == 0 {
		t.Error("no failures observed with p=0.5")
	}
	if rep.Recoveries != rep.Failures {
		t.Errorf("failures=%d recoveries=%d must match", rep.Failures, rep.Recoveries)
	}
}

// TestRunResilienceQueueStalls: with the volatile broker, a crash loses
// in-flight results and the workflow cannot finish — the §IV-B rationale
// for Kafka. All services fail once at the start (T=0 hits before the
// 0.1s service completes), so every in-flight input to the crashed agent
// is gone.
func TestRunResilienceQueueStalls(t *testing.T) {
	def := workflow.Sequence(2, "s", "in")
	services := agent.NewRegistry()
	services.RegisterNoop(0.2, "s")
	_, err := Run(context.Background(), def, services, Config{
		Executor:     executor.KindSSH,
		Broker:       mq.KindQueue,
		Cluster:      fastCluster(2),
		FailureP:     0.9999, // S2 virtually guaranteed to crash while S1's result is in flight
		FailureT:     0.1,
		RestartDelay: 0.1,
		Timeout:      2 * time.Second,
	})
	if err == nil {
		t.Skip("lucky run: no crash at the fatal moment")
	}
	if !strings.Contains(err.Error(), "did not complete") {
		t.Errorf("want stall, got: %v", err)
	}
}

func TestRunRejectsInvalidWorkflow(t *testing.T) {
	bad := &workflow.Definition{Tasks: []workflow.Task{{ID: "x", Service: "s"}}}
	if _, err := Run(context.Background(), bad, agent.NewRegistry(), Config{
		Executor: executor.KindCentralized, Cluster: fastCluster(1),
	}); err == nil {
		t.Error("invalid workflow accepted")
	}
	if _, err := Run(context.Background(), bad, agent.NewRegistry(), Config{
		Cluster: fastCluster(1),
	}); err == nil {
		t.Error("invalid workflow accepted (distributed)")
	}
}

func TestRunUnknownExecutor(t *testing.T) {
	def := workflow.Sequence(1, "s", "in")
	services := agent.NewRegistry()
	services.RegisterNoop(0, "s")
	if _, err := Run(context.Background(), def, services, Config{
		Executor: "slurm", Cluster: fastCluster(1),
	}); err == nil {
		t.Error("unknown executor accepted")
	}
}

func TestRunTimeoutStallsCleanly(t *testing.T) {
	// A workflow whose only service is missing stalls; the run must
	// return within the timeout with a helpful error.
	def := workflow.Sequence(2, "s", "in")
	services := agent.NewRegistry()
	services.RegisterNoop(0, "s")
	// Remove the service the second task needs by using a separate name.
	def.Tasks[1].Service = "missing"
	start := time.Now()
	_, err := Run(context.Background(), def, services, Config{
		Executor: executor.KindSSH,
		Cluster:  fastCluster(2),
		Timeout:  2 * time.Second,
	})
	if err == nil {
		t.Fatal("want error")
	}
	if time.Since(start) > 30*time.Second {
		t.Error("run did not respect timeout")
	}
}

func TestReportString(t *testing.T) {
	rep := &Report{Workflow: "w", Executor: "ssh", Broker: "activemq", Agents: 3}
	s := rep.String()
	for _, frag := range []string{"w", "ssh", "activemq", "agents=3"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report string %q missing %q", s, frag)
		}
	}
}

// TestKafkaSlowerThanQueue verifies the Fig. 14 broker effect end to end:
// the same workflow runs measurably slower on the log broker. This test
// measures model time, so it runs at the default 1 ms scale where the
// modelled latencies (2 vs 8 model seconds per message) sit above the
// host timer granularity.
func TestKafkaSlowerThanQueue(t *testing.T) {
	run := func(kind mq.Kind) float64 {
		rep := runDiamond(t, 2, 2, Config{
			Executor: executor.KindSSH,
			Broker:   kind,
			Cluster:  cluster.Config{Nodes: 4, CoresPerNode: 24, Scale: time.Millisecond},
		})
		return rep.ExecTime
	}
	q := run(mq.KindQueue)
	k := run(mq.KindLog)
	if k <= q {
		t.Errorf("kafka exec %.2f should exceed activemq exec %.2f", k, q)
	}
}
